(* abclc: run a program written in the ABCL-like surface language on the
   simulated multicomputer.

     dune exec bin/abclc.exe -- examples/abcl/counter.abcl
     dune exec bin/abclc.exe -- examples/abcl/queens.abcl -p 64 --stats *)

open Cmdliner

let run file nodes naive placement seed stats =
  let source =
    let ic = open_in_bin file in
    Fun.protect
      ~finally:(fun () -> close_in ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  in
  let rt_config =
    {
      (if naive then Core.System.naive_rt_config
       else Core.System.default_rt_config)
      with
      Core.Kernel.placement;
    }
  in
  let machine_config = { Machine.Engine.default_config with Machine.Engine.seed } in
  match Lang.Compile.run_source ~machine_config ~rt_config ~nodes source with
  | output, sys ->
      print_string output;
      Format.printf "--- %d nodes, elapsed %a, utilization %.0f%%@." nodes
        Simcore.Time.pp (Core.System.elapsed sys)
        (100. *. Core.System.utilization sys);
      if stats then
        Format.printf "%a@." Simcore.Stats.pp (Core.System.stats sys);
      (match Core.Diagnostics.survey sys with
      | r when Core.Diagnostics.is_clean r -> ()
      | r -> Format.printf "warning — %a@." Core.Diagnostics.pp r);
      0
  | exception Lang.Lexer.Error { line; message } ->
      Format.eprintf "%s:%d: lexical error: %s@." file line message;
      1
  | exception Lang.Parser.Error { line; message } ->
      Format.eprintf "%s:%d: syntax error: %s@." file line message;
      1
  | exception Lang.Compile.Script_error message ->
      Format.eprintf "%s: %s@." file message;
      1

let placement_conv =
  Arg.enum
    [
      ("round-robin", Core.Kernel.Round_robin);
      ("neighbor", Core.Kernel.Neighbor_round_robin);
      ("random", Core.Kernel.Random_node);
      ("self", Core.Kernel.Self_node);
    ]

let () =
  let file =
    Arg.(required & pos 0 (some file) None & info [] ~docv:"FILE.abcl")
  in
  let nodes =
    Arg.(value & opt int 4 & info [ "p"; "nodes" ] ~docv:"P" ~doc:"Processor count.")
  in
  let naive = Arg.(value & flag & info [ "naive" ] ~doc:"Naive scheduler baseline.") in
  let placement =
    Arg.(
      value
      & opt placement_conv Core.Kernel.Round_robin
      & info [ "placement" ] ~docv:"POLICY" ~doc:"Remote-creation placement.")
  in
  let seed = Arg.(value & opt int 42 & info [ "seed" ] ~docv:"SEED") in
  let stats = Arg.(value & flag & info [ "stats" ] ~doc:"Dump statistics.") in
  let term = Term.(const run $ file $ nodes $ naive $ placement $ seed $ stats) in
  let info =
    Cmd.info "abclc" ~version:"1.0.0"
      ~doc:"Run an ABCL-like script on the simulated multicomputer."
  in
  exit (Cmd.eval' (Cmd.v info term))
