(* abcl-sim: command-line driver for the ABCL/onAP1000 reproduction.

   Subcommands run the bundled workloads on a simulated multicomputer
   with configurable size, scheduler, placement policy and network
   parameters, and print the run's virtual-time results and statistics. *)

open Cmdliner

(* --- common options --- *)

let nodes_t =
  Arg.(value & opt int 64 & info [ "p"; "nodes" ] ~docv:"P" ~doc:"Number of processor nodes.")

let seed_t =
  Arg.(value & opt int 42 & info [ "seed" ] ~docv:"SEED" ~doc:"Deterministic simulation seed.")

let naive_t =
  Arg.(value & flag & info [ "naive" ] ~doc:"Use the naive always-buffer scheduler (Section 6.3 baseline).")

let stock_t =
  Arg.(value & opt int 2 & info [ "stock" ] ~docv:"K" ~doc:"Chunk-stock size per (requester, target) pair.")

let placement_conv =
  Arg.enum
    [
      ("round-robin", Core.Kernel.Round_robin);
      ("neighbor", Core.Kernel.Neighbor_round_robin);
      ("random", Core.Kernel.Random_node);
      ("self", Core.Kernel.Self_node);
    ]

let placement_t =
  Arg.(
    value
    & opt placement_conv Core.Kernel.Round_robin
    & info [ "placement" ] ~docv:"POLICY"
        ~doc:
          "Remote-creation placement policy: round-robin, neighbor, random \
           or self.")

let interrupt_t =
  Arg.(value & flag & info [ "interrupt" ] ~doc:"Interrupt-driven message delivery instead of polling.")

let contention_t =
  Arg.(value & flag & info [ "contention" ] ~doc:"Model per-link contention along torus routes.")

let stats_t =
  Arg.(value & flag & info [ "stats" ] ~doc:"Dump all runtime statistics counters after the run.")

let configs ?(contention = false) naive stock placement interrupt seed =
  let rt_config =
    {
      (if naive then Core.System.naive_rt_config
       else Core.System.default_rt_config)
      with
      Core.Kernel.stock_size = stock;
      placement;
    }
  in
  let machine_config =
    {
      Machine.Engine.default_config with
      Machine.Engine.delivery =
        (if interrupt then Machine.Engine.Interrupt else Machine.Engine.Polling);
      fabric =
        {
          Network.Fabric.default_config with
          Network.Fabric.contention;
        };
      seed;
    }
  in
  (rt_config, machine_config)

let dump_stats sys =
  Format.printf "--- statistics ---@.%a@." Simcore.Stats.pp
    (Core.System.stats sys)

(* --- nqueens --- *)

let nqueens n nodes naive stock placement interrupt contention seed stats timeline =
  let rt_config, machine_config =
    configs ~contention naive stock placement interrupt seed
  in
  let seq = Apps.Nqueens_seq.solve ~n in
  let seq_time = Apps.Nqueens_seq.modeled_time machine_config.Machine.Engine.cost seq in
  let r =
    if not timeline then Apps.Nqueens_par.run ~machine_config ~rt_config ~nodes ~n ()
    else begin
      (* Re-run through the lower-level API so the timeline can attach. *)
      let cls = Apps.Nqueens_par.solver_cls () in
      let sys = Core.System.boot ~machine_config ~rt_config ~nodes ~classes:[ cls ] () in
      let tl = Services.Timeline.attach sys in
      let root =
        Core.System.create_root sys ~node:0 cls
          [ Core.Value.int n; Core.Value.int Apps.Queens_board.empty_packed;
            Core.Value.unit ]
      in
      Core.System.send_boot sys root (Core.Pattern.intern "expand" ~arity:0) [];
      Core.System.run sys;
      print_string (Services.Timeline.render tl);
      Services.Timeline.detach tl;
      Apps.Nqueens_par.run ~machine_config ~rt_config ~nodes ~n ()
    end
  in
  Format.printf "solutions:        %d@." r.Apps.Nqueens_par.solutions;
  Format.printf "objects created:  %d@." r.objects_created;
  Format.printf "messages:         %d@." r.messages;
  Format.printf "elapsed:          %a (sequential %a)@." Simcore.Time.pp
    r.elapsed Simcore.Time.pp seq_time;
  Format.printf "speedup:          %.1fx, utilization %.0f%%@."
    (float_of_int seq_time /. float_of_int r.elapsed)
    (100. *. r.utilization);
  Format.printf "local msgs to dormant objects: %.0f%%@."
    (100. *. r.local_dormant_fraction);
  if stats then
    Format.printf "heap: %d KB@." (r.heap_words * 4 / 1024)

let nqueens_cmd =
  let n_t = Arg.(value & opt int 10 & info [ "n" ] ~docv:"N" ~doc:"Board size.") in
  let timeline_t =
    Arg.(value & flag & info [ "timeline" ] ~doc:"Render a per-node busy/idle timeline.")
  in
  Cmd.v
    (Cmd.info "nqueens" ~doc:"The paper's N-queens benchmark (Section 6.2).")
    Term.(
      const nqueens $ n_t $ nodes_t $ naive_t $ stock_t $ placement_t
      $ interrupt_t $ contention_t $ seed_t $ stats_t $ timeline_t)

(* --- ring --- *)

let ring nodes laps naive stock placement interrupt seed stats =
  let rt_config, machine_config = configs naive stock placement interrupt seed in
  let r = Apps.Ring.run ~machine_config ~rt_config ~nodes ~laps () in
  Format.printf "%d hops in %a: %.2f us per inter-node message@."
    r.Apps.Ring.hops Simcore.Time.pp r.elapsed
    (r.ns_per_hop /. 1000.);
  ignore stats

let ring_cmd =
  let laps_t =
    Arg.(value & opt int 32 & info [ "laps" ] ~docv:"L" ~doc:"Laps around the ring.")
  in
  Cmd.v
    (Cmd.info "ring" ~doc:"Token ring measuring inter-node message latency.")
    Term.(
      const ring $ nodes_t $ laps_t $ naive_t $ stock_t $ placement_t
      $ interrupt_t $ seed_t $ stats_t)

(* --- fib --- *)

let fib n nodes naive stock placement interrupt seed stats =
  let rt_config, machine_config = configs naive stock placement interrupt seed in
  let r = Apps.Fib.run ~machine_config ~rt_config ~nodes ~n () in
  Format.printf "fib(%d) = %d (%d objects, %d blocking receptions, %a)@." n
    r.Apps.Fib.value r.objects_created r.blocked_waits Simcore.Time.pp
    r.elapsed;
  ignore stats

let fib_cmd =
  let n_t = Arg.(value & opt int 15 & info [ "n" ] ~docv:"N" ~doc:"Input.") in
  Cmd.v
    (Cmd.info "fib" ~doc:"Fork-join Fibonacci over selective reception.")
    Term.(
      const fib $ n_t $ nodes_t $ naive_t $ stock_t $ placement_t $ interrupt_t
      $ seed_t $ stats_t)

(* --- sieve --- *)

let sieve limit nodes naive stock placement interrupt seed stats =
  let rt_config, machine_config = configs naive stock placement interrupt seed in
  let r = Apps.Sieve.run ~machine_config ~rt_config ~nodes ~limit () in
  Format.printf "primes <= %d: %d (largest %d), %d filter objects, %a@." limit
    r.Apps.Sieve.primes r.largest r.filters_created Simcore.Time.pp r.elapsed;
  ignore stats

let sieve_cmd =
  let limit_t =
    Arg.(value & opt int 500 & info [ "limit" ] ~docv:"N" ~doc:"Sieve bound.")
  in
  Cmd.v
    (Cmd.info "sieve" ~doc:"Prime sieve over a growing pipeline of objects.")
    Term.(
      const sieve $ limit_t $ nodes_t $ naive_t $ stock_t $ placement_t
      $ interrupt_t $ seed_t $ stats_t)

(* --- microbench --- *)

let micro interrupt seed =
  let machine_config =
    {
      Machine.Engine.default_config with
      Machine.Engine.delivery =
        (if interrupt then Machine.Engine.Interrupt else Machine.Engine.Polling);
      seed;
    }
  in
  let m = Apps.Microbench.measure ~machine_config () in
  Format.printf "%a@." Apps.Microbench.pp m

let micro_cmd =
  Cmd.v
    (Cmd.info "microbench" ~doc:"Costs of basic operations (paper Table 1).")
    Term.(const micro $ interrupt_t $ seed_t)

(* --- gc survey --- *)

let survey n nodes seed =
  let machine_config = { Machine.Engine.default_config with Machine.Engine.seed } in
  let cls = Apps.Nqueens_par.solver_cls () in
  let sys = Core.System.boot ~machine_config ~nodes ~classes:[ cls ] () in
  let root =
    Core.System.create_root sys ~node:0 cls
      [
        Core.Value.int n;
        Core.Value.int Apps.Queens_board.empty_packed;
        Core.Value.unit;
      ]
  in
  Core.System.send_boot sys root (Core.Pattern.intern "expand" ~arity:0) [];
  Core.System.run sys;
  Format.printf "%a@." Services.Gc_analysis.pp_report
    (Services.Gc_analysis.survey sys);
  dump_stats sys

let survey_cmd =
  let n_t = Arg.(value & opt int 8 & info [ "n" ] ~docv:"N" ~doc:"Board size.") in
  Cmd.v
    (Cmd.info "survey"
       ~doc:"Run N-queens, then report the GC export analysis and statistics.")
    Term.(const survey $ n_t $ nodes_t $ seed_t)

let () =
  let default = Term.(ret (const (`Help (`Pager, None)))) in
  let info =
    Cmd.info "abcl-sim" ~version:"1.0.0"
      ~doc:
        "Concurrent object-oriented runtime on a simulated stock \
         multicomputer (PPoPP'93 reproduction)."
  in
  exit
    (Cmd.eval
       (Cmd.group ~default info
          [ nqueens_cmd; ring_cmd; fib_cmd; sieve_cmd; micro_cmd; survey_cmd ]))
