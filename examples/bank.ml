(* A bank account with selective message reception: a withdrawal that
   exceeds the balance makes the account wait — in ABCL's waiting mode —
   for further deposits, buffering everything else until it can proceed.

     dune exec examples/bank.exe *)

open Core

let p_deposit = Pattern.intern "deposit" ~arity:1
let p_withdraw = Pattern.intern "withdraw" ~arity:1
let p_balance = Pattern.intern "balance" ~arity:0
let p_run_teller = Pattern.intern "run_teller" ~arity:1

let account_cls =
  Class_def.define ~name:"account" ~state:[| "balance" |]
    ~init:(fun _ -> [| Value.int 0 |])
    ~methods:
      [
        ( p_deposit,
          fun ctx msg ->
            let amount = Value.to_int (Message.arg msg 0) in
            Ctx.set ctx 0 (Value.int (Value.to_int (Ctx.get ctx 0) + amount));
            Format.printf "  account: +%d (balance %d)@." amount
              (Value.to_int (Ctx.get ctx 0)) );
        ( p_withdraw,
          fun ctx msg ->
            let amount = Value.to_int (Message.arg msg 0) in
            (* Selective reception: while the balance is short, accept
               only deposits; other requests stay buffered. *)
            let rec ensure () =
              let balance = Value.to_int (Ctx.get ctx 0) in
              if balance < amount then begin
                Format.printf
                  "  account: withdrawal of %d waits (balance %d)@." amount
                  balance;
                let m = Ctx.wait_for ctx [ p_deposit ] in
                let got = Value.to_int (Message.arg m 0) in
                Ctx.set ctx 0 (Value.int (balance + got));
                Format.printf "  account: +%d while waiting (balance %d)@."
                  got
                  (Value.to_int (Ctx.get ctx 0));
                ensure ()
              end
            in
            ensure ();
            Ctx.set ctx 0 (Value.int (Value.to_int (Ctx.get ctx 0) - amount));
            Format.printf "  account: -%d (balance %d)@." amount
              (Value.to_int (Ctx.get ctx 0));
            Ctx.reply ctx msg (Value.int amount) );
        (p_balance, fun ctx msg -> Ctx.reply ctx msg (Ctx.get ctx 0));
      ]
    ()

(* The teller issues a withdrawal that must wait for funds arriving from
   a payroll object on another node. *)
let teller_cls =
  Class_def.define ~name:"teller"
    ~methods:
      [
        ( p_run_teller,
          fun ctx msg ->
            let account = Value.to_addr (Message.arg msg 0) in
            Format.printf "teller: withdrawing 100...@.";
            let got = Ctx.send_now ctx account p_withdraw [ Value.int 100 ] in
            Format.printf "teller: received %a@." Value.pp got;
            let balance = Ctx.send_now ctx account p_balance [] in
            Format.printf "teller: final balance %a@." Value.pp balance );
      ]
    ()

let p_payday = Pattern.intern "payday" ~arity:1

let payroll_cls =
  Class_def.define ~name:"payroll"
    ~methods:
      [
        ( p_payday,
          fun ctx msg ->
            let account = Value.to_addr (Message.arg msg 0) in
            List.iter
              (fun amount -> Ctx.send ctx account p_deposit [ Value.int amount ])
              [ 30; 30; 50 ] );
      ]
    ()

let () =
  let sys =
    System.boot ~nodes:3 ~classes:[ account_cls; teller_cls; payroll_cls ] ()
  in
  let account = System.create_root sys ~node:0 account_cls [] in
  let teller = System.create_root sys ~node:1 teller_cls [] in
  let payroll = System.create_root sys ~node:2 payroll_cls [] in
  System.send_boot sys teller p_run_teller [ Value.addr account ];
  System.send_boot sys payroll p_payday [ Value.addr account ];
  System.run sys;
  let st = System.stats sys in
  Format.printf "waiting-mode blocks: %d, buffered while waiting: %d@."
    (Simcore.Stats.get st "wait.blocked")
    (Simcore.Stats.get st "recv.remote.active"
    + Simcore.Stats.get st "send.local.active")
