(* Fork-join Fibonacci: each internal object spawns two children and
   selectively waits for their [result] messages, exercising waiting
   mode, context save/restore and stack unwinding at scale.

     dune exec examples/fib.exe -- [n] [nodes]            (default 15 16) *)

let () =
  let n = try int_of_string Sys.argv.(1) with _ -> 15 in
  let nodes = try int_of_string Sys.argv.(2) with _ -> 16 in
  let r = Apps.Fib.run ~nodes ~n () in
  Format.printf "fib(%d) = %d@." n r.Apps.Fib.value;
  Format.printf "objects created:       %d@." r.objects_created;
  Format.printf "blocking receptions:   %d@." r.blocked_waits;
  Format.printf "virtual elapsed:       %a on %d nodes@." Simcore.Time.pp
    r.elapsed nodes
