(* Prime sieve over a dynamically growing pipeline of filter objects:
   one object per prime, placed across the machine by the placement
   policy; candidates stream through the chain.

     dune exec examples/sieve.exe -- [limit] [nodes]      (default 500 8) *)

let () =
  let limit = try int_of_string Sys.argv.(1) with _ -> 500 in
  let nodes = try int_of_string Sys.argv.(2) with _ -> 8 in
  let r = Apps.Sieve.run ~nodes ~limit () in
  Format.printf "primes <= %d: %d (largest %d)@." limit r.Apps.Sieve.primes
    r.largest;
  Format.printf "filter objects: %d, elapsed %a on %d nodes (%.0f%% util)@."
    r.filters_created Simcore.Time.pp r.elapsed nodes (100. *. r.utilization)
