(* Task farm with future-type messages: the master sends one request per
   worker up front (all round trips overlap), then touches the futures in
   turn — ABCL's third transmission mode, built on the same reply
   destination objects as now-type sends.

     dune exec examples/farm.exe -- [tasks] [nodes]       (default 12 4) *)

open Core

let p_count_primes = Pattern.intern "count_primes" ~arity:2
let p_farm = Pattern.intern "farm" ~arity:1

let is_prime k =
  if k < 2 then false
  else
    let rec check d = d * d > k || (k mod d <> 0 && check (d + 1)) in
    check 2

let worker_cls =
  Class_def.define ~name:"prime_worker"
    ~methods:
      [
        ( p_count_primes,
          fun ctx msg ->
            let lo = Value.to_int (Message.arg msg 0) in
            let hi = Value.to_int (Message.arg msg 1) in
            let count = ref 0 in
            for k = lo to hi - 1 do
              (* model ~sqrt(k) division cost per candidate *)
              Ctx.charge ctx (4 * int_of_float (sqrt (float_of_int (max k 4))));
              if is_prime k then incr count
            done;
            Ctx.reply ctx msg (Value.int !count) );
      ]
    ()

let master_cls =
  Class_def.define ~name:"farm_master"
    ~methods:
      [
        ( p_farm,
          fun ctx msg ->
            let tasks = Value.to_int (Message.arg msg 0) in
            let span = 2_000 in
            (* One worker per task, spread by the placement policy. *)
            let futures =
              List.init tasks (fun i ->
                  let w = Ctx.create_remote ctx worker_cls [] in
                  Ctx.send_future ctx w p_count_primes
                    [ Value.int (i * span); Value.int ((i + 1) * span) ])
            in
            let total =
              List.fold_left
                (fun acc f -> acc + Value.to_int (Ctx.touch ctx f))
                0 futures
            in
            Format.printf "primes below %d: %d@." (tasks * span) total );
      ]
    ()

let () =
  let tasks = try int_of_string Sys.argv.(1) with _ -> 12 in
  let nodes = try int_of_string Sys.argv.(2) with _ -> 4 in
  let sys = System.boot ~nodes ~classes:[ worker_cls; master_cls ] () in
  let master = System.create_root sys ~node:0 master_cls [] in
  System.send_boot sys master p_farm [ Value.int tasks ];
  System.run sys;
  let st = System.stats sys in
  Format.printf
    "elapsed %a on %d nodes (utilization %.0f%%); %d touches blocked, %d were \
     already resolved@."
    Simcore.Time.pp (System.elapsed sys) nodes
    (100. *. System.utilization sys)
    (Simcore.Stats.get st "reply.blocked")
    (Simcore.Stats.get st "reply.immediate")
