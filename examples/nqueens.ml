(* The paper's large-scale benchmark as an application: exhaustive
   N-queens search with one concurrent object per valid partial
   placement, ack messages tracing back the search tree.

     dune exec examples/nqueens.exe -- [N] [nodes]        (default 10 64) *)

let () =
  let n = try int_of_string Sys.argv.(1) with _ -> 10 in
  let nodes = try int_of_string Sys.argv.(2) with _ -> 64 in
  Format.printf "solving %d-queens on a %d-node machine...@." n nodes;
  let seq = Apps.Nqueens_seq.solve ~n in
  let seq_time = Apps.Nqueens_seq.modeled_time Machine.Cost_model.default seq in
  let r = Apps.Nqueens_par.run ~nodes ~n () in
  Format.printf "solutions:        %d (sequential agrees: %b)@."
    r.Apps.Nqueens_par.solutions
    (seq.Apps.Nqueens_seq.solutions = r.solutions);
  Format.printf "objects created:  %d@." r.objects_created;
  Format.printf "messages:         %d@." r.messages;
  Format.printf "parallel elapsed: %a@." Simcore.Time.pp r.elapsed;
  Format.printf "sequential time:  %a (modeled, same work model)@."
    Simcore.Time.pp seq_time;
  Format.printf "speedup:          %.1fx on %d nodes (%.0f%% utilization)@."
    (float_of_int seq_time /. float_of_int r.elapsed)
    nodes (100. *. r.utilization);
  Format.printf "heap used:        %d KB@." (r.heap_words * 4 / 1024)
