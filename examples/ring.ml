(* Token ring across the torus: measures the end-to-end asynchronous
   inter-node message latency on a live application (the paper's Table 1
   reports 8.9 us between two nodes).

     dune exec examples/ring.exe -- [nodes] [laps]        (default 16 32) *)

let () =
  let nodes = try int_of_string Sys.argv.(1) with _ -> 16 in
  let laps = try int_of_string Sys.argv.(2) with _ -> 32 in
  let r = Apps.Ring.run ~nodes ~laps () in
  Format.printf "%d stations, %d hops in %a@." nodes r.Apps.Ring.hops
    Simcore.Time.pp r.elapsed;
  Format.printf "inter-node message latency: %.2f us/hop (paper: 8.9 us)@."
    (r.ns_per_hop /. 1000.);
  (* The same ring with interrupt-driven delivery (nCUBE/2 style). *)
  let config =
    {
      Machine.Engine.default_config with
      Machine.Engine.delivery = Machine.Engine.Interrupt;
    }
  in
  let ri = Apps.Ring.run ~machine_config:config ~nodes ~laps () in
  Format.printf "with interrupt-driven delivery: %.2f us/hop@."
    (ri.ns_per_hop /. 1000.)
