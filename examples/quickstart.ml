(* Quickstart: define two concurrent object classes, boot a 4-node
   machine, and exchange past- and now-type messages.

     dune exec examples/quickstart.exe *)

open Core

(* Patterns are the compiler's message numbering: intern them once. *)
let p_inc = Pattern.intern "inc" ~arity:0
let p_add = Pattern.intern "add" ~arity:1
let p_read = Pattern.intern "read" ~arity:0
let p_demo = Pattern.intern "demo" ~arity:1

(* A counter: one state variable, three methods. State variables are
   initialised lazily, on the first message the object accepts. *)
let counter_cls =
  Class_def.define ~name:"counter" ~state:[| "value" |]
    ~init:(fun args ->
      match args with [ v ] -> [| v |] | _ -> [| Value.int 0 |])
    ~methods:
      [
        ( p_inc,
          fun ctx _msg ->
            Ctx.set ctx 0 (Value.int (Value.to_int (Ctx.get ctx 0) + 1)) );
        ( p_add,
          fun ctx msg ->
            let n = Value.to_int (Message.arg msg 0) in
            Ctx.set ctx 0 (Value.int (Value.to_int (Ctx.get ctx 0) + n)) );
        (* A now-type-able method: replies to the message's reply
           destination. *)
        (p_read, fun ctx msg -> Ctx.reply ctx msg (Ctx.get ctx 0));
      ]
    ()

(* A driver object that creates a counter on a remote node, sends it
   past-type messages (asynchronous, no waiting), then reads it back
   with a now-type send (waits for the reply). *)
let driver_cls =
  Class_def.define ~name:"driver"
    ~methods:
      [
        ( p_demo,
          fun ctx msg ->
            let start = Value.to_int (Message.arg msg 0) in
            (* Remote creation returns the mail address immediately —
               the chunk-stock protocol hides the round trip. *)
            let counter = Ctx.create_remote ctx counter_cls [ Value.int start ] in
            Format.printf "driver on node %d created counter at %a@."
              (Ctx.node_id ctx) Value.pp_addr counter;
            (* Past type: [counter <= inc], fire and forget. *)
            Ctx.send ctx counter p_inc [];
            Ctx.send ctx counter p_add [ Value.int 40 ];
            (* Now type: [counter <== read], blocks until the reply. *)
            let v = Ctx.send_now ctx counter p_read [] in
            Format.printf "driver read back: %a@." Value.pp v );
      ]
    ()

let () =
  let sys = System.boot ~nodes:4 ~classes:[ counter_cls; driver_cls ] () in
  let driver = System.create_root sys ~node:0 driver_cls [] in
  System.send_boot sys driver p_demo [ Value.int 1 ];
  System.run sys;
  Format.printf "done in %a of virtual time across %d nodes@." Simcore.Time.pp
    (System.elapsed sys) (System.node_count sys)
