(* Tests for system boot, configuration validation and whole-system
   accounting. *)

open Core

let p_ping = Pattern.intern "tsys_ping" ~arity:0

let ping_cls () =
  Class_def.define ~name:"tsys_ping_cls"
    ~methods:[ (p_ping, fun ctx _ -> Ctx.bump ctx "tsys.ping") ]
    ()

let test_boot_validation () =
  let bad config msg =
    Alcotest.check_raises msg (Invalid_argument msg) (fun () ->
        ignore (System.boot ~rt_config:config ~nodes:2 ~classes:[] ()))
  in
  bad
    { System.default_rt_config with Kernel.stock_size = 0 }
    "System.boot: stock_size must be >= 1 (remote creation would deadlock)";
  bad
    { System.default_rt_config with Kernel.max_stack_depth = 0 }
    "System.boot: max_stack_depth must be >= 1";
  bad
    { System.default_rt_config with Kernel.quantum_instr = 0 }
    "System.boot: quantum_instr must be >= 1"

let test_rt_bounds () =
  let sys = System.boot ~nodes:2 ~classes:[] () in
  Alcotest.check_raises "bad node id" (Invalid_argument "System.rt: bad node id")
    (fun () -> ignore (System.rt sys 2))

let test_create_root_registers_class () =
  (* A class omitted from [classes] but used for a root object must still
     be found by the remote-creation handler afterwards. *)
  let cls = ping_cls () in
  let spawner_p = Pattern.intern "tsys_spawn" ~arity:0 in
  let spawner =
    Class_def.define ~name:"tsys_spawner"
      ~methods:
        [
          ( spawner_p,
            fun ctx _ ->
              let child = Ctx.create_on ctx ~target:1 cls [] in
              Ctx.send ctx child p_ping [] );
        ]
      ()
  in
  let sys = System.boot ~nodes:2 ~classes:[ spawner ] () in
  (* create_root with the unregistered ping class registers it. *)
  let _root_ping = System.create_root sys ~node:0 cls [] in
  let sp = System.create_root sys ~node:0 spawner [] in
  System.send_boot sys sp spawner_p [];
  System.run sys;
  Alcotest.(check int) "remote child of late-registered class ran" 1
    (Simcore.Stats.get (System.stats sys) "app.tsys.ping")

let test_duplicate_creation_rejected () =
  let cls = ping_cls () in
  let sys = System.boot ~nodes:2 ~classes:[ cls ] () in
  let machine = System.machine sys in
  let rt0 = System.rt sys 0 in
  let node0 = Machine.Engine.node machine 0 in
  let slot = Queue.take rt0.Kernel.stocks.(1) in
  let send_create () =
    Machine.Engine.send_am machine ~src:node0 ~dst:1
      ~handler:rt0.Kernel.shared.Kernel.h_create ~size_bytes:12
      (Protocol.P_create { slot; cls_id = cls.Kernel.cls_id; args = []; gc_refs = [] })
  in
  Machine.Engine.post machine node0 (fun () ->
      send_create ();
      send_create ());
  Alcotest.check_raises "second creation on one chunk rejected"
    (Invalid_argument "System: duplicate creation request") (fun () ->
      System.run sys)

let test_unregistered_class_rejected () =
  let cls = ping_cls () in
  let sys = System.boot ~nodes:2 ~classes:[] () in
  let machine = System.machine sys in
  let rt0 = System.rt sys 0 in
  let node0 = Machine.Engine.node machine 0 in
  let slot = Queue.take rt0.Kernel.stocks.(1) in
  Machine.Engine.post machine node0 (fun () ->
      Machine.Engine.send_am machine ~src:node0 ~dst:1
        ~handler:rt0.Kernel.shared.Kernel.h_create ~size_bytes:12
        (Protocol.P_create { slot; cls_id = cls.Kernel.cls_id; args = []; gc_refs = [] }));
  Alcotest.check_raises "unknown class id"
    (Invalid_argument "System: remote creation of unregistered class")
    (fun () -> System.run sys)

let test_heap_accounting_grows () =
  let cls = ping_cls () in
  let sys = System.boot ~nodes:1 ~classes:[ cls ] () in
  let before = System.total_heap_words sys in
  let a = System.create_root sys ~node:0 cls [] in
  System.send_boot sys a p_ping [];
  System.run sys;
  Alcotest.(check bool) "heap words grew" true
    (System.total_heap_words sys > before)

let test_pp_summary_smoke () =
  let cls = ping_cls () in
  let sys = System.boot ~nodes:4 ~classes:[ cls ] () in
  let a = System.create_root sys ~node:0 cls [] in
  System.send_boot sys a p_ping [];
  System.run sys;
  let s = Format.asprintf "%a" System.pp_summary sys in
  let contains needle hay =
    let nl = String.length needle and hl = String.length hay in
    let rec scan i = i + nl <= hl && (String.sub hay i nl = needle || scan (i + 1)) in
    scan 0
  in
  Alcotest.(check bool) "summary mentions nodes" true (contains "nodes: 4" s)

let test_lookup_obj_out_of_range () =
  let sys = System.boot ~nodes:2 ~classes:[] () in
  Alcotest.(check bool) "bad node gives None" true
    (Option.is_none (System.lookup_obj sys { Value.node = 7; slot = 0 }))

let () =
  Alcotest.run "system"
    [
      ( "boot",
        [
          Alcotest.test_case "config validation" `Quick test_boot_validation;
          Alcotest.test_case "rt bounds" `Quick test_rt_bounds;
          Alcotest.test_case "late class registration" `Quick
            test_create_root_registers_class;
        ] );
      ( "protocol errors",
        [
          Alcotest.test_case "duplicate creation" `Quick
            test_duplicate_creation_rejected;
          Alcotest.test_case "unregistered class" `Quick
            test_unregistered_class_rejected;
        ] );
      ( "accounting",
        [
          Alcotest.test_case "heap grows" `Quick test_heap_accounting_grows;
          Alcotest.test_case "summary smoke" `Quick test_pp_summary_smoke;
          Alcotest.test_case "lookup out of range" `Quick
            test_lookup_obj_out_of_range;
        ] );
    ]
