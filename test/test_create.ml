(* Tests for object creation: lazy initialisation, explicit and
   policy-driven placement, the chunk-stock protocol and the Figure 4
   initialisation race. *)

open Core

let p_inc = Pattern.intern "tc_inc" ~arity:0
let _p_get = Pattern.intern "tc_get" ~arity:0
let p_go = Pattern.intern "tc_go" ~arity:1

let counter_cls () =
  Class_def.define ~name:"tc_counter" ~state:[| "n" |]
    ~init:(fun args ->
      match args with
      | [ v ] -> [| v |]
      | _ -> [| Value.int 0 |])
    ~methods:
      [
        Class_def.meth "tc_inc" ~arity:0 (fun ctx _ ->
            Ctx.set ctx 0 (Value.int (Value.to_int (Ctx.get ctx 0) + 1)));
        Class_def.meth "tc_get" ~arity:0 (fun ctx msg ->
            Ctx.reply ctx msg (Ctx.get ctx 0));
      ]
    ()

let test_lazy_init () =
  let counter = counter_cls () in
  let sys = System.boot ~nodes:1 ~classes:[ counter ] () in
  let a = System.create_root sys ~node:0 counter [ Value.int 10 ] in
  let obj = Option.get (System.lookup_obj sys a) in
  Alcotest.(check bool) "not initialised at creation" false
    obj.Kernel.initialized;
  Alcotest.(check int) "state box empty" 0 (Array.length obj.Kernel.state);
  Alcotest.(check string) "init table" "init" (Sched.mode_of obj);
  System.send_boot sys a p_inc [];
  System.run sys;
  Alcotest.(check bool) "initialised on first message" true
    obj.Kernel.initialized;
  Alcotest.(check int) "ctor args applied then incremented" 11
    (Value.to_int obj.Kernel.state.(0));
  Alcotest.(check string) "dormant table afterwards" "dormant"
    (Sched.mode_of obj)

let test_placement_policies () =
  let counter = counter_cls () in
  let with_policy placement =
    let rt_config = { System.default_rt_config with Kernel.placement } in
    let sys = System.boot ~rt_config ~nodes:8 ~classes:[ counter ] () in
    System.rt sys 3
  in
  let rt = with_policy Kernel.Round_robin in
  let picks = List.init 8 (fun _ -> Create.pick_node rt) in
  Alcotest.(check (list int)) "round robin starts at the next node"
    [ 4; 5; 6; 7; 0; 1; 2; 3 ] picks;
  let rt = with_policy Kernel.Self_node in
  Alcotest.(check int) "self" 3 (Create.pick_node rt);
  let rt = with_policy (Kernel.Fixed_node 5) in
  Alcotest.(check int) "fixed" 5 (Create.pick_node rt);
  let rt = with_policy Kernel.Random_node in
  for _ = 1 to 50 do
    let p = Create.pick_node rt in
    if p < 0 || p >= 8 then Alcotest.fail "random pick out of range"
  done;
  let rt = with_policy Kernel.Neighbor_round_robin in
  let topo = Network.Topology.square_for 8 in
  let allowed = 3 :: Network.Topology.neighbors topo 3 in
  for _ = 1 to 20 do
    let p = Create.pick_node rt in
    if not (List.mem p allowed) then
      Alcotest.failf "neighbor pick %d outside self+neighbours" p
  done;
  let rt = with_policy (Kernel.Custom_policy (fun my -> my + 100)) in
  Alcotest.(check int) "custom policy wraps into range" ((3 + 100) mod 8)
    (Create.pick_node rt)

let test_chunk_stall_and_resume () =
  let counter = counter_cls () in
  let spawner =
    Class_def.define ~name:"tc_burst"
      ~methods:
        [
          ( p_go,
            fun ctx msg ->
              let k = Value.to_int (Message.arg msg 0) in
              for _ = 1 to k do
                let child = Ctx.create_on ctx ~target:1 counter [ Value.int 0 ] in
                Ctx.send ctx child p_inc []
              done );
        ]
      ()
  in
  let rt_config = { System.default_rt_config with Kernel.stock_size = 1 } in
  let sys = System.boot ~rt_config ~nodes:2 ~classes:[ counter; spawner ] () in
  let sp = System.create_root sys ~node:0 spawner [] in
  System.send_boot sys sp p_go [ Value.int 5 ];
  System.run sys;
  let st = System.stats sys in
  Alcotest.(check int) "all created despite stalls" 5
    (Simcore.Stats.get st "create.remote");
  Alcotest.(check int) "all initialised" 5
    (Simcore.Stats.get st "create.remote.applied");
  Alcotest.(check bool) "stalled at least once" true
    (Simcore.Stats.get st "chunk.stall" >= 3);
  Alcotest.(check int) "stock replenished per creation" 5
    (Simcore.Stats.get st "chunk.refill")

(* The Figure 4 race, driven at the protocol level: a message to a fresh
   chunk address reaches the target before the creation request. The
   pre-initialised fault table must buffer it; initialisation must then
   process it. *)
let test_figure4_race () =
  let counter = counter_cls () in
  let sys = System.boot ~nodes:2 ~classes:[ counter ] () in
  let machine = System.machine sys in
  let rt0 = System.rt sys 0 in
  let node0 = Machine.Engine.node machine 0 in
  (* Step 1 of Section 5.2: node 0 obtains a chunk address on node 1
     locally from its stock. *)
  let slot = Queue.take rt0.Kernel.stocks.(1) in
  let inc_msg = Message.make ~pattern:p_inc ~args:[] ~src_node:0 () in
  Machine.Engine.post machine node0 (fun () ->
      (* The ordinary message is injected first and so arrives first
         (per-channel FIFO) — as if it had been relayed via a third
         node ahead of the creation request. *)
      Machine.Engine.send_am machine ~src:node0 ~dst:1
        ~handler:rt0.Kernel.shared.Kernel.h_obj_msg
        ~size_bytes:(Protocol.obj_msg_bytes inc_msg)
        (Protocol.P_obj_msg { slot; msg = inc_msg });
      Machine.Engine.send_am machine ~src:node0 ~dst:1
        ~handler:rt0.Kernel.shared.Kernel.h_create
        ~size_bytes:(Protocol.create_bytes [ Value.int 5 ])
        (Protocol.P_create
           {
             slot;
             cls_id = counter.Kernel.cls_id;
             args = [ Value.int 5 ];
             gc_refs = [];
           }));
  System.run sys;
  let st = System.stats sys in
  Alcotest.(check int) "early message hit the fault table" 1
    (Simcore.Stats.get st "recv.remote.fault");
  let obj = Option.get (System.lookup_obj sys { Value.node = 1; slot }) in
  Alcotest.(check bool) "object initialised" true obj.Kernel.initialized;
  Alcotest.(check int) "buffered message was processed after init" 6
    (Value.to_int obj.Kernel.state.(0))

let test_invalid_slot () =
  let sys = System.boot ~nodes:1 ~classes:[] () in
  let rt0 = System.rt sys 0 in
  Alcotest.(check bool) "unallocated slot rejected" true
    (match Sched.lookup_or_embryo rt0 999_999 with
    | exception Invalid_argument _ -> true
    | _ -> false)

let test_remote_create_address_available_immediately () =
  let counter = counter_cls () in
  let holder =
    Class_def.define ~name:"tc_holder" ~state:[| "child" |]
      ~init:(fun _ -> [| Value.unit |])
      ~methods:
        [
          ( p_go,
            fun ctx _msg ->
              let before = Ctx.now ctx in
              let child = Ctx.create_on ctx ~target:1 counter [ Value.int 0 ] in
              let after = Ctx.now ctx in
              (* Latency hiding: obtaining the address must not wait a
                 network round trip (~9 us); it is a local operation. *)
              if after - before > Simcore.Time.of_us 5. then
                Alcotest.fail "remote creation blocked the requester";
              Ctx.set ctx 0 (Value.addr child) );
        ]
      ()
  in
  let sys = System.boot ~nodes:2 ~classes:[ counter; holder ] () in
  let h = System.create_root sys ~node:0 holder [] in
  System.send_boot sys h p_go [ Value.int 0 ];
  System.run sys;
  let obj = Option.get (System.lookup_obj sys h) in
  let child = Value.to_addr obj.Kernel.state.(0) in
  Alcotest.(check int) "created on node 1" 1 child.Value.node

let test_create_remote_policy_spread () =
  let counter = counter_cls () in
  let spawner =
    Class_def.define ~name:"tc_spread" ~state:[| "kids" |]
      ~init:(fun _ -> [| Value.list [] |])
      ~methods:
        [
          ( p_go,
            fun ctx msg ->
              let k = Value.to_int (Message.arg msg 0) in
              let kids = ref [] in
              for _ = 1 to k do
                let child = Ctx.create_remote ctx counter [ Value.int 0 ] in
                kids := Value.addr child :: !kids
              done;
              Ctx.set ctx 0 (Value.list !kids) );
        ]
      ()
  in
  let sys = System.boot ~nodes:4 ~classes:[ counter; spawner ] () in
  let sp = System.create_root sys ~node:0 spawner [] in
  System.send_boot sys sp p_go [ Value.int 8 ];
  System.run sys;
  let obj = Option.get (System.lookup_obj sys sp) in
  let kids = Value.to_list obj.Kernel.state.(0) in
  let nodes =
    List.map (fun v -> (Value.to_addr v).Value.node) kids
    |> List.sort_uniq compare
  in
  Alcotest.(check (list int)) "round robin touches every node" [ 0; 1; 2; 3 ]
    nodes

let () =
  Alcotest.run "create"
    [
      ( "creation",
        [
          Alcotest.test_case "lazy init" `Quick test_lazy_init;
          Alcotest.test_case "placement policies" `Quick test_placement_policies;
          Alcotest.test_case "latency hiding" `Quick
            test_remote_create_address_available_immediately;
          Alcotest.test_case "policy spread" `Quick
            test_create_remote_policy_spread;
          Alcotest.test_case "invalid slot" `Quick test_invalid_slot;
        ] );
      ( "chunk stock",
        [
          Alcotest.test_case "stall and resume" `Quick
            test_chunk_stall_and_resume;
          Alcotest.test_case "figure 4 race" `Quick test_figure4_race;
        ] );
    ]
