(* Lifecycle tests for reply-destination objects. *)

open Core

let p_ask = Pattern.intern "tr_ask" ~arity:1
let p_echo = Pattern.intern "tr_echo" ~arity:1

let echo_cls () =
  Class_def.define ~name:"tr_echo_cls"
    ~methods:[ (p_echo, fun ctx msg -> Ctx.reply ctx msg (Message.arg msg 0)) ]
    ()

let count_objects sys node =
  Hashtbl.length (System.rt sys node).Kernel.objects

let test_dest_disposed_after_immediate_take () =
  let echo = echo_cls () in
  let client =
    Class_def.define ~name:"tr_client"
      ~methods:
        [
          ( p_ask,
            fun ctx msg ->
              let target = Value.to_addr (Message.arg msg 0) in
              ignore (Ctx.send_now ctx target p_echo [ Value.int 1 ]) );
        ]
      ()
  in
  let sys = System.boot ~nodes:1 ~classes:[ echo; client ] () in
  let e = System.create_root sys ~node:0 echo [] in
  let c = System.create_root sys ~node:0 client [] in
  let before = count_objects sys 0 in
  System.send_boot sys c p_ask [ Value.addr e ];
  System.run sys;
  (* The reply destination was created and then retired: no net growth. *)
  Alcotest.(check int) "no leaked reply destinations" before
    (count_objects sys 0);
  Alcotest.(check int) "immediate" 1
    (Simcore.Stats.get (System.stats sys) "reply.immediate")

let test_dest_disposed_after_blocked_resume () =
  let echo = echo_cls () in
  let client =
    Class_def.define ~name:"tr_client2"
      ~methods:
        [
          ( p_ask,
            fun ctx msg ->
              let target = Value.to_addr (Message.arg msg 0) in
              ignore (Ctx.send_now ctx target p_echo [ Value.int 2 ]) );
        ]
      ()
  in
  let sys = System.boot ~nodes:2 ~classes:[ echo; client ] () in
  let e = System.create_root sys ~node:1 echo [] in
  let c = System.create_root sys ~node:0 client [] in
  let before = count_objects sys 0 in
  System.send_boot sys c p_ask [ Value.addr e ];
  System.run sys;
  Alcotest.(check int) "destination retired after resuming the sender"
    before (count_objects sys 0);
  Alcotest.(check int) "blocked" 1
    (Simcore.Stats.get (System.stats sys) "reply.blocked")

let test_forged_second_reply_is_residue () =
  (* A reply destination is single-use; a second reply to a consumed one
     lands in a fault-table embryo and shows up as diagnosable residue
     rather than corrupting anything. *)
  let echo = echo_cls () in
  let dest = ref None in
  let client =
    Class_def.define ~name:"tr_client3"
      ~methods:
        [
          ( p_ask,
            fun ctx msg ->
              let target = Value.to_addr (Message.arg msg 0) in
              let f = Ctx.send_future ctx target p_echo [ Value.int 3 ] in
              dest := Some (Ctx.future_addr f);
              ignore (Ctx.touch ctx f) );
        ]
      ()
  in
  let sys = System.boot ~nodes:1 ~classes:[ echo; client ] () in
  let e = System.create_root sys ~node:0 echo [] in
  let c = System.create_root sys ~node:0 client [] in
  System.send_boot sys c p_ask [ Value.addr e ];
  System.run sys;
  let stale = Option.get !dest in
  System.send_boot sys stale Pattern.reply [ Value.int 99 ];
  System.run sys;
  let r = Diagnostics.survey sys in
  Alcotest.(check bool) "forged reply is visible residue" false
    (Diagnostics.is_clean r);
  match r.Diagnostics.buffered with
  | [ stuck ] -> Alcotest.(check string) "embryo" "<chunk>" stuck.Diagnostics.cls_name
  | _ -> Alcotest.fail "expected exactly the forged message as residue"

let () =
  Alcotest.run "reply"
    [
      ( "lifecycle",
        [
          Alcotest.test_case "disposed after take" `Quick
            test_dest_disposed_after_immediate_take;
          Alcotest.test_case "disposed after resume" `Quick
            test_dest_disposed_after_blocked_resume;
          Alcotest.test_case "forged second reply" `Quick
            test_forged_second_reply_is_residue;
        ] );
    ]
