(* Tests for the surface language: lexer, parser, compile errors, and
   end-to-end script execution. *)

let run ?nodes src = Lang.Compile.run_source ?nodes src
let output ?nodes src = fst (run ?nodes src)

let read_script_early name =
  let path =
    List.find Sys.file_exists
      [ "../examples/abcl/" ^ name; "examples/abcl/" ^ name ]
  in
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> really_input_string ic (in_channel_length ic))

(* --- lexer --- *)

let test_lexer_basics () =
  let tokens = List.map fst (Lang.Lexer.tokenize "class x_1 := <- <= [ ] ;; comment\n 42 \"hi\\n\"") in
  Alcotest.(check bool) "shape" true
    (tokens
    = [
        Lang.Lexer.KW "class";
        Lang.Lexer.IDENT "x_1";
        Lang.Lexer.ASSIGN;
        Lang.Lexer.ARROW;
        Lang.Lexer.OP "<=";
        Lang.Lexer.LBRACKET;
        Lang.Lexer.RBRACKET;
        Lang.Lexer.INT 42;
        Lang.Lexer.STRING "hi\n";
        Lang.Lexer.EOF;
      ])

let test_lexer_lines () =
  let tokens = Lang.Lexer.tokenize "a\nb\n\nc" in
  let lines = List.map snd tokens in
  Alcotest.(check (list int)) "line numbers" [ 1; 2; 4; 4 ] lines

let test_lexer_error () =
  Alcotest.(check bool) "bad char rejected" true
    (match Lang.Lexer.tokenize "a ~ b" with
    | exception Lang.Lexer.Error { line = 1; _ } -> true
    | _ -> false)

(* --- parser --- *)

let test_parser_precedence () =
  let open Lang.Ast in
  Alcotest.(check bool) "mul binds tighter" true
    (Lang.Parser.parse_expr "1 + 2 * 3"
    = E_binop (Add, E_int 1, E_binop (Mul, E_int 2, E_int 3)));
  Alcotest.(check bool) "comparison above arithmetic" true
    (Lang.Parser.parse_expr "1 + 2 < 3 * 4"
    = E_binop
        (Lt, E_binop (Add, E_int 1, E_int 2), E_binop (Mul, E_int 3, E_int 4)));
  Alcotest.(check bool) "parens override" true
    (Lang.Parser.parse_expr "(1 + 2) * 3"
    = E_binop (Mul, E_binop (Add, E_int 1, E_int 2), E_int 3))

let test_parser_new_and_sends () =
  let open Lang.Ast in
  Alcotest.(check bool) "new with placement" true
    (Lang.Parser.parse_expr "new foo(1) on 3"
    = E_new { cls = "foo"; args = [ E_int 1 ]; where = W_on (E_int 3) });
  Alcotest.(check bool) "now send" true
    (Lang.Parser.parse_expr "now self.get()"
    = E_send_now { target = E_self; pattern = "get"; args = [] })

let test_parser_errors () =
  let syntax_error src =
    match Lang.Parser.parse_program src with
    | exception Lang.Parser.Error _ -> true
    | _ -> false
  in
  Alcotest.(check bool) "missing boot" true
    (syntax_error "class a method m() { } end");
  Alcotest.(check bool) "stray token" true (syntax_error "42");
  Alcotest.(check bool) "empty wait" true
    (syntax_error
       "class a method m() { wait { } } end boot a() on 0 <- m()")

(* --- compile-time errors --- *)

let script_error src =
  match run src with
  | exception Lang.Compile.Script_error _ -> true
  | _ -> false

let test_compile_errors () =
  Alcotest.(check bool) "duplicate class" true
    (script_error
       "class a method m() { } end class a method m() { } end boot a() on 0 <- m()");
  Alcotest.(check bool) "unknown class in new" true
    (script_error
       "class a method m() { let x = new ghost() remote; } end boot a() on 0 <- m()");
  Alcotest.(check bool) "unbound variable" true
    (script_error "class a method m() { print zzz; } end boot a() on 0 <- m()");
  Alcotest.(check bool) "division by zero" true
    (script_error "class a method m() { print 1 / 0; } end boot a() on 0 <- m()")

(* --- end-to-end scripts --- *)

let test_counter_script () =
  let out =
    output
      {| class counter(start)
           state n = start
           method inc() { n := n + 1; }
           method get() { reply n; }
         end
         class main
           method go() {
             let c = new counter(40) remote;
             send c.inc();
             send c.inc();
             print now c.get();
           }
         end
         boot main() on 0 <- go() |}
  in
  Alcotest.(check string) "output" "42\n" out

let test_control_flow_script () =
  let out =
    output
      {| class main
           method go() {
             let total = 0;
             for i = 1 to 10 { total := total + i; }
             if total = 55 { print "sum ok"; } else { print "sum bad"; }
             let k = 3;
             while k > 0 { print k; k := k - 1; }
             print len([1, 2, 3]) + hd([41]) - nth([1, 1], 1);
           }
         end
         boot main() on 0 <- go() |}
  in
  Alcotest.(check string) "output" "\"sum ok\"\n3\n2\n1\n43\n" out

let test_wait_script () =
  let out =
    output ~nodes:2
      {| class gate
           method open() {
             wait {
               key(v) { print v; }
               other() { print "wrong"; }
             }
           }
         end
         class sender
           method go(g) { send g.key(7); }
         end
         class main
           method go() {
             let g = new gate() on 0;
             send g.open();
             let s = new sender() on 1;
             send s.go(g);
           }
         end
         boot main() on 0 <- go() |}
  in
  Alcotest.(check string) "awaited arm ran" "7\n" out

let test_future_script () =
  let out =
    output ~nodes:2
      {| class worker
           method sq(x) { charge 50; reply x * x; }
         end
         class main
           method go() {
             let w = new worker() on 1;
             let f1 = future w.sq(3);
             let f2 = future w.sq(4);
             print touch f1 + touch f2;
           }
         end
         boot main() on 0 <- go() |}
  in
  Alcotest.(check string) "overlapped futures" "25\n" out

let test_queens_script_matches () =
  (* Works both under `dune runtest` (cwd = test dir, deps materialised
     one level up) and `dune exec` (cwd = workspace root). *)
  let path =
    List.find Sys.file_exists
      [ "../examples/abcl/queens.abcl"; "examples/abcl/queens.abcl" ]
  in
  let source =
    let ic = open_in_bin path in
    Fun.protect
      ~finally:(fun () -> close_in ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  in
  (* The bundled script solves N=8: 92 solutions. *)
  let out, sys = Lang.Compile.run_source ~nodes:9 source in
  Alcotest.(check string) "92 solutions" "92\n" out;
  Alcotest.(check bool) "thousands of objects" true
    (Simcore.Stats.get (Core.System.stats sys) "create.remote" > 1000)

let test_script_virtual_time_advances () =
  let _, sys =
    run
      {| class main
           method go() { charge 25000; }
         end
         boot main() on 0 <- go() |}
  in
  (* 25_000 instructions at 92 ns each, plus small runtime overheads. *)
  Alcotest.(check bool) "clock advanced by the charge" true
    (Core.System.elapsed sys >= 25_000 * 92)

let test_boot_placement_wraps () =
  let out = output ~nodes:2 {|
    class main
      method go() { print node; }
    end
    boot main() on 5 <- go() |} in
  (* node 5 wraps to 5 mod 2 = 1 *)
  Alcotest.(check string) "wrapped boot node" "1\n" out

let test_arity_overloading () =
  (* The same keyword with different arities names different patterns. *)
  let out =
    output
      {| class multi
           method m() { print "zero"; }
           method m(x) { print x; }
         end
         class main
           method go() {
             let o = new multi() local;
             send o.m();
             send o.m(7);
           }
         end
         boot main() on 0 <- go() |}
  in
  Alcotest.(check string) "both arities dispatched" "\"zero\"\n7\n" out

let test_fib_script () =
  let out, _ = Lang.Compile.run_source ~nodes:4 (read_script_early "fib.abcl") in
  Alcotest.(check string) "fib(12)" "233\n" out

let test_sieve_script () =
  let out, _ = Lang.Compile.run_source ~nodes:4 (read_script_early "sieve.abcl") in
  let lines = String.split_on_char '\n' (String.trim out) in
  (* pi(50) = 15 primes; arrival order of found-messages is not globally
     ordered, so compare as a set. *)
  Alcotest.(check int) "pi(50)" 15 (List.length lines);
  let sorted = List.sort compare (List.map int_of_string lines) in
  Alcotest.(check (list int)) "the primes up to 50"
    [ 2; 3; 5; 7; 11; 13; 17; 19; 23; 29; 31; 37; 41; 43; 47 ]
    sorted

let test_operators_and_prims () =
  let out =
    output
      {| class main
           method go() {
             print 7 % 3;
             print (1 < 2) && (2 <= 2) && (3 > 2) && (3 >= 3) && (1 <> 2);
             print not false || false;
             print - (3 - 5);
             print abs(0 - 9) + min(2, 5) + max(2, 5);
             print cons(1, [2, 3]);
             print null([]);
             print tl([1, 2]);
           }
         end
         boot main() on 0 <- go() |}
  in
  Alcotest.(check string) "output"
    "1\ntrue\ntrue\n2\n16\n[1; 2; 3]\ntrue\n[2]\n" out

let test_prim_errors () =
  Alcotest.(check bool) "hd of empty" true
    (script_error
       "class a method m() { print hd([]); } end boot a() on 0 <- m()");
  Alcotest.(check bool) "unknown prim" true
    (script_error
       "class a method m() { print frobnicate(1); } end boot a() on 0 <- m()");
  Alcotest.(check bool) "ctor arity" true
    (script_error
       "class a(x) state y = x method m() { } end boot a() on 0 <- m()")

(* --- multiactive declarations --- *)

let test_parse_multiactive_clauses () =
  let open Lang.Ast in
  let ast = Lang.Parser.parse_program (read_script_early "readers.abcl") in
  let table = List.find (fun c -> c.c_name = "table") ast.p_classes in
  match table.c_ma with
  | None -> Alcotest.fail "table should carry a multiactive declaration"
  | Some ma ->
      Alcotest.(check int) "budget" 3 ma.ma_budget;
      Alcotest.(check
                  (list (pair string (list string))))
        "groups"
        [ ("readers", [ "peek" ]) ]
        ma.ma_groups;
      Alcotest.(check (list (pair string string))) "compatible" [] ma.ma_compatible

let test_readers_script () =
  let out, sys =
    Lang.Compile.run_source ~nodes:4 (read_script_early "readers.abcl")
  in
  (* Bumps cannot overtake queued peeks, so the last ack carries the
     exact final value. *)
  Alcotest.(check string) "final value exact" "3\n" out;
  let st = Core.System.stats sys in
  Alcotest.(check int) "no serialization violations" 0
    (Simcore.Stats.get st "ma.conflict")

let test_multiactive_script_errors () =
  Alcotest.(check bool) "group lists a non-method" true
    (script_error
       "class a group g = nope method m() { } end boot a() on 0 <- m()");
  Alcotest.(check bool) "wait inside a multiactive class" true
    (script_error
       "class a group g = m method m() { wait { h() { } } } end boot a() on \
        0 <- m()");
  Alcotest.(check bool) "compatible names an unknown group" true
    (script_error
       "class a group g = m compatible g h method m() { } end boot a() on 0 \
        <- m()");
  let syntax_error src =
    match Lang.Parser.parse_program src with
    | exception Lang.Parser.Error _ -> true
    | _ -> false
  in
  Alcotest.(check bool) "budget without a group" true
    (syntax_error "class a budget 2 method m() { } end boot a() on 0 <- m()")

(* --- pretty-printer round trip --- *)

let read_script name =
  let path =
    List.find Sys.file_exists
      [ "../examples/abcl/" ^ name; "examples/abcl/" ^ name ]
  in
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let test_pretty_roundtrip () =
  List.iter
    (fun script ->
      let ast = Lang.Parser.parse_program (read_script script) in
      let printed = Lang.Pretty.program_to_string ast in
      let reparsed =
        try Lang.Parser.parse_program printed
        with Lang.Parser.Error { line; message } ->
          Alcotest.failf "%s: reprint does not parse (line %d: %s):\n%s"
            script line message printed
      in
      if reparsed <> ast then
        Alcotest.failf "%s: print/parse round trip changed the AST" script)
    [
      "counter.abcl"; "pingpong.abcl"; "queens.abcl"; "sieve.abcl";
      "fib.abcl"; "readers.abcl";
    ]

let test_pretty_behaviour_preserved () =
  (* The reprinted queens program still computes 92 solutions. *)
  let ast = Lang.Parser.parse_program (read_script "queens.abcl") in
  let printed = Lang.Pretty.program_to_string ast in
  let out, _ = Lang.Compile.run_source ~nodes:9 printed in
  Alcotest.(check string) "92 solutions after reprint" "92\n" out

let () =
  Alcotest.run "lang"
    [
      ( "lexer",
        [
          Alcotest.test_case "basics" `Quick test_lexer_basics;
          Alcotest.test_case "lines" `Quick test_lexer_lines;
          Alcotest.test_case "errors" `Quick test_lexer_error;
        ] );
      ( "parser",
        [
          Alcotest.test_case "precedence" `Quick test_parser_precedence;
          Alcotest.test_case "new and sends" `Quick test_parser_new_and_sends;
          Alcotest.test_case "errors" `Quick test_parser_errors;
        ] );
      ( "compile",
        [ Alcotest.test_case "errors" `Quick test_compile_errors ] );
      ( "multiactive",
        [
          Alcotest.test_case "clauses parsed" `Quick
            test_parse_multiactive_clauses;
          Alcotest.test_case "readers script" `Quick test_readers_script;
          Alcotest.test_case "errors" `Quick test_multiactive_script_errors;
        ] );
      ( "pretty",
        [
          Alcotest.test_case "roundtrip" `Quick test_pretty_roundtrip;
          Alcotest.test_case "behaviour preserved" `Quick
            test_pretty_behaviour_preserved;
        ] );
      ( "scripts",
        [
          Alcotest.test_case "counter" `Quick test_counter_script;
          Alcotest.test_case "control flow" `Quick test_control_flow_script;
          Alcotest.test_case "selective wait" `Quick test_wait_script;
          Alcotest.test_case "futures" `Quick test_future_script;
          Alcotest.test_case "queens matches" `Quick test_queens_script_matches;
          Alcotest.test_case "virtual time" `Quick
            test_script_virtual_time_advances;
          Alcotest.test_case "boot wraps" `Quick test_boot_placement_wraps;
          Alcotest.test_case "sieve script" `Quick test_sieve_script;
          Alcotest.test_case "fib script" `Quick test_fib_script;
          Alcotest.test_case "arity overloading" `Quick test_arity_overloading;
          Alcotest.test_case "operators and prims" `Quick
            test_operators_and_prims;
          Alcotest.test_case "prim errors" `Quick test_prim_errors;
        ] );
    ]
