(* Unit tests for the machine layer: cost model, nodes, the discrete-event
   engine and the active-message plumbing. *)

module Engine = Machine.Engine
module Node = Machine.Node
module Am = Machine.Am
module Cost_model = Machine.Cost_model

type Am.payload += Marker of int

let test_cost_model_totals () =
  let c = Cost_model.default in
  Alcotest.(check int) "dormant path is the paper's 25" 25
    (Cost_model.dormant_send_instructions c);
  Alcotest.(check int) "time scales" (25 * c.ns_per_instr)
    (Cost_model.time c 25)

let test_node_basics () =
  let n = Node.create ~id:3 in
  Alcotest.(check int) "id" 3 (Node.id n);
  Alcotest.(check bool) "idle initially" true (Node.is_idle n);
  Node.charge_ns n 100;
  Alcotest.(check int) "clock" 100 (Node.now n);
  Node.heap_alloc_words n 7;
  Node.heap_alloc_words n 3;
  Alcotest.(check int) "heap accounting" 10 (Node.heap_words n)

let test_inbox_ready_gating () =
  let n = Node.create ~id:0 in
  let am = { Am.handler = 0; src = 1; size_bytes = 0; payload = Am.Ping } in
  Node.inbox_push n ~arrival:500 am;
  Alcotest.(check bool) "not ready before arrival" true
    (Option.is_none (Node.inbox_pop_ready n));
  Node.charge_ns n 500;
  Alcotest.(check bool) "ready at arrival" true
    (Option.is_some (Node.inbox_pop_ready n))

let test_dispatch_and_quiesce () =
  let m = Engine.create ~nodes:4 () in
  let hits = ref [] in
  let h =
    Engine.register_handler m Am.Service ~name:"marker" (fun _ node am ->
        match am.Am.payload with
        | Marker k -> hits := (Node.id node, k) :: !hits
        | _ -> assert false)
  in
  let n0 = Engine.node m 0 in
  Engine.send_am m ~src:n0 ~dst:1 ~handler:h ~size_bytes:4 (Marker 10);
  Engine.send_am m ~src:n0 ~dst:2 ~handler:h ~size_bytes:4 (Marker 20);
  Engine.run m;
  let sorted = List.sort compare !hits in
  Alcotest.(check (list (pair int int))) "both delivered" [ (1, 10); (2, 20) ] sorted;
  Alcotest.(check int) "packets" 2 (Engine.packets_sent m)

let test_fifo_order_across_engine () =
  let m = Engine.create ~nodes:2 () in
  let seen = ref [] in
  let h =
    Engine.register_handler m Am.Service ~name:"seq" (fun _ _ am ->
        match am.Am.payload with
        | Marker k -> seen := k :: !seen
        | _ -> assert false)
  in
  let n0 = Engine.node m 0 in
  for k = 1 to 10 do
    Engine.send_am m ~src:n0 ~dst:1 ~handler:h ~size_bytes:4 (Marker k)
  done;
  Engine.run m;
  Alcotest.(check (list int)) "transmission order preserved"
    [ 1; 2; 3; 4; 5; 6; 7; 8; 9; 10 ]
    (List.rev !seen)

let test_loopback () =
  let m = Engine.create ~nodes:1 () in
  let got = ref false in
  let h =
    Engine.register_handler m Am.Service ~name:"self" (fun _ _ _ -> got := true)
  in
  let n0 = Engine.node m 0 in
  Engine.send_am m ~src:n0 ~dst:0 ~handler:h ~size_bytes:0 Am.Ping;
  Engine.run m;
  Alcotest.(check bool) "loopback delivered" true !got;
  Alcotest.(check int) "loopback bypasses fabric" 0 (Engine.packets_sent m)

let test_receive_charges_time () =
  let run delivery =
    let config = { Engine.default_config with Engine.delivery } in
    let m = Engine.create ~config ~nodes:2 () in
    let h = Engine.register_handler m Am.Service ~name:"nop" (fun _ _ _ -> ()) in
    Engine.send_am m ~src:(Engine.node m 0) ~dst:1 ~handler:h ~size_bytes:0
      Am.Ping;
    Engine.run m;
    Node.now (Engine.node m 1)
  in
  let polling = run Engine.Polling and interrupt = run Engine.Interrupt in
  let c = Cost_model.default in
  Alcotest.(check int) "interrupt adds overhead"
    (Cost_model.time c c.interrupt_overhead)
    (interrupt - polling);
  Alcotest.(check bool) "receive handling charged" true (polling > 0)

let test_post_and_charge () =
  let m = Engine.create ~nodes:2 () in
  let ran = ref false in
  Engine.post m (Engine.node m 1) (fun () -> ran := true);
  Engine.run m;
  Alcotest.(check bool) "posted thunk ran" true !ran;
  (* The scheduling-queue dequeue cost is charged by the engine. *)
  Alcotest.(check bool) "dequeue charged" true (Node.now (Engine.node m 1) > 0)

let test_max_slices () =
  let m = Engine.create ~nodes:1 () in
  let n0 = Engine.node m 0 in
  (* A thunk that reposts itself forever. *)
  let rec loop () = Engine.post m n0 loop in
  Engine.post m n0 loop;
  Alcotest.check_raises "livelock backstop"
    (Failure "Engine.run: max_slices exceeded (livelock?)") (fun () ->
      Engine.run ~max_slices:100 m)

let test_determinism () =
  let run () =
    let m = Engine.create ~nodes:4 () in
    let count = ref 0 in
    let h = ref (-1) in
    h :=
      Engine.register_handler m Am.Service ~name:"bounce" (fun m' node am ->
          incr count;
          if !count < 50 then
            Engine.send_am m' ~src:node ~dst:am.Am.src ~handler:!h ~size_bytes:4
              Am.Ping);
    Engine.send_am m ~src:(Engine.node m 0) ~dst:1 ~handler:!h ~size_bytes:4
      Am.Ping;
    Engine.run m;
    (Engine.elapsed m, !count)
  in
  Alcotest.(check (pair int int)) "identical runs" (run ()) (run ())

let test_utilization_bounds () =
  let m = Engine.create ~nodes:4 () in
  Alcotest.(check (float 0.0001)) "empty machine" 0. (Engine.utilization m);
  let h = Engine.register_handler m Am.Service ~name:"nop" (fun _ _ _ -> ()) in
  Engine.send_am m ~src:(Engine.node m 0) ~dst:1 ~handler:h ~size_bytes:0
    Am.Ping;
  Engine.run m;
  let u = Engine.utilization m in
  Alcotest.(check bool) "in (0,1]" true (u > 0. && u <= 1.)

let test_observer_streams_events () =
  let m = Engine.create ~nodes:2 () in
  let deliveries = ref 0 and slices = ref 0 in
  Engine.set_observer m
    (Some
       (function
       | Engine.Obs_deliver _ -> incr deliveries
       | Engine.Obs_slice _ -> incr slices
       | Engine.Obs_batch _ | Engine.Obs_crash _ | Engine.Obs_restart _ -> ()));
  let h = Engine.register_handler m Am.Service ~name:"nop" (fun _ _ _ -> ()) in
  for _ = 1 to 5 do
    Engine.send_am m ~src:(Engine.node m 0) ~dst:1 ~handler:h ~size_bytes:4
      Am.Ping
  done;
  Engine.run m;
  Alcotest.(check int) "one delivery observation per packet" 5 !deliveries;
  Alcotest.(check bool) "slices observed" true (!slices >= 1);
  Engine.set_observer m None

let test_interrupt_point_polling_noop () =
  let m = Engine.create ~nodes:1 () in
  let n0 = Engine.node m 0 in
  (* With polling delivery this must be a no-op even with a ready inbox. *)
  let h = Engine.register_handler m Am.Service ~name:"nop" (fun _ _ _ -> ()) in
  Node.inbox_push n0 ~arrival:0
    { Am.handler = h; src = 0; size_bytes = 0; payload = Am.Ping };
  Engine.interrupt_point m n0;
  Alcotest.(check int) "message still queued" 1 (Node.inbox_size n0)

let test_unknown_handler () =
  let m = Engine.create ~nodes:2 () in
  Alcotest.check_raises "unknown handler"
    (Invalid_argument "Engine: unknown handler") (fun () ->
      Engine.send_am m ~src:(Engine.node m 0) ~dst:1 ~handler:99 ~size_bytes:0
        Am.Ping)

let () =
  Alcotest.run "machine"
    [
      ( "cost_model",
        [ Alcotest.test_case "totals" `Quick test_cost_model_totals ] );
      ( "node",
        [
          Alcotest.test_case "basics" `Quick test_node_basics;
          Alcotest.test_case "inbox gating" `Quick test_inbox_ready_gating;
        ] );
      ( "engine",
        [
          Alcotest.test_case "dispatch+quiesce" `Quick test_dispatch_and_quiesce;
          Alcotest.test_case "fifo order" `Quick test_fifo_order_across_engine;
          Alcotest.test_case "loopback" `Quick test_loopback;
          Alcotest.test_case "receive charges" `Quick test_receive_charges_time;
          Alcotest.test_case "post" `Quick test_post_and_charge;
          Alcotest.test_case "max_slices" `Quick test_max_slices;
          Alcotest.test_case "determinism" `Quick test_determinism;
          Alcotest.test_case "utilization" `Quick test_utilization_bounds;
          Alcotest.test_case "unknown handler" `Quick test_unknown_handler;
          Alcotest.test_case "observer" `Quick test_observer_streams_events;
          Alcotest.test_case "interrupt point noop" `Quick
            test_interrupt_point_polling_noop;
        ] );
    ]
