(* Tests for future-type message passing: asynchronous request with a
   claimable reply handle, built on the same reply-destination objects as
   now-type sends. *)

open Core

let p_work = Pattern.intern "tf_work" ~arity:1
let p_go = Pattern.intern "tf_go" ~arity:1

let worker_cls () =
  Class_def.define ~name:"tf_worker"
    ~methods:
      [
        ( p_work,
          fun ctx msg ->
            let n = Value.to_int (Message.arg msg 0) in
            Ctx.charge ctx 100;
            Ctx.reply ctx msg (Value.int (n * n)) );
      ]
    ()

let run_driver ~nodes ~worker_node body =
  let worker = worker_cls () in
  let out = ref [] in
  let driver =
    Class_def.define ~name:"tf_driver"
      ~methods:
        [
          ( p_go,
            fun ctx msg ->
              let w = Value.to_addr (Message.arg msg 0) in
              body ctx w out );
        ]
      ()
  in
  let sys = System.boot ~nodes ~classes:[ worker; driver ] () in
  let w = System.create_root sys ~node:worker_node worker [] in
  let d = System.create_root sys ~node:0 driver [] in
  System.send_boot sys d p_go [ Value.addr w ];
  System.run sys;
  (!out, System.stats sys)

let test_future_overlap () =
  (* Three requests issued before any is touched: the sender overlaps
     all three remote round trips instead of serialising them. *)
  let results, stats =
    run_driver ~nodes:2 ~worker_node:1 (fun ctx w out ->
        let futures =
          List.map
            (fun n -> Ctx.send_future ctx w p_work [ Value.int n ])
            [ 2; 3; 4 ]
        in
        List.iter
          (fun f -> out := Value.to_int (Ctx.touch ctx f) :: !out)
          futures)
  in
  Alcotest.(check (list int)) "all replies claimed in order" [ 4; 9; 16 ]
    (List.rev results);
  (* At least the first touch must block (remote round trip). *)
  Alcotest.(check bool) "first touch blocked" true
    (Simcore.Stats.get stats "reply.blocked" >= 1)

let test_future_ready_local () =
  let results, stats =
    run_driver ~nodes:1 ~worker_node:0 (fun ctx w out ->
        let f = Ctx.send_future ctx w p_work [ Value.int 5 ] in
        (* Local + stack scheduling: the worker ran during the send, so
           the future is already resolved. *)
        if Ctx.future_ready ctx f then
          out := Value.to_int (Ctx.touch ctx f) :: !out)
  in
  Alcotest.(check (list int)) "resolved without blocking" [ 25 ] results;
  Alcotest.(check int) "no block" 0 (Simcore.Stats.get stats "reply.blocked")

let test_future_double_touch () =
  let failure = ref None in
  let _, _ =
    run_driver ~nodes:1 ~worker_node:0 (fun ctx w _out ->
        let f = Ctx.send_future ctx w p_work [ Value.int 1 ] in
        ignore (Ctx.touch ctx f);
        match Ctx.touch ctx f with
        | _ -> ()
        | exception Invalid_argument m -> failure := Some m)
  in
  Alcotest.(check (option string)) "double touch rejected"
    (Some "Ctx.touch: future already claimed") !failure

let test_future_addr_forwardable () =
  (* The future's reply destination can be shipped to a third object,
     which replies on the original worker's behalf. *)
  let p_assist = Pattern.intern "tf_assist" ~arity:1 in
  let helper =
    Class_def.define ~name:"tf_helper"
      ~methods:
        [
          ( p_assist,
            fun ctx msg ->
              let dest = Value.to_addr (Message.arg msg 0) in
              Ctx.send ctx dest Pattern.reply [ Value.int 77 ] );
        ]
      ()
  in
  let out = ref [] in
  let p_go2 = Pattern.intern "tf_go2" ~arity:1 in
  let lazy_worker =
    (* Never replies itself; the driver routes the future's destination
       to the helper instead. *)
    Class_def.define ~name:"tf_lazy" ~methods:[ (p_work, fun _ _ -> ()) ] ()
  in
  let helper_addr = ref Value.unit in
  let driver =
    Class_def.define ~name:"tf_driver2"
      ~methods:
        [
          ( p_go2,
            fun ctx msg ->
              let w = Value.to_addr (Message.arg msg 0) in
              let f = Ctx.send_future ctx w p_work [ Value.int 0 ] in
              Ctx.send ctx
                (Value.to_addr !helper_addr)
                p_assist
                [ Value.addr (Ctx.future_addr f) ];
              out := Value.to_int (Ctx.touch ctx f) :: !out );
        ]
      ()
  in
  let sys = System.boot ~nodes:3 ~classes:[ helper; lazy_worker; driver ] () in
  let h = System.create_root sys ~node:2 helper [] in
  helper_addr := Value.addr h;
  let w = System.create_root sys ~node:1 lazy_worker [] in
  let d = System.create_root sys ~node:0 driver [] in
  System.send_boot sys d p_go2 [ Value.addr w ];
  System.run sys;
  Alcotest.(check (list int)) "reply delivered by the helper" [ 77 ] !out

let () =
  Alcotest.run "future"
    [
      ( "future-type",
        [
          Alcotest.test_case "overlapped requests" `Quick test_future_overlap;
          Alcotest.test_case "ready without blocking" `Quick
            test_future_ready_local;
          Alcotest.test_case "double touch" `Quick test_future_double_touch;
          Alcotest.test_case "forwardable destination" `Quick
            test_future_addr_forwardable;
        ] );
    ]
