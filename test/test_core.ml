open Core

let v = Alcotest.testable Value.pp Value.equal

let counter_cls () =
  Class_def.define ~name:"counter" ~state:[| "n" |]
    ~init:(fun _ -> [| Value.int 0 |])
    ~methods:
      [
        Class_def.meth "inc" ~arity:0 (fun ctx _msg ->
            Ctx.set ctx 0 (Value.int (Value.to_int (Ctx.get ctx 0) + 1)));
        Class_def.meth "get" ~arity:0 (fun ctx msg -> Ctx.reply ctx msg (Ctx.get ctx 0));
      ]
    ()

let server_cls () =
  Class_def.define ~name:"server"
    ~methods:
      [
        Class_def.meth "double" ~arity:1 (fun ctx msg ->
            Ctx.reply ctx msg (Value.int (2 * Value.to_int (Message.arg msg 0))));
      ]
    ()

let client_cls () =
  Class_def.define ~name:"client" ~state:[| "result" |]
    ~methods:
      [
        Class_def.meth "start" ~arity:1 (fun ctx msg ->
            let server = Value.to_addr (Message.arg msg 0) in
            let r = Ctx.send_now ctx server (Pattern.intern "double" ~arity:1) [ Value.int 21 ] in
            Ctx.set ctx 0 r);
      ]
    ()

let test_counter () =
  let counter = counter_cls () in
  let sys = System.boot ~nodes:4 ~classes:[ counter ] () in
  let addr = System.create_root sys ~node:0 counter [] in
  let inc = Pattern.intern "inc" ~arity:0 in
  System.send_boot sys addr inc [];
  System.send_boot sys addr inc [];
  System.send_boot sys addr inc [];
  System.run sys;
  match System.lookup_obj sys addr with
  | Some obj -> Alcotest.check v "count" (Value.int 3) obj.Kernel.state.(0)
  | None -> Alcotest.fail "object missing"

let test_now_remote () =
  let server = server_cls () and client = client_cls () in
  let sys = System.boot ~nodes:4 ~classes:[ server; client ] () in
  let s = System.create_root sys ~node:3 server [] in
  let c = System.create_root sys ~node:0 client [] in
  System.send_boot sys c (Pattern.intern "start" ~arity:1) [ Value.addr s ];
  System.run sys;
  match System.lookup_obj sys c with
  | Some obj -> Alcotest.check v "doubled" (Value.int 42) obj.Kernel.state.(0)
  | None -> Alcotest.fail "object missing"

let test_remote_create () =
  let counter = counter_cls () in
  let spawner =
    Class_def.define ~name:"spawner" ~state:[| "child" |]
      ~methods:
        [
          Class_def.meth "go" ~arity:0 (fun ctx _msg ->
              let child = Ctx.create_on ctx ~target:2 counter [] in
              Ctx.send_kw ctx child "inc" [];
              Ctx.send_kw ctx child "inc" [];
              Ctx.set ctx 0 (Value.addr child));
        ]
      ()
  in
  let sys = System.boot ~nodes:4 ~classes:[ counter; spawner ] () in
  let sp = System.create_root sys ~node:0 spawner [] in
  System.send_boot sys sp (Pattern.intern "go" ~arity:0) [];
  System.run sys;
  let sp_obj = Option.get (System.lookup_obj sys sp) in
  let child = Value.to_addr sp_obj.Kernel.state.(0) in
  Alcotest.(check int) "on node 2" 2 child.Value.node;
  let child_obj = Option.get (System.lookup_obj sys child) in
  Alcotest.check v "child count" (Value.int 2) child_obj.Kernel.state.(0)

let () =
  Alcotest.run "repro"
    [
      ( "smoke",
        [
          Alcotest.test_case "counter" `Quick test_counter;
          Alcotest.test_case "now-type remote" `Quick test_now_remote;
          Alcotest.test_case "remote create" `Quick test_remote_create;
        ] );
    ]
