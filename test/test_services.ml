(* Tests for the Category-4 service layer: termination combining, load
   gossip, and the GC export analysis. *)

open Core

let p_run = Pattern.intern "tsv_run" ~arity:0
let p_ack = Pattern.intern "tsv_ack" ~arity:1

let test_termination_combining () =
  let result = ref None in
  let cls =
    Class_def.define ~name:"tsv_comb" ~state:[| "pending"; "acc" |]
      ~init:(fun _ -> [| Value.int 0; Value.int 0 |])
      ~methods:
        [
          ( p_run,
            fun ctx _msg ->
              Services.Termination.begin_wait ctx ~pending_slot:0 ~acc_slot:1
                ~expected:3;
              let self = Ctx.self ctx in
              List.iter
                (fun k -> Ctx.send ctx self p_ack [ Value.int k ])
                [ 5; 7; 30 ] );
          ( p_ack,
            fun ctx msg ->
              let count = Value.to_int (Message.arg msg 0) in
              match
                Services.Termination.record_ack ctx ~pending_slot:0 ~acc_slot:1
                  ~count
              with
              | Some total -> result := Some total
              | None ->
                  Alcotest.(check bool)
                    "still pending" true
                    (Services.Termination.pending ctx ~pending_slot:0 > 0) );
        ]
      ()
  in
  let sys = System.boot ~nodes:1 ~classes:[ cls ] () in
  let a = System.create_root sys ~node:0 cls [] in
  System.send_boot sys a p_run [];
  System.run sys;
  Alcotest.(check (option int)) "combined on last ack" (Some 42) !result

let test_termination_errors () =
  let failure = ref None in
  let cls =
    Class_def.define ~name:"tsv_err" ~state:[| "pending"; "acc" |]
      ~init:(fun _ -> [| Value.int 0; Value.int 0 |])
      ~methods:
        [
          ( p_run,
            fun ctx _msg ->
              (match
                 Services.Termination.begin_wait ctx ~pending_slot:0 ~acc_slot:1
                   ~expected:0
               with
              | () -> ()
              | exception Invalid_argument m -> failure := Some m);
              match
                Services.Termination.record_ack ctx ~pending_slot:0 ~acc_slot:1
                  ~count:1
              with
              | _ -> Alcotest.fail "ack without expectation must fail"
              | exception Invalid_argument _ -> () );
        ]
      ()
  in
  let sys = System.boot ~nodes:1 ~classes:[ cls ] () in
  let a = System.create_root sys ~node:0 cls [] in
  System.send_boot sys a p_run [];
  System.run sys;
  Alcotest.(check (option string)) "zero expectation rejected"
    (Some "Termination.begin_wait: expected <= 0")
    !failure

let p_gossip = Pattern.intern "tsv_gossip" ~arity:0
let p_tickle = Pattern.intern "tsv_tickle" ~arity:0

let test_load_gossip () =
  let service = ref None in
  let cls =
    Class_def.define ~name:"tsv_load"
      ~methods:
        [
          ( p_gossip,
            fun ctx _msg ->
              Services.Load.broadcast (Option.get !service) ctx );
          (p_tickle, fun _ _ -> ());
        ]
      ()
  in
  let sys = System.boot ~nodes:9 ~classes:[ cls ] () in
  let load = Services.Load.attach sys in
  service := Some load;
  let a = System.create_root sys ~node:0 cls [] in
  System.send_boot sys a p_gossip [];
  (* Two further scheduling-queue items are pending while the broadcast
     runs, so the advertised load is 2. *)
  let machine = System.machine sys in
  Machine.Engine.post machine (Machine.Engine.node machine 0) (fun () -> ());
  Machine.Engine.post machine (Machine.Engine.node machine 0) (fun () -> ());
  System.run sys;
  Alcotest.(check int) "one broadcast" 1 (Services.Load.broadcasts load);
  let topo = Machine.Engine.topology (System.machine sys) in
  let neighbors = Network.Topology.neighbors topo 0 in
  List.iter
    (fun nb ->
      Alcotest.(check bool)
        (Printf.sprintf "neighbor %d heard node 0's load" nb)
        true
        (Services.Load.known_load load ~node:nb ~about:0 = 2))
    neighbors;
  (* Idle machine: every candidate currently has load 0, so the least-
     loaded pick must be a valid candidate (self wins ties). *)
  Alcotest.(check int) "pick on idle machine" 0
    (Services.Load.local_load load ~node:0)

let test_load_aware_placement () =
  (* Queens under the gossip-backed placement still computes correctly
     and keeps a larger share of messages local than global round-robin.
     Auto-gossip is required: a neighbour that never gossiped reads as
     unknown, so without it every placement would fall back to self. *)
  let placement, install = Services.Load.deferred_placement () in
  let rt_config =
    {
      System.default_rt_config with
      Kernel.placement;
      gossip_interval_ns = 20_000;
    }
  in
  let cls = Apps.Nqueens_par.solver_cls () in
  let sys = System.boot ~rt_config ~nodes:16 ~classes:[ cls ] () in
  install (Services.Load.attach sys);
  let root =
    System.create_root sys ~node:0 cls
      [ Value.int 7; Value.int Apps.Queens_board.empty_packed; Value.unit ]
  in
  System.send_boot sys root (Pattern.intern "expand" ~arity:0) [];
  System.run sys;
  let st = System.stats sys in
  let local = Simcore.Stats.get st "send.local.dormant" in
  let remote = Simcore.Stats.get st "send.remote" in
  Alcotest.(check bool) "work actually spread and stayed partly local" true
    (local > 0 && remote > 0);
  (* Compare against global round robin: locality must be higher. *)
  let rr = Apps.Nqueens_par.run ~nodes:16 ~n:7 () in
  Alcotest.(check int) "same solution count" rr.Apps.Nqueens_par.solutions 40;
  let frac_local = float_of_int local /. float_of_int (local + remote) in
  Alcotest.(check bool) "locality beats 1/16 round robin" true
    (frac_local > 1.2 /. 16.)

let test_pick_least_unknown_fallback () =
  (* Neighbours that never gossiped are unknown, not load 0: even a
     loaded node keeps work local rather than dumping it on a node it
     knows nothing about. *)
  let sys = System.boot ~nodes:9 ~classes:[] () in
  let load = Services.Load.attach sys in
  let machine = System.machine sys in
  Machine.Engine.post machine (Machine.Engine.node machine 0) (fun () -> ());
  Machine.Engine.post machine (Machine.Engine.node machine 0) (fun () -> ());
  Alcotest.(check int) "self is loaded" 2 (Services.Load.local_load load ~node:0);
  Alcotest.(check (option int)) "neighbor 1 unknown" None
    (Services.Load.known_load_opt load ~node:0 ~about:1);
  Alcotest.(check int) "falls back to self" 0
    (Services.Load.pick_least_for load ~node:0)

let test_pick_least_tiebreak () =
  (* Node 0's torus neighbours on 9 nodes are 1, 2, 3 and 6. Nodes 1 and
     3 gossip load 0; with node 0 itself at load 2 the pick must be the
     lowest-id tied neighbour. *)
  let sys = System.boot ~nodes:9 ~classes:[] () in
  let load = Services.Load.attach sys in
  Services.Load.broadcast_node load ~node:1;
  Services.Load.broadcast_node load ~node:3;
  System.run sys;
  let machine = System.machine sys in
  Machine.Engine.post machine (Machine.Engine.node machine 0) (fun () -> ());
  Machine.Engine.post machine (Machine.Engine.node machine 0) (fun () -> ());
  Alcotest.(check (option int)) "heard 1" (Some 0)
    (Services.Load.known_load_opt load ~node:0 ~about:1);
  Alcotest.(check (option int)) "heard 3" (Some 0)
    (Services.Load.known_load_opt load ~node:0 ~about:3);
  Alcotest.(check int) "lowest-id tied neighbor wins" 1
    (Services.Load.pick_least_for load ~node:0)

let test_auto_gossip_torus () =
  (* With gossip_interval_ns set, load information propagates across the
     whole torus without any application cooperation: after a busy run,
     every node has heard from each of its neighbours. *)
  let rt_config =
    { System.default_rt_config with Kernel.gossip_interval_ns = 10_000 }
  in
  let cls = Apps.Nqueens_par.solver_cls () in
  let sys = System.boot ~rt_config ~nodes:9 ~classes:[ cls ] () in
  let load = Services.Load.attach sys in
  let root =
    System.create_root sys ~node:0 cls
      [ Value.int 6; Value.int Apps.Queens_board.empty_packed; Value.unit ]
  in
  System.send_boot sys root (Pattern.intern "expand" ~arity:0) [];
  System.run sys;
  Alcotest.(check bool) "every node gossiped at least once" true
    (Services.Load.broadcasts load >= 9);
  let topo = Machine.Engine.topology (System.machine sys) in
  for node = 0 to 8 do
    List.iter
      (fun nb ->
        Alcotest.(check bool)
          (Printf.sprintf "node %d heard neighbor %d" node nb)
          true
          (Services.Load.known_load_opt load ~node ~about:nb <> None))
      (Network.Topology.neighbors topo node)
  done

let test_deferred_placement_two_phase () =
  (* Phase 1 (before install): the policy has no service yet and must
     place locally. Phase 2 (after install): it consults gossiped
     loads. *)
  let placement, install = Services.Load.deferred_placement () in
  let pick =
    match placement with
    | Kernel.Custom_policy f -> f
    | _ -> Alcotest.fail "deferred_placement must be a custom policy"
  in
  Alcotest.(check int) "pre-install places on self" 2 (pick 2);
  let sys = System.boot ~nodes:4 ~classes:[] () in
  let load = Services.Load.attach sys in
  install load;
  Services.Load.broadcast_node load ~node:1;
  System.run sys;
  let machine = System.machine sys in
  Machine.Engine.post machine (Machine.Engine.node machine 0) (fun () -> ());
  Machine.Engine.post machine (Machine.Engine.node machine 0) (fun () -> ());
  Alcotest.(check int) "post-install picks gossiped idle neighbor" 1 (pick 0)

let p_hold = Pattern.intern "tsv_hold" ~arity:1

let test_gc_analysis () =
  let holder =
    Class_def.define ~name:"tsv_holder" ~state:[| "peer" |]
      ~init:(fun _ -> [| Value.unit |])
      ~methods:
        [ (p_hold, fun ctx msg -> Ctx.set ctx 0 (Message.arg msg 0)) ]
      ()
  in
  let sys = System.boot ~nodes:2 ~classes:[ holder ] () in
  let a = System.create_root sys ~node:0 holder [] in
  let b = System.create_root sys ~node:1 holder [] in
  let c = System.create_root sys ~node:1 holder [] in
  ignore c;
  (* a (node 0) holds a reference to b (node 1): b is exported. *)
  System.send_boot sys a p_hold [ Value.addr b ];
  (* b holds a local reference to c: c stays local-only. *)
  System.send_boot sys b p_hold [ Value.addr c ];
  System.run sys;
  let r = Services.Gc_analysis.survey sys in
  Alcotest.(check int) "three objects" 3 r.Services.Gc_analysis.total;
  Alcotest.(check int) "no embryos" 0 r.embryos;
  Alcotest.(check int) "b exported" 1 r.exported;
  Alcotest.(check int) "a and c movable" 2 r.local_only;
  ignore (Format.asprintf "%a" Services.Gc_analysis.pp_report r)

let test_gc_analysis_embryo () =
  let sys = System.boot ~nodes:2 ~classes:[] () in
  let rt1 = System.rt sys 1 in
  ignore (Sched.lookup_or_embryo rt1 0);
  let r = Services.Gc_analysis.survey sys in
  Alcotest.(check int) "embryo counted" 1 r.Services.Gc_analysis.embryos

(* --- timeline --- *)

let test_timeline () =
  let cls = Apps.Nqueens_par.solver_cls () in
  let sys = System.boot ~nodes:8 ~classes:[ cls ] () in
  let tl = Services.Timeline.attach sys in
  let root =
    System.create_root sys ~node:0 cls
      [ Value.int 7; Value.int Apps.Queens_board.empty_packed; Value.unit ]
  in
  System.send_boot sys root (Pattern.intern "expand" ~arity:0) [];
  System.run sys;
  Services.Timeline.detach tl;
  Alcotest.(check bool) "slices recorded" true (Services.Timeline.slices tl > 10);
  Alcotest.(check bool) "deliveries recorded" true
    (Services.Timeline.deliveries tl > 100);
  let busy0 = Services.Timeline.busy_fraction tl ~node:0 in
  Alcotest.(check bool) "node 0 busy fraction in (0,1]" true
    (busy0 > 0. && busy0 <= 1.0);
  let chart = Services.Timeline.render ~width:40 tl in
  Alcotest.(check bool) "chart shows busy buckets" true
    (String.contains chart '#' || String.contains chart '.');
  (match Services.Timeline.message_matrix tl with
  | (_, _, heaviest) :: _ -> Alcotest.(check bool) "traffic sorted" true (heaviest > 0)
  | [] -> Alcotest.fail "no traffic recorded")

let () =
  Alcotest.run "services"
    [
      ( "termination",
        [
          Alcotest.test_case "combining" `Quick test_termination_combining;
          Alcotest.test_case "errors" `Quick test_termination_errors;
        ] );
      ( "load",
        [
          Alcotest.test_case "gossip" `Quick test_load_gossip;
          Alcotest.test_case "load-aware placement" `Quick
            test_load_aware_placement;
          Alcotest.test_case "unknown falls back to self" `Quick
            test_pick_least_unknown_fallback;
          Alcotest.test_case "tie-break to lowest id" `Quick
            test_pick_least_tiebreak;
          Alcotest.test_case "auto-gossip over torus" `Quick
            test_auto_gossip_torus;
          Alcotest.test_case "deferred placement two-phase" `Quick
            test_deferred_placement_two_phase;
        ] );
      ( "gc_analysis",
        [
          Alcotest.test_case "export survey" `Quick test_gc_analysis;
          Alcotest.test_case "embryos" `Quick test_gc_analysis_embryo;
        ] );
      ( "timeline",
        [ Alcotest.test_case "records and renders" `Quick test_timeline ] );
    ]

