(* Randomised integration scenarios: token storms over random actor
   graphs, and a kitchen-sink program combining every messaging mode.
   All randomness is the simulator's own (seeded), so runs are
   reproducible. *)

open Core

let p_link = Pattern.intern "st_link" ~arity:1
let p_token = Pattern.intern "st_token" ~arity:1
let p_go = Pattern.intern "st_go" ~arity:0

(* --- token storms: each token carries a TTL and hops across a random
   peer graph; conservation: total observed hops = sum of initial TTLs --- *)

let router_cls () =
  Class_def.define ~name:"st_router" ~state:[| "peers" |]
    ~init:(fun _ -> [| Value.list [] |])
    ~methods:
      [
        (p_link, fun ctx msg -> Ctx.set ctx 0 (Message.arg msg 0));
        ( p_token,
          fun ctx msg ->
            let ttl = Value.to_int (Message.arg msg 0) in
            Ctx.bump ctx "st.hops";
            Ctx.charge ctx 20;
            if ttl > 1 then begin
              let peers = Value.to_list (Ctx.get ctx 0) in
              let pick = Ctx.random ctx (List.length peers) in
              let peer = Value.to_addr (List.nth peers pick) in
              Ctx.send ctx peer p_token [ Value.int (ttl - 1) ]
            end );
      ]
    ()

let run_storm ~nodes ~routers ~tokens ~ttl =
  let cls = router_cls () in
  let sys = System.boot ~nodes ~classes:[ cls ] () in
  let addrs =
    Array.init routers (fun i ->
        System.create_root sys ~node:(i mod nodes) cls [])
  in
  Array.iter
    (fun a ->
      let peers = Array.to_list (Array.map Value.addr addrs) in
      System.send_boot sys a p_link [ Value.list peers ])
    addrs;
  for t = 0 to tokens - 1 do
    System.send_boot sys addrs.(t mod routers) p_token [ Value.int ttl ]
  done;
  System.run sys;
  sys

let test_token_conservation () =
  let sys = run_storm ~nodes:6 ~routers:12 ~tokens:10 ~ttl:50 in
  Alcotest.(check int) "every hop accounted" (10 * 50)
    (Simcore.Stats.get (System.stats sys) "app.st.hops");
  Alcotest.(check bool) "no residue" true
    (Diagnostics.is_clean (Diagnostics.survey sys))

let test_storm_deterministic () =
  let run () =
    let sys = run_storm ~nodes:5 ~routers:9 ~tokens:6 ~ttl:40 in
    (System.elapsed sys, Simcore.Stats.get (System.stats sys) "send.remote")
  in
  Alcotest.(check (pair int int)) "identical histories" (run ()) (run ())

let test_storm_under_naive_and_interrupt () =
  (* The same storm under every scheduler/delivery combination conserves
     hops. *)
  let combos =
    [
      (System.default_rt_config, Machine.Engine.Polling);
      (System.naive_rt_config, Machine.Engine.Polling);
      (System.default_rt_config, Machine.Engine.Interrupt);
    ]
  in
  List.iter
    (fun (rt_config, delivery) ->
      let machine_config = { Machine.Engine.default_config with Machine.Engine.delivery } in
      let cls = router_cls () in
      let sys =
        System.boot ~machine_config ~rt_config ~nodes:4 ~classes:[ cls ] ()
      in
      let addrs =
        Array.init 8 (fun i -> System.create_root sys ~node:(i mod 4) cls [])
      in
      Array.iter
        (fun a ->
          System.send_boot sys a p_link
            [ Value.list (Array.to_list (Array.map Value.addr addrs)) ])
        addrs;
      for t = 0 to 4 do
        System.send_boot sys addrs.(t mod 8) p_token [ Value.int 30 ]
      done;
      System.run sys;
      Alcotest.(check int) "hops conserved" (5 * 30)
        (Simcore.Stats.get (System.stats sys) "app.st.hops"))
    combos

(* --- kitchen sink: every messaging mode in one program --- *)

let p_compute = Pattern.intern "st_compute" ~arity:1
let p_part = Pattern.intern "st_part" ~arity:1

let test_kitchen_sink () =
  let worker_ref = ref Value.unit in
  let worker =
    Class_def.define ~name:"st_worker"
      ~methods:
        [
          ( p_compute,
            fun ctx msg ->
              let n = Value.to_int (Message.arg msg 0) in
              Ctx.charge ctx 100;
              Ctx.reply ctx msg (Value.int (n * n));
              Ctx.retire ctx );
        ]
      ()
  in
  let result = ref 0 in
  let main =
    Class_def.define ~name:"st_main" ~state:[| "acc" |]
      ~init:(fun _ -> [| Value.int 0 |])
      ~methods:
        [
          ( p_go,
            fun ctx _ ->
              (* futures for the squares of 1..4, one worker each *)
              let futures =
                List.init 4 (fun i ->
                    let w = Ctx.create_remote ctx worker [] in
                    Ctx.send_future ctx w p_compute [ Value.int (i + 1) ])
              in
              (* a now-type call in the middle of outstanding futures *)
              let w = Ctx.create_on ctx ~target:1 worker [] in
              ignore !worker_ref;
              let five = Ctx.send_now ctx w p_compute [ Value.int 5 ] in
              (* selective reception interleaved: ask self for parts *)
              let self = Ctx.self ctx in
              Ctx.send ctx self p_part [ Value.int 100 ];
              let part = Ctx.wait_for ctx [ p_part ] in
              let total =
                List.fold_left
                  (fun acc f -> acc + Value.to_int (Ctx.touch ctx f))
                  (Value.to_int five + Value.to_int (Message.arg part 0))
                  futures
              in
              result := total );
          (p_part, fun _ _ -> Alcotest.fail "part must be selected, not invoked");
        ]
      ()
  in
  let sys = System.boot ~nodes:4 ~classes:[ worker; main ] () in
  let m = System.create_root sys ~node:0 main [] in
  System.send_boot sys m p_go [];
  System.run sys;
  (* 1 + 4 + 9 + 16 (futures) + 25 (now) + 100 (selective part) *)
  Alcotest.(check int) "all modes combined" 155 !result;
  Alcotest.(check bool) "no residue" true
    (Diagnostics.is_clean (Diagnostics.survey sys))

let () =
  Alcotest.run "stress"
    [
      ( "token storms",
        [
          Alcotest.test_case "conservation" `Quick test_token_conservation;
          Alcotest.test_case "deterministic" `Quick test_storm_deterministic;
          Alcotest.test_case "all configurations" `Quick
            test_storm_under_naive_and_interrupt;
        ] );
      ( "integration",
        [ Alcotest.test_case "kitchen sink" `Quick test_kitchen_sink ] );
    ]
