(* Unit tests for the simulation substrate: event queue, clock, RNG,
   statistics, histogram, tracing. *)

module EQ = Simcore.Event_queue
module Clock = Simcore.Clock
module Rng = Simcore.Rng
module Stats = Simcore.Stats
module Histogram = Simcore.Histogram
module Time = Simcore.Time

let test_eq_ordering () =
  let q = EQ.create () in
  EQ.add q ~time:30 "c";
  EQ.add q ~time:10 "a";
  EQ.add q ~time:20 "b";
  Alcotest.(check (option (pair int string))) "pop a" (Some (10, "a")) (EQ.pop q);
  Alcotest.(check (option (pair int string))) "pop b" (Some (20, "b")) (EQ.pop q);
  Alcotest.(check (option (pair int string))) "pop c" (Some (30, "c")) (EQ.pop q);
  Alcotest.(check (option (pair int string))) "empty" None (EQ.pop q)

let test_eq_fifo_ties () =
  let q = EQ.create () in
  List.iter (fun s -> EQ.add q ~time:5 s) [ "x"; "y"; "z" ];
  let order = List.init 3 (fun _ -> snd (Option.get (EQ.pop q))) in
  Alcotest.(check (list string)) "insertion order on ties" [ "x"; "y"; "z" ] order

let test_eq_interleaved () =
  let q = EQ.create () in
  EQ.add q ~time:2 2;
  EQ.add q ~time:1 1;
  Alcotest.(check (option (pair int int))) "min" (Some (1, 1)) (EQ.pop q);
  EQ.add q ~time:0 0;
  Alcotest.(check (option (pair int int))) "new min" (Some (0, 0)) (EQ.pop q);
  Alcotest.(check (option int)) "peek" (Some 2) (EQ.peek_time q);
  Alcotest.(check int) "size" 1 (EQ.size q);
  EQ.clear q;
  Alcotest.(check bool) "cleared" true (EQ.is_empty q)

let test_eq_large_sorted () =
  let q = EQ.create () in
  let rng = Rng.create ~seed:7 in
  let times = List.init 1000 (fun _ -> Rng.int rng 10_000) in
  List.iter (fun t -> EQ.add q ~time:t ()) times;
  let rec drain acc =
    match EQ.pop q with Some (t, ()) -> drain (t :: acc) | None -> List.rev acc
  in
  let popped = drain [] in
  Alcotest.(check (list int)) "heap sorts" (List.sort compare times) popped

let test_clock () =
  let c = Clock.create () in
  Clock.advance_by c 100;
  Clock.advance_to c 50;
  Alcotest.(check int) "monotonic" 100 (Clock.now c);
  Clock.advance_to c 250;
  Alcotest.(check int) "advanced" 250 (Clock.now c);
  Alcotest.(check int) "busy counts only advance_by" 100 (Clock.busy_time c)

let test_rng_determinism () =
  let a = Rng.create ~seed:42 and b = Rng.create ~seed:42 in
  let sa = List.init 32 (fun _ -> Rng.int a 1000) in
  let sb = List.init 32 (fun _ -> Rng.int b 1000) in
  Alcotest.(check (list int)) "same seed, same stream" sa sb;
  let c = Rng.create ~seed:43 in
  let sc = List.init 32 (fun _ -> Rng.int c 1000) in
  Alcotest.(check bool) "different seed differs" true (sa <> sc)

let test_rng_bounds () =
  let r = Rng.create ~seed:1 in
  for _ = 1 to 1000 do
    let v = Rng.int r 7 in
    if v < 0 || v >= 7 then Alcotest.fail "out of bounds"
  done;
  for _ = 1 to 1000 do
    let f = Rng.float r 2.5 in
    if f < 0. || f >= 2.5 then Alcotest.fail "float out of bounds"
  done

let test_rng_split () =
  let parent = Rng.create ~seed:5 in
  let child = Rng.split parent in
  let s1 = List.init 16 (fun _ -> Rng.int parent 100) in
  let s2 = List.init 16 (fun _ -> Rng.int child 100) in
  Alcotest.(check bool) "split streams differ" true (s1 <> s2)

let test_stats () =
  let s = Stats.create () in
  Stats.incr s "a";
  Stats.incr s "a";
  Stats.add s "b" 5;
  Alcotest.(check int) "a" 2 (Stats.get s "a");
  Alcotest.(check int) "b" 5 (Stats.get s "b");
  Alcotest.(check int) "missing" 0 (Stats.get s "nope");
  Alcotest.(check (list string)) "names sorted" [ "a"; "b" ] (Stats.names s);
  let cell = Stats.counter s "a" in
  Stats.bump cell;
  Alcotest.(check int) "cell shared" 3 (Stats.get s "a");
  Alcotest.(check int) "cell read" 3 (Stats.read cell);
  Stats.reset s;
  Alcotest.(check int) "reset" 0 (Stats.get s "a")

let test_histogram () =
  let h = Histogram.create ~bucket_width:10 () in
  List.iter (Histogram.observe h) [ 1; 5; 15; 25; 25 ];
  Alcotest.(check int) "count" 5 (Histogram.count h);
  Alcotest.(check (option int)) "min" (Some 1) (Histogram.min h);
  Alcotest.(check (option int)) "max" (Some 25) (Histogram.max h);
  Alcotest.(check (option (float 0.001))) "mean" (Some 14.2) (Histogram.mean h);
  Alcotest.(check (list (pair int int)))
    "buckets" [ (0, 2); (1, 1); (2, 2) ] (Histogram.buckets h);
  let empty = Histogram.create () in
  Alcotest.(check (option int)) "min of empty" None (Histogram.min empty);
  Alcotest.(check (option int)) "max of empty" None (Histogram.max empty);
  Alcotest.(check (option (float 0.001))) "mean of empty" None
    (Histogram.mean empty)

let test_time () =
  Alcotest.(check int) "of_us rounds" 1500 (Time.of_us 1.5);
  Alcotest.(check (float 0.0001)) "to_us" 1.5 (Time.to_us 1500);
  Alcotest.(check (float 0.0001)) "to_ms" 0.0015 (Time.to_ms 1500);
  Alcotest.(check string) "pp ns" "42ns" (Format.asprintf "%a" Time.pp 42);
  Alcotest.(check string) "pp us" "42.00us"
    (Format.asprintf "%a" Time.pp 42_000)

let test_time_pp_units () =
  Alcotest.(check string) "ms" "42.00ms" (Format.asprintf "%a" Time.pp 42_000_000);
  Alcotest.(check string) "s" "42.000s"
    (Format.asprintf "%a" Time.pp 42_000_000_000)

let test_rng_bool_mixes () =
  let r = Rng.create ~seed:9 in
  let trues = ref 0 in
  for _ = 1 to 1000 do
    if Rng.bool r then incr trues
  done;
  Alcotest.(check bool) "roughly balanced" true (!trues > 400 && !trues < 600)

let test_histogram_no_buckets () =
  let h = Histogram.create () in
  Histogram.observe h 5;
  Alcotest.(check (list (pair int int))) "no bucket view" [] (Histogram.buckets h);
  Alcotest.(check string) "pp" "n=1 min=5 max=5 mean=5.00"
    (Format.asprintf "%a" Histogram.pp h);
  Alcotest.(check string) "pp empty" "(empty)"
    (Format.asprintf "%a" Histogram.pp (Histogram.create ()))

let test_histogram_quantile_exact () =
  (* Ten identical samples in unit-width buckets: every quantile must
     land exactly on the sample. *)
  let h = Histogram.create ~bucket_width:1 () in
  for _ = 1 to 10 do
    Histogram.observe h 42
  done;
  Alcotest.(check (option (float 0.0001))) "p50 exact" (Some 42.0)
    (Histogram.quantile h 0.5);
  Alcotest.(check (option (float 0.0001))) "p99 exact" (Some 42.0)
    (Histogram.quantile h 0.99)

let test_histogram_quantile_interpolated () =
  (* Two samples straddling a wide bucket: the median interpolates to
     the midpoint between them under the bucket-midpoint convention,
     then clamps into [min, max]. *)
  let h = Histogram.create ~bucket_width:10 () in
  Histogram.observe h 5;
  Histogram.observe h 15;
  Alcotest.(check (option (float 0.0001))) "p50 between buckets" (Some 5.0)
    (Histogram.quantile h 0.5);
  (* Uniform 1..100 in unit buckets: classic midpoint answers. *)
  let u = Histogram.create ~bucket_width:1 () in
  for v = 1 to 100 do
    Histogram.observe u v
  done;
  Alcotest.(check (option (float 0.0001))) "p50 of 1..100" (Some 50.5)
    (Histogram.quantile u 0.5);
  Alcotest.(check (option (float 0.0001))) "p99 of 1..100" (Some 99.5)
    (Histogram.quantile u 0.99);
  Alcotest.(check (option (float 0.0001))) "p999 clamps to max" (Some 100.0)
    (Histogram.quantile u 0.999);
  Alcotest.(check (option (float 0.0001))) "p0 clamps to min" (Some 1.0)
    (Histogram.quantile u 0.0)

let test_histogram_quantile_errors () =
  Alcotest.(check (option (float 0.0001))) "empty histogram" None
    (Histogram.quantile (Histogram.create ~bucket_width:1 ()) 0.5);
  Alcotest.check_raises "no bucket_width"
    (Invalid_argument
       "Histogram.quantile: histogram was created without bucket_width")
    (fun () ->
      let h = Histogram.create () in
      Histogram.observe h 1;
      ignore (Histogram.quantile h 0.5));
  Alcotest.check_raises "q out of range"
    (Invalid_argument "Histogram.quantile: q outside [0, 1]") (fun () ->
      ignore (Histogram.quantile (Histogram.create ~bucket_width:1 ()) 1.5))

(* The old [next >> 2 mod bound] was biased: for bound = 3 * 2^60 the
   2^60 values wrapping past 2^62 land entirely in [0, 2^60), so the low
   third of the range carried probability ~1/2 instead of 1/3. With
   rejection sampling each third gets ~1/3. *)
let test_rng_large_bound_uniform () =
  let r = Rng.create ~seed:11 in
  let third = 1 lsl 60 in
  let bound = 3 * third in
  let n = 3000 in
  let low = ref 0 in
  for _ = 1 to n do
    if Rng.int r bound < third then incr low
  done;
  let frac = float_of_int !low /. float_of_int n in
  (* 1/3 +- 5 sigma (sigma ~ 0.0086 at n=3000); the biased sampler put
     this at ~0.5, far outside the band. *)
  Alcotest.(check bool)
    (Printf.sprintf "low third frac %.3f near 1/3" frac)
    true
    (frac > 0.29 && frac < 0.38)

let test_rng_uniformity_qcheck =
  QCheck.Test.make ~count:100 ~name:"rng chi-square uniform"
    QCheck.(pair small_int (int_range 2 32))
    (fun (seed, bound) ->
      let r = Rng.create ~seed in
      let n = 200 * bound in
      let counts = Array.make bound 0 in
      for _ = 1 to n do
        let v = Rng.int r bound in
        counts.(v) <- counts.(v) + 1
      done;
      let expected = float_of_int n /. float_of_int bound in
      let chi2 =
        Array.fold_left
          (fun acc c ->
            let d = float_of_int c -. expected in
            acc +. ((d *. d) /. expected))
          0. counts
      in
      (* dof = bound-1 <= 31; chi2 < dof + 6*sqrt(2*dof) is far beyond
         any reasonable quantile, so a pass here means "not grossly
         non-uniform" without flaking. *)
      let dof = float_of_int (bound - 1) in
      chi2 < dof +. (6. *. Float.sqrt (2. *. dof)))

(* Dequeued entries must become unreachable immediately: the queue holds
   closures and messages, and the old implementation parked the popped
   entry at [heap.(len)] (and [clear] kept the whole array). *)
let test_eq_no_retention () =
  let q = EQ.create () in
  let make_tracked () =
    let v = ref 0 in
    let w = Weak.create 1 in
    Weak.set w 0 (Some v);
    EQ.add q ~time:1 v;
    w
  in
  let popped = make_tracked () in
  ignore (EQ.pop q);
  Gc.full_major ();
  Alcotest.(check bool)
    "popped entry collected" false
    (Weak.check popped 0);
  let cleared = make_tracked () in
  EQ.clear q;
  Gc.full_major ();
  Alcotest.(check bool)
    "cleared entry collected" false
    (Weak.check cleared 0)

let test_eq_tie_break () =
  let q = EQ.create () in
  List.iter (fun s -> EQ.add q ~time:5 s) [ "x"; "y"; "z" ];
  EQ.add q ~time:9 "late";
  (* Always pick the last candidate among the ties; the chooser sees the
     candidate values in insertion (FIFO) order. *)
  EQ.set_tie_break q
    (Some
       (fun c ->
         if Array.length c = 3 then
           Alcotest.(check (list string))
             "candidates in insertion order" [ "x"; "y"; "z" ]
             (Array.to_list c);
         Array.length c - 1));
  let order = List.init 4 (fun _ -> snd (Option.get (EQ.pop q))) in
  Alcotest.(check (list string))
    "reverse order on ties" [ "z"; "y"; "x"; "late" ] order;
  (* choose 0 must be the FIFO default. *)
  List.iter (fun s -> EQ.add q ~time:5 s) [ "x"; "y"; "z" ];
  EQ.set_tie_break q (Some (fun _ -> 0));
  let order = List.init 3 (fun _ -> snd (Option.get (EQ.pop q))) in
  Alcotest.(check (list string)) "choice 0 = FIFO" [ "x"; "y"; "z" ] order;
  (* Times must still be non-decreasing under arbitrary choices. *)
  let rng = Rng.create ~seed:3 in
  EQ.set_tie_break q (Some (fun c -> Rng.int rng (Array.length c)));
  for i = 0 to 199 do
    EQ.add q ~time:(i mod 7) (string_of_int i)
  done;
  let rec drain last =
    match EQ.pop q with
    | None -> ()
    | Some (t, _) ->
        if t < last then Alcotest.fail "time went backwards";
        drain t
  in
  drain min_int

let test_trace () =
  Alcotest.(check bool) "disabled by default" false (Simcore.Trace.enabled ());
  Simcore.Trace.with_enabled true (fun () ->
      Alcotest.(check bool) "enabled inside" true (Simcore.Trace.enabled ()));
  Alcotest.(check bool) "restored" false (Simcore.Trace.enabled ())

let () =
  Alcotest.run "simcore"
    [
      ( "event_queue",
        [
          Alcotest.test_case "ordering" `Quick test_eq_ordering;
          Alcotest.test_case "fifo ties" `Quick test_eq_fifo_ties;
          Alcotest.test_case "interleaved" `Quick test_eq_interleaved;
          Alcotest.test_case "large sorted" `Quick test_eq_large_sorted;
          Alcotest.test_case "no retention" `Quick test_eq_no_retention;
          Alcotest.test_case "tie break hook" `Quick test_eq_tie_break;
        ] );
      ("clock", [ Alcotest.test_case "monotonic+busy" `Quick test_clock ]);
      ( "rng",
        [
          Alcotest.test_case "determinism" `Quick test_rng_determinism;
          Alcotest.test_case "bounds" `Quick test_rng_bounds;
          Alcotest.test_case "split" `Quick test_rng_split;
          Alcotest.test_case "large-bound uniform" `Quick
            test_rng_large_bound_uniform;
          QCheck_alcotest.to_alcotest test_rng_uniformity_qcheck;
        ] );
      ("stats", [ Alcotest.test_case "counters" `Quick test_stats ]);
      ("histogram", [ Alcotest.test_case "summary" `Quick test_histogram ]);
      ( "time",
        [
          Alcotest.test_case "conversions" `Quick test_time;
          Alcotest.test_case "pp units" `Quick test_time_pp_units;
        ] );
      ( "rng-extra",
        [ Alcotest.test_case "bool mixes" `Quick test_rng_bool_mixes ] );
      ( "histogram-extra",
        [
          Alcotest.test_case "no buckets" `Quick test_histogram_no_buckets;
          Alcotest.test_case "quantile exact" `Quick
            test_histogram_quantile_exact;
          Alcotest.test_case "quantile interpolated" `Quick
            test_histogram_quantile_interpolated;
          Alcotest.test_case "quantile edge cases" `Quick
            test_histogram_quantile_errors;
        ] );
      ("trace", [ Alcotest.test_case "toggle" `Quick test_trace ]);
    ]
