(* Tests for export tracking and the copying of locally-referenced
   objects (the paper's Section 5.2 future work). *)

open Core

let p_hold = Pattern.intern "tgc_hold" ~arity:1
let p_poke = Pattern.intern "tgc_poke" ~arity:0
let p_relay = Pattern.intern "tgc_relay" ~arity:1
let p_spawn = Pattern.intern "tgc_spawn" ~arity:0

let holder_cls () =
  Class_def.define ~name:"tgc_holder" ~state:[| "peer"; "pokes" |]
    ~init:(fun _ -> [| Value.unit; Value.int 0 |])
    ~methods:
      [
        (p_hold, fun ctx msg -> Ctx.set ctx 0 (Message.arg msg 0));
        ( p_poke,
          fun ctx _ ->
            Ctx.set ctx 1 (Value.int (Value.to_int (Ctx.get ctx 1) + 1)) );
        ( p_relay,
          fun ctx _msg ->
            (* forward a poke to the held peer *)
            Ctx.send ctx (Value.to_addr (Ctx.get ctx 0)) p_poke [] );
      ]
    ()

let test_export_tracking () =
  let holder = holder_cls () in
  let sender =
    Class_def.define ~name:"tgc_sender"
      ~methods:
        [
          ( p_relay,
            fun ctx msg ->
              (* Ships the received address (arg 0) to node 1: the named
                 object becomes exported. *)
              let remote = Ctx.create_on ctx ~target:1 holder [] in
              Ctx.send ctx remote p_hold [ Message.arg msg 0 ] );
        ]
      ()
  in
  let sys = System.boot ~nodes:2 ~classes:[ holder; sender ] () in
  let shipped = System.create_root sys ~node:0 holder [] in
  let kept = System.create_root sys ~node:0 holder [] in
  let s = System.create_root sys ~node:0 sender [] in
  System.send_boot sys s p_relay [ Value.addr shipped ];
  System.run sys;
  let shipped_obj = Option.get (System.lookup_obj sys shipped) in
  let kept_obj = Option.get (System.lookup_obj sys kept) in
  Alcotest.(check bool) "shipped address marked exported" true
    shipped_obj.Kernel.exported;
  Alcotest.(check bool) "unshipped object movable" false
    kept_obj.Kernel.exported

let test_compact_moves_and_patches () =
  let holder = holder_cls () in
  let sys = System.boot ~nodes:2 ~classes:[ holder ] () in
  (* a -> b locally; both local-only. *)
  let a = System.create_root sys ~node:0 holder [] in
  let b = System.create_root sys ~node:0 holder [] in
  System.send_boot sys a p_hold [ Value.addr b ];
  (* touch b so it is initialised *)
  System.send_boot sys b p_poke [];
  System.run sys;
  let r = Services.Local_gc.compact sys ~node:0 in
  Alcotest.(check int) "both moved" 2 r.Services.Local_gc.moved;
  Alcotest.(check bool) "a's reference to b was patched" true
    (r.references_patched >= 1);
  (* The old addresses are stale; the system stays consistent through the
     patched state: relay a poke through a's stored reference. *)
  let a_obj =
    (* find a's new address by scanning for the object holding an addr *)
    let found = ref None in
    Hashtbl.iter
      (fun _ (o : Kernel.obj) ->
        if o.Kernel.initialized && Array.length o.state > 0 then
          match o.state.(0) with Value.Addr _ -> found := Some o | _ -> ())
      (System.rt sys 0).Kernel.objects;
    Option.get !found
  in
  System.send_boot sys a_obj.Kernel.self p_relay [ Value.unit ];
  System.run sys;
  let b_obj =
    Option.get (System.lookup_obj sys (Value.to_addr a_obj.Kernel.state.(0)))
  in
  Alcotest.(check int) "poke arrived through the patched reference" 2
    (Value.to_int b_obj.Kernel.state.(1))

let test_exported_objects_pinned () =
  let holder = holder_cls () in
  let spawner =
    Class_def.define ~name:"tgc_spawner" ~state:[| "child" |]
      ~init:(fun _ -> [| Value.unit |])
      ~methods:
        [
          ( p_spawn,
            fun ctx _ ->
              (* The remote child receives our address: we are exported. *)
              let child = Ctx.create_on ctx ~target:1 holder [] in
              Ctx.send ctx child p_hold [ Value.addr (Ctx.self ctx) ];
              Ctx.set ctx 0 (Value.addr child) );
        ]
      ()
  in
  let sys = System.boot ~nodes:2 ~classes:[ holder; spawner ] () in
  let sp = System.create_root sys ~node:0 spawner [] in
  System.send_boot sys sp p_spawn [];
  System.run sys;
  let before = (Option.get (System.lookup_obj sys sp)).Kernel.self in
  let r = Services.Local_gc.compact sys ~node:0 in
  Alcotest.(check bool) "the exported spawner stayed pinned" true
    (r.Services.Local_gc.pinned >= 1);
  Alcotest.(check bool) "its address is unchanged" true
    (Option.is_some (System.lookup_obj sys before));
  (* And the remote holder can still reach it at the old address. *)
  let sp_obj = Option.get (System.lookup_obj sys before) in
  Alcotest.(check bool) "not moved" true (sp_obj.Kernel.self = before)

let test_compact_preserves_program () =
  (* Full workload equivalence: run half of an N-queens-like computation,
     compact every node, keep running — results unchanged. Simpler proxy:
     compact after the run and check the answer is intact and clocks
     advanced (copy costs charged). *)
  let r = Apps.Nqueens_par.run ~nodes:4 ~n:6 () in
  Alcotest.(check int) "sanity" 4 r.Apps.Nqueens_par.solutions;
  let holder = holder_cls () in
  let sys = System.boot ~nodes:4 ~classes:[ holder ] () in
  let objs = List.init 10 (fun _ -> System.create_root sys ~node:2 holder []) in
  List.iter (fun o -> System.send_boot sys o p_poke []) objs;
  System.run sys;
  let before = Machine.Node.now (Machine.Engine.node (System.machine sys) 2) in
  let res = Services.Local_gc.compact_all sys in
  Alcotest.(check int) "all ten moved" 10 res.Services.Local_gc.moved;
  let after = Machine.Node.now (Machine.Engine.node (System.machine sys) 2) in
  Alcotest.(check bool) "copying cost charged" true (after > before);
  ignore (Format.asprintf "%a" Services.Local_gc.pp_result res)

let test_patch_buffered_messages () =
  (* A message holding a movable object's address sits buffered in a
     waiting object's queue across a compaction; the reference must be
     patched so the eventual consumer sees the new address. *)
  let p_gate = Pattern.intern "tgc_gate" ~arity:0 in
  let p_key = Pattern.intern "tgc_key" ~arity:0 in
  let p_carry = Pattern.intern "tgc_carry" ~arity:1 in
  let holder = holder_cls () in
  let waiter =
    Class_def.define ~name:"tgc_waiter" ~state:[| "got" |]
      ~init:(fun _ -> [| Value.unit |])
      ~methods:
        [
          ( p_gate,
            fun ctx _ ->
              let m = Ctx.wait_for ctx [ p_key ] in
              ignore m );
          (p_carry, fun ctx msg -> Ctx.set ctx 0 (Message.arg msg 0));
        ]
      ()
  in
  let sys = System.boot ~nodes:1 ~classes:[ holder; waiter ] () in
  let target = System.create_root sys ~node:0 holder [] in
  let w = System.create_root sys ~node:0 waiter [] in
  (* initialise both objects *)
  System.send_boot sys target p_poke [];
  System.send_boot sys w p_gate [];
  (* carry arrives while w waits: buffered with target's address inside *)
  System.send_boot sys w p_carry [ Value.addr target ];
  System.run sys;
  let r = Services.Local_gc.compact sys ~node:0 in
  (* target moved (w is pinned only by... w is blocked, so not movable) *)
  Alcotest.(check bool) "target moved" true (r.Services.Local_gc.moved >= 1);
  (* release the gate; the buffered carry is then consumed *)
  System.send_boot sys w p_key [];
  System.run sys;
  let w_obj = Option.get (System.lookup_obj sys w) in
  let carried = Value.to_addr w_obj.Kernel.state.(0) in
  (* The carried address must point at a live object (the patched one). *)
  let live = System.lookup_obj sys carried in
  Alcotest.(check bool) "patched address is live" true (Option.is_some live);
  Alcotest.(check int) "and it is the moved holder" 1
    (Value.to_int (Option.get live).Kernel.state.(1))

let () =
  Alcotest.run "local_gc"
    [
      ( "export tracking",
        [ Alcotest.test_case "remote send marks" `Quick test_export_tracking ] );
      ( "compaction",
        [
          Alcotest.test_case "moves and patches" `Quick
            test_compact_moves_and_patches;
          Alcotest.test_case "exported pinned" `Quick
            test_exported_objects_pinned;
          Alcotest.test_case "preserves behaviour" `Quick
            test_compact_preserves_program;
          Alcotest.test_case "patches buffered messages" `Quick
            test_patch_buffered_messages;
        ] );
    ]
