(* Property-based tests (qcheck) for core data structures and runtime
   invariants. *)

open Core

let to_alcotest = QCheck_alcotest.to_alcotest

(* --- Event queue behaves like a stable sort --- *)

let prop_event_queue_sorts =
  QCheck.Test.make ~name:"event_queue sorts stably" ~count:200
    QCheck.(list (pair (int_bound 1000) small_int))
    (fun events ->
      let q = Simcore.Event_queue.create () in
      List.iter (fun (t, v) -> Simcore.Event_queue.add q ~time:t v) events;
      let rec drain acc =
        match Simcore.Event_queue.pop q with
        | Some (t, v) -> drain ((t, v) :: acc)
        | None -> List.rev acc
      in
      let popped = drain [] in
      (* Stable sort on time: equal-time events keep insertion order. *)
      let expected =
        List.stable_sort (fun (a, _) (b, _) -> compare a b) events
      in
      popped = expected)

(* --- Torus metric properties --- *)

let topo_gen =
  QCheck.Gen.(
    pair (int_range 1 8) (int_range 1 8) >>= fun (x, y) ->
    pair (return (x, y)) (pair (int_bound ((x * y) - 1)) (int_bound ((x * y) - 1))))

let prop_hops_metric =
  QCheck.Test.make ~name:"torus hops is a symmetric bounded metric" ~count:300
    (QCheck.make topo_gen)
    (fun ((dims, (a, b))) ->
      let x, y = dims in
      let t = Network.Topology.create ~x ~y in
      let d = Network.Topology.hops t a b in
      d = Network.Topology.hops t b a
      && d <= (x / 2) + (y / 2)
      && (d = 0) = (a = b))

let prop_neighbors_distance_one =
  QCheck.Test.make ~name:"neighbors are exactly one hop away" ~count:100
    QCheck.(pair (int_range 2 8) (int_range 2 8))
    (fun (x, y) ->
      let t = Network.Topology.create ~x ~y in
      List.for_all
        (fun n ->
          List.for_all
            (fun m -> Network.Topology.hops t n m = 1)
            (Network.Topology.neighbors t n))
        (List.init (x * y) Fun.id))

(* --- Fabric preserves transmission order per channel --- *)

let prop_fabric_fifo =
  QCheck.Test.make ~name:"fabric delivers per-channel FIFO" ~count:200
    QCheck.(list_of_size Gen.(int_range 1 30) (int_bound 2000))
    (fun sizes ->
      let t = Network.Topology.create ~x:4 ~y:4 in
      let f = Network.Fabric.create t in
      let deliveries =
        List.map
          (fun size ->
            Network.Fabric.send f ~now:0
              (Network.Packet.make ~src:0 ~dst:9 ~size_bytes:size ()))
          sizes
      in
      let rec strictly_increasing = function
        | a :: (b :: _ as rest) -> a < b && strictly_increasing rest
        | _ -> true
      in
      strictly_increasing deliveries)

let prop_contention_floor =
  QCheck.Test.make ~name:"contended delivery never beats the uncontended floor"
    ~count:100
    QCheck.(
      list_of_size
        (Gen.int_range 1 20)
        (triple (int_bound 15) (int_bound 15) (int_bound 2000)))
    (fun sends ->
      let topo = Network.Topology.create ~x:4 ~y:4 in
      let config =
        { Network.Fabric.default_config with Network.Fabric.contention = true }
      in
      let f = Network.Fabric.create ~config topo in
      List.for_all
        (fun (src, dst, size) ->
          let p = Network.Packet.make ~src ~dst ~size_bytes:size () in
          let arrival = Network.Fabric.send f ~now:0 p in
          src = dst || arrival >= Network.Fabric.transit_time f p)
        sends)

(* --- Packed boards agree with list boards --- *)

let board_gen =
  QCheck.Gen.(
    int_range 1 13 >>= fun n ->
    list_size (int_range 0 (min n 13)) (int_bound (n - 1)) >>= fun cols ->
    return (n, cols))

let prop_pack_roundtrip =
  QCheck.Test.make ~name:"packed board roundtrips" ~count:500
    (QCheck.make board_gen)
    (fun (_n, cols) ->
      Apps.Queens_board.unpack (Apps.Queens_board.pack cols) = cols)

let prop_safe_agrees =
  QCheck.Test.make ~name:"safe_packed agrees with safe" ~count:500
    (QCheck.make QCheck.Gen.(pair board_gen (int_bound 12)))
    (fun ((_n, cols), col) ->
      Apps.Queens_board.safe ~cols ~col
      = Apps.Queens_board.safe_packed
          ~packed:(Apps.Queens_board.pack cols)
          ~col)

let prop_safe_cols_agree =
  QCheck.Test.make ~name:"safe_cols_packed agrees with safe_cols" ~count:300
    (QCheck.make board_gen)
    (fun (n, cols) ->
      Apps.Queens_board.safe_cols ~n ~cols
      = Apps.Queens_board.safe_cols_packed ~n
          ~packed:(Apps.Queens_board.pack cols))

(* --- Parallel N-queens equals sequential for any machine shape --- *)

let prop_par_eq_seq =
  QCheck.Test.make ~name:"parallel N-queens = sequential" ~count:12
    (QCheck.make
       QCheck.Gen.(
         pair (int_range 4 7) (pair (int_range 1 17) (int_range 0 2))))
    (fun (n, (p, policy_idx)) ->
      let placement =
        match policy_idx with
        | 0 -> Kernel.Round_robin
        | 1 -> Kernel.Random_node
        | _ -> Kernel.Self_node
      in
      let rt_config = { System.default_rt_config with Kernel.placement } in
      let seq = Apps.Nqueens_seq.solve ~n in
      let par = Apps.Nqueens_par.run ~rt_config ~nodes:p ~n () in
      seq.Apps.Nqueens_seq.solutions = par.Apps.Nqueens_par.solutions
      && seq.nodes + 1 = par.objects_created)

(* --- Message conservation: every inter-node object message sent is
   dispatched exactly once at its destination --- *)

let prop_message_conservation =
  QCheck.Test.make ~name:"inter-node messages conserved" ~count:10
    (QCheck.make QCheck.Gen.(pair (int_range 4 7) (int_range 2 9)))
    (fun (n, p) ->
      let cls = Apps.Nqueens_par.solver_cls () in
      let sys = System.boot ~nodes:p ~classes:[ cls ] () in
      let root =
        System.create_root sys ~node:0 cls
          [ Value.int n; Value.int Apps.Queens_board.empty_packed; Value.unit ]
      in
      System.send_boot sys root (Pattern.intern "expand" ~arity:0) [];
      System.run sys;
      let st = System.stats sys in
      let get = Simcore.Stats.get st in
      let recv =
        get "recv.remote.dormant" + get "recv.remote.active"
        + get "recv.remote.fault" + get "recv.remote.restore"
        + get "recv.remote.naive_buffered" + get "recv.remote.depth_limited"
      in
      get "send.remote" = recv
      && get "am.sent.object-message" = get "send.remote"
      && get "create.remote" = get "create.remote.applied"
      && get "create.remote" = get "chunk.refill")

(* --- Determinism: identical configurations give identical runs --- *)

let prop_determinism =
  QCheck.Test.make ~name:"same seed, same virtual history" ~count:8
    (QCheck.make QCheck.Gen.(pair (int_range 4 7) (int_range 1 9)))
    (fun (n, p) ->
      let run () =
        let r = Apps.Nqueens_par.run ~nodes:p ~n () in
        (r.Apps.Nqueens_par.elapsed, r.messages, r.heap_words)
      in
      run () = run ())

(* --- Fault tolerance: any fault plan leaves the answer intact --- *)

let prop_faulty_runs_exact =
  QCheck.Test.make
    ~name:"any fault plan: exactly-once delivery, deterministic, same answer"
    ~count:8
    (QCheck.make
       QCheck.Gen.(
         pair
           (pair (int_range 4 6) (int_range 2 8))
           (pair
              (pair (int_range 1 1_000_000) (int_bound 5_000))
              (pair (float_bound_inclusive 0.12) (float_bound_inclusive 0.12)))))
    (fun ((n, p), ((seed, jitter_ns), (drop, duplicate))) ->
      let plan = Network.Faults.plan ~seed ~drop ~duplicate ~jitter_ns () in
      let machine_config =
        { Machine.Engine.default_config with Machine.Engine.faults = Some plan }
      in
      let run () =
        let r, sys =
          Apps.Nqueens_par.run_sys ~machine_config ~nodes:p ~n ()
        in
        (r, Diagnostics.is_clean (Diagnostics.survey sys))
      in
      let r, clean = run () in
      let r2, _ = run () in
      let seq = Apps.Nqueens_seq.solve ~n in
      (* Clean quiescence: every loss was repaired, nothing left buffered
         or unacknowledged. The answer matches the sequential solver, and
         the whole run (times, counts) replays exactly from the seed. *)
      clean
      && r.Apps.Nqueens_par.solutions = seq.Apps.Nqueens_seq.solutions
      && r = r2)

let prop_fault_free_plan_identical =
  QCheck.Test.make ~name:"fault-free plan is bit-identical to no plan" ~count:6
    (QCheck.make QCheck.Gen.(pair (int_range 4 6) (int_range 1 9)))
    (fun (n, p) ->
      let machine_config =
        {
          Machine.Engine.default_config with
          Machine.Engine.faults = Some (Network.Faults.plan ~seed:123 ());
        }
      in
      Apps.Nqueens_par.run ~machine_config ~nodes:p ~n ()
      = Apps.Nqueens_par.run ~nodes:p ~n ())

(* --- Value sizes --- *)

let value_gen =
  let open QCheck.Gen in
  sized (fix (fun self size ->
      if size <= 1 then
        oneof
          [
            return Value.unit;
            map Value.bool bool;
            map Value.int small_int;
            map Value.float (float_bound_inclusive 10.);
            map Value.str (string_size (int_bound 12));
          ]
      else
        oneof
          [
            map Value.list (list_size (int_bound 4) (self (size / 2)));
            map Value.tuple (list_size (int_bound 4) (self (size / 2)));
          ]))

let prop_value_size_positive =
  QCheck.Test.make ~name:"value wire size is positive and additive" ~count:300
    (QCheck.make value_gen)
    (fun v ->
      let w = Value.size_words v in
      w >= 1
      && Value.size_bytes v = 4 * w
      && Value.size_words (Value.list [ v; v ]) = 1 + (2 * w))

(* --- Pattern interning is a bijection on names --- *)

let prop_pattern_intern =
  QCheck.Test.make ~name:"pattern interning stable" ~count:100
    QCheck.(string_gen_of_size (Gen.int_range 1 8) Gen.printable)
    (fun s ->
      let name = "prop_" ^ s in
      let arity =
        match Pattern.lookup name with
        | Some existing -> Pattern.arity existing
        | None -> String.length s mod 3
      in
      let p1 = Pattern.intern name ~arity in
      let p2 = Pattern.intern name ~arity in
      p1 = p2 && Pattern.name p1 = name && Pattern.arity p1 = arity)

let () =
  Alcotest.run "properties"
    [
      ( "simcore",
        [ to_alcotest prop_event_queue_sorts ] );
      ( "network",
        [
          to_alcotest prop_hops_metric;
          to_alcotest prop_neighbors_distance_one;
          to_alcotest prop_fabric_fifo;
          to_alcotest prop_contention_floor;
        ] );
      ( "board",
        [
          to_alcotest prop_pack_roundtrip;
          to_alcotest prop_safe_agrees;
          to_alcotest prop_safe_cols_agree;
        ] );
      ( "runtime",
        [
          to_alcotest prop_par_eq_seq;
          to_alcotest prop_message_conservation;
          to_alcotest prop_determinism;
        ] );
      ( "faults",
        [
          to_alcotest prop_faulty_runs_exact;
          to_alcotest prop_fault_free_plan_identical;
        ] );
      ( "values",
        [ to_alcotest prop_value_size_positive; to_alcotest prop_pattern_intern ] );
    ]
