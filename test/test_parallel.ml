(* Tests for the parallel simulation engine: the cross-domain SPSC
   mailbox, the round barrier, the conservative lookahead (horizon)
   computation, sharded stats/histogram merging, per-node RNG stream
   derivation, and the headline determinism property — the same
   recorded sharded schedule produces identical Timeline hashes and
   identical merged KV metric folds at 1, 2 and 4 domains. *)

open Core
module Engine = Machine.Engine
module Kv = Apps.Kv_store
module Loadgen = Traffic.Loadgen
module Spsc = Simcore.Spsc
module Barrier = Simcore.Barrier
module Rng = Simcore.Rng
module Stats = Simcore.Stats
module Histogram = Simcore.Histogram
module Schedule = Check.Schedule

(* --- SPSC mailbox ---------------------------------------------------- *)

let test_spsc_fifo () =
  let q = Spsc.create () in
  Alcotest.(check bool) "fresh queue empty" true (Spsc.is_empty q);
  for i = 0 to 99 do
    Spsc.push q i
  done;
  Alcotest.(check (option int)) "pop oldest" (Some 0) (Spsc.pop q);
  Alcotest.(check (option int)) "pop next" (Some 1) (Spsc.pop q);
  Alcotest.(check (list int))
    "drain returns the rest oldest-first"
    (List.init 98 (fun i -> i + 2))
    (Spsc.drain q);
  Alcotest.(check bool) "drained queue empty" true (Spsc.is_empty q);
  Alcotest.(check (option int)) "pop on empty" None (Spsc.pop q)

let test_spsc_cross_domain () =
  let n = 10_000 in
  let q = Spsc.create () in
  let producer =
    Domain.spawn (fun () ->
        for i = 0 to n - 1 do
          Spsc.push q i
        done)
  in
  (* Consume concurrently with production: order and completeness must
     hold while the producer is still pushing. *)
  let got = ref [] and count = ref 0 in
  while !count < n do
    match Spsc.pop q with
    | Some v ->
        got := v :: !got;
        incr count
    | None -> Domain.cpu_relax ()
  done;
  Domain.join producer;
  Alcotest.(check (list int))
    "every element arrives in FIFO order"
    (List.init n (fun i -> i))
    (List.rev !got);
  Alcotest.(check bool) "nothing left over" true (Spsc.is_empty q)

(* --- round barrier --------------------------------------------------- *)

let test_barrier_phases () =
  let parties = 4 and rounds = 200 in
  let b = Barrier.create parties in
  Alcotest.(check int) "parties" parties (Barrier.parties b);
  (* Plain (non-atomic) slots exchanged strictly across barrier phases:
     the barrier's fence is what makes the reads well-defined. *)
  let slots = Array.make parties 0 in
  let bad = Atomic.make 0 in
  let worker me () =
    for r = 0 to rounds - 1 do
      slots.(me) <- (r * parties) + me;
      Barrier.await b ~me;
      let expect = ref 0 and got = ref 0 in
      for d = 0 to parties - 1 do
        expect := !expect + (r * parties) + d;
        got := !got + slots.(d)
      done;
      if !got <> !expect then Atomic.incr bad;
      Barrier.await b ~me
    done
  in
  let ds = Array.init (parties - 1) (fun i -> Domain.spawn (worker (i + 1))) in
  worker 0 ();
  Array.iter Domain.join ds;
  Alcotest.(check int) "every phase saw every write" 0 (Atomic.get bad)

let test_barrier_single_party () =
  let b = Barrier.create 1 in
  (* Must not block. *)
  Barrier.await b ~me:0;
  Barrier.await b ~me:0;
  Alcotest.(check int) "parties" 1 (Barrier.parties b)

let test_barrier_rejects_zero () =
  Alcotest.check_raises "parties >= 1"
    (Invalid_argument "Barrier.create: parties must be >= 1") (fun () ->
      ignore (Barrier.create 0))

(* --- lookahead / horizon --------------------------------------------- *)

let test_lookahead_default_config () =
  let sys = System.boot ~nodes:2 ~classes:[] () in
  let m = System.machine sys in
  (* Default fabric: 12-byte bare header on a 1 GB/s link (12 ns
     transmission), 450 ns launch, 20 ns minimum single hop. No remote
     effect can land closer than this, so it is the round horizon. *)
  Alcotest.(check int) "lookahead = min remote latency" 950
    (Engine.lookahead_ns m)

let test_run_parallel_rejects_gossip () =
  let rt_config =
    { System.default_rt_config with Kernel.gossip_interval_ns = 1_000 }
  in
  let sys = System.boot ~rt_config ~nodes:2 ~classes:[] () in
  Alcotest.check_raises "gossip has no per-domain decomposition"
    (Invalid_argument "System.run_parallel: gossip_interval_ns requires [run]")
    (fun () -> System.run_parallel sys ~domains:2)

(* --- sharded stats and histogram merging ----------------------------- *)

let test_stats_shard_merge () =
  let st = Stats.create () in
  Stats.shard st 4;
  let c = Stats.counter st "parallel.test" in
  let ds =
    Array.init 3 (fun i ->
        Domain.spawn (fun () ->
            Simcore.Domain_ctx.set (i + 1);
            for _ = 1 to 10_000 do
              Stats.bump c
            done))
  in
  for _ = 1 to 10_000 do
    Stats.bump c
  done;
  Array.iter Domain.join ds;
  Alcotest.(check int) "read sums every domain slot" 40_000 (Stats.read c);
  Alcotest.(check int) "get sees the same total" 40_000
    (Stats.get st "parallel.test")

let test_histogram_merge () =
  let all = Histogram.create ~bucket_width:100 () in
  let parts = Array.init 3 (fun _ -> Histogram.create ~bucket_width:100 ()) in
  List.iteri
    (fun i v ->
      Histogram.observe all v;
      Histogram.observe parts.(i mod 3) v)
    [ 100; 2_000; 350; 4_200; 77; 900; 12_000; 512 ];
  let merged = Histogram.create ~bucket_width:100 () in
  Array.iter (fun p -> Histogram.merge_into ~into:merged p) parts;
  Alcotest.(check int) "count" (Histogram.count all) (Histogram.count merged);
  Alcotest.(check (option int)) "min" (Histogram.min all) (Histogram.min merged);
  Alcotest.(check (option int)) "max" (Histogram.max all) (Histogram.max merged);
  Alcotest.(check (option (float 1e-9)))
    "p99" (Histogram.quantile all 0.99)
    (Histogram.quantile merged 0.99)

(* --- per-node RNG streams -------------------------------------------- *)

let test_rng_derive_pure () =
  let parent = Rng.create ~seed:42 in
  let before = Rng.state parent in
  let a = Rng.derive parent ~index:3 in
  Alcotest.(check bool) "derive does not advance the parent" true
    (Rng.state parent = before);
  let b = Rng.derive parent ~index:3 in
  let draws r = List.init 16 (fun _ -> Rng.int r 1_000_000) in
  Alcotest.(check (list int)) "same index, same stream" (draws a) (draws b);
  let c = Rng.derive parent ~index:4 in
  Alcotest.(check bool) "different index, different stream" true
    (draws (Rng.derive parent ~index:3) <> draws c)

(* --- the determinism property ---------------------------------------- *)

(* One parallel run of the sharded open-loop workload under a given
   node-keyed decision source; returns the Timeline hash and an
   order-insensitive fold of the merged KV metrics. *)
let run_sharded ~seed ~domains ~source =
  let kv = Kv.create ~shards:4 () in
  let sys = System.boot ~nodes:4 ~classes:(Kv.classes kv) () in
  let machine = System.machine sys in
  Engine.set_node_decision_source machine (Some source);
  Kv.spawn kv sys;
  let tl = Services.Timeline.attach sys in
  let lg =
    Loadgen.launch_sharded
      {
        Loadgen.default_config with
        seed;
        rate_rps = 300_000;
        requests = 120;
        key_dist = Loadgen.Zipf 1.0;
      }
      sys kv
  in
  System.run_parallel sys ~domains;
  let h = Services.Timeline.hash tl in
  Services.Timeline.detach tl;
  let s = Kv.stats kv in
  let fold =
    ( Kv.completed kv,
      Kv.pending kv,
      s.Kv.get_ok + s.Kv.put_ok + s.Kv.cas_ok + s.Kv.cas_fail + s.Kv.mget_ok,
      Histogram.count s.Kv.latency,
      Histogram.quantile s.Kv.latency 0.99 )
  in
  let audit = Loadgen.audit lg sys in
  (h, fold, audit)

let prop_parallel_replay_identical =
  QCheck.Test.make ~count:5
    ~name:"recorded sharded schedule is bit-identical at 1/2/4 domains"
    QCheck.(int_range 1 5_000)
    (fun seed ->
      let sh = Schedule.record_sharded ~seed ~nodes:4 in
      let h1, fold1, audit1 =
        run_sharded ~seed ~domains:1 ~source:(Schedule.node_source sh)
      in
      if audit1 <> [] then
        QCheck.Test.fail_reportf "seed %d: 1-domain audit unclean: %s" seed
          (String.concat "; " audit1);
      let traces = Schedule.traces sh in
      List.iter
        (fun domains ->
          let replayed = Schedule.replay_sharded traces in
          let h, fold, audit =
            run_sharded ~seed ~domains ~source:(Schedule.node_source replayed)
          in
          if h <> h1 then
            QCheck.Test.fail_reportf
              "seed %d: Timeline hash diverged at %d domains" seed domains;
          if fold <> fold1 then
            QCheck.Test.fail_reportf
              "seed %d: merged KV metrics diverged at %d domains" seed domains;
          if audit <> [] then
            QCheck.Test.fail_reportf "seed %d: %d-domain audit unclean: %s"
              seed domains
              (String.concat "; " audit))
        [ 2; 4 ];
      true)

let test_oversubscribed_domains_identical () =
  (* More domains than nodes must clamp/behave, and more domains than
     host cores must still terminate and agree (the barrier blocks
     rather than spins). *)
  let seed = 17 in
  let sh = Schedule.record_sharded ~seed ~nodes:4 in
  let h1, fold1, _ =
    run_sharded ~seed ~domains:1 ~source:(Schedule.node_source sh)
  in
  let replayed = Schedule.replay_sharded (Schedule.traces sh) in
  let h8, fold8, audit8 =
    run_sharded ~seed ~domains:8 ~source:(Schedule.node_source replayed)
  in
  Alcotest.(check bool) "hash identical at 8 domains" true (h1 = h8);
  Alcotest.(check bool) "metric fold identical at 8 domains" true
    (fold1 = fold8);
  Alcotest.(check (list string)) "audit clean at 8 domains" [] audit8

let () =
  Alcotest.run "parallel"
    [
      ( "mailbox",
        [
          Alcotest.test_case "FIFO push/pop/drain" `Quick test_spsc_fifo;
          Alcotest.test_case "cross-domain FIFO" `Quick test_spsc_cross_domain;
        ] );
      ( "barrier",
        [
          Alcotest.test_case "phase fence across domains" `Quick
            test_barrier_phases;
          Alcotest.test_case "single party is a no-op" `Quick
            test_barrier_single_party;
          Alcotest.test_case "rejects zero parties" `Quick
            test_barrier_rejects_zero;
        ] );
      ( "horizon",
        [
          Alcotest.test_case "lookahead from default fabric" `Quick
            test_lookahead_default_config;
          Alcotest.test_case "gossip rejected" `Quick
            test_run_parallel_rejects_gossip;
        ] );
      ( "merge",
        [
          Alcotest.test_case "stats shard merge" `Quick test_stats_shard_merge;
          Alcotest.test_case "histogram merge" `Quick test_histogram_merge;
          Alcotest.test_case "rng derive purity" `Quick test_rng_derive_pure;
        ] );
      ( "determinism",
        [
          QCheck_alcotest.to_alcotest prop_parallel_replay_identical;
          Alcotest.test_case "8 domains on a small host" `Quick
            test_oversubscribed_domains_identical;
        ] );
    ]
