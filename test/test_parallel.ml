(* Tests for the parallel simulation engine: the cross-domain SPSC
   mailbox, the round barrier, the conservative lookahead (horizon)
   computation, sharded stats/histogram merging, per-node RNG stream
   derivation, and the headline determinism property — the same
   recorded sharded schedule produces identical Timeline hashes and
   identical merged KV metric folds at 1, 2 and 4 domains. Also the
   guard-path contract (a rejected [run_parallel] is side-effect-free),
   the structured [Lookahead_violation] error, and the lifted feature
   envelope: faults + coalescing + crash recovery under domains. *)

open Core
module Engine = Machine.Engine
module Coalesce = Machine.Coalesce
module Manager = Recover.Manager
module Fabric = Network.Fabric
module Faults = Network.Faults
module Kv = Apps.Kv_store
module Loadgen = Traffic.Loadgen
module Spsc = Simcore.Spsc
module Barrier = Simcore.Barrier
module Rng = Simcore.Rng
module Stats = Simcore.Stats
module Histogram = Simcore.Histogram
module Schedule = Check.Schedule

(* --- SPSC mailbox ---------------------------------------------------- *)

let test_spsc_fifo () =
  let q = Spsc.create () in
  Alcotest.(check bool) "fresh queue empty" true (Spsc.is_empty q);
  for i = 0 to 99 do
    Spsc.push q i
  done;
  Alcotest.(check (option int)) "pop oldest" (Some 0) (Spsc.pop q);
  Alcotest.(check (option int)) "pop next" (Some 1) (Spsc.pop q);
  Alcotest.(check (list int))
    "drain returns the rest oldest-first"
    (List.init 98 (fun i -> i + 2))
    (Spsc.drain q);
  Alcotest.(check bool) "drained queue empty" true (Spsc.is_empty q);
  Alcotest.(check (option int)) "pop on empty" None (Spsc.pop q)

let test_spsc_cross_domain () =
  let n = 10_000 in
  let q = Spsc.create () in
  let producer =
    Domain.spawn (fun () ->
        for i = 0 to n - 1 do
          Spsc.push q i
        done)
  in
  (* Consume concurrently with production: order and completeness must
     hold while the producer is still pushing. *)
  let got = ref [] and count = ref 0 in
  while !count < n do
    match Spsc.pop q with
    | Some v ->
        got := v :: !got;
        incr count
    | None -> Domain.cpu_relax ()
  done;
  Domain.join producer;
  Alcotest.(check (list int))
    "every element arrives in FIFO order"
    (List.init n (fun i -> i))
    (List.rev !got);
  Alcotest.(check bool) "nothing left over" true (Spsc.is_empty q)

(* --- round barrier --------------------------------------------------- *)

let test_barrier_phases () =
  let parties = 4 and rounds = 200 in
  let b = Barrier.create parties in
  Alcotest.(check int) "parties" parties (Barrier.parties b);
  (* Plain (non-atomic) slots exchanged strictly across barrier phases:
     the barrier's fence is what makes the reads well-defined. *)
  let slots = Array.make parties 0 in
  let bad = Atomic.make 0 in
  let worker me () =
    for r = 0 to rounds - 1 do
      slots.(me) <- (r * parties) + me;
      Barrier.await b ~me;
      let expect = ref 0 and got = ref 0 in
      for d = 0 to parties - 1 do
        expect := !expect + (r * parties) + d;
        got := !got + slots.(d)
      done;
      if !got <> !expect then Atomic.incr bad;
      Barrier.await b ~me
    done
  in
  let ds = Array.init (parties - 1) (fun i -> Domain.spawn (worker (i + 1))) in
  worker 0 ();
  Array.iter Domain.join ds;
  Alcotest.(check int) "every phase saw every write" 0 (Atomic.get bad)

let test_barrier_single_party () =
  let b = Barrier.create 1 in
  (* Must not block. *)
  Barrier.await b ~me:0;
  Barrier.await b ~me:0;
  Alcotest.(check int) "parties" 1 (Barrier.parties b)

let test_barrier_rejects_zero () =
  Alcotest.check_raises "parties >= 1"
    (Invalid_argument "Barrier.create: parties must be >= 1") (fun () ->
      ignore (Barrier.create 0))

(* --- lookahead / horizon --------------------------------------------- *)

let test_lookahead_default_config () =
  let sys = System.boot ~nodes:2 ~classes:[] () in
  let m = System.machine sys in
  (* Default fabric: 12-byte bare header on a 1 GB/s link (12 ns
     transmission), 450 ns launch, 20 ns minimum single hop. No remote
     effect can land closer than this, so it is the round horizon. *)
  Alcotest.(check int) "lookahead = min remote latency" 950
    (Engine.lookahead_ns m)

let test_run_parallel_rejects_gossip () =
  let rt_config =
    { System.default_rt_config with Kernel.gossip_interval_ns = 1_000 }
  in
  let sys = System.boot ~rt_config ~nodes:2 ~classes:[] () in
  Alcotest.check_raises "gossip has no per-domain decomposition"
    (Invalid_argument "System.run_parallel: gossip_interval_ns requires [run]")
    (fun () -> System.run_parallel sys ~domains:2)

(* --- rejected run_parallel is side-effect-free ----------------------- *)

(* Boot the sharded KV workload, let [trip] provoke (and swallow) a
   rejected [run_parallel], then finish the run on the sequential
   engine. If the rejected call touched any state — sharded the stats,
   drained the event queue into per-domain queues — the sequential run
   afterwards diverges from a clean twin that was never offered to the
   parallel engine. *)
let run_seq_workload ?machine_config ~seed ~source ~trip () =
  let kv = Kv.create ~shards:4 () in
  let sys = System.boot ?machine_config ~nodes:4 ~classes:(Kv.classes kv) () in
  let machine = System.machine sys in
  Engine.set_node_decision_source machine (Some source);
  Kv.spawn kv sys;
  let tl = Services.Timeline.attach sys in
  let _lg =
    Loadgen.launch_sharded
      {
        Loadgen.default_config with
        seed;
        rate_rps = 300_000;
        requests = 80;
        key_dist = Loadgen.Zipf 1.0;
      }
      sys kv
  in
  trip machine;
  System.run sys;
  let h = Services.Timeline.hash tl in
  Services.Timeline.detach tl;
  (h, Kv.completed kv, Engine.events_processed machine)

let check_rejection_side_effect_free ?machine_config ~seed ~trip () =
  let sh = Schedule.record_sharded ~seed ~nodes:4 in
  let clean =
    run_seq_workload ?machine_config ~seed
      ~source:(Schedule.node_source sh)
      ~trip:(fun _ -> ())
      ()
  in
  let replayed = Schedule.replay_sharded (Schedule.traces sh) in
  let tripped =
    run_seq_workload ?machine_config ~seed
      ~source:(Schedule.node_source replayed)
      ~trip ()
  in
  let h_clean, done_clean, ev_clean = clean in
  let h_tripped, done_tripped, ev_tripped = tripped in
  Alcotest.(check bool)
    "Timeline hash identical after a rejected run_parallel" true
    (h_clean = h_tripped);
  Alcotest.(check int) "same requests completed" done_clean done_tripped;
  Alcotest.(check int) "same events processed" ev_clean ev_tripped

let test_rejected_tie_break_side_effect_free () =
  check_rejection_side_effect_free ~seed:91
    ~trip:(fun machine ->
      Engine.set_tie_break machine (Some (fun _ -> 0));
      (match Engine.run_parallel machine ~domains:2 () with
      | () -> Alcotest.fail "run_parallel accepted a global tie-break hook"
      | exception Invalid_argument _ -> ());
      Engine.set_tie_break machine None)
    ()

let test_rejected_contention_side_effect_free () =
  let machine_config =
    {
      Engine.default_config with
      Engine.fabric = { Fabric.default_config with Fabric.contention = true };
    }
  in
  check_rejection_side_effect_free ~machine_config ~seed:92
    ~trip:(fun machine ->
      match Engine.run_parallel machine ~domains:2 () with
      | () -> Alcotest.fail "run_parallel accepted a contention fabric"
      | exception Invalid_argument _ -> ())
    ()

(* --- structured lookahead violations --------------------------------- *)

let contains hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
  go 0

(* Provoke a genuine violation: at a pathological bandwidth (sub-ns per
   byte, rounded up per packet) the transmission-time difference that
   staggers a batch's first frame collapses to zero while the lookahead
   still charges a full header, so the frame lands 1 ns inside the
   horizon. A single credit forces the batch to flush from a [Co_credit]
   event, whose time is the round minimum. *)
let test_lookahead_violation_structured () =
  let config =
    {
      Engine.default_config with
      Engine.fabric = { Fabric.default_config with Fabric.bytes_per_us = 100_000 };
      coalesce = Some { Coalesce.default_config with Coalesce.credits = 1 };
    }
  in
  let m = Engine.create ~config ~nodes:2 () in
  let h =
    Engine.register_handler m Machine.Am.Service ~name:"lv-sink"
      (fun _ _ _ -> ())
  in
  Engine.schedule_on m ~node:0 ~time:1_000 (fun () ->
      Engine.post m (Engine.node m 0) (fun () ->
          let src = Engine.node m 0 in
          for _ = 1 to 3 do
            Engine.send_am m ~src ~dst:1 ~handler:h ~size_bytes:4
              Machine.Am.Ping
          done));
  match Engine.run_parallel m ~domains:2 () with
  | () -> Alcotest.fail "pathological bandwidth did not violate the horizon"
  | exception Engine.Lookahead_violation { domain; node; arrival; horizon } ->
      Alcotest.(check int) "raised on the sending node's domain" 0 domain;
      Alcotest.(check int) "names the sending node" 0 node;
      Alcotest.(check bool) "arrival strictly inside the horizon" true
        (arrival < horizon);
      let rendered =
        Printexc.to_string
          (Engine.Lookahead_violation { domain; node; arrival; horizon })
      in
      Alcotest.(check bool) "printer renders the payload" true
        (contains rendered "Lookahead_violation"
        && contains rendered "domain = 0"
        && contains rendered "node = 0")

let test_lookahead_violation_sequential_ok () =
  (* The same configuration is legal on the sequential engine: the
     horizon is a parallel-envelope constraint, not a config error. *)
  let config =
    {
      Engine.default_config with
      Engine.fabric = { Fabric.default_config with Fabric.bytes_per_us = 100_000 };
      coalesce = Some { Coalesce.default_config with Coalesce.credits = 1 };
    }
  in
  let m = Engine.create ~config ~nodes:2 () in
  let got = ref 0 in
  let h =
    Engine.register_handler m Machine.Am.Service ~name:"lv-count"
      (fun _ _ _ -> incr got)
  in
  Engine.schedule_on m ~node:0 ~time:1_000 (fun () ->
      Engine.post m (Engine.node m 0) (fun () ->
          let src = Engine.node m 0 in
          for _ = 1 to 3 do
            Engine.send_am m ~src ~dst:1 ~handler:h ~size_bytes:4
              Machine.Am.Ping
          done));
  Engine.run m;
  Alcotest.(check int) "all three messages delivered" 3 !got

(* --- sharded stats and histogram merging ----------------------------- *)

let test_stats_shard_merge () =
  let st = Stats.create () in
  Stats.shard st 4;
  let c = Stats.counter st "parallel.test" in
  let ds =
    Array.init 3 (fun i ->
        Domain.spawn (fun () ->
            Simcore.Domain_ctx.set (i + 1);
            for _ = 1 to 10_000 do
              Stats.bump c
            done))
  in
  for _ = 1 to 10_000 do
    Stats.bump c
  done;
  Array.iter Domain.join ds;
  Alcotest.(check int) "read sums every domain slot" 40_000 (Stats.read c);
  Alcotest.(check int) "get sees the same total" 40_000
    (Stats.get st "parallel.test")

let test_histogram_merge () =
  let all = Histogram.create ~bucket_width:100 () in
  let parts = Array.init 3 (fun _ -> Histogram.create ~bucket_width:100 ()) in
  List.iteri
    (fun i v ->
      Histogram.observe all v;
      Histogram.observe parts.(i mod 3) v)
    [ 100; 2_000; 350; 4_200; 77; 900; 12_000; 512 ];
  let merged = Histogram.create ~bucket_width:100 () in
  Array.iter (fun p -> Histogram.merge_into ~into:merged p) parts;
  Alcotest.(check int) "count" (Histogram.count all) (Histogram.count merged);
  Alcotest.(check (option int)) "min" (Histogram.min all) (Histogram.min merged);
  Alcotest.(check (option int)) "max" (Histogram.max all) (Histogram.max merged);
  Alcotest.(check (option (float 1e-9)))
    "p99" (Histogram.quantile all 0.99)
    (Histogram.quantile merged 0.99)

(* --- per-node RNG streams -------------------------------------------- *)

let test_rng_derive_pure () =
  let parent = Rng.create ~seed:42 in
  let before = Rng.state parent in
  let a = Rng.derive parent ~index:3 in
  Alcotest.(check bool) "derive does not advance the parent" true
    (Rng.state parent = before);
  let b = Rng.derive parent ~index:3 in
  let draws r = List.init 16 (fun _ -> Rng.int r 1_000_000) in
  Alcotest.(check (list int)) "same index, same stream" (draws a) (draws b);
  let c = Rng.derive parent ~index:4 in
  Alcotest.(check bool) "different index, different stream" true
    (draws (Rng.derive parent ~index:3) <> draws c)

(* --- the determinism property ---------------------------------------- *)

(* One parallel run of the sharded open-loop workload under a given
   node-keyed decision source; returns the Timeline hash and an
   order-insensitive fold of the merged KV metrics. *)
let run_sharded ~seed ~domains ~source =
  let kv = Kv.create ~shards:4 () in
  let sys = System.boot ~nodes:4 ~classes:(Kv.classes kv) () in
  let machine = System.machine sys in
  Engine.set_node_decision_source machine (Some source);
  Kv.spawn kv sys;
  let tl = Services.Timeline.attach sys in
  let lg =
    Loadgen.launch_sharded
      {
        Loadgen.default_config with
        seed;
        rate_rps = 300_000;
        requests = 120;
        key_dist = Loadgen.Zipf 1.0;
      }
      sys kv
  in
  System.run_parallel sys ~domains;
  let h = Services.Timeline.hash tl in
  Services.Timeline.detach tl;
  let s = Kv.stats kv in
  let fold =
    ( Kv.completed kv,
      Kv.pending kv,
      s.Kv.get_ok + s.Kv.put_ok + s.Kv.cas_ok + s.Kv.cas_fail + s.Kv.mget_ok,
      Histogram.count s.Kv.latency,
      Histogram.quantile s.Kv.latency 0.99 )
  in
  let audit = Loadgen.audit lg sys in
  (h, fold, audit)

let prop_parallel_replay_identical =
  QCheck.Test.make ~count:5
    ~name:"recorded sharded schedule is bit-identical at 1/2/4 domains"
    QCheck.(int_range 1 5_000)
    (fun seed ->
      let sh = Schedule.record_sharded ~seed ~nodes:4 in
      let h1, fold1, audit1 =
        run_sharded ~seed ~domains:1 ~source:(Schedule.node_source sh)
      in
      if audit1 <> [] then
        QCheck.Test.fail_reportf "seed %d: 1-domain audit unclean: %s" seed
          (String.concat "; " audit1);
      let traces = Schedule.traces sh in
      List.iter
        (fun domains ->
          let replayed = Schedule.replay_sharded traces in
          let h, fold, audit =
            run_sharded ~seed ~domains ~source:(Schedule.node_source replayed)
          in
          if h <> h1 then
            QCheck.Test.fail_reportf
              "seed %d: Timeline hash diverged at %d domains" seed domains;
          if fold <> fold1 then
            QCheck.Test.fail_reportf
              "seed %d: merged KV metrics diverged at %d domains" seed domains;
          if audit <> [] then
            QCheck.Test.fail_reportf "seed %d: %d-domain audit unclean: %s"
              seed domains
              (String.concat "; " audit))
        [ 2; 4 ];
      true)

let test_oversubscribed_domains_identical () =
  (* More domains than nodes must clamp/behave, and more domains than
     host cores must still terminate and agree (the barrier blocks
     rather than spins). *)
  let seed = 17 in
  let sh = Schedule.record_sharded ~seed ~nodes:4 in
  let h1, fold1, _ =
    run_sharded ~seed ~domains:1 ~source:(Schedule.node_source sh)
  in
  let replayed = Schedule.replay_sharded (Schedule.traces sh) in
  let h8, fold8, audit8 =
    run_sharded ~seed ~domains:8 ~source:(Schedule.node_source replayed)
  in
  Alcotest.(check bool) "hash identical at 8 domains" true (h1 = h8);
  Alcotest.(check bool) "metric fold identical at 8 domains" true
    (fold1 = fold8);
  Alcotest.(check (list string)) "audit clean at 8 domains" [] audit8

(* --- the lifted feature envelope ------------------------------------- *)

type Machine.Am.payload += Hs_seq of { k : int }

(* The hostile composition: a fault plan (drop, duplicate, jitter), so
   every send goes through the reliable layer; framed coalescing, so
   frames batch and share fates; and a recovery manager with a crash
   window over node 1, so a checkpoint/journal/replay cycle runs
   mid-stream. Drivers are node-owned timers that post to their own
   node, so every construct is parallel-safe. Returns the Timeline
   hash, an order-insensitive fold of every feature's metrics, and the
   manager's quiescent audit. *)
let run_hostile ~seed ~domains ~source =
  let nodes = 4 in
  let plan =
    Faults.plan ~seed:(seed + 7) ~drop:0.03 ~duplicate:0.02 ~jitter_ns:400 ()
  in
  let config =
    {
      Engine.default_config with
      Engine.faults = Some plan;
      coalesce = Some { Coalesce.default_config with Coalesce.max_delay_ns = 2_000 };
    }
  in
  let m = Engine.create ~config ~nodes () in
  Engine.set_node_decision_source m (Some source);
  let tl = Services.Timeline.attach_machine m in
  let next = Array.init nodes (fun _ -> Hashtbl.create 8) in
  let h =
    Engine.register_handler m Machine.Am.Service ~name:"hostile-seq"
      (fun _ node am ->
        match am.Machine.Am.payload with
        | Hs_seq { k } ->
            let me = Machine.Node.id node in
            let src = am.Machine.Am.src in
            let cur = Option.value (Hashtbl.find_opt next.(me) src) ~default:0 in
            Hashtbl.replace next.(me) src (max (k + 1) cur)
        | _ -> ())
  in
  let app =
    {
      Manager.a_snapshot =
        (fun node ->
          let slice =
            Hashtbl.fold (fun src k acc -> (src, k) :: acc) next.(node) []
          in
          Some (Marshal.to_bytes (List.sort compare slice) []));
      a_restore =
        (fun node b ->
          Hashtbl.reset next.(node);
          List.iter
            (fun (src, k) -> Hashtbl.replace next.(node) src k)
            (Marshal.from_bytes b 0 : (int * int) list));
      a_reset = (fun node -> Hashtbl.reset next.(node));
    }
  in
  let crashes =
    [
      {
        Manager.cs_node = 1;
        cs_at = 50_000;
        cs_down_ns = 30_000;
        cs_jitter_ns = 1_500;
      };
    ]
  in
  let mgr = Manager.attach m ~app ~crashes () in
  (* Every node streams sequence numbers at its neighbour from timers
     it owns; a timer firing while its node is down skips the burst
     (count-invariantly — down windows are part of the schedule). *)
  for s = 0 to nodes - 1 do
    for r = 0 to 5 do
      Engine.schedule_on m ~node:s
        ~time:(8_000 + (r * 18_000))
        (fun () ->
          if not (Engine.node_down m s) then
            Engine.post m (Engine.node m s) (fun () ->
                let src = Engine.node m s in
                for i = 0 to 4 do
                  Engine.send_am m ~src ~dst:((s + 1) mod nodes) ~handler:h
                    ~size_bytes:16
                    (Hs_seq { k = (r * 5) + i })
                done))
    done
  done;
  Engine.run_parallel m ~domains ();
  let hash = Services.Timeline.hash tl in
  Services.Timeline.detach tl;
  let st = Engine.stats m in
  let delivered =
    Array.to_list
      (Array.map
         (fun tbl ->
           List.sort compare
             (Hashtbl.fold (fun s k acc -> (s, k) :: acc) tbl []))
         next)
  in
  let co =
    match Engine.coalesce_stats m with
    | Some s -> (s.Coalesce.s_batches, s.Coalesce.s_singles, s.Coalesce.s_frames)
    | None -> (0, 0, 0)
  in
  let fold =
    ( Engine.elapsed m,
      Engine.packets_sent m,
      Engine.packets_dropped m,
      Engine.packets_duplicated m,
      Engine.crash_dropped m,
      ( Stats.get st "reliable.retransmit",
        Stats.get st "reliable.dup_discard",
        Stats.get st "recover.crashes",
        Stats.get st "recover.restarts",
        Stats.get st "recover.replayed",
        Stats.get st "recover.ckpts" ),
      co,
      delivered )
  in
  let aud = Manager.audit_quiescent mgr in
  Manager.detach mgr;
  (hash, fold, aud)

let prop_hostile_envelope_identical =
  QCheck.Test.make ~count:4
    ~name:"faults + coalescing + crash recovery bit-identical at 1/2/4 domains"
    QCheck.(int_range 1 5_000)
    (fun seed ->
      let sh = Schedule.record_sharded ~seed ~nodes:4 in
      let h1, fold1, aud1 =
        run_hostile ~seed ~domains:1 ~source:(Schedule.node_source sh)
      in
      if aud1 <> [] then
        QCheck.Test.fail_reportf "seed %d: 1-domain recovery audit unclean: %s"
          seed (String.concat "; " aud1);
      let traces = Schedule.traces sh in
      List.iter
        (fun domains ->
          let replayed = Schedule.replay_sharded traces in
          let h, fold, aud =
            run_hostile ~seed ~domains ~source:(Schedule.node_source replayed)
          in
          if h <> h1 then
            QCheck.Test.fail_reportf
              "seed %d: hostile Timeline hash diverged at %d domains" seed
              domains;
          if fold <> fold1 then
            QCheck.Test.fail_reportf
              "seed %d: hostile metric fold diverged at %d domains" seed domains;
          if aud <> [] then
            QCheck.Test.fail_reportf
              "seed %d: %d-domain recovery audit unclean: %s" seed domains
              (String.concat "; " aud))
        [ 2; 4 ];
      true)

let () =
  Alcotest.run "parallel"
    [
      ( "mailbox",
        [
          Alcotest.test_case "FIFO push/pop/drain" `Quick test_spsc_fifo;
          Alcotest.test_case "cross-domain FIFO" `Quick test_spsc_cross_domain;
        ] );
      ( "barrier",
        [
          Alcotest.test_case "phase fence across domains" `Quick
            test_barrier_phases;
          Alcotest.test_case "single party is a no-op" `Quick
            test_barrier_single_party;
          Alcotest.test_case "rejects zero parties" `Quick
            test_barrier_rejects_zero;
        ] );
      ( "horizon",
        [
          Alcotest.test_case "lookahead from default fabric" `Quick
            test_lookahead_default_config;
          Alcotest.test_case "gossip rejected" `Quick
            test_run_parallel_rejects_gossip;
          Alcotest.test_case "violation is structured" `Quick
            test_lookahead_violation_structured;
          Alcotest.test_case "violating config legal sequentially" `Quick
            test_lookahead_violation_sequential_ok;
        ] );
      ( "guards",
        [
          Alcotest.test_case "rejected tie-break call leaves no trace" `Quick
            test_rejected_tie_break_side_effect_free;
          Alcotest.test_case "rejected contention call leaves no trace" `Quick
            test_rejected_contention_side_effect_free;
        ] );
      ( "merge",
        [
          Alcotest.test_case "stats shard merge" `Quick test_stats_shard_merge;
          Alcotest.test_case "histogram merge" `Quick test_histogram_merge;
          Alcotest.test_case "rng derive purity" `Quick test_rng_derive_pure;
        ] );
      ( "determinism",
        [
          QCheck_alcotest.to_alcotest prop_parallel_replay_identical;
          Alcotest.test_case "8 domains on a small host" `Quick
            test_oversubscribed_domains_identical;
        ] );
      ( "envelope",
        [ QCheck_alcotest.to_alcotest prop_hostile_envelope_identical ] );
    ]
