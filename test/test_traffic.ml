(* Tests for the open-loop traffic subsystem: the sharded KV/session
   tier (get/put/cas/fan-out mget, exactly-once version audit), the
   seeded open-loop arrival process, the latency-percentile report, and
   the determinism properties (a seeded schedule replays bit-identically
   across two runs and under recorded-choice replay). *)

open Core
module Engine = Machine.Engine
module Kv = Apps.Kv_store
module Loadgen = Traffic.Loadgen
module Report = Traffic.Report
module Explore = Check.Explore
module Workloads = Check.Workloads

let boot_tier ?machine_config ?(nodes = 4) ?(shards = 4) ?keys_per_shard
    ?mget_fan () =
  let kv = Kv.create ?keys_per_shard ?mget_fan ~shards () in
  let sys = System.boot ?machine_config ~nodes ~classes:(Kv.classes kv) () in
  Kv.spawn kv sys;
  (kv, sys)

let run_open_loop ?machine_config ?(nodes = 4) ?(shards = 4) ?keys_per_shard
    ?mget_fan ?(mix = Loadgen.default_mix) ?(process = Loadgen.Poisson)
    ?(rate = 300_000) ?(requests = 200) ?(seed = 7) () =
  let kv, sys =
    boot_tier ?machine_config ~nodes ~shards ?keys_per_shard ?mget_fan ()
  in
  let lg =
    Loadgen.launch
      { Loadgen.default_config with seed; process; rate_rps = rate; requests; mix }
      sys kv
  in
  System.run sys;
  (kv, sys, lg)

(* --- the service tier ------------------------------------------------ *)

let test_open_loop_clean_run () =
  let kv, sys, lg = run_open_loop () in
  Alcotest.(check int) "all offered requests injected" 200 (Loadgen.injected lg);
  Alcotest.(check int) "all completed" 200 (Kv.completed kv);
  Alcotest.(check int) "no pending" 0 (Kv.pending kv);
  Alcotest.(check (list string)) "audit clean" [] (Loadgen.audit lg sys);
  Alcotest.(check bool)
    "diagnostics clean" true
    (Diagnostics.is_clean (Diagnostics.survey sys));
  let r = Report.of_run lg sys in
  Alcotest.(check int) "report completed" 200 r.Report.r_completed;
  Alcotest.(check int) "report timeouts" 0 r.Report.r_timeouts;
  Alcotest.(check int) "report errors" 0 r.Report.r_errors;
  Alcotest.(check bool) "p50 positive" true (r.Report.r_p50_ns > 0.);
  Alcotest.(check bool)
    "percentiles ordered" true
    (r.Report.r_p50_ns <= r.Report.r_p99_ns
    && r.Report.r_p99_ns <= r.Report.r_p999_ns);
  Alcotest.(check bool) "goodput positive" true (r.Report.r_goodput_rps > 0.)

let test_mget_fanout () =
  let mix = { Loadgen.m_get = 0; m_put = 0; m_cas = 0; m_mget = 1 } in
  let kv, sys, lg = run_open_loop ~mix ~requests:64 ~mget_fan:3 () in
  let s = Kv.stats kv in
  Alcotest.(check int) "every request is an mget" 64 s.Kv.mget_ok;
  Alcotest.(check int) "nothing else completed" 64 (Kv.completed kv);
  Alcotest.(check (list string)) "audit clean" [] (Loadgen.audit lg sys)

let test_cas_version_conservation () =
  let mix = { Loadgen.m_get = 0; m_put = 1; m_cas = 1; m_mget = 0 } in
  let kv, sys, lg = run_open_loop ~mix ~requests:120 () in
  let s = Kv.stats kv in
  Alcotest.(check int)
    "every request completed" 120
    (s.Kv.put_ok + s.Kv.cas_ok + s.Kv.cas_fail);
  Alcotest.(check int)
    "versions balance successful writes"
    (s.Kv.put_ok + s.Kv.cas_ok)
    (Kv.applied_versions kv sys);
  Alcotest.(check (list string)) "audit clean" [] (Loadgen.audit lg sys)

let test_fixed_rate_process () =
  let kv, sys, lg =
    run_open_loop ~process:Loadgen.Fixed ~rate:500_000 ~requests:100 ()
  in
  ignore kv;
  Alcotest.(check (list string)) "audit clean" [] (Loadgen.audit lg sys);
  (* Fixed-rate arrivals without perturbation: the last injection is
     (requests - 1) periods after the first. *)
  Alcotest.(check bool)
    "run spans the injection window" true
    (System.elapsed sys >= 1_000 + (99 * 2_000))

(* --- composition with faults, a crash window, and migration ---------- *)

let test_faults_crash_migration_composition () =
  let plan =
    Network.Faults.plan ~seed:11 ~drop:0.05 ~duplicate:0.02 ~jitter_ns:1_000
      ~crashes:
        [ { Network.Faults.node = 1; from_ns = 80_000; until_ns = 140_000 } ]
      ()
  in
  let machine_config =
    { Engine.default_config with Engine.faults = Some plan }
  in
  let kv = Kv.create ~shards:4 ~keys_per_shard:8 () in
  let sys =
    System.boot ~machine_config ~nodes:4 ~classes:(Kv.classes kv) ()
  in
  let machine = System.machine sys in
  Kv.spawn kv sys;
  let mig = Migrate.attach sys in
  let g = Dgc.attach ~interval_ns:150_000 sys in
  Engine.schedule_at machine ~time:50_000 (fun () ->
      ignore (Migrate.move mig ~canon:(Kv.shard_addr kv 1) ~to_:3));
  Engine.schedule_at machine ~time:150_000 (fun () ->
      ignore (Migrate.move mig ~canon:(Kv.shard_addr kv 2) ~to_:0));
  let lg =
    Loadgen.launch
      { Loadgen.default_config with seed = 3; rate_rps = 250_000; requests = 150 }
      sys kv
  in
  System.run sys;
  Dgc.settle g;
  Alcotest.(check (list string))
    "exactly-once audit clean under faults + crash + migration" []
    (Loadgen.audit lg sys);
  Alcotest.(check int) "reliable drained" 0 (Engine.reliable_in_flight machine);
  Alcotest.(check bool)
    "packets were actually dropped" true
    (Engine.packets_dropped machine > 0);
  Alcotest.(check bool)
    "diagnostics clean" true
    (Diagnostics.is_clean (Diagnostics.survey sys));
  Alcotest.(check (list string)) "dgc audit clean" [] (Dgc.audit g)

(* --- report / JSON --------------------------------------------------- *)

let test_report_json_fields () =
  let _, sys, lg = run_open_loop ~requests:50 () in
  let r = Report.of_run lg sys in
  let path = Filename.temp_file "bench_traffic" ".json" in
  Services.Bench_json.write ~path (Report.json_fields r);
  let p99 = Services.Bench_json.read_int_field ~path ~key:"p99_ns" in
  Alcotest.(check bool) "p99_ns field round-trips" true (Option.is_some p99);
  Alcotest.(check (option int))
    "completed field round-trips" (Some 50)
    (Services.Bench_json.read_int_field ~path ~key:"completed");
  Sys.remove path

(* --- determinism properties ------------------------------------------ *)

let traffic_workload () =
  match Workloads.find "traffic" with
  | Some w -> w
  | None -> Alcotest.fail "traffic workload not in catalog"

(* Satellite property: a seeded open-loop arrival schedule replays
   bit-identically — the same Timeline hash across two recorded runs of
   the same seed, and again under recorded-choice replay. *)
let prop_open_loop_replay_deterministic =
  QCheck.Test.make ~count:8 ~name:"open-loop schedule replays bit-identically"
    QCheck.(int_range 1 10_000)
    (fun seed ->
      let wl = traffic_workload () in
      let o1 = Explore.run_recorded wl ~seed in
      let o2 = Explore.run_recorded wl ~seed in
      if o1.Explore.o_hash <> o2.Explore.o_hash then
        QCheck.Test.fail_reportf "two recorded runs of seed %d diverged" seed;
      if Explore.failed o1 then
        QCheck.Test.fail_reportf "recorded run violated invariants: %s"
          (String.concat "; "
             (List.map
                (fun (p, d) -> p ^ ": " ^ d)
                o1.Explore.o_violations));
      let r = Explore.replay wl o1.Explore.o_trace in
      if
        (not r.Explore.rp_identical)
        || r.Explore.rp_outcome.Explore.o_hash <> o1.Explore.o_hash
      then
        QCheck.Test.fail_reportf
          "recorded-choice replay of seed %d is not bit-identical" seed;
      true)

let test_direct_two_runs_identical () =
  (* The same determinism without the check harness: two identical
     direct runs produce identical timelines and identical reports. *)
  let go () =
    let kv, sys =
      boot_tier ~nodes:4 ~shards:4 ()
    in
    let tl = Services.Timeline.attach sys in
    let lg =
      Loadgen.launch
        { Loadgen.default_config with seed = 21; rate_rps = 350_000; requests = 80 }
        sys kv
    in
    System.run sys;
    let h = Services.Timeline.hash tl in
    Services.Timeline.detach tl;
    (h, Report.of_run lg sys)
  in
  let h1, r1 = go () and h2, r2 = go () in
  Alcotest.(check bool) "timeline hashes equal" true (h1 = h2);
  Alcotest.(check (float 0.0001)) "p99 equal" r1.Report.r_p99_ns r2.Report.r_p99_ns;
  Alcotest.(check int) "completed equal" r1.Report.r_completed r2.Report.r_completed

(* --- histogram quantiles (satellite) --------------------------------- *)

let () =
  Alcotest.run "traffic"
    [
      ( "tier",
        [
          Alcotest.test_case "open-loop clean run" `Quick
            test_open_loop_clean_run;
          Alcotest.test_case "mget fan-out" `Quick test_mget_fanout;
          Alcotest.test_case "cas version conservation" `Quick
            test_cas_version_conservation;
          Alcotest.test_case "fixed-rate process" `Quick
            test_fixed_rate_process;
          Alcotest.test_case "faults + crash + migration composition" `Quick
            test_faults_crash_migration_composition;
        ] );
      ( "report",
        [
          Alcotest.test_case "json fields" `Quick test_report_json_fields;
          Alcotest.test_case "two direct runs identical" `Quick
            test_direct_two_runs_identical;
        ] );
      ( "properties",
        [ QCheck_alcotest.to_alcotest prop_open_loop_replay_deterministic ] );
    ]
