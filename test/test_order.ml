(* Ordering and liveness semantics: preservation of transmission order
   (Section 2.1), chained now-type calls, multi-pattern selective
   reception, and preemption fairness. *)

open Core

let p_item = Pattern.intern "to_item" ~arity:1
let p_go = Pattern.intern "to_go" ~arity:1

(* --- "When two messages are sent from the same sender to the same
   receiver, they arrive in the order they were sent." --- *)

let test_transmission_order_across_nodes () =
  let seen = ref [] in
  let sink =
    Class_def.define ~name:"to_sink"
      ~methods:
        [ (p_item, fun _ msg -> seen := Value.to_int (Message.arg msg 0) :: !seen) ]
      ()
  in
  let sender =
    Class_def.define ~name:"to_sender"
      ~methods:
        [
          ( p_go,
            fun ctx msg ->
              let target = Value.to_addr (Message.arg msg 0) in
              (* Mixed sizes: a small late message must not overtake a
                 big early one. *)
              Ctx.send ctx target p_item [ Value.int 1 ];
              Ctx.send ctx target p_item [ Value.int 2 ];
              Ctx.send ctx target p_item [ Value.int 3 ] );
        ]
      ()
  in
  let sys = System.boot ~nodes:2 ~classes:[ sink; sender ] () in
  let b = System.create_root sys ~node:1 sink [] in
  let a = System.create_root sys ~node:0 sender [] in
  System.send_boot sys a p_go [ Value.addr b ];
  System.run sys;
  Alcotest.(check (list int)) "arrival order = send order" [ 1; 2; 3 ]
    (List.rev !seen)

(* --- chained now-type calls across three nodes --- *)

let p_outer = Pattern.intern "to_outer" ~arity:1
let p_inner = Pattern.intern "to_inner" ~arity:1

let test_chained_now_calls () =
  let leaf =
    Class_def.define ~name:"to_leaf"
      ~methods:
        [
          ( p_inner,
            fun ctx msg ->
              Ctx.reply ctx msg (Value.int (10 * Value.to_int (Message.arg msg 0))) );
        ]
      ()
  in
  let leaf_addr = ref Value.unit in
  let middle =
    Class_def.define ~name:"to_middle"
      ~methods:
        [
          ( p_outer,
            fun ctx msg ->
              (* Blocks on its own now-type request while its caller is
                 blocked on us: two nested saved contexts. *)
              let v =
                Ctx.send_now ctx (Value.to_addr !leaf_addr) p_inner
                  [ Message.arg msg 0 ]
              in
              Ctx.reply ctx msg (Value.int (1 + Value.to_int v)) );
        ]
      ()
  in
  let middle_addr = ref Value.unit in
  let result = ref 0 in
  let client =
    Class_def.define ~name:"to_client"
      ~methods:
        [
          ( p_go,
            fun ctx _ ->
              let v =
                Ctx.send_now ctx (Value.to_addr !middle_addr) p_outer
                  [ Value.int 4 ]
              in
              result := Value.to_int v );
        ]
      ()
  in
  let sys = System.boot ~nodes:3 ~classes:[ leaf; middle; client ] () in
  let l = System.create_root sys ~node:2 leaf [] in
  leaf_addr := Value.addr l;
  let m = System.create_root sys ~node:1 middle [] in
  middle_addr := Value.addr m;
  let c = System.create_root sys ~node:0 client [] in
  System.send_boot sys c p_go [ Value.int 0 ];
  System.run sys;
  Alcotest.(check int) "10*4 + 1 through two hops" 41 !result;
  Alcotest.(check int) "two blocking waits" 2
    (Simcore.Stats.get (System.stats sys) "reply.blocked")

(* --- selective reception across several awaited patterns --- *)

let p_red = Pattern.intern "to_red" ~arity:1
let p_blue = Pattern.intern "to_blue" ~arity:1
let p_noise = Pattern.intern "to_noise" ~arity:0

let test_multi_pattern_wait () =
  let log = ref [] in
  let cls =
    Class_def.define ~name:"to_multi"
      ~methods:
        [
          ( p_go,
            fun ctx _ ->
              (* Two rounds: whichever awaited colour arrives first is
                 taken first; noise stays buffered throughout. *)
              for _ = 1 to 2 do
                let m = Ctx.wait_for ctx [ p_red; p_blue ] in
                log :=
                  Printf.sprintf "%s:%d"
                    (Pattern.name m.Message.pattern)
                    (Value.to_int (Message.arg m 0))
                  :: !log
              done );
          (p_noise, fun _ _ -> log := "noise" :: !log);
        ]
      ()
  in
  let sys = System.boot ~nodes:1 ~classes:[ cls ] () in
  let a = System.create_root sys ~node:0 cls [] in
  System.send_boot sys a p_go [ Value.int 0 ];
  System.send_boot sys a p_noise [];
  System.send_boot sys a p_blue [ Value.int 1 ];
  System.send_boot sys a p_red [ Value.int 2 ];
  System.run sys;
  Alcotest.(check (list string)) "colours in arrival order, noise last"
    [ "to_blue:1"; "to_red:2"; "noise" ]
    (List.rev !log)

(* --- preemption fairness between two heavy objects --- *)

let test_preemption_fairness () =
  let finish_times = Hashtbl.create 2 in
  let cls =
    Class_def.define ~name:"to_heavy"
      ~methods:
        [
          ( p_go,
            fun ctx msg ->
              for _ = 1 to 20 do
                Ctx.charge ctx 5_000
              done;
              Hashtbl.replace finish_times
                (Value.to_int (Message.arg msg 0))
                (Ctx.now ctx) );
        ]
      ()
  in
  let rt_config =
    { System.default_rt_config with Kernel.quantum_instr = 10_000 }
  in
  let sys = System.boot ~rt_config ~nodes:1 ~classes:[ cls ] () in
  let a = System.create_root sys ~node:0 cls [] in
  let b = System.create_root sys ~node:0 cls [] in
  System.send_boot sys a p_go [ Value.int 1 ];
  System.send_boot sys b p_go [ Value.int 2 ];
  System.run sys;
  let t1 = Hashtbl.find finish_times 1 and t2 = Hashtbl.find finish_times 2 in
  (* Without preemption one object would finish entirely before the other
     started; with it their executions interleave, so completion times
     differ by much less than one full method (100k instr = 9.2 ms). *)
  let gap = abs (t1 - t2) in
  Alcotest.(check bool) "interleaved completion" true
    (gap < Machine.Cost_model.time Machine.Cost_model.default 60_000);
  Alcotest.(check bool) "preempted" true
    (Simcore.Stats.get (System.stats sys) "preempt" >= 10)

let () =
  Alcotest.run "order"
    [
      ( "ordering",
        [
          Alcotest.test_case "transmission order" `Quick
            test_transmission_order_across_nodes;
          Alcotest.test_case "multi-pattern wait" `Quick test_multi_pattern_wait;
        ] );
      ( "blocking",
        [ Alcotest.test_case "chained now-type" `Quick test_chained_now_calls ] );
      ( "fairness",
        [ Alcotest.test_case "preemption" `Quick test_preemption_fairness ] );
    ]
