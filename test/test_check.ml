(* Tests for the schedule-exploration / replay / invariant-monitor
   subsystem: choice recording and replay, monitor semantics, every
   standard probe against a deliberately corrupted state, the greedy
   shrinker, bit-identical replay across the workload catalog, and the
   minimized reproducer schedules pinned by the explorer. *)

open Core
module Engine = Machine.Engine
module Faults = Network.Faults
module Schedule = Check.Schedule
module Monitor = Check.Monitor
module Probes = Check.Probes
module Workloads = Check.Workloads
module Explore = Check.Explore

(* --- choice sequences ---------------------------------------------- *)

let test_schedule_record_replay () =
  let s = Schedule.record ~seed:5 in
  let bounds = [ 3; 5; 2; 7; 4 ] in
  let drawn = List.map (fun b -> Schedule.choice s ~tag:"t" b) bounds in
  List.iter2
    (fun b v ->
      Alcotest.(check bool) "in range" true (v >= 0 && v < b))
    bounds drawn;
  Alcotest.(check int) "used" (List.length bounds) (Schedule.used s);
  let r = Schedule.replay (Schedule.trace s) in
  let replayed = List.map (fun b -> Schedule.choice r ~tag:"t" b) bounds in
  Alcotest.(check (list int)) "replay reproduces" drawn replayed;
  (* Past the end of the vector: the unperturbed baseline. *)
  Alcotest.(check int) "exhausted -> 0" 0 (Schedule.choice r ~tag:"t" 9);
  (* Out-of-domain stored values clamp into the live domain. *)
  let c = Schedule.replay [| 7 |] in
  Alcotest.(check int) "clamped" (7 mod 3) (Schedule.choice c ~tag:"t" 3)

(* --- monitor semantics --------------------------------------------- *)

let test_monitor_dedup_and_when () =
  let mon = Monitor.create () in
  let always_calls = ref 0 and quiet_calls = ref 0 in
  Monitor.register mon ~name:"structural" ~when_:Monitor.Always (fun () ->
      incr always_calls;
      [ "boom" ]);
  Monitor.register mon ~name:"conservation" ~when_:Monitor.At_quiescence
    (fun () ->
      incr quiet_calls;
      [ "off-balance" ]);
  Monitor.check_always mon;
  Monitor.check_always mon;
  Alcotest.(check int) "always probe ran twice" 2 !always_calls;
  Alcotest.(check int) "quiescence probe not yet" 0 !quiet_calls;
  Alcotest.(check int)
    "repeat violation deduped" 1
    (List.length (Monitor.violations mon));
  Monitor.check_quiescent mon;
  Alcotest.(check int) "quiescent sweep runs all" 1 !quiet_calls;
  let vs = Monitor.violations mon in
  Alcotest.(check (list (pair string string)))
    "first-seen order"
    [ ("structural", "boom"); ("conservation", "off-balance") ]
    (List.map (fun v -> (v.Monitor.v_probe, v.Monitor.v_detail)) vs);
  Alcotest.(check bool) "sweeps counted" true (Monitor.checks mon >= 3)

(* --- probes vs deliberately corrupted states ----------------------- *)

let p_poke = Pattern.intern "check_poke" ~arity:1
let p_spawn = Pattern.intern "check_spawn" ~arity:1

let cell_cls () =
  Class_def.define ~name:"check_cell" ~state:[| "v" |]
    ~init:(fun _ -> [| Value.int 0 |])
    ~methods:[ (p_poke, fun ctx msg -> Ctx.set ctx 0 (Message.arg msg 0)) ]
    ()

let holder_cls ~cell () =
  Class_def.define ~name:"check_holder" ~state:[| "ref" |]
    ~init:(fun _ -> [| Value.unit |])
    ~methods:
      [
        ( p_spawn,
          fun ctx msg ->
            let target = Value.to_int (Message.arg msg 0) in
            let a = Ctx.create_on ctx ~target cell [] in
            Ctx.send ctx a p_poke [ Value.int 42 ];
            Ctx.set ctx 0 (Value.Addr a) );
      ]
    ()

(* The scheduler probe must notice a hand-planted stale queue claim and
   a context left suspended. *)
let test_probe_sched_corruption () =
  let cell = cell_cls () in
  let sys = System.boot ~nodes:2 ~classes:[ cell ] () in
  let a = System.create_root sys ~node:0 cell [] in
  System.send_boot sys a p_poke [ Value.int 1 ];
  System.run sys;
  Alcotest.(check (list string)) "healthy state" [] (Probes.sched sys ());
  let obj = Option.get (System.lookup_obj sys a) in
  obj.Kernel.in_sched_q <- true;
  (match Probes.sched sys () with
  | [] -> Alcotest.fail "stale in-sched-queue claim not flagged"
  | _ -> ());
  obj.Kernel.in_sched_q <- false;
  Alcotest.(check (list string)) "clean again" [] (Probes.sched sys ())

(* The reliable probe must notice a frame whose ack was hand-dropped
   (unacked in-flight entry at quiescence) and a sequence hole parked in
   a reorder buffer. *)
let test_probe_reliable_corruption () =
  let config =
    {
      Engine.default_config with
      Engine.faults = Some (Faults.plan ~seed:1 ~drop:0.05 ());
    }
  in
  let m = Engine.create ~config ~nodes:2 () in
  Alcotest.(check (list string)) "healthy state" [] (Probes.reliable m ());
  let rel = Option.get (Engine.reliable m) in
  let am =
    { Machine.Am.handler = 0; src = 0; size_bytes = 8; payload = Machine.Am.Ping }
  in
  (* A data frame leaves but its ack never comes back. *)
  (match Machine.Reliable.push rel ~src:0 ~dst:1 ~now:0 am with
  | `Send _ | `Queued -> ());
  (match Probes.reliable m () with
  | [] -> Alcotest.fail "hand-dropped ack not flagged"
  | _ -> ());
  (* A later frame arrives while an earlier one never does. *)
  (match Machine.Reliable.on_data rel ~src:1 ~dst:0 ~seq:3 am with
  | `Reordered -> ()
  | `Deliver _ | `Duplicate -> Alcotest.fail "expected a reorder park");
  let details = Probes.reliable m () in
  Alcotest.(check bool)
    "sequence hole flagged" true
    (List.exists
       (fun d ->
         (* the reorder-buffer line mentions the stuck frame count *)
         String.length d > 0
         && List.exists
              (fun needle ->
                let rec find i =
                  i + String.length needle <= String.length d
                  && (String.sub d i (String.length needle) = needle
                     || find (i + 1))
                in
                find 0)
              [ "reorder" ])
       details)

(* The coalesce probe must notice frames parked in an aggregation buffer
   when the machine stops. *)
let test_probe_coalesce_corruption () =
  let config =
    {
      Engine.default_config with
      Engine.coalesce = Some Machine.Coalesce.default_config;
    }
  in
  let m = Engine.create ~config ~nodes:2 () in
  let h =
    Engine.register_handler m Machine.Am.Service ~name:"check-null"
      (fun _ _ _ -> ())
  in
  Alcotest.(check (list string)) "healthy state" [] (Probes.coalesce m ());
  (* The first message bypasses aggregation while the injection port is
     idle; the burst behind it parks in the buffer. *)
  for _ = 1 to 3 do
    Engine.send_am m ~src:(Engine.node m 0) ~dst:1 ~handler:h ~size_bytes:8
      Machine.Am.Ping
  done;
  (match Probes.coalesce m () with
  | [] -> Alcotest.fail "parked aggregation buffer not flagged"
  | _ -> ());
  Engine.run m;
  Alcotest.(check (list string)) "drained after run" [] (Probes.coalesce m ())

(* The chain probe must notice a forwarding cycle built by hand: after a
   real migration, the live record is corrupted into a stub pointing
   back at the origin, closing a loop no schedule can produce. *)
let test_probe_migrate_cycle () =
  let cell = cell_cls () in
  let sys = System.boot ~nodes:4 ~classes:[ cell ] () in
  let mig = Migrate.attach sys in
  let a = System.create_root sys ~node:0 cell [] in
  System.send_boot sys a p_poke [ Value.int 1 ];
  System.run sys;
  Alcotest.(check bool) "move accepted" true (Migrate.move mig ~canon:a ~to_:1);
  System.run sys;
  Alcotest.(check (list string))
    "healthy state" []
    (Probes.migrate_chains ~nodes:4 mig ());
  (* Find the live record at its new host and turn it into a stub
     pointing back at the origin's stub. *)
  let live = ref None in
  for node = 0 to 3 do
    Hashtbl.iter
      (fun _ (o : Kernel.obj) ->
        if
          o.Kernel.self = a
          && (match o.Kernel.vftp.Kernel.vft_kind with
             | Kernel.Vft_forward _ -> false
             | _ -> true)
        then live := Some o)
      (System.rt sys node).Kernel.objects
  done;
  let live = Option.get !live in
  live.Kernel.vftp <-
    Vft.forward
      {
        Kernel.fwd_canon = a;
        fwd_to = { Value.node = 0; Value.slot = a.Value.slot };
        fwd_epoch = 99;
      };
  match Probes.migrate_chains ~nodes:4 mig () with
  | [] -> Alcotest.fail "hand-built forwarding cycle not flagged"
  | _ -> ()

(* The collector's audit must notice a forged stub weight. *)
let test_probe_dgc_forged_weight () =
  let cell = cell_cls () in
  let holder = holder_cls ~cell () in
  let sys = System.boot ~nodes:2 ~classes:[ cell; holder ] () in
  let g = Dgc.attach sys in
  let h = System.create_root sys ~node:0 holder [] in
  System.send_boot sys h p_spawn [ Value.int 1 ];
  System.run sys;
  Dgc.settle g;
  Alcotest.(check (list string)) "healthy state" [] (Dgc.audit g);
  let canon =
    match System.lookup_obj sys h with
    | Some o -> (
        match o.Kernel.state.(0) with
        | Value.Addr a -> a
        | _ -> Alcotest.fail "holder kept no reference")
    | None -> Alcotest.fail "holder vanished"
  in
  let holder_node =
    if Dgc.has_stub g ~node:0 ~canon then 0
    else if Dgc.has_stub g ~node:1 ~canon then 1
    else Alcotest.fail "no stub to corrupt"
  in
  Dgc.Testing.forge_stub_weight g ~node:holder_node ~canon 7;
  match Dgc.audit g with
  | [] -> Alcotest.fail "forged stub weight not flagged"
  | _ -> ()

(* --- the shrinker -------------------------------------------------- *)

(* A synthetic workload that fails exactly when choices 2 and 5 are both
   nonzero: the shrinker must strip everything else and trim the tail. *)
let synthetic =
  {
    Workloads.w_name = "synthetic";
    w_run =
      (fun sched ->
        let c = Array.init 8 (fun _ -> Schedule.choice sched ~tag:"syn" 4) in
        let bad = c.(2) <> 0 && c.(5) <> 0 in
        {
          Workloads.r_hash = Hashtbl.hash (Array.to_list c);
          r_violations = (if bad then [ ("app", "both perturbed") ] else []);
        });
  }

let test_shrink_minimal () =
  let full = Array.make 8 1 in
  Alcotest.(check bool)
    "full vector fails" true
    (Explore.failed (Explore.run_replay synthetic full));
  let min_v = Explore.shrink synthetic full in
  Alcotest.(check (array int)) "minimal reproducer" [| 0; 0; 1; 0; 0; 1 |] min_v

(* --- bit-identical replay across the catalog ----------------------- *)

let test_replay_identical () =
  List.iter
    (fun w ->
      let o = Explore.run_recorded w ~seed:11 in
      Alcotest.(check bool)
        (w.Workloads.w_name ^ " baseline clean")
        false (Explore.failed o);
      let r = Explore.replay w o.Explore.o_trace in
      Alcotest.(check bool)
        (w.Workloads.w_name ^ " replay bit-identical")
        true
        (r.Explore.rp_identical
        && r.Explore.rp_outcome.Explore.o_hash = o.Explore.o_hash))
    Workloads.all

(* --- pinned reproducers -------------------------------------------- *)

(* Every schedule the explorer once minimized must now pass — and still
   replay bit-identically. A failure here means a fixed bug regressed. *)
let test_regression_schedules () =
  (* dune runtest runs in the test build directory; `dune exec` from the
     workspace root sees the source tree instead. *)
  let dir = if Sys.file_exists "schedules" then "schedules" else "test/schedules" in
  let files =
    Sys.readdir dir |> Array.to_list
    |> List.filter (fun f -> Filename.check_suffix f ".txt")
    |> List.sort compare
  in
  Alcotest.(check bool) "pinned schedules present" true (List.length files >= 2);
  List.iter
    (fun f ->
      let r = Explore.replay_file (Filename.concat dir f) in
      Alcotest.(check bool) (f ^ " bit-identical") true r.Explore.rp_identical;
      Alcotest.(check (list (pair string string)))
        (f ^ " passes") []
        r.Explore.rp_outcome.Explore.o_violations;
      Alcotest.(check (option string))
        (f ^ " no crash") None
        r.Explore.rp_outcome.Explore.o_crash)
    files

let () =
  Alcotest.run "check"
    [
      ( "schedule",
        [ Alcotest.test_case "record/replay" `Quick test_schedule_record_replay ]
      );
      ( "monitor",
        [
          Alcotest.test_case "dedup and when" `Quick test_monitor_dedup_and_when;
        ] );
      ( "probes",
        [
          Alcotest.test_case "sched corruption" `Quick
            test_probe_sched_corruption;
          Alcotest.test_case "reliable corruption" `Quick
            test_probe_reliable_corruption;
          Alcotest.test_case "coalesce corruption" `Quick
            test_probe_coalesce_corruption;
          Alcotest.test_case "migrate cycle" `Quick test_probe_migrate_cycle;
          Alcotest.test_case "dgc forged weight" `Quick
            test_probe_dgc_forged_weight;
        ] );
      ("shrink", [ Alcotest.test_case "minimal" `Quick test_shrink_minimal ]);
      ( "explore",
        [
          Alcotest.test_case "replay identical" `Quick test_replay_identical;
          Alcotest.test_case "pinned schedules" `Quick
            test_regression_schedules;
        ] );
    ]
