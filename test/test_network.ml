(* Unit tests for the torus topology and the message fabric. *)

module Topology = Network.Topology
module Packet = Network.Packet
module Fabric = Network.Fabric

let test_coords_roundtrip () =
  let t = Topology.create ~x:4 ~y:3 in
  Alcotest.(check int) "count" 12 (Topology.node_count t);
  for n = 0 to 11 do
    Alcotest.(check int) "roundtrip" n (Topology.node_at t (Topology.coords t n))
  done;
  Alcotest.(check (pair int int)) "coords 5" (1, 1) (Topology.coords t 5)

let test_hops_wraparound () =
  let t = Topology.create ~x:8 ~y:8 in
  let at xy = Topology.node_at t xy in
  Alcotest.(check int) "self" 0 (Topology.hops t (at (0, 0)) (at (0, 0)));
  Alcotest.(check int) "adjacent" 1 (Topology.hops t (at (0, 0)) (at (1, 0)));
  (* Wrap-around: (0,0) to (7,0) is one hop through the torus link. *)
  Alcotest.(check int) "wrap x" 1 (Topology.hops t (at (0, 0)) (at (7, 0)));
  Alcotest.(check int) "wrap y" 1 (Topology.hops t (at (0, 0)) (at (0, 7)));
  Alcotest.(check int) "diagonal middle" 8 (Topology.hops t (at (0, 0)) (at (4, 4)))

let test_hops_symmetric () =
  let t = Topology.create ~x:5 ~y:7 in
  let rng = Simcore.Rng.create ~seed:11 in
  for _ = 1 to 200 do
    let a = Simcore.Rng.int rng 35 and b = Simcore.Rng.int rng 35 in
    Alcotest.(check int) "symmetric" (Topology.hops t a b) (Topology.hops t b a)
  done

let test_neighbors () =
  let t = Topology.create ~x:4 ~y:4 in
  let ns = Topology.neighbors t 5 in
  Alcotest.(check int) "4 neighbors" 4 (List.length ns);
  List.iter
    (fun m -> Alcotest.(check int) "at distance 1" 1 (Topology.hops t 5 m))
    ns;
  (* Degenerate 1xN torus has fewer distinct neighbours. *)
  let line = Topology.create ~x:1 ~y:3 in
  Alcotest.(check int) "1x3 has 2 neighbors" 2
    (List.length (Topology.neighbors line 0))

let test_square_for () =
  let check_p p =
    let t = Topology.square_for p in
    Alcotest.(check int) "node count preserved" p (Topology.node_count t)
  in
  List.iter check_p [ 1; 2; 3; 7; 12; 64; 512; 100 ];
  let t = Topology.square_for 512 in
  Alcotest.(check (pair int int)) "512 is 16x32" (16, 32) (Topology.dims t)

let test_bad_args () =
  Alcotest.check_raises "zero dim"
    (Invalid_argument "Topology.create: dims must be >= 1") (fun () ->
      ignore (Topology.create ~x:0 ~y:3));
  let t = Topology.create ~x:2 ~y:2 in
  Alcotest.check_raises "bad node" (Invalid_argument "Topology.coords: bad node")
    (fun () -> ignore (Topology.coords t 4))

let test_packet () =
  let p = Packet.make ~src:0 ~dst:1 ~size_bytes:16 () in
  Alcotest.(check int) "wire = header + payload" (Packet.header_bytes + 16)
    (Packet.wire_bytes p);
  Alcotest.check_raises "negative size"
    (Invalid_argument "Packet.make: negative size") (fun () ->
      ignore (Packet.make ~src:0 ~dst:1 ~size_bytes:(-1) ()))

let test_transit_components () =
  let topo = Topology.create ~x:4 ~y:4 in
  let f = Fabric.create topo in
  let cfg = Fabric.config f in
  let transit ~dst ~size =
    Fabric.transit_time f (Packet.make ~src:0 ~dst ~size_bytes:size ())
  in
  (* More hops cost more; bigger packets cost more. *)
  Alcotest.(check bool) "hops increase latency" true
    (transit ~dst:10 ~size:4 > transit ~dst:1 ~size:4);
  let small = transit ~dst:1 ~size:4 and big = transit ~dst:1 ~size:1004 in
  Alcotest.(check int) "bandwidth term"
    (1000 * 1000 / cfg.Fabric.bytes_per_us)
    (big - small)

let test_transmission_roundup () =
  (* Regression: with a bandwidth that does not divide the wire size
     evenly, the transmission term must round up (a partial flit occupies
     the link for a whole cycle), never truncate to zero or under-charge. *)
  let topo = Topology.create ~x:2 ~y:1 in
  let config = { Fabric.default_config with Fabric.bytes_per_us = 7 } in
  let f = Fabric.create ~config topo in
  let fixed = config.Fabric.hw_launch_ns + config.Fabric.per_hop_ns in
  for size = 0 to 20 do
    let wire = size + Packet.header_bytes in
    let tx =
      Fabric.transit_time f (Packet.make ~src:0 ~dst:1 ~size_bytes:size ())
      - fixed
    in
    Alcotest.(check bool) "never under-charges" true (tx * 7 >= wire * 1000);
    Alcotest.(check bool) "tightest ceiling" true ((tx - 1) * 7 < wire * 1000)
  done

let test_reset_and_channel_entries () =
  let topo = Topology.create ~x:4 ~y:4 in
  let config = { Fabric.default_config with Fabric.contention = true } in
  let f = Fabric.create ~config topo in
  let probe () =
    Fabric.send f ~now:0 (Packet.make ~src:3 ~dst:12 ~size_bytes:64 ())
  in
  let fresh = probe () in
  Alcotest.(check bool) "entries accumulate" true (Fabric.channel_entries f > 0);
  for dst = 1 to 15 do
    ignore (Fabric.send f ~now:0 (Packet.make ~src:0 ~dst ~size_bytes:256 ()))
  done;
  let grown = Fabric.channel_entries f in
  Alcotest.(check bool) "entries grow with channels used" true
    (grown > Fabric.channel_entries (Fabric.create ~config topo));
  Fabric.reset f;
  Alcotest.(check int) "reset reclaims bookkeeping" 0 (Fabric.channel_entries f);
  Alcotest.(check int) "packets zeroed" 0 (Fabric.packets_sent f);
  Alcotest.(check int) "bytes zeroed" 0 (Fabric.bytes_sent f);
  Alcotest.(check int) "reset restores just-created timing" fresh (probe ())

let test_contention_fifo_monotone () =
  (* Under contention the per-link occupancy adds delays, but each
     (src, dst) channel must still deliver in send order, strictly after
     the send instant. *)
  let topo = Topology.create ~x:4 ~y:1 in
  let config = { Fabric.default_config with Fabric.contention = true } in
  let f = Fabric.create ~config topo in
  let last = ref 0 and now = ref 0 in
  List.iter
    (fun size ->
      (* Cross traffic sharing link (2,3) between the channel's packets. *)
      ignore (Fabric.send f ~now:!now (Packet.make ~src:2 ~dst:3 ~size_bytes:800 ()));
      let t =
        Fabric.send f ~now:!now (Packet.make ~src:0 ~dst:3 ~size_bytes:size ())
      in
      Alcotest.(check bool) "FIFO preserved under contention" true (t > !last);
      Alcotest.(check bool) "arrival after send" true (t > !now);
      last := t;
      now := !now + 100)
    [ 4000; 1000; 2000; 100; 4 ]

let test_fifo_per_channel () =
  let topo = Topology.create ~x:4 ~y:4 in
  let f = Fabric.create topo in
  (* Same channel, decreasing sizes: later packets must not overtake. *)
  let last = ref 0 in
  List.iter
    (fun size ->
      let t =
        Fabric.send f ~now:0 (Packet.make ~src:0 ~dst:5 ~size_bytes:size ())
      in
      Alcotest.(check bool) "strictly later" true (t > !last);
      last := t)
    [ 4000; 1000; 100; 4 ]

let test_injection_serialization () =
  let topo = Topology.create ~x:4 ~y:4 in
  let f = Fabric.create topo in
  (* Two packets to different destinations still share the source link. *)
  let t1 = Fabric.send f ~now:0 (Packet.make ~src:0 ~dst:1 ~size_bytes:1000 ()) in
  let t2 = Fabric.send f ~now:0 (Packet.make ~src:0 ~dst:2 ~size_bytes:1000 ()) in
  Alcotest.(check bool) "second delayed by injection port" true (t2 > t1);
  Alcotest.(check int) "packets counted" 2 (Fabric.packets_sent f);
  Alcotest.(check int) "bytes counted"
    (2 * (1000 + Packet.header_bytes))
    (Fabric.bytes_sent f)

let test_delivery_after_now () =
  let topo = Topology.create ~x:2 ~y:1 in
  let f = Fabric.create topo in
  let t = Fabric.send f ~now:1_000_000 (Packet.make ~src:0 ~dst:1 ~size_bytes:0 ()) in
  Alcotest.(check bool) "delivery strictly after send" true (t > 1_000_000)

let test_route_properties () =
  let t = Topology.create ~x:6 ~y:5 in
  let rng = Simcore.Rng.create ~seed:3 in
  Alcotest.(check (list int)) "route to self is empty" []
    (Topology.route t 7 7);
  for _ = 1 to 100 do
    let a = Simcore.Rng.int rng 30 and b = Simcore.Rng.int rng 30 in
    let route = Topology.route t a b in
    Alcotest.(check int) "route length = hops" (Topology.hops t a b)
      (List.length route);
    (match List.rev route with
    | last :: _ -> Alcotest.(check int) "ends at destination" b last
    | [] -> Alcotest.(check int) "empty iff self" a b);
    (* consecutive pairs are torus links *)
    let rec pairs prev = function
      | [] -> ()
      | next :: rest ->
          Alcotest.(check int) "one hop per link" 1 (Topology.hops t prev next);
          pairs next rest
    in
    pairs a route
  done

let test_contention_delays_sharing () =
  let topo = Topology.create ~x:4 ~y:1 in
  let config = { Fabric.default_config with Fabric.contention = true } in
  let contended () =
    let f = Fabric.create ~config topo in
    (* 0 -> 2 passes through link (1,2); 1 -> 2 uses the same link. *)
    let a = Fabric.send f ~now:0 (Packet.make ~src:0 ~dst:2 ~size_bytes:1000 ()) in
    let b = Fabric.send f ~now:0 (Packet.make ~src:1 ~dst:2 ~size_bytes:1000 ()) in
    (a, b)
  in
  let uncontended dst src =
    let f = Fabric.create ~config topo in
    Fabric.send f ~now:0 (Packet.make ~src ~dst ~size_bytes:1000 ())
  in
  let _, b = contended () in
  Alcotest.(check bool) "second packet delayed by the shared link" true
    (b > uncontended 2 1);
  (* Disjoint routes are not delayed. *)
  let f = Fabric.create ~config topo in
  let x = Fabric.send f ~now:0 (Packet.make ~src:0 ~dst:1 ~size_bytes:1000 ()) in
  let y = Fabric.send f ~now:0 (Packet.make ~src:2 ~dst:3 ~size_bytes:1000 ()) in
  Alcotest.(check int) "disjoint traffic unaffected" x y

let test_contention_preserves_results () =
  let machine_config =
    {
      Machine.Engine.default_config with
      Machine.Engine.fabric =
        { Fabric.default_config with Fabric.contention = true };
    }
  in
  let r = Apps.Nqueens_par.run ~machine_config ~nodes:8 ~n:7 () in
  let base = Apps.Nqueens_par.run ~nodes:8 ~n:7 () in
  Alcotest.(check int) "same answer under contention" base.Apps.Nqueens_par.solutions
    r.Apps.Nqueens_par.solutions;
  Alcotest.(check int) "same message census" base.messages r.messages;
  (* Per-packet latency is monotone (unit test above); the makespan can
     shift either way because arrival times reshuffle the scheduling
     interleaving, so only sanity-check it here. *)
  Alcotest.(check bool) "ran to completion" true (r.elapsed > 0)

let () =
  Alcotest.run "network"
    [
      ( "topology",
        [
          Alcotest.test_case "coords roundtrip" `Quick test_coords_roundtrip;
          Alcotest.test_case "wraparound hops" `Quick test_hops_wraparound;
          Alcotest.test_case "hops symmetric" `Quick test_hops_symmetric;
          Alcotest.test_case "neighbors" `Quick test_neighbors;
          Alcotest.test_case "square_for" `Quick test_square_for;
          Alcotest.test_case "bad args" `Quick test_bad_args;
          Alcotest.test_case "routing" `Quick test_route_properties;
        ] );
      ("packet", [ Alcotest.test_case "sizes" `Quick test_packet ]);
      ( "fabric",
        [
          Alcotest.test_case "transit components" `Quick test_transit_components;
          Alcotest.test_case "transmission rounds up" `Quick
            test_transmission_roundup;
          Alcotest.test_case "fifo per channel" `Quick test_fifo_per_channel;
          Alcotest.test_case "reset + channel entries" `Quick
            test_reset_and_channel_entries;
          Alcotest.test_case "contention fifo monotone" `Quick
            test_contention_fifo_monotone;
          Alcotest.test_case "injection serialization" `Quick
            test_injection_serialization;
          Alcotest.test_case "delivery after now" `Quick test_delivery_after_now;
          Alcotest.test_case "contention delays sharing" `Quick
            test_contention_delays_sharing;
          Alcotest.test_case "contention end-to-end" `Quick
            test_contention_preserves_results;
        ] );
    ]
