(* Unit tests for multiple virtual function table construction and the
   mode transitions observable through an object's VFTP. *)

open Core

let p_foo = Pattern.intern "vft_foo" ~arity:0
let p_bar = Pattern.intern "vft_bar" ~arity:0
let p_other = Pattern.intern "vft_other" ~arity:0

let make_cls () =
  Class_def.define ~name:"vft_test"
    ~methods:
      [ (p_foo, fun _ _ -> ()); (p_bar, fun _ _ -> ()) ]
    ()

let is_invoke = function Kernel.Invoke _ -> true | _ -> false
let is_invoke_init = function Kernel.Invoke_init _ -> true | _ -> false

let test_dormant_table () =
  let cls = make_cls () in
  let t = Vft.dormant cls in
  Alcotest.(check bool) "foo is a method" true (is_invoke (Kernel.entry_at t p_foo));
  Alcotest.(check bool) "bar is a method" true (is_invoke (Kernel.entry_at t p_bar));
  Alcotest.(check bool) "other is No_method" true
    (Kernel.entry_at t p_other = Kernel.No_method);
  Alcotest.(check bool) "cached" true (Vft.dormant cls == t)

let test_init_table () =
  let cls = make_cls () in
  let t = Vft.init cls in
  Alcotest.(check bool) "foo wraps init" true
    (is_invoke_init (Kernel.entry_at t p_foo));
  Alcotest.(check bool) "cached" true (Vft.init cls == t);
  Alcotest.(check bool) "distinct from dormant" true (Vft.dormant cls != t)

let test_waiting_table () =
  let cls = make_cls () in
  let t = Vft.waiting cls [ p_bar ] in
  Alcotest.(check bool) "awaited restores" true
    (Kernel.entry_at t p_bar = Kernel.Restore);
  Alcotest.(check bool) "non-awaited queues" true
    (Kernel.entry_at t p_foo = Kernel.Enqueue);
  Alcotest.(check bool) "unknown queues too" true
    (Kernel.entry_at t p_other = Kernel.Enqueue);
  (* Cache normalises order and duplicates. *)
  let t2 = Vft.waiting cls [ p_bar; p_bar ] in
  Alcotest.(check bool) "normalised cache hit" true (t == t2)

let test_entry_beyond_table () =
  (* A pattern interned after a table was built indexes past its array;
     the table's default entry applies. *)
  let cls = make_cls () in
  let dormant = Vft.dormant cls in
  let late = Pattern.intern "vft_interned_later" ~arity:0 in
  Alcotest.(check bool) "dormant default: not understood" true
    (Kernel.entry_at dormant late = Kernel.No_method);
  let active = Vft.make_enqueue_all () in
  Alcotest.(check bool) "active default: queue" true
    (Kernel.entry_at active late = Kernel.Enqueue)

let test_shared_tables () =
  let active = Vft.make_enqueue_all () in
  let fault = Vft.make_fault () in
  Alcotest.(check bool) "active queues everything" true
    (Kernel.entry_at active p_foo = Kernel.Enqueue);
  Alcotest.(check bool) "fault queues everything" true
    (Kernel.entry_at fault p_other = Kernel.Enqueue);
  Alcotest.(check string) "kinds" "active" (Vft.kind_name active.Kernel.vft_kind);
  Alcotest.(check string) "fault kind" "fault" (Vft.kind_name fault.Kernel.vft_kind)

let test_duplicate_method_rejected () =
  Alcotest.check_raises "duplicate method"
    (Invalid_argument "Class_def.define vft_dup: duplicate method vft_foo")
    (fun () ->
      ignore
        (Class_def.define ~name:"vft_dup"
           ~methods:[ (p_foo, fun _ _ -> ()); (p_foo, fun _ _ -> ()) ]
           ()))

(* Mode transitions on a live object. *)

let p_run = Pattern.intern "vft_run" ~arity:0
let p_wait4 = Pattern.intern "vft_wait4" ~arity:0
let p_waited = Pattern.intern "vft_waited" ~arity:0

let test_mode_transitions () =
  let observed = ref [] in
  let cls_ref = ref None in
  let record ctx tag =
    let obj = Ctx.rt ctx |> fun _ -> ctx in
    ignore obj;
    observed := tag :: !observed
  in
  let cls =
    Class_def.define ~name:"vft_live"
      ~methods:
        [
          (p_run, fun ctx _ -> record ctx "ran");
          ( p_wait4,
            fun ctx _ ->
              let _ = Ctx.wait_for ctx [ p_waited ] in
              record ctx "resumed" );
        ]
      ()
  in
  cls_ref := Some cls;
  let sys = System.boot ~nodes:1 ~classes:[ cls ] () in
  let a = System.create_root sys ~node:0 cls [] in
  System.send_boot sys a p_run [];
  System.run sys;
  let obj = Option.get (System.lookup_obj sys a) in
  Alcotest.(check string) "dormant after run" "dormant" (Sched.mode_of obj);
  (* Now drive it into waiting mode. *)
  System.send_boot sys a p_wait4 [];
  System.run sys;
  Alcotest.(check string) "waiting while blocked" "waiting" (Sched.mode_of obj);
  Alcotest.(check bool) "context saved" true (Option.is_some obj.Kernel.blocked);
  System.send_boot sys a p_waited [];
  System.run sys;
  Alcotest.(check string) "dormant after resume" "dormant" (Sched.mode_of obj);
  Alcotest.(check (list string)) "order" [ "resumed"; "ran" ] !observed

let test_embryo_fault_mode () =
  let cls = make_cls () in
  let sys = System.boot ~nodes:2 ~classes:[ cls ] () in
  let rt1 = System.rt sys 1 in
  (* Slot 0 of node 1 is stock-reserved for requester node 0; looking it
     up materialises the fault-table embryo. *)
  let embryo = Sched.lookup_or_embryo rt1 0 in
  Alcotest.(check string) "fault mode" "fault" (Sched.mode_of embryo);
  Alcotest.(check bool) "no class yet" true (Option.is_none embryo.Kernel.cls)

let () =
  Alcotest.run "vft"
    [
      ( "tables",
        [
          Alcotest.test_case "dormant" `Quick test_dormant_table;
          Alcotest.test_case "init" `Quick test_init_table;
          Alcotest.test_case "waiting" `Quick test_waiting_table;
          Alcotest.test_case "shared" `Quick test_shared_tables;
          Alcotest.test_case "beyond table" `Quick test_entry_beyond_table;
          Alcotest.test_case "duplicate rejected" `Quick
            test_duplicate_method_rejected;
        ] );
      ( "modes",
        [
          Alcotest.test_case "transitions" `Quick test_mode_transitions;
          Alcotest.test_case "embryo fault" `Quick test_embryo_fault_mode;
        ] );
    ]
