(* Tests for the post-run residue diagnostics. *)

open Core

let p_go = Pattern.intern "td_go" ~arity:0
let p_never = Pattern.intern "td_never" ~arity:0
let p_noise = Pattern.intern "td_noise" ~arity:0

let test_clean_after_complete_run () =
  let cls =
    Class_def.define ~name:"td_ok" ~methods:[ (p_go, fun _ _ -> ()) ] ()
  in
  let sys = System.boot ~nodes:2 ~classes:[ cls ] () in
  let a = System.create_root sys ~node:0 cls [] in
  System.send_boot sys a p_go [];
  System.run sys;
  let r = Diagnostics.survey sys in
  Alcotest.(check bool) "clean" true (Diagnostics.is_clean r);
  Alcotest.(check string) "pp" "clean: no residual work"
    (Format.asprintf "%a" Diagnostics.pp r)

let test_orphan_selective_wait () =
  let cls =
    Class_def.define ~name:"td_waiter"
      ~methods:
        [
          ( p_go,
            fun ctx _ ->
              (* Waits for a message nobody ever sends. *)
              ignore (Ctx.wait_for ctx [ p_never ]) );
          (p_noise, fun _ _ -> ());
        ]
      ()
  in
  let sys = System.boot ~nodes:1 ~classes:[ cls ] () in
  let a = System.create_root sys ~node:0 cls [] in
  System.send_boot sys a p_go [];
  (* A non-awaited message gets buffered behind the wait forever. *)
  System.send_boot sys a p_noise [];
  System.run sys;
  let r = Diagnostics.survey sys in
  Alcotest.(check bool) "not clean" false (Diagnostics.is_clean r);
  match r.Diagnostics.blocked with
  | [ stuck ] ->
      Alcotest.(check string) "who" "td_waiter" stuck.Diagnostics.cls_name;
      Alcotest.(check string) "mode" "waiting" stuck.mode;
      Alcotest.(check (option string)) "why" (Some "messages [td_never]")
        stuck.waiting_for;
      Alcotest.(check int) "noise still buffered" 1 stuck.queued_messages
  | other ->
      Alcotest.failf "expected exactly one blocked object, got %d"
        (List.length other)

let test_orphan_now_wait () =
  let black_hole =
    (* Accepts the request but never replies. *)
    Class_def.define ~name:"td_hole" ~methods:[ (p_never, fun _ _ -> ()) ] ()
  in
  let hole_ref = ref Value.unit in
  let cls =
    Class_def.define ~name:"td_asker"
      ~methods:
        [
          ( p_go,
            fun ctx _ ->
              ignore (Ctx.send_now ctx (Value.to_addr !hole_ref) p_never []) );
        ]
      ()
  in
  let sys = System.boot ~nodes:2 ~classes:[ black_hole; cls ] () in
  let hole = System.create_root sys ~node:1 black_hole [] in
  hole_ref := Value.addr hole;
  let a = System.create_root sys ~node:0 cls [] in
  System.send_boot sys a p_go [];
  System.run sys;
  let r = Diagnostics.survey sys in
  match r.Diagnostics.blocked with
  | [ stuck ] ->
      (* Attributed to the suspended asker, not the reply destination. *)
      Alcotest.(check string) "who" "td_asker" stuck.Diagnostics.cls_name;
      Alcotest.(check bool) "why mentions reply" true
        (match stuck.waiting_for with
        | Some s -> String.length s > 0 && String.sub s 0 10 = "a now-type"
        | None -> false)
  | other ->
      Alcotest.failf "expected one blocked object, got %d" (List.length other)

let test_buffered_residue () =
  (* Messages left in the queue of an object that is waiting: counted as
     part of the blocked entry; messages to a *retired-like* quiescent
     object appear as buffered residue. Simplest case: fault-table embryo
     that never gets its creation request. *)
  let sys = System.boot ~nodes:2 ~classes:[] () in
  let machine = System.machine sys in
  let rt0 = System.rt sys 0 in
  let node0 = Machine.Engine.node machine 0 in
  let slot = Queue.take rt0.Kernel.stocks.(1) in
  let msg = Message.make ~pattern:p_noise ~args:[] ~src_node:0 () in
  Machine.Engine.post machine node0 (fun () ->
      Machine.Engine.send_am machine ~src:node0 ~dst:1
        ~handler:rt0.Kernel.shared.Kernel.h_obj_msg
        ~size_bytes:(Protocol.obj_msg_bytes msg)
        (Protocol.P_obj_msg { slot; msg }));
  System.run sys;
  let r = Diagnostics.survey sys in
  match r.Diagnostics.buffered with
  | [ stuck ] ->
      Alcotest.(check string) "embryo" "<chunk>" stuck.Diagnostics.cls_name;
      Alcotest.(check string) "fault table" "fault" stuck.mode;
      Alcotest.(check int) "one buffered" 1 stuck.queued_messages;
      Alcotest.(check bool) "pp mentions it" true
        (String.length (Format.asprintf "%a" Diagnostics.pp r) > 0)
  | other ->
      Alcotest.failf "expected one buffered object, got %d" (List.length other)

let () =
  Alcotest.run "diagnostics"
    [
      ( "residue",
        [
          Alcotest.test_case "clean run" `Quick test_clean_after_complete_run;
          Alcotest.test_case "orphan selective wait" `Quick
            test_orphan_selective_wait;
          Alcotest.test_case "orphan now-type wait" `Quick test_orphan_now_wait;
          Alcotest.test_case "buffered residue" `Quick test_buffered_residue;
        ] );
    ]
