(* Tests for the object-migration subsystem: manual moves with
   forwarding stubs, location caching and chain collapse, FIFO and
   exactly-once dispatch under migration (with and without network
   faults), the policy layer, and the migration statistics report. *)

open Core
module Engine = Machine.Engine
module Faults = Network.Faults

let p_add = Pattern.intern "mig_add" ~arity:1
let p_report = Pattern.intern "mig_report" ~arity:0
let p_next = Pattern.intern "mig_next" ~arity:0

(* An accumulator cell: [add k] folds k into the state twice over — an
   order-sensitive hash and a plain sum — and appends k to [trace], so a
   test can check both content and arrival order. [report] publishes the
   state into [result]. *)
let cell_cls ~result ~trace () =
  Class_def.define ~name:"mig_cell" ~state:[| "hash"; "sum" |]
    ~init:(fun _ -> [| Value.int 0; Value.int 0 |])
    ~methods:
      [
        ( p_add,
          fun ctx msg ->
            let k = Value.to_int (Message.arg msg 0) in
            trace := k :: !trace;
            Ctx.set ctx 0 (Value.int ((31 * Value.to_int (Ctx.get ctx 0)) + k));
            Ctx.set ctx 1 (Value.int (Value.to_int (Ctx.get ctx 1) + k)) );
        ( p_report,
          fun ctx _ ->
            result :=
              Some (Value.to_int (Ctx.get ctx 0), Value.to_int (Ctx.get ctx 1))
        );
      ]
    ()

let expected_hash_sum ks =
  List.fold_left (fun (h, s) k -> ((31 * h) + k, s + k)) (0, 0) ks

(* A driver that sends [count] sequenced [add]s to [target], one per
   scheduling slice (so migrations can interleave with the stream), then
   a final [report]. *)
let driver_cls () =
  Class_def.define ~name:"mig_driver" ~state:[| "target"; "i"; "count" |]
    ~init:(fun args ->
      match args with
      | [ target; count ] -> [| target; Value.int 0; count |]
      | _ -> invalid_arg "mig_driver")
    ~methods:
      [
        ( p_next,
          fun ctx _ ->
            let target =
              match Ctx.get ctx 0 with
              | Value.Addr a -> a
              | _ -> assert false
            in
            let i = Value.to_int (Ctx.get ctx 1) in
            let count = Value.to_int (Ctx.get ctx 2) in
            if i < count then begin
              Ctx.send ctx target p_add [ Value.int i ];
              Ctx.set ctx 1 (Value.int (i + 1));
              Ctx.send ctx (Ctx.self ctx) p_next []
            end
            else Ctx.send ctx target p_report [] );
      ]
    ()

(* The object's current live record, wherever migration put it. *)
let final_record sys ~nodes canon =
  let rec scan node =
    if node >= nodes then None
    else
      let rt = System.rt sys node in
      let found =
        Hashtbl.fold
          (fun _ (o : Kernel.obj) acc ->
            match acc with
            | Some _ -> acc
            | None ->
                if
                  o.Kernel.self = canon
                  &&
                  match o.Kernel.vftp.Kernel.vft_kind with
                  | Kernel.Vft_forward _ -> false
                  | _ -> true
                then Some o
                else None)
          rt.Kernel.objects None
      in
      match found with Some o -> Some o | None -> scan (node + 1)
  in
  scan 0

let check_conserved m =
  Alcotest.(check (pair int int))
    "no held or limbo'd residue" (0, 0) (Migrate.residual m);
  Alcotest.(check bool)
    (Printf.sprintf "stub chain <= 1 (got %d)" (Migrate.max_stub_chain m))
    true
    (Migrate.max_stub_chain m <= 1)

(* --- manual migration --------------------------------------------- *)

let test_manual_move () =
  let result = ref None and trace = ref [] in
  let cls = cell_cls ~result ~trace () in
  let sys = System.boot ~nodes:4 ~classes:[ cls ] () in
  let m = Migrate.attach sys in
  let cell = System.create_root sys ~node:0 cls [] in
  System.send_boot sys cell p_add [ Value.int 1 ];
  System.run sys;
  Alcotest.(check bool) "move accepted" true (Migrate.move m ~canon:cell ~to_:2);
  System.run sys;
  Alcotest.(check int) "now hosted on node 2" 2 (Migrate.locate m cell);
  Alcotest.(check int) "one stub left behind" 1 (Migrate.stub_count m ~node:0);
  Alcotest.(check int) "one migration" 1 (Migrate.migrations m);
  (* The mail address is unchanged: senders keep using it and the stub
     re-posts for them. *)
  System.send_boot sys cell p_add [ Value.int 10 ];
  System.send_boot sys cell p_report [];
  System.run sys;
  Alcotest.(check (option (pair int int)))
    "state travelled with the object"
    (Some (expected_hash_sum [ 1; 10 ]))
    !result;
  Alcotest.(check bool) "stub actually forwarded" true (Migrate.forwarded m > 0);
  check_conserved m;
  let d = Diagnostics.survey sys in
  Alcotest.(check bool) "clean quiescence" true (Diagnostics.is_clean d);
  Alcotest.(check bool) "diagnostics count the stub" true
    (List.mem_assoc 0 d.Diagnostics.forwarding_stubs)

let test_move_rejections () =
  let result = ref None and trace = ref [] in
  let cls = cell_cls ~result ~trace () in
  let sys = System.boot ~nodes:2 ~classes:[ cls ] () in
  let m = Migrate.attach sys in
  let cell = System.create_root sys ~node:0 cls [] in
  System.send_boot sys cell p_add [ Value.int 1 ];
  System.run sys;
  Alcotest.(check bool) "same node refused" false
    (Migrate.move m ~canon:cell ~to_:0);
  Alcotest.(check bool) "out of range refused" false
    (Migrate.move m ~canon:cell ~to_:7);
  Alcotest.(check int) "nothing moved" 0 (Migrate.migrations m)

let test_chain_collapse_and_revival () =
  let result = ref None and trace = ref [] in
  let cls = cell_cls ~result ~trace () in
  let sys = System.boot ~nodes:6 ~classes:[ cls ] () in
  let m = Migrate.attach sys in
  let cell = System.create_root sys ~node:0 cls [] in
  System.send_boot sys cell p_add [ Value.int 1 ];
  System.run sys;
  (* Hop the object across three hosts, messaging between hops so the
     stubs actually work, then check every old stub points one hop from
     home (the install-time update broadcast). *)
  List.iter
    (fun to_ ->
      Alcotest.(check bool)
        (Printf.sprintf "hop to %d" to_)
        true
        (Migrate.move m ~canon:cell ~to_);
      System.run sys;
      System.send_boot sys cell p_add [ Value.int to_ ];
      System.run sys)
    [ 1; 2; 3 ];
  Alcotest.(check int) "hosted on node 3" 3 (Migrate.locate m cell);
  Alcotest.(check int) "stubs on each previous host" 3
    (Migrate.stub_count m ~node:0 + Migrate.stub_count m ~node:1
   + Migrate.stub_count m ~node:2);
  check_conserved m;
  (* Returning home must revive the original record in place: the
     canonical node ends with a live object and no stub. *)
  Alcotest.(check bool) "move home accepted" true
    (Migrate.move m ~canon:cell ~to_:0);
  System.run sys;
  Alcotest.(check int) "back home" 0 (Migrate.locate m cell);
  Alcotest.(check int) "no stub at home" 0 (Migrate.stub_count m ~node:0);
  System.send_boot sys cell p_report [];
  System.run sys;
  Alcotest.(check (option (pair int int)))
    "all four hosts' deposits survived"
    (Some (expected_hash_sum [ 1; 1; 2; 3 ]))
    !result;
  check_conserved m;
  (* Everything above rode the migration counters. *)
  Alcotest.(check int) "four migrations" 4 (Migrate.migrations m);
  match Services.Migstats.survey sys with
  | None -> Alcotest.fail "migration stats expected"
  | Some r ->
      Alcotest.(check int) "report agrees on moves" 4
        r.Services.Migstats.migrations;
      Alcotest.(check int) "installs match moves" 4 r.Services.Migstats.installs;
      ignore (Format.asprintf "%a" Services.Migstats.pp r)

(* --- ordering ------------------------------------------------------ *)

let run_stream ?machine_config ~count ~moves () =
  let result = ref None and trace = ref [] in
  let cell = cell_cls ~result ~trace () in
  let driver = driver_cls () in
  let sys =
    System.boot ?machine_config ~nodes:6 ~classes:[ cell; driver ] ()
  in
  let m = Migrate.attach sys in
  let target = System.create_root sys ~node:0 cell [] in
  let drv =
    System.create_root sys ~node:4 driver
      [ Value.addr target; Value.int count ]
  in
  System.send_boot sys drv p_next [];
  (* Interleave migrations with the stream at engine level. *)
  List.iter
    (fun (time, to_) ->
      Engine.schedule_at (System.machine sys) ~time (fun () ->
          ignore (Migrate.move m ~canon:target ~to_)))
    moves;
  System.run sys;
  (m, sys, result, trace)

let check_stream_outcome ~count (m, sys, result, trace) =
  let ks = List.init count Fun.id in
  Alcotest.(check (option (pair int int)))
    "order-sensitive state correct"
    (Some (expected_hash_sum ks))
    !result;
  Alcotest.(check (list int)) "dispatched exactly once, in order" ks
    (List.rev !trace);
  check_conserved m;
  Alcotest.(check bool) "clean quiescence" true
    (Diagnostics.is_clean (Diagnostics.survey sys))

let stream_moves =
  [ (30_000, 1); (80_000, 2); (140_000, 3); (200_000, 5); (260_000, 2) ]

let test_fifo_under_migration () =
  let ((m, _, _, _) as outcome) =
    run_stream ~count:40 ~moves:stream_moves ()
  in
  check_stream_outcome ~count:40 outcome;
  Alcotest.(check bool) "migrations actually interleaved" true
    (Migrate.migrations m >= 2);
  Alcotest.(check bool) "stubs forwarded mid-stream" true
    (Migrate.forwarded m > 0)

let test_fifo_under_migration_and_faults () =
  let plan = Faults.plan ~seed:11 ~drop:0.2 ~duplicate:0.15 ~jitter_ns:4_000 () in
  let machine_config = { Engine.default_config with Engine.faults = Some plan } in
  let ((m, sys, _, _) as outcome) =
    run_stream ~machine_config ~count:40 ~moves:stream_moves ()
  in
  check_stream_outcome ~count:40 outcome;
  Alcotest.(check bool) "migrations actually interleaved" true
    (Migrate.migrations m >= 2);
  Alcotest.(check bool) "the network was actually hostile" true
    (Engine.packets_dropped (System.machine sys) > 0)

(* --- policies ------------------------------------------------------ *)

let addr node slot = { Value.node; slot }

let test_policy_decide () =
  let cand ?(queued = 0) ?dom ?(dom_n = 0) ?(total = 0) slot =
    {
      Migrate.Policy.cand_canon = addr 0 slot;
      cand_queued = queued;
      cand_dominant_peer = dom;
      cand_dominant_count = dom_n;
      cand_total_recv = total;
    }
  in
  let view ~load ~neighbors ~cands =
    {
      Migrate.Policy.v_node = 0;
      v_load = load;
      v_neighbors = neighbors;
      v_candidates = cands;
    }
  in
  let lt = Migrate.Policy.Load_threshold { factor = 2.0; min_queue = 1; max_moves = 2 } in
  (* Unknown neighbours: never push into the void. *)
  Alcotest.(check int) "no known neighbour, no move" 0
    (List.length
       (Migrate.Policy.decide lt
          (view ~load:50 ~neighbors:[ (1, None); (2, None) ]
             ~cands:[ cand ~queued:5 7 ])));
  (* Busiest candidates go first, scattered over the under-loaded
     neighbours (least-loaded gets the busiest). *)
  let ds =
    Migrate.Policy.decide lt
      (view ~load:10
         ~neighbors:[ (1, Some 4); (2, Some 1); (3, None) ]
         ~cands:[ cand ~queued:1 7; cand ~queued:9 8; cand ~queued:4 9 ])
  in
  Alcotest.(check (list (pair int int)))
    "two busiest scattered: node 2 then node 1"
    [ (8, 2); (9, 1) ]
    (List.map
       (fun d ->
         (d.Migrate.Policy.d_canon.Value.slot, d.Migrate.Policy.d_to))
       ds);
  (* Below threshold: stay put. *)
  Alcotest.(check int) "below threshold, no move" 0
    (List.length
       (Migrate.Policy.decide lt
          (view ~load:2
             ~neighbors:[ (1, Some 4); (2, Some 1) ]
             ~cands:[ cand ~queued:9 8 ])));
  let ap = Migrate.Policy.Affinity_pull { min_msgs = 5; max_moves = 4 } in
  let view5 ~cands =
    { (view ~load:0 ~neighbors:[] ~cands) with Migrate.Policy.v_node = 5 }
  in
  let ds =
    Migrate.Policy.decide ap
      (view5
         ~cands:
           [
             (* strict majority from node 3: pulled *)
             cand ~dom:3 ~dom_n:8 ~total:10 7;
             (* already local majority: stays *)
             cand ~dom:5 ~dom_n:9 ~total:9 8;
             (* no strict majority: stays *)
             cand ~dom:2 ~dom_n:5 ~total:10 9;
             (* too few messages: stays *)
             cand ~dom:4 ~dom_n:3 ~total:4 10;
             (* majority from a higher node id: stays (pulling only
                downhill breaks mutual-pursuit swaps) *)
             cand ~dom:9 ~dom_n:8 ~total:10 11;
           ])
  in
  Alcotest.(check (list (pair int int)))
    "only the majority-remote downhill candidate moves"
    [ (7, 3) ]
    (List.map
       (fun d ->
         (d.Migrate.Policy.d_canon.Value.slot, d.Migrate.Policy.d_to))
       ds)

let test_policy_tick_moves () =
  let result = ref None and trace = ref [] in
  let cls = cell_cls ~result ~trace () in
  let sys = System.boot ~nodes:2 ~classes:[ cls ] () in
  (* A policy that pushes everything movable on node 0 to node 1. *)
  let policy =
    Migrate.Policy.Custom
      (fun v ->
        if v.Migrate.Policy.v_node = 0 then
          List.map
            (fun c ->
              { Migrate.Policy.d_canon = c.Migrate.Policy.cand_canon; d_to = 1 })
            v.Migrate.Policy.v_candidates
        else [])
  in
  let m = Migrate.attach ~policy sys in
  let cell = System.create_root sys ~node:0 cls [] in
  System.send_boot sys cell p_add [ Value.int 3 ];
  System.run sys;
  Alcotest.(check int) "tick moves the cell" 1 (Migrate.policy_tick m ~node:0);
  System.run sys;
  Alcotest.(check int) "cell now on node 1" 1 (Migrate.locate m cell);
  Alcotest.(check int) "second tick finds nothing" 0
    (Migrate.policy_tick m ~node:0)

(* --- the acceptance property --------------------------------------- *)

(* Known solution counts for small boards. *)
let queens_solutions = [| 1; 1; 0; 0; 2; 10; 4; 40 |]

(* Under any fault plan and any migration schedule, the program computes
   the same answers as the undisturbed run and quiesces with nothing
   lost: a deterministic pseudo-random policy keeps objects hopping all
   run long. *)
let scramble_policy p salt =
  let counter = ref 0 in
  Migrate.Policy.Custom
    (fun v ->
      incr counter;
      let h =
        (1_000_003 * !counter) + (7919 * v.Migrate.Policy.v_node) + salt
      in
      match v.Migrate.Policy.v_candidates with
      | [] -> []
      | cands ->
          let pick = List.nth cands (abs h mod List.length cands) in
          let to_ = abs (h / 7) mod p in
          if to_ = v.Migrate.Policy.v_node then []
          else
            [ { Migrate.Policy.d_canon = pick.Migrate.Policy.cand_canon;
                d_to = to_ } ])

let run_queens_scrambled ~n ~p ~salt ~faults =
  let machine_config =
    match faults with
    | None -> Engine.default_config
    | Some plan -> { Engine.default_config with Engine.faults = Some plan }
  in
  let cls = Apps.Nqueens_par.solver_cls () in
  let sys = System.boot ~machine_config ~nodes:p ~classes:[ cls ] () in
  let m =
    Migrate.attach ~policy:(scramble_policy p salt) ~interval_ns:5_000 sys
  in
  let root =
    System.create_root sys ~node:0 cls
      [ Value.int n; Value.int Apps.Queens_board.empty_packed; Value.unit ]
  in
  System.send_boot sys root (Pattern.intern "expand" ~arity:0) [];
  System.run sys;
  let solutions =
    match final_record sys ~nodes:p root with
    | Some o -> Value.to_int o.Kernel.state.(4)
    | None -> -1
  in
  (m, sys, solutions)

let prop_scrambled_queens =
  QCheck.Test.make ~count:10 ~name:"queens under random migration+faults"
    QCheck.(
      quad (int_range 4 6) (int_range 2 8) (int_range 0 1000) (int_range 0 2))
    (fun (n, p, salt, fault_kind) ->
      let faults =
        match fault_kind with
        | 0 -> None
        | 1 -> Some (Faults.plan ~seed:salt ~drop:0.1 ~jitter_ns:2_000 ())
        | _ ->
            Some
              (Faults.plan ~seed:salt ~drop:0.05 ~duplicate:0.1
                 ~jitter_ns:1_000 ())
      in
      let m, sys, solutions = run_queens_scrambled ~n ~p ~salt ~faults in
      let held, limbo = Migrate.residual m in
      solutions = queens_solutions.(n)
      && held = 0 && limbo = 0
      && Migrate.max_stub_chain m <= 1
      && Diagnostics.is_clean (Diagnostics.survey sys))

let test_scramble_determinism () =
  (* Same inputs, same machine: migration keeps runs reproducible. *)
  let run () =
    let m, sys, solutions =
      run_queens_scrambled ~n:5 ~p:4 ~salt:77
        ~faults:(Some (Faults.plan ~seed:9 ~drop:0.1 ~duplicate:0.05 ()))
    in
    ( solutions,
      Migrate.migrations m,
      Migrate.forwarded m,
      Simcore.Stats.get (System.stats sys) "send.remote" )
  in
  let a = run () and b = run () in
  Alcotest.(check bool) "bit-identical reruns" true (a = b);
  let solutions, migrations, _, _ = a in
  Alcotest.(check int) "right answer" 10 solutions;
  Alcotest.(check bool) "objects really moved" true (migrations > 0)

let () =
  Alcotest.run "migrate"
    [
      ( "manual",
        [
          Alcotest.test_case "move, forward, locate" `Quick test_manual_move;
          Alcotest.test_case "rejections" `Quick test_move_rejections;
          Alcotest.test_case "chain collapse and revival" `Quick
            test_chain_collapse_and_revival;
        ] );
      ( "ordering",
        [
          Alcotest.test_case "fifo under migration" `Quick
            test_fifo_under_migration;
          Alcotest.test_case "fifo under migration and faults" `Quick
            test_fifo_under_migration_and_faults;
        ] );
      ( "policy",
        [
          Alcotest.test_case "pure decisions" `Quick test_policy_decide;
          Alcotest.test_case "tick applies moves" `Quick test_policy_tick_moves;
        ] );
      ( "acceptance",
        [
          QCheck_alcotest.to_alcotest prop_scrambled_queens;
          Alcotest.test_case "determinism" `Quick test_scramble_determinism;
        ] );
    ]
