(* Integration tests for the integrated stack/queue scheduler — including
   the paper's Figure 1 and Figure 3 scenarios reproduced literally. *)

open Core

let p_start = Pattern.intern "ts_start" ~arity:1
let p_m = Pattern.intern "ts_m" ~arity:1
let p_go = Pattern.intern "ts_go" ~arity:1

(* --- Figure 1: A sends to dormant B; B to dormant C; C back to (now
   active) B. Stack-based scheduling runs B and C immediately; the second
   message to B is buffered and processed through the scheduling queue
   after A finishes. --- *)

let test_figure1 () =
  let log = ref [] in
  let trace tag = log := tag :: !log in
  let cls_c c_target_b =
    Class_def.define ~name:"fig1_c"
      ~methods:
        [
          ( p_m,
            fun ctx _msg ->
              trace "C.begin";
              Ctx.send ctx (Value.to_addr !c_target_b) p_m [ Value.int 2 ];
              trace "C.continue" );
        ]
      ()
  in
  let cls_b c_addr =
    Class_def.define ~name:"fig1_b"
      ~methods:
        [
          ( p_m,
            fun ctx msg ->
              match Value.to_int (Message.arg msg 0) with
              | 1 ->
                  trace "B.m1";
                  Ctx.send ctx (Value.to_addr !c_addr) p_m [ Value.int 0 ];
                  trace "B.after"
              | _ -> trace "B.m2" );
        ]
      ()
  in
  let cls_a b_addr =
    Class_def.define ~name:"fig1_a"
      ~methods:
        [
          ( p_start,
            fun ctx _msg ->
              trace "A.begin";
              Ctx.send ctx (Value.to_addr !b_addr) p_m [ Value.int 1 ];
              trace "A.after" );
        ]
      ()
  in
  let b_ref = ref Value.unit and c_ref = ref Value.unit in
  let c_cls = cls_c b_ref in
  let b_cls = cls_b c_ref in
  let a_cls = cls_a b_ref in
  let sys = System.boot ~nodes:1 ~classes:[ a_cls; b_cls; c_cls ] () in
  let a = System.create_root sys ~node:0 a_cls [] in
  let b = System.create_root sys ~node:0 b_cls [] in
  let c = System.create_root sys ~node:0 c_cls [] in
  b_ref := Value.addr b;
  c_ref := Value.addr c;
  System.send_boot sys a p_start [ Value.int 0 ];
  System.run sys;
  Alcotest.(check (list string))
    "Figure 1 event order"
    [ "A.begin"; "B.m1"; "C.begin"; "C.continue"; "B.after"; "A.after"; "B.m2" ]
    (List.rev !log);
  let st = System.stats sys in
  Alcotest.(check int) "one buffered message (C's second to B)" 1
    (Simcore.Stats.get st "send.local.active");
  Alcotest.(check int) "three stack-invoked messages" 3
    (Simcore.Stats.get st "send.local.dormant")

(* --- Figure 3: S sends a now-type message to an active R; since no
   reply can have arrived, S saves its context and unwinds; R later
   processes the request from its queue and the reply resumes S. --- *)

let p_poke = Pattern.intern "ts_poke" ~arity:1
let p_req = Pattern.intern "ts_req" ~arity:1

let test_figure3 () =
  let log = ref [] in
  let trace tag = log := tag :: !log in
  let s_ref = ref Value.unit in
  let r_cls =
    Class_def.define ~name:"fig3_r"
      ~methods:
        [
          ( p_go,
            fun ctx _msg ->
              trace "R.begin";
              (* Invoke dormant S on top of R's frame: R stays active. *)
              Ctx.send ctx (Value.to_addr !s_ref) p_poke [ Value.int 0 ];
              trace "R.rest" );
          ( p_req,
            fun ctx msg ->
              trace "R.req";
              Ctx.reply ctx msg (Value.int 99) );
        ]
      ()
  in
  let r_ref = ref Value.unit in
  let s_cls =
    Class_def.define ~name:"fig3_s" ~state:[| "got" |]
      ~init:(fun _ -> [| Value.int 0 |])
      ~methods:
        [
          ( p_poke,
            fun ctx _msg ->
              trace "S.begin";
              let reply =
                Ctx.send_now ctx (Value.to_addr !r_ref) p_req [ Value.int 0 ]
              in
              trace "S.resumed";
              Ctx.set ctx 0 reply );
        ]
      ()
  in
  let sys = System.boot ~nodes:1 ~classes:[ r_cls; s_cls ] () in
  let r = System.create_root sys ~node:0 r_cls [] in
  let s = System.create_root sys ~node:0 s_cls [] in
  r_ref := Value.addr r;
  s_ref := Value.addr s;
  System.send_boot sys r p_go [ Value.int 0 ];
  System.run sys;
  Alcotest.(check (list string))
    "Figure 3 event order"
    [ "R.begin"; "S.begin"; "R.rest"; "R.req"; "S.resumed" ]
    (List.rev !log);
  let st = System.stats sys in
  Alcotest.(check int) "S blocked awaiting the reply" 1
    (Simcore.Stats.get st "reply.blocked");
  Alcotest.(check int) "no immediate reply" 0
    (Simcore.Stats.get st "reply.immediate");
  let s_obj = Option.get (System.lookup_obj sys s) in
  Alcotest.(check int) "reply value stored" 99
    (Value.to_int s_obj.Kernel.state.(0))

(* --- FIFO processing of buffered messages --- *)

let p_flood = Pattern.intern "ts_flood" ~arity:1
let p_item = Pattern.intern "ts_item" ~arity:1

let test_buffered_fifo () =
  let seen = ref [] in
  let cls =
    Class_def.define ~name:"ts_fifo"
      ~methods:
        [
          ( p_flood,
            fun ctx _msg ->
              let self = Ctx.self ctx in
              for i = 1 to 5 do
                Ctx.send ctx self p_item [ Value.int i ]
              done );
          ( p_item,
            fun _ctx msg -> seen := Value.to_int (Message.arg msg 0) :: !seen );
        ]
      ()
  in
  let sys = System.boot ~nodes:1 ~classes:[ cls ] () in
  let a = System.create_root sys ~node:0 cls [] in
  System.send_boot sys a p_flood [ Value.int 0 ];
  System.run sys;
  Alcotest.(check (list int)) "buffered messages processed in order"
    [ 1; 2; 3; 4; 5 ] (List.rev !seen)

(* --- Preemption of a long-running method --- *)

let test_preemption () =
  let cls =
    Class_def.define ~name:"ts_long"
      ~methods:
        [
          ( p_go,
            fun ctx _msg ->
              for _ = 1 to 100 do
                Ctx.charge ctx 1000
              done );
        ]
      ()
  in
  let rt_config =
    { System.default_rt_config with Kernel.quantum_instr = 10_000 }
  in
  let sys = System.boot ~rt_config ~nodes:1 ~classes:[ cls ] () in
  let a = System.create_root sys ~node:0 cls [] in
  System.send_boot sys a p_go [ Value.int 0 ];
  System.run sys;
  let preempts = Simcore.Stats.get (System.stats sys) "preempt" in
  Alcotest.(check bool) "method was preempted" true (preempts >= 5);
  (* 100 x 1000 instructions of work happened despite preemption. *)
  Alcotest.(check bool) "work completed" true
    (System.elapsed sys >= Machine.Cost_model.time Machine.Cost_model.default 100_000)

(* --- Deep send chains fall back to the scheduling queue --- *)

let p_hop = Pattern.intern "ts_hop" ~arity:2

let test_depth_limit () =
  let cls_ref = ref None in
  let cls =
    Class_def.define ~name:"ts_chain" ~state:[| "hits" |]
      ~init:(fun _ -> [| Value.int 0 |])
      ~methods:
        [
          ( p_hop,
            fun ctx msg ->
              let remaining = Value.to_int (Message.arg msg 0) in
              let counter = Value.to_addr (Message.arg msg 1) in
              if remaining = 0 then Ctx.send ctx counter p_item [ Value.int 1 ]
              else begin
                let next = Ctx.create_local ctx (Option.get !cls_ref) [] in
                Ctx.send ctx next p_hop
                  [ Value.int (remaining - 1); Value.addr counter ]
              end );
          ( p_item,
            fun ctx _msg ->
              Ctx.set ctx 0 (Value.int (Value.to_int (Ctx.get ctx 0) + 1)) );
        ]
      ()
  in
  cls_ref := Some cls;
  let rt_config =
    { System.default_rt_config with Kernel.max_stack_depth = 4 }
  in
  let sys = System.boot ~rt_config ~nodes:1 ~classes:[ cls ] () in
  let a = System.create_root sys ~node:0 cls [] in
  System.send_boot sys a p_hop [ Value.int 40; Value.addr a ];
  System.run sys;
  let st = System.stats sys in
  Alcotest.(check bool) "some sends were depth-limited" true
    (Simcore.Stats.get st "send.local.depth_limited" > 0);
  let obj = Option.get (System.lookup_obj sys a) in
  Alcotest.(check int) "chain completed" 1 (Value.to_int obj.Kernel.state.(0))

(* --- Naive scheduling buffers everything but preserves semantics --- *)

let test_naive_scheduling () =
  let seen = ref [] in
  let cls =
    Class_def.define ~name:"ts_naive"
      ~methods:
        [
          ( p_flood,
            fun ctx _msg ->
              let self = Ctx.self ctx in
              for i = 1 to 3 do
                Ctx.send ctx self p_item [ Value.int i ]
              done );
          ( p_item,
            fun _ctx msg -> seen := Value.to_int (Message.arg msg 0) :: !seen );
        ]
      ()
  in
  let sys =
    System.boot ~rt_config:System.naive_rt_config ~nodes:1 ~classes:[ cls ] ()
  in
  let a = System.create_root sys ~node:0 cls [] in
  System.send_boot sys a p_flood [ Value.int 0 ];
  System.run sys;
  Alcotest.(check (list int)) "order preserved" [ 1; 2; 3 ] (List.rev !seen);
  let st = System.stats sys in
  Alcotest.(check int) "no stack-based invocations" 0
    (Simcore.Stats.get st "send.local.dormant");
  (* The bootstrap send and any send to a dormant object take the naive
     buffered path; self-sends while running hit the active-mode queuing
     procedure as usual. Nothing runs on the stack. *)
  Alcotest.(check int) "everything buffered"
    4
    (Simcore.Stats.get st "send.local.naive_buffered"
    + Simcore.Stats.get st "send.local.active")

(* --- Interrupt-driven delivery handles messages mid-computation --- *)

let p_crunch = Pattern.intern "ts_crunch" ~arity:0
let p_ding = Pattern.intern "ts_ding" ~arity:0
let p_kick = Pattern.intern "ts_kick" ~arity:1

let test_interrupt_mid_method_delivery () =
  let run delivery =
    let b_time = ref 0 and a_end = ref 0 in
    let cruncher =
      Class_def.define ~name:"ts_cruncher"
        ~methods:
          [
            ( p_crunch,
              fun ctx _ ->
                for _ = 1 to 50 do
                  Ctx.charge ctx 1000
                done;
                a_end := Ctx.now ctx );
          ]
        ()
    in
    let bell =
      Class_def.define ~name:"ts_bell"
        ~methods:[ (p_ding, fun ctx _ -> b_time := Ctx.now ctx) ]
        ()
    in
    let kicker =
      Class_def.define ~name:"ts_kicker"
        ~methods:
          [
            ( p_kick,
              fun ctx msg ->
                Ctx.send ctx (Value.to_addr (Message.arg msg 0)) p_ding [] );
          ]
        ()
    in
    let machine_config = { Machine.Engine.default_config with Machine.Engine.delivery } in
    let rt_config =
      { System.default_rt_config with Kernel.quantum_instr = max_int }
    in
    let sys =
      System.boot ~machine_config ~rt_config ~nodes:2
        ~classes:[ cruncher; bell; kicker ] ()
    in
    let a = System.create_root sys ~node:1 cruncher [] in
    let b = System.create_root sys ~node:1 bell [] in
    let k = System.create_root sys ~node:0 kicker [] in
    System.send_boot sys a p_crunch [];
    System.send_boot sys k p_kick [ Value.addr b ];
    System.run sys;
    (!b_time, !a_end)
  in
  let b_poll, a_poll = run Machine.Engine.Polling in
  let b_int, a_int = run Machine.Engine.Interrupt in
  (* Polling: the bell waits for the cruncher's method to finish (the
     quantum is disabled, so no preemption point polls either). *)
  Alcotest.(check bool) "polling serves the bell after the crunch" true
    (b_poll >= a_poll);
  (* Interrupt: arrival interrupts the computation mid-method. *)
  Alcotest.(check bool) "interrupt serves the bell mid-crunch" true
    (b_int < a_int)

(* --- Errors and retirement --- *)

let p_unknown = Pattern.intern "ts_unknown" ~arity:0

let test_not_understood () =
  let cls = Class_def.define ~name:"ts_empty" ~methods:[ (p_go, fun _ _ -> ()) ] () in
  let sys = System.boot ~nodes:1 ~classes:[ cls ] () in
  let a = System.create_root sys ~node:0 cls [] in
  System.send_boot sys a p_unknown [];
  (match System.run sys with
  | () -> Alcotest.fail "expected Not_understood"
  | exception Kernel.Not_understood { cls_name; pattern } ->
      Alcotest.(check string) "class" "ts_empty" cls_name;
      Alcotest.(check string) "pattern" "ts_unknown" (Pattern.name pattern))

let p_die = Pattern.intern "ts_die" ~arity:0

let test_retire () =
  let cls =
    Class_def.define ~name:"ts_mortal"
      ~methods:[ (p_die, fun ctx _ -> Ctx.retire ctx) ]
      ()
  in
  let sys = System.boot ~nodes:1 ~classes:[ cls ] () in
  let a = System.create_root sys ~node:0 cls [] in
  Alcotest.(check bool) "alive" true (Option.is_some (System.lookup_obj sys a));
  System.send_boot sys a p_die [];
  System.run sys;
  Alcotest.(check bool) "retired" true (Option.is_none (System.lookup_obj sys a))

(* --- Optimised sends --- *)

let test_inlined_active_fallback () =
  let ran = ref 0 in
  let cls_ref = ref None in
  let cls =
    Class_def.define ~name:"ts_inl"
      ~methods:
        [
          (p_item, fun _ctx _msg -> incr ran);
          ( p_go,
            fun ctx _msg ->
              let self = Ctx.self ctx in
              (* The receiver (self) is active: inlining must fall back to
                 the queuing procedure instead of re-entering the body. *)
              Ctx.send_inlined ctx (Option.get !cls_ref) self p_item
                [ Value.int 1 ] );
        ]
      ()
  in
  cls_ref := Some cls;
  let sys = System.boot ~nodes:1 ~classes:[ cls ] () in
  let a = System.create_root sys ~node:0 cls [] in
  System.send_boot sys a p_go [ Value.int 0 ];
  System.run sys;
  Alcotest.(check int) "buffered message eventually ran" 1 !ran;
  let st = System.stats sys in
  Alcotest.(check int) "buffered, not inlined" 1
    (Simcore.Stats.get st "send.local.active");
  Alcotest.(check int) "no inlined fast path" 0
    (Simcore.Stats.get st "send.local.inlined")

let test_inlined_dormant_fast_path () =
  let ran = ref 0 in
  let cls_ref = ref None in
  let sink =
    Class_def.define ~name:"ts_inl_sink"
      ~methods:[ (p_item, fun _ctx _msg -> incr ran) ]
      ()
  in
  cls_ref := Some sink;
  let driver =
    Class_def.define ~name:"ts_inl_drv"
      ~methods:
        [
          ( p_go,
            fun ctx _msg ->
              let target = Ctx.create_local ctx sink [] in
              Ctx.send_inlined ctx sink target p_item [ Value.int 1 ];
              Ctx.send_inlined ctx sink target p_item [ Value.int 2 ] );
        ]
      ()
  in
  let sys = System.boot ~nodes:1 ~classes:[ sink; driver ] () in
  let d = System.create_root sys ~node:0 driver [] in
  System.send_boot sys d p_go [ Value.int 0 ];
  System.run sys;
  Alcotest.(check int) "both ran" 2 !ran;
  let st = System.stats sys in
  (* The first send hits the init table (lazy initialisation) and takes
     the generic path; once initialised and dormant the second is inlined. *)
  Alcotest.(check bool) "inlined fast path taken" true
    (Simcore.Stats.get st "send.local.inlined" >= 1)

let test_leaf_blocking_forbidden () =
  let cls_ref = ref None in
  let cls =
    Class_def.define ~name:"ts_leafbad"
      ~methods:
        [
          ( p_item,
            fun ctx _msg ->
              (* A "leaf" method that blocks: programming error. *)
              ignore (Ctx.wait_for ctx [ p_go ]) );
          ( p_go,
            fun ctx _msg ->
              let target = Ctx.create_local ctx (Option.get !cls_ref) [] in
              Ctx.send_leaf ctx (Option.get !cls_ref) target p_item
                [ Value.int 0 ] );
        ]
      ()
  in
  cls_ref := Some cls;
  let sys = System.boot ~nodes:1 ~classes:[ cls ] () in
  let a = System.create_root sys ~node:0 cls [] in
  System.send_boot sys a p_go [ Value.int 0 ];
  match System.run sys with
  | () -> Alcotest.fail "expected Failure"
  | exception Failure m ->
      Alcotest.(check string) "diagnostic"
        "Sched.block: a leaf-optimised method attempted to block" m

let () =
  Alcotest.run "sched"
    [
      ( "paper scenarios",
        [
          Alcotest.test_case "figure 1" `Quick test_figure1;
          Alcotest.test_case "figure 3" `Quick test_figure3;
        ] );
      ( "scheduling",
        [
          Alcotest.test_case "buffered fifo" `Quick test_buffered_fifo;
          Alcotest.test_case "preemption" `Quick test_preemption;
          Alcotest.test_case "depth limit" `Quick test_depth_limit;
          Alcotest.test_case "naive mode" `Quick test_naive_scheduling;
          Alcotest.test_case "interrupt mid-method" `Quick
            test_interrupt_mid_method_delivery;
        ] );
      ( "errors",
        [
          Alcotest.test_case "not understood" `Quick test_not_understood;
          Alcotest.test_case "retire" `Quick test_retire;
        ] );
      ( "optimised sends",
        [
          Alcotest.test_case "inlined active fallback" `Quick
            test_inlined_active_fallback;
          Alcotest.test_case "inlined dormant fast path" `Quick
            test_inlined_dormant_fast_path;
          Alcotest.test_case "leaf cannot block" `Quick
            test_leaf_blocking_forbidden;
        ] );
    ]
