(* Exact-output tests for the pretty-printers used in reports and
   debugging. *)

open Core

let s fmt v = Format.asprintf fmt v

let test_value_pp () =
  Alcotest.(check string) "unit" "()" (s "%a" Value.pp Value.unit);
  Alcotest.(check string) "bool" "true" (s "%a" Value.pp (Value.bool true));
  Alcotest.(check string) "int" "-3" (s "%a" Value.pp (Value.int (-3)));
  Alcotest.(check string) "str" "\"hi\"" (s "%a" Value.pp (Value.str "hi"));
  Alcotest.(check string) "addr" "<2:9>"
    (s "%a" Value.pp (Value.addr { Value.node = 2; slot = 9 }));
  Alcotest.(check string) "list" "[1; 2]"
    (s "%a" Value.pp (Value.list [ Value.int 1; Value.int 2 ]));
  Alcotest.(check string) "tuple" "((), \"x\")"
    (s "%a" Value.pp (Value.tuple [ Value.unit; Value.str "x" ]))

let test_pattern_pp () =
  let p = Pattern.intern "tpp_msg" ~arity:3 in
  Alcotest.(check string) "keyword/arity" "tpp_msg/3" (s "%a" Pattern.pp p)

let test_message_pp () =
  let p = Pattern.intern "tpp_m" ~arity:2 in
  let m =
    Message.make ~pattern:p
      ~args:[ Value.int 1; Value.str "a" ]
      ~reply:{ Value.node = 0; slot = 4 } ~src_node:1 ()
  in
  Alcotest.(check string) "rendering" "tpp_m(1, \"a\") -><0:4>"
    (s "%a" Message.pp m)

let test_topology_pp () =
  Alcotest.(check string) "torus" "torus 4x3 (12 nodes)"
    (s "%a" Network.Topology.pp (Network.Topology.create ~x:4 ~y:3))

let test_cost_model_pp () =
  let rendered = s "%a" Machine.Cost_model.pp Machine.Cost_model.default in
  Alcotest.(check bool) "mentions the fast path" true
    (String.length rendered > 0)

let test_am_category_names () =
  Alcotest.(check string) "obj" "object-message"
    (Machine.Am.category_name Machine.Am.Object_message);
  Alcotest.(check string) "create" "create-request"
    (Machine.Am.category_name Machine.Am.Create_request);
  Alcotest.(check string) "chunk" "chunk-reply"
    (Machine.Am.category_name Machine.Am.Chunk_reply);
  Alcotest.(check string) "service" "service"
    (Machine.Am.category_name Machine.Am.Service)

let test_vft_kind_names () =
  Alcotest.(check string) "dormant" "dormant" (Vft.kind_name Kernel.Vft_dormant);
  Alcotest.(check string) "init" "init" (Vft.kind_name Kernel.Vft_init);
  Alcotest.(check string) "waiting" "waiting"
    (Vft.kind_name (Kernel.Vft_waiting []))

let test_stats_pp () =
  let st = Simcore.Stats.create () in
  Simcore.Stats.add st "zz" 3;
  Simcore.Stats.incr st "aa";
  let rendered = s "%a" Simcore.Stats.pp st in
  (* sorted: aa before zz *)
  let idx needle =
    let rec scan i =
      if i + String.length needle > String.length rendered then -1
      else if String.sub rendered i (String.length needle) = needle then i
      else scan (i + 1)
    in
    scan 0
  in
  Alcotest.(check bool) "sorted output" true (idx "aa" >= 0 && idx "aa" < idx "zz")

let () =
  Alcotest.run "pp"
    [
      ( "printers",
        [
          Alcotest.test_case "value" `Quick test_value_pp;
          Alcotest.test_case "pattern" `Quick test_pattern_pp;
          Alcotest.test_case "message" `Quick test_message_pp;
          Alcotest.test_case "topology" `Quick test_topology_pp;
          Alcotest.test_case "cost model" `Quick test_cost_model_pp;
          Alcotest.test_case "am categories" `Quick test_am_category_names;
          Alcotest.test_case "vft kinds" `Quick test_vft_kind_names;
          Alcotest.test_case "stats" `Quick test_stats_pp;
        ] );
    ]
