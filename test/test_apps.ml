(* Tests for the application workloads: N-queens (sequential and
   parallel), the token ring, fork-join Fibonacci, and the microbench
   calibration against the paper's Table 1. *)

open Core

(* Known values: number of solutions and of search-tree nodes (valid
   partial placements) for small N. *)
let known_solutions = [ (1, 1); (2, 0); (3, 0); (4, 2); (5, 10); (6, 4); (7, 40); (8, 92); (9, 352); (10, 724) ]

let test_seq_solutions () =
  List.iter
    (fun (n, expected) ->
      let r = Apps.Nqueens_seq.solve ~n in
      Alcotest.(check int) (Printf.sprintf "solutions n=%d" n) expected
        r.Apps.Nqueens_seq.solutions)
    known_solutions

let test_seq_tree_size_n8 () =
  let r = Apps.Nqueens_seq.solve ~n:8 in
  (* The paper's Table 4 reports 2,056 object creations for N=8 — one per
     valid placement. *)
  Alcotest.(check int) "nodes = paper's creations" 2056 r.Apps.Nqueens_seq.nodes;
  Alcotest.(check bool) "work accounted" true (r.instr > 0)

let test_par_matches_seq () =
  List.iter
    (fun (n, p) ->
      let seq = Apps.Nqueens_seq.solve ~n in
      let par = Apps.Nqueens_par.run ~nodes:p ~n () in
      Alcotest.(check int)
        (Printf.sprintf "n=%d P=%d" n p)
        seq.Apps.Nqueens_seq.solutions par.Apps.Nqueens_par.solutions;
      Alcotest.(check int)
        (Printf.sprintf "objects n=%d (tree nodes + root)" n)
        (seq.nodes + 1) par.objects_created)
    [ (4, 1); (5, 2); (6, 3); (7, 16); (8, 7) ]

let test_par_message_count_formula () =
  let r = Apps.Nqueens_par.run ~nodes:4 ~n:8 () in
  (* One expand per non-root object, one ack per non-root object, plus
     the bootstrap expand: 2 * 2056 + 1. *)
  Alcotest.(check int) "message census" ((2 * 2056) + 1)
    r.Apps.Nqueens_par.messages

let test_par_deterministic () =
  let a = Apps.Nqueens_par.run ~nodes:8 ~n:7 () in
  let b = Apps.Nqueens_par.run ~nodes:8 ~n:7 () in
  Alcotest.(check int) "same elapsed" a.Apps.Nqueens_par.elapsed b.elapsed;
  Alcotest.(check int) "same messages" a.messages b.messages;
  Alcotest.(check int) "same heap" a.heap_words b.heap_words

let test_par_naive_slower () =
  let stack = Apps.Nqueens_par.run ~nodes:8 ~n:8 () in
  let naive =
    Apps.Nqueens_par.run ~rt_config:System.naive_rt_config ~nodes:8 ~n:8 ()
  in
  Alcotest.(check int) "same answer" stack.Apps.Nqueens_par.solutions
    naive.solutions;
  Alcotest.(check bool) "naive scheduling is slower" true
    (naive.elapsed > stack.elapsed)

let test_par_placements () =
  List.iter
    (fun placement ->
      let rt_config = { System.default_rt_config with Kernel.placement } in
      let r = Apps.Nqueens_par.run ~rt_config ~nodes:6 ~n:6 () in
      Alcotest.(check int) "solutions under any placement" 4
        r.Apps.Nqueens_par.solutions)
    [ Kernel.Round_robin; Kernel.Random_node; Kernel.Self_node ]

let test_par_speedup_shape () =
  (* More processors must help substantially on a big enough problem. *)
  let t1 = (Apps.Nqueens_par.run ~nodes:1 ~n:9 ()).Apps.Nqueens_par.elapsed in
  let t16 = (Apps.Nqueens_par.run ~nodes:16 ~n:9 ()).Apps.Nqueens_par.elapsed in
  Alcotest.(check bool) "16 nodes at least 5x faster than 1" true
    (t1 > 5 * t16)

let test_packed_board () =
  let cols = [ 2; 0; 3; 1 ] in
  let packed = Apps.Queens_board.pack cols in
  Alcotest.(check (list int)) "roundtrip" cols (Apps.Queens_board.unpack packed);
  Alcotest.(check int) "count" 4 (Apps.Queens_board.packed_count packed);
  for col = 0 to 5 do
    Alcotest.(check bool)
      (Printf.sprintf "safe col=%d agrees" col)
      (Apps.Queens_board.safe ~cols ~col)
      (Apps.Queens_board.safe_packed ~packed ~col)
  done

let test_ring () =
  let r = Apps.Ring.run ~nodes:8 ~laps:4 () in
  Alcotest.(check int) "hops" 32 r.Apps.Ring.hops;
  (* Steady-state per-hop latency should sit near the paper's 8.9 us. *)
  Alcotest.(check bool) "latency plausible" true
    (r.ns_per_hop > 8_000. && r.ns_per_hop < 11_000.)

let fib_expected n =
  let rec f n = if n < 2 then 1 else f (n - 1) + f (n - 2) in
  f n

let test_fib_values () =
  List.iter
    (fun n ->
      let r = Apps.Fib.run ~nodes:4 ~n () in
      Alcotest.(check int) (Printf.sprintf "fib %d" n) (fib_expected n)
        r.Apps.Fib.value)
    [ 0; 1; 2; 5; 8; 10 ]

let test_fib_blocks () =
  let r = Apps.Fib.run ~nodes:4 ~n:8 () in
  Alcotest.(check bool) "selective receptions blocked" true
    (r.Apps.Fib.blocked_waits > 0);
  Alcotest.(check bool) "objects created" true (r.objects_created > 10)

let test_sieve_known_counts () =
  (* pi(100)=25, pi(300)=62; largest primes 97 and 293. *)
  List.iter
    (fun (limit, primes, largest) ->
      let r = Apps.Sieve.run ~nodes:4 ~limit () in
      Alcotest.(check int) (Printf.sprintf "pi(%d)" limit) primes
        r.Apps.Sieve.primes;
      Alcotest.(check int) "largest" largest r.largest;
      (* one filter per prime, plus the collector *)
      Alcotest.(check int) "filters" (primes + 1) r.filters_created)
    [ (100, 25, 97); (300, 62, 293) ]

let test_sieve_placements () =
  List.iter
    (fun placement ->
      let rt_config = { System.default_rt_config with Kernel.placement } in
      let r = Apps.Sieve.run ~rt_config ~nodes:6 ~limit:120 () in
      Alcotest.(check int) "pi(120) under any placement" 30
        r.Apps.Sieve.primes)
    [ Kernel.Round_robin; Kernel.Neighbor_round_robin; Kernel.Self_node ]

let close ~tol expected actual =
  abs_float (actual -. expected) <= tol *. expected

let test_table1_calibration () =
  let m = Apps.Microbench.measure () in
  let check name expected actual =
    if not (close ~tol:0.15 expected actual) then
      Alcotest.failf "%s: expected ~%.0f ns, got %.0f ns" name expected actual
  in
  check "intra dormant" 2300. m.Apps.Microbench.intra_dormant_ns;
  check "intra active" 9600. m.intra_active_ns;
  check "intra create" 2100. m.intra_create_ns;
  check "inter latency" 8900. m.inter_latency_ns;
  (* The fully optimised send is the paper's 8-instruction best case. *)
  Alcotest.(check int) "lean send = 8 instructions" (8 * 92)
    (int_of_float m.lean_send_ns)

let test_microbench_deterministic () =
  let a = Apps.Microbench.measure () in
  let b = Apps.Microbench.measure () in
  Alcotest.(check (float 0.)) "dormant" a.Apps.Microbench.intra_dormant_ns
    b.Apps.Microbench.intra_dormant_ns;
  Alcotest.(check (float 0.)) "inter" a.inter_latency_ns b.inter_latency_ns

let test_seq_bad_n () =
  Alcotest.check_raises "n = 0 rejected"
    (Invalid_argument "Nqueens_seq.solve: n must be >= 1") (fun () ->
      ignore (Apps.Nqueens_seq.solve ~n:0))

let () =
  Alcotest.run "apps"
    [
      ( "nqueens-seq",
        [
          Alcotest.test_case "known solutions" `Quick test_seq_solutions;
          Alcotest.test_case "tree size n=8" `Quick test_seq_tree_size_n8;
          Alcotest.test_case "bad n" `Quick test_seq_bad_n;
        ] );
      ( "nqueens-par",
        [
          Alcotest.test_case "matches sequential" `Quick test_par_matches_seq;
          Alcotest.test_case "message census" `Quick
            test_par_message_count_formula;
          Alcotest.test_case "deterministic" `Quick test_par_deterministic;
          Alcotest.test_case "naive slower" `Quick test_par_naive_slower;
          Alcotest.test_case "placements" `Quick test_par_placements;
          Alcotest.test_case "speedup shape" `Slow test_par_speedup_shape;
        ] );
      ( "board",
        [ Alcotest.test_case "packed board" `Quick test_packed_board ] );
      ("ring", [ Alcotest.test_case "latency" `Quick test_ring ]);
      ( "sieve",
        [
          Alcotest.test_case "known counts" `Quick test_sieve_known_counts;
          Alcotest.test_case "placements" `Quick test_sieve_placements;
        ] );
      ( "fib",
        [
          Alcotest.test_case "values" `Quick test_fib_values;
          Alcotest.test_case "blocking" `Quick test_fib_blocks;
        ] );
      ( "calibration",
        [
          Alcotest.test_case "table 1" `Quick test_table1_calibration;
          Alcotest.test_case "deterministic" `Quick
            test_microbench_deterministic;
        ] );
    ]
