(* Tests for the binary wire codec, including the codec-checked end-to-end
   mode where every inter-node message is round-tripped. *)

open Core

let v = Alcotest.testable Value.pp Value.equal

let test_scalar_roundtrips () =
  let cases =
    [
      Value.unit;
      Value.bool true;
      Value.bool false;
      Value.int 0;
      Value.int 42;
      Value.int (-42);
      Value.int max_int;
      Value.int min_int;
      Value.float 0.;
      Value.float 3.14159;
      Value.float (-1e300);
      Value.float infinity;
      Value.str "";
      Value.str "hello world";
      Value.addr { Value.node = 511; slot = 123_456_789 };
    ]
  in
  List.iter
    (fun x ->
      Alcotest.check v
        (Format.asprintf "%a" Value.pp x)
        x
        (Codec.value_of_bytes (Codec.value_to_bytes x)))
    cases

let test_nested_roundtrip () =
  let x =
    Value.tuple
      [
        Value.list [ Value.int 1; Value.str "two"; Value.list [] ];
        Value.addr { Value.node = 3; slot = 9 };
        Value.tuple [ Value.unit; Value.bool true ];
      ]
  in
  Alcotest.check v "nested" x (Codec.value_of_bytes (Codec.value_to_bytes x))

let test_encoded_size_matches () =
  let samples =
    [
      Value.unit;
      Value.int 5;
      Value.str "abcdef";
      Value.list [ Value.int 1; Value.float 2. ];
    ]
  in
  List.iter
    (fun x ->
      Alcotest.(check int)
        (Format.asprintf "size of %a" Value.pp x)
        (Bytes.length (Codec.value_to_bytes x))
        (Codec.encoded_size x))
    samples

let test_message_roundtrip () =
  let pattern = Pattern.intern "tcodec_m" ~arity:2 in
  let m =
    Message.make ~pattern
      ~args:[ Value.int 7; Value.list [ Value.str "x" ] ]
      ~reply:{ Value.node = 2; slot = 77 } ~src_node:5 ()
  in
  let m' = Codec.decode_message (Codec.encode_message m) in
  Alcotest.(check int) "pattern survives via keyword" m.Message.pattern
    m'.Message.pattern;
  Alcotest.(check bool) "args equal" true
    (List.for_all2 Value.equal m.args m'.args);
  Alcotest.(check bool) "reply equal" true (m.reply = m'.reply);
  Alcotest.(check int) "src" m.src_node m'.src_node

let test_malformed_rejected () =
  let truncated = Bytes.sub (Codec.value_to_bytes (Value.int 5)) 0 4 in
  Alcotest.(check bool) "truncated rejected" true
    (match Codec.value_of_bytes truncated with
    | exception Failure _ -> true
    | _ -> false);
  let garbage = Bytes.of_string "\255\001\002" in
  Alcotest.(check bool) "unknown tag rejected" true
    (match Codec.value_of_bytes garbage with
    | exception Failure _ -> true
    | _ -> false);
  let padded =
    let b = Codec.value_to_bytes Value.unit in
    Bytes.cat b (Bytes.of_string "x")
  in
  Alcotest.(check bool) "trailing garbage rejected" true
    (match Codec.value_of_bytes padded with
    | exception Failure _ -> true
    | _ -> false)

(* End-to-end: run the N-queens program with every inter-node message
   round-tripped through the codec; the answer must be unchanged. *)
let test_codec_checked_run () =
  let rt_config = { Core.System.default_rt_config with Kernel.codec_check = true } in
  let r = Apps.Nqueens_par.run ~rt_config ~nodes:9 ~n:7 () in
  Alcotest.(check int) "solutions under codec check" 40
    r.Apps.Nqueens_par.solutions

let value_gen =
  let open QCheck.Gen in
  sized
    (fix (fun self size ->
         if size <= 1 then
           oneof
             [
               return Value.unit;
               map Value.bool bool;
               map Value.int int;
               map Value.float (float_bound_inclusive 1e9);
               map Value.str (string_size (int_bound 20));
               map
                 (fun (n, s) -> Value.addr { Value.node = n; slot = s })
                 (pair (int_bound 4095) (int_bound 1_000_000));
             ]
         else
           oneof
             [
               map Value.list (list_size (int_bound 5) (self (size / 2)));
               map Value.tuple (list_size (int_bound 5) (self (size / 2)));
             ]))

let prop_roundtrip =
  QCheck.Test.make ~name:"codec roundtrip is the identity" ~count:500
    (QCheck.make value_gen)
    (fun x ->
      Value.equal x (Codec.value_of_bytes (Codec.value_to_bytes x))
      && Bytes.length (Codec.value_to_bytes x) = Codec.encoded_size x)

let () =
  Alcotest.run "codec"
    [
      ( "values",
        [
          Alcotest.test_case "scalars" `Quick test_scalar_roundtrips;
          Alcotest.test_case "nested" `Quick test_nested_roundtrip;
          Alcotest.test_case "encoded size" `Quick test_encoded_size_matches;
          Alcotest.test_case "malformed" `Quick test_malformed_rejected;
        ] );
      ( "messages",
        [
          Alcotest.test_case "roundtrip" `Quick test_message_roundtrip;
          Alcotest.test_case "codec-checked N-queens" `Quick
            test_codec_checked_run;
        ] );
      ("property", [ QCheck_alcotest.to_alcotest prop_roundtrip ]);
    ]
