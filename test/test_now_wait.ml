(* Tests for now-type message passing (reply destinations) and selective
   message reception (waiting mode). *)

open Core

let p_ask = Pattern.intern "nw_ask" ~arity:1
let p_echo2 = Pattern.intern "nw_echo" ~arity:1
let p_go = Pattern.intern "nw_go" ~arity:0
let p_hint = Pattern.intern "nw_hint" ~arity:1
let p_noise = Pattern.intern "nw_noise" ~arity:1

let echo_cls () =
  Class_def.define ~name:"nw_echo_cls"
    ~methods:
      [ (p_echo2, fun ctx msg -> Ctx.reply ctx msg (Message.arg msg 0)) ]
    ()

(* --- Local now-type: with stack scheduling the reply has usually
   arrived by the time the sender checks (paper Section 4.3). --- *)

let test_now_local_immediate () =
  let echo = echo_cls () in
  let client =
    Class_def.define ~name:"nw_client" ~state:[| "r" |]
      ~init:(fun _ -> [| Value.unit |])
      ~methods:
        [
          ( p_ask,
            fun ctx msg ->
              let target = Value.to_addr (Message.arg msg 0) in
              let r = Ctx.send_now ctx target p_echo2 [ Value.int 5 ] in
              Ctx.set ctx 0 r );
        ]
      ()
  in
  let sys = System.boot ~nodes:1 ~classes:[ echo; client ] () in
  let e = System.create_root sys ~node:0 echo [] in
  let c = System.create_root sys ~node:0 client [] in
  System.send_boot sys c p_ask [ Value.addr e ];
  System.run sys;
  let st = System.stats sys in
  Alcotest.(check int) "reply was immediate" 1
    (Simcore.Stats.get st "reply.immediate");
  Alcotest.(check int) "sender never blocked" 0
    (Simcore.Stats.get st "reply.blocked");
  let obj = Option.get (System.lookup_obj sys c) in
  Alcotest.(check int) "result" 5 (Value.to_int obj.Kernel.state.(0))

(* --- Remote now-type always blocks (the reply needs a round trip). --- *)

let test_now_remote_blocks () =
  let echo = echo_cls () in
  let client =
    Class_def.define ~name:"nw_client2" ~state:[| "r" |]
      ~init:(fun _ -> [| Value.unit |])
      ~methods:
        [
          ( p_ask,
            fun ctx msg ->
              let target = Value.to_addr (Message.arg msg 0) in
              let r = Ctx.send_now ctx target p_echo2 [ Value.int 7 ] in
              Ctx.set ctx 0 r );
        ]
      ()
  in
  let sys = System.boot ~nodes:2 ~classes:[ echo; client ] () in
  let e = System.create_root sys ~node:1 echo [] in
  let c = System.create_root sys ~node:0 client [] in
  System.send_boot sys c p_ask [ Value.addr e ];
  System.run sys;
  let st = System.stats sys in
  Alcotest.(check int) "sender blocked" 1 (Simcore.Stats.get st "reply.blocked");
  let obj = Option.get (System.lookup_obj sys c) in
  Alcotest.(check int) "result" 7 (Value.to_int obj.Kernel.state.(0))

(* --- Reply destinations are first-class: the receiver may delegate the
   reply to a third object (paper Section 2.2). --- *)

let p_delegate = Pattern.intern "nw_delegate" ~arity:2

let test_reply_delegation () =
  let helper =
    Class_def.define ~name:"nw_helper"
      ~methods:
        [
          ( p_delegate,
            fun ctx msg ->
              (* arg 0: the original reply destination; arg 1: payload. *)
              let dest = Value.to_addr (Message.arg msg 0) in
              Ctx.send ctx dest Pattern.reply [ Message.arg msg 1 ] );
        ]
      ()
  in
  let helper_ref = ref Value.unit in
  let frontend =
    Class_def.define ~name:"nw_frontend"
      ~methods:
        [
          ( p_echo2,
            fun ctx msg ->
              (* Do not answer; forward the reply destination. *)
              match msg.Message.reply with
              | Some dest ->
                  Ctx.send ctx
                    (Value.to_addr !helper_ref)
                    p_delegate
                    [ Value.addr dest; Value.int 11 ]
              | None -> Alcotest.fail "expected a reply destination" );
        ]
      ()
  in
  let client =
    Class_def.define ~name:"nw_client3" ~state:[| "r" |]
      ~init:(fun _ -> [| Value.unit |])
      ~methods:
        [
          ( p_ask,
            fun ctx msg ->
              let target = Value.to_addr (Message.arg msg 0) in
              let r = Ctx.send_now ctx target p_echo2 [ Value.int 0 ] in
              Ctx.set ctx 0 r );
        ]
      ()
  in
  let sys = System.boot ~nodes:3 ~classes:[ helper; frontend; client ] () in
  let h = System.create_root sys ~node:2 helper [] in
  helper_ref := Value.addr h;
  let f = System.create_root sys ~node:1 frontend [] in
  let c = System.create_root sys ~node:0 client [] in
  System.send_boot sys c p_ask [ Value.addr f ];
  System.run sys;
  let obj = Option.get (System.lookup_obj sys c) in
  Alcotest.(check int) "reply came from the delegate" 11
    (Value.to_int obj.Kernel.state.(0))

(* --- Selective reception: an already-buffered awaited message is taken
   without blocking. --- *)

let test_wait_immediate () =
  let cls =
    Class_def.define ~name:"nw_waiter" ~state:[| "got" |]
      ~init:(fun _ -> [| Value.unit |])
      ~methods:
        [
          ( p_go,
            fun ctx _msg ->
              (* Send the hint to self first: it is buffered (self is
                 active), so the wait finds it in the queue. *)
              Ctx.send ctx (Ctx.self ctx) p_hint [ Value.int 3 ];
              let m = Ctx.wait_for ctx [ p_hint ] in
              Ctx.set ctx 0 (Message.arg m 0) );
          (p_hint, fun _ _ -> Alcotest.fail "hint must be consumed by wait");
        ]
      ()
  in
  let sys = System.boot ~nodes:1 ~classes:[ cls ] () in
  let a = System.create_root sys ~node:0 cls [] in
  System.send_boot sys a p_go [];
  System.run sys;
  let st = System.stats sys in
  Alcotest.(check int) "no block" 0 (Simcore.Stats.get st "wait.blocked");
  Alcotest.(check int) "immediate" 1 (Simcore.Stats.get st "wait.immediate");
  let obj = Option.get (System.lookup_obj sys a) in
  Alcotest.(check int) "value" 3 (Value.to_int obj.Kernel.state.(0))

(* --- Selective reception: non-awaited messages are buffered and served
   after the method completes, in arrival order. --- *)

let test_wait_buffers_unacceptable () =
  let log = ref [] in
  let cls =
    Class_def.define ~name:"nw_selective"
      ~methods:
        [
          ( p_go,
            fun ctx _msg ->
              log := "waiting" :: !log;
              let m = Ctx.wait_for ctx [ p_hint ] in
              log :=
                Printf.sprintf "hint:%d" (Value.to_int (Message.arg m 0))
                :: !log );
          ( p_noise,
            fun _ctx msg ->
              log :=
                Printf.sprintf "noise:%d" (Value.to_int (Message.arg msg 0))
                :: !log );
        ]
      ()
  in
  let sys = System.boot ~nodes:1 ~classes:[ cls ] () in
  let a = System.create_root sys ~node:0 cls [] in
  System.send_boot sys a p_go [];
  (* Two noise messages arrive while the object waits; then the hint. *)
  System.send_boot sys a p_noise [ Value.int 1 ];
  System.send_boot sys a p_noise [ Value.int 2 ];
  System.send_boot sys a p_hint [ Value.int 9 ];
  System.run sys;
  Alcotest.(check (list string))
    "hint consumed first, noise buffered then served in order"
    [ "waiting"; "hint:9"; "noise:1"; "noise:2" ]
    (List.rev !log)

(* --- Alternative semantics: discard unacceptable messages. --- *)

let test_wait_discard_semantics () =
  let noise_ran = ref 0 in
  let cls =
    Class_def.define ~name:"nw_discard" ~state:[| "got" |]
      ~init:(fun _ -> [| Value.unit |])
      ~methods:
        [
          ( p_go,
            fun ctx _msg ->
              let m = Ctx.wait_for ctx [ p_hint ] in
              Ctx.set ctx 0 (Message.arg m 0) );
          (p_noise, fun _ _ -> incr noise_ran);
        ]
      ()
  in
  let rt_config =
    { System.default_rt_config with Kernel.discard_unacceptable = true }
  in
  let sys = System.boot ~rt_config ~nodes:1 ~classes:[ cls ] () in
  let a = System.create_root sys ~node:0 cls [] in
  System.send_boot sys a p_go [];
  System.send_boot sys a p_noise [ Value.int 1 ];
  System.send_boot sys a p_hint [ Value.int 4 ];
  System.run sys;
  Alcotest.(check int) "noise discarded, never ran" 0 !noise_ran;
  Alcotest.(check int) "discarded counted" 1
    (Simcore.Stats.get (System.stats sys) "send.local.discarded");
  let obj = Option.get (System.lookup_obj sys a) in
  Alcotest.(check int) "hint received" 4 (Value.to_int obj.Kernel.state.(0))

(* --- Waiting across nodes: awaited message arrives remotely. --- *)

let test_wait_remote_restore () =
  let cls =
    Class_def.define ~name:"nw_remote_wait" ~state:[| "got" |]
      ~init:(fun _ -> [| Value.unit |])
      ~methods:
        [
          ( p_go,
            fun ctx _msg ->
              let m = Ctx.wait_for ctx [ p_hint ] in
              Ctx.set ctx 0 (Message.arg m 0) );
        ]
      ()
  in
  let pinger =
    Class_def.define ~name:"nw_pinger"
      ~methods:
        [
          ( p_ask,
            fun ctx msg ->
              let target = Value.to_addr (Message.arg msg 0) in
              Ctx.send ctx target p_hint [ Value.int 21 ] );
        ]
      ()
  in
  let sys = System.boot ~nodes:2 ~classes:[ cls; pinger ] () in
  let w = System.create_root sys ~node:0 cls [] in
  let p = System.create_root sys ~node:1 pinger [] in
  System.send_boot sys w p_go [];
  System.send_boot sys p p_ask [ Value.addr w ];
  System.run sys;
  let st = System.stats sys in
  Alcotest.(check int) "blocked once" 1 (Simcore.Stats.get st "wait.blocked");
  Alcotest.(check int) "restored by remote receipt" 1
    (Simcore.Stats.get st "recv.remote.restore");
  let obj = Option.get (System.lookup_obj sys w) in
  Alcotest.(check int) "value" 21 (Value.to_int obj.Kernel.state.(0))

(* --- Two successive waits in one method. --- *)

let test_double_wait () =
  let cls =
    Class_def.define ~name:"nw_double" ~state:[| "sum" |]
      ~init:(fun _ -> [| Value.int 0 |])
      ~methods:
        [
          ( p_go,
            fun ctx _msg ->
              let m1 = Ctx.wait_for ctx [ p_hint ] in
              let m2 = Ctx.wait_for ctx [ p_hint ] in
              Ctx.set ctx 0
                (Value.int
                   (Value.to_int (Message.arg m1 0)
                   + Value.to_int (Message.arg m2 0))) );
        ]
      ()
  in
  let sys = System.boot ~nodes:1 ~classes:[ cls ] () in
  let a = System.create_root sys ~node:0 cls [] in
  System.send_boot sys a p_go [];
  System.send_boot sys a p_hint [ Value.int 10 ];
  System.send_boot sys a p_hint [ Value.int 32 ];
  System.run sys;
  let obj = Option.get (System.lookup_obj sys a) in
  Alcotest.(check int) "both received" 42 (Value.to_int obj.Kernel.state.(0))

let () =
  Alcotest.run "now_wait"
    [
      ( "now-type",
        [
          Alcotest.test_case "local immediate" `Quick test_now_local_immediate;
          Alcotest.test_case "remote blocks" `Quick test_now_remote_blocks;
          Alcotest.test_case "reply delegation" `Quick test_reply_delegation;
        ] );
      ( "selective reception",
        [
          Alcotest.test_case "immediate from queue" `Quick test_wait_immediate;
          Alcotest.test_case "buffers unacceptable" `Quick
            test_wait_buffers_unacceptable;
          Alcotest.test_case "discard semantics" `Quick
            test_wait_discard_semantics;
          Alcotest.test_case "remote restore" `Quick test_wait_remote_restore;
          Alcotest.test_case "double wait" `Quick test_double_wait;
        ] );
    ]
