(* Unit tests for values, message patterns and messages. *)

open Core

let v = Alcotest.testable Value.pp Value.equal

let test_projections () =
  Alcotest.(check bool) "bool" true Value.(to_bool (bool true));
  Alcotest.(check int) "int" 7 Value.(to_int (int 7));
  Alcotest.(check (float 0.)) "float" 1.5 Value.(to_float (float 1.5));
  Alcotest.(check string) "str" "hi" Value.(to_str (str "hi"));
  let a = { Value.node = 2; slot = 9 } in
  Alcotest.(check bool) "addr" true (Value.to_addr (Value.addr a) = a);
  Alcotest.check v "list" (Value.list [ Value.int 1 ])
    (Value.list [ Value.int 1 ])

let test_projection_errors () =
  Alcotest.check_raises "int of bool"
    (Invalid_argument "Value: expected int, got bool") (fun () ->
      ignore (Value.to_int (Value.bool true)));
  Alcotest.check_raises "addr of list"
    (Invalid_argument "Value: expected addr, got list") (fun () ->
      ignore (Value.to_addr (Value.list [])))

let test_size_words () =
  Alcotest.(check int) "int" 1 (Value.size_words (Value.int 3));
  Alcotest.(check int) "float" 2 (Value.size_words (Value.float 3.));
  Alcotest.(check int) "addr" 2
    (Value.size_words (Value.addr { Value.node = 0; slot = 0 }));
  Alcotest.(check int) "string rounds up" (1 + 2)
    (Value.size_words (Value.str "hello"));
  Alcotest.(check int) "nested" (1 + 1 + 2)
    (Value.size_words (Value.tuple [ Value.int 1; Value.float 2. ]));
  Alcotest.(check int) "bytes" 4 (Value.size_bytes (Value.int 1))

let test_pattern_intern () =
  let p1 = Pattern.intern "tv_msg_a" ~arity:2 in
  let p2 = Pattern.intern "tv_msg_a" ~arity:2 in
  Alcotest.(check int) "idempotent" p1 p2;
  Alcotest.(check string) "name" "tv_msg_a" (Pattern.name p1);
  Alcotest.(check int) "arity" 2 (Pattern.arity p1);
  Alcotest.(check bool) "lookup" true (Pattern.lookup "tv_msg_a" = Some p1);
  Alcotest.(check bool) "lookup missing" true
    (Pattern.lookup "tv_never_interned" = None);
  Alcotest.(check bool) "ids dense" true (p1 < Pattern.count ())

let test_pattern_arity_conflict () =
  let _ = Pattern.intern "tv_conflict" ~arity:1 in
  Alcotest.check_raises "conflicting arity"
    (Invalid_argument
       "Pattern.intern: \"tv_conflict\" already interned with arity 1 (got 3)")
    (fun () -> ignore (Pattern.intern "tv_conflict" ~arity:3))

let test_message_make () =
  let p = Pattern.intern "tv_two" ~arity:2 in
  let m =
    Message.make ~pattern:p ~args:[ Value.int 1; Value.int 2 ] ~src_node:0 ()
  in
  Alcotest.check v "arg 0" (Value.int 1) (Message.arg m 0);
  Alcotest.check v "arg 1" (Value.int 2) (Message.arg m 1);
  (* pattern word + 2 args *)
  Alcotest.(check int) "size" 3 (Message.size_words m);
  let with_reply =
    Message.make ~pattern:p ~args:[ Value.int 1; Value.int 2 ]
      ~reply:{ Value.node = 0; slot = 1 } ~src_node:0 ()
  in
  Alcotest.(check int) "reply adds 2 words" 5 (Message.size_words with_reply)

let test_message_arity_mismatch () =
  let p = Pattern.intern "tv_two" ~arity:2 in
  Alcotest.check_raises "wrong arg count"
    (Invalid_argument "Message.make: pattern tv_two expects 2 args, got 1")
    (fun () ->
      ignore (Message.make ~pattern:p ~args:[ Value.int 1 ] ~src_node:0 ()))

let test_message_arg_range () =
  let p = Pattern.intern "tv_one" ~arity:1 in
  let m = Message.make ~pattern:p ~args:[ Value.int 1 ] ~src_node:0 () in
  Alcotest.check_raises "arg out of range"
    (Invalid_argument "Message.arg: index 3 out of range for tv_one")
    (fun () -> ignore (Message.arg m 3))

let test_pp_smoke () =
  (* Pretty-printers should not raise on any constructor. *)
  let all =
    [
      Value.unit;
      Value.bool false;
      Value.int 42;
      Value.float 3.14;
      Value.str "s";
      Value.addr { Value.node = 1; slot = 2 };
      Value.list [ Value.int 1; Value.int 2 ];
      Value.tuple [ Value.unit; Value.str "x" ];
    ]
  in
  List.iter (fun x -> ignore (Format.asprintf "%a" Value.pp x)) all

let () =
  Alcotest.run "values"
    [
      ( "value",
        [
          Alcotest.test_case "projections" `Quick test_projections;
          Alcotest.test_case "projection errors" `Quick test_projection_errors;
          Alcotest.test_case "size words" `Quick test_size_words;
          Alcotest.test_case "pp smoke" `Quick test_pp_smoke;
        ] );
      ( "pattern",
        [
          Alcotest.test_case "intern" `Quick test_pattern_intern;
          Alcotest.test_case "arity conflict" `Quick test_pattern_arity_conflict;
        ] );
      ( "message",
        [
          Alcotest.test_case "make+size" `Quick test_message_make;
          Alcotest.test_case "arity mismatch" `Quick test_message_arity_mismatch;
          Alcotest.test_case "arg range" `Quick test_message_arg_range;
        ] );
    ]
