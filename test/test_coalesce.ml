(* Tests for per-destination message aggregation: batch codec round
   trips, the bypass fast path's Table-1 invariance, burst batching with
   per-channel FIFO order, exactly-once delivery when a whole batch
   shares a fault fate, flush-time piggyback riders, and weight
   conservation when the distributed GC rides departing batches. *)

open Core
module Engine = Machine.Engine
module Coalesce = Machine.Coalesce
module Node = Machine.Node
module Faults = Network.Faults

type Machine.Am.payload += Seq of { k : int } | Rider of int

let coal_config faults =
  {
    Engine.default_config with
    Engine.coalesce = Some Coalesce.default_config;
    faults;
  }

(* --- batch codec ---------------------------------------------------- *)

let value_gen =
  let open QCheck.Gen in
  oneof
    [
      return Value.unit;
      map Value.bool bool;
      map Value.int small_signed_int;
      map Value.float (float_bound_inclusive 1e6);
      map Value.str (string_size ~gen:printable (int_range 0 12));
      map2
        (fun node slot -> Value.addr { Value.node; slot })
        (int_range 0 511) (int_range 0 100_000);
      map Value.list (list_size (int_range 0 3) (map Value.int small_signed_int));
    ]

let msg_gen =
  let open QCheck.Gen in
  let* kw_i = int_range 0 2 in
  let* args = list_size (int_range 0 4) value_gen in
  (* a pattern keyword is interned with one fixed arity *)
  let kw = Printf.sprintf "coal_p%d_%d" kw_i (List.length args) in
  let* src_node = int_range 0 15 in
  let* reply =
    oneof
      [
        return None;
        map2
          (fun node slot -> Some { Value.node; slot })
          (int_range 0 15) (int_range 0 999);
      ]
  in
  let* gc_refs =
    list_size (int_range 0 3)
      (let* node = int_range 0 15 in
       let* slot = int_range 0 999 in
       let* w = int_range 0 64 in
       let* backer = int_range (-1) 15 in
       return
         { Message.gr_addr = { Value.node; slot }; gr_weight = w; gr_backer = backer })
  in
  let pattern = Pattern.intern kw ~arity:(List.length args) in
  let m = Message.make ~pattern ~args ?reply ~src_node () in
  m.Message.gc_refs <- gc_refs;
  return m

let msg_equal (a : Message.t) (b : Message.t) =
  a.Message.pattern = b.Message.pattern
  && List.length a.args = List.length b.args
  && List.for_all2 Value.equal a.args b.args
  && a.reply = b.reply && a.src_node = b.src_node && a.gc_refs = b.gc_refs

let prop_batch_roundtrip =
  QCheck.Test.make ~count:200 ~name:"batch encode/decode round trip"
    (QCheck.make QCheck.Gen.(list_size (int_range 0 8) msg_gen))
    (fun ms ->
      let ms' = Codec.decode_batch (Codec.encode_batch ms) in
      List.length ms = List.length ms' && List.for_all2 msg_equal ms ms')

let prop_sized_single_pass =
  QCheck.Test.make ~count:200 ~name:"encoded_message_size is exact"
    (QCheck.make msg_gen)
    (fun m ->
      let b = Codec.encode_message m in
      (* the scratch-buffer path appends the identical encoding *)
      let buf = Buffer.create 16 in
      Buffer.add_string buf "xyz";
      Codec.encode_message_into buf m;
      Bytes.length b = Codec.encoded_message_size m
      && Buffer.contents buf = "xyz" ^ Bytes.to_string b
      && msg_equal m (Codec.decode_message b))

let test_batch_trailing_garbage () =
  let padded =
    Bytes.cat (Codec.encode_batch []) (Bytes.of_string "x")
  in
  Alcotest.(check bool) "trailing garbage rejected" true
    (match Codec.decode_batch padded with
    | exception Failure _ -> true
    | _ -> false)

(* --- bypass fast path ----------------------------------------------- *)

(* With aggregation on but traffic spaced (every app workload), the
   bypass path must keep Table 1 bit-identical to the unbatched build. *)
let test_table1_invariant () =
  let base = Apps.Microbench.measure () in
  let coal = Apps.Microbench.measure ~machine_config:(coal_config None) () in
  Alcotest.(check (float 0.))
    "inter-node latency identical" base.Apps.Microbench.inter_latency_ns
    coal.Apps.Microbench.inter_latency_ns;
  Alcotest.(check (float 0.))
    "dormant send identical" base.Apps.Microbench.intra_dormant_ns
    coal.Apps.Microbench.intra_dormant_ns

(* --- burst batching on a perfect network ---------------------------- *)

(* A gap-0 burst of 64 messages to one destination: 1 bypass single,
   then batches cut by the frame threshold and the credit window, with
   the tail leaving on the scheduler-idle flush. Delivery must be
   complete, in order, and in far fewer packets. *)
let test_burst_batches_fifo () =
  let m = Engine.create ~config:(coal_config None) ~nodes:8 () in
  let burst = 64 in
  let got = ref [] in
  let h =
    Engine.register_handler m Machine.Am.Service ~name:"seq" (fun _ _ am ->
        match am.Machine.Am.payload with
        | Seq { k } -> got := k :: !got
        | _ -> ())
  in
  let src = Engine.node m 0 in
  Engine.post m src (fun () ->
      for k = 0 to burst - 1 do
        Engine.send_am m ~src ~dst:5 ~handler:h ~size_bytes:8 (Seq { k })
      done);
  Engine.run m;
  Alcotest.(check (list int))
    "all delivered in FIFO order"
    (List.init burst (fun k -> k))
    (List.rev !got);
  Alcotest.(check bool)
    (Printf.sprintf "far fewer packets (%d)" (Engine.packets_sent m))
    true
    (Engine.packets_sent m * 2 <= burst);
  Alcotest.(check int) "nothing left buffered" 0 (Engine.coalesce_buffered m);
  let s = Option.get (Engine.coalesce_stats m) in
  Alcotest.(check bool) "batches were cut by size" true
    (s.Coalesce.s_flush_size >= 1);
  Alcotest.(check bool) "credit window engaged" true
    (s.Coalesce.s_flush_credit + s.Coalesce.s_flush_idle >= 1);
  Alcotest.(check int) "frame accounting" (burst - s.Coalesce.s_singles)
    s.Coalesce.s_frames

(* --- exactly-once FIFO when whole batches share a fault fate -------- *)

let test_exactly_once_under_faults () =
  let plan = Faults.plan ~seed:23 ~drop:0.12 ~duplicate:0.08 ~jitter_ns:1_000 () in
  let m = Engine.create ~config:(coal_config (Some plan)) ~nodes:8 () in
  let senders = 3 and dests = 2 and rounds = 4 and burst = 20 in
  let next = Hashtbl.create 16 in
  let h =
    Engine.register_handler m Machine.Am.Service ~name:"seq" (fun _ node am ->
        match am.Machine.Am.payload with
        | Seq { k } ->
            let ch = (am.Machine.Am.src, Node.id node) in
            let expect =
              Option.value (Hashtbl.find_opt next ch) ~default:0
            in
            if k <> expect then
              Alcotest.failf "channel %d->%d: got %d, expected %d"
                (fst ch) (snd ch) k expect;
            Hashtbl.replace next ch (expect + 1)
        | _ -> ())
  in
  let sent = Hashtbl.create 16 in
  for r = 0 to rounds - 1 do
    Engine.schedule_at m ~time:(r * 40_000) (fun () ->
        for s = 0 to senders - 1 do
          let src = Engine.node m s in
          Engine.post m src (fun () ->
              for d = 1 to dests do
                let dst = (s + (d * 3)) mod 8 in
                for _ = 1 to burst do
                  let ch = (s, dst) in
                  let k = Option.value (Hashtbl.find_opt sent ch) ~default:0 in
                  Hashtbl.replace sent ch (k + 1);
                  Engine.send_am m ~src ~dst ~handler:h ~size_bytes:8
                    (Seq { k })
                done
              done)
        done)
  done;
  Engine.run m;
  Hashtbl.iter
    (fun ch k ->
      Alcotest.(check int)
        (Printf.sprintf "channel %d->%d complete" (fst ch) (snd ch))
        k
        (Option.value (Hashtbl.find_opt next ch) ~default:0))
    sent;
  Alcotest.(check bool) "the plan actually fired" true
    (Engine.packets_dropped m > 0);
  Alcotest.(check int) "nothing in flight" 0 (Engine.reliable_in_flight m);
  Alcotest.(check int) "nothing buffered" 0 (Engine.coalesce_buffered m)

(* --- flush-time piggyback riders ------------------------------------ *)

(* A registered piggyback source hands control messages to departing
   batches. Riders must be delivered exactly once — on the framed path
   they enter the sequenced window like any other send. *)
let run_riders faults =
  let m = Engine.create ~config:(coal_config faults) ~nodes:4 () in
  let data = ref 0 and riders_got = ref [] in
  let h_data =
    Engine.register_handler m Machine.Am.Service ~name:"data" (fun _ _ _ ->
        incr data)
  in
  let h_rider =
    Engine.register_handler m Machine.Am.Service ~name:"rider" (fun _ _ am ->
        match am.Machine.Am.payload with
        | Rider id -> riders_got := id :: !riders_got
        | _ -> ())
  in
  let handed = ref 0 in
  Engine.set_piggyback_source m
    (Some
       (fun ~src ~dst ->
         ignore dst;
         if !handed < 5 then begin
           incr handed;
           [
             {
               Machine.Am.handler = h_rider;
               src;
               size_bytes = 8;
               payload = Rider !handed;
             };
           ]
         end
         else []));
  let src = Engine.node m 0 in
  let burst = 24 in
  for r = 0 to 2 do
    Engine.schedule_at m ~time:(r * 30_000) (fun () ->
        Engine.post m src (fun () ->
            for _ = 1 to burst do
              Engine.send_am m ~src ~dst:2 ~handler:h_data ~size_bytes:8
                (Seq { k = 0 })
            done))
  done;
  Engine.run m;
  Alcotest.(check int) "all data delivered" (3 * burst) !data;
  Alcotest.(check bool) "riders were handed out" true (!handed > 0);
  Alcotest.(check (list int))
    "each rider delivered exactly once"
    (List.init !handed (fun i -> i + 1))
    (List.sort_uniq compare !riders_got);
  Alcotest.(check int) "no rider duplicated" !handed (List.length !riders_got);
  Alcotest.(check int) "rider stat matches"
    !handed
    (Simcore.Stats.get (Engine.stats m) "coalesce.rider")

let test_riders_direct () = run_riders None

let test_riders_framed () =
  run_riders (Some (Faults.plan ~seed:3 ~drop:0.1 ~jitter_ns:500 ()))

(* --- distributed GC riding batches ---------------------------------- *)

let p_poke = Pattern.intern "coal_poke" ~arity:1
let p_churn = Pattern.intern "coal_churn" ~arity:2

let cell_cls () =
  Class_def.define ~name:"coal_cell" ~state:[| "v" |]
    ~init:(fun _ -> [| Value.int 0 |])
    ~methods:[ (p_poke, fun ctx msg -> Ctx.set ctx 0 (Message.arg msg 0)) ]
    ()

let churner_cls ~cell () =
  Class_def.define ~name:"coal_churner" ~state:[| "ref" |]
    ~init:(fun _ -> [| Value.unit |])
    ~methods:
      [
        ( p_churn,
          fun ctx msg ->
            let i = Value.to_int (Message.arg msg 0) in
            let n = Value.to_int (Message.arg msg 1) in
            if i < n then begin
              let p = Ctx.node_count ctx in
              let target = (Ctx.node_id ctx + 1 + (i mod (p - 1))) mod p in
              let a = Ctx.create_on ctx ~target cell [] in
              Ctx.send ctx a p_poke [ Value.int i ];
              (* keep only the newest: one unit of garbage per cycle *)
              Ctx.set ctx 0 (Value.Addr a);
              Ctx.send ctx (Ctx.self ctx) p_churn
                [ Value.int (i + 1); Value.int n ]
            end );
      ]
    ()

(* Churn with the collector's periodic sweep live on an aggregating
   machine (with and without faults): decrement traffic may ride
   departing batches through the piggyback hook, and the weight audit
   must still balance exactly. *)
let run_dgc_churn faults =
  let machine_config = coal_config faults in
  let cell = cell_cls () in
  let churner = churner_cls ~cell () in
  let sys =
    System.boot ~machine_config ~nodes:4 ~classes:[ cell; churner ] ()
  in
  let g = Dgc.attach ~interval_ns:150_000 sys in
  for node = 0 to 3 do
    let c = System.create_root sys ~node churner [] in
    System.send_boot sys c p_churn [ Value.int 0; Value.int 30 ]
  done;
  System.run sys;
  Dgc.settle g;
  Alcotest.(check (list string)) "weights balance" [] (Dgc.audit g);
  let report = Diagnostics.survey sys in
  if not (Diagnostics.is_clean report) then
    Format.printf "%a@." Diagnostics.pp report;
  Alcotest.(check bool) "clean quiescence" true (Diagnostics.is_clean report);
  Alcotest.(check bool) "collector reclaimed garbage" true
    (Dgc.reclaimed g > 0)

let test_dgc_rides_batches () = run_dgc_churn None

let test_dgc_rides_batches_faults () =
  run_dgc_churn (Some (Faults.plan ~seed:9 ~drop:0.05 ~duplicate:0.05 ()))

let () =
  Alcotest.run "coalesce"
    [
      ( "codec",
        [
          QCheck_alcotest.to_alcotest prop_batch_roundtrip;
          QCheck_alcotest.to_alcotest prop_sized_single_pass;
          Alcotest.test_case "batch trailing garbage" `Quick
            test_batch_trailing_garbage;
        ] );
      ( "bypass",
        [ Alcotest.test_case "Table 1 invariant" `Quick test_table1_invariant ] );
      ( "batching",
        [
          Alcotest.test_case "burst batches, FIFO" `Quick
            test_burst_batches_fifo;
          Alcotest.test_case "exactly-once under faults" `Quick
            test_exactly_once_under_faults;
        ] );
      ( "riders",
        [
          Alcotest.test_case "direct path" `Quick test_riders_direct;
          Alcotest.test_case "framed path" `Quick test_riders_framed;
        ] );
      ( "dgc",
        [
          Alcotest.test_case "audit balances" `Quick test_dgc_rides_batches;
          Alcotest.test_case "audit balances under faults" `Quick
            test_dgc_rides_batches_faults;
        ] );
    ]
