(* Tests for the crash-recovery subsystem: the persistent block store
   (allocation, LRU eviction to the cold tier, fault-back, journals),
   the engine's crash/restart mechanism (down-node semantics,
   incarnation accounting, refused work), the recovery manager's
   exactly-once guarantee across kill-and-restart, and randomized
   crash/recover schedules composed with network faults, migration and
   distributed GC. *)

module Engine = Machine.Engine
module Store = Recover.Store
module Manager = Recover.Manager
open Core

(* --- persistent store ------------------------------------------------ *)

let test_store_roundtrip () =
  let s = Store.create () in
  let b = Bytes.of_string "checkpoint-zero" in
  Store.put s ~key:"ckpt" b;
  Bytes.set b 0 'X';
  (* the store keeps its own copy *)
  (match Store.get s ~key:"ckpt" with
  | Some got -> Alcotest.(check string) "copy" "checkpoint-zero" (Bytes.to_string got)
  | None -> Alcotest.fail "record lost");
  Store.put s ~key:"ckpt" (Bytes.of_string "v2");
  (match Store.get s ~key:"ckpt" with
  | Some got -> Alcotest.(check string) "overwrite" "v2" (Bytes.to_string got)
  | None -> Alcotest.fail "record lost on overwrite");
  Alcotest.(check bool) "mem" true (Store.mem s ~key:"ckpt");
  Store.delete s ~key:"ckpt";
  Alcotest.(check bool) "deleted" false (Store.mem s ~key:"ckpt");
  Alcotest.(check bool) "get after delete" true (Store.get s ~key:"ckpt" = None)

let test_store_evict_and_fault_back () =
  (* A 4-block hot tier: three 2-block records cannot coexist, so the
     least-recently-used one is evicted and must fault back intact. *)
  let s = Store.create ~block_bytes:16 ~blocks:4 () in
  let payload tag = Bytes.of_string (String.init 20 (fun i -> Char.chr (tag + i))) in
  Store.put s ~key:"a" (payload 65);
  Store.put s ~key:"b" (payload 97);
  (* touch [a] so [b] is the LRU when [c] needs room *)
  ignore (Store.get s ~key:"a");
  Store.put s ~key:"c" (payload 48);
  Alcotest.(check bool) "b evicted" true (Store.is_cold s ~key:"b");
  Alcotest.(check bool) "a hot" false (Store.is_cold s ~key:"a");
  let st = Store.stats s in
  Alcotest.(check bool) "eviction counted" true (st.Store.s_evictions >= 1);
  (match Store.get s ~key:"b" with
  | Some got ->
      Alcotest.(check string) "fault-back intact"
        (Bytes.to_string (payload 97))
        (Bytes.to_string got)
  | None -> Alcotest.fail "evicted record lost");
  Alcotest.(check bool) "b hot again" false (Store.is_cold s ~key:"b");
  let st = Store.stats s in
  Alcotest.(check bool) "fault counted" true (st.Store.s_faults >= 1)

let test_store_oversized_rejected () =
  let s = Store.create ~block_bytes:16 ~blocks:4 () in
  match Store.put s ~key:"huge" (Bytes.create 100) with
  | () -> Alcotest.fail "oversized record accepted"
  | exception Failure _ -> ()

let test_store_journal () =
  let s = Store.create ~block_bytes:32 ~blocks:8 () in
  Store.append s ~log:"deliver" ~bytes:10;
  Store.append s ~log:"deliver" ~bytes:30;
  Store.append s ~log:"deliver" ~bytes:5;
  Alcotest.(check int) "entries" 3 (Store.log_entries s ~log:"deliver");
  Alcotest.(check int) "bytes" 45 (Store.log_bytes s ~log:"deliver");
  let used_before = (Store.stats s).Store.s_blocks_used in
  Alcotest.(check bool) "journal holds blocks" true (used_before > 0);
  Store.truncate s ~log:"deliver";
  Alcotest.(check int) "truncated entries" 0 (Store.log_entries s ~log:"deliver");
  Alcotest.(check int) "truncated bytes" 0 (Store.log_bytes s ~log:"deliver");
  Alcotest.(check int) "blocks freed" 0 ((Store.stats s).Store.s_blocks_used);
  (* journals are never evicted: filling the store with records around a
     journal must raise rather than steal its blocks *)
  Store.append s ~log:"deliver" ~bytes:200;
  match Store.put s ~key:"big" (Bytes.create 100) with
  | () -> Alcotest.fail "record displaced a journal"
  | exception Failure _ -> ()

(* --- rng checkpointing ----------------------------------------------- *)

let test_rng_state_roundtrip () =
  let r = Simcore.Rng.create ~seed:42 in
  for _ = 1 to 10 do
    ignore (Simcore.Rng.int r 1000)
  done;
  let saved = Simcore.Rng.state r in
  let tail = List.init 8 (fun _ -> Simcore.Rng.int r 1000) in
  Simcore.Rng.set_state r saved;
  let replayed = List.init 8 (fun _ -> Simcore.Rng.int r 1000) in
  Alcotest.(check (list int)) "stream rewinds" tail replayed

(* --- engine crash mechanism ------------------------------------------ *)

let faulty_machine ?(nodes = 4) ?(drop = 0.0) ~seed () =
  let plan = Network.Faults.plan ~seed ~drop ~duplicate:0.0 ~jitter_ns:500 () in
  let config = { Engine.default_config with Engine.faults = Some plan } in
  Engine.create ~config ~nodes ()

let test_engine_crash_accounting () =
  let m = faulty_machine ~seed:7 () in
  Alcotest.(check bool) "up" false (Engine.node_down m 1);
  Alcotest.(check int) "incarnation 0" 0 (Engine.node_incarnation m 1);
  Engine.crash_node m 1 ~restart_at:10_000;
  Alcotest.(check bool) "down" true (Engine.node_down m 1);
  Alcotest.(check int) "crash counted" 1 (Engine.node_crash_count m 1);
  Alcotest.(check int) "incarnation unchanged while down" 0
    (Engine.node_incarnation m 1);
  Alcotest.check_raises "double crash"
    (Invalid_argument "Engine.crash_node: node already down") (fun () ->
      Engine.crash_node m 1 ~restart_at:20_000);
  Engine.restart_node m 1;
  Alcotest.(check bool) "back up" false (Engine.node_down m 1);
  Alcotest.(check int) "new incarnation" 1 (Engine.node_incarnation m 1);
  Alcotest.check_raises "restart while up"
    (Invalid_argument "Engine.restart_node: node is not down") (fun () ->
      Engine.restart_node m 1);
  Alcotest.check_raises "restart_at in the past"
    (Invalid_argument "Engine.crash_node: restart_at must be in the future")
    (fun () -> Engine.crash_node m 2 ~restart_at:0)

let test_engine_down_node_refuses_work () =
  let m = faulty_machine ~seed:7 () in
  let ran = ref 0 in
  Engine.crash_node m 2 ~restart_at:50_000;
  Engine.post m (Engine.node m 2) (fun () -> incr ran);
  Alcotest.(check int) "refusal counted" 1
    (Simcore.Stats.get (Engine.stats m) "recover.posts_refused");
  Engine.restart_node m 2;
  Engine.run m;
  Alcotest.(check int) "refused thunk never ran" 0 !ran;
  (* a live node still takes work *)
  Engine.post m (Engine.node m 2) (fun () -> incr ran);
  Engine.run m;
  Alcotest.(check int) "post after restart runs" 1 !ran

(* --- recovery manager ------------------------------------------------ *)

type Machine.Am.payload += Tr_seq of { k : int }

(* One sender streams sequence numbers at a victim that is killed
   mid-stream; returns (out-of-order/duplicate reports, sent, delivered,
   machine, manager). *)
let crash_stream ~crashes ~bursts ~burst () =
  let nodes = 4 in
  let m = faulty_machine ~nodes ~drop:0.01 ~seed:13 () in
  let next = Array.init nodes (fun _ -> Hashtbl.create 8) in
  let bad = ref [] in
  let h =
    Engine.register_handler m Machine.Am.Service ~name:"tr-seq"
      (fun _ node am ->
        match am.Machine.Am.payload with
        | Tr_seq { k } ->
            let me = Machine.Node.id node in
            let src = am.Machine.Am.src in
            let expect =
              Option.value (Hashtbl.find_opt next.(me) src) ~default:0
            in
            if k <> expect then
              bad := Printf.sprintf "%d->%d: got %d want %d" src me k expect :: !bad;
            Hashtbl.replace next.(me) src (max (k + 1) expect)
        | _ -> ())
  in
  let app =
    {
      Manager.a_snapshot =
        (fun node ->
          let slice =
            Hashtbl.fold (fun src k acc -> (src, k) :: acc) next.(node) []
          in
          Some (Marshal.to_bytes (List.sort compare slice) []));
      a_restore =
        (fun node b ->
          Hashtbl.reset next.(node);
          List.iter
            (fun (src, k) -> Hashtbl.replace next.(node) src k)
            (Marshal.from_bytes b 0 : (int * int) list));
      a_reset = (fun node -> Hashtbl.reset next.(node));
    }
  in
  let mgr = Manager.attach m ~app ~crashes () in
  let sent = ref 0 in
  for r = 0 to bursts - 1 do
    Engine.schedule_at m ~time:(10_000 + (r * 30_000)) (fun () ->
        let src = Engine.node m 0 in
        Engine.post m src (fun () ->
            for _ = 1 to burst do
              let k = !sent in
              incr sent;
              Engine.send_am m ~src ~dst:1 ~handler:h ~size_bytes:8 (Tr_seq { k })
            done))
  done;
  Engine.run m;
  let delivered = Option.value (Hashtbl.find_opt next.(1) 0) ~default:0 in
  (!bad, !sent, delivered, m, mgr)

let test_manager_exactly_once_across_crash () =
  let crashes =
    [
      { Manager.cs_node = 1; cs_at = 30_000; cs_down_ns = 25_000; cs_jitter_ns = 0 };
    ]
  in
  let bad, sent, delivered, m, mgr =
    crash_stream ~crashes ~bursts:3 ~burst:10 ()
  in
  Alcotest.(check (list string)) "no gap, dup or reorder" [] bad;
  Alcotest.(check int) "every message delivered once" sent delivered;
  Alcotest.(check int) "restarted" 1
    (Simcore.Stats.get (Engine.stats m) "recover.restarts");
  Alcotest.(check bool) "recovery took time" true (Manager.recovery_ns mgr 1 > 0);
  Alcotest.(check (list string)) "audit clean" [] (Manager.audit mgr);
  Alcotest.(check (list string)) "quiescent audit clean" []
    (Manager.audit_quiescent mgr);
  let st = Store.stats (Manager.store mgr 1) in
  Alcotest.(check bool) "checkpoints persisted" true (st.Store.s_puts > 0)

let test_manager_attach_validation () =
  (* no fault plan: the reliable layer is not live *)
  let bare = Engine.create ~nodes:4 () in
  let app =
    {
      Manager.a_snapshot = (fun _ -> Some (Bytes.create 0));
      a_restore = (fun _ _ -> ());
      a_reset = (fun _ -> ());
    }
  in
  (match Manager.attach bare ~app ~crashes:[] () with
  | _ -> Alcotest.fail "attach accepted a machine without faults"
  | exception Invalid_argument _ -> ());
  let m = faulty_machine ~seed:3 () in
  let spec = { Manager.cs_node = 9; cs_at = 1000; cs_down_ns = 10; cs_jitter_ns = 0 } in
  (match Manager.attach m ~app ~crashes:[ spec ] () with
  | _ -> Alcotest.fail "attach accepted an out-of-range victim"
  | exception Invalid_argument _ -> ())

(* --- randomized schedules -------------------------------------------- *)

let recover_workload () =
  match Check.Workloads.find "recover" with
  | Some wl -> wl
  | None -> Alcotest.fail "recover workload not registered"

(* Random crash/recover schedules (crash count, victims, phases, down
   times, drop rate and protocol jitter all drawn from the choice
   vector): per-channel FIFO exactly-once must hold, the run must pass
   every monitor probe, and the recorded vector must replay to a
   bit-identical timeline. *)
let prop_schedules_exactly_once_and_deterministic =
  QCheck.Test.make ~count:12 ~name:"crash schedules: exactly-once + replayable"
    QCheck.(int_range 1 5_000)
    (fun seed ->
      let wl = recover_workload () in
      let o = Check.Explore.run_recorded wl ~seed in
      let clean = o.Check.Explore.o_violations = [] && o.o_crash = None in
      let rp = Check.Explore.replay wl o.Check.Explore.o_trace in
      clean && rp.Check.Explore.rp_identical
      && rp.rp_outcome.Check.Explore.o_hash = o.Check.Explore.o_hash)

(* Crash windows composed with migration and distributed GC at the
   system level: an order-sensitive stream through an object that
   migrates onto a node whose interface goes dark mid-stream, plus
   reference churn, must still produce the exact stream digest with
   conserved DGC weights once locations are re-advertised. *)
let prop_composed_with_migration_and_dgc =
  QCheck.Test.make ~count:6 ~name:"dark windows + migration + dgc conserve"
    QCheck.(pair (int_range 1 1_000) (int_range 0 4))
    (fun (seed, phase) ->
      let p_add = Pattern.intern "tr_add" ~arity:1 in
      let p_report = Pattern.intern "tr_report" ~arity:0 in
      let p_next = Pattern.intern "tr_next" ~arity:0 in
      let p_poke = Pattern.intern "tr_poke" ~arity:1 in
      let p_churn = Pattern.intern "tr_churn" ~arity:2 in
      let stream_result = ref None in
      let cell =
        Class_def.define ~name:"tr_cell" ~state:[| "hash"; "sum" |]
          ~init:(fun _ -> [| Value.int 0; Value.int 0 |])
          ~methods:
            [
              ( p_add,
                fun ctx msg ->
                  let k = Value.to_int (Message.arg msg 0) in
                  Ctx.set ctx 0
                    (Value.int ((31 * Value.to_int (Ctx.get ctx 0)) + k));
                  Ctx.set ctx 1 (Value.int (Value.to_int (Ctx.get ctx 1) + k)) );
              ( p_report,
                fun ctx _ ->
                  stream_result :=
                    Some
                      ( Value.to_int (Ctx.get ctx 0),
                        Value.to_int (Ctx.get ctx 1) ) );
            ]
          ()
      in
      let driver =
        Class_def.define ~name:"tr_driver" ~state:[| "target"; "i"; "count" |]
          ~init:(fun args ->
            match args with
            | [ target; count ] -> [| target; Value.int 1; count |]
            | _ -> invalid_arg "tr_driver")
          ~methods:
            [
              ( p_next,
                fun ctx _ ->
                  let target =
                    match Ctx.get ctx 0 with
                    | Value.Addr a -> a
                    | _ -> assert false
                  in
                  let i = Value.to_int (Ctx.get ctx 1) in
                  let count = Value.to_int (Ctx.get ctx 2) in
                  if i <= count then begin
                    Ctx.send ctx target p_add [ Value.int i ];
                    Ctx.set ctx 1 (Value.int (i + 1));
                    Ctx.send ctx (Ctx.self ctx) p_next []
                  end
                  else Ctx.send ctx target p_report [] );
            ]
          ()
      in
      let gcell =
        Class_def.define ~name:"tr_gcell" ~state:[| "v" |]
          ~init:(fun _ -> [| Value.int 0 |])
          ~methods:[ (p_poke, fun ctx msg -> Ctx.set ctx 0 (Message.arg msg 0)) ]
          ()
      in
      let churner =
        Class_def.define ~name:"tr_churner" ~state:[| "ref" |]
          ~init:(fun _ -> [| Value.unit |])
          ~methods:
            [
              ( p_churn,
                fun ctx msg ->
                  let i = Value.to_int (Message.arg msg 0) in
                  let n = Value.to_int (Message.arg msg 1) in
                  if i < n then begin
                    let p = Ctx.node_count ctx in
                    let target =
                      (Ctx.node_id ctx + 1 + (i mod (p - 1))) mod p
                    in
                    let a = Ctx.create_on ctx ~target gcell [] in
                    Ctx.send ctx a p_poke [ Value.int i ];
                    Ctx.set ctx 0 (Value.Addr a);
                    Ctx.send ctx (Ctx.self ctx) p_churn
                      [ Value.int (i + 1); Value.int n ]
                  end );
            ]
          ()
      in
      let plan =
        Network.Faults.plan ~seed ~drop:0.02 ~duplicate:0.0 ~jitter_ns:500 ()
      in
      let machine_config =
        { Engine.default_config with Engine.faults = Some plan }
      in
      let sys =
        System.boot ~machine_config ~nodes:4
          ~classes:[ cell; driver; gcell; churner ]
          ()
      in
      let machine = System.machine sys in
      let dark = 2 in
      let w =
        {
          Network.Faults.node = dark;
          from_ns = 35_000 + (5_000 * phase);
          until_ns = 75_000 + (5_000 * phase);
        }
      in
      (match Engine.faults_state machine with
      | Some f -> Network.Faults.set_crashes f [ w ]
      | None -> assert false);
      let mig = Migrate.attach sys in
      let g = Dgc.attach ~interval_ns:100_000 sys in
      let count = 24 in
      let cell_addr = System.create_root sys ~node:0 cell [] in
      let d =
        System.create_root sys ~node:1 driver
          [ Value.Addr cell_addr; Value.int count ]
      in
      Engine.schedule_at machine ~time:15_000 (fun () ->
          ignore (Migrate.move mig ~canon:cell_addr ~to_:dark));
      Engine.schedule_at machine ~time:(w.Network.Faults.until_ns + 1_000)
        (fun () -> ignore (Migrate.readvertise mig ~node:dark));
      for node = 0 to 3 do
        let c = System.create_root sys ~node churner [] in
        System.send_boot sys c p_churn [ Value.int 0; Value.int 8 ]
      done;
      System.send_boot sys d p_next [];
      System.run sys;
      Dgc.settle g;
      let want_hash, want_sum =
        List.fold_left
          (fun (h, s) k -> ((31 * h) + k, s + k))
          (0, 0)
          (List.init count (fun i -> i + 1))
      in
      let stream_ok =
        match !stream_result with
        | Some (h, s) -> h = want_hash && s = want_sum
        | None -> false
      in
      let recovery_clean =
        List.for_all
          (fun node -> Dgc.recovery_audit g ~node = [])
          [ 0; 1; 2; 3 ]
      in
      let held, limbo = Migrate.residual mig in
      stream_ok && Dgc.audit g = [] && recovery_clean && held = 0 && limbo = 0)

let () =
  Alcotest.run "recover"
    [
      ( "store",
        [
          Alcotest.test_case "put/get/delete" `Quick test_store_roundtrip;
          Alcotest.test_case "evict + fault back" `Quick
            test_store_evict_and_fault_back;
          Alcotest.test_case "oversized rejected" `Quick
            test_store_oversized_rejected;
          Alcotest.test_case "journals" `Quick test_store_journal;
        ] );
      ( "rng",
        [ Alcotest.test_case "state round trip" `Quick test_rng_state_roundtrip ]
      );
      ( "engine",
        [
          Alcotest.test_case "crash accounting" `Quick
            test_engine_crash_accounting;
          Alcotest.test_case "down node refuses work" `Quick
            test_engine_down_node_refuses_work;
        ] );
      ( "manager",
        [
          Alcotest.test_case "exactly-once across crash" `Quick
            test_manager_exactly_once_across_crash;
          Alcotest.test_case "attach validation" `Quick
            test_manager_attach_validation;
        ] );
      ( "properties",
        [
          QCheck_alcotest.to_alcotest prop_schedules_exactly_once_and_deterministic;
          QCheck_alcotest.to_alcotest prop_composed_with_migration_and_dgc;
        ] );
    ]
