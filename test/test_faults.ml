(* Tests for the fault-injection fabric and the reliable-delivery layer:
   exactly-once per-channel FIFO dispatch under drops/duplicates/jitter,
   crash-window recovery, and the bit-identical fault-free guarantee. *)

module Engine = Machine.Engine
module Node = Machine.Node
module Am = Machine.Am
module Faults = Network.Faults

type Am.payload += Marker of int

let faulty_config plan = { Engine.default_config with Engine.faults = Some plan }

let test_exactly_once_fifo () =
  (* A network this hostile loses or duplicates most packets; the reliable
     layer must still hand every channel its messages once, in order. *)
  let plan = Faults.plan ~seed:5 ~drop:0.3 ~duplicate:0.3 ~jitter_ns:5_000 () in
  let m = Engine.create ~config:(faulty_config plan) ~nodes:4 () in
  Alcotest.(check bool) "fault layer live" true (Engine.faults_active m);
  let seen = Array.make 4 [] in
  let h =
    Engine.register_handler m Am.Service ~name:"mark" (fun _ node am ->
        match am.Am.payload with
        | Marker k ->
            let d = Node.id node in
            seen.(d) <- k :: seen.(d)
        | _ -> assert false)
  in
  let n0 = Engine.node m 0 in
  for k = 1 to 40 do
    Engine.send_am m ~src:n0 ~dst:1 ~handler:h ~size_bytes:4 (Marker k);
    Engine.send_am m ~src:n0 ~dst:2 ~handler:h ~size_bytes:4 (Marker k)
  done;
  Engine.run m;
  let expect = List.init 40 (fun i -> i + 1) in
  Alcotest.(check (list int)) "dst 1: exactly-once FIFO" expect
    (List.rev seen.(1));
  Alcotest.(check (list int)) "dst 2: exactly-once FIFO" expect
    (List.rev seen.(2));
  Alcotest.(check bool) "faults actually fired" true
    (Engine.packets_dropped m > 0 && Engine.packets_duplicated m > 0);
  Alcotest.(check int) "nothing left unacknowledged" 0
    (Engine.reliable_in_flight m)

let test_zero_plan_inert () =
  (* An all-zero plan must be normalised away entirely: no reliable layer,
     and runs bit-identical to the fault-free build. *)
  let m = Engine.create ~config:(faulty_config (Faults.plan ())) ~nodes:2 () in
  Alcotest.(check bool) "zero plan leaves faults off" false
    (Engine.faults_active m);
  Alcotest.(check bool) "no reliable state" true
    (Option.is_none (Engine.reliable m));
  let base = Apps.Nqueens_par.run ~nodes:6 ~n:6 () in
  let zero =
    Apps.Nqueens_par.run
      ~machine_config:(faulty_config (Faults.plan ()))
      ~nodes:6 ~n:6 ()
  in
  Alcotest.(check bool) "bit-identical result record" true (base = zero)

let test_nqueens_under_faults () =
  (* The acceptance scenario: 5% drop + duplication + jitter on a 16-node
     8-queens run still finds all 92 solutions and quiesces cleanly. *)
  let plan =
    Faults.plan ~seed:42 ~drop:0.05 ~duplicate:0.025 ~jitter_ns:2_000 ()
  in
  let r, sys =
    Apps.Nqueens_par.run_sys ~machine_config:(faulty_config plan) ~nodes:16
      ~n:8 ()
  in
  Alcotest.(check int) "all 92 solutions" 92 r.Apps.Nqueens_par.solutions;
  let d = Core.Diagnostics.survey sys in
  Alcotest.(check bool) "clean quiescence" true (Core.Diagnostics.is_clean d);
  Alcotest.(check bool) "losses happened" true
    (d.Core.Diagnostics.packets_dropped > 0);
  match Services.Faultstats.survey sys with
  | None -> Alcotest.fail "fault statistics expected on a faulty machine"
  | Some fs ->
      Alcotest.(check bool) "retransmissions repaired the losses" true
        (fs.Services.Faultstats.total_retransmits > 0);
      Alcotest.(check int) "no message lost for good" 0
        fs.Services.Faultstats.in_flight

let test_crash_recovery () =
  (* Node 3's network interface is down for a millisecond early in the
     run; every message to or from it during the window is lost, yet
     retransmission carries the computation across the outage. *)
  let plan =
    Faults.plan ~seed:7 ~drop:0.01
      ~crashes:[ { Faults.node = 3; from_ns = 100_000; until_ns = 1_100_000 } ]
      ()
  in
  let r, sys =
    Apps.Nqueens_par.run_sys ~machine_config:(faulty_config plan) ~nodes:8 ~n:7
      ()
  in
  let base = Apps.Nqueens_par.run ~nodes:8 ~n:7 () in
  Alcotest.(check int) "solutions survive the outage"
    base.Apps.Nqueens_par.solutions r.Apps.Nqueens_par.solutions;
  Alcotest.(check bool) "clean quiescence" true
    (Core.Diagnostics.is_clean (Core.Diagnostics.survey sys));
  Alcotest.(check bool) "the outage cost time" true (r.elapsed > base.elapsed)

let test_faulty_determinism () =
  let run seed =
    let plan = Faults.plan ~seed ~drop:0.08 ~duplicate:0.04 ~jitter_ns:3_000 () in
    let r =
      Apps.Nqueens_par.run ~machine_config:(faulty_config plan) ~nodes:9 ~n:6 ()
    in
    (r.Apps.Nqueens_par.elapsed, r.messages, r.solutions)
  in
  Alcotest.(check (triple int int int)) "same seed, same virtual history"
    (run 3) (run 3);
  let _, _, s1 = run 3 and _, _, s2 = run 99 in
  Alcotest.(check int) "different seed, same answer" s1 s2

let () =
  Alcotest.run "faults"
    [
      ( "reliable",
        [
          Alcotest.test_case "exactly-once FIFO" `Quick test_exactly_once_fifo;
          Alcotest.test_case "zero plan inert" `Quick test_zero_plan_inert;
        ] );
      ( "degradation",
        [
          Alcotest.test_case "n-queens under faults" `Quick
            test_nqueens_under_faults;
          Alcotest.test_case "crash recovery" `Quick test_crash_recovery;
          Alcotest.test_case "determinism" `Quick test_faulty_determinism;
        ] );
    ]
