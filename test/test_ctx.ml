(* API-surface tests for the method execution context (Ctx). *)

open Core

let p_go = Pattern.intern "tcx_go" ~arity:0
let _p_named = Pattern.intern "tcx_named" ~arity:0
let p_probe = Pattern.intern "tcx_probe" ~arity:0
let p_kw = Pattern.intern "tcx_kw" ~arity:1

let run_in_method ?(nodes = 2) ~state ~init body =
  let cls =
    Class_def.define ~name:"tcx_host" ~state ~init
      ~methods:[ (p_go, fun ctx msg -> body ctx msg) ]
      ()
  in
  let sys = System.boot ~nodes ~classes:[ cls ] () in
  let a = System.create_root sys ~node:0 cls [] in
  System.send_boot sys a p_go [];
  System.run sys;
  (sys, a)

let test_named_state_access () =
  let observed = ref None in
  let _ =
    run_in_method ~state:[| "alpha"; "beta" |]
      ~init:(fun _ -> [| Value.int 1; Value.int 2 |])
      (fun ctx _ ->
        Ctx.set_named ctx "beta" (Value.int 20);
        observed :=
          Some
            ( Value.to_int (Ctx.get_named ctx "alpha"),
              Value.to_int (Ctx.get_named ctx "beta") ))
  in
  Alcotest.(check (option (pair int int))) "named access" (Some (1, 20)) !observed

let test_named_state_unknown () =
  let failure = ref None in
  let _ =
    run_in_method ~state:[| "x" |]
      ~init:(fun _ -> [| Value.unit |])
      (fun ctx _ ->
        match Ctx.get_named ctx "zzz" with
        | _ -> ()
        | exception Invalid_argument m -> failure := Some m)
  in
  Alcotest.(check (option string)) "diagnostic"
    (Some "Ctx: no state variable \"zzz\"") !failure

let test_identity () =
  let seen = ref None in
  let sys, a =
    run_in_method ~state:[||]
      ~init:(fun _ -> [||])
      (fun ctx _ ->
        seen := Some (Ctx.self ctx, Ctx.node_id ctx, Ctx.node_count ctx))
  in
  ignore sys;
  match !seen with
  | Some (self, node_id, node_count) ->
      Alcotest.(check bool) "self" true (self = a);
      Alcotest.(check int) "node" 0 node_id;
      Alcotest.(check int) "count" 2 node_count
  | None -> Alcotest.fail "method never ran"

let test_reply_without_destination_is_counted () =
  let sys, _ =
    run_in_method ~state:[||]
      ~init:(fun _ -> [||])
      (fun ctx msg -> Ctx.reply ctx msg (Value.int 1))
  in
  Alcotest.(check int) "counted, not crashed" 1
    (Simcore.Stats.get (System.stats sys) "reply.no_dest")

let test_send_kw_interns () =
  let got = ref 0 in
  let sink =
    Class_def.define ~name:"tcx_sink"
      ~methods:[ (p_kw, fun _ msg -> got := Value.to_int (Message.arg msg 0)) ]
      ()
  in
  let driver =
    Class_def.define ~name:"tcx_driver"
      ~methods:
        [
          ( p_go,
            fun ctx _ ->
              let s = Ctx.create_local ctx sink [] in
              Ctx.send_kw ctx s "tcx_kw" [ Value.int 9 ] );
        ]
      ()
  in
  let sys = System.boot ~nodes:1 ~classes:[ sink; driver ] () in
  let d = System.create_root sys ~node:0 driver [] in
  System.send_boot sys d p_go [];
  System.run sys;
  Alcotest.(check int) "keyword send delivered" 9 !got

let test_wait_for_kw_unknown () =
  let failure = ref None in
  let _ =
    run_in_method ~state:[||]
      ~init:(fun _ -> [||])
      (fun ctx _ ->
        match Ctx.wait_for_kw ctx [ "tcx_never_interned_kw" ] with
        | _ -> ()
        | exception Invalid_argument m -> failure := Some m)
  in
  Alcotest.(check bool) "rejects unknown keyword" true (Option.is_some !failure)

let test_state_access_before_init () =
  (* Reaching into state before lazy initialisation is a runtime error —
     but it cannot happen from a method (init runs first); assert the
     guard through the raw representation. *)
  let cls =
    Class_def.define ~name:"tcx_lazy" ~state:[| "x" |]
      ~init:(fun _ -> [| Value.int 5 |])
      ~methods:[ (p_probe, fun _ _ -> ()) ]
      ()
  in
  let sys = System.boot ~nodes:1 ~classes:[ cls ] () in
  let a = System.create_root sys ~node:0 cls [] in
  let obj = Option.get (System.lookup_obj sys a) in
  Alcotest.(check bool) "no state box yet" true (Array.length obj.Kernel.state = 0);
  System.send_boot sys a p_probe [];
  System.run sys;
  Alcotest.(check int) "state box after first message" 5
    (Value.to_int obj.Kernel.state.(0))

let test_charge_advances_clock () =
  let sys, _ =
    run_in_method ~state:[||]
      ~init:(fun _ -> [||])
      (fun ctx _ -> Ctx.charge ctx 10_000)
  in
  Alcotest.(check bool) "10k instructions = 920 us or more" true
    (System.elapsed sys >= 10_000 * 92)

let test_named_pattern_helpers () =
  let p = Pattern.intern "tcx_helper" ~arity:2 in
  Alcotest.(check string) "name" "tcx_helper" (Pattern.name p);
  let cls =
    Class_def.define ~name:"tcx_pat"
      ~methods:[ (p, fun _ _ -> ()) ]
      ()
  in
  Alcotest.(check int) "pattern_of finds the method" p
    (Class_def.pattern_of cls "tcx_helper");
  Alcotest.check_raises "pattern_of rejects unknowns"
    (Invalid_argument "Class tcx_pat has no method nope") (fun () ->
      ignore (Class_def.pattern_of cls "nope"))

let () =
  Alcotest.run "ctx"
    [
      ( "state",
        [
          Alcotest.test_case "named access" `Quick test_named_state_access;
          Alcotest.test_case "unknown name" `Quick test_named_state_unknown;
          Alcotest.test_case "lazy init boundary" `Quick
            test_state_access_before_init;
        ] );
      ( "identity",
        [ Alcotest.test_case "self/node/count" `Quick test_identity ] );
      ( "messaging",
        [
          Alcotest.test_case "reply without dest" `Quick
            test_reply_without_destination_is_counted;
          Alcotest.test_case "send_kw" `Quick test_send_kw_interns;
          Alcotest.test_case "wait_for_kw unknown" `Quick
            test_wait_for_kw_unknown;
        ] );
      ( "misc",
        [
          Alcotest.test_case "charge" `Quick test_charge_advances_clock;
          Alcotest.test_case "pattern helpers" `Quick
            test_named_pattern_helpers;
        ] );
    ]
