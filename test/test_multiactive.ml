(* Tests for multiactive objects: compatibility-group declaration and
   validation, per-group FIFO admission under forced deferral, overlap
   of compatible groups (and only those — the conflict counter and the
   quiescence probe watch for serialization violations), the test-only
   corruption hook that manufactures such violations, drain-before-
   freeze when a multiactive object migrates mid-activation, and a
   qcheck sweep of recorded schedules over the multiactive workload. *)

open Core
module Engine = Machine.Engine
module Kv = Apps.Kv_store
module Loadgen = Traffic.Loadgen
module Explore = Check.Explore
module Workloads = Check.Workloads

let to_alcotest = QCheck_alcotest.to_alcotest

let expect_invalid what f =
  match f () with
  | _ -> Alcotest.failf "%s: expected Invalid_argument" what
  | exception Invalid_argument _ -> ()

(* --- declaration validation and introspection ---------------------- *)

let test_declare_validation () =
  let mk name =
    Class_def.define ~name
      ~methods:
        [
          (Pattern.intern (name ^ "_x") ~arity:0, fun _ _ -> ());
          (Pattern.intern (name ^ "_y") ~arity:0, fun _ _ -> ());
        ]
      ()
  in
  expect_invalid "budget must be positive" (fun () ->
      Multiactive.declare (mk "mav0") ~budget:0
        ~groups:[ ("g", [ "mav0_x" ]) ]
        ());
  expect_invalid "unknown method name" (fun () ->
      Multiactive.declare (mk "mav1") ~budget:2 ~groups:[ ("g", [ "nope" ]) ] ());
  expect_invalid "method in two groups" (fun () ->
      Multiactive.declare (mk "mav2") ~budget:2
        ~groups:[ ("g", [ "mav2_x" ]); ("h", [ "mav2_x" ]) ]
        ());
  expect_invalid "empty group" (fun () ->
      Multiactive.declare (mk "mav3") ~budget:2 ~groups:[ ("g", []) ] ());
  expect_invalid "compatible may only name declared groups" (fun () ->
      Multiactive.declare (mk "mav4") ~budget:2
        ~compatible:[ ("g", "mav4_y") ]
        ~groups:[ ("g", [ "mav4_x" ]) ]
        ());
  let cls = mk "mav5" in
  Alcotest.(check bool)
    "not multiactive before declare" false
    (Multiactive.is_multiactive cls);
  Multiactive.declare cls ~budget:3 ~groups:[ ("g", [ "mav5_x" ]) ] ();
  Alcotest.(check bool)
    "multiactive after declare" true
    (Multiactive.is_multiactive cls);
  let spec = Option.get (Multiactive.spec cls) in
  Alcotest.(check int) "budget recorded" 3 spec.Kernel.ma_budget;
  Alcotest.(check (list string))
    "declared group, then implicit singleton for the undeclared method"
    [ "g"; "mav5_y" ]
    (Array.to_list spec.Kernel.ma_group_names)

(* --- FIFO per group under forced deferral --------------------------- *)

(* A decision source that answers "defer" to every admission question
   sends every message through the group queues; the pump (which never
   consults that decision point — deferral must not be able to starve
   the object) then dispatches strictly oldest-first, so the start
   order is the send order, per group and globally. *)

let p_fifo_a = Pattern.intern "ma_fifo_a" ~arity:1
let p_fifo_b = Pattern.intern "ma_fifo_b" ~arity:1

let test_fifo_per_group () =
  let starts = ref [] in
  let record tag msg = starts := (tag, Value.to_int (Message.arg msg 0)) :: !starts in
  let cls =
    Class_def.define ~name:"ma_fifo_rec"
      ~methods:
        [
          (p_fifo_a, fun _ msg -> record "a" msg);
          (p_fifo_b, fun _ msg -> record "b" msg);
        ]
      ()
  in
  Multiactive.declare cls ~budget:2
    ~groups:[ ("a", [ "ma_fifo_a" ]); ("b", [ "ma_fifo_b" ]) ]
    ();
  let sys = System.boot ~nodes:1 ~classes:[ cls ] () in
  let o = System.create_root sys ~node:0 cls [] in
  (* The very first invocation runs through the init table, not the
     admission table; warm the object up so the measured stream is all
     admission-controlled. *)
  System.send_boot sys o p_fifo_a [ Value.int (-1) ];
  System.run sys;
  starts := [];
  Engine.set_decision_source (System.machine sys)
    (Some (fun tag _bound -> if String.equal tag "ma.admit.defer" then 1 else 0));
  let sent = List.init 10 (fun i -> ((if i mod 3 = 0 then "b" else "a"), i)) in
  List.iter
    (fun (tag, i) ->
      System.send_boot sys o
        (if String.equal tag "b" then p_fifo_b else p_fifo_a)
        [ Value.int i ])
    sent;
  System.run sys;
  let st = System.stats sys in
  Alcotest.(check int) "every message took the queue path" 10
    (Simcore.Stats.get st "ma.queued");
  Alcotest.(check (list (pair string int)))
    "starts follow send order exactly" sent (List.rev !starts);
  Alcotest.(check (list string))
    "probe clean" []
    (Check.Probes.multiactive sys ())

(* --- compatible groups overlap; everything else stays serial -------- *)

let p_cg_a = Pattern.intern "ma_cg_a" ~arity:1
let p_cg_b = Pattern.intern "ma_cg_b" ~arity:1
let p_cg_echo = Pattern.intern "ma_cg_echo" ~arity:1

(* Two methods in distinct but declared-compatible groups, each blocking
   on a remote round trip: sent back to back they must be in flight
   together (peak overlap 2) without tripping the conflict counter. *)
let test_compatible_groups_overlap () =
  let echo =
    Class_def.define ~name:"ma_cg_echo_cls"
      ~methods:[ (p_cg_echo, fun ctx msg -> Ctx.reply ctx msg (Message.arg msg 0)) ]
      ()
  in
  let worker =
    Class_def.define ~name:"ma_cg_worker" ~state:[| "echo" |]
      ~init:(fun args -> [| List.hd args |])
      ~methods:
        [
          ( p_cg_a,
            fun ctx msg ->
              ignore
                (Ctx.send_now ctx
                   (Value.to_addr (Ctx.get ctx 0))
                   p_cg_echo
                   [ Message.arg msg 0 ]) );
          ( p_cg_b,
            fun ctx msg ->
              ignore
                (Ctx.send_now ctx
                   (Value.to_addr (Ctx.get ctx 0))
                   p_cg_echo
                   [ Message.arg msg 0 ]) );
        ]
      ()
  in
  Multiactive.declare worker ~budget:4
    ~compatible:[ ("ga", "gb") ]
    ~groups:[ ("ga", [ "ma_cg_a" ]); ("gb", [ "ma_cg_b" ]) ]
    ();
  let sys = System.boot ~nodes:2 ~classes:[ echo; worker ] () in
  let e = System.create_root sys ~node:1 echo [] in
  let w = System.create_root sys ~node:0 worker [ Value.addr e ] in
  (* Initialization runs through the init table; warm up first so both
     measured sends face the admission table. *)
  System.send_boot sys w p_cg_a [ Value.int 0 ];
  System.run sys;
  System.send_boot sys w p_cg_a [ Value.int 1 ];
  System.send_boot sys w p_cg_b [ Value.int 2 ];
  System.run sys;
  let obj = Option.get (System.lookup_obj sys w) in
  Alcotest.(check int)
    "both activations were in flight together" 2
    (Multiactive.peak_overlap obj);
  let st = System.stats sys in
  Alcotest.(check bool) "overlap counted" true (Simcore.Stats.get st "ma.overlap" > 0);
  Alcotest.(check int) "no conflicts" 0 (Simcore.Stats.get st "ma.conflict");
  Alcotest.(check (list string))
    "probe clean" []
    (Check.Probes.multiactive sys ())

(* --- the annotated KV tier under read-heavy skewed load ------------- *)

let run_ma_kv ?(force = false) () =
  let kv =
    Kv.create ~shards:2 ~keys_per_shard:8 ~mget_fan:2 ~multiactive:true
      ~ma_budget:4 ()
  in
  let sys = System.boot ~nodes:2 ~classes:(Kv.classes kv) () in
  Kv.spawn kv sys;
  let lg =
    Loadgen.launch
      {
        Loadgen.default_config with
        seed = 5;
        rate_rps = 600_000;
        requests = 400;
        mix = { Loadgen.m_get = 80; m_put = 14; m_cas = 4; m_mget = 2 };
        key_dist = Loadgen.Zipf 1.2;
      }
      sys kv
  in
  if force then Multiactive.unsafe_force_admit := true;
  Fun.protect
    ~finally:(fun () -> Multiactive.unsafe_force_admit := false)
    (fun () -> System.run sys);
  (kv, sys, lg)

let test_kv_overlap_conflict_free () =
  let kv, sys, lg = run_ma_kv () in
  let st = System.stats sys in
  Alcotest.(check int) "all completed" 400 (Kv.completed kv);
  Alcotest.(check bool)
    "reads overlapped on the hot shard" true
    (Simcore.Stats.get st "ma.overlap" > 0);
  Alcotest.(check bool)
    "writes were made to queue" true
    (Simcore.Stats.get st "ma.queued" > 0);
  Alcotest.(check int) "no conflicts" 0 (Simcore.Stats.get st "ma.conflict");
  Alcotest.(check (list string)) "audit clean" [] (Loadgen.audit lg sys);
  Alcotest.(check (list string))
    "probe clean" []
    (Check.Probes.multiactive sys ())

(* The corruption hook bypasses compatibility on admission, so the same
   run now starts activations while incompatible ones hold the object —
   the conflict counter and the quiescence probe must both notice. *)
let test_corruption_hook_detected () =
  let _kv, sys, _lg = run_ma_kv ~force:true () in
  let st = System.stats sys in
  Alcotest.(check bool)
    "conflicts manufactured" true
    (Simcore.Stats.get st "ma.conflict" > 0);
  Alcotest.(check bool)
    "probe reports the violation" true
    (Check.Probes.multiactive sys () <> [])

(* --- selective reception is incompatible with multiactivity --------- *)

let p_wf_go = Pattern.intern "ma_wf_go" ~arity:0
let p_wf_hint = Pattern.intern "ma_wf_hint" ~arity:1

let test_wait_for_rejected () =
  let cls =
    Class_def.define ~name:"ma_waiter"
      ~methods:[ (p_wf_go, fun ctx _ -> ignore (Ctx.wait_for ctx [ p_wf_hint ])) ]
      ()
  in
  Multiactive.declare cls ~budget:2 ~groups:[ ("g", [ "ma_wf_go" ]) ] ();
  let sys = System.boot ~nodes:1 ~classes:[ cls ] () in
  let o = System.create_root sys ~node:0 cls [] in
  System.send_boot sys o p_wf_go [];
  expect_invalid "wait_for inside a multiactive activation" (fun () ->
      System.run sys)

(* --- drain before freeze -------------------------------------------- *)

let p_dr_work = Pattern.intern "ma_dr_work" ~arity:1
let p_dr_echo = Pattern.intern "ma_dr_echo" ~arity:1

(* The live (non-stub) record of [canon], wherever migration put it. *)
let live_record sys ~nodes canon =
  let rec scan node =
    if node >= nodes then Alcotest.fail "live record not found"
    else
      let rt = System.rt sys node in
      let found =
        Hashtbl.fold
          (fun _ (o : Kernel.obj) acc ->
            match acc with
            | Some _ -> acc
            | None ->
                if
                  o.Kernel.self = canon
                  &&
                  match o.Kernel.vftp.Kernel.vft_kind with
                  | Kernel.Vft_forward _ -> false
                  | _ -> true
                then Some o
                else None)
          rt.Kernel.objects None
      in
      match found with Some o -> o | None -> scan (node + 1)
  in
  scan 0

(* A move requested while activations are mid-flight (blocked on a
   remote round trip) must be refused on the spot, the object put in
   draining mode, and the move retried — with the still-queued group
   backlog travelling along — once the running set empties. *)
let test_drain_before_freeze () =
  let replies = ref [] in
  let move_result = ref None in
  let mig = ref None in
  let worker_addr = ref None in
  let echo =
    Class_def.define ~name:"ma_dr_echo_cls"
      ~methods:
        [
          ( p_dr_echo,
            fun ctx msg ->
              (* Round trip of the first measured message (arg 0): the
                 worker is provably mid-activation — blocked on this
                 very reply — so request the move now and remember the
                 immediate answer. *)
              (match (!move_result, Value.to_int (Message.arg msg 0)) with
              | None, 0 ->
                  move_result :=
                    Some
                      (Migrate.move (Option.get !mig)
                         ~canon:(Option.get !worker_addr)
                         ~to_:2)
              | _ -> ());
              Ctx.reply ctx msg (Message.arg msg 0) );
        ]
      ()
  in
  let worker =
    Class_def.define ~name:"ma_dr_worker" ~state:[| "echo" |]
      ~init:(fun args -> [| List.hd args |])
      ~methods:
        [
          ( p_dr_work,
            fun ctx msg ->
              let r =
                Ctx.send_now ctx
                  (Value.to_addr (Ctx.get ctx 0))
                  p_dr_echo
                  [ Message.arg msg 0 ]
              in
              replies := Value.to_int r :: !replies );
        ]
      ()
  in
  Multiactive.declare worker ~budget:2 ~groups:[ ("work", [ "ma_dr_work" ]) ] ();
  let sys = System.boot ~nodes:3 ~classes:[ echo; worker ] () in
  let m = Migrate.attach sys in
  mig := Some m;
  let e = System.create_root sys ~node:1 echo [] in
  let w = System.create_root sys ~node:0 worker [ Value.addr e ] in
  worker_addr := Some w;
  (* Warm up through the init window so the admission table is live. *)
  System.send_boot sys w p_dr_work [ Value.int 100 ];
  System.run sys;
  replies := [];
  for i = 0 to 5 do
    System.send_boot sys w p_dr_work [ Value.int i ]
  done;
  System.run sys;
  Alcotest.(check (option bool))
    "move refused while activations were in flight" (Some false) !move_result;
  Alcotest.(check int) "the drained object did move" 1 (Migrate.migrations m);
  Alcotest.(check int) "now hosted on node 2" 2 (Migrate.locate m w);
  Alcotest.(check (list int))
    "every message survived the move, exactly once"
    [ 0; 1; 2; 3; 4; 5 ]
    (List.sort compare !replies);
  let obj = live_record sys ~nodes:3 w in
  Alcotest.(check bool) "drain flag cleared" false (Multiactive.draining obj);
  Alcotest.(check int) "no queued leftovers" 0 (Multiactive.queue_depth obj);
  Alcotest.(check (list string))
    "probe clean" []
    (Check.Probes.multiactive sys ())

(* --- schedule sweep -------------------------------------------------- *)

let multiactive_wl = Option.get (Workloads.find "multiactive")

let prop_swept_schedules =
  QCheck.Test.make
    ~name:"swept schedules: incompatible activations never overlap" ~count:12
    QCheck.(int_bound 1_000_000)
    (fun seed ->
      let o = Explore.run_recorded multiactive_wl ~seed in
      not (Explore.failed o))

let () =
  Alcotest.run "multiactive"
    [
      ( "declare",
        [
          Alcotest.test_case "validation and introspection" `Quick
            test_declare_validation;
        ] );
      ( "admission",
        [
          Alcotest.test_case "fifo per group under forced deferral" `Quick
            test_fifo_per_group;
          Alcotest.test_case "compatible groups overlap" `Quick
            test_compatible_groups_overlap;
          Alcotest.test_case "read-heavy kv overlaps without conflicts" `Quick
            test_kv_overlap_conflict_free;
          Alcotest.test_case "corruption hook is caught" `Quick
            test_corruption_hook_detected;
          Alcotest.test_case "selective reception rejected" `Quick
            test_wait_for_rejected;
        ] );
      ( "migration",
        [
          Alcotest.test_case "drain before freeze" `Quick
            test_drain_before_freeze;
        ] );
      ("schedules", [ to_alcotest prop_swept_schedules ]);
    ]
