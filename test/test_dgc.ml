(* Tests for the distributed garbage collector: weighted reference
   counting (grants, splits, indirections, debits), batched decrements,
   reclamation + chunk-stock recycling, reclamation of migrated objects
   and their forwarding chains, and safety/liveness under random fault
   plans and migration schedules. *)

open Core
module Engine = Machine.Engine
module Faults = Network.Faults

let p_poke = Pattern.intern "dgc_poke" ~arity:1
let p_ask = Pattern.intern "dgc_ask" ~arity:0
let p_spawn = Pattern.intern "dgc_spawn" ~arity:1
let p_adopt = Pattern.intern "dgc_adopt" ~arity:1
let p_share = Pattern.intern "dgc_share" ~arity:1
let p_drop = Pattern.intern "dgc_drop" ~arity:0
let p_churn = Pattern.intern "dgc_churn" ~arity:2
let p_probe = Pattern.intern "dgc_probe" ~arity:1

(* A value cell: poke stores, ask replies. *)
let cell_cls () =
  Class_def.define ~name:"dgc_cell" ~state:[| "v" |]
    ~init:(fun _ -> [| Value.int 0 |])
    ~methods:
      [
        (p_poke, fun ctx msg -> Ctx.set ctx 0 (Message.arg msg 0));
        (p_ask, fun ctx msg -> Ctx.reply ctx msg (Ctx.get ctx 0));
      ]
    ()

(* A holder keeps a list of cell addresses in a state variable — the
   references the collector must respect. [spawn target] creates a cell
   remotely and adopts it; [share other] re-exports the newest ref;
   [drop] forgets everything; [churn i n] spawns one cell per slice,
   keeping only the newest (constant live set, linear garbage). *)
let holder_cls ~cell () =
  Class_def.define ~name:"dgc_holder" ~state:[| "refs" |]
    ~init:(fun _ -> [| Value.List [] |])
    ~methods:
      [
        ( p_spawn,
          fun ctx msg ->
            let target = Value.to_int (Message.arg msg 0) in
            let a = Ctx.create_on ctx ~target cell [] in
            Ctx.send ctx a p_poke [ Value.int 42 ];
            match Ctx.get ctx 0 with
            | Value.List vs -> Ctx.set ctx 0 (Value.List (Value.Addr a :: vs))
            | _ -> assert false );
        ( p_adopt,
          fun ctx msg ->
            match Ctx.get ctx 0 with
            | Value.List vs ->
                Ctx.set ctx 0 (Value.List (Message.arg msg 0 :: vs))
            | _ -> assert false );
        ( p_share,
          fun ctx msg ->
            match (Ctx.get ctx 0, Message.arg msg 0) with
            | Value.List (first :: _), Value.Addr other ->
                Ctx.send ctx other p_adopt [ first ]
            | _ -> () );
        (p_drop, fun ctx _ -> Ctx.set ctx 0 (Value.List []));
        ( p_churn,
          fun ctx msg ->
            let i = Value.to_int (Message.arg msg 0) in
            let n = Value.to_int (Message.arg msg 1) in
            if i < n then begin
              let target = i mod Ctx.node_count ctx in
              let a = Ctx.create_on ctx ~target cell [] in
              Ctx.send ctx a p_poke [ Value.int i ];
              Ctx.set ctx 0 (Value.List [ Value.Addr a ]);
              Ctx.send ctx (Ctx.self ctx) p_churn
                [ Value.int (i + 1); Value.int n ]
            end );
        ( p_probe,
          fun ctx msg ->
            (* now-type round-trip to a remote cell: exercises exported
               reply destinations *)
            match Message.arg msg 0 with
            | Value.Addr a -> ignore (Ctx.send_now ctx a p_ask [])
            | _ -> assert false );
      ]
    ()

(* Records carrying this canonical address, of any kind (live record,
   immigrant, forwarding stub). Full reclamation means zero. *)
let records_of sys canon =
  let n = System.node_count sys in
  let count = ref 0 in
  for node = 0 to n - 1 do
    Hashtbl.iter
      (fun _ (o : Kernel.obj) -> if o.Kernel.self = canon then incr count)
      (System.rt sys node).Kernel.objects
  done;
  !count

(* The live (non-forwarding) record, wherever migration put it. *)
let live_record sys canon =
  let n = System.node_count sys in
  let found = ref None in
  for node = 0 to n - 1 do
    Hashtbl.iter
      (fun _ (o : Kernel.obj) ->
        if
          o.Kernel.self = canon
          && (match o.Kernel.vftp.Kernel.vft_kind with
             | Kernel.Vft_forward _ -> false
             | _ -> true)
          && !found = None
        then found := Some o)
      (System.rt sys node).Kernel.objects
  done;
  !found

let holder_refs sys h =
  match System.lookup_obj sys h with
  | Some o when Array.length o.Kernel.state > 0 -> (
      match o.Kernel.state.(0) with
      | Value.List vs ->
          List.filter_map
            (function Value.Addr a -> Some a | _ -> None)
            vs
      | _ -> [])
  | Some _ | None -> []

let check_audit g = Alcotest.(check (list string)) "weights balance" [] (Dgc.audit g)

let swept g sys =
  Alcotest.(check bool)
    "sweeps actually ran" true
    (Simcore.Stats.get (System.stats sys) "dgc.sweeps" > 0);
  ignore g

(* --- basic safety and reclamation --------------------------------- *)

let test_remote_ref_keeps_alive () =
  let cell = cell_cls () in
  let holder = holder_cls ~cell () in
  let sys = System.boot ~nodes:2 ~classes:[ cell; holder ] () in
  let g = Dgc.attach sys in
  let h = System.create_root sys ~node:0 holder [] in
  System.send_boot sys h p_spawn [ Value.int 1 ];
  System.run sys;
  Dgc.settle g;
  swept g sys;
  let canon =
    match holder_refs sys h with [ a ] -> a | _ -> Alcotest.fail "one ref"
  in
  Alcotest.(check int) "cell owned by node 1" 1 canon.Value.node;
  Alcotest.(check bool) "cell survives sweeps" true (live_record sys canon <> None);
  Alcotest.(check bool)
    "owner scion positive" true
    (Dgc.scion_weight g ~node:1 ~slot:canon.Value.slot > 0);
  check_audit g;
  (* the surviving reference still works *)
  System.send_boot sys canon p_poke [ Value.int 7 ];
  System.run sys;
  match live_record sys canon with
  | Some o -> Alcotest.(check int) "poke landed" 7 (Value.to_int o.Kernel.state.(0))
  | None -> Alcotest.fail "record vanished"

let test_drop_reclaims_and_restocks () =
  let cell = cell_cls () in
  let holder = holder_cls ~cell () in
  let sys = System.boot ~nodes:2 ~classes:[ cell; holder ] () in
  let g = Dgc.attach sys in
  let h = System.create_root sys ~node:0 holder [] in
  System.send_boot sys h p_spawn [ Value.int 1 ];
  System.run sys;
  let canon =
    match holder_refs sys h with [ a ] -> a | _ -> Alcotest.fail "one ref"
  in
  System.send_boot sys h p_drop [];
  System.run sys;
  Dgc.settle g;
  Alcotest.(check int) "record gone everywhere" 0 (records_of sys canon);
  Alcotest.(check bool) "reclaimed counted" true (Dgc.reclaimed g >= 1);
  Alcotest.(check bool) "slot restocked" true (Dgc.restocked g >= 1);
  Alcotest.(check int) "scion drained" 0
    (Dgc.scion_weight g ~node:1 ~slot:canon.Value.slot);
  Alcotest.(check bool) "stub gone" false (Dgc.has_stub g ~node:0 ~canon);
  check_audit g;
  (* the freed slot feeds the next allocation on its node: creation is
     served from the recycled pool (GC as the stock refill path) *)
  let before = (System.rt sys 1).Kernel.slots_recycled in
  System.send_boot sys h p_spawn [ Value.int 1 ];
  System.run sys;
  Alcotest.(check bool)
    "new creation drew on recycled slots" true
    ((System.rt sys 1).Kernel.slots_recycled > before)

let test_weight_split_and_indirection () =
  let cell = cell_cls () in
  let holder = holder_cls ~cell () in
  let sys = System.boot ~nodes:4 ~classes:[ cell; holder ] () in
  (* minimum grant: the second re-export cannot split and must go
     through an indirection entry *)
  let g = Dgc.attach ~grant_weight:2 sys in
  let h0 = System.create_root sys ~node:0 holder [] in
  let h1 = System.create_root sys ~node:1 holder [] in
  let h2 = System.create_root sys ~node:2 holder [] in
  System.send_boot sys h0 p_spawn [ Value.int 3 ];
  System.run sys;
  System.send_boot sys h0 p_share [ Value.Addr h1 ];
  System.run sys;
  System.send_boot sys h1 p_share [ Value.Addr h2 ];
  System.run sys;
  Dgc.settle g;
  let stats = System.stats sys in
  Alcotest.(check bool) "weight was split" true
    (Simcore.Stats.get stats "dgc.splits" > 0);
  Alcotest.(check bool) "indirection was needed" true
    (Simcore.Stats.get stats "dgc.indirections" > 0);
  check_audit g;
  let canon =
    match holder_refs sys h0 with [ a ] -> a | _ -> Alcotest.fail "one ref"
  in
  Alcotest.(check bool) "cell alive with three holders" true
    (live_record sys canon <> None);
  (* all three drop; the indirection chain unwinds backer by backer *)
  List.iter
    (fun h ->
      System.send_boot sys h p_drop [];
      System.run sys)
    [ h0; h1; h2 ];
  Dgc.settle g;
  Alcotest.(check int) "record gone everywhere" 0 (records_of sys canon);
  Alcotest.(check bool) "stubs freed on all holders" true
    (Dgc.stubs_freed g >= 3);
  check_audit g

let test_exported_reply_slot_recycled () =
  let cell = cell_cls () in
  let holder = holder_cls ~cell () in
  let sys = System.boot ~nodes:2 ~classes:[ cell; holder ] () in
  let g = Dgc.attach sys in
  let h = System.create_root sys ~node:0 holder [] in
  System.send_boot sys h p_spawn [ Value.int 1 ];
  System.run sys;
  let canon =
    match holder_refs sys h with [ a ] -> a | _ -> Alcotest.fail "one ref"
  in
  (* a now-type round trip exports the reply destination to node 1; the
     reply object is disposed on reply, so only its drained scion keeps
     the slot out of circulation until the cleanup pass runs *)
  System.send_boot sys h p_probe [ Value.Addr canon ];
  System.run sys;
  Dgc.settle g;
  Alcotest.(check bool) "reply slot restocked" true (Dgc.restocked g >= 1);
  check_audit g

(* --- local sweep vs migration artefacts (regression) --------------- *)

let test_local_sweep_spares_migration_stub () =
  let cell = cell_cls () in
  let holder = holder_cls ~cell () in
  let sys = System.boot ~nodes:3 ~classes:[ cell; holder ] () in
  let m = Migrate.attach sys in
  let h = System.create_root sys ~node:0 holder [] in
  System.send_boot sys h p_spawn [ Value.int 1 ];
  System.run sys;
  let canon =
    match holder_refs sys h with [ a ] -> a | _ -> Alcotest.fail "one ref"
  in
  Alcotest.(check bool) "moved" true (Migrate.move m ~canon ~to_:2);
  System.run sys;
  Alcotest.(check int) "stub on node 1" 1 (Migrate.stub_count m ~node:1);
  (* a purely local sweep on the stub's node must not free it *)
  (match Services.Local_gc.sweep sys ~node:1 with
  | Services.Local_gc.Swept _ -> ()
  | Services.Local_gc.Skipped _ -> Alcotest.fail "sweep refused to run");
  Alcotest.(check int) "stub survives local sweep" 1
    (Migrate.stub_count m ~node:1);
  (* and it still forwards *)
  System.send_boot sys canon p_poke [ Value.int 9 ];
  System.run sys;
  match live_record sys canon with
  | Some o -> Alcotest.(check int) "poke forwarded" 9 (Value.to_int o.Kernel.state.(0))
  | None -> Alcotest.fail "record vanished"

let test_migrated_then_dropped_fully_reclaimed () =
  let cell = cell_cls () in
  let holder = holder_cls ~cell () in
  let sys = System.boot ~nodes:3 ~classes:[ cell; holder ] () in
  let m = Migrate.attach sys in
  let g = Dgc.attach ~migrate:m sys in
  let h = System.create_root sys ~node:0 holder [] in
  System.send_boot sys h p_spawn [ Value.int 1 ];
  System.run sys;
  let canon =
    match holder_refs sys h with [ a ] -> a | _ -> Alcotest.fail "one ref"
  in
  Alcotest.(check bool) "moved away from home" true
    (Migrate.move m ~canon ~to_:2);
  System.run sys;
  System.send_boot sys h p_drop [];
  System.run sys;
  Dgc.settle g;
  Alcotest.(check bool) "recall-home was issued" true (Dgc.recalls g >= 1);
  Alcotest.(check int) "no trace of the object anywhere" 0
    (records_of sys canon);
  Alcotest.(check bool) "forwarding stubs dismantled" true (Dgc.unstubs g >= 1);
  for node = 0 to 2 do
    Alcotest.(check int)
      (Printf.sprintf "no stubs on node %d" node)
      0
      (Migrate.stub_count m ~node)
  done;
  (match Services.Migstats.survey sys with
  | Some r ->
      Array.iter
        (fun (row : Services.Migstats.node_row) ->
          Alcotest.(check int)
            (Printf.sprintf "migstats sees no stub on node %d" row.node)
            0 row.Services.Migstats.stubs)
        r.Services.Migstats.per_node
  | None -> Alcotest.fail "migration happened, report expected");
  check_audit g

(* --- churn with the periodic timer --------------------------------- *)

let test_timer_driven_churn () =
  let cell = cell_cls () in
  let holder = holder_cls ~cell () in
  let sys = System.boot ~nodes:4 ~classes:[ cell; holder ] () in
  let g = Dgc.attach ~interval_ns:200_000 sys in
  let h = System.create_root sys ~node:0 holder [] in
  System.send_boot sys h p_churn [ Value.int 0; Value.int 120 ];
  System.run sys;
  (* the periodic rounds collected garbage while the run was going *)
  Alcotest.(check bool) "timer sweeps ran" true
    (Simcore.Stats.get (System.stats sys) "dgc.sweeps" > 0);
  Alcotest.(check bool) "most dead cells collected during the run" true
    (Dgc.reclaimed g > 60);
  Dgc.settle g;
  Alcotest.(check bool) "all but the kept cell reclaimed" true
    (Dgc.reclaimed g >= 119);
  check_audit g;
  match holder_refs sys h with
  | [ kept ] ->
      Alcotest.(check bool) "kept cell survives" true
        (live_record sys kept <> None)
  | _ -> Alcotest.fail "holder keeps exactly one ref"

(* --- properties: safety and liveness under faults + migration ------ *)

let run_random ~p ~cells ~salt ~fault_kind ~moves =
  (* qcheck shrinkers can wander below the generator's range *)
  let p = max 2 p and cells = max 1 cells in
  let faults =
    match fault_kind with
    | 0 -> None
    | 1 -> Some (Faults.plan ~seed:salt ~drop:0.1 ~jitter_ns:2_000 ())
    | _ ->
        Some
          (Faults.plan ~seed:salt ~drop:0.05 ~duplicate:0.1 ~jitter_ns:1_000 ())
  in
  let machine_config =
    { Engine.default_config with Engine.faults } in
  let cell = cell_cls () in
  let holder = holder_cls ~cell () in
  let sys = System.boot ~machine_config ~nodes:p ~classes:[ cell; holder ] () in
  let m = Migrate.attach sys in
  let g = Dgc.attach ~migrate:m ~grant_weight:4 sys in
  let holders =
    Array.init p (fun node -> System.create_root sys ~node holder [])
  in
  let rng = Random.State.make [| salt; p; cells |] in
  for i = 0 to cells - 1 do
    let owner = holders.(i mod p) in
    System.send_boot sys owner p_spawn
      [ Value.int (Random.State.int rng p) ];
    System.run sys
  done;
  (* random migration schedule over every cell *)
  let all_refs =
    Array.to_list holders |> List.concat_map (fun h -> holder_refs sys h)
  in
  for _ = 1 to moves do
    match all_refs with
    | [] -> ()
    | _ ->
        let a = List.nth all_refs (Random.State.int rng (List.length all_refs)) in
        ignore (Migrate.move m ~canon:a ~to_:(Random.State.int rng p));
        System.run sys
  done;
  (* odd holders drop everything; even holders keep their refs *)
  let kept = ref [] and dropped = ref [] in
  Array.iteri
    (fun i h ->
      if i mod 2 = 1 then begin
        dropped := holder_refs sys h @ !dropped;
        System.send_boot sys h p_drop [];
        System.run sys
      end
      else kept := holder_refs sys h @ !kept)
    holders;
  Dgc.settle g;
  (sys, g, m, !kept, !dropped)

let prop_safety =
  QCheck.Test.make ~count:15 ~name:"live remote refs never reclaimed"
    QCheck.(
      quad (int_range 2 4) (int_range 3 8) (int_range 0 1000) (int_range 0 2))
    (fun (p, cells, salt, fault_kind) ->
      let sys, g, _, kept, _ =
        run_random ~p ~cells ~salt ~fault_kind ~moves:(cells / 2)
      in
      List.for_all (fun a -> live_record sys a <> None) kept
      && Simcore.Stats.get (System.stats sys) "dgc.sweeps" > 0
      && Dgc.audit g = [])

let prop_liveness =
  QCheck.Test.make ~count:15 ~name:"fully dropped refs eventually reclaimed"
    QCheck.(
      quad (int_range 2 4) (int_range 3 8) (int_range 0 1000) (int_range 0 2))
    (fun (p, cells, salt, fault_kind) ->
      let sys, g, _, _, dropped =
        run_random ~p ~cells ~salt ~fault_kind ~moves:(cells / 2)
      in
      ignore g;
      List.for_all (fun a -> records_of sys a = 0) dropped)

let () =
  Alcotest.run "dgc"
    [
      ( "basics",
        [
          Alcotest.test_case "remote ref keeps alive" `Quick
            test_remote_ref_keeps_alive;
          Alcotest.test_case "drop reclaims and restocks" `Quick
            test_drop_reclaims_and_restocks;
          Alcotest.test_case "weight split and indirection" `Quick
            test_weight_split_and_indirection;
          Alcotest.test_case "exported reply slot recycled" `Quick
            test_exported_reply_slot_recycled;
        ] );
      ( "migration",
        [
          Alcotest.test_case "local sweep spares stubs" `Quick
            test_local_sweep_spares_migration_stub;
          Alcotest.test_case "migrated then dropped" `Quick
            test_migrated_then_dropped_fully_reclaimed;
        ] );
      ( "churn",
        [ Alcotest.test_case "timer-driven churn" `Quick test_timer_driven_churn ]
      );
      ( "properties",
        [
          QCheck_alcotest.to_alcotest prop_safety;
          QCheck_alcotest.to_alcotest prop_liveness;
        ] );
    ]
