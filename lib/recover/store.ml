(* Simulated per-node stable store: a block-allocated heap with a free
   list, a cold tier, and append-only journal regions.

   The hot tier is a fixed number of fixed-size blocks handed out from a
   free list. Named records (checkpoints) occupy whole blocks; when an
   allocation cannot be satisfied, the least-recently-used record is
   evicted to the cold tier — its blocks return to the free list, its
   bytes survive — and faulted back (re-allocated) on the next access.
   Journal regions also consume blocks as they grow but are never
   evicted: a journal that cannot be read back synchronously is not a
   journal.

   Recency is a logical tick (bumped per access), not wall-clock time:
   the store must behave identically under deterministic replay. All
   sizes are accounted in bytes and blocks so recovery reports can cite
   checkpoint volume and journal growth; the payloads themselves live in
   the OCaml heap. *)

type record = {
  mutable r_data : bytes;
  mutable r_blocks : int list;  (** hot blocks backing it; [[]] when cold *)
  mutable r_cold : bool;
  mutable r_tick : int;  (** last access, logical *)
}

type log = {
  mutable l_entries : int;
  mutable l_bytes : int;
  mutable l_blocks : int list;
}

type t = {
  block_bytes : int;
  capacity : int;  (** hot blocks total *)
  mutable free : int list;
  mutable free_count : int;
  records : (string, record) Hashtbl.t;
  logs : (string, log) Hashtbl.t;
  mutable tick : int;
  (* counters *)
  mutable puts : int;
  mutable put_bytes : int;
  mutable gets : int;
  mutable evictions : int;
  mutable evicted_bytes : int;
  mutable faults : int;
  mutable faulted_bytes : int;
  mutable appends : int;
  mutable append_bytes : int;
  mutable truncates : int;
  mutable blocks_high : int;  (** high-water mark of blocks in use *)
}

type stats = {
  s_puts : int;
  s_put_bytes : int;
  s_gets : int;
  s_evictions : int;
  s_evicted_bytes : int;
  s_faults : int;
  s_faulted_bytes : int;
  s_appends : int;
  s_append_bytes : int;
  s_truncates : int;
  s_blocks_used : int;
  s_blocks_free : int;
  s_blocks_high : int;
  s_cold_records : int;
  s_cold_bytes : int;
}

let create ?(block_bytes = 256) ?(blocks = 4096) () =
  if block_bytes < 16 then invalid_arg "Store.create: block_bytes must be >= 16";
  if blocks < 4 then invalid_arg "Store.create: need at least 4 blocks";
  let free = List.init blocks (fun i -> i) in
  {
    block_bytes;
    capacity = blocks;
    free;
    free_count = blocks;
    records = Hashtbl.create 16;
    logs = Hashtbl.create 8;
    tick = 0;
    puts = 0;
    put_bytes = 0;
    gets = 0;
    evictions = 0;
    evicted_bytes = 0;
    faults = 0;
    faulted_bytes = 0;
    appends = 0;
    append_bytes = 0;
    truncates = 0;
    blocks_high = 0;
  }

let blocks_for t bytes =
  if bytes = 0 then 1 else (bytes + t.block_bytes - 1) / t.block_bytes

let blocks_used t = t.capacity - t.free_count

let note_high t =
  let used = blocks_used t in
  if used > t.blocks_high then t.blocks_high <- used

let free_blocks t bs =
  t.free <- List.rev_append bs t.free;
  t.free_count <- t.free_count + List.length bs

(* Evict the least-recently-used hot record: blocks back to the free
   list, bytes demoted to the cold tier. *)
let evict_one t =
  let victim =
    Hashtbl.fold
      (fun _ r acc ->
        if r.r_cold then acc
        else
          match acc with
          | Some v when v.r_tick <= r.r_tick -> acc
          | _ -> Some r)
      t.records None
  in
  match victim with
  | None -> false
  | Some r ->
      free_blocks t r.r_blocks;
      r.r_blocks <- [];
      r.r_cold <- true;
      t.evictions <- t.evictions + 1;
      t.evicted_bytes <- t.evicted_bytes + Bytes.length r.r_data;
      true

let rec alloc t n =
  if n > t.capacity then failwith "Store: record larger than the stable store";
  if t.free_count >= n then begin
    let rec take k acc rest =
      if k = 0 then (acc, rest)
      else
        match rest with
        | b :: tl -> take (k - 1) (b :: acc) tl
        | [] -> assert false
    in
    let taken, rest = take n [] t.free in
    t.free <- rest;
    t.free_count <- t.free_count - n;
    note_high t;
    taken
  end
  else if evict_one t then alloc t n
  else failwith "Store: stable store exhausted (nothing left to evict)"

let touch t r =
  t.tick <- t.tick + 1;
  r.r_tick <- t.tick

let put t ~key data =
  let r =
    match Hashtbl.find_opt t.records key with
    | Some r ->
        free_blocks t r.r_blocks;
        r.r_blocks <- [];
        r
    | None ->
        let r = { r_data = Bytes.empty; r_blocks = []; r_cold = false; r_tick = 0 } in
        Hashtbl.add t.records key r;
        r
  in
  r.r_data <- Bytes.copy data;
  r.r_cold <- false;
  r.r_blocks <- alloc t (blocks_for t (Bytes.length data));
  touch t r;
  t.puts <- t.puts + 1;
  t.put_bytes <- t.put_bytes + Bytes.length data

let get t ~key =
  match Hashtbl.find_opt t.records key with
  | None -> None
  | Some r ->
      t.gets <- t.gets + 1;
      if r.r_cold then begin
        (* Fault the record back into the hot tier. *)
        r.r_blocks <- alloc t (blocks_for t (Bytes.length r.r_data));
        r.r_cold <- false;
        t.faults <- t.faults + 1;
        t.faulted_bytes <- t.faulted_bytes + Bytes.length r.r_data
      end;
      touch t r;
      Some (Bytes.copy r.r_data)

let mem t ~key = Hashtbl.mem t.records key

let is_cold t ~key =
  match Hashtbl.find_opt t.records key with
  | Some r -> r.r_cold
  | None -> false

let delete t ~key =
  match Hashtbl.find_opt t.records key with
  | None -> ()
  | Some r ->
      free_blocks t r.r_blocks;
      Hashtbl.remove t.records key

let log_of t name =
  match Hashtbl.find_opt t.logs name with
  | Some l -> l
  | None ->
      let l = { l_entries = 0; l_bytes = 0; l_blocks = [] } in
      Hashtbl.add t.logs name l;
      l

let append t ~log ~bytes =
  if bytes < 0 then invalid_arg "Store.append: negative size";
  let l = log_of t log in
  let before = blocks_for t l.l_bytes in
  l.l_entries <- l.l_entries + 1;
  l.l_bytes <- l.l_bytes + bytes;
  let after = blocks_for t l.l_bytes in
  if after > before then l.l_blocks <- List.rev_append (alloc t (after - before)) l.l_blocks;
  t.appends <- t.appends + 1;
  t.append_bytes <- t.append_bytes + bytes

let log_entries t ~log =
  match Hashtbl.find_opt t.logs log with Some l -> l.l_entries | None -> 0

let log_bytes t ~log =
  match Hashtbl.find_opt t.logs log with Some l -> l.l_bytes | None -> 0

let truncate t ~log =
  match Hashtbl.find_opt t.logs log with
  | None -> ()
  | Some l ->
      free_blocks t l.l_blocks;
      l.l_blocks <- [];
      l.l_entries <- 0;
      l.l_bytes <- 0;
      t.truncates <- t.truncates + 1

let stats t =
  let cold_records, cold_bytes =
    Hashtbl.fold
      (fun _ r (n, b) ->
        if r.r_cold then (n + 1, b + Bytes.length r.r_data) else (n, b))
      t.records (0, 0)
  in
  {
    s_puts = t.puts;
    s_put_bytes = t.put_bytes;
    s_gets = t.gets;
    s_evictions = t.evictions;
    s_evicted_bytes = t.evicted_bytes;
    s_faults = t.faults;
    s_faulted_bytes = t.faulted_bytes;
    s_appends = t.appends;
    s_append_bytes = t.append_bytes;
    s_truncates = t.truncates;
    s_blocks_used = blocks_used t;
    s_blocks_free = t.free_count;
    s_blocks_high = t.blocks_high;
    s_cold_records = cold_records;
    s_cold_bytes = cold_bytes;
  }

let pp_stats ppf s =
  Format.fprintf ppf
    "store{puts=%d (%dB) gets=%d evict=%d fault=%d appends=%d (%dB) blocks=%d/%d hi=%d cold=%d}"
    s.s_puts s.s_put_bytes s.s_gets s.s_evictions s.s_faults s.s_appends
    s.s_append_bytes s.s_blocks_used
    (s.s_blocks_used + s.s_blocks_free)
    s.s_blocks_high s.s_cold_records
