(* Per-node crash recovery over the engine's crash mechanism.

   The model is pessimistic logging against a simulated stable store
   (one {!Store} per node):

   - The reliable layer's journal hooks mirror every sequence-state
     mutation (send, queue, ack, in-order release) into the owning
     node's journal synchronously. The persisted view therefore always
     equals the crash-time view, which is why a crash does NOT reset the
     reliable channel state: the in-memory tables double as the
     restored-from-journal state, and the journal itself is pure
     byte-accounting plus audit cursors.

   - Every inbox delivery is logged (the delivery log), and every
     dispatch records its position (the dispatch log). A checkpoint —
     taken per node on a staggered timer, at an application safe point —
     stores the app snapshot and prunes both logs.

   - A crash therefore loses exactly: app state since the checkpoint,
     delivered-but-undispatched inbox contents, queued thunks, and open
     aggregation buffers (already sequenced into the reliable layer, so
     retransmission re-sends them).

   Recovery, at the scheduled restart instant: restore the snapshot
   (faulting it from the cold tier if evicted), re-run the dispatch log
   in recorded order with ALL sends from the node suppressed (each
   original send is already in the journaled reliable state, or in the
   delivery log for loopbacks — re-emitting would duplicate), rebuild
   the inbox from the undispatched delivery-log entries at their
   original arrival times, and restart the node as a new incarnation.
   Replay work is charged to the node clock, so recovery has a
   measurable simulated wall-clock cost.

   Crash instants come from the crash specs re-timed through engine
   decision points ("recover.crash.jitter" / "recover.restart.jitter"),
   and the resulting windows are installed into the live fault state
   before any traffic — so a recorded schedule replays the crash
   bit-identically, and in-flight packets of the crashed node are
   dropped deterministically by the fabric.

   Application contract: handlers do all the work (no [Engine.post]
   from handlers — run-queue thunks are not logged); bootstrap thunks
   only send. [a_snapshot] returns [None] when the node is not at a
   safe point (typically: run queue non-empty), and the checkpoint
   timer simply retries next period. *)

module Engine = Machine.Engine
module Node = Machine.Node
module Am = Machine.Am
module Reliable = Machine.Reliable

type app = {
  a_snapshot : int -> bytes option;
  a_restore : int -> bytes -> unit;
  a_reset : int -> unit;
}

type crash_spec = {
  cs_node : int;
  cs_at : Simcore.Time.t;
  cs_down_ns : int;
  cs_jitter_ns : int;
}

type config = {
  checkpoint_every_ns : int;
  restore_fixed_ns : int;  (** fixed restart cost (reboot, store open) *)
  restore_ns_per_byte : int;  (** checkpoint read-back bandwidth *)
  store_block_bytes : int;
  store_blocks : int;
}

let default_config =
  {
    checkpoint_every_ns = 200_000;
    restore_fixed_ns = 20_000;
    restore_ns_per_byte = 2;
    store_block_bytes = 256;
    store_blocks = 4096;
  }

(* One delivery-log entry: a message that reached the node's inbox. *)
type dentry = { de_am : Am.t; de_arrival : Simcore.Time.t }

type nstate = {
  store : Store.t;
  pending : dentry Queue.t;  (** delivered, not yet dispatched *)
  mutable done_log : dentry list;  (** dispatched since ckpt, newest first *)
  mutable replaying : bool;
  mutable has_ckpt : bool;
  mutable ckpt_cursors : (int, int) Hashtbl.t;  (** src -> released cursor *)
  cursors : (int, int) Hashtbl.t;  (** live journal released cursors *)
  mutable pending_restart : bool;
  mutable recoveries_ns : int;  (** total simulated recovery wall-clock *)
  mutable dirty : bool;  (** state changed since the last snapshot *)
  mutable ckpt_armed : bool;  (** a checkpoint timer is in the queue *)
}

type t = {
  eng : Engine.t;
  app : app;
  cfg : config;
  ns : nstate array;
  c_crashes : Simcore.Stats.cell;
  c_restarts : Simcore.Stats.cell;
  c_ckpts : Simcore.Stats.cell;
  c_ckpt_bytes : Simcore.Stats.cell;
  c_ckpt_deferred : Simcore.Stats.cell;
  c_replayed : Simcore.Stats.cell;
  c_recovery_ns : Simcore.Stats.cell;
  c_suppressed : Simcore.Stats.cell;
  c_unlogged : Simcore.Stats.cell;
  c_inbox_rebuilt : Simcore.Stats.cell;
}

let store t i = t.ns.(i).store
let recovery_ns t i = t.ns.(i).recoveries_ns

(* ~16 B of log metadata per delivery-log entry, 8 per cursor record. *)
let dentry_bytes (am : Am.t) = am.Am.size_bytes + 16
let cursor_bytes = 8

(* --- checkpointing --- *)

(* Returns whether a snapshot was actually taken (the application may
   refuse when the node is not at a safe point). *)
let checkpoint t i =
  let ns = t.ns.(i) in
  match t.app.a_snapshot i with
  | None ->
      Simcore.Stats.bump t.c_ckpt_deferred;
      false
  | Some img ->
      Store.put ns.store ~key:"ckpt" img;
      ns.has_ckpt <- true;
      ns.ckpt_cursors <- Hashtbl.copy ns.cursors;
      ns.done_log <- [];
      (* The snapshot subsumes everything dispatched and every journal
         entry; only the still-pending deliveries must stay logged. *)
      Store.truncate ns.store ~log:"dispatch";
      Store.truncate ns.store ~log:"journal";
      Store.truncate ns.store ~log:"delivery";
      Queue.iter
        (fun de ->
          Store.append ns.store ~log:"delivery" ~bytes:(dentry_bytes de.de_am))
        ns.pending;
      Simcore.Stats.bump t.c_ckpts;
      Simcore.Stats.bump_n t.c_ckpt_bytes (Bytes.length img);
      true

(* --- the engine hooks --- *)

(* Arm a checkpoint for node [i] at [at] (plus a node-keyed stagger
   jitter) unless one is already pending. The timer is a node-owned
   event, so a parallel run executes it on the owning domain; [at] must
   be count-invariant (an arrival stamp or the node's own clock — never
   the engine cursor, which is domain-local between events). *)
let rec arm_ckpt t i ~at =
  let ns = t.ns.(i) in
  if not ns.ckpt_armed then begin
    ns.ckpt_armed <- true;
    let jitter =
      Engine.decide_on t.eng ~node:i "recover.ckpt.stagger"
        (1 + (t.cfg.checkpoint_every_ns / 4))
    in
    Engine.schedule_on t.eng ~node:i ~time:(at + jitter) (ckpt_tick t i)
  end

(* Checkpoints are activity-driven: a delivery or dispatch marks the
   node dirty and arms a timer one period out, so safe-points align
   with the node's own event stream (and, in a parallel run, with its
   round windows) instead of a global engine clock. A down node skips
   its tick — snapshotting wiped state would lose the replay logs —
   and re-arms from its first post-restart activity. *)
and ckpt_tick t i () =
  let ns = t.ns.(i) in
  ns.ckpt_armed <- false;
  if Engine.node_down t.eng i then ()
  else if ns.dirty then
    if checkpoint t i then ns.dirty <- false
    else
      (* Not at a safe point: retry a period later. *)
      arm_ckpt t i ~at:(Engine.now t.eng + t.cfg.checkpoint_every_ns)

let on_deliver t ~dst ~arrival am =
  let ns = t.ns.(dst) in
  Queue.push { de_am = am; de_arrival = arrival } ns.pending;
  Store.append ns.store ~log:"delivery" ~bytes:(dentry_bytes am);
  if not (Engine.node_down t.eng dst) then begin
    ns.dirty <- true;
    arm_ckpt t dst ~at:(arrival + t.cfg.checkpoint_every_ns)
  end

(* Pull the entry for [am] out of the pending set. Dispatch order
   usually matches delivery order, so the head check almost always
   hits; inbox tie-breaks can reorder same-instant messages, hence the
   rebuild fallback. Physical equality is the key: every send allocates
   a fresh [Am.t], so the record's identity names the message. *)
let take_pending ns am =
  match Queue.peek_opt ns.pending with
  | Some de when de.de_am == am -> Some (Queue.pop ns.pending)
  | _ ->
      let found = ref None in
      let keep = Queue.create () in
      Queue.iter
        (fun de ->
          if !found = None && de.de_am == am then found := Some de
          else Queue.push de keep)
        ns.pending;
      Queue.clear ns.pending;
      Queue.transfer keep ns.pending;
      !found

let on_dispatch t ~node am =
  let ns = t.ns.(node) in
  if not ns.replaying then
    match take_pending ns am with
    | Some de ->
        ns.done_log <- de :: ns.done_log;
        Store.append ns.store ~log:"dispatch" ~bytes:cursor_bytes;
        ns.dirty <- true;
        arm_ckpt t node
          ~at:(Node.now (Engine.node t.eng node) + t.cfg.checkpoint_every_ns)
    | None ->
        (* A message the delivery log never saw (e.g. injected behind
           the manager's back). It cannot be replayed after a crash. *)
        Simcore.Stats.bump t.c_unlogged

let on_send t ~src =
  if t.ns.(src).replaying then begin
    Simcore.Stats.bump t.c_suppressed;
    false
  end
  else true

let any_restart_pending t =
  Array.exists (fun ns -> ns.pending_restart) t.ns

(* --- crash and recovery --- *)

let restart t i =
  let ns = t.ns.(i) in
  let node = Engine.node t.eng i in
  let t0 = Node.now node in
  (* 1. Restore the last checkpoint (cold boot if none was ever taken:
     the dispatch log then replays from the beginning of time). *)
  (if ns.has_ckpt then
     match Store.get ns.store ~key:"ckpt" with
     | Some img ->
         t.app.a_restore i img;
         Node.charge_ns node
           (t.cfg.restore_fixed_ns
           + (Bytes.length img * t.cfg.restore_ns_per_byte))
     | None -> assert false
   else Node.charge_ns node t.cfg.restore_fixed_ns);
  (* 2. Replay the dispatch log in recorded order, sends suppressed. *)
  ns.replaying <- true;
  List.iter
    (fun de ->
      Engine.redispatch t.eng ~node:i de.de_am;
      Simcore.Stats.bump t.c_replayed)
    (List.rev ns.done_log);
  ns.replaying <- false;
  (* 3. Rebuild the inbox from delivered-but-undispatched entries at
     their original arrival times (all in the past by now, so the first
     wake polls them straight out). *)
  Queue.iter
    (fun de ->
      Node.inbox_push node ~arrival:de.de_arrival de.de_am;
      Simcore.Stats.bump t.c_inbox_rebuilt)
    ns.pending;
  (* 4. Up again, as a fresh incarnation. *)
  Engine.restart_node t.eng i;
  ns.pending_restart <- false;
  Simcore.Stats.bump t.c_restarts;
  let spent = Node.now node - t0 in
  ns.recoveries_ns <- ns.recoveries_ns + spent;
  Simcore.Stats.bump_n t.c_recovery_ns spent;
  (* The replayed logs want pruning: a fresh checkpoint one period out
     resets the next crash's replay cost. *)
  ns.dirty <- true;
  arm_ckpt t i ~at:(Node.now node + t.cfg.checkpoint_every_ns)

let crash t i ~restart_at =
  let ns = t.ns.(i) in
  let node = Engine.node t.eng i in
  (* The node's optimistic clock may have run past the scripted restart
     instant; recovery then starts as soon as the clock allows. *)
  let ra = max restart_at (max (Engine.now t.eng) (Node.now node) + 1) in
  ns.pending_restart <- true;
  Engine.crash_node t.eng i ~restart_at:ra;
  t.app.a_reset i;
  Simcore.Stats.bump t.c_crashes;
  (* Node-owned: the restart runs on the domain that owns the node. *)
  Engine.schedule_on t.eng ~node:i ~time:ra (fun () -> restart t i)

(* --- wiring --- *)

let install_journal t rel =
  let journal_of n = t.ns.(n).store in
  Reliable.set_journal rel
    (Some
       {
         Reliable.j_sent =
           (fun ~src ~dst:_ ~seq:_ (am : Am.t) ->
             Store.append (journal_of src) ~log:"journal"
               ~bytes:(Reliable.frame_bytes + am.Am.size_bytes));
         j_queued =
           (fun ~src ~dst:_ (am : Am.t) ->
             Store.append (journal_of src) ~log:"journal"
               ~bytes:am.Am.size_bytes);
         j_acked =
           (fun ~src ~dst:_ ~base:_ ->
             Store.append (journal_of src) ~log:"journal" ~bytes:cursor_bytes);
         j_released =
           (fun ~src ~dst ~expected ->
             Store.append (journal_of dst) ~log:"journal" ~bytes:cursor_bytes;
             Hashtbl.replace t.ns.(dst).cursors src expected);
       })

let attach ?(config = default_config) eng ~app ~crashes () =
  if not (Engine.faults_active eng) then
    invalid_arg
      "Manager.attach: crash recovery requires a fault plan (pass a plan \
       with the crash specs' nodes so the reliable layer is live)";
  let n = Engine.node_count eng in
  List.iter
    (fun cs ->
      if cs.cs_node < 0 || cs.cs_node >= n then
        invalid_arg "Manager.attach: crash spec names an unknown node";
      if cs.cs_at <= 0 then
        invalid_arg "Manager.attach: crash instant must be positive";
      if cs.cs_down_ns < 1 then
        invalid_arg "Manager.attach: down window must be non-empty";
      if cs.cs_jitter_ns < 0 then
        invalid_arg "Manager.attach: negative jitter")
    crashes;
  let stats = Engine.stats eng in
  let t =
    {
      eng;
      app;
      cfg = config;
      ns =
        Array.init n (fun _ ->
            {
              store =
                Store.create ~block_bytes:config.store_block_bytes
                  ~blocks:config.store_blocks ();
              pending = Queue.create ();
              done_log = [];
              replaying = false;
              has_ckpt = false;
              ckpt_cursors = Hashtbl.create 8;
              cursors = Hashtbl.create 8;
              pending_restart = false;
              recoveries_ns = 0;
              dirty = false;
              ckpt_armed = false;
            });
      c_crashes = Simcore.Stats.counter stats "recover.crashes";
      c_restarts = Simcore.Stats.counter stats "recover.restarts";
      c_ckpts = Simcore.Stats.counter stats "recover.ckpts";
      c_ckpt_bytes = Simcore.Stats.counter stats "recover.ckpt_bytes";
      c_ckpt_deferred = Simcore.Stats.counter stats "recover.ckpt_deferred";
      c_replayed = Simcore.Stats.counter stats "recover.replayed";
      c_recovery_ns = Simcore.Stats.counter stats "recover.recovery_ns";
      c_suppressed = Simcore.Stats.counter stats "recover.suppressed_sends";
      c_unlogged = Simcore.Stats.counter stats "recover.dispatch_unlogged";
      c_inbox_rebuilt = Simcore.Stats.counter stats "recover.inbox_rebuilt";
    }
  in
  install_journal t (Option.get (Engine.reliable eng));
  Engine.set_recovery_hooks eng
    (Some
       {
         Engine.rc_deliver = (fun ~dst ~arrival am -> on_deliver t ~dst ~arrival am);
         rc_dispatch = (fun ~node am -> on_dispatch t ~node am);
         rc_send = (fun ~src -> on_send t ~src);
       });
  (* Re-time the scripted crashes through recorded decision points and
     install the resulting windows into the live fault state BEFORE any
     traffic: the fabric then drops the crashed node's in-flight packets
     deterministically under replay. *)
  let timed =
    List.map
      (fun cs ->
        let jc =
          Engine.decide_on eng ~node:cs.cs_node "recover.crash.jitter"
            (cs.cs_jitter_ns + 1)
        in
        let jr =
          Engine.decide_on eng ~node:cs.cs_node "recover.restart.jitter"
            (cs.cs_jitter_ns + 1)
        in
        let at = cs.cs_at + jc in
        (cs, at, at + cs.cs_down_ns + jr))
      crashes
  in
  (match Engine.faults_state eng with
  | Some f ->
      Network.Faults.set_crashes f
        (List.map
           (fun (cs, at, ra) ->
             { Network.Faults.node = cs.cs_node; from_ns = at; until_ns = ra })
           timed)
  | None -> assert false (* faults_active checked above *));
  List.iter
    (fun (cs, at, ra) ->
      (* Node-owned: the crash (and the restart it schedules) executes
         on the domain that owns the node. *)
      Engine.schedule_on eng ~node:cs.cs_node ~time:at (fun () ->
          crash t cs.cs_node ~restart_at:ra))
    timed;
  (* Checkpoint 0: persist the pristine state so the very first crash
     already has something to restore. Later checkpoints are activity-
     driven — the first delivery or dispatch after a snapshot arms a
     per-node timer one period (plus a node-keyed stagger) out. *)
  for i = 0 to n - 1 do
    ignore (checkpoint t i : bool)
  done;
  t

let detach t =
  Engine.set_recovery_hooks t.eng None;
  match Engine.reliable t.eng with
  | Some rel -> Reliable.set_journal rel None
  | None -> ()

(* --- invariants --- *)

let audit t =
  let bad = ref [] in
  let say fmt = Format.kasprintf (fun s -> bad := s :: !bad) fmt in
  Array.iteri
    (fun i ns ->
      let down = Engine.node_down t.eng i in
      (* One live incarnation per node: crash count runs exactly one
         ahead of the incarnation number while (and only while) the
         node is down. *)
      let lag = Engine.node_crash_count t.eng i - Engine.node_incarnation t.eng i in
      if lag <> (if down then 1 else 0) then
        say "node %d: incarnation accounting off (crashes=%d incarnation=%d down=%b)"
          i
          (Engine.node_crash_count t.eng i)
          (Engine.node_incarnation t.eng i)
          down;
      if down then begin
        let node = Engine.node t.eng i in
        if not (Node.is_idle node) then say "down node %d is not idle" i;
        if Node.inbox_size node <> 0 then
          say "down node %d holds %d inbox messages" i (Node.inbox_size node);
        if Node.runq_size node <> 0 then
          say "down node %d holds %d queued thunks" i (Node.runq_size node)
      end;
      (* The journal's release cursor may never fall behind the cursor
         the last checkpoint recorded. *)
      Hashtbl.iter
        (fun src at_ckpt ->
          let live =
            Option.value (Hashtbl.find_opt ns.cursors src) ~default:0
          in
          if live < at_ckpt then
            say "node %d: journal cursor for src %d behind checkpoint (%d < %d)"
              i src live at_ckpt)
        ns.ckpt_cursors)
    t.ns;
  List.rev !bad

let audit_quiescent t =
  let bad = ref (audit t) in
  let say fmt = Format.kasprintf (fun s -> bad := s :: !bad) fmt in
  if any_restart_pending t then say "quiescent with a restart still pending";
  Array.iteri
    (fun i ns ->
      if Engine.node_down t.eng i then say "quiescent with node %d down" i;
      (* Every message the protocol acknowledged and released must have
         hit the journal: at quiescence the journal cursor equals the
         receiver's expected-sequence cursor on every channel. *)
      match Engine.reliable t.eng with
      | None -> ()
      | Some rel ->
          for src = 0 to Array.length t.ns - 1 do
            if src <> i then begin
              let expected = Reliable.rx_expected rel ~src ~dst:i in
              let logged =
                Option.value (Hashtbl.find_opt ns.cursors src) ~default:0
              in
              if expected <> logged then
                say
                  "node %d: %d messages from %d acked but %d journaled \
                   (acked-but-unlogged)"
                  i expected src logged
            end
          done)
    t.ns;
  List.rev !bad
