(** Simulated per-node stable store: a block-allocated heap with a free
    list, LRU eviction to a cold tier, and append-only journal regions.

    Named {e records} hold checkpoint images. When the hot tier's free
    list runs dry, the least-recently-used record is {e evicted}: its
    blocks return to the free list, its bytes survive in the cold tier,
    and the next {!get} {e faults} it back (re-allocating hot blocks).
    {e Journals} are append-only byte streams that grow block by block
    and are never evicted; {!truncate} resets one when a checkpoint
    subsumes it.

    Recency is a logical access tick, not wall-clock time, so the store
    behaves identically under deterministic replay. *)

type t

val create : ?block_bytes:int -> ?blocks:int -> unit -> t
(** A store of [blocks] hot blocks of [block_bytes] each (defaults:
    4096 x 256 B = 1 MiB hot tier). *)

(** {2 Records (checkpoints)} *)

val put : t -> key:string -> bytes -> unit
(** Writes (or overwrites) a record. The store keeps its own copy. May
    evict cold-able records to make room; raises [Failure] only if the
    record alone exceeds the whole hot tier. *)

val get : t -> key:string -> bytes option
(** Reads a record back (a fresh copy), faulting it in from the cold
    tier if it was evicted. *)

val mem : t -> key:string -> bool

val is_cold : t -> key:string -> bool
(** Whether the record currently lives in the cold tier (its next
    {!get} will fault). *)

val delete : t -> key:string -> unit

(** {2 Journals} *)

val append : t -> log:string -> bytes:int -> unit
(** Appends one entry of [bytes] to the named journal (creating it on
    first use). Journal blocks are allocated from the same free list as
    records but are never evicted. *)

val log_entries : t -> log:string -> int
val log_bytes : t -> log:string -> int

val truncate : t -> log:string -> unit
(** Empties the journal and frees its blocks. *)

(** {2 Accounting} *)

type stats = {
  s_puts : int;
  s_put_bytes : int;
  s_gets : int;
  s_evictions : int;
  s_evicted_bytes : int;
  s_faults : int;  (** cold-tier fault-backs *)
  s_faulted_bytes : int;
  s_appends : int;
  s_append_bytes : int;
  s_truncates : int;
  s_blocks_used : int;
  s_blocks_free : int;
  s_blocks_high : int;  (** high-water mark of blocks in use *)
  s_cold_records : int;
  s_cold_bytes : int;
}

val stats : t -> stats
val pp_stats : Format.formatter -> stats -> unit
