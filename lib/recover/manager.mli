(** Per-node crash recovery: checkpointing, pessimistic message
    logging, and restart-with-replay over {!Machine.Engine}'s crash
    mechanism.

    The manager owns one {!Store} per node and keeps three persistent
    structures in it: the application checkpoint (a snapshot taken at a
    safe point on a staggered timer), the {e delivery log} (every
    message that reached the node's inbox, with its arrival time), and
    the {e dispatch log} (the order handlers actually ran since the
    checkpoint). The reliable layer's journal hooks mirror every
    sequence-state mutation synchronously, so the protocol state is
    always persisted as-of the crash instant and is {e not} reset by a
    crash.

    On a scheduled crash the node loses its volatile state; at the
    restart instant the manager restores the snapshot (faulting it back
    from the store's cold tier if evicted), replays the dispatch log in
    recorded order with every send from the node suppressed (the
    originals are already journaled or logged), rebuilds the inbox from
    the undispatched delivery-log entries, and restarts the node as a
    new incarnation. All recovery work is charged to the node's clock.

    Application contract: all application work happens in message
    handlers (no [Engine.post] from handlers — run-queue thunks are not
    logged); bootstrap thunks only send; [a_snapshot] answers [None]
    away from safe points and the checkpoint timer retries.

    Crash instants are re-timed through the engine decision points
    ["recover.crash.jitter"] / ["recover.restart.jitter"] and installed
    as fault windows before traffic starts, so a recorded schedule
    replays every crash — including which in-flight packets die —
    bit-identically. The scripted down window must stay well inside the
    reliable layer's retry budget (max_retries x max RTO), or the
    peers' retransmissions give up before the node returns. *)

type app = {
  a_snapshot : int -> bytes option;
      (** serialize the node's application state, or [None] if the node
          is not at a safe point right now *)
  a_restore : int -> bytes -> unit;  (** inverse of [a_snapshot] *)
  a_reset : int -> unit;  (** wipe the node's volatile application state *)
}

type crash_spec = {
  cs_node : int;
  cs_at : Simcore.Time.t;  (** nominal crash instant (before jitter) *)
  cs_down_ns : int;  (** nominal down time *)
  cs_jitter_ns : int;  (** bound for the crash/restart re-timing draws *)
}

type config = {
  checkpoint_every_ns : int;
  restore_fixed_ns : int;  (** fixed restart cost (reboot, store open) *)
  restore_ns_per_byte : int;  (** checkpoint read-back bandwidth *)
  store_block_bytes : int;
  store_blocks : int;
}

val default_config : config
(** 200 us checkpoint period, 20 us + 2 ns/B restore, 4096 x 256 B
    stores. *)

type t

val attach :
  ?config:config ->
  Machine.Engine.t ->
  app:app ->
  crashes:crash_spec list ->
  unit ->
  t
(** Wires the recovery hooks and journal, re-times and installs the
    crash windows (each crash/restart scheduled as a node-owned timer,
    so a parallel run executes it on the owning domain) and takes
    checkpoint 0 on every node. Later checkpoints are activity-driven:
    the first delivery or dispatch after a snapshot arms a per-node
    timer one period (plus a node-keyed ["recover.ckpt.stagger"]
    jitter) out, so safe-points follow each node's own event stream.
    Call after registering handlers and before posting any work. Raises
    [Invalid_argument] if the machine has no fault plan (the reliable
    layer must be live) or a crash spec is malformed. *)

val detach : t -> unit
(** Unhooks from the engine and the reliable layer (logs and stores
    survive for inspection). *)

val store : t -> int -> Store.t
(** The named node's stable store, for reports and tests. *)

val recovery_ns : t -> int -> int
(** Total simulated wall-clock the node has spent recovering. *)

val audit : t -> string list
(** Structural invariants, safe at any instant: exactly one live
    incarnation per node (crash count runs one ahead of the incarnation
    number only while down), a down node holds no inbox messages or
    queued thunks, and no journal release cursor is behind the cursor
    its last checkpoint recorded. Empty means clean. *)

val audit_quiescent : t -> string list
(** {!audit} plus the quiescence-only checks: no restart pending, no
    node down, and on every channel the receiver's acked cursor equals
    the journaled cursor (no acked-but-unlogged message). *)
