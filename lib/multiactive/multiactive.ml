(** Multiactive objects: compatibility-group concurrency inside one
    object (ISSUE 8; after Henrio & Rochas, "Multiactive objects").

    The mechanism itself lives in [lib/core] — {!Core.Class_def}
    installs the declaration, {!Core.Vft.multiactive} builds the
    admission table, {!Core.Sched} runs the activation manager. This
    library is the application-facing surface: declaring compatibility
    by method name, and introspecting the per-object admission state
    (running set, group-queue depth, high-water marks) for tests,
    probes and the load-gossip service. *)

open Core

(* Resolve a method-name string to one of [cls]'s own patterns. *)
let pattern_of_name (cls : Kernel.cls) name =
  let matching =
    List.filter
      (fun (p, _) -> String.equal (Pattern.name p) name)
      cls.Kernel.methods
  in
  match matching with
  | [ (p, _) ] -> p
  | [] ->
      invalid_arg
        (Printf.sprintf "Multiactive.declare: class %s has no method %s"
           cls.Kernel.cls_name name)
  | _ ->
      invalid_arg
        (Printf.sprintf
           "Multiactive.declare: method name %s is ambiguous in class %s"
           name cls.Kernel.cls_name)

(** [declare cls ~budget ~groups ()] installs a compatibility
    declaration with groups given as [(group_name, method_names)].
    Methods of one group may overlap each other on a single object;
    [compatible] pairs of group names may overlap across; undeclared
    methods stay strictly serialized. At most [budget] activations run
    concurrently per object. *)
let declare (cls : Kernel.cls) ~budget ?(compatible = []) ~groups () =
  let groups =
    List.map
      (fun (gname, meths) -> (gname, List.map (pattern_of_name cls) meths))
      groups
  in
  Class_def.set_multiactive cls ~budget ~compatible ~groups ()

let spec (cls : Kernel.cls) = cls.Kernel.cls_ma
let is_multiactive (cls : Kernel.cls) = Option.is_some cls.Kernel.cls_ma

(* --- per-object introspection ------------------------------------- *)

let running (obj : Kernel.obj) =
  match obj.Kernel.ma with Some m -> m.Kernel.mar_count | None -> 0

let queue_depth (obj : Kernel.obj) =
  match obj.Kernel.ma with Some m -> m.Kernel.mar_queued | None -> 0

let peak_overlap (obj : Kernel.obj) =
  match obj.Kernel.ma with Some m -> m.Kernel.mar_peak | None -> 0

let admitted_total (obj : Kernel.obj) =
  match obj.Kernel.ma with Some m -> m.Kernel.mar_admitted | None -> 0

let draining (obj : Kernel.obj) =
  match obj.Kernel.ma with Some m -> m.Kernel.mar_draining | None -> false

let group_queue_depths (obj : Kernel.obj) =
  match (obj.Kernel.ma, obj.Kernel.cls) with
  | Some m, Some { Kernel.cls_ma = Some spec; _ } ->
      Array.to_list
        (Array.mapi
           (fun g q -> (spec.Kernel.ma_group_names.(g), Queue.length q))
           m.Kernel.mar_queues)
  | _ -> []

(* The deepest admission queue among a node's objects: the load-gossip
   payload distinguishing "hot because serialized" from "hot because
   big". *)
let max_queue_depth_on_node (rt : Kernel.node_rt) =
  Hashtbl.fold
    (fun _slot obj acc -> max acc (queue_depth obj))
    rt.Kernel.objects 0

(** Test-only corruption hook (see {!Core.Sched.ma_unsafe_force_admit}):
    while set, admission ignores compatibility, manufacturing the
    serialization violations the probes exist to catch. *)
let unsafe_force_admit = Sched.ma_unsafe_force_admit
