(** A 2-D torus of processing nodes, as on the Fujitsu AP1000.

    Nodes are numbered [0 .. node_count - 1] in row-major order. Routing
    distance is the Manhattan distance with wrap-around on both axes. *)

type t

val create : x:int -> y:int -> t
(** [create ~x ~y] is an [x] columns by [y] rows torus. Both must be >= 1. *)

val square_for : int -> t
(** [square_for p] builds a near-square torus with exactly [p] nodes: the
    factorisation [a * b = p] with [a <= b] and [a] maximal (e.g. 512 ->
    16 x 32, 7 -> 1 x 7). *)

val node_count : t -> int

val dims : t -> int * int

val coords : t -> int -> int * int
(** [coords t n] is the (x, y) position of node [n]. *)

val node_at : t -> int * int -> int

val hops : t -> int -> int -> int
(** Minimal routing distance between two nodes (0 for a node to itself). *)

val neighbors : t -> int -> int list
(** The (up to 4) distinct direct torus neighbours of a node. *)

val route : t -> int -> int -> int list
(** Dimension-order (X then Y) route between two nodes, as the list of
    intermediate+final nodes traversed (empty for [src = dst]); each
    consecutive pair is one torus link. Always takes the shorter way
    around each ring. *)

val pp : Format.formatter -> t -> unit
