type t = { nx : int; ny : int }

let create ~x ~y =
  if x < 1 || y < 1 then invalid_arg "Topology.create: dims must be >= 1";
  { nx = x; ny = y }

let square_for p =
  if p < 1 then invalid_arg "Topology.square_for: p must be >= 1";
  let rec best a = if p mod a = 0 then a else best (a - 1) in
  let a = best (int_of_float (sqrt (float_of_int p))) in
  create ~x:a ~y:(p / a)

let node_count t = t.nx * t.ny
let dims t = (t.nx, t.ny)

let coords t n =
  if n < 0 || n >= node_count t then invalid_arg "Topology.coords: bad node";
  (n mod t.nx, n / t.nx)

let node_at t (x, y) =
  if x < 0 || x >= t.nx || y < 0 || y >= t.ny then
    invalid_arg "Topology.node_at: bad coords";
  (y * t.nx) + x

let axis_dist len a b =
  let d = abs (a - b) in
  min d (len - d)

let hops t a b =
  let xa, ya = coords t a and xb, yb = coords t b in
  axis_dist t.nx xa xb + axis_dist t.ny ya yb

let neighbors t n =
  let x, y = coords t n in
  let wrap len v = ((v mod len) + len) mod len in
  let candidates =
    [
      (wrap t.nx (x - 1), y);
      (wrap t.nx (x + 1), y);
      (x, wrap t.ny (y - 1));
      (x, wrap t.ny (y + 1));
    ]
  in
  List.sort_uniq Int.compare (List.map (node_at t) candidates)
  |> List.filter (fun m -> m <> n)

(* One step along a ring of length [len] from [a] toward [b], the short
   way round (ties go up). *)
let ring_step len a b =
  if a = b then a
  else
    let forward = ((b - a) + len) mod len in
    let backward = ((a - b) + len) mod len in
    if forward <= backward then (a + 1) mod len else ((a - 1) + len) mod len

let route t src dst =
  let xd, yd = coords t dst in
  let rec walk (x, y) acc =
    if x <> xd then
      let x' = ring_step t.nx x xd in
      walk (x', y) (node_at t (x', y) :: acc)
    else if y <> yd then
      let y' = ring_step t.ny y yd in
      walk (x, y') (node_at t (x, y') :: acc)
    else List.rev acc
  in
  walk (coords t src) []

let pp ppf t = Format.fprintf ppf "torus %dx%d (%d nodes)" t.nx t.ny (node_count t)
