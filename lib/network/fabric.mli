(** The message fabric: computes delivery times for packets on the torus.

    The model captures the AP1000 characteristics the paper relies on:
    - a fixed hardware launch/receive latency per packet,
    - a small per-hop routing delay,
    - finite link bandwidth (25 MB/s on the AP1000) applied to the whole
      wire size, with the source injection port serialising back-to-back
      sends,
    - preservation of transmission order for each (src, dst) pair.

    Cross-traffic contention inside the fabric is off by default (the
    paper's measurements are taken on an unloaded network) but can be
    enabled: each directed link along the dimension-order route is then a
    resource a packet occupies for its transmission time, pipelined
    virtual-cut-through style.

    A {!Faults.plan} turns the perfect network into a lossy one: packets
    may be dropped, duplicated, jittered past the FIFO clamp (and so
    reordered), or lost to scripted node crash windows. {!send} is
    untouched by the plan; only {!send_flaky} consults it, so fault-free
    users pay nothing. *)

type config = {
  hw_launch_ns : int;  (** fixed hardware cost to launch + sink a packet *)
  per_hop_ns : int;  (** routing delay per torus hop *)
  bytes_per_us : int;  (** link bandwidth, bytes per microsecond *)
  contention : bool;
      (** model per-link occupancy along the dimension-order route
          (virtual cut-through); off by default — the paper's
          measurements are on an unloaded network *)
}

val default_config : config
(** AP1000-like: 25 MB/s links, 450 ns launch, 20 ns per hop. *)

type 'a t

val create : ?config:config -> ?faults:Faults.plan -> Topology.t -> 'a t

val topology : 'a t -> Topology.t

val config : 'a t -> config

val fault_plan : 'a t -> Faults.plan option
(** The plan this fabric was created with, if any. *)

val faults_state : 'a t -> Faults.t option
(** The live fault state, if a plan was configured. Exposed so a
    recovery manager can re-time crash windows ({!Faults.set_crashes})
    through recorded decision points before traffic starts. *)

val transit_time : 'a t -> 'a Packet.t -> Simcore.Time.t
(** Pure fabric time for a packet, ignoring queueing: launch + hops +
    transmission. Transmission time rounds {e up} to the bandwidth
    granularity — a partial flit occupies the link for a whole cycle —
    so small packets are never under-charged. *)

val send : 'a t -> now:Simcore.Time.t -> 'a Packet.t -> Simcore.Time.t
(** [send t ~now p] registers the packet as injected at [now] and returns
    its delivery time at the destination node. Guarantees:
    - delivery > now,
    - per-(src, dst) deliveries are strictly increasing in send order,
    - back-to-back injections from one node serialise at link bandwidth. *)

val send_flaky :
  'a t -> now:Simcore.Time.t -> 'a Packet.t -> Simcore.Time.t * Simcore.Time.t list
(** Like {!send}, but subject to the fault plan: returns the packet's
    fault-free arrival estimate (what {!send} would have answered — the
    time the packet clears the injection queue and reaches the
    destination, useful for anchoring retransmission timeouts) together
    with every actual delivery time — [[]] if it was dropped (randomly
    or because an endpoint is inside a crash window), one element
    normally, two if the network duplicated it. Jitter is added {e
    after} the FIFO clamp, so the delivery times may interleave
    arbitrarily with other packets on the same channel. Without a fault
    plan the arrivals are exactly [[send t p]]. *)

val send_control :
  'a t -> now:Simcore.Time.t -> 'a Packet.t -> Simcore.Time.t * Simcore.Time.t list
(** Protocol-autonomous send: the packet takes {!transit_time} and is
    subject to the fault plan, but does {e not} occupy the injection port
    or a channel-FIFO slot. For control frames (acknowledgements,
    retransmissions) emitted by the network interface at engine-event
    times: those instants can interleave with an optimistic node slice
    whose clock — and whose data packets' fabric timestamps — already ran
    far ahead, and serialising behind that virtual-future traffic would
    turn every delayed ack into a spurious peer retransmission. The
    reliable layer tolerates the resulting control/data reordering by
    construction. *)

val injection_idle : 'a t -> node:int -> now:Simcore.Time.t -> bool
(** Whether [node]'s injection port is free at [now] — i.e. a packet
    injected now would start transmitting immediately instead of
    queueing behind an earlier send. Aggregation layers use this to
    decide between sending a lone frame at once and opening a batch. *)

val transmission_ns : 'a t -> int -> Simcore.Time.t
(** Link occupancy of [bytes] at the configured bandwidth, rounded up
    to the flit granularity (the same rule {!send} charges). Exposed so
    multi-frame packets can stagger per-frame delivery cut-through
    style without re-deriving the bandwidth model. *)

val min_remote_latency : 'a t -> Simcore.Time.t
(** Smallest possible [arrival - now] {!send} can produce for a packet
    whose destination differs from its source: the transmission time of
    a bare header plus the hardware launch cost plus one hop. Queueing
    (injection port, channel FIFO) only increases arrivals, so this is
    a sound conservative lookahead for parallel simulation: events a
    node creates at another node always land at least this far in that
    node's future. *)

val packets_sent : 'a t -> int

val bytes_sent : 'a t -> int

val packets_dropped : 'a t -> int
(** Packets (or duplicate copies) lost by {!send_flaky}. *)

val packets_duplicated : 'a t -> int

val dropped_by_src : 'a t -> int -> int
(** Losses of packets injected by the given node. *)

val duplicated_by_src : 'a t -> int -> int

val crash_dropped : 'a t -> int
(** Of {!packets_dropped}, the losses caused by a crash window rather
    than a random drop draw (a random draw that would also have hit a
    crash window counts as random). *)

val crash_dropped_by_node : 'a t -> int -> int
(** Crash losses attributed to the given {e crashed endpoint} — the
    node whose down window killed the packet, source or destination —
    unlike {!dropped_by_src}, which always charges the sender. *)

val channel_entries : 'a t -> int
(** Number of live per-channel bookkeeping entries (FIFO watermarks plus
    link-occupancy records). Grows with the set of channels ever used;
    {!reset} reclaims it between runs of a long sweep. *)

val reset : 'a t -> unit
(** Forgets all queueing state (per-channel FIFO watermarks, link and
    injection-port occupancy) and zeroes the traffic counters, returning
    the fabric to its just-created state. Only sound at a quiescent
    instant — with packets in flight it would let later sends overtake
    them. *)
