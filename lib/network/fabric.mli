(** The message fabric: computes delivery times for packets on the torus.

    The model captures the AP1000 characteristics the paper relies on:
    - a fixed hardware launch/receive latency per packet,
    - a small per-hop routing delay,
    - finite link bandwidth (25 MB/s on the AP1000) applied to the whole
      wire size, with the source injection port serialising back-to-back
      sends,
    - preservation of transmission order for each (src, dst) pair.

    Cross-traffic contention inside the fabric is off by default (the
    paper's measurements are taken on an unloaded network) but can be
    enabled: each directed link along the dimension-order route is then a
    resource a packet occupies for its transmission time, pipelined
    virtual-cut-through style. *)

type config = {
  hw_launch_ns : int;  (** fixed hardware cost to launch + sink a packet *)
  per_hop_ns : int;  (** routing delay per torus hop *)
  bytes_per_us : int;  (** link bandwidth, bytes per microsecond *)
  contention : bool;
      (** model per-link occupancy along the dimension-order route
          (virtual cut-through); off by default — the paper's
          measurements are on an unloaded network *)
}

val default_config : config
(** AP1000-like: 25 MB/s links, 450 ns launch, 20 ns per hop. *)

type 'a t

val create : ?config:config -> Topology.t -> 'a t

val topology : 'a t -> Topology.t

val config : 'a t -> config

val transit_time : 'a t -> 'a Packet.t -> Simcore.Time.t
(** Pure fabric time for a packet, ignoring queueing: launch + hops +
    transmission. *)

val send : 'a t -> now:Simcore.Time.t -> 'a Packet.t -> Simcore.Time.t
(** [send t ~now p] registers the packet as injected at [now] and returns
    its delivery time at the destination node. Guarantees:
    - delivery > now,
    - per-(src, dst) deliveries are strictly increasing in send order,
    - back-to-back injections from one node serialise at link bandwidth. *)

val packets_sent : 'a t -> int

val bytes_sent : 'a t -> int
