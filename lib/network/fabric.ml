type config = {
  hw_launch_ns : int;
  per_hop_ns : int;
  bytes_per_us : int;
  contention : bool;
}

(* Calibrated so the end-to-end one-way latency of a one-word past-type
   message between adjacent nodes lands on the paper's 8.9 us (the
   software costs contribute ~7.3 us; the rest is "due to hardware,
   roughly 1.5 us each way" — launch plus wire time here). *)
let default_config =
  { hw_launch_ns = 450; per_hop_ns = 20; bytes_per_us = 25; contention = false }

type 'a t = {
  topo : Topology.t;
  config : config;
  (* end of the last injection per source node: models the injection port *)
  injection_free : Simcore.Time.t array;
  (* last delivery time per (src, dst) channel, for FIFO enforcement *)
  last_delivery : (int, Simcore.Time.t) Hashtbl.t;
  (* when each directed link (from_node, to_node) becomes free *)
  link_free : (int * int, Simcore.Time.t) Hashtbl.t;
  mutable packets : int;
  mutable bytes : int;
}

let create ?(config = default_config) topo =
  if config.bytes_per_us <= 0 then invalid_arg "Fabric.create: bad bandwidth";
  {
    topo;
    config;
    injection_free = Array.make (Topology.node_count topo) 0;
    last_delivery = Hashtbl.create 256;
    link_free = Hashtbl.create 256;
    packets = 0;
    bytes = 0;
  }

let topology t = t.topo
let config t = t.config

let transmission_ns t bytes = bytes * 1_000 / t.config.bytes_per_us

let transit_time t (p : _ Packet.t) =
  let hops = Topology.hops t.topo p.src p.dst in
  t.config.hw_launch_ns
  + (hops * t.config.per_hop_ns)
  + transmission_ns t (Packet.wire_bytes p)

let send t ~now (p : _ Packet.t) =
  let wire = Packet.wire_bytes p in
  (* Injection port: the source link is busy for the transmission time. *)
  let start = max now t.injection_free.(p.src) in
  let tx = transmission_ns t wire in
  t.injection_free.(p.src) <- start + tx;
  let arrival =
    if not t.config.contention then
      start + tx + t.config.hw_launch_ns
      + (Topology.hops t.topo p.src p.dst * t.config.per_hop_ns)
    else begin
      (* Virtual cut-through: the packet's head advances one per-hop
         delay per link, waiting for each link to be free; each link then
         stays busy for the transmission time behind it. *)
      let head = ref (start + t.config.hw_launch_ns) in
      let prev = ref p.src in
      List.iter
        (fun next ->
          let link = (!prev, next) in
          let free =
            Option.value (Hashtbl.find_opt t.link_free link) ~default:0
          in
          head := max (!head + t.config.per_hop_ns) free;
          Hashtbl.replace t.link_free link (!head + tx);
          prev := next)
        (Topology.route t.topo p.src p.dst);
      !head + tx
    end
  in
  (* FIFO per channel: never deliver before (or at) the previous packet on
     the same (src, dst) pair. *)
  let channel = (p.src * Topology.node_count t.topo) + p.dst in
  let arrival =
    match Hashtbl.find_opt t.last_delivery channel with
    | Some prev when arrival <= prev -> prev + 1
    | _ -> arrival
  in
  let arrival = if arrival <= now then now + 1 else arrival in
  Hashtbl.replace t.last_delivery channel arrival;
  t.packets <- t.packets + 1;
  t.bytes <- t.bytes + wire;
  arrival

let packets_sent t = t.packets
let bytes_sent t = t.bytes
