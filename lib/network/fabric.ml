type config = {
  hw_launch_ns : int;
  per_hop_ns : int;
  bytes_per_us : int;
  contention : bool;
}

(* Calibrated so the end-to-end one-way latency of a one-word past-type
   message between adjacent nodes lands on the paper's 8.9 us (the
   software costs contribute ~7.3 us; the rest is "due to hardware,
   roughly 1.5 us each way" — launch plus wire time here). *)
let default_config =
  { hw_launch_ns = 450; per_hop_ns = 20; bytes_per_us = 25; contention = false }

type 'a t = {
  topo : Topology.t;
  config : config;
  faults : Faults.t option;
  (* end of the last injection per source node: models the injection port *)
  injection_free : Simcore.Time.t array;
  (* last delivery time per (src, dst) channel, for FIFO enforcement;
     indexed by src so each sending domain touches only its own table *)
  last_delivery : (int, Simcore.Time.t) Hashtbl.t array;
  (* when each directed link (from_node, to_node) becomes free *)
  link_free : (int * int, Simcore.Time.t) Hashtbl.t;
  (* per source node, so concurrent domains never share a counter; the
     totals are derived by summation on read *)
  packets_by_src : int array;
  bytes_by_src : int array;
  nodes : int;
  (* per source node, for degradation reports *)
  dropped_by_src : int array;
  duplicated_by_src : int array;
  (* of the drops, the losses caused by a crash window rather than by a
     random per-packet drop draw — attributed to the crashed endpoint.
     Indexed [src * nodes + crashed_node]: only the sending node's
     domain writes a row, and per-crashed-node totals sum a column. *)
  crash_dropped_matrix : int array;
}

let create ?(config = default_config) ?faults topo =
  if config.bytes_per_us <= 0 then invalid_arg "Fabric.create: bad bandwidth";
  let n = Topology.node_count topo in
  {
    topo;
    config;
    faults = Option.map (Faults.create ~nodes:n) faults;
    injection_free = Array.make n 0;
    last_delivery = Array.init n (fun _ -> Hashtbl.create 32);
    link_free = Hashtbl.create 256;
    packets_by_src = Array.make n 0;
    bytes_by_src = Array.make n 0;
    nodes = n;
    dropped_by_src = Array.make n 0;
    duplicated_by_src = Array.make n 0;
    crash_dropped_matrix = Array.make (n * n) 0;
  }

let topology t = t.topo
let config t = t.config
let fault_plan t = Option.map Faults.plan_of t.faults
let faults_state t = t.faults

(* Round up: a partial flit still occupies the link for a whole cycle, so
   truncating would under-charge small packets on slow links (with the
   default 25 B/us the division is exact and this changes nothing). *)
let transmission_ns t bytes =
  (bytes * 1_000 + t.config.bytes_per_us - 1) / t.config.bytes_per_us

let transit_time t (p : _ Packet.t) =
  let hops = Topology.hops t.topo p.src p.dst in
  t.config.hw_launch_ns
  + (hops * t.config.per_hop_ns)
  + transmission_ns t (Packet.wire_bytes p)

let send t ~now (p : _ Packet.t) =
  let wire = Packet.wire_bytes p in
  (* Injection port: the source link is busy for the transmission time. *)
  let start = max now t.injection_free.(p.src) in
  let tx = transmission_ns t wire in
  t.injection_free.(p.src) <- start + tx;
  let arrival =
    if not t.config.contention then
      start + tx + t.config.hw_launch_ns
      + (Topology.hops t.topo p.src p.dst * t.config.per_hop_ns)
    else begin
      (* Virtual cut-through: the packet's head advances one per-hop
         delay per link, waiting for each link to be free; each link then
         stays busy for the transmission time behind it. *)
      let head = ref (start + t.config.hw_launch_ns) in
      let prev = ref p.src in
      List.iter
        (fun next ->
          let link = (!prev, next) in
          let free =
            Option.value (Hashtbl.find_opt t.link_free link) ~default:0
          in
          head := max (!head + t.config.per_hop_ns) free;
          Hashtbl.replace t.link_free link (!head + tx);
          prev := next)
        (Topology.route t.topo p.src p.dst);
      !head + tx
    end
  in
  (* FIFO per channel: never deliver before (or at) the previous packet on
     the same (src, dst) pair. *)
  let fifo = t.last_delivery.(p.src) in
  let arrival =
    match Hashtbl.find_opt fifo p.dst with
    | Some prev when arrival <= prev -> prev + 1
    | _ -> arrival
  in
  let arrival = if arrival <= now then now + 1 else arrival in
  Hashtbl.replace fifo p.dst arrival;
  t.packets_by_src.(p.src) <- t.packets_by_src.(p.src) + 1;
  t.bytes_by_src.(p.src) <- t.bytes_by_src.(p.src) + wire;
  arrival

(* Applies a fault fate to a packet whose fault-free arrival would be
   [base]. Jitter lands after any FIFO clamp the caller applied: a faulty
   network may reorder, and re-serialising is the reliable layer's job. *)
let faulty_arrivals t f ~now ~base (p : _ Packet.t) =
  let fate = Faults.fate f ~src:p.src ~dst:p.dst in
  (* Which crashed endpoint (if any) kills a copy arriving at [at]:
     the source is checked at the send instant, the destination at the
     arrival instant. Distinguished from random drops so recovery
     reports can attribute losses to the crash itself. *)
  let crash_loss at =
    if Faults.crashed f ~node:p.src ~at:now then Some p.src
    else if Faults.crashed f ~node:p.dst ~at then Some p.dst
    else None
  in
  let drop_one () =
    t.dropped_by_src.(p.src) <- t.dropped_by_src.(p.src) + 1
  in
  let crash_drop node =
    drop_one ();
    let k = (p.src * t.nodes) + node in
    t.crash_dropped_matrix.(k) <- t.crash_dropped_matrix.(k) + 1
  in
  let first = base + fate.Faults.f_jitter in
  let arrivals =
    if fate.Faults.f_drop then begin
      drop_one ();
      []
    end
    else
      match crash_loss first with
      | Some node ->
          crash_drop node;
          []
      | None -> [ first ]
  in
  if fate.Faults.f_duplicate then begin
    let copy = first + fate.Faults.f_dup_jitter in
    match crash_loss copy with
    | Some node ->
        crash_drop node;
        arrivals
    | None ->
        t.duplicated_by_src.(p.src) <- t.duplicated_by_src.(p.src) + 1;
        arrivals @ [ copy ]
  end
  else arrivals

let send_flaky t ~now (p : _ Packet.t) =
  match t.faults with
  | None ->
      let base = send t ~now p in
      (base, [ base ])
  | Some f ->
      (* The packet is injected (and occupies the port / links / channel
         FIFO slot) whether or not it survives: losses happen downstream. *)
      let base = send t ~now p in
      (base, faulty_arrivals t f ~now ~base p)

let send_control t ~now (p : _ Packet.t) =
  let wire = Packet.wire_bytes p in
  t.packets_by_src.(p.src) <- t.packets_by_src.(p.src) + 1;
  t.bytes_by_src.(p.src) <- t.bytes_by_src.(p.src) + wire;
  let base = now + transit_time t p in
  match t.faults with
  | None -> (base, [ base ])
  | Some f -> (base, faulty_arrivals t f ~now ~base p)

let injection_idle t ~node ~now = t.injection_free.(node) <= now

let packets_sent t = Array.fold_left ( + ) 0 t.packets_by_src
let bytes_sent t = Array.fold_left ( + ) 0 t.bytes_by_src

(* The smallest increment {!send} can put between a packet's injection
   instant and its arrival at a *different* node: minimum wire size (a
   bare header), the fixed launch cost, and at least one hop. The FIFO
   and injection-port clamps only push arrivals later. This bound is the
   conservative-parallel-simulation lookahead: a message sent at [now]
   to another node cannot take effect before [now + min_remote_latency]. *)
let min_remote_latency t =
  transmission_ns t Packet.header_bytes
  + t.config.hw_launch_ns + t.config.per_hop_ns
let packets_dropped t = Array.fold_left ( + ) 0 t.dropped_by_src
let packets_duplicated t = Array.fold_left ( + ) 0 t.duplicated_by_src
let dropped_by_src t src = t.dropped_by_src.(src)
let duplicated_by_src t src = t.duplicated_by_src.(src)
let crash_dropped t = Array.fold_left ( + ) 0 t.crash_dropped_matrix

let crash_dropped_by_node t node =
  let total = ref 0 in
  for src = 0 to t.nodes - 1 do
    total := !total + t.crash_dropped_matrix.((src * t.nodes) + node)
  done;
  !total

let channel_entries t =
  Array.fold_left (fun acc tbl -> acc + Hashtbl.length tbl) 0 t.last_delivery
  + Hashtbl.length t.link_free

let reset t =
  Array.iter Hashtbl.reset t.last_delivery;
  Hashtbl.reset t.link_free;
  Array.fill t.injection_free 0 (Array.length t.injection_free) 0;
  Array.fill t.packets_by_src 0 (Array.length t.packets_by_src) 0;
  Array.fill t.bytes_by_src 0 (Array.length t.bytes_by_src) 0;
  Array.fill t.dropped_by_src 0 (Array.length t.dropped_by_src) 0;
  Array.fill t.duplicated_by_src 0 (Array.length t.duplicated_by_src) 0;
  Array.fill t.crash_dropped_matrix 0 (Array.length t.crash_dropped_matrix) 0
