type window = {
  node : int;
  from_ns : Simcore.Time.t;
  until_ns : Simcore.Time.t;
}

type plan = {
  seed : int;
  drop : float;
  duplicate : float;
  jitter_ns : int;
  crashes : window list;
}

let check_prob name p =
  if not (p >= 0. && p <= 1.) then
    invalid_arg (Printf.sprintf "Faults.plan: %s must be in [0, 1]" name)

let plan ?(seed = 1) ?(drop = 0.) ?(duplicate = 0.) ?(jitter_ns = 0)
    ?(crashes = []) () =
  check_prob "drop" drop;
  check_prob "duplicate" duplicate;
  if jitter_ns < 0 then invalid_arg "Faults.plan: negative jitter";
  List.iter
    (fun w ->
      if w.until_ns <= w.from_ns then
        invalid_arg "Faults.plan: empty crash window";
      if w.node < 0 then invalid_arg "Faults.plan: bad crash node")
    crashes;
  { seed; drop; duplicate; jitter_ns; crashes }

let none = { seed = 1; drop = 0.; duplicate = 0.; jitter_ns = 0; crashes = [] }

let is_fault_free p =
  p.drop = 0. && p.duplicate = 0. && p.jitter_ns = 0 && p.crashes = []

type t = {
  t_plan : plan;
  (* The live crash windows. Seeded from the plan, but mutable: a
     recovery manager re-times them through recorded decision points
     (schedule-explorer choice vectors) before any packet flies, so the
     crash instant replays deterministically instead of being baked into
     the plan. *)
  mutable t_crashes : window list;
  (* per-(src, dst) channel streams; the seed of each is a pure function
     of (plan seed, src, dst), so creation order is irrelevant to the
     draws. When the node count is known at creation every stream is
     preallocated eagerly — a parallel run then never mutates the table,
     only the (per-channel, single-writer) streams inside it. *)
  channels : (int * int, Simcore.Rng.t) Hashtbl.t;
}

let channel_seed p ~src ~dst = p.seed + (src * 2_000_003) + (dst * 7_919)

let create ?nodes p =
  let channels = Hashtbl.create 64 in
  (match nodes with
  | None -> ()
  | Some n ->
      for src = 0 to n - 1 do
        for dst = 0 to n - 1 do
          if src <> dst then
            Hashtbl.add channels (src, dst)
              (Simcore.Rng.create ~seed:(channel_seed p ~src ~dst))
        done
      done);
  { t_plan = p; t_crashes = p.crashes; channels }

let plan_of t = t.t_plan
let crash_windows t = t.t_crashes

let set_crashes t ws =
  List.iter
    (fun w ->
      if w.until_ns <= w.from_ns then
        invalid_arg "Faults.set_crashes: empty crash window";
      if w.node < 0 then invalid_arg "Faults.set_crashes: bad crash node")
    ws;
  t.t_crashes <- ws

let crashed t ~node ~at =
  List.exists
    (fun w -> w.node = node && at >= w.from_ns && at < w.until_ns)
    t.t_crashes

type fate = {
  f_drop : bool;
  f_duplicate : bool;
  f_jitter : int;
  f_dup_jitter : int;
}

let channel_rng t ~src ~dst =
  match Hashtbl.find_opt t.channels (src, dst) with
  | Some rng -> rng
  | None ->
      (* Lazy fallback for states created without a node count — the
         stream is the same pure function of (seed, src, dst) either
         way. Only reached on the sequential engine. *)
      let rng = Simcore.Rng.create ~seed:(channel_seed t.t_plan ~src ~dst) in
      Hashtbl.add t.channels (src, dst) rng;
      rng

let fate t ~src ~dst =
  let p = t.t_plan in
  let rng = channel_rng t ~src ~dst in
  (* Draw every component unconditionally so the channel stream advances
     by a fixed amount per packet: fates stay aligned even if the plan's
     rates differ between otherwise-identical runs. *)
  let d = Simcore.Rng.float rng 1.0 in
  let dup = Simcore.Rng.float rng 1.0 in
  let draw_jitter () =
    let j = Simcore.Rng.int rng (p.jitter_ns + 1) in
    if p.jitter_ns > 0 then j else 0
  in
  let jit = draw_jitter () in
  let dup_jit = 1 + draw_jitter () in
  {
    f_drop = d < p.drop;
    f_duplicate = dup < p.duplicate;
    f_jitter = jit;
    f_dup_jitter = dup_jit;
  }

let pp_plan ppf p =
  Format.fprintf ppf
    "faults{seed=%d drop=%.3f dup=%.3f jitter=%dns crashes=%d}" p.seed p.drop
    p.duplicate p.jitter_ns (List.length p.crashes)
