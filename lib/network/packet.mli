(** A network packet: routing header plus an opaque payload.

    The payload type is a parameter so that this layer stays independent of
    the runtime's message representation. [size_bytes] covers the payload
    only; the link model adds the routing header itself. *)

type 'a t = {
  src : int;  (** sending node *)
  dst : int;  (** destination node *)
  size_bytes : int;  (** payload size on the wire *)
  payload : 'a;
}

val make : src:int -> dst:int -> size_bytes:int -> 'a -> 'a t

val header_bytes : int
(** Fixed per-packet routing header (routing info + handler word). *)

val batch_frame_bytes : int
(** Per-frame length word inside an aggregated (multi-frame) packet.
    An aggregated frame costs this instead of a full {!header_bytes} —
    the per-frame saving that message coalescing banks on the wire. *)

val wire_bytes : 'a t -> int
(** Total bytes a packet occupies on a link. *)

val pp : Format.formatter -> 'a t -> unit
