type 'a t = { src : int; dst : int; size_bytes : int; payload : 'a }

let make ~src ~dst ~size_bytes payload =
  if size_bytes < 0 then invalid_arg "Packet.make: negative size";
  { src; dst; size_bytes; payload }

(* Two words of routing information plus the self-dispatching handler
   address, as in the paper's 4-word minimal message (header + one-word
   argument). *)
let header_bytes = 12

(* One length word per frame inside a multi-frame (aggregated) packet:
   the batch shares a single routing header, but the receiver must be
   able to split the payload back into frames. *)
let batch_frame_bytes = 4

let wire_bytes p = header_bytes + p.size_bytes

let pp ppf p =
  Format.fprintf ppf "packet %d->%d (%dB)" p.src p.dst p.size_bytes
