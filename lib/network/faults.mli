(** Deterministic fault injection for the message fabric.

    The paper assumes the AP1000's network "preserves transmission order"
    and never loses a message. This module describes what happens when
    that assumption is dropped: a {e fault plan} gives per-packet drop and
    duplication probabilities, an extra-delay jitter bound (applied {e
    after} the fabric's FIFO clamp, so jittered packets may genuinely
    reorder), and scripted per-node crash/recover windows during which a
    node's network interface is down (every packet to or from it is
    lost — its CPU keeps running, as the faults model the network, not
    the processor state).

    All randomness is drawn from per-(src, dst)-channel splitmix64
    streams derived arithmetically from the plan seed, so a run is a pure
    function of (plan, send sequence): the same seed gives the same fault
    pattern regardless of hashtable iteration order or unrelated
    traffic. *)

type window = {
  node : int;  (** the crashed node *)
  from_ns : Simcore.Time.t;  (** crash instant (inclusive) *)
  until_ns : Simcore.Time.t;  (** recovery instant (exclusive) *)
}

type plan = {
  seed : int;
  drop : float;  (** per-packet loss probability, in [0, 1] *)
  duplicate : float;  (** per-packet duplication probability, in [0, 1] *)
  jitter_ns : int;  (** extra delivery delay, uniform in [0, jitter_ns] *)
  crashes : window list;
}

val plan :
  ?seed:int ->
  ?drop:float ->
  ?duplicate:float ->
  ?jitter_ns:int ->
  ?crashes:window list ->
  unit ->
  plan
(** Builds a plan; every fault defaults to off and [seed] to 1.
    Raises [Invalid_argument] on probabilities outside [0, 1], negative
    jitter, or an empty crash window. *)

val none : plan
(** The all-zero plan: no drops, no duplicates, no jitter, no crashes.
    Layers treat it exactly like "no fault plan at all", so configuring
    it leaves runs bit-identical to the fault-free build. *)

val is_fault_free : plan -> bool

type t
(** Instantiated plan state: the per-channel random streams. *)

val create : ?nodes:int -> plan -> t
(** Instantiates the plan. With [~nodes] every per-channel stream is
    preallocated eagerly (each stream's seed is a pure function of the
    plan seed and the channel endpoints, so eager creation draws
    nothing); a parallel run then never mutates the channel table, only
    the single-writer streams inside it. Without [~nodes] streams are
    created lazily on first use — sequential engine only. *)

val plan_of : t -> plan
(** The plan this state was created from. Its [crashes] field is the
    {e original} script; {!crash_windows} is the live set. *)

val crash_windows : t -> window list
(** The crash windows currently in force (the plan's, unless
    {!set_crashes} replaced them). *)

val set_crashes : t -> window list -> unit
(** Replaces the live crash windows. The recovery manager uses this to
    re-time scripted crashes through recorded decision points before
    traffic starts — the crash instant then replays from the choice
    vector rather than from raw randomness. Only sound before any
    packet whose fate depends on the old windows has been sent.
    Raises [Invalid_argument] on an empty window or a negative node. *)

val crashed : t -> node:int -> at:Simcore.Time.t -> bool
(** Is [node]'s network interface down at time [at]? *)

type fate = {
  f_drop : bool;
  f_duplicate : bool;
  f_jitter : int;  (** extra delay for the (first) delivered copy *)
  f_dup_jitter : int;  (** extra delay of the duplicate beyond the first *)
}

val fate : t -> src:int -> dst:int -> fate
(** Draws the next per-packet fate from the (src, dst) channel stream.
    Crash windows are {e not} consulted here — they depend on the send
    and arrival times, which only the fabric knows. *)

val pp_plan : Format.formatter -> plan -> unit
