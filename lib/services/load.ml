module Engine = Machine.Engine

type Machine.Am.payload += P_load of { load : int; ma_depth : int }

type t = {
  system : Core.System.t;
  handler : int;
  (* tables.(n) maps peer node id -> last load heard by node n *)
  tables : (int, int) Hashtbl.t array;
  (* ma_tables.(n) maps peer node id -> last activation-queue depth *)
  ma_tables : (int, int) Hashtbl.t array;
  (* A sharded Stats cell, not a mutable field: [broadcast] runs from
     application contexts on any node, so under [System.run_parallel]
     a plain counter would be racy. *)
  c_broadcasts : Simcore.Stats.cell;
}

let local_load_of_node node =
  Machine.Node.runq_size node + Machine.Node.inbox_size node

let local_load t ~node =
  local_load_of_node (Engine.node (Core.System.machine t.system) node)

(* The deepest multiactive activation queue of any object on the node:
   work that is *behind one object's admission control*, as opposed to
   [local_load]'s node-wide queues. A node can be hot because one
   serialized object is a bottleneck (high depth, modest load) or hot
   because it simply hosts a lot of work (high load, zero depth) —
   migration policies need the distinction to know whether moving the
   object would help. *)
let local_ma_depth t ~node =
  Multiactive.max_queue_depth_on_node (Core.System.rt t.system node)

let broadcast_node t ~node:my_id =
  let machine = Core.System.machine t.system in
  let node = Engine.node machine my_id in
  let load = local_load_of_node node in
  let ma_depth = local_ma_depth t ~node:my_id in
  let cost = Engine.cost machine in
  List.iter
    (fun peer ->
      Engine.charge machine node cost.Machine.Cost_model.msg_setup_send;
      Engine.send_am machine ~src:node ~dst:peer ~handler:t.handler
        ~size_bytes:8
        (P_load { load; ma_depth }))
    (Network.Topology.neighbors (Engine.topology machine) my_id);
  Simcore.Stats.bump t.c_broadcasts

let broadcast t ctx = broadcast_node t ~node:(Core.Ctx.node_id ctx)

(* Application progress, measured positively: object sends and creations
   the program itself performed. Gossip traffic never bumps these
   counters, so the timer cannot keep itself alive. Any machine-level
   "busy" test (runnable thunks, inbox depth, reliable-layer in-flight
   frames) reads the gossip's own messages and lagging acks as activity
   and ticks forever; this test can only err towards stopping early
   (app frames in the fabric with no new sends yet), which merely
   leaves load views stale. *)
let app_progress t =
  let get = Simcore.Stats.get (Core.System.stats t.system) in
  get "send.remote" + get "send.local.dormant" + get "send.local.active"
  + get "send.local.inlined"
  + get "send.local.naive_buffered"
  + get "send.local.depth_limited"
  + get "send.local.restore" + get "send.local.fault" + get "create.local"
  + get "create.remote"

(* Rounds with a zero progress delta before the timer gives up. One
   quiet round is not enough — a retransmission gap can stall the
   application across a round. *)
let max_quiet_rounds = 4

(* Periodic auto-gossip (rt_config.gossip_interval_ns): one synchronized
   round per interval, every node re-broadcasting its load. Once rounds
   stop observing application progress they stop re-arming, so
   [Engine.run] terminates once the application drains.

   The rounds are paced on the *busiest node's clock*, not on the
   engine's event clock: a hybrid-scheduled cascade advances one node's
   clock by milliseconds inside a single event, during which the event
   clock barely moves. Pacing on the event clock would run thousands of
   gossip rounds per application slice — flooding the busy node's inbox
   and charging it send overhead each round while it makes no progress.
   Re-arming at [max node clock + interval] yields one round per
   interval of actual computational progress. *)
let arm_auto_gossip t =
  let machine = Core.System.machine t.system in
  let interval =
    (Core.System.config t.system).Core.Kernel.gossip_interval_ns
  in
  if interval > 0 then begin
    let p = Engine.node_count machine in
    let rec tick last_progress quiet () =
      let progress = app_progress t in
      let quiet = if progress = last_progress then quiet + 1 else 0 in
      if quiet < max_quiet_rounds then begin
        let round = ref (Engine.now machine) in
        for i = 0 to p - 1 do
          round := max !round (Machine.Node.now (Engine.node machine i))
        done;
        for i = 0 to p - 1 do
          Simcore.Clock.advance_to
            (Machine.Node.clock (Engine.node machine i))
            !round;
          broadcast_node t ~node:i
        done;
        Engine.schedule_at machine ~time:(!round + interval)
          (tick progress quiet)
      end
    in
    Engine.schedule_at machine ~time:interval (tick 0 0)
  end

let attach system =
  let machine = Core.System.machine system in
  let tables =
    Array.init (Engine.node_count machine) (fun _ -> Hashtbl.create 8)
  in
  let ma_tables =
    Array.init (Engine.node_count machine) (fun _ -> Hashtbl.create 8)
  in
  let handle _machine node am =
    match am.Machine.Am.payload with
    | P_load { load; ma_depth } ->
        let me = Machine.Node.id node in
        Hashtbl.replace tables.(me) am.Machine.Am.src load;
        Hashtbl.replace ma_tables.(me) am.Machine.Am.src ma_depth
    | _ -> assert false
  in
  let handler =
    Engine.register_handler machine Machine.Am.Service ~name:"load-gossip"
      handle
  in
  let t =
    {
      system;
      handler;
      tables;
      ma_tables;
      c_broadcasts =
        Simcore.Stats.counter (Core.System.stats system) "gossip.broadcasts";
    }
  in
  arm_auto_gossip t;
  t

let known_load_opt t ~node ~about =
  if node = about then Some (local_load t ~node)
  else Hashtbl.find_opt t.tables.(node) about

let known_load t ~node ~about =
  Option.value (known_load_opt t ~node ~about) ~default:0

let known_ma_depth_opt t ~node ~about =
  if node = about then Some (local_ma_depth t ~node)
  else Hashtbl.find_opt t.ma_tables.(node) about

let known_ma_depth t ~node ~about =
  Option.value (known_ma_depth_opt t ~node ~about) ~default:0

(* One line per node: its own instantaneous load and deepest
   activation queue, plus what its neighbours last told it. *)
let report t =
  let machine = Core.System.machine t.system in
  let buf = Buffer.create 256 in
  for n = 0 to Engine.node_count machine - 1 do
    Buffer.add_string buf
      (Printf.sprintf "node %d: load=%d ma_depth=%d" n (local_load t ~node:n)
         (local_ma_depth t ~node:n));
    let peers =
      List.sort compare
        (Network.Topology.neighbors (Engine.topology machine) n)
    in
    List.iter
      (fun p ->
        match known_load_opt t ~node:n ~about:p with
        | None -> Buffer.add_string buf (Printf.sprintf " [%d:?]" p)
        | Some l ->
            Buffer.add_string buf
              (Printf.sprintf " [%d:%d/%d]" p l (known_ma_depth t ~node:n ~about:p)))
      peers;
    Buffer.add_char buf '\n'
  done;
  Buffer.contents buf

let pick_least_for t ~node:my_id =
  let machine = Core.System.machine t.system in
  let candidates =
    my_id :: Network.Topology.neighbors (Engine.topology machine) my_id
  in
  (* A neighbour we never heard from is *unknown*, not load 0 — reading
     it as 0 would make every cold node a magnet for all placements. The
     fold falls back to self when no neighbour has gossiped yet. *)
  let best =
    List.fold_left
      (fun acc candidate ->
        match known_load_opt t ~node:my_id ~about:candidate with
        | None -> acc
        | Some load -> min acc (load, candidate))
      (local_load t ~node:my_id, my_id)
      candidates
  in
  snd best

let pick_least t ctx = pick_least_for t ~node:(Core.Ctx.node_id ctx)

let deferred_placement () =
  let cell = ref None in
  let pick my_id =
    match !cell with
    | Some t -> pick_least_for t ~node:my_id
    | None -> my_id
  in
  (Core.Kernel.Custom_policy pick, fun t -> cell := Some t)

let broadcasts t = Simcore.Stats.read t.c_broadcasts
