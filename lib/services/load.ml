module Engine = Machine.Engine

type Machine.Am.payload += P_load of { load : int }

type t = {
  system : Core.System.t;
  handler : int;
  (* tables.(n) maps peer node id -> last load heard by node n *)
  tables : (int, int) Hashtbl.t array;
  mutable broadcasts : int;
}

let local_load_of_node node =
  Machine.Node.runq_size node + Machine.Node.inbox_size node

let local_load t ~node =
  local_load_of_node (Engine.node (Core.System.machine t.system) node)

let broadcast_node t ~node:my_id =
  let machine = Core.System.machine t.system in
  let node = Engine.node machine my_id in
  let load = local_load_of_node node in
  let cost = Engine.cost machine in
  List.iter
    (fun peer ->
      Engine.charge machine node cost.Machine.Cost_model.msg_setup_send;
      Engine.send_am machine ~src:node ~dst:peer ~handler:t.handler
        ~size_bytes:4 (P_load { load }))
    (Network.Topology.neighbors (Engine.topology machine) my_id);
  t.broadcasts <- t.broadcasts + 1

let broadcast t ctx = broadcast_node t ~node:(Core.Ctx.node_id ctx)

(* Application progress, measured positively: object sends and creations
   the program itself performed. Gossip traffic never bumps these
   counters, so the timer cannot keep itself alive. Any machine-level
   "busy" test (runnable thunks, inbox depth, reliable-layer in-flight
   frames) reads the gossip's own messages and lagging acks as activity
   and ticks forever; this test can only err towards stopping early
   (app frames in the fabric with no new sends yet), which merely
   leaves load views stale. *)
let app_progress t =
  let get = Simcore.Stats.get (Core.System.stats t.system) in
  get "send.remote" + get "send.local.dormant" + get "send.local.active"
  + get "send.local.inlined"
  + get "send.local.naive_buffered"
  + get "send.local.depth_limited"
  + get "send.local.restore" + get "send.local.fault" + get "create.local"
  + get "create.remote"

(* Rounds with a zero progress delta before the timer gives up. One
   quiet round is not enough — a retransmission gap can stall the
   application across a round. *)
let max_quiet_rounds = 4

(* Periodic auto-gossip (rt_config.gossip_interval_ns): one synchronized
   round per interval, every node re-broadcasting its load. Once rounds
   stop observing application progress they stop re-arming, so
   [Engine.run] terminates once the application drains.

   The rounds are paced on the *busiest node's clock*, not on the
   engine's event clock: a hybrid-scheduled cascade advances one node's
   clock by milliseconds inside a single event, during which the event
   clock barely moves. Pacing on the event clock would run thousands of
   gossip rounds per application slice — flooding the busy node's inbox
   and charging it send overhead each round while it makes no progress.
   Re-arming at [max node clock + interval] yields one round per
   interval of actual computational progress. *)
let arm_auto_gossip t =
  let machine = Core.System.machine t.system in
  let interval =
    (Core.System.config t.system).Core.Kernel.gossip_interval_ns
  in
  if interval > 0 then begin
    let p = Engine.node_count machine in
    let rec tick last_progress quiet () =
      let progress = app_progress t in
      let quiet = if progress = last_progress then quiet + 1 else 0 in
      if quiet < max_quiet_rounds then begin
        let round = ref (Engine.now machine) in
        for i = 0 to p - 1 do
          round := max !round (Machine.Node.now (Engine.node machine i))
        done;
        for i = 0 to p - 1 do
          Simcore.Clock.advance_to
            (Machine.Node.clock (Engine.node machine i))
            !round;
          broadcast_node t ~node:i
        done;
        Engine.schedule_at machine ~time:(!round + interval)
          (tick progress quiet)
      end
    in
    Engine.schedule_at machine ~time:interval (tick 0 0)
  end

let attach system =
  let machine = Core.System.machine system in
  let tables =
    Array.init (Engine.node_count machine) (fun _ -> Hashtbl.create 8)
  in
  let handle _machine node am =
    match am.Machine.Am.payload with
    | P_load { load } ->
        Hashtbl.replace tables.(Machine.Node.id node) am.Machine.Am.src load
    | _ -> assert false
  in
  let handler =
    Engine.register_handler machine Machine.Am.Service ~name:"load-gossip"
      handle
  in
  let t = { system; handler; tables; broadcasts = 0 } in
  arm_auto_gossip t;
  t

let known_load_opt t ~node ~about =
  if node = about then Some (local_load t ~node)
  else Hashtbl.find_opt t.tables.(node) about

let known_load t ~node ~about =
  Option.value (known_load_opt t ~node ~about) ~default:0

let pick_least_for t ~node:my_id =
  let machine = Core.System.machine t.system in
  let candidates =
    my_id :: Network.Topology.neighbors (Engine.topology machine) my_id
  in
  (* A neighbour we never heard from is *unknown*, not load 0 — reading
     it as 0 would make every cold node a magnet for all placements. The
     fold falls back to self when no neighbour has gossiped yet. *)
  let best =
    List.fold_left
      (fun acc candidate ->
        match known_load_opt t ~node:my_id ~about:candidate with
        | None -> acc
        | Some load -> min acc (load, candidate))
      (local_load t ~node:my_id, my_id)
      candidates
  in
  snd best

let pick_least t ctx = pick_least_for t ~node:(Core.Ctx.node_id ctx)

let deferred_placement () =
  let cell = ref None in
  let pick my_id =
    match !cell with
    | Some t -> pick_least_for t ~node:my_id
    | None -> my_id
  in
  (Core.Kernel.Custom_policy pick, fun t -> cell := Some t)

let broadcasts t = t.broadcasts
