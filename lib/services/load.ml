module Engine = Machine.Engine

type Machine.Am.payload += P_load of { load : int }

type t = {
  system : Core.System.t;
  handler : int;
  (* tables.(n) maps peer node id -> last load heard by node n *)
  tables : (int, int) Hashtbl.t array;
  mutable broadcasts : int;
}

let local_load_of_node node =
  Machine.Node.runq_size node + Machine.Node.inbox_size node

let attach system =
  let machine = Core.System.machine system in
  let tables =
    Array.init (Engine.node_count machine) (fun _ -> Hashtbl.create 8)
  in
  let handle _machine node am =
    match am.Machine.Am.payload with
    | P_load { load } ->
        Hashtbl.replace tables.(Machine.Node.id node) am.Machine.Am.src load
    | _ -> assert false
  in
  let handler =
    Engine.register_handler machine Machine.Am.Service ~name:"load-gossip"
      handle
  in
  { system; handler; tables; broadcasts = 0 }

let local_load t ~node =
  local_load_of_node (Engine.node (Core.System.machine t.system) node)

let broadcast t ctx =
  let machine = Core.System.machine t.system in
  let node = Core.Ctx.node ctx in
  let my_id = Machine.Node.id node in
  let load = local_load_of_node node in
  let cost = Engine.cost machine in
  List.iter
    (fun peer ->
      Engine.charge machine node cost.Machine.Cost_model.msg_setup_send;
      Engine.send_am machine ~src:node ~dst:peer ~handler:t.handler
        ~size_bytes:4 (P_load { load }))
    (Network.Topology.neighbors (Engine.topology machine) my_id);
  t.broadcasts <- t.broadcasts + 1

let known_load t ~node ~about =
  if node = about then local_load t ~node
  else Option.value (Hashtbl.find_opt t.tables.(node) about) ~default:0

let pick_least_for t ~node:my_id =
  let machine = Core.System.machine t.system in
  let candidates =
    my_id :: Network.Topology.neighbors (Engine.topology machine) my_id
  in
  let weigh candidate = (known_load t ~node:my_id ~about:candidate, candidate) in
  let best =
    List.fold_left
      (fun acc candidate -> min acc (weigh candidate))
      (weigh my_id) candidates
  in
  snd best

let pick_least t ctx = pick_least_for t ~node:(Core.Ctx.node_id ctx)

let deferred_placement () =
  let cell = ref None in
  let pick my_id =
    match !cell with
    | Some t -> pick_least_for t ~node:my_id
    | None -> my_id
  in
  (Core.Kernel.Custom_policy pick, fun t -> cell := Some t)

let broadcasts t = t.broadcasts
