(** Machine-readable benchmark artifacts.

    Every bench section persists its gate-relevant numbers as a flat
    JSON object ([BENCH_<section>.json]) so the perf trajectory is
    tracked PR-over-PR by CI instead of living only in console logs. *)

type v = Int of int | Float of float | Bool of bool | Str of string

val write : path:string -> (string * v) list -> unit
(** Writes the fields as a pretty-printed JSON object, overwriting any
    existing file. Field order is preserved. *)

val read_int_field : path:string -> key:string -> int option
(** Minimal reader for regression gates: the integer value of a
    top-level field written by {!write}, or [None] if the file is
    unreadable or the key is absent. *)
