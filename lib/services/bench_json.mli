(** Machine-readable benchmark artifacts.

    Every bench section persists its gate-relevant numbers as a flat
    JSON object ([BENCH_<section>.json]) so the perf trajectory is
    tracked PR-over-PR by CI instead of living only in console logs. *)

type v = Int of int | Float of float | Bool of bool | Str of string

val write : path:string -> (string * v) list -> unit
(** Writes the fields as a pretty-printed JSON object, overwriting any
    existing file. Field order is preserved. *)

val perf_fields :
  wall_clock_s:float -> events:int -> domains:int -> (string * v) list
(** The standard performance triple every bench section appends to its
    artifact: [wall_clock_s] (host seconds the section's simulation
    took), [events_per_sec] (engine events processed per host second; 0
    when the clock is too coarse to divide by), and [domains] (1 for
    sequential sections). Keeping the shape uniform lets CI trend
    simulator throughput across sections without per-section parsing. *)

val read_int_field : path:string -> key:string -> int option
(** Minimal reader for regression gates: the integer value of a
    top-level field written by {!write}, or [None] if the file is
    unreadable or the key is absent. *)
