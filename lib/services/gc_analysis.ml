module Value = Core.Value
module Kernel = Core.Kernel

type report = {
  total : int;
  embryos : int;
  forwarding_stubs : int;
  exported : int;
  local_only : int;
  in_flight_refs : int;
}

let rec addrs_of_value acc = function
  | Value.Addr a -> a :: acc
  | Value.List vs | Value.Tuple vs -> List.fold_left addrs_of_value acc vs
  | Value.Unit | Value.Bool _ | Value.Int _ | Value.Float _ | Value.Str _ ->
      acc

let addrs_of_msg acc (m : Core.Message.t) =
  let acc = List.fold_left addrs_of_value acc m.args in
  let acc =
    List.fold_left
      (fun acc (r : Core.Message.gc_ref) -> r.Core.Message.gr_addr :: acc)
      acc m.gc_refs
  in
  match m.reply with Some a -> a :: acc | None -> acc

let addrs_of_obj (obj : Kernel.obj) =
  let acc = Array.fold_left addrs_of_value [] obj.state in
  let acc = List.fold_left addrs_of_value acc obj.pending_ctor_args in
  Queue.fold addrs_of_msg acc obj.mq

(* Addresses riding in not-yet-dispatched active messages. A reference
   in flight pins its object exactly like one held on another node: a
   compactor that moved the object could not patch it. Covers the
   runtime's own payloads (object messages, creation requests); service
   payloads registered by other subsystems are opaque here but carry
   their references as manifests once a distributed GC is attached. *)
let addrs_in_flight machine node =
  let acc = ref [] in
  Machine.Node.inbox_iter
    (fun (am : Machine.Am.t) ->
      match am.Machine.Am.payload with
      | Core.Protocol.P_obj_msg { msg; _ } -> acc := addrs_of_msg !acc msg
      | Core.Protocol.P_create { args; gc_refs; _ } ->
          acc := List.fold_left addrs_of_value !acc args;
          acc :=
            List.fold_left
              (fun acc (r : Core.Message.gc_ref) ->
                r.Core.Message.gr_addr :: acc)
              !acc gc_refs
      | _ -> ())
    (Machine.Engine.node machine node);
  !acc

let is_forwarding_stub (obj : Kernel.obj) =
  match obj.vftp.Kernel.vft_kind with
  | Kernel.Vft_forward _ -> true
  | _ -> false

let survey system =
  let n = Core.System.node_count system in
  let machine = Core.System.machine system in
  let exported_set = Hashtbl.create 1024 in
  let total = ref 0 and embryos = ref 0 and stubs = ref 0 in
  let in_flight = ref 0 in
  for node = 0 to n - 1 do
    let rt = Core.System.rt system node in
    Hashtbl.iter
      (fun _slot (obj : Kernel.obj) ->
        incr total;
        if Option.is_none obj.cls then incr embryos;
        if is_forwarding_stub obj then incr stubs;
        List.iter
          (fun (a : Value.addr) ->
            if a.node <> node then
              Hashtbl.replace exported_set (a.node, a.slot) ())
          (addrs_of_obj obj))
      rt.Kernel.objects;
    List.iter
      (fun (a : Value.addr) ->
        incr in_flight;
        Hashtbl.replace exported_set (a.node, a.slot) ())
      (addrs_in_flight machine node)
  done;
  let exported = ref 0 in
  for node = 0 to n - 1 do
    let rt = Core.System.rt system node in
    Hashtbl.iter
      (fun _slot (obj : Kernel.obj) ->
        (* Membership goes by the object's canonical mail address, not
           its table slot: an immigrant is keyed by a physical slot that
           means nothing to the holders of its address. Forwarding stubs
           are a category of their own — "exported" would be vacuous
           (they exist only because the address escaped) and
           "local-only/movable" would be wrong (they must keep their
           canonical slot). *)
        if not (is_forwarding_stub obj) then
          if
            Hashtbl.mem exported_set
              (obj.Kernel.self.Value.node, obj.Kernel.self.Value.slot)
          then incr exported)
      rt.Kernel.objects
  done;
  {
    total = !total;
    embryos = !embryos;
    forwarding_stubs = !stubs;
    exported = !exported;
    local_only = !total - !stubs - !exported;
    in_flight_refs = !in_flight;
  }

let pp_report ppf r =
  Format.fprintf ppf
    "objects: %d (embryos %d, forwarding stubs %d) — exported %d, local-only \
     (movable) %d; %d in-flight reference(s)"
    r.total r.embryos r.forwarding_stubs r.exported r.local_only
    r.in_flight_refs
