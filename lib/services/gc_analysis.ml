module Value = Core.Value
module Kernel = Core.Kernel

type report = { total : int; embryos : int; exported : int; local_only : int }

let rec addrs_of_value acc = function
  | Value.Addr a -> a :: acc
  | Value.List vs | Value.Tuple vs -> List.fold_left addrs_of_value acc vs
  | Value.Unit | Value.Bool _ | Value.Int _ | Value.Float _ | Value.Str _ ->
      acc

let addrs_of_obj (obj : Kernel.obj) =
  let acc = Array.fold_left addrs_of_value [] obj.state in
  Queue.fold
    (fun acc (m : Core.Message.t) ->
      let acc = List.fold_left addrs_of_value acc m.args in
      match m.reply with Some a -> a :: acc | None -> acc)
    acc obj.mq

let survey system =
  let n = Core.System.node_count system in
  let exported_set = Hashtbl.create 1024 in
  let total = ref 0 and embryos = ref 0 in
  for node = 0 to n - 1 do
    let rt = Core.System.rt system node in
    Hashtbl.iter
      (fun _slot (obj : Kernel.obj) ->
        incr total;
        if Option.is_none obj.cls then incr embryos;
        List.iter
          (fun (a : Value.addr) ->
            if a.node <> node then Hashtbl.replace exported_set (a.node, a.slot) ())
          (addrs_of_obj obj))
      rt.Kernel.objects
  done;
  let exported = ref 0 in
  for node = 0 to n - 1 do
    let rt = Core.System.rt system node in
    Hashtbl.iter
      (fun slot _obj ->
        if Hashtbl.mem exported_set (node, slot) then incr exported)
      rt.Kernel.objects
  done;
  {
    total = !total;
    embryos = !embryos;
    exported = !exported;
    local_only = !total - !exported;
  }

let pp_report ppf r =
  Format.fprintf ppf
    "objects: %d (embryos %d) — exported %d, local-only (movable) %d" r.total
    r.embryos r.exported r.local_only
