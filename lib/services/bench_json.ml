type v = Int of int | Float of float | Bool of bool | Str of string

let escape s =
  let b = Buffer.create (String.length s) in
  String.iter
    (function
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let pp_v oc = function
  | Int i -> Printf.fprintf oc "%d" i
  | Float f ->
      (* %g would print 1e+06, which some consumers reject; %f keeps it
         a plain JSON number. *)
      Printf.fprintf oc "%.3f" f
  | Bool b -> Printf.fprintf oc "%b" b
  | Str s -> Printf.fprintf oc "\"%s\"" (escape s)

let write ~path fields =
  let oc = open_out path in
  Printf.fprintf oc "{\n";
  List.iteri
    (fun i (k, value) ->
      Printf.fprintf oc "  \"%s\": %a%s\n" (escape k) pp_v value
        (if i = List.length fields - 1 then "" else ","))
    fields;
  Printf.fprintf oc "}\n";
  close_out oc

let perf_fields ~wall_clock_s ~events ~domains =
  let eps =
    if wall_clock_s > 0. then float_of_int events /. wall_clock_s else 0.
  in
  [
    ("wall_clock_s", Float wall_clock_s);
    ("events_per_sec", Float eps);
    ("domains", Int domains);
  ]

let read_int_field ~path ~key =
  match open_in path with
  | exception Sys_error _ -> None
  | ic ->
      let needle = Printf.sprintf "\"%s\":" key in
      let rec scan () =
        match input_line ic with
        | exception End_of_file -> None
        | line -> (
            match String.index_opt line ':' with
            | Some _ when
                (let t = String.trim line in
                 String.length t >= String.length needle
                 && String.sub t 0 (String.length needle) = needle) ->
                let t = String.trim line in
                let v =
                  String.sub t (String.length needle)
                    (String.length t - String.length needle)
                  |> String.trim
                in
                let v =
                  match String.index_opt v ',' with
                  | Some i -> String.sub v 0 i
                  | None -> v
                in
                int_of_string_opt v
            | _ -> scan ())
      in
      let r = scan () in
      close_in ic;
      r
