(** Aggregation report for runs with message coalescing enabled.

    Summarises what the per-destination aggregation layer did over a
    run: how many multi-frame batches left versus bypass singles, how
    full the batches were, which triggers flushed them, and how much
    control traffic (DGC riders, acknowledgements) travelled for free on
    batches that were leaving anyway. The headline of a coalescing
    bench: packets saved and overhead amortised, in the terms of the
    paper's message-overhead accounting. *)

type node_row = {
  node : int;
  batches : int;  (** aggregated packets this node shipped *)
  singles : int;  (** bypass sends (empty buffer, idle port) *)
  acks_piggybacked : int;
      (** standalone acks this node cancelled because outgoing data
          carried the cumulative ack instead (fault plans only) *)
}

type report = {
  per_node : node_row array;
  total_batches : int;
  total_singles : int;
  total_frames : int;  (** frames carried inside batches *)
  total_riders : int;  (** control AMs appended by the piggyback hook *)
  flush_size : int;  (** batches flushed by the byte/frame threshold *)
  flush_idle : int;  (** flushed because the scheduler went idle *)
  flush_deadline : int;  (** flushed by the age deadline *)
  flush_ack : int;  (** flushed to carry a pending acknowledgement *)
  flush_credit : int;  (** flushed when a withheld credit returned *)
  acks_piggybacked : int;
  still_buffered : int;
      (** frames parked in open buffers at survey time (0 at clean
          quiescence) *)
  occupancy : Simcore.Histogram.t;  (** frames-per-batch distribution *)
}

val survey : Core.System.t -> report option
(** [None] when the machine runs without aggregation. *)

val mean_occupancy : report -> float
(** Average frames per batch (0 when no batch was sent). *)

val pp : Format.formatter -> report -> unit
(** Totals plus flush-cause breakdown and a per-node table (nodes with
    nothing to report are elided). *)
