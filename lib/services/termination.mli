(** Ack-combining termination detection for diffusing computations.

    The paper's parallel N-queens "uses ... acknowledgement messages
    [that] trace back the search tree for the termination detection"
    (Section 6.2). This module factors that pattern: an object that fans
    work out to [expected] children records how many acknowledgements are
    still outstanding and combines the integer payloads; when the last
    ack arrives the combined total is handed back so the object can ack
    its own parent — a Dijkstra–Scholten-style deficit counter distributed
    over the application's spawn tree. *)

val begin_wait :
  Core.Ctx.t -> pending_slot:int -> acc_slot:int -> expected:int -> unit
(** Initialises the two state slots before fanning out [expected]
    children. [expected] must be positive. *)

val record_ack :
  Core.Ctx.t -> pending_slot:int -> acc_slot:int -> count:int -> int option
(** Accounts one acknowledgement carrying [count]. Returns [Some total]
    when it was the last outstanding one. *)

val pending : Core.Ctx.t -> pending_slot:int -> int
(** Outstanding acknowledgements (0 when idle or finished). *)
