module Engine = Machine.Engine

type node_row = {
  node : int;
  drops : int;
  dups : int;
  retransmits : int;
  dup_discards : int;
  acks_sent : int;
  crashes : int;
  restarts : int;
  crash_drops : int;
  rto : Simcore.Histogram.t;
}

type report = {
  per_node : node_row array;
  total_drops : int;
  total_dups : int;
  total_retransmits : int;
  total_dup_discards : int;
  total_acks : int;
  total_crashes : int;
  total_crash_drops : int;
  in_flight : int;
}

let survey sys =
  let machine = Core.System.machine sys in
  match Engine.reliable machine with
  | None -> None
  | Some rel ->
      let n = Engine.node_count machine in
      let per_node =
        Array.init n (fun node ->
            {
              node;
              drops = Engine.dropped_by_src machine node;
              dups = Engine.duplicated_by_src machine node;
              retransmits = Machine.Reliable.node_retransmits rel node;
              dup_discards = Machine.Reliable.node_dup_discards rel node;
              acks_sent = Machine.Reliable.node_acks_sent rel node;
              crashes = Engine.node_crash_count machine node;
              restarts = Engine.node_incarnation machine node;
              crash_drops = Engine.crash_dropped_by_node machine node;
              rto = Machine.Reliable.rto_histogram rel node;
            })
      in
      let sum f = Array.fold_left (fun acc r -> acc + f r) 0 per_node in
      Some
        {
          per_node;
          total_drops = sum (fun r -> r.drops);
          total_dups = sum (fun r -> r.dups);
          total_retransmits = sum (fun r -> r.retransmits);
          total_dup_discards = sum (fun r -> r.dup_discards);
          total_acks = sum (fun r -> r.acks_sent);
          total_crashes = sum (fun r -> r.crashes);
          total_crash_drops = sum (fun r -> r.crash_drops);
          in_flight = Engine.reliable_in_flight machine;
        }

let row_is_boring r =
  r.drops = 0 && r.dups = 0 && r.retransmits = 0 && r.dup_discards = 0
  && r.acks_sent = 0 && r.crashes = 0

let pp ppf r =
  Format.fprintf ppf "@[<v>";
  Format.fprintf ppf
    "faults: %d dropped, %d duplicated; repair: %d retransmit(s), %d dup \
     discard(s), %d standalone ack(s); %d still in flight@,"
    r.total_drops r.total_dups r.total_retransmits r.total_dup_discards
    r.total_acks r.in_flight;
  if r.total_crashes > 0 then
    Format.fprintf ppf
      "crashes: %d node crash(es), %d packet(s) lost to down windows@,"
      r.total_crashes r.total_crash_drops;
  Array.iter
    (fun row ->
      if not (row_is_boring row) then begin
        Format.fprintf ppf
          "  node %2d: drop %d dup %d rexmit %d dup-discard %d ack %d"
          row.node row.drops row.dups row.retransmits row.dup_discards
          row.acks_sent;
        if row.crashes > 0 then
          Format.fprintf ppf " crash %d/restart %d (crash-drop %d)"
            row.crashes row.restarts row.crash_drops;
        if Simcore.Histogram.count row.rto > 0 then
          Format.fprintf ppf " (rto %a)" Simcore.Histogram.pp row.rto;
        Format.fprintf ppf "@,"
      end)
    r.per_node;
  Format.fprintf ppf "@]"
