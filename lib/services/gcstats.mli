(** Distributed-GC report, the {!Migstats} counterpart for the
    collector.

    Reads only the machine's global statistics counters ("dgc.*",
    maintained by [lib/dgc]) and the per-node kernel state
    ([slots_recycled]), so this module does not depend on the collector
    library itself and can summarise any run. *)

type node_row = {
  node : int;
  reclaimed : int;  (** objects freed on this node *)
  stubs_freed : int;  (** remote-reference stub entries reclaimed *)
  restocked : int;  (** freed slots returned to the allocation pool *)
  dec_entries : int;  (** decrements this node batched outward *)
  slots_recycled : int;
      (** allocations served from the recycled pool (kernel counter —
          includes reply-slot reuse, not just collector restocks) *)
}

type report = {
  per_node : node_row array;
  sweeps : int;
  sweeps_skipped : int;  (** rounds refused by the sweep safety gate *)
  total_reclaimed : int;
  total_stubs_freed : int;
  total_restocked : int;
  dec_msgs : int;  (** batched decrement messages on the wire *)
  total_dec_entries : int;
      (** decrements those messages carried; the ratio to [dec_msgs] is
          the batching (piggyback) factor *)
  grants : int;  (** owner-side weight mints *)
  splits : int;  (** exports served by halving a local stub's weight *)
  indirections : int;  (** exports served by an indirection entry *)
  debits : int;  (** asynchronous owner-weight mints (weightless export) *)
  recalls : int;  (** recall-home requests for drained migrated objects *)
  unstubs : int;  (** forwarding stubs dismantled after reclaim *)
}

val survey : Core.System.t -> report option
(** [None] when no collector ever swept on this system. *)

val pp : Format.formatter -> report -> unit
(** Totals lines plus a per-node table (boring nodes elided). *)
