(** Migration report, the {!Faultstats} counterpart for the object
    migration subsystem.

    Reads only the machine's global statistics counters ("migrate.*",
    maintained by [lib/migrate]) and the per-node object tables (live
    forwarding stubs), so this module does not depend on the migration
    library itself and can be attached to any run. *)

type node_row = {
  node : int;
  stubs : int;  (** forwarding stubs still resident on this node *)
  forwards : int;  (** messages this node's stubs re-posted over the run *)
}

type report = {
  per_node : node_row array;
  migrations : int;  (** freezes shipped ("migrate.out") *)
  installs : int;  (** records materialised ("migrate.in") *)
  total_forwards : int;
  updates : int;  (** stub / location-cache retargetings applied *)
  held : int;  (** messages the reorder gate had to hold for FIFO *)
  limbo : int;  (** messages that beat their install to a new home *)
  dup_drops : int;
  colocated : int;
      (** remote-addressed sends that found their object physically
          local — the payoff of affinity migration *)
}

val survey : Core.System.t -> report option
(** [None] when no migration ever happened on this system. *)

val pp : Format.formatter -> report -> unit
(** Totals line plus a per-node table (boring nodes elided). *)
