(** Degradation report for runs under a fault plan.

    Aggregates, per node, what the fault layer did to the fabric (packets
    destroyed or duplicated at injection) and what the {!Machine.Reliable}
    protocol had to do about it (retransmissions and the RTO backoff depth
    they reached, duplicate discards, standalone acks). The totals are the
    headline of a degradation bench: how much repair traffic a given drop
    rate costs, and whether anything was lost for good ([in_flight]). *)

type node_row = {
  node : int;
  drops : int;  (** packets from this node destroyed by the fault layer *)
  dups : int;  (** packets from this node duplicated by the fault layer *)
  retransmits : int;  (** frames this node had to resend on timeout *)
  dup_discards : int;  (** duplicate frames this node received and dropped *)
  acks_sent : int;  (** standalone (non-piggybacked) acks this node sent *)
  crashes : int;  (** times this node was crash-injected *)
  restarts : int;  (** times it came back (its incarnation number) *)
  crash_drops : int;
      (** packets lost because {e this} node's interface was down,
          whichever endpoint sent them *)
  rto : Simcore.Histogram.t;
      (** RTO in force at each of this node's retransmissions *)
}

type report = {
  per_node : node_row array;
  total_drops : int;
  total_dups : int;
  total_retransmits : int;
  total_dup_discards : int;
  total_acks : int;
  total_crashes : int;
  total_crash_drops : int;
  in_flight : int;
      (** unacknowledged messages at survey time; nonzero at quiescence
          means messages were lost for good *)
}

val survey : Core.System.t -> report option
(** [None] when the machine runs without a (non-trivial) fault plan. *)

val pp : Format.formatter -> report -> unit
(** Totals line plus a per-node table (nodes with nothing to report are
    elided). *)
