module Engine = Machine.Engine

type t = {
  machine : Engine.t;
  mutable slice_log : (int * Simcore.Time.t * Simcore.Time.t) list;
  mutable slice_count : int;
  mutable delivery_count : int;
  mutable batch_count : int;
  mutable batched_frames : int;
  mutable crash_count : int;
  mutable restart_count : int;
  traffic : (int * int, int ref) Hashtbl.t;
  busy : int array;  (** accumulated busy ns per node *)
  mutable hash : int;  (** running digest of every observation, in order *)
}

(* Fold one observation field into the running digest (splitmix-style
   finalizer over the accumulated state). Two runs share a hash iff the
   engine emitted the same observations in the same order with the same
   timestamps — the bit-identical-replay check. *)
let mix h v =
  let h = h lxor (v * 0x1E3779B97F4A7C15) in
  let h = (h lxor (h lsr 30)) * 0x3F58476D1CE4E5B9 in
  let h = (h lxor (h lsr 27)) * 0x14D049BB133111EB in
  h lxor (h lsr 31)

let attach_machine machine =
  let t =
    {
      machine;
      slice_log = [];
      slice_count = 0;
      delivery_count = 0;
      batch_count = 0;
      batched_frames = 0;
      crash_count = 0;
      restart_count = 0;
      traffic = Hashtbl.create 64;
      busy = Array.make (Engine.node_count machine) 0;
      hash = 0;
    }
  in
  Engine.set_observer machine
    (Some
       (function
       | Engine.Obs_slice { node; t_start; t_end } ->
           t.slice_log <- (node, t_start, t_end) :: t.slice_log;
           t.slice_count <- t.slice_count + 1;
           t.busy.(node) <- t.busy.(node) + (t_end - t_start);
           t.hash <- mix (mix (mix (mix t.hash 1) node) t_start) t_end
       | Engine.Obs_deliver { time; src; dst } ->
           t.delivery_count <- t.delivery_count + 1;
           let key = (src, dst) in
           (match Hashtbl.find_opt t.traffic key with
           | Some r -> incr r
           | None -> Hashtbl.add t.traffic key (ref 1));
           t.hash <- mix (mix (mix (mix t.hash 2) time) src) dst
       | Engine.Obs_batch { time; src; dst; frames } ->
           t.batch_count <- t.batch_count + 1;
           t.batched_frames <- t.batched_frames + frames;
           t.hash <-
             mix (mix (mix (mix (mix t.hash 3) time) src) dst) frames
       | Engine.Obs_crash { time; node; incarnation } ->
           t.crash_count <- t.crash_count + 1;
           t.hash <- mix (mix (mix (mix t.hash 4) time) node) incarnation
       | Engine.Obs_restart { time; node; incarnation } ->
           t.restart_count <- t.restart_count + 1;
           t.hash <- mix (mix (mix (mix t.hash 5) time) node) incarnation));
  t

let attach system = attach_machine (Core.System.machine system)
let detach t = Engine.set_observer t.machine None
let hash t = t.hash
let slices t = t.slice_count
let deliveries t = t.delivery_count
let batches t = t.batch_count
let batched_frames t = t.batched_frames
let crashes t = t.crash_count
let restarts t = t.restart_count

let busy_fraction t ~node =
  let makespan = Engine.elapsed t.machine in
  if makespan = 0 then 0.
  else float_of_int t.busy.(node) /. float_of_int makespan

let render ?(width = 64) ?(max_rows = 16) t =
  let makespan = max 1 (Engine.elapsed t.machine) in
  let nodes = min max_rows (Engine.node_count t.machine) in
  let buckets = Array.make_matrix nodes width 0 in
  let bucket_ns = max 1 (makespan / width) in
  List.iter
    (fun (node, t0, t1) ->
      if node < nodes then begin
        let b0 = min (width - 1) (t0 / bucket_ns) in
        let b1 = min (width - 1) (t1 / bucket_ns) in
        for b = b0 to b1 do
          (* credit the overlap of [t0,t1) with bucket b *)
          let lo = max t0 (b * bucket_ns) and hi = min t1 ((b + 1) * bucket_ns) in
          if hi > lo then buckets.(node).(b) <- buckets.(node).(b) + (hi - lo)
        done
      end)
    t.slice_log;
  let buf = Buffer.create ((nodes + 2) * (width + 16)) in
  Buffer.add_string buf
    (Printf.sprintf "timeline: %s makespan, %d slices, %d deliveries%s\n"
       (Format.asprintf "%a" Simcore.Time.pp makespan)
       t.slice_count t.delivery_count
       (if t.batch_count = 0 then ""
        else
          Printf.sprintf " (%d frames in %d batches)" t.batched_frames
            t.batch_count));
  for node = 0 to nodes - 1 do
    Buffer.add_string buf (Printf.sprintf "%4d |" node);
    for b = 0 to width - 1 do
      let frac = float_of_int buckets.(node).(b) /. float_of_int bucket_ns in
      Buffer.add_char buf
        (if frac <= 0.01 then ' ' else if frac < 0.5 then '.' else '#')
    done;
    Buffer.add_string buf
      (Printf.sprintf "| %3.0f%%\n" (100. *. busy_fraction t ~node));
  done;
  if Engine.node_count t.machine > nodes then
    Buffer.add_string buf
      (Printf.sprintf "(%d more nodes not shown)\n"
         (Engine.node_count t.machine - nodes));
  Buffer.contents buf

let message_matrix t =
  Hashtbl.fold (fun (src, dst) r acc -> (src, dst, !r) :: acc) t.traffic []
  |> List.sort (fun (_, _, a) (_, _, b) -> compare b a)
