(** Crash-recovery report: checkpoint volume, log-replay work, recovery
    wall-clock and crash-window losses, per machine and per node.

    Reads the ["recover.*"] counters the recovery manager keeps in the
    machine's stats registry (this layer cannot depend on the [Recover]
    library itself) plus the engine's crash accounting, so it works for
    any run — [survey] answers [None] when no recovery manager was
    attached (no checkpoints, no crashes). *)

type node_row = {
  node : int;
  crashes : int;
  incarnation : int;  (** restarts survived; 0 = original *)
  crash_drops : int;  (** packets lost to this node's down windows *)
}

type report = {
  crashes : int;
  restarts : int;
  checkpoints : int;
  checkpoint_bytes : int;
  checkpoints_deferred : int;  (** checkpoint timer fired away from a safe point *)
  replayed : int;  (** messages re-dispatched from the log *)
  inbox_rebuilt : int;  (** undispatched deliveries restored to inboxes *)
  recovery_ns : int;  (** total simulated recovery wall-clock *)
  suppressed_sends : int;  (** sends swallowed during replay *)
  dispatch_unlogged : int;
      (** dispatches the delivery log never saw — always 0 when the
          manager was attached before any traffic *)
  dropped_while_down : int;  (** frames that reached a dead interface *)
  crash_drops : int;  (** packets the fabric lost to down windows *)
  per_node : node_row array;
}

val survey : Core.System.t -> report option
val survey_machine : Machine.Engine.t -> report option

val pp : Format.formatter -> report -> unit
