module Ctx = Core.Ctx
module Value = Core.Value

let begin_wait ctx ~pending_slot ~acc_slot ~expected =
  if expected <= 0 then invalid_arg "Termination.begin_wait: expected <= 0";
  Ctx.set ctx pending_slot (Value.int expected);
  Ctx.set ctx acc_slot (Value.int 0)

let record_ack ctx ~pending_slot ~acc_slot ~count =
  let pending = Value.to_int (Ctx.get ctx pending_slot) in
  if pending <= 0 then invalid_arg "Termination.record_ack: no ack expected";
  let acc = Value.to_int (Ctx.get ctx acc_slot) + count in
  Ctx.set ctx acc_slot (Value.int acc);
  let pending = pending - 1 in
  Ctx.set ctx pending_slot (Value.int pending);
  if pending = 0 then Some acc else None

let pending ctx ~pending_slot = Value.to_int (Ctx.get ctx pending_slot)
