(** Execution timeline: records engine observations during a run and
    renders a per-node busy/idle chart plus traffic summaries — the
    observability companion to the paper's utilization claims. *)

type t

val attach : Core.System.t -> t
(** Starts recording (replaces any previous observer on the machine). *)

val attach_machine : Machine.Engine.t -> t
(** As {!attach}, for a bare machine without a language runtime. *)

val detach : t -> unit

val slices : t -> int
val deliveries : t -> int

val hash : t -> int
(** Order-sensitive digest of every observation recorded so far (event
    kind, timestamps, endpoints). Two runs produce equal hashes iff the
    engine emitted the same observation stream — the check behind
    "replaying a recorded schedule reproduces the run bit-identically". *)

val batches : t -> int
(** Aggregated multi-frame packets observed (0 with coalescing off). *)

val batched_frames : t -> int
(** Frames that arrived inside those batches. *)

val crashes : t -> int
(** Node crashes observed (fabric-injected kills). *)

val restarts : t -> int
(** Node restarts observed; at a clean end equals {!crashes}. *)

val busy_fraction : t -> node:int -> float
(** Recorded busy time of a node divided by the machine's makespan. *)

val render : ?width:int -> ?max_rows:int -> t -> string
(** A text gantt chart: one row per node (earliest [max_rows] nodes),
    [width] time buckets; a bucket shows how busy the node was in it
    ([' '] idle, ['.'] <50%, ['#'] >=50%). Includes a traffic line. *)

val message_matrix : t -> (int * int * int) list
(** Aggregated (src, dst, packets) traffic pairs, heaviest first. *)
