module Value = Core.Value
module Kernel = Core.Kernel
module Message = Core.Message

type result = {
  examined : int;
  moved : int;
  pinned : int;
  references_patched : int;
}

let zero = { examined = 0; moved = 0; pinned = 0; references_patched = 0 }

let add a b =
  {
    examined = a.examined + b.examined;
    moved = a.moved + b.moved;
    pinned = a.pinned + b.pinned;
    references_patched = a.references_patched + b.references_patched;
  }

(* Rewrite every local address in [v] through [remap]. *)
let rec patch_value remap patched (v : Value.t) : Value.t =
  match v with
  | Value.Addr a -> (
      match Hashtbl.find_opt remap (a.Value.node, a.Value.slot) with
      | Some slot' ->
          incr patched;
          Value.Addr { a with Value.slot = slot' }
      | None -> v)
  | Value.List vs -> Value.List (List.map (patch_value remap patched) vs)
  | Value.Tuple vs -> Value.Tuple (List.map (patch_value remap patched) vs)
  | Value.Unit | Value.Bool _ | Value.Int _ | Value.Float _ | Value.Str _ -> v

let patch_message remap patched (m : Message.t) =
  {
    m with
    Message.args = List.map (patch_value remap patched) m.Message.args;
    reply =
      Option.map
        (fun (a : Value.addr) ->
          match Hashtbl.find_opt remap (a.Value.node, a.Value.slot) with
          | Some slot' ->
              incr patched;
              { a with Value.slot = slot' }
          | None -> a)
        m.Message.reply;
  }

let movable ~node (obj : Kernel.obj) =
  (not obj.exported)
  && Option.is_some obj.cls
  && Option.is_none obj.blocked
  && (not obj.in_sched_q)
  (* Migration artefacts are pinned: a forwarding stub must keep its
     canonical slot (remote senders resolve it), and an immigrant's
     [self] names its birth node, so the (node, slot) remap below would
     not describe it. *)
  && obj.self.Value.node = node
  && match obj.vftp.Kernel.vft_kind with
     | Kernel.Vft_forward _ -> false
     | _ -> true

let compact sys ~node =
  let rt = Core.System.rt sys node in
  let machine = Core.System.machine sys in
  let node_handle = Machine.Engine.node machine node in
  (* Phase 1: relocate movable objects to fresh slots. *)
  let remap = Hashtbl.create 64 in
  let examined = ref 0 and moved = ref 0 and pinned = ref 0 in
  let victims =
    Hashtbl.fold
      (fun slot obj acc ->
        incr examined;
        if movable ~node obj then (slot, obj) :: acc
        else begin
          incr pinned;
          acc
        end)
      rt.Kernel.objects []
  in
  List.iter
    (fun (slot, (obj : Kernel.obj)) ->
      let slot' = Core.Sched.alloc_slot rt in
      Hashtbl.remove rt.Kernel.objects slot;
      Hashtbl.replace rt.Kernel.objects slot' obj;
      Hashtbl.replace remap (node, slot) slot';
      (* The object's own idea of its address moves with it. *)
      (* copy cost: proportional to its state box *)
      Machine.Engine.charge machine node_handle
        (8 + (2 * Array.length obj.state));
      incr moved)
    victims;
  List.iter
    (fun (_, (obj : Kernel.obj)) ->
      match Hashtbl.find_opt remap (node, obj.self.Value.slot) with
      | Some slot' ->
          obj.self <- { obj.self with Value.slot = slot' };
          obj.phys_slot <- slot'
      | None -> ())
    victims;
  (* Phase 2: patch every local reference — state boxes, buffered
     messages, pending constructor arguments. *)
  let patched = ref 0 in
  Hashtbl.iter
    (fun _slot (obj : Kernel.obj) ->
      Array.iteri
        (fun i v -> obj.state.(i) <- patch_value remap patched v)
        obj.state;
      obj.pending_ctor_args <-
        List.map (patch_value remap patched) obj.pending_ctor_args;
      let buffered = Queue.length obj.mq in
      for _ = 1 to buffered do
        let m = Queue.pop obj.mq in
        Queue.push (patch_message remap patched m) obj.mq
      done)
    rt.Kernel.objects;
  {
    examined = !examined;
    moved = !moved;
    pinned = !pinned;
    references_patched = !patched;
  }

(* --- Sweep: freeing unreferenced local-only objects --- *)

type skip_reason =
  | In_dispatch
  | Preempt_pending of int
  | Blocked_contexts of int
  | Chunk_waiters of int

type sweep_report = {
  swept_examined : int;
  freed : int;
  retained : int;
  marked : (int, unit) Hashtbl.t;
}

type sweep_outcome = Swept of sweep_report | Skipped of skip_reason

type sweep_hooks = {
  remote_live : Kernel.obj -> bool;
  on_remote_ref : Value.addr -> unit;
  on_local_ref : Value.addr -> unit;
  extra_roots : unit -> Value.t list;
  on_free : Kernel.obj -> unit;
  recycle : bool;
}

let default_hooks =
  {
    remote_live = (fun o -> o.Kernel.exported);
    on_remote_ref = ignore;
    on_local_ref = ignore;
    extra_roots = (fun () -> []);
    on_free = ignore;
    recycle = true;
  }

let sweep ?(hooks = default_hooks) sys ~node =
  let rt = Core.System.rt sys node in
  (* Safety gate. A suspended context is an effect continuation: the
     OCaml frames it closes over can hold addresses no heap trace sees,
     so sweeping under one (or mid-dispatch, or with a preempted method
     waiting to resume) could free a live object. Objects merely sitting
     in the scheduling queue are safe — they are roots below. *)
  let blocked_ctxs =
    Hashtbl.fold
      (fun _ (o : Kernel.obj) n -> if Option.is_some o.blocked then n + 1 else n)
      rt.Kernel.objects 0
  in
  if rt.Kernel.depth > 0 then Skipped In_dispatch
  else if rt.Kernel.preempt_pending > 0 then
    Skipped (Preempt_pending rt.Kernel.preempt_pending)
  else if blocked_ctxs > 0 then Skipped (Blocked_contexts blocked_ctxs)
  else if rt.Kernel.chunk_waiters <> [] then
    Skipped (Chunk_waiters (List.length rt.Kernel.chunk_waiters))
  else begin
    let machine = Core.System.machine sys in
    let node_handle = Machine.Engine.node machine node in
    let cost = Machine.Engine.cost machine in
    (* Mark phase. Roots: pinned objects, embryos (a reserved chunk the
       requester will initialise), queued or scheduled objects, anything
       remote-referenced (per the attached policy; plain [exported] when
       no distributed GC refines it), immigrants (their liveness is
       governed by their home node's counts), forwarding stubs. *)
    let marked : (int, unit) Hashtbl.t = Hashtbl.create 64 in
    let work = Queue.create () in
    let mark_obj key obj =
      if not (Hashtbl.mem marked key) then begin
        Hashtbl.replace marked key ();
        Queue.push obj work
      end
    in
    let rec trace_value (v : Value.t) =
      match v with
      | Value.Addr a ->
          if a.Value.node = node then begin
            hooks.on_local_ref a;
            match Hashtbl.find_opt rt.Kernel.objects a.Value.slot with
            | Some o -> mark_obj a.Value.slot o
            | None -> ()
          end
          else hooks.on_remote_ref a
      | Value.List vs | Value.Tuple vs -> List.iter trace_value vs
      | Value.Unit | Value.Bool _ | Value.Int _ | Value.Float _ | Value.Str _
        -> ()
    in
    let trace_msg (m : Message.t) =
      List.iter trace_value m.Message.args;
      Option.iter (fun a -> trace_value (Value.Addr a)) m.Message.reply;
      List.iter
        (fun (r : Message.gc_ref) -> trace_value (Value.Addr r.Message.gr_addr))
        m.Message.gc_refs
    in
    let is_root (obj : Kernel.obj) =
      obj.Kernel.gc_pinned
      || Option.is_none obj.cls
      || obj.in_sched_q
      || (not (Queue.is_empty obj.mq))
      || Option.is_some obj.blocked
      || hooks.remote_live obj
      || obj.self.Value.node <> node
      ||
      match obj.vftp.Kernel.vft_kind with
      | Kernel.Vft_forward _ -> true
      | _ -> false
    in
    let examined = ref 0 in
    Hashtbl.iter
      (fun key obj ->
        incr examined;
        Machine.Engine.charge machine node_handle
          cost.Machine.Cost_model.gc_sweep_obj;
        if is_root obj then mark_obj key obj)
      rt.Kernel.objects;
    List.iter trace_value (hooks.extra_roots ());
    while not (Queue.is_empty work) do
      let obj = Queue.pop work in
      Array.iter trace_value obj.Kernel.state;
      List.iter trace_value obj.Kernel.pending_ctor_args;
      Queue.iter trace_msg obj.Kernel.mq
    done;
    (* Sweep phase: [on_free] runs while the record is still registered,
       so the policy hook can inspect (and unregister) related state. *)
    let victims =
      Hashtbl.fold
        (fun key obj acc ->
          if Hashtbl.mem marked key then acc else (key, obj) :: acc)
        rt.Kernel.objects []
    in
    List.iter
      (fun (key, (obj : Kernel.obj)) ->
        Machine.Engine.charge machine node_handle
          cost.Machine.Cost_model.gc_reclaim;
        let words =
          match obj.cls with
          | Some c when c.Kernel.cls_id = rt.Kernel.shared.Kernel.reply_cls.Kernel.cls_id
            -> 6
          | _ -> 8 + Array.length obj.state
        in
        Machine.Node.heap_free_words node_handle words;
        hooks.on_free obj;
        Hashtbl.remove rt.Kernel.objects key;
        if hooks.recycle then Core.Sched.recycle_slot rt key)
      victims;
    let freed = List.length victims in
    Swept { swept_examined = !examined; freed; retained = !examined - freed; marked }
  end

let compact_all sys =
  let n = Core.System.node_count sys in
  let rec loop node acc =
    if node = n then acc else loop (node + 1) (add acc (compact sys ~node))
  in
  loop 0 zero

let pp_result ppf r =
  Format.fprintf ppf "examined %d, moved %d, pinned %d, patched %d reference(s)"
    r.examined r.moved r.pinned r.references_patched
