module Value = Core.Value
module Kernel = Core.Kernel
module Message = Core.Message

type result = {
  examined : int;
  moved : int;
  pinned : int;
  references_patched : int;
}

let zero = { examined = 0; moved = 0; pinned = 0; references_patched = 0 }

let add a b =
  {
    examined = a.examined + b.examined;
    moved = a.moved + b.moved;
    pinned = a.pinned + b.pinned;
    references_patched = a.references_patched + b.references_patched;
  }

(* Rewrite every local address in [v] through [remap]. *)
let rec patch_value remap patched (v : Value.t) : Value.t =
  match v with
  | Value.Addr a -> (
      match Hashtbl.find_opt remap (a.Value.node, a.Value.slot) with
      | Some slot' ->
          incr patched;
          Value.Addr { a with Value.slot = slot' }
      | None -> v)
  | Value.List vs -> Value.List (List.map (patch_value remap patched) vs)
  | Value.Tuple vs -> Value.Tuple (List.map (patch_value remap patched) vs)
  | Value.Unit | Value.Bool _ | Value.Int _ | Value.Float _ | Value.Str _ -> v

let patch_message remap patched (m : Message.t) =
  {
    m with
    Message.args = List.map (patch_value remap patched) m.Message.args;
    reply =
      Option.map
        (fun (a : Value.addr) ->
          match Hashtbl.find_opt remap (a.Value.node, a.Value.slot) with
          | Some slot' ->
              incr patched;
              { a with Value.slot = slot' }
          | None -> a)
        m.Message.reply;
  }

let movable ~node (obj : Kernel.obj) =
  (not obj.exported)
  && Option.is_some obj.cls
  && Option.is_none obj.blocked
  && (not obj.in_sched_q)
  (* Migration artefacts are pinned: a forwarding stub must keep its
     canonical slot (remote senders resolve it), and an immigrant's
     [self] names its birth node, so the (node, slot) remap below would
     not describe it. *)
  && obj.self.Value.node = node
  && match obj.vftp.Kernel.vft_kind with
     | Kernel.Vft_forward _ -> false
     | _ -> true

let compact sys ~node =
  let rt = Core.System.rt sys node in
  let machine = Core.System.machine sys in
  let node_handle = Machine.Engine.node machine node in
  (* Phase 1: relocate movable objects to fresh slots. *)
  let remap = Hashtbl.create 64 in
  let examined = ref 0 and moved = ref 0 and pinned = ref 0 in
  let victims =
    Hashtbl.fold
      (fun slot obj acc ->
        incr examined;
        if movable ~node obj then (slot, obj) :: acc
        else begin
          incr pinned;
          acc
        end)
      rt.Kernel.objects []
  in
  List.iter
    (fun (slot, (obj : Kernel.obj)) ->
      let slot' = Core.Sched.alloc_slot rt in
      Hashtbl.remove rt.Kernel.objects slot;
      Hashtbl.replace rt.Kernel.objects slot' obj;
      Hashtbl.replace remap (node, slot) slot';
      (* The object's own idea of its address moves with it. *)
      (* copy cost: proportional to its state box *)
      Machine.Engine.charge machine node_handle
        (8 + (2 * Array.length obj.state));
      incr moved)
    victims;
  List.iter
    (fun (_, (obj : Kernel.obj)) ->
      match Hashtbl.find_opt remap (node, obj.self.Value.slot) with
      | Some slot' ->
          obj.self <- { obj.self with Value.slot = slot' };
          obj.phys_slot <- slot'
      | None -> ())
    victims;
  (* Phase 2: patch every local reference — state boxes, buffered
     messages, pending constructor arguments. *)
  let patched = ref 0 in
  Hashtbl.iter
    (fun _slot (obj : Kernel.obj) ->
      Array.iteri
        (fun i v -> obj.state.(i) <- patch_value remap patched v)
        obj.state;
      obj.pending_ctor_args <-
        List.map (patch_value remap patched) obj.pending_ctor_args;
      let buffered = Queue.length obj.mq in
      for _ = 1 to buffered do
        let m = Queue.pop obj.mq in
        Queue.push (patch_message remap patched m) obj.mq
      done)
    rt.Kernel.objects;
  {
    examined = !examined;
    moved = !moved;
    pinned = !pinned;
    references_patched = !patched;
  }

let compact_all sys =
  let n = Core.System.node_count sys in
  let rec loop node acc =
    if node = n then acc else loop (node + 1) (add acc (compact sys ~node))
  in
  loop 0 zero

let pp_result ppf r =
  Format.fprintf ppf "examined %d, moved %d, pinned %d, patched %d reference(s)"
    r.examined r.moved r.pinned r.references_patched
