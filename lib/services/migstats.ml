module Engine = Machine.Engine
module Kernel = Core.Kernel

type node_row = {
  node : int;
  stubs : int;
  forwards : int;
}

type report = {
  per_node : node_row array;
  migrations : int;
  installs : int;
  total_forwards : int;
  updates : int;
  held : int;
  limbo : int;
  dup_drops : int;
  colocated : int;
}

let live_stubs rt =
  Hashtbl.fold
    (fun _ (obj : Kernel.obj) acc ->
      match obj.Kernel.vftp.Kernel.vft_kind with
      | Kernel.Vft_forward _ -> acc + 1
      | _ -> acc)
    rt.Kernel.objects 0

let survey sys =
  let machine = Core.System.machine sys in
  let stats = Engine.stats machine in
  let get name = Simcore.Stats.get stats name in
  let migrations = get "migrate.out" in
  if migrations = 0 && get "migrate.in" = 0 then None
  else
    let n = Engine.node_count machine in
    let per_node =
      Array.init n (fun node ->
          {
            node;
            stubs = live_stubs (Core.System.rt sys node);
            forwards = get (Printf.sprintf "migrate.forward.node%d" node);
          })
    in
    Some
      {
        per_node;
        migrations;
        installs = get "migrate.in";
        total_forwards = get "migrate.forward";
        updates = get "migrate.update";
        held = get "migrate.held";
        limbo = get "migrate.limbo";
        dup_drops = get "migrate.dup_drop";
        colocated = get "migrate.colocated";
      }

let row_is_boring r = r.stubs = 0 && r.forwards = 0

let pp ppf r =
  Format.fprintf ppf "@[<v>";
  Format.fprintf ppf
    "migration: %d move(s), %d install(s); %d forwarded hop(s), %d cache \
     update(s); gate: %d held, %d limbo'd, %d dup(s) dropped; %d co-located \
     send(s)@,"
    r.migrations r.installs r.total_forwards r.updates r.held r.limbo
    r.dup_drops r.colocated;
  Array.iter
    (fun row ->
      if not (row_is_boring row) then
        Format.fprintf ppf "  node %2d: %d live stub(s), %d forward(s)@,"
          row.node row.stubs row.forwards)
    r.per_node;
  Format.fprintf ppf "@]"
