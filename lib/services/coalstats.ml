module Engine = Machine.Engine
module Coalesce = Machine.Coalesce

type node_row = {
  node : int;
  batches : int;
  singles : int;
  acks_piggybacked : int;
}

type report = {
  per_node : node_row array;
  total_batches : int;
  total_singles : int;
  total_frames : int;
  total_riders : int;
  flush_size : int;
  flush_idle : int;
  flush_deadline : int;
  flush_ack : int;
  flush_credit : int;
  acks_piggybacked : int;
  still_buffered : int;
  occupancy : Simcore.Histogram.t;
}

let survey sys =
  let machine = Core.System.machine sys in
  match Engine.coalesce_stats machine with
  | None -> None
  | Some s ->
      let n = Engine.node_count machine in
      let rel = Engine.reliable machine in
      let ack_pig node =
        match rel with
        | Some r -> Machine.Reliable.node_acks_piggybacked r node
        | None -> 0
      in
      let per_node =
        Array.init n (fun node ->
            {
              node;
              batches = s.Coalesce.s_node_batches.(node);
              singles = s.Coalesce.s_node_singles.(node);
              acks_piggybacked = ack_pig node;
            })
      in
      Some
        {
          per_node;
          total_batches = s.Coalesce.s_batches;
          total_singles = s.Coalesce.s_singles;
          total_frames = s.Coalesce.s_frames;
          total_riders = s.Coalesce.s_riders;
          flush_size = s.Coalesce.s_flush_size;
          flush_idle = s.Coalesce.s_flush_idle;
          flush_deadline = s.Coalesce.s_flush_deadline;
          flush_ack = s.Coalesce.s_flush_ack;
          flush_credit = s.Coalesce.s_flush_credit;
          acks_piggybacked =
            Array.fold_left
              (fun acc (row : node_row) -> acc + row.acks_piggybacked)
              0 per_node;
          still_buffered = s.Coalesce.s_buffered;
          occupancy = s.Coalesce.s_occupancy;
        }

let mean_occupancy r =
  if r.total_batches = 0 then 0.
  else float_of_int r.total_frames /. float_of_int r.total_batches

let row_is_boring row =
  row.batches = 0 && row.singles = 0 && row.acks_piggybacked = 0

let pp ppf r =
  Format.fprintf ppf "@[<v>";
  Format.fprintf ppf
    "coalescing: %d batch(es) carrying %d frame(s) (%.1f/batch), %d bypass \
     single(s), %d rider(s), %d ack(s) piggybacked@,"
    r.total_batches r.total_frames (mean_occupancy r) r.total_singles
    r.total_riders r.acks_piggybacked;
  Format.fprintf ppf
    "flush causes: size %d, idle %d, deadline %d, ack %d, credit %d%s@,"
    r.flush_size r.flush_idle r.flush_deadline r.flush_ack r.flush_credit
    (if r.still_buffered = 0 then ""
     else Printf.sprintf "; %d frame(s) STILL BUFFERED" r.still_buffered);
  if Simcore.Histogram.count r.occupancy > 0 then
    Format.fprintf ppf "frames per batch: %a@," Simcore.Histogram.pp
      r.occupancy;
  Array.iter
    (fun row ->
      if not (row_is_boring row) then
        Format.fprintf ppf "  node %2d: batches %d singles %d acks-piggy %d@,"
          row.node row.batches row.singles row.acks_piggybacked)
    r.per_node;
  Format.fprintf ppf "@]"
