(* Crash-recovery report: the "recover.*" counters the recovery manager
   maintains in the machine's stats registry, joined with the engine's
   per-node crash/incarnation accounting and the fabric's crash-window
   losses. Lives in the services layer (which cannot see the Recover
   library — it sits above machine, below recover in the dependency
   order), so everything here goes through stats names and engine
   accessors. *)

module Engine = Machine.Engine

type node_row = {
  node : int;
  crashes : int;
  incarnation : int;  (** restarts survived; 0 = original *)
  crash_drops : int;  (** packets lost to this node's down windows *)
}

type report = {
  crashes : int;
  restarts : int;
  checkpoints : int;
  checkpoint_bytes : int;
  checkpoints_deferred : int;  (** timer fired away from a safe point *)
  replayed : int;  (** messages re-dispatched from the log *)
  inbox_rebuilt : int;  (** undispatched deliveries restored to inboxes *)
  recovery_ns : int;  (** total simulated recovery wall-clock *)
  suppressed_sends : int;  (** sends swallowed during replay *)
  dispatch_unlogged : int;  (** dispatches the delivery log never saw *)
  dropped_while_down : int;  (** frames that reached a dead interface *)
  crash_drops : int;  (** packets the fabric lost to down windows *)
  per_node : node_row array;
}

let survey_machine machine =
  let stats = Engine.stats machine in
  let g name = Simcore.Stats.get stats name in
  let crashes = g "recover.crashes" and checkpoints = g "recover.ckpts" in
  if crashes = 0 && checkpoints = 0 then None
  else
    Some
      {
        crashes;
        restarts = g "recover.restarts";
        checkpoints;
        checkpoint_bytes = g "recover.ckpt_bytes";
        checkpoints_deferred = g "recover.ckpt_deferred";
        replayed = g "recover.replayed";
        inbox_rebuilt = g "recover.inbox_rebuilt";
        recovery_ns = g "recover.recovery_ns";
        suppressed_sends = g "recover.suppressed_sends";
        dispatch_unlogged = g "recover.dispatch_unlogged";
        dropped_while_down = g "recover.dropped_while_down";
        crash_drops = Engine.crash_dropped machine;
        per_node =
          Array.init (Engine.node_count machine) (fun node ->
              {
                node;
                crashes = Engine.node_crash_count machine node;
                incarnation = Engine.node_incarnation machine node;
                crash_drops = Engine.crash_dropped_by_node machine node;
              });
      }

let survey sys = survey_machine (Core.System.machine sys)

let pp ppf r =
  Format.fprintf ppf "@[<v>";
  Format.fprintf ppf
    "recovery: %d crash(es), %d restart(s); %d checkpoint(s) (%d B, %d \
     deferred)@,"
    r.crashes r.restarts r.checkpoints r.checkpoint_bytes
    r.checkpoints_deferred;
  Format.fprintf ppf
    "replay: %d message(s) re-dispatched, %d inbox deliveries rebuilt, %d \
     send(s) suppressed; recovery cost %a@,"
    r.replayed r.inbox_rebuilt r.suppressed_sends Simcore.Time.pp
    r.recovery_ns;
  Format.fprintf ppf
    "losses while down: %d packet(s) in the fabric, %d frame(s) at a dead \
     interface%s@,"
    r.crash_drops r.dropped_while_down
    (if r.dispatch_unlogged > 0 then
       Printf.sprintf "; WARNING %d unlogged dispatch(es)" r.dispatch_unlogged
     else "");
  Array.iter
    (fun (row : node_row) ->
      if row.crashes > 0 then
        Format.fprintf ppf "  node %2d: %d crash(es), incarnation %d, %d \
                            crash-window drop(s)@,"
          row.node row.crashes row.incarnation row.crash_drops)
    r.per_node;
  Format.fprintf ppf "@]"
