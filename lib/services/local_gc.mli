(** Copying/compaction of locally-referenced objects.

    Section 5.2: with [(node, pointer)] mail addresses "in general it
    would prohibit the use of a simple copying/compacting garbage
    collector, as objects cannot be moved freely. We are now developing
    an algorithm whereby objects that are only referred to locally can be
    freely copied." This module implements that algorithm on top of the
    runtime's export tracking: an object whose address never left its
    node (see [Kernel.obj.exported]) can be relocated to a fresh slot,
    patching every local reference — exactly what a copying collector
    needs to be allowed to do.

    Run it on a quiescent system (between [System.run]s); relocating an
    object with a live stack frame is not meaningful in this model. *)

type result = {
  examined : int;
  moved : int;  (** local-only objects relocated *)
  pinned : int;  (** exported objects that had to stay put *)
  references_patched : int;
}

val compact : Core.System.t -> node:int -> result
(** Relocates every movable object on the node and patches local
    references (state variables, buffered messages, pending constructor
    arguments). Charges copying costs to the node's clock. *)

val compact_all : Core.System.t -> result
(** Runs {!compact} on every node and sums the results. *)

val pp_result : Format.formatter -> result -> unit
