(** Copying/compaction of locally-referenced objects.

    Section 5.2: with [(node, pointer)] mail addresses "in general it
    would prohibit the use of a simple copying/compacting garbage
    collector, as objects cannot be moved freely. We are now developing
    an algorithm whereby objects that are only referred to locally can be
    freely copied." This module implements that algorithm on top of the
    runtime's export tracking: an object whose address never left its
    node (see [Kernel.obj.exported]) can be relocated to a fresh slot,
    patching every local reference — exactly what a copying collector
    needs to be allowed to do.

    Run it on a quiescent system (between [System.run]s); relocating an
    object with a live stack frame is not meaningful in this model. *)

type result = {
  examined : int;
  moved : int;  (** local-only objects relocated *)
  pinned : int;  (** exported objects that had to stay put *)
  references_patched : int;
}

val compact : Core.System.t -> node:int -> result
(** Relocates every movable object on the node and patches local
    references (state variables, buffered messages, pending constructor
    arguments). Charges copying costs to the node's clock. *)

val compact_all : Core.System.t -> result
(** Runs {!compact} on every node and sums the results. *)

val pp_result : Format.formatter -> result -> unit

(** {2 Sweep}

    Beyond compaction, a node can free objects outright: anything not
    reachable from the local root set and not remote-referenced is
    garbage. The trace covers state variables, buffered messages (args,
    reply destinations, reference manifests) and pending constructor
    arguments; what counts as "remote-referenced" is a policy hook, so
    the distributed collector can refine the conservative [exported] bit
    into an exact scion count. *)

type skip_reason =
  | In_dispatch  (** called from inside message dispatch *)
  | Preempt_pending of int
      (** preempted methods waiting to resume hold untraceable frames *)
  | Blocked_contexts of int
      (** suspended contexts close over stack addresses the trace cannot
          see *)
  | Chunk_waiters of int  (** creation contexts parked on empty stocks *)

type sweep_report = {
  swept_examined : int;
  freed : int;
  retained : int;
  marked : (int, unit) Hashtbl.t;
      (** table slots proven reachable — callers use this to decide about
          objects the sweep itself never frees (e.g. forwarding stubs) *)
}

type sweep_outcome = Swept of sweep_report | Skipped of skip_reason

type sweep_hooks = {
  remote_live : Core.Kernel.obj -> bool;
      (** is this object possibly referenced from off-node? (root) *)
  on_remote_ref : Core.Value.addr -> unit;
      (** called once per traced reference to a remote address *)
  on_local_ref : Core.Value.addr -> unit;
      (** called once per traced reference to a local canonical address —
          lets a caller tell a root-retained record (e.g. a forwarding
          stub, always a root) apart from one some live object actually
          points at *)
  extra_roots : unit -> Core.Value.t list;
      (** additional root values (e.g. messages parked in migration
          gates, which live outside any object's queue) *)
  on_free : Core.Kernel.obj -> unit;
      (** called for each freed object before its record is removed *)
  recycle : bool;
      (** return freed table slots to the allocator immediately; a
          distributed GC sets this false and quarantines slots instead *)
}

val default_hooks : sweep_hooks
(** [exported] as the remote-liveness test, no callbacks, immediate slot
    recycling: a purely local sweep. *)

val sweep : ?hooks:sweep_hooks -> Core.System.t -> node:int -> sweep_outcome
(** Mark/sweep over one node's object table. Refuses to run (returning
    [Skipped]) whenever a suspended or preempted context could hold
    references invisible to the trace; run it on a quiescent system or
    between scheduling slices. Embryos, pinned and scheduled objects,
    immigrants and forwarding stubs are never freed. *)
