(** Export analysis for the paper's garbage collection discussion.

    With [(node, pointer)] mail addresses, objects cannot be moved once a
    reference has escaped the node; the authors note (Section 5.2) an
    algorithm "whereby objects that are only referred to locally can be
    freely copied" as work in progress. This module performs the
    underlying reachability survey offline: which objects have their
    address held outside their own node — in a state variable, a buffered
    message, or an active message still in flight — and which are
    local-only and hence movable by a copying collector.

    Objects are identified by their canonical mail address ([obj.self]),
    so immigrants (resident away from home under lib/migrate) are
    classified correctly, and migration forwarding stubs are counted as
    their own category rather than polluting the exported/movable
    split. *)

type report = {
  total : int;  (** materialised records across all nodes *)
  embryos : int;  (** uninitialised chunks *)
  forwarding_stubs : int;
      (** migration forwarding records — neither exported nor movable;
          they pin their canonical slot by construction *)
  exported : int;  (** referenced from another node or from in-flight
          messages *)
  local_only : int;  (** movable: referenced (if at all) only locally *)
  in_flight_refs : int;
      (** address references found inside not-yet-dispatched active
          messages; each pins its target like a remote holder would *)
}

val survey : Core.System.t -> report

val pp_report : Format.formatter -> report -> unit
