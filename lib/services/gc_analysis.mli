(** Export analysis for the paper's garbage collection discussion.

    With [(node, pointer)] mail addresses, objects cannot be moved once a
    reference has escaped the node; the authors note (Section 5.2) an
    algorithm "whereby objects that are only referred to locally can be
    freely copied" as work in progress. This module performs the
    underlying reachability survey offline: which objects have their
    address held outside their own node (in a state variable, a buffered
    message, or an in-flight consideration is out of scope), and which
    are local-only and hence movable by a copying collector. *)

type report = {
  total : int;  (** materialised objects across all nodes *)
  embryos : int;  (** uninitialised chunks *)
  exported : int;  (** referenced from at least one other node *)
  local_only : int;  (** movable: referenced (if at all) only locally *)
}

val survey : Core.System.t -> report

val pp_report : Format.formatter -> report -> unit
