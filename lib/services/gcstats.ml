module Engine = Machine.Engine
module Kernel = Core.Kernel

type node_row = {
  node : int;
  reclaimed : int;
  stubs_freed : int;
  restocked : int;
  dec_entries : int;
  slots_recycled : int;
}

type report = {
  per_node : node_row array;
  sweeps : int;
  sweeps_skipped : int;
  total_reclaimed : int;
  total_stubs_freed : int;
  total_restocked : int;
  dec_msgs : int;
  total_dec_entries : int;
  grants : int;
  splits : int;
  indirections : int;
  debits : int;
  recalls : int;
  unstubs : int;
}

let survey sys =
  let machine = Core.System.machine sys in
  let stats = Engine.stats machine in
  let get name = Simcore.Stats.get stats name in
  let sweeps = get "dgc.sweeps" and skipped = get "dgc.sweeps_skipped" in
  if sweeps = 0 && skipped = 0 then None
  else
    let n = Engine.node_count machine in
    let per_node =
      Array.init n (fun node ->
          let rt = Core.System.rt sys node in
          {
            node;
            reclaimed = get (Printf.sprintf "dgc.reclaimed.node%d" node);
            stubs_freed = get (Printf.sprintf "dgc.stubs_freed.node%d" node);
            restocked = get (Printf.sprintf "dgc.restocked.node%d" node);
            dec_entries = get (Printf.sprintf "dgc.dec.entries.node%d" node);
            slots_recycled = rt.Kernel.slots_recycled;
          })
    in
    Some
      {
        per_node;
        sweeps;
        sweeps_skipped = skipped;
        total_reclaimed = get "dgc.reclaimed";
        total_stubs_freed = get "dgc.stubs_freed";
        total_restocked = get "dgc.restocked";
        dec_msgs = get "dgc.dec.msgs";
        total_dec_entries = get "dgc.dec.entries";
        grants = get "dgc.grants";
        splits = get "dgc.splits";
        indirections = get "dgc.indirections";
        debits = get "dgc.debits";
        recalls = get "dgc.recalls";
        unstubs = get "dgc.unstubs";
      }

let row_is_boring r =
  r.reclaimed = 0 && r.stubs_freed = 0 && r.restocked = 0 && r.dec_entries = 0
  && r.slots_recycled = 0

let pp ppf r =
  Format.fprintf ppf "@[<v>";
  Format.fprintf ppf
    "dgc: %d sweep(s) (%d skipped); %d reclaimed, %d stub(s) freed, %d slot(s) \
     restocked; %d decrement(s) in %d message(s)@,"
    r.sweeps r.sweeps_skipped r.total_reclaimed r.total_stubs_freed
    r.total_restocked r.total_dec_entries r.dec_msgs;
  Format.fprintf ppf
    "     weights: %d grant(s), %d split(s), %d indirection(s), %d debit(s); \
     %d recall(s), %d unstub(s)@,"
    r.grants r.splits r.indirections r.debits r.recalls r.unstubs;
  Array.iter
    (fun row ->
      if not (row_is_boring row) then
        Format.fprintf ppf
          "  node %2d: %d reclaimed, %d stub(s) freed, %d restocked, %d \
           decrement(s), %d slot(s) recycled@,"
          row.node row.reclaimed row.stubs_freed row.restocked row.dec_entries
          row.slots_recycled)
    r.per_node;
  Format.fprintf ppf "@]"
