(** A Category-4 "other services" component (Section 5.1): load
    monitoring by neighbour gossip.

    Each node can broadcast its instantaneous load (scheduling queue plus
    inbox depth) to its torus neighbours as a [Service] active message;
    peers record the last value heard. {!pick_least} then implements a
    locality-aware placement decision using only information locally
    available — the paper's stated basis for remote-creation placement. *)

type t

val attach : Core.System.t -> t
(** Registers the service handler on the system. Call once, before
    [System.run]. If the system's [rt_config.gossip_interval_ns] is
    positive, also arms periodic auto-gossip: every node re-broadcasts
    its load on that interval (staggered across nodes) without
    application cooperation, stopping when the machine quiesces. *)

val local_load : t -> node:int -> int

val broadcast : t -> Core.Ctx.t -> unit
(** Sends this node's load to its torus neighbours (callable from a
    method body; charged like any message send). *)

val broadcast_node : t -> node:int -> unit
(** As {!broadcast}, addressed by node id — usable outside any method
    body (timers, policies). *)

val known_load : t -> node:int -> about:int -> int
(** The last load value node [node] heard about node [about]
    (its own current load when [node = about]; 0 if never heard —
    prefer {!known_load_opt}, which keeps "never heard" distinct). *)

val known_load_opt : t -> node:int -> about:int -> int option
(** As {!known_load}, but [None] when [node] never heard from [about]. *)

val local_ma_depth : t -> node:int -> int
(** The deepest multiactive activation queue of any object on the node
    ({!Multiactive.queue_depth} maximised over residents; 0 when no
    multiactive object lives there). Distinguishes "hot because one
    serialized object is a bottleneck" (high depth) from "hot because
    the node hosts a lot of work" (high {!local_load}, zero depth):
    migrating the object helps the former, splitting the node's
    population helps the latter. *)

val known_ma_depth : t -> node:int -> about:int -> int
(** The activation-queue depth node [node] last heard gossiped by node
    [about] (own current depth when [node = about]; 0 if never heard). *)

val known_ma_depth_opt : t -> node:int -> about:int -> int option
(** As {!known_ma_depth}, but [None] when never heard. *)

val report : t -> string
(** A human-readable load report, one line per node: own load and
    activation-queue depth, then each neighbour's last-gossiped
    [load/ma_depth] pair ([?] when never heard). *)

val pick_least : t -> Core.Ctx.t -> int
(** The least-loaded node among self and torus neighbours, judged from
    the local gossip table. Never-heard neighbours are excluded (unknown
    is not load 0), so before any gossip arrives the pick falls back to
    self. Ties break toward the lower node id. *)

val pick_least_for : t -> node:int -> int
(** As {!pick_least}, judged from the given node's gossip table. *)

val deferred_placement : unit -> Core.Kernel.placement * (t -> unit)
(** A load-aware placement policy and its installer. Because placement is
    part of the boot configuration while the service attaches to the
    booted system, usage is two-phase:

    {[
      let placement, install = Load.deferred_placement () in
      let rt_config = { System.default_rt_config with placement } in
      let sys = System.boot ~rt_config ... in
      install (Load.attach sys)
    ]}

    Each creation then goes to the least-loaded of the creating node and
    its torus neighbours (per the local gossip table); before [install]
    the policy places locally. *)

val broadcasts : t -> int
(** Number of load broadcasts performed (for tests). *)
