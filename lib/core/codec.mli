(** Binary wire codec for values and messages.

    The paper's compiler generates a specialised message handler per
    pattern so arguments travel tag-free; our runtime ships OCaml values
    directly and only {e models} wire sizes. This codec makes the wire
    format concrete — a self-describing binary encoding suitable for a
    real transport — and the system can optionally round-trip every
    inter-node message through it ([rt_config.codec_check]) to guarantee
    that everything a program sends is genuinely serialisable. *)

val encode_value : Buffer.t -> Value.t -> unit

val decode_value : Bytes.t -> pos:int -> Value.t * int
(** Returns the value and the position after it. Raises [Failure] on a
    malformed buffer. *)

val value_to_bytes : Value.t -> Bytes.t
val value_of_bytes : Bytes.t -> Value.t

val encode_message : Message.t -> Bytes.t
val decode_message : Bytes.t -> Message.t
(** Patterns are encoded by keyword + arity so the decoder re-interns
    them; ids therefore survive across address spaces. *)

val encode_message_into : Buffer.t -> Message.t -> unit
(** Appends the encoding of a message to [buf] — the zero-copy fast
    path: a send loop reuses one scratch buffer instead of allocating a
    fresh [Bytes.t] per message. *)

val decode_message_at : Bytes.t -> pos:int -> Message.t * int
(** Decodes one message starting at [pos]; returns it and the position
    after it (messages are self-delimiting). No trailing-garbage check —
    that is the caller's business when walking a shared buffer. *)

val encode_batch : Message.t list -> Bytes.t
val decode_batch : Bytes.t -> Message.t list
(** An aggregated packet body: a count followed by the messages back to
    back, encoded into one exactly-sized allocation with no per-message
    copies on either side. *)

val encoded_size : Value.t -> int
(** Length of [value_to_bytes] without materialising it. *)

val encoded_message_size : Message.t -> int
(** Exact length of [encode_message] without materialising it — lets
    send paths pre-size buffers for a single-pass encode. *)
