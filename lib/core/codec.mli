(** Binary wire codec for values and messages.

    The paper's compiler generates a specialised message handler per
    pattern so arguments travel tag-free; our runtime ships OCaml values
    directly and only {e models} wire sizes. This codec makes the wire
    format concrete — a self-describing binary encoding suitable for a
    real transport — and the system can optionally round-trip every
    inter-node message through it ([rt_config.codec_check]) to guarantee
    that everything a program sends is genuinely serialisable. *)

val encode_value : Buffer.t -> Value.t -> unit

val decode_value : Bytes.t -> pos:int -> Value.t * int
(** Returns the value and the position after it. Raises [Failure] on a
    malformed buffer. *)

val value_to_bytes : Value.t -> Bytes.t
val value_of_bytes : Bytes.t -> Value.t

val encode_message : Message.t -> Bytes.t
val decode_message : Bytes.t -> Message.t
(** Patterns are encoded by keyword + arity so the decoder re-interns
    them; ids therefore survive across address spaces. *)

val encoded_size : Value.t -> int
(** Length of [value_to_bytes] without materialising it. *)
