(* Tags of the self-describing encoding. *)
let tag_unit = 0
let tag_false = 1
let tag_true = 2
let tag_int = 3
let tag_float = 4
let tag_str = 5
let tag_addr = 6
let tag_list = 7
let tag_tuple = 8

let add_int64 buf i =
  for shift = 0 to 7 do
    Buffer.add_char buf (Char.chr ((i lsr (8 * shift)) land 0xFF))
  done

let add_bits64 buf (i : Int64.t) =
  for shift = 0 to 7 do
    let byte =
      Int64.to_int (Int64.logand (Int64.shift_right_logical i (8 * shift)) 0xFFL)
    in
    Buffer.add_char buf (Char.chr byte)
  done

let add_len buf n =
  if n < 0 || n > 0xFFFFFF then failwith "Codec: length out of range";
  Buffer.add_char buf (Char.chr (n land 0xFF));
  Buffer.add_char buf (Char.chr ((n lsr 8) land 0xFF));
  Buffer.add_char buf (Char.chr ((n lsr 16) land 0xFF))

let rec encode_value buf (v : Value.t) =
  match v with
  | Value.Unit -> Buffer.add_char buf (Char.chr tag_unit)
  | Value.Bool false -> Buffer.add_char buf (Char.chr tag_false)
  | Value.Bool true -> Buffer.add_char buf (Char.chr tag_true)
  | Value.Int i ->
      Buffer.add_char buf (Char.chr tag_int);
      add_int64 buf i
  | Value.Float f ->
      Buffer.add_char buf (Char.chr tag_float);
      add_bits64 buf (Int64.bits_of_float f)
  | Value.Str s ->
      Buffer.add_char buf (Char.chr tag_str);
      add_len buf (String.length s);
      Buffer.add_string buf s
  | Value.Addr { node; slot } ->
      Buffer.add_char buf (Char.chr tag_addr);
      add_len buf node;
      add_int64 buf slot
  | Value.List vs ->
      Buffer.add_char buf (Char.chr tag_list);
      add_len buf (List.length vs);
      List.iter (encode_value buf) vs
  | Value.Tuple vs ->
      Buffer.add_char buf (Char.chr tag_tuple);
      add_len buf (List.length vs);
      List.iter (encode_value buf) vs

let read_byte bytes ~pos =
  if pos >= Bytes.length bytes then failwith "Codec: truncated buffer";
  (Char.code (Bytes.get bytes pos), pos + 1)

let read_int64 bytes ~pos =
  if pos + 8 > Bytes.length bytes then failwith "Codec: truncated int";
  let v = ref 0 in
  for shift = 7 downto 0 do
    v := (!v lsl 8) lor Char.code (Bytes.get bytes (pos + shift))
  done;
  (!v, pos + 8)

let read_bits64 bytes ~pos =
  if pos + 8 > Bytes.length bytes then failwith "Codec: truncated float";
  let v = ref 0L in
  for shift = 7 downto 0 do
    v :=
      Int64.logor (Int64.shift_left !v 8)
        (Int64.of_int (Char.code (Bytes.get bytes (pos + shift))))
  done;
  (!v, pos + 8)

let read_len bytes ~pos =
  if pos + 3 > Bytes.length bytes then failwith "Codec: truncated length";
  let b k = Char.code (Bytes.get bytes (pos + k)) in
  (b 0 lor (b 1 lsl 8) lor (b 2 lsl 16), pos + 3)

let rec decode_value bytes ~pos =
  let tag, pos = read_byte bytes ~pos in
  if tag = tag_unit then (Value.Unit, pos)
  else if tag = tag_false then (Value.Bool false, pos)
  else if tag = tag_true then (Value.Bool true, pos)
  else if tag = tag_int then
    let i, pos = read_int64 bytes ~pos in
    (Value.Int i, pos)
  else if tag = tag_float then
    let bits, pos = read_bits64 bytes ~pos in
    (Value.Float (Int64.float_of_bits bits), pos)
  else if tag = tag_str then begin
    let len, pos = read_len bytes ~pos in
    if pos + len > Bytes.length bytes then failwith "Codec: truncated string";
    (Value.Str (Bytes.sub_string bytes pos len), pos + len)
  end
  else if tag = tag_addr then
    let node, pos = read_len bytes ~pos in
    let slot, pos = read_int64 bytes ~pos in
    (Value.Addr { Value.node; slot }, pos)
  else if tag = tag_list || tag = tag_tuple then begin
    let len, pos = read_len bytes ~pos in
    let rec elems n pos acc =
      if n = 0 then (List.rev acc, pos)
      else
        let v, pos = decode_value bytes ~pos in
        elems (n - 1) pos (v :: acc)
    in
    let vs, pos = elems len pos [] in
    ((if tag = tag_list then Value.List vs else Value.Tuple vs), pos)
  end
  else failwith (Printf.sprintf "Codec: unknown tag %d" tag)

let value_to_bytes v =
  let buf = Buffer.create 32 in
  encode_value buf v;
  Buffer.to_bytes buf

let value_of_bytes bytes =
  let v, pos = decode_value bytes ~pos:0 in
  if pos <> Bytes.length bytes then failwith "Codec: trailing garbage";
  v

let rec encoded_size (v : Value.t) =
  match v with
  | Value.Unit | Value.Bool _ -> 1
  | Value.Int _ | Value.Float _ -> 9
  | Value.Str s -> 4 + String.length s
  | Value.Addr _ -> 12
  | Value.List vs | Value.Tuple vs ->
      4 + List.fold_left (fun acc v -> acc + encoded_size v) 0 vs

(* Exact encoded length of a message, so send paths can pre-size a
   buffer and encode in a single pass with no intermediate growth. Keep
   in lockstep with [encode_message_into]. *)
let encoded_message_size (m : Message.t) =
  3
  + String.length (Pattern.name m.pattern)
  + 3 (* arity *) + 3 (* src_node *) + 1
  + (match m.reply with None -> 0 | Some _ -> 11)
  + 3
  + List.fold_left (fun acc v -> acc + encoded_size v) 0 m.args
  + 3
  + (17 * List.length m.gc_refs)

let encode_message_into buf (m : Message.t) =
  let keyword = Pattern.name m.pattern in
  add_len buf (String.length keyword);
  Buffer.add_string buf keyword;
  add_len buf (Pattern.arity m.pattern);
  add_len buf m.src_node;
  (match m.reply with
  | None -> Buffer.add_char buf '\000'
  | Some { Value.node; slot } ->
      Buffer.add_char buf '\001';
      add_len buf node;
      add_int64 buf slot);
  add_len buf (List.length m.args);
  List.iter (encode_value buf) m.args;
  add_len buf (List.length m.gc_refs);
  List.iter
    (fun (r : Message.gc_ref) ->
      add_len buf r.Message.gr_addr.Value.node;
      add_int64 buf r.Message.gr_addr.Value.slot;
      add_len buf r.Message.gr_weight;
      (* backer is -1 (no indirection) or a node id; biased to stay
         non-negative on the wire *)
      add_len buf (r.Message.gr_backer + 1))
    m.gc_refs

let encode_message (m : Message.t) =
  let buf = Buffer.create (encoded_message_size m) in
  encode_message_into buf m;
  Buffer.to_bytes buf

let decode_message_at bytes ~pos =
  let len, pos = read_len bytes ~pos in
  if pos + len > Bytes.length bytes then failwith "Codec: truncated keyword";
  let keyword = Bytes.sub_string bytes pos len in
  let pos = pos + len in
  let arity, pos = read_len bytes ~pos in
  let src_node, pos = read_len bytes ~pos in
  let has_reply, pos = read_byte bytes ~pos in
  let reply, pos =
    if has_reply = 0 then (None, pos)
    else
      let node, pos = read_len bytes ~pos in
      let slot, pos = read_int64 bytes ~pos in
      (Some { Value.node; slot }, pos)
  in
  let argc, pos = read_len bytes ~pos in
  let rec args n pos acc =
    if n = 0 then (List.rev acc, pos)
    else
      let v, pos = decode_value bytes ~pos in
      args (n - 1) pos (v :: acc)
  in
  let args, pos = args argc pos [] in
  let refc, pos = read_len bytes ~pos in
  let rec refs n pos acc =
    if n = 0 then (List.rev acc, pos)
    else
      let node, pos = read_len bytes ~pos in
      let slot, pos = read_int64 bytes ~pos in
      let weight, pos = read_len bytes ~pos in
      let backer, pos = read_len bytes ~pos in
      let r =
        {
          Message.gr_addr = { Value.node; slot };
          gr_weight = weight;
          gr_backer = backer - 1;
        }
      in
      refs (n - 1) pos (r :: acc)
  in
  let gc_refs, pos = refs refc pos [] in
  let pattern = Pattern.intern keyword ~arity in
  let m = Message.make ~pattern ~args ?reply ~src_node () in
  m.Message.gc_refs <- gc_refs;
  (m, pos)

let decode_message bytes =
  let m, pos = decode_message_at bytes ~pos:0 in
  if pos <> Bytes.length bytes then failwith "Codec: trailing garbage";
  m

(* Batches: a count followed by the messages back to back. Messages are
   self-delimiting, so no per-message length word is needed — the
   receiver walks the buffer with [decode_message_at]. The whole batch
   is one allocation; no per-message [Bytes.sub] copies on either
   side. *)
let encode_batch (ms : Message.t list) =
  let size =
    List.fold_left (fun acc m -> acc + encoded_message_size m) 3 ms
  in
  let buf = Buffer.create size in
  add_len buf (List.length ms);
  List.iter (encode_message_into buf) ms;
  Buffer.to_bytes buf

let decode_batch bytes =
  let count, pos = read_len bytes ~pos:0 in
  let rec go n pos acc =
    if n = 0 then
      if pos <> Bytes.length bytes then failwith "Codec: trailing garbage"
      else List.rev acc
    else
      let m, pos = decode_message_at bytes ~pos in
      go (n - 1) pos (m :: acc)
  in
  go count pos []
