(** Object creation: local, explicitly placed, and policy-placed remote
    creation with latency hiding (Section 5.2).

    Remote creation obtains the new object's mail address locally from
    the pre-delivered chunk stock, sends the creation request as an
    active message, and continues immediately; the requesting method only
    blocks when the stock for the target node is empty. *)

val local : Kernel.node_rt -> Kernel.cls -> Value.t list -> Value.addr
(** Allocates and registers an object on this node; its state variables
    are initialised lazily on first message reception. *)

val on :
  Kernel.node_rt -> target:int -> Kernel.cls -> Value.t list -> Value.addr
(** Creation on an explicit node. Falls back to {!local} when [target]
    is this node; otherwise uses the chunk-stock protocol and may block
    (inside a method only) when the stock is exhausted. *)

val remote : Kernel.node_rt -> Kernel.cls -> Value.t list -> Value.addr
(** Creation on a node chosen by the configured placement policy. *)

val pick_node : Kernel.node_rt -> int
(** The placement policy's next choice (exposed for tests). *)
