(** Defining concurrent object classes.

    A class bundles its state-variable layout, a constructor
    (initialisation of the state box from creation arguments, run lazily
    on first message reception as in Section 4.2) and a method per
    message pattern. *)

val define :
  name:string ->
  ?state:string array ->
  ?init:(Value.t list -> Value.t array) ->
  methods:(Pattern.t * Kernel.methd) list ->
  unit ->
  Kernel.cls
(** Creates a class with a fresh program-wide id. Pass every class that
    is created remotely to [System.boot] so the creation handler can find
    it by id. Without [init], objects start with one [Unit] per declared
    state variable. *)

val meth : string -> arity:int -> Kernel.methd -> Pattern.t * Kernel.methd
(** [meth keyword ~arity impl] interns the message pattern and pairs it
    with its method body. *)

val pattern_of : Kernel.cls -> string -> Pattern.t
(** Looks up one of the class's method patterns by keyword. *)

val set_multiactive :
  Kernel.cls ->
  budget:int ->
  ?compatible:(string * string) list ->
  groups:(string * Pattern.t list) list ->
  unit ->
  unit
(** Installs a compatibility declaration: methods of one named group
    may overlap each other on a single object, groups listed in
    [compatible] may overlap across, and at most [budget] activations
    run concurrently. Methods not mentioned get implicit singleton
    groups incompatible with everything (themselves included), so
    undeclared behaviour stays strictly serialized. Validates group
    contents against the class's methods; must be called before the
    class processes its first message. *)
