(** Reply destination objects for now-type message passing (Section 2.2).

    A now-type send [[Target <== Msg]] creates a fresh reply destination,
    attaches its mail address to the request, and — after the receiver
    has been scheduled — checks it for the reply value. The reply is an
    ordinary message (pattern {!Pattern.reply}) sent to the destination,
    possibly from a different object than the original receiver, and
    possibly from a remote node; when the sender is already suspended the
    destination's method resumes it ("the reply destination object
    actually resumes the sender"). *)

val make_cls : unit -> Kernel.cls
(** The builtin class backing reply destinations; registered once per
    system at boot. *)

val create_dest : Kernel.node_rt -> Kernel.obj
(** Allocates a fresh reply destination on this node. *)

val take : Kernel.node_rt -> Kernel.obj -> Value.t option
(** Consumes the stored reply value if it has already arrived; the
    destination is retired once the value is taken. *)
