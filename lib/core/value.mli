(** Runtime values exchanged in messages and held in state variables.

    Mail addresses are the paper's [(processor number, real pointer)]
    pairs ({!addr}); they are the only entities that can be referred to
    from remote nodes. Other data (numbers, strings, lists, tuples) are
    private and are copied when they cross a node boundary — values are
    immutable, so structural sharing is safe and "serialisation" reduces
    to computing the wire size. *)

type addr = { node : int; slot : int }

type t =
  | Unit
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string
  | Addr of addr
  | List of t list
  | Tuple of t list

val unit : t
val bool : bool -> t
val int : int -> t
val float : float -> t
val str : string -> t
val addr : addr -> t
val list : t list -> t
val tuple : t list -> t

(** {2 Projections} — raise [Invalid_argument] on a type mismatch,
    mirroring the static typing the paper assumes. *)

val to_bool : t -> bool
val to_int : t -> int
val to_float : t -> float
val to_str : t -> string
val to_addr : t -> addr
val to_list : t -> t list
val to_tuple : t -> t list

val equal : t -> t -> bool

val size_words : t -> int
(** Wire size in 4-byte words, used for bandwidth accounting and the
    active-path per-word buffering cost. *)

val size_bytes : t -> int

val pp_addr : Format.formatter -> addr -> unit
val pp : Format.formatter -> t -> unit
