(** Post-run diagnostics: what is the system waiting for?

    When a program quiesces with work undone (an awaited message never
    sent, an acknowledgement lost to a retired object), the machine simply
    runs out of events. This module surveys the residue so the failure is
    explainable: suspended contexts and their reasons, messages still
    buffered, objects stuck in the scheduling queue. *)

type stuck = {
  addr : Value.addr;
  cls_name : string;  (** "<chunk>" for an uninitialised embryo *)
  mode : string;  (** VFT kind currently exposed *)
  waiting_for : string option;  (** block reason, if a context is parked *)
  queued_messages : int;
}

type report = {
  blocked : stuck list;  (** objects holding a suspended context *)
  buffered : stuck list;  (** quiescent objects with unconsumed messages *)
  chunk_waiters : int;  (** contexts stalled on empty chunk stocks *)
  stock_refills : int;
      (** chunk replies that replenished a requester's stock over the run
          (the "chunk.refill" counter, summed over nodes) *)
  stock_low_water : int;
      (** smallest per-target stock size any requester ever observed — 0
          means some stock drained completely at least once *)
  in_flight : int;
      (** messages sent but never acknowledged by the reliable-delivery
          layer (always 0 without a fault plan). Nonzero at quiescence
          means the network lost messages for good — retransmission gave
          up or the run was cut short. *)
  packets_dropped : int;
      (** packets the fault layer destroyed during the run (these were
          all repaired by retransmission iff [in_flight] is 0) *)
  batches_sent : int;
      (** aggregated multi-frame packets shipped over the run (the
          "coalesce.batch" counter; 0 with coalescing off) *)
  coalesce_buffered : int;
      (** messages still sitting in open aggregation buffers at survey
          time — nonzero at quiescence means a flush trigger never
          fired, and counts against {!is_clean} *)
  crashes : int;
      (** node crashes injected over the run (the "recover.crashes"
          counter; 0 without a recovery manager) *)
  checkpoint_bytes : int;
      (** checkpoint volume written to the stable stores
          ("recover.ckpt_bytes") *)
  log_replayed : int;
      (** messages re-dispatched from delivery logs during recoveries
          ("recover.replayed") *)
  recovery_ns : int;
      (** total simulated wall-clock spent restoring and replaying
          ("recover.recovery_ns") *)
  forwarding_stubs : (int * int) list;
      (** (node, live forwarding stubs) — objects that migrated away and
          left a re-posting VFT behind. Healthy residue, not counted
          against {!is_clean}; nonzero entries only. *)
  forwarded_hops : (int * int) list;
      (** (node, messages re-posted by stubs on that node) over the run —
          from the "migrate.forward.node<i>" counters. Chain-compression
          checks assert this stays near the migration count. *)
}

val survey : System.t -> report

val is_clean : report -> bool
(** No suspended contexts, no buffered messages, no stalled requesters,
    no message still unacknowledged by the reliable layer, and no
    message stranded in an aggregation buffer. *)

val pp : Format.formatter -> report -> unit
