(** Post-run diagnostics: what is the system waiting for?

    When a program quiesces with work undone (an awaited message never
    sent, an acknowledgement lost to a retired object), the machine simply
    runs out of events. This module surveys the residue so the failure is
    explainable: suspended contexts and their reasons, messages still
    buffered, objects stuck in the scheduling queue. *)

type stuck = {
  addr : Value.addr;
  cls_name : string;  (** "<chunk>" for an uninitialised embryo *)
  mode : string;  (** VFT kind currently exposed *)
  waiting_for : string option;  (** block reason, if a context is parked *)
  queued_messages : int;
}

type report = {
  blocked : stuck list;  (** objects holding a suspended context *)
  buffered : stuck list;  (** quiescent objects with unconsumed messages *)
  chunk_waiters : int;  (** contexts stalled on empty chunk stocks *)
}

val survey : System.t -> report

val is_clean : report -> bool
(** No suspended contexts, no buffered messages, no stalled requesters. *)

val pp : Format.formatter -> report -> unit
