(** A message in flight or buffered in an object's message queue. *)

type t = {
  pattern : Pattern.t;
  args : Value.t list;
  reply : Value.addr option;
      (** reply destination for now-type sends; forwardable like any
          other mail address *)
  src_node : int;  (** node that performed the send (for statistics) *)
}

val make :
  pattern:Pattern.t -> args:Value.t list -> ?reply:Value.addr -> src_node:int ->
  unit -> t
(** Checks that [List.length args] matches the pattern's arity. *)

val size_words : t -> int
(** Wire/frame size: pattern word + argument words + optional reply
    address. *)

val size_bytes : t -> int

val arg : t -> int -> Value.t
(** [arg m i] is the i-th argument. Raises [Invalid_argument] if out of
    range. *)

val pp : Format.formatter -> t -> unit
