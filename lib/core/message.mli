(** A message in flight or buffered in an object's message queue. *)

type gc_ref = { gr_addr : Value.addr; gr_weight : int; gr_backer : int }
(** One entry of a message's reference manifest, written by the
    distributed GC when the message leaves a node: [gr_addr] occurs in
    the payload, [gr_weight] is the portion of reference weight
    travelling with it (split locally from the sender's stub, or minted
    by the owner), and [gr_backer] is the node backing a weight-0
    indirection entry ([-1] when the weight is positive). Empty unless
    a distributed GC is attached. *)

type t = {
  pattern : Pattern.t;
  args : Value.t list;
  reply : Value.addr option;
      (** reply destination for now-type sends; forwardable like any
          other mail address *)
  src_node : int;  (** node that performed the send (for statistics) *)
  mutable gc_refs : gc_ref list;
      (** reference manifest; mutable so the importing node can strip it
          after crediting its tables (a message in custody carries no
          weight — it travels only while the message is in flight) *)
}

val make :
  pattern:Pattern.t -> args:Value.t list -> ?reply:Value.addr -> src_node:int ->
  unit -> t
(** Checks that [List.length args] matches the pattern's arity. *)

val size_words : t -> int
(** Wire/frame size: pattern word + argument words + optional reply
    address. *)

val size_bytes : t -> int

val arg : t -> int -> Value.t
(** [arg m i] is the i-th argument. Raises [Invalid_argument] if out of
    range. *)

val pp : Format.formatter -> t -> unit
