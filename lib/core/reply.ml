open Kernel
module Cost_model = Machine.Cost_model

(* A consumed reply destination is the one object the runtime can free
   without any protocol: it is single-use by construction. Its slot is
   recycled only when its address never left the node — an exported
   destination may still be referenced by an in-flight reply. *)
let dispose rt rd =
  Hashtbl.remove rt.objects rd.self.Value.slot;
  if not rd.exported then Sched.recycle_slot rt rd.self.Value.slot

(* state.(0): has the reply arrived; state.(1): the value. *)
let impl ctx msg =
  let rd = ctx.self_obj in
  let v = Message.arg msg 0 in
  match rd.blocked with
  | Some b ->
      rd.blocked <- None;
      dispose ctx.rt rd;
      Sched.resume ctx.rt b (R_reply v)
  | None ->
      rd.state.(0) <- Value.bool true;
      rd.state.(1) <- v

let make_cls () =
  Class_def.define ~name:"__reply" ~state:[| "present"; "value" |]
    ~init:(fun _ -> [| Value.bool false; Value.unit |])
    ~methods:[ (Pattern.reply, impl) ]
    ()

let create_dest rt =
  charge rt (cost rt).Cost_model.frame_alloc;
  Machine.Node.heap_alloc_words rt.node 6;
  let slot = Sched.alloc_slot rt in
  let cls = rt.shared.reply_cls in
  let obj =
    {
      self = { Value.node = Machine.Node.id rt.node; slot };
      phys_slot = slot;
      cls = Some cls;
      state = [||];
      vftp = Vft.init cls;
      mq = Queue.create ();
      in_sched_q = false;
      blocked = None;
      initialized = false;
      pending_ctor_args = [];
      exported = false;
      gc_pinned = false;
      ma = None;
    }
  in
  Sched.register_obj rt obj;
  obj

let take rt rd =
  if rd.initialized && Value.to_bool rd.state.(0) then begin
    rd.state.(0) <- Value.bool false;
    dispose rt rd;
    Some rd.state.(1)
  end
  else None
