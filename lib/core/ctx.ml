open Kernel
module Cost_model = Machine.Cost_model

type t = ctx

let self ctx = ctx.self_obj.self
let node_id ctx = Machine.Node.id ctx.rt.node
let node_count ctx = Machine.Engine.node_count (machine ctx.rt)
let now ctx = Machine.Node.now ctx.rt.node

let state ctx =
  let obj = ctx.self_obj in
  if not obj.initialized then
    invalid_arg "Ctx: state accessed before initialisation";
  obj.state

let get ctx i = (state ctx).(i)
let set ctx i v = (state ctx).(i) <- v

let index_of ctx name =
  let names = (obj_class ctx.self_obj).state_names in
  let rec find i =
    if i >= Array.length names then
      invalid_arg (Printf.sprintf "Ctx: no state variable %S" name)
    else if String.equal names.(i) name then i
    else find (i + 1)
  in
  find 0

let get_named ctx name = get ctx (index_of ctx name)
let set_named ctx name v = set ctx (index_of ctx name) v

let send ctx target pattern args =
  Sched.send ctx.rt ~target ~pattern ~args ()

let interned keyword args =
  Pattern.intern keyword ~arity:(List.length args)

let send_kw ctx target keyword args =
  send ctx target (interned keyword args) args

let send_now ctx target pattern args =
  let rt = ctx.rt in
  let rd = Reply.create_dest rt in
  Sched.send rt ~target ~pattern ~args ~reply:rd.self ();
  charge rt (cost rt).Cost_model.reply_check;
  match Reply.take rt rd with
  | Some v ->
      bump (ctrs rt).c_reply_immediate;
      v
  | None -> (
      match Sched.block rt (Wait_reply rd) with
      | R_reply v -> v
      | R_go | R_msg _ -> assert false)

let send_now_kw ctx target keyword args =
  send_now ctx target (interned keyword args) args

type future = { fut_rd : obj; mutable claimed : bool }

let send_future ctx target pattern args =
  let rt = ctx.rt in
  let rd = Reply.create_dest rt in
  Sched.send rt ~target ~pattern ~args ~reply:rd.self ();
  { fut_rd = rd; claimed = false }

let touch ctx future =
  if future.claimed then invalid_arg "Ctx.touch: future already claimed";
  future.claimed <- true;
  let rt = ctx.rt in
  charge rt (cost rt).Cost_model.reply_check;
  match Reply.take rt future.fut_rd with
  | Some v ->
      bump (ctrs rt).c_reply_immediate;
      v
  | None -> (
      match Sched.block rt (Wait_reply future.fut_rd) with
      | R_reply v -> v
      | R_go | R_msg _ -> assert false)

let future_ready ctx future =
  charge ctx.rt (cost ctx.rt).Cost_model.reply_check;
  (not future.claimed)
  && future.fut_rd.initialized
  && Value.to_bool future.fut_rd.state.(0)

let future_addr future = future.fut_rd.self

let future_of_addr ctx addr =
  let rt = ctx.rt in
  if addr.Value.node <> Machine.Node.id rt.node then
    invalid_arg "Ctx.future_of_addr: reply destination lives on another node";
  match Hashtbl.find_opt rt.objects addr.Value.slot with
  | Some obj when is_reply_dest rt.shared obj -> { fut_rd = obj; claimed = false }
  | Some _ -> invalid_arg "Ctx.future_of_addr: not a reply destination"
  | None -> invalid_arg "Ctx.future_of_addr: unknown or already-claimed future"

let send_inlined ctx cls target pattern args =
  Sched.send_inlined ctx.rt cls ~target ~pattern ~args ()

let send_leaf ctx cls target pattern args =
  Sched.send_optimized ctx.rt cls ~target ~pattern ~args ~known_local:true
    ~leaf:true ~stateless:true ~no_poll:true ()

let reply ctx msg value =
  match msg.Message.reply with
  | Some dest -> send ctx dest Pattern.reply [ value ]
  | None -> bump (ctrs ctx.rt).c_reply_no_dest

let wait_for ctx patterns = Sched.wait_for ctx.rt ctx.self_obj patterns

let wait_for_kw ctx keywords =
  let resolve kw =
    match Pattern.lookup kw with
    | Some p -> p
    | None -> invalid_arg (Printf.sprintf "Ctx.wait_for_kw: unknown pattern %S" kw)
  in
  wait_for ctx (List.map resolve keywords)

let create_local ctx cls args = Create.local ctx.rt cls args
let create_on ctx ~target cls args = Create.on ctx.rt ~target cls args
let create_remote ctx cls args = Create.remote ctx.rt cls args

let charge ctx n =
  charge_work ctx.rt n;
  Sched.maybe_preempt ctx.rt

let random ctx bound = Simcore.Rng.int ctx.rt.rng bound
let bump ctx name = Simcore.Stats.incr (stats ctx.rt) ("app." ^ name)
let retire ctx =
  let rt = ctx.rt in
  let obj = ctx.self_obj in
  Hashtbl.remove rt.objects obj.phys_slot;
  match rt.shared.migration with
  | Some m -> m.mig_retire rt obj
  | None -> ()
let node ctx = ctx.rt.node
let engine ctx = machine ctx.rt
let rt ctx = ctx.rt
