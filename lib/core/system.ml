open Kernel
module Cost_model = Machine.Cost_model
module Engine = Machine.Engine
module Am = Machine.Am

type Machine.Node.local += Rt of node_rt

let rt_of node =
  match Machine.Node.local node with
  | Rt rt -> rt
  | _ -> invalid_arg "System: node has no runtime attached"

type t = { shared : shared; rts : node_rt array }

let default_rt_config =
  {
    sched_kind = Hybrid;
    max_stack_depth = 2000;
    quantum_instr = 50_000;
    stock_size = 2;
    placement = Round_robin;
    discard_unacceptable = false;
    inline_sends = true;
    codec_check = false;
    gossip_interval_ns = 0;
    ma_cores = 4;
  }

let naive_rt_config = { default_rt_config with sched_kind = Naive }

(* --- Active message handlers (Section 5.1) --- *)

let obj_msg_handler _machine node am =
  match am.Am.payload with
  | Protocol.P_obj_msg { slot; msg } ->
      let rt = rt_of node in
      (* Custody transfer: credit the reference manifest exactly once,
         then strip it — a buffered message carries no weight. *)
      (match rt.shared.gc with
      | Some g when msg.Message.gc_refs <> [] ->
          g.gc_accept rt msg.Message.gc_refs;
          msg.Message.gc_refs <- []
      | _ -> ());
      Sched.local_deliver ~origin:`Remote rt (Sched.lookup_or_embryo rt slot) msg
  | _ -> assert false

let create_handler _machine node am =
  match am.Am.payload with
  | Protocol.P_create { slot; cls_id; args; gc_refs } ->
      let rt = rt_of node in
      let c = cost rt in
      charge rt c.Cost_model.create_init_handler;
      (match rt.shared.gc with
      | Some g when gc_refs <> [] -> g.gc_accept rt gc_refs
      | _ -> ());
      (* The creator's conjured claim: mint the owner-side weight now,
         while the FIFO channel still guarantees no decrement for this
         incarnation has been processed. *)
      (match rt.shared.gc with
      | Some g -> g.gc_conjured rt slot
      | None -> ());
      let obj = Sched.lookup_or_embryo rt slot in
      (match obj.cls with
      | Some _ -> invalid_arg "System: duplicate creation request"
      | None -> ());
      let cls =
        match Hashtbl.find_opt rt.shared.classes cls_id with
        | Some cls -> cls
        | None -> invalid_arg "System: remote creation of unregistered class"
      in
      obj.cls <- Some cls;
      obj.pending_ctor_args <- args;
      charge rt c.Cost_model.switch_vft;
      obj.vftp <- Vft.init cls;
      bump (ctrs rt).c_create_remote_applied;
      (* Messages that raced ahead of the creation request were buffered
         by the fault table; process the first one (Section 5.2). *)
      if not (Queue.is_empty obj.mq) then Sched.schedule_pending rt obj;
      (* Allocate the replacement chunk and replenish the requester. *)
      charge rt c.Cost_model.chunk_refill;
      let replacement = Sched.alloc_slot rt in
      charge rt c.Cost_model.msg_setup_send;
      Engine.send_am (machine rt) ~src:node ~dst:am.Am.src
        ~handler:rt.shared.h_chunk ~size_bytes:Protocol.chunk_bytes
        (Protocol.P_chunk { slot = replacement })
  | _ -> assert false

let chunk_handler _machine node am =
  match am.Am.payload with
  | Protocol.P_chunk { slot } ->
      let rt = rt_of node in
      Queue.push slot rt.stocks.(am.Am.src);
      bump (ctrs rt).c_chunk_refill;
      (* Resume the first requester blocked on this target's stock. *)
      let rec split acc = function
        | [] -> None
        | (target, b) :: rest when target = am.Am.src ->
            rt.chunk_waiters <- List.rev_append acc rest;
            Some b
        | pair :: rest -> split (pair :: acc) rest
      in
      (match split [] rt.chunk_waiters with
      | Some b -> Sched.resume rt b R_go
      | None -> ())
  | _ -> assert false

(* --- Boot --- *)

let boot ?(machine_config = Engine.default_config)
    ?(rt_config = default_rt_config) ~nodes ~classes () =
  if rt_config.stock_size < 1 then
    invalid_arg
      "System.boot: stock_size must be >= 1 (remote creation would deadlock)";
  if rt_config.max_stack_depth < 1 then
    invalid_arg "System.boot: max_stack_depth must be >= 1";
  if rt_config.quantum_instr < 1 then
    invalid_arg "System.boot: quantum_instr must be >= 1";
  let machine = Engine.create ~config:machine_config ~nodes () in
  let h_obj_msg =
    Engine.register_handler machine Am.Object_message ~name:"object-message"
      obj_msg_handler
  in
  let h_create =
    Engine.register_handler machine Am.Create_request ~name:"create-request"
      create_handler
  in
  let h_chunk =
    Engine.register_handler machine Am.Chunk_reply ~name:"chunk-reply"
      chunk_handler
  in
  let reply_cls = Reply.make_cls () in
  let class_tbl = Hashtbl.create 16 in
  List.iter (fun c -> Hashtbl.replace class_tbl c.cls_id c) classes;
  Hashtbl.replace class_tbl reply_cls.cls_id reply_cls;
  let shared =
    {
      machine;
      classes = class_tbl;
      enqueue_all = Vft.make_enqueue_all ();
      fault_tbl = Vft.make_fault ();
      h_obj_msg;
      h_create;
      h_chunk;
      config = rt_config;
      reply_cls;
      ctrs = make_counters (Engine.stats machine);
      migration = None;
      gc = None;
    }
  in
  let p = Engine.node_count machine in
  let stock = rt_config.stock_size in
  let make_rt i =
    let node = Engine.node machine i in
    let rt =
      {
        shared;
        node;
        objects = Hashtbl.create 256;
        (* Slots [0, p * stock) are pre-reserved for the stocks of every
           requester; dynamic allocation starts above the watermark. *)
        next_slot = p * stock;
        free_slots = Queue.create ();
        slots_recycled = 0;
        stocks = Array.init p (fun _ -> Queue.create ());
        stock_low_water = stock;
        chunk_waiters = [];
        preempt_pending = 0;
        rr_cursor = i + 1;
        depth = 0;
        leaf_depth = 0;
        work_since_yield = 0;
        scratch = Buffer.create 256;
        rng =
          Simcore.Rng.create
            ~seed:(((Engine.config machine).Engine.seed * 1_000_003) + i);
        ma_scale = 1;
      }
    in
    Machine.Node.set_local node (Rt rt);
    rt
  in
  let rts = Array.init p make_rt in
  (* Pre-deliver the chunk stocks: requester [n]'s stock for target [m]
     holds slots [n * stock .. n * stock + stock) of [m]'s slot space. *)
  Array.iteri
    (fun n rt ->
      for m = 0 to p - 1 do
        if m <> n then
          for i = 0 to stock - 1 do
            Queue.push ((n * stock) + i) rt.stocks.(m)
          done
      done)
    rts;
  { shared; rts }

let machine t = t.shared.machine
let node_count t = Engine.node_count t.shared.machine

let rt t i =
  if i < 0 || i >= node_count t then invalid_arg "System.rt: bad node id";
  t.rts.(i)

let stats t = Engine.stats t.shared.machine
let config t = t.shared.config

let create_root t ~node cls args =
  if not (Hashtbl.mem t.shared.classes cls.cls_id) then
    Hashtbl.replace t.shared.classes cls.cls_id cls;
  let addr = Create.local (rt t node) cls args in
  (* The embedding holds this address outside the heap (driver code,
     boot messages); it must never be swept. *)
  (match Hashtbl.find_opt (rt t node).objects addr.Value.slot with
  | Some obj -> obj.gc_pinned <- true
  | None -> ());
  addr

let send_boot t ?from target pattern args =
  let from = Option.value from ~default:target.Value.node in
  let rt = rt t from in
  Engine.post t.shared.machine rt.node (fun () ->
      Sched.send rt ~target ~pattern ~args ())

let run ?max_slices t = Engine.run ?max_slices t.shared.machine

let run_parallel ?max_slices t ~domains =
  (* Auto-gossip synchronises every node's clock each round — a global
     operation with no sound per-domain decomposition. *)
  if t.shared.config.gossip_interval_ns > 0 then
    invalid_arg "System.run_parallel: gossip_interval_ns requires [run]";
  Engine.run_parallel ?max_slices t.shared.machine ~domains ()
let elapsed t = Engine.elapsed t.shared.machine
let utilization t = Engine.utilization t.shared.machine

let total_heap_words t =
  Array.fold_left
    (fun acc rt -> acc + Machine.Node.heap_words rt.node)
    0 t.rts

let lookup_obj t addr =
  if addr.Value.node < 0 || addr.Value.node >= node_count t then None
  else Hashtbl.find_opt (rt t addr.Value.node).objects addr.Value.slot

let pp_summary ppf t =
  Format.fprintf ppf
    "@[<v>nodes: %d@,elapsed: %a@,utilization: %.1f%%@,heap words: %d@,%a@]"
    (node_count t) Simcore.Time.pp (elapsed t)
    (100. *. utilization t)
    (total_heap_words t) Simcore.Stats.pp (stats t)
