type gc_ref = { gr_addr : Value.addr; gr_weight : int; gr_backer : int }

type t = {
  pattern : Pattern.t;
  args : Value.t list;
  reply : Value.addr option;
  src_node : int;
  mutable gc_refs : gc_ref list;
}

let make ~pattern ~args ?reply ~src_node () =
  let expected = Pattern.arity pattern in
  let got = List.length args in
  if expected <> got then
    invalid_arg
      (Printf.sprintf "Message.make: pattern %s expects %d args, got %d"
         (Pattern.name pattern) expected got);
  { pattern; args; reply; src_node; gc_refs = [] }

let size_words m =
  1
  + List.fold_left (fun acc v -> acc + Value.size_words v) 0 m.args
  + (3 * List.length m.gc_refs)
  + match m.reply with Some _ -> 2 | None -> 0

let size_bytes m = 4 * size_words m

let arg m i =
  match List.nth_opt m.args i with
  | Some v -> v
  | None ->
      invalid_arg
        (Printf.sprintf "Message.arg: index %d out of range for %s" i
           (Pattern.name m.pattern))

let pp ppf m =
  Format.fprintf ppf "@[<h>%s(%a)%s@]" (Pattern.name m.pattern)
    (Format.pp_print_list ~pp_sep:(fun ppf () -> Format.fprintf ppf ",@ ")
       Value.pp)
    m.args
    (match m.reply with
    | Some a -> Format.asprintf " ->%a" Value.pp_addr a
    | None -> "")
