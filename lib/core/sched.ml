open Kernel
module Cost_model = Machine.Cost_model

let alloc_slot rt =
  (* Reclaimed slots are reused before the watermark grows: garbage
     collection is the allocation (and chunk-stock refill) path. *)
  match Queue.take_opt rt.free_slots with
  | Some slot ->
      rt.slots_recycled <- rt.slots_recycled + 1;
      bump (ctrs rt).c_slot_recycled;
      slot
  | None ->
      let slot = rt.next_slot in
      rt.next_slot <- slot + 1;
      slot

let recycle_slot rt slot = Queue.push slot rt.free_slots

let register_obj rt obj = Hashtbl.replace rt.objects obj.phys_slot obj

let make_embryo rt slot =
  (* A chunk pre-initialised as in Section 5.2: empty message queue and
     the generic fault table, so that any message racing ahead of the
     creation request is enqueued. *)
  let obj =
    {
      self = { Value.node = Machine.Node.id rt.node; slot };
      phys_slot = slot;
      cls = None;
      state = [||];
      vftp = rt.shared.fault_tbl;
      mq = Queue.create ();
      in_sched_q = false;
      blocked = None;
      initialized = false;
      pending_ctor_args = [];
      exported = false;
      gc_pinned = false;
    }
  in
  Hashtbl.add rt.objects slot obj;
  Machine.Node.heap_alloc_words rt.node 8;
  obj

let lookup_or_embryo rt slot =
  match Hashtbl.find_opt rt.objects slot with
  | Some o -> o
  | None ->
      if slot < 0 || slot >= rt.next_slot then
        invalid_arg
          (Printf.sprintf "Sched: slot %d was never allocated on node %d" slot
             (Machine.Node.id rt.node));
      make_embryo rt slot

let rest_table obj =
  let cls = obj_class obj in
  if obj.initialized then Vft.dormant cls else Vft.init cls

let mode_of obj = Vft.kind_name obj.vftp.vft_kind

let block rt reason =
  if rt.leaf_depth > 0 then
    failwith "Sched.block: a leaf-optimised method attempted to block";
  Effect.perform (Block reason)

(* Lazy state-variable initialisation (Section 4.2): runs on the first
   method invocation instead of at creation, so creation itself stays a
   cheap allocation. *)
let do_init rt obj =
  let cls = obj_class obj in
  let args = obj.pending_ctor_args in
  obj.pending_ctor_args <- [];
  obj.state <- cls.cls_init args;
  obj.initialized <- true;
  let c = cost rt in
  charge rt (4 + (Array.length obj.state * c.Cost_model.frame_store_per_word));
  Machine.Node.heap_alloc_words rt.node (2 + Array.length obj.state)

let buffer_message rt obj msg =
  let c = cost rt in
  let words = Message.size_words msg in
  charge rt
    (c.Cost_model.frame_alloc
    + (words * c.Cost_model.frame_store_per_word)
    + c.Cost_model.mq_enqueue);
  Machine.Node.heap_alloc_words rt.node (4 + words);
  Queue.push msg obj.mq

let rec schedule_pending rt obj =
  if not obj.in_sched_q then begin
    obj.in_sched_q <- true;
    charge rt (cost rt).Cost_model.sched_enqueue;
    Machine.Engine.post (machine rt) rt.node (fun () -> run_pending rt obj)
  end

(* Invoked when the object is dequeued from the node-global scheduling
   queue: process the next buffered message through the method table. *)
and run_pending rt obj =
  obj.in_sched_q <- false;
  (* The object may have migrated away between enqueue and this dequeue;
     its record is now a forwarding stub (empty queue, frames carried to
     the new home) and the stale scheduling entry must not clobber it. *)
  match obj.vftp.vft_kind with
  | Vft_forward _ -> ()
  | _ -> (
  assert (Option.is_none obj.blocked);
  match Queue.take_opt obj.mq with
  | None ->
      (* All buffered messages were consumed by a selective reception
         scan in the meantime; fall back to the quiescent table. *)
      charge rt (cost rt).Cost_model.switch_vft;
      obj.vftp <- rest_table obj
  | Some msg -> (
      charge rt (cost rt).Cost_model.mq_dequeue;
      let tbl = rest_table obj in
      match entry_at tbl msg.Message.pattern with
      | Invoke impl -> run_invoke rt obj impl msg ~init_first:false
      | Invoke_init impl -> run_invoke rt obj impl msg ~init_first:true
      | No_method ->
          raise
            (Not_understood
               { cls_name = (obj_class obj).cls_name; pattern = msg.pattern })
      | Enqueue | Restore | Forward ->
          (* method tables contain only Invoke*/No_method entries *)
          assert false))

and run_invoke rt obj impl msg ~init_first =
  rt.depth <- rt.depth + 1;
  if rt.depth = 1 then rt.work_since_yield <- 0;
  let c = cost rt in
  charge rt c.Cost_model.switch_vft;
  obj.vftp <- rt.shared.enqueue_all;
  let ctx = { rt; self_obj = obj } in
  let finally () = rt.depth <- rt.depth - 1 in
  Fun.protect ~finally (fun () ->
      Effect.Deep.match_with
        (fun () ->
          if init_first then do_init rt obj;
          impl ctx msg)
        ()
        {
          retc = (fun () -> end_of_method rt obj);
          exnc = raise;
          effc =
            (fun (type a) (eff : a Effect.t) ->
              match eff with
              | Block reason ->
                  Some
                    (fun (k : (a, unit) Effect.Deep.continuation) ->
                      handle_block rt obj reason k)
              | _ -> None);
        })

(* Table 2's tail: check the message queue, switch the VFTP back, poll
   for remote messages, adjust the stack pointer and return. *)
and end_of_method rt obj =
  let c = cost rt in
  charge rt c.Cost_model.check_message_queue;
  if not (Queue.is_empty obj.mq) then schedule_pending rt obj
  else begin
    charge rt c.Cost_model.switch_vft;
    obj.vftp <- rest_table obj
  end;
  charge rt c.Cost_model.poll_remote;
  Machine.Engine.poll (machine rt) rt.node;
  charge rt c.Cost_model.stack_adjust_return

and handle_block :
    node_rt -> obj -> block_reason -> (resume, unit) Effect.Deep.continuation
    -> unit =
 fun rt obj reason k ->
  let b = { bk = k; owner = obj; why = reason } in
  let c = cost rt in
  charge rt c.Cost_model.context_save;
  Machine.Node.heap_alloc_words rt.node 16;
  match reason with
  | Wait_reply rd ->
      (* The sender parks its context on the reply destination; its own
         VFTP is already the all-queuing table, as the paper requires. *)
      assert (Option.is_none rd.blocked);
      rd.blocked <- Some b;
      bump (ctrs rt).c_reply_blocked
  | Wait_patterns patterns ->
      charge rt c.Cost_model.switch_vft;
      obj.vftp <- Vft.waiting (obj_class obj) patterns;
      assert (Option.is_none obj.blocked);
      obj.blocked <- Some b;
      bump (ctrs rt).c_wait_blocked
  | Wait_chunk target ->
      rt.chunk_waiters <- rt.chunk_waiters @ [ (target, b) ];
      bump (ctrs rt).c_chunk_stall
  | Preempted ->
      rt.work_since_yield <- 0;
      charge rt c.Cost_model.sched_enqueue;
      bump (ctrs rt).c_preempt;
      rt.preempt_pending <- rt.preempt_pending + 1;
      Machine.Engine.post (machine rt) rt.node (fun () ->
          rt.preempt_pending <- rt.preempt_pending - 1;
          resume rt b R_go)

and resume rt b r =
  charge rt (cost rt).Cost_model.context_restore;
  rt.depth <- rt.depth + 1;
  let finally () = rt.depth <- rt.depth - 1 in
  Fun.protect ~finally (fun () -> Effect.Deep.continue b.bk r)

and local_deliver ?(origin = `Local) rt obj msg =
  let c = cost rt in
  let config = rt.shared.config in
  (* Statistics distinguish locally sent messages from the receiver-side
     dispatch of inter-node messages (already counted as send.remote). *)
  let oc =
    match origin with
    | `Local -> (ctrs rt).sent_local
    | `Remote -> (ctrs rt).recv_remote
  in
  charge rt c.Cost_model.vft_lookup_call;
  match entry_at obj.vftp msg.Message.pattern with
  | Invoke impl -> deliver_invoke rt obj impl msg ~init_first:false ~oc
  | Invoke_init impl -> deliver_invoke rt obj impl msg ~init_first:true ~oc
  | Enqueue ->
      let kind = obj.vftp.vft_kind in
      if config.discard_unacceptable && (match kind with Vft_waiting _ -> true | _ -> false)
      then bump oc.o_discarded
      else begin
        (match kind with
        | Vft_fault -> bump oc.o_fault
        | _ -> bump oc.o_active);
        buffer_message rt obj msg
      end
  | Restore -> (
      match obj.blocked with
      | Some b ->
          obj.blocked <- None;
          charge rt c.Cost_model.switch_vft;
          obj.vftp <- rt.shared.enqueue_all;
          bump oc.o_restore;
          if rt.depth >= config.max_stack_depth then
            Machine.Engine.post (machine rt) rt.node (fun () ->
                resume rt b (R_msg msg))
          else resume rt b (R_msg msg)
      | None -> assert false)
  | Forward -> (
      (* Forwarding-stub table: the object migrated away. The entry
         itself is the re-posting procedure — senders never test. *)
      match rt.shared.migration with
      | Some m -> m.mig_forward rt obj msg
      | None -> assert false)
  | No_method ->
      raise
        (Not_understood
           { cls_name = (obj_class obj).cls_name; pattern = msg.pattern })

and deliver_invoke rt obj impl msg ~init_first ~oc =
  let config = rt.shared.config in
  match config.sched_kind with
  | Naive ->
      bump oc.o_naive_buffered;
      buffer_message rt obj msg;
      schedule_pending rt obj
  | Hybrid ->
      if rt.depth >= config.max_stack_depth then begin
        bump oc.o_depth_limited;
        buffer_message rt obj msg;
        schedule_pending rt obj
      end
      else begin
        bump oc.o_dormant;
        run_invoke rt obj impl msg ~init_first
      end

(* Export tracking (Section 5.2): once an address leaves its node, the
   object can never be moved by a copying collector. *)
let mark_exports rt values reply =
  let my_id = Machine.Node.id rt.node in
  let rec mark = function
    | Value.Addr a ->
        if a.Value.node = my_id then (
          match Hashtbl.find_opt rt.objects a.Value.slot with
          | Some o -> o.exported <- true
          | None -> ())
    | Value.List vs | Value.Tuple vs -> List.iter mark vs
    | Value.Unit | Value.Bool _ | Value.Int _ | Value.Float _ | Value.Str _ ->
        ()
  in
  List.iter mark values;
  Option.iter (fun a -> mark (Value.Addr a)) reply

let maybe_preempt rt =
  let config = rt.shared.config in
  if
    rt.work_since_yield >= config.quantum_instr
    && rt.depth >= 1
    && rt.leaf_depth = 0
  then
    match block rt Preempted with
    | R_go -> ()
    | R_reply _ | R_msg _ -> assert false

let send rt ~target ~pattern ~args ?reply () =
  let c = cost rt in
  charge_work rt c.Cost_model.check_locality;
  maybe_preempt rt;
  let my_id = Machine.Node.id rt.node in
  let msg = Message.make ~pattern ~args ?reply ~src_node:my_id () in
  if target.Value.node = my_id then begin
    let obj = lookup_or_embryo rt target.Value.slot in
    match rt.shared.migration with
    | None -> local_deliver rt obj msg
    | Some m -> (
        match obj.vftp.vft_kind with
        | Vft_forward _ -> m.mig_forward rt obj msg
        | _ ->
            (* The FIFO reorder gate may need to hold this message until
               earlier-sequenced in-flight messages land; [false] means
               the ungated fast path is safe. *)
            if not (m.mig_gate_local rt obj msg) then local_deliver rt obj msg)
  end
  else
    match rt.shared.migration with
    | Some m ->
        mark_exports rt args reply;
        m.mig_send rt target msg
    | None ->
        charge rt c.Cost_model.msg_setup_send;
        bump (ctrs rt).c_send_remote;
        mark_exports rt args reply;
        (match rt.shared.gc with
        | Some g -> msg.Message.gc_refs <- g.gc_grant rt args reply
        | None -> ());
        let msg =
          (* Optionally prove the message serialisable by shipping its
             codec round trip instead of the original. Encodes into the
             node's reused scratch buffer (cleared, pre-sized by
             [encoded_message_size]) rather than allocating per send. *)
          if rt.shared.config.codec_check then begin
            Buffer.clear rt.Kernel.scratch;
            Codec.encode_message_into rt.Kernel.scratch msg;
            Codec.decode_message (Buffer.to_bytes rt.Kernel.scratch)
          end
          else msg
        in
        Machine.Engine.send_am (machine rt) ~src:rt.node ~dst:target.Value.node
          ~handler:rt.shared.h_obj_msg
          ~size_bytes:(Protocol.obj_msg_bytes msg)
          (Protocol.P_obj_msg { slot = target.Value.slot; msg })

let send_inlined rt cls ~target ~pattern ~args () =
  let c = cost rt in
  let my_id = Machine.Node.id rt.node in
  if
    rt.shared.config.inline_sends
    && target.Value.node = my_id
    && rt.shared.config.sched_kind = Hybrid
    (* With migration attached the receiver may be a forwarding stub or
       gated; the generic path knows how to handle both. *)
    && Option.is_none rt.shared.migration
  then begin
    (* Inlined fast path (Section 8.2): locality check + VFTP comparison
       against the statically known dormant table. *)
    charge_work rt (c.Cost_model.check_locality + 2);
    let obj = lookup_or_embryo rt target.Value.slot in
    let dormant = Vft.dormant cls in
    if obj.vftp == dormant && rt.depth < rt.shared.config.max_stack_depth then begin
      let msg = Message.make ~pattern ~args ~src_node:my_id () in
      match entry_at dormant pattern with
      | Invoke impl ->
          bump (ctrs rt).sent_local.o_inlined;
          run_invoke rt obj impl msg ~init_first:false
      | Invoke_init impl ->
          bump (ctrs rt).sent_local.o_inlined;
          run_invoke rt obj impl msg ~init_first:true
      | Enqueue | Restore | Forward | No_method ->
          raise (Not_understood { cls_name = cls.cls_name; pattern })
    end
    else
      (* Mode or depth check failed: take the generic path (without
         re-charging the locality check). *)
      local_deliver rt obj (Message.make ~pattern ~args ~src_node:my_id ())
  end
  else send rt ~target ~pattern ~args ()

let send_optimized rt cls ~target ~pattern ~args ~known_local ~leaf ~stateless
    ~no_poll () =
  let c = cost rt in
  let my_id = Machine.Node.id rt.node in
  let fallback () = send rt ~target ~pattern ~args () in
  if target.Value.node <> my_id then begin
    if known_local then
      invalid_arg "Sched.send_optimized: known_local receiver is remote";
    fallback ()
  end
  else if rt.shared.config.sched_kind <> Hybrid then fallback ()
  else if Option.is_some rt.shared.migration then fallback ()
  else begin
    if not known_local then charge_work rt c.Cost_model.check_locality;
    let obj = lookup_or_embryo rt target.Value.slot in
    let dormant = if obj.initialized then Vft.dormant cls else Vft.init cls in
    if obj.vftp != dormant || rt.depth >= rt.shared.config.max_stack_depth then
      (* Mode test failed: the message takes the generic path. *)
      local_deliver rt obj (Message.make ~pattern ~args ~src_node:my_id ())
    else begin
      charge rt c.Cost_model.vft_lookup_call;
      let impl =
        match entry_at dormant pattern with
        | Invoke impl | Invoke_init impl -> impl
        | Enqueue | Restore | Forward | No_method ->
            raise (Not_understood { cls_name = cls.cls_name; pattern })
      in
      bump (ctrs rt).sent_local.o_inlined;
      let msg = Message.make ~pattern ~args ~src_node:my_id () in
      rt.depth <- rt.depth + 1;
      if leaf then begin
        rt.leaf_depth <- rt.leaf_depth + 1;
        (* An interrupt-dispatched method would inherit the no-blocking
           restriction; hold deliveries until the leaf body is done. *)
        Machine.Node.set_interrupts_masked rt.node true
      end;
      let finally () =
        rt.depth <- rt.depth - 1;
        if leaf then begin
          rt.leaf_depth <- rt.leaf_depth - 1;
          if rt.leaf_depth = 0 then
            Machine.Node.set_interrupts_masked rt.node false
        end
      in
      Fun.protect ~finally (fun () ->
          if not leaf then begin
            (* Without the leaf guarantee the VFTP must still be switched
               around the body, as in the generic path. *)
            charge rt (2 * c.Cost_model.switch_vft);
            obj.vftp <- rt.shared.enqueue_all;
            if not obj.initialized then do_init rt obj;
            impl { rt; self_obj = obj } msg;
            obj.vftp <- dormant
          end
          else begin
            if not obj.initialized then do_init rt obj;
            impl { rt; self_obj = obj } msg
          end;
          if not stateless then begin
            charge rt c.Cost_model.check_message_queue;
            if not (Queue.is_empty obj.mq) then schedule_pending rt obj
          end;
          if not no_poll then begin
            charge rt c.Cost_model.poll_remote;
            Machine.Engine.poll (machine rt) rt.node
          end;
          charge rt c.Cost_model.stack_adjust_return)
    end
  end

(* Selective message reception (Sections 2.2 and 4.3). *)
let wait_for rt obj patterns =
  let c = cost rt in
  charge rt c.Cost_model.check_message_queue;
  let matching m = List.mem m.Message.pattern patterns in
  (* Scan the message queue for the first awaited message. *)
  let found = ref None in
  let rest = Queue.create () in
  Queue.iter
    (fun m ->
      if Option.is_none !found && matching m then found := Some m
      else Queue.push m rest)
    obj.mq;
  match !found with
  | Some m ->
      Queue.clear obj.mq;
      Queue.transfer rest obj.mq;
      charge rt c.Cost_model.mq_dequeue;
      bump (ctrs rt).c_wait_immediate;
      m
  | None -> (
      match block rt (Wait_patterns patterns) with
      | R_msg m -> m
      | R_go | R_reply _ -> assert false)
