open Kernel
module Cost_model = Machine.Cost_model

let alloc_slot rt =
  (* Reclaimed slots are reused before the watermark grows: garbage
     collection is the allocation (and chunk-stock refill) path. *)
  match Queue.take_opt rt.free_slots with
  | Some slot ->
      rt.slots_recycled <- rt.slots_recycled + 1;
      bump (ctrs rt).c_slot_recycled;
      slot
  | None ->
      let slot = rt.next_slot in
      rt.next_slot <- slot + 1;
      slot

let recycle_slot rt slot = Queue.push slot rt.free_slots

let register_obj rt obj = Hashtbl.replace rt.objects obj.phys_slot obj

let make_embryo rt slot =
  (* A chunk pre-initialised as in Section 5.2: empty message queue and
     the generic fault table, so that any message racing ahead of the
     creation request is enqueued. *)
  let obj =
    {
      self = { Value.node = Machine.Node.id rt.node; slot };
      phys_slot = slot;
      cls = None;
      state = [||];
      vftp = rt.shared.fault_tbl;
      mq = Queue.create ();
      in_sched_q = false;
      blocked = None;
      initialized = false;
      pending_ctor_args = [];
      exported = false;
      gc_pinned = false;
      ma = None;
    }
  in
  Hashtbl.add rt.objects slot obj;
  Machine.Node.heap_alloc_words rt.node 8;
  obj

let lookup_or_embryo rt slot =
  match Hashtbl.find_opt rt.objects slot with
  | Some o -> o
  | None ->
      if slot < 0 || slot >= rt.next_slot then
        invalid_arg
          (Printf.sprintf "Sched: slot %d was never allocated on node %d" slot
             (Machine.Node.id rt.node));
      make_embryo rt slot

let rest_table obj =
  let cls = obj_class obj in
  if not obj.initialized then Vft.init cls
  else
    match cls.cls_ma with
    | Some _ -> Vft.multiactive cls
    | None -> Vft.dormant cls

let mode_of obj = Vft.kind_name obj.vftp.vft_kind

let block rt reason =
  if rt.leaf_depth > 0 then
    failwith "Sched.block: a leaf-optimised method attempted to block";
  Effect.perform (Block reason)

(* Lazy state-variable initialisation (Section 4.2): runs on the first
   method invocation instead of at creation, so creation itself stays a
   cheap allocation. *)
let do_init rt obj =
  let cls = obj_class obj in
  let args = obj.pending_ctor_args in
  obj.pending_ctor_args <- [];
  obj.state <- cls.cls_init args;
  obj.initialized <- true;
  let c = cost rt in
  charge rt (4 + (Array.length obj.state * c.Cost_model.frame_store_per_word));
  Machine.Node.heap_alloc_words rt.node (2 + Array.length obj.state)

let buffer_message rt obj msg =
  let c = cost rt in
  let words = Message.size_words msg in
  charge rt
    (c.Cost_model.frame_alloc
    + (words * c.Cost_model.frame_store_per_word)
    + c.Cost_model.mq_enqueue);
  Machine.Node.heap_alloc_words rt.node (4 + words);
  Queue.push msg obj.mq

(* --- multiactive activation management (lib/multiactive, ISSUE 8) ---

   A class with a compatibility declaration replaces its dormant/active
   table pair with one admission table ([Vft.multiactive]) that stays
   installed while activations run: each entry either starts the method
   as a member of the object's bounded running set, or parks the
   message on its compatibility group's FIFO queue. Completion pumps
   the queues. Senders still never test receiver state. *)

(* Test-only corruption hook: admit even incompatible messages, so the
   serialization-violation probe and the qcheck property have a real
   bug to catch. Never set outside tests. *)
let ma_unsafe_force_admit = ref false

let ma_spec_of obj =
  match (obj_class obj).cls_ma with
  | Some s -> s
  | None -> invalid_arg "Sched: object is not multiactive"

let ma_state obj =
  match obj.ma with
  | Some m -> m
  | None ->
      let spec = ma_spec_of obj in
      let n = Array.length spec.ma_group_names in
      let m =
        {
          mar_running = Array.make n 0;
          mar_count = 0;
          mar_queues = Array.init n (fun _ -> Queue.create ());
          mar_queued = 0;
          mar_seq = 0;
          mar_pump_posted = false;
          mar_draining = false;
          mar_on_drained = None;
          mar_peak = 0;
          mar_admitted = 0;
        }
      in
      obj.ma <- Some m;
      m

(* [group] may overlap the current running set iff it is compatible
   with every group that has a live activation. *)
let ma_compatible spec m group =
  let ok = ref true in
  Array.iteri
    (fun g n -> if n > 0 && not spec.ma_compat.(group).(g) then ok := false)
    m.mar_running;
  !ok

let rec schedule_pending rt obj =
  if not obj.in_sched_q then begin
    obj.in_sched_q <- true;
    charge rt (cost rt).Cost_model.sched_enqueue;
    Machine.Engine.post (machine rt) rt.node (fun () -> run_pending rt obj)
  end

(* Invoked when the object is dequeued from the node-global scheduling
   queue: process the next buffered message through the method table. *)
and run_pending rt obj =
  obj.in_sched_q <- false;
  (* The object may have migrated away between enqueue and this dequeue;
     its record is now a forwarding stub (empty queue, frames carried to
     the new home) and the stale scheduling entry must not clobber it. *)
  match obj.vftp.vft_kind with
  | Vft_forward _ -> ()
  | _ -> (
  assert (Option.is_none obj.blocked);
  match Queue.take_opt obj.mq with
  | None ->
      (* All buffered messages were consumed by a selective reception
         scan in the meantime; fall back to the quiescent table. *)
      charge rt (cost rt).Cost_model.switch_vft;
      obj.vftp <- rest_table obj
  | Some msg -> (
      charge rt (cost rt).Cost_model.mq_dequeue;
      let tbl = rest_table obj in
      match entry_at tbl msg.Message.pattern with
      | Invoke impl -> run_invoke rt obj impl msg ~init_first:false
      | Invoke_init impl -> run_invoke rt obj impl msg ~init_first:true
      | Ma_admit { impl; group } ->
          (* Keep funnelling through the buffer while it holds messages
             (arrivals still append behind the backlog), so the
             init-window backlog keeps its arrival order; switch to the
             admission table only once the buffer drains. *)
          ma_deliver rt obj impl ~group msg ~oc:(ctrs rt).sent_local;
          if not (Queue.is_empty obj.mq) then schedule_pending rt obj
          else if obj.vftp.vft_kind = Vft_active then begin
            charge rt (cost rt).Cost_model.switch_vft;
            obj.vftp <- tbl
          end
      | No_method ->
          raise
            (Not_understood
               { cls_name = (obj_class obj).cls_name; pattern = msg.pattern })
      | Enqueue | Restore | Forward ->
          (* method tables contain only Invoke*/No_method entries *)
          assert false))

and run_invoke rt obj impl msg ~init_first =
  rt.depth <- rt.depth + 1;
  if rt.depth = 1 then rt.work_since_yield <- 0;
  let c = cost rt in
  charge rt c.Cost_model.switch_vft;
  obj.vftp <- rt.shared.enqueue_all;
  let ctx = { rt; self_obj = obj } in
  let finally () = rt.depth <- rt.depth - 1 in
  Fun.protect ~finally (fun () ->
      Effect.Deep.match_with
        (fun () ->
          if init_first then do_init rt obj;
          impl ctx msg)
        ()
        {
          retc = (fun () -> end_of_method rt obj);
          exnc = raise;
          effc =
            (fun (type a) (eff : a Effect.t) ->
              match eff with
              | Block reason ->
                  Some
                    (fun (k : (a, unit) Effect.Deep.continuation) ->
                      handle_block rt obj reason k)
              | _ -> None);
        })

(* Table 2's tail: check the message queue, switch the VFTP back, poll
   for remote messages, adjust the stack pointer and return. *)
and end_of_method rt obj =
  let c = cost rt in
  charge rt c.Cost_model.check_message_queue;
  if not (Queue.is_empty obj.mq) then schedule_pending rt obj
  else begin
    charge rt c.Cost_model.switch_vft;
    obj.vftp <- rest_table obj
  end;
  charge rt c.Cost_model.poll_remote;
  Machine.Engine.poll (machine rt) rt.node;
  charge rt c.Cost_model.stack_adjust_return

and handle_block :
    node_rt -> obj -> block_reason -> (resume, unit) Effect.Deep.continuation
    -> unit =
 fun rt obj reason k ->
  let b = { bk = k; owner = obj; why = reason } in
  let c = cost rt in
  charge rt c.Cost_model.context_save;
  Machine.Node.heap_alloc_words rt.node 16;
  match reason with
  | Wait_reply rd ->
      (* The sender parks its context on the reply destination; its own
         VFTP is already the all-queuing table, as the paper requires. *)
      assert (Option.is_none rd.blocked);
      rd.blocked <- Some b;
      bump (ctrs rt).c_reply_blocked
  | Wait_patterns patterns ->
      charge rt c.Cost_model.switch_vft;
      obj.vftp <- Vft.waiting (obj_class obj) patterns;
      assert (Option.is_none obj.blocked);
      obj.blocked <- Some b;
      bump (ctrs rt).c_wait_blocked
  | Wait_chunk target ->
      rt.chunk_waiters <- rt.chunk_waiters @ [ (target, b) ];
      bump (ctrs rt).c_chunk_stall
  | Preempted ->
      rt.work_since_yield <- 0;
      charge rt c.Cost_model.sched_enqueue;
      bump (ctrs rt).c_preempt;
      rt.preempt_pending <- rt.preempt_pending + 1;
      Machine.Engine.post (machine rt) rt.node (fun () ->
          rt.preempt_pending <- rt.preempt_pending - 1;
          resume rt b R_go)

and resume rt b r =
  charge rt (cost rt).Cost_model.context_restore;
  rt.depth <- rt.depth + 1;
  let finally () = rt.depth <- rt.depth - 1 in
  Fun.protect ~finally (fun () -> Effect.Deep.continue b.bk r)

and local_deliver ?(origin = `Local) rt obj msg =
  let c = cost rt in
  let config = rt.shared.config in
  (* Statistics distinguish locally sent messages from the receiver-side
     dispatch of inter-node messages (already counted as send.remote). *)
  let oc =
    match origin with
    | `Local -> (ctrs rt).sent_local
    | `Remote -> (ctrs rt).recv_remote
  in
  charge rt c.Cost_model.vft_lookup_call;
  match entry_at obj.vftp msg.Message.pattern with
  | Invoke impl -> deliver_invoke rt obj impl msg ~init_first:false ~oc
  | Invoke_init impl -> deliver_invoke rt obj impl msg ~init_first:true ~oc
  | Ma_admit { impl; group } -> ma_deliver rt obj impl ~group msg ~oc
  | Enqueue ->
      let kind = obj.vftp.vft_kind in
      if config.discard_unacceptable && (match kind with Vft_waiting _ -> true | _ -> false)
      then bump oc.o_discarded
      else begin
        (match kind with
        | Vft_fault -> bump oc.o_fault
        | _ -> bump oc.o_active);
        buffer_message rt obj msg
      end
  | Restore -> (
      match obj.blocked with
      | Some b ->
          obj.blocked <- None;
          charge rt c.Cost_model.switch_vft;
          obj.vftp <- rt.shared.enqueue_all;
          bump oc.o_restore;
          if rt.depth >= config.max_stack_depth then
            Machine.Engine.post (machine rt) rt.node (fun () ->
                resume rt b (R_msg msg))
          else resume rt b (R_msg msg)
      | None -> assert false)
  | Forward -> (
      (* Forwarding-stub table: the object migrated away. The entry
         itself is the re-posting procedure — senders never test. *)
      match rt.shared.migration with
      | Some m -> m.mig_forward rt obj msg
      | None -> assert false)
  | No_method ->
      raise
        (Not_understood
           { cls_name = (obj_class obj).cls_name; pattern = msg.pattern })

and deliver_invoke rt obj impl msg ~init_first ~oc =
  let config = rt.shared.config in
  match config.sched_kind with
  | Naive ->
      bump oc.o_naive_buffered;
      buffer_message rt obj msg;
      schedule_pending rt obj
  | Hybrid ->
      if rt.depth >= config.max_stack_depth then begin
        bump oc.o_depth_limited;
        buffer_message rt obj msg;
        schedule_pending rt obj
      end
      else begin
        bump oc.o_dormant;
        run_invoke rt obj impl msg ~init_first
      end

(* Admission control for multiactive objects. The message either joins
   the running set now or parks on its group's FIFO queue; a recorded
   decision point lets the explorer defer an otherwise-admissible
   message, exercising the queue/pump path under any schedule.

   The no-overtake rule: besides compatibility with every running
   activation, direct admission requires that the message's own group
   queue is empty (starts stay FIFO within a group) and that no
   incompatible group holds queued messages (a stream of compatible
   arrivals cannot starve a parked exclusive request — classic
   writer starvation under read-heavy load). *)
and ma_deliver rt obj impl ~group msg ~oc =
  let config = rt.shared.config in
  let m = ma_state obj in
  let spec = ma_spec_of obj in
  let overtakes_queued =
    m.mar_queued > 0
    && (let blocked = ref false in
        Array.iteri
          (fun g q ->
            if
              not (Queue.is_empty q)
              && (g = group || not spec.ma_compat.(group).(g))
            then blocked := true)
          m.mar_queues;
        !blocked)
  in
  let admissible =
    config.sched_kind = Hybrid
    && (not m.mar_draining)
    && rt.depth < config.max_stack_depth
    && m.mar_count < spec.ma_budget
    && ((ma_compatible spec m group && not overtakes_queued)
       || !ma_unsafe_force_admit)
  in
  if admissible && Machine.Engine.decide (machine rt) "ma.admit.defer" 2 = 0
  then begin
    bump oc.o_dormant;
    ma_run_activation rt obj impl ~group msg
  end
  else begin
    bump oc.o_active;
    bump (ctrs rt).c_ma_queued;
    ma_queue_message rt obj m msg ~group
  end

and ma_queue_message rt obj m msg ~group =
  let c = cost rt in
  let words = Message.size_words msg in
  charge rt
    (c.Cost_model.frame_alloc
    + (words * c.Cost_model.frame_store_per_word)
    + c.Cost_model.mq_enqueue);
  Machine.Node.heap_alloc_words rt.node (4 + words);
  Queue.push (m.mar_seq, msg) m.mar_queues.(group);
  m.mar_seq <- m.mar_seq + 1;
  m.mar_queued <- m.mar_queued + 1;
  (* No lost wakeup: with an empty running set nothing will ever reach
     [ma_end_of_activation] to pump this message back out. *)
  if m.mar_count = 0 && (not m.mar_pump_posted) && not m.mar_draining then
    schedule_ma_pump rt obj

and ma_run_activation rt obj impl ~group msg =
  let c = cost rt in
  let m = ma_state obj in
  let spec = ma_spec_of obj in
  if m.mar_count > 0 && not (ma_compatible spec m group) then
    (* Only the test-only forced-admission hook can get here. *)
    bump (ctrs rt).c_ma_conflict;
  m.mar_running.(group) <- m.mar_running.(group) + 1;
  m.mar_count <- m.mar_count + 1;
  m.mar_admitted <- m.mar_admitted + 1;
  if m.mar_count > m.mar_peak then m.mar_peak <- m.mar_count;
  if m.mar_count >= 2 then bump (ctrs rt).c_ma_overlap;
  bump (ctrs rt).c_ma_admit;
  rt.depth <- rt.depth + 1;
  if rt.depth = 1 then rt.work_since_yield <- 0;
  (* The admission table stays installed — that is the point — so the
     only table work is the running-set bookkeeping. *)
  charge rt c.Cost_model.switch_vft;
  let prev_scale = rt.ma_scale in
  (* Charge scale = the overlap degree a worker pool would achieve on
     the compatible work at hand: live activations plus queued messages
     of groups this one may overlap (a backlog of compatible reads
     drains [ma_cores] at a time on real hardware even though the
     simulator pumps them sequentially), capped by the activation
     budget and the per-object worker count. *)
  let avail = ref m.mar_count in
  Array.iteri
    (fun g q ->
      if spec.ma_compat.(group).(g) then avail := !avail + Queue.length q)
    m.mar_queues;
  rt.ma_scale <-
    min (min !avail spec.ma_budget) rt.shared.config.ma_cores;
  let ctx = { rt; self_obj = obj } in
  let finally () =
    rt.depth <- rt.depth - 1;
    rt.ma_scale <- prev_scale
  in
  Fun.protect ~finally (fun () ->
      Effect.Deep.match_with
        (fun () ->
          if not obj.initialized then do_init rt obj;
          impl ctx msg)
        ()
        {
          retc = (fun () -> ma_end_of_activation rt obj ~group);
          exnc = raise;
          effc =
            (fun (type a) (eff : a Effect.t) ->
              match eff with
              | Block reason ->
                  Some
                    (fun (k : (a, unit) Effect.Deep.continuation) ->
                      handle_block rt obj reason k)
              | _ -> None);
        })

and ma_end_of_activation rt obj ~group =
  let c = cost rt in
  let m = ma_state obj in
  charge rt c.Cost_model.check_message_queue;
  (* Poll before releasing the slot: arrivals dispatched by this poll
     are admitted while the finishing activation still occupies its set
     entry — that is where overlap (and the multicore speedup) comes
     from under backlog. *)
  charge rt c.Cost_model.poll_remote;
  Machine.Engine.poll (machine rt) rt.node;
  m.mar_running.(group) <- m.mar_running.(group) - 1;
  m.mar_count <- m.mar_count - 1;
  if m.mar_queued > 0 && (not m.mar_pump_posted) && not m.mar_draining then
    schedule_ma_pump rt obj;
  if m.mar_draining && m.mar_count = 0 then (
    match m.mar_on_drained with
    | Some f ->
        m.mar_on_drained <- None;
        f ()
    | None -> ());
  charge rt c.Cost_model.stack_adjust_return

and schedule_ma_pump rt obj =
  let m = ma_state obj in
  m.mar_pump_posted <- true;
  charge rt (cost rt).Cost_model.sched_enqueue;
  Machine.Engine.post (machine rt) rt.node (fun () -> ma_pump rt obj)

(* Drain the group queues back into the running set, eldest first
   within each group; when several groups are eligible a recorded
   decision point picks, so the explorer can sweep cross-group orders. *)
and ma_pump rt obj =
  let m = ma_state obj in
  m.mar_pump_posted <- false;
  match obj.vftp.vft_kind with
  | Vft_forward _ ->
      (* Migrated away between post and run; the queues were flattened
         into the shipped frames. *)
      ()
  | _ ->
      if m.mar_draining then ()
      else begin
        let spec = ma_spec_of obj in
        let tbl = Vft.multiactive (obj_class obj) in
        let rec loop () =
          if m.mar_queued > 0 && m.mar_count < spec.ma_budget then begin
            (* Eligible groups, oldest queue head first: index 0 of the
               decision is the arrival-order (starvation-free) choice,
               and the explorer can pick any other eligible head. *)
            let eligible = ref [] in
            Array.iteri
              (fun g q ->
                match Queue.peek_opt q with
                | Some (seq, _) when ma_compatible spec m g ->
                    eligible := (seq, g) :: !eligible
                | _ -> ())
              m.mar_queues;
            match List.sort compare !eligible with
            | [] -> ()
            | gs ->
                let pick =
                  Machine.Engine.decide (machine rt) "ma.pump.pick"
                    (List.length gs)
                in
                let _, g = List.nth gs pick in
                let _, msg = Queue.take m.mar_queues.(g) in
                m.mar_queued <- m.mar_queued - 1;
                charge rt (cost rt).Cost_model.mq_dequeue;
                (match entry_at tbl msg.Message.pattern with
                | Ma_admit { impl; group } ->
                    ma_run_activation rt obj impl ~group msg
                | _ ->
                    (* only a class method can have been queued *)
                    assert false);
                loop ()
          end
        in
        loop ()
      end

(* Export tracking (Section 5.2): once an address leaves its node, the
   object can never be moved by a copying collector. *)
let mark_exports rt values reply =
  let my_id = Machine.Node.id rt.node in
  let rec mark = function
    | Value.Addr a ->
        if a.Value.node = my_id then (
          match Hashtbl.find_opt rt.objects a.Value.slot with
          | Some o -> o.exported <- true
          | None -> ())
    | Value.List vs | Value.Tuple vs -> List.iter mark vs
    | Value.Unit | Value.Bool _ | Value.Int _ | Value.Float _ | Value.Str _ ->
        ()
  in
  List.iter mark values;
  Option.iter (fun a -> mark (Value.Addr a)) reply

let maybe_preempt rt =
  let config = rt.shared.config in
  if
    rt.work_since_yield >= config.quantum_instr
    && rt.depth >= 1
    && rt.leaf_depth = 0
  then
    match block rt Preempted with
    | R_go -> ()
    | R_reply _ | R_msg _ -> assert false

let send rt ~target ~pattern ~args ?reply () =
  let c = cost rt in
  charge_work rt c.Cost_model.check_locality;
  maybe_preempt rt;
  let my_id = Machine.Node.id rt.node in
  let msg = Message.make ~pattern ~args ?reply ~src_node:my_id () in
  if target.Value.node = my_id then begin
    let obj = lookup_or_embryo rt target.Value.slot in
    match rt.shared.migration with
    | None -> local_deliver rt obj msg
    | Some m -> (
        match obj.vftp.vft_kind with
        | Vft_forward _ -> m.mig_forward rt obj msg
        | _ ->
            (* The FIFO reorder gate may need to hold this message until
               earlier-sequenced in-flight messages land; [false] means
               the ungated fast path is safe. *)
            if not (m.mig_gate_local rt obj msg) then local_deliver rt obj msg)
  end
  else
    match rt.shared.migration with
    | Some m ->
        mark_exports rt args reply;
        m.mig_send rt target msg
    | None ->
        charge rt c.Cost_model.msg_setup_send;
        bump (ctrs rt).c_send_remote;
        mark_exports rt args reply;
        (match rt.shared.gc with
        | Some g -> msg.Message.gc_refs <- g.gc_grant rt args reply
        | None -> ());
        let msg =
          (* Optionally prove the message serialisable by shipping its
             codec round trip instead of the original. Encodes into the
             node's reused scratch buffer (cleared, pre-sized by
             [encoded_message_size]) rather than allocating per send. *)
          if rt.shared.config.codec_check then begin
            Buffer.clear rt.Kernel.scratch;
            Codec.encode_message_into rt.Kernel.scratch msg;
            Codec.decode_message (Buffer.to_bytes rt.Kernel.scratch)
          end
          else msg
        in
        Machine.Engine.send_am (machine rt) ~src:rt.node ~dst:target.Value.node
          ~handler:rt.shared.h_obj_msg
          ~size_bytes:(Protocol.obj_msg_bytes msg)
          (Protocol.P_obj_msg { slot = target.Value.slot; msg })

let send_inlined rt cls ~target ~pattern ~args () =
  let c = cost rt in
  let my_id = Machine.Node.id rt.node in
  if
    rt.shared.config.inline_sends
    && target.Value.node = my_id
    && rt.shared.config.sched_kind = Hybrid
    (* With migration attached the receiver may be a forwarding stub or
       gated; the generic path knows how to handle both. *)
    && Option.is_none rt.shared.migration
  then begin
    (* Inlined fast path (Section 8.2): locality check + VFTP comparison
       against the statically known dormant table. *)
    charge_work rt (c.Cost_model.check_locality + 2);
    let obj = lookup_or_embryo rt target.Value.slot in
    let dormant = Vft.dormant cls in
    if obj.vftp == dormant && rt.depth < rt.shared.config.max_stack_depth then begin
      let msg = Message.make ~pattern ~args ~src_node:my_id () in
      match entry_at dormant pattern with
      | Invoke impl ->
          bump (ctrs rt).sent_local.o_inlined;
          run_invoke rt obj impl msg ~init_first:false
      | Invoke_init impl ->
          bump (ctrs rt).sent_local.o_inlined;
          run_invoke rt obj impl msg ~init_first:true
      | Ma_admit _ | Enqueue | Restore | Forward | No_method ->
          raise (Not_understood { cls_name = cls.cls_name; pattern })
    end
    else
      (* Mode or depth check failed: take the generic path (without
         re-charging the locality check). *)
      local_deliver rt obj (Message.make ~pattern ~args ~src_node:my_id ())
  end
  else send rt ~target ~pattern ~args ()

let send_optimized rt cls ~target ~pattern ~args ~known_local ~leaf ~stateless
    ~no_poll () =
  let c = cost rt in
  let my_id = Machine.Node.id rt.node in
  let fallback () = send rt ~target ~pattern ~args () in
  if target.Value.node <> my_id then begin
    if known_local then
      invalid_arg "Sched.send_optimized: known_local receiver is remote";
    fallback ()
  end
  else if rt.shared.config.sched_kind <> Hybrid then fallback ()
  else if Option.is_some rt.shared.migration then fallback ()
  else begin
    if not known_local then charge_work rt c.Cost_model.check_locality;
    let obj = lookup_or_embryo rt target.Value.slot in
    let dormant = if obj.initialized then Vft.dormant cls else Vft.init cls in
    if obj.vftp != dormant || rt.depth >= rt.shared.config.max_stack_depth then
      (* Mode test failed: the message takes the generic path. *)
      local_deliver rt obj (Message.make ~pattern ~args ~src_node:my_id ())
    else begin
      charge rt c.Cost_model.vft_lookup_call;
      let impl =
        match entry_at dormant pattern with
        | Invoke impl | Invoke_init impl -> impl
        | Ma_admit _ | Enqueue | Restore | Forward | No_method ->
            raise (Not_understood { cls_name = cls.cls_name; pattern })
      in
      bump (ctrs rt).sent_local.o_inlined;
      let msg = Message.make ~pattern ~args ~src_node:my_id () in
      rt.depth <- rt.depth + 1;
      if leaf then begin
        rt.leaf_depth <- rt.leaf_depth + 1;
        (* An interrupt-dispatched method would inherit the no-blocking
           restriction; hold deliveries until the leaf body is done. *)
        Machine.Node.set_interrupts_masked rt.node true
      end;
      let finally () =
        rt.depth <- rt.depth - 1;
        if leaf then begin
          rt.leaf_depth <- rt.leaf_depth - 1;
          if rt.leaf_depth = 0 then
            Machine.Node.set_interrupts_masked rt.node false
        end
      in
      Fun.protect ~finally (fun () ->
          if not leaf then begin
            (* Without the leaf guarantee the VFTP must still be switched
               around the body, as in the generic path. *)
            charge rt (2 * c.Cost_model.switch_vft);
            obj.vftp <- rt.shared.enqueue_all;
            if not obj.initialized then do_init rt obj;
            impl { rt; self_obj = obj } msg;
            obj.vftp <- dormant
          end
          else begin
            if not obj.initialized then do_init rt obj;
            impl { rt; self_obj = obj } msg
          end;
          if not stateless then begin
            charge rt c.Cost_model.check_message_queue;
            if not (Queue.is_empty obj.mq) then schedule_pending rt obj
          end;
          if not no_poll then begin
            charge rt c.Cost_model.poll_remote;
            Machine.Engine.poll (machine rt) rt.node
          end;
          charge rt c.Cost_model.stack_adjust_return)
    end
  end

(* Selective message reception (Sections 2.2 and 4.3). *)
let wait_for rt obj patterns =
  (* A multiactive class cannot use selective reception: the waiting
     table would displace the admission table and silently re-serialize
     the object (and the parked-context bookkeeping assumes exactly one
     activation). Rejected loudly instead. *)
  (match (obj_class obj).cls_ma with
  | Some _ ->
      invalid_arg
        (Printf.sprintf
           "Sched.wait_for: multiactive class %s cannot use selective \
            reception"
           (obj_class obj).cls_name)
  | None -> ());
  let c = cost rt in
  charge rt c.Cost_model.check_message_queue;
  let matching m = List.mem m.Message.pattern patterns in
  (* Scan the message queue for the first awaited message. *)
  let found = ref None in
  let rest = Queue.create () in
  Queue.iter
    (fun m ->
      if Option.is_none !found && matching m then found := Some m
      else Queue.push m rest)
    obj.mq;
  match !found with
  | Some m ->
      Queue.clear obj.mq;
      Queue.transfer rest obj.mq;
      charge rt c.Cost_model.mq_dequeue;
      bump (ctrs rt).c_wait_immediate;
      m
  | None -> (
      match block rt (Wait_patterns patterns) with
      | R_msg m -> m
      | R_go | R_reply _ -> assert false)
