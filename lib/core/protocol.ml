(** Wire payloads of the runtime's active messages, one constructor per
    handler category of Section 5.1. *)

type Machine.Am.payload +=
  | P_obj_msg of { slot : int; msg : Message.t }
      (** Category 1: normal message transmission between objects. *)
  | P_create of {
      slot : int;
      cls_id : int;
      args : Value.t list;
      gc_refs : Message.gc_ref list;
          (** reference manifest for addresses among the constructor
              arguments (empty unless a distributed GC is attached) *)
    }
      (** Category 2: request for remote object creation at a chunk the
          requester obtained from its stock. *)
  | P_chunk of { slot : int }
      (** Category 3: reply to a remote memory allocation request — a
          fresh chunk on the sending node, replenishing the requester's
          stock. *)

let obj_msg_bytes msg = 4 + Message.size_bytes msg
let create_bytes args = 12 + (4 * List.fold_left (fun a v -> a + Value.size_words v) 0 args)
let chunk_bytes = 4
