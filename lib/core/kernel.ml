(** Core type knot of the ABCL runtime.

    The object representation follows Figure 2 of the paper: a state
    variable box, a message queue of heap-allocated frames, and a virtual
    function table pointer (VFTP) that is switched between multiple
    per-class tables as the object changes mode. Method bodies run on the
    OCaml stack; a body that blocks performs the {!Block} effect, and the
    captured one-shot continuation is the paper's lazily heap-allocated
    context frame. *)

(** One entry of a virtual function table. The paper compiles each entry
    to a tiny procedure (method body / queuing procedure / context
    restoration routine); we represent the three behaviours symbolically
    and charge the same costs when interpreting them. *)
type entry =
  | Invoke of methd  (** dormant mode: execute the method body now *)
  | Invoke_init of methd
      (** dormant, state variables not yet initialised: run the lazy
          initialisation routine, then the body (Section 4.2) *)
  | Enqueue  (** active / fault / non-awaited: buffer into the queue *)
  | Restore  (** waiting mode, awaited pattern: restore saved context *)
  | Forward
      (** forwarding-stub mode: the object migrated away; re-post the
          message to its new home. Reuses the multiple-VFT trick so the
          sender never tests for "moved" — dispatch just does it. *)
  | Ma_admit of { impl : methd; group : int }
      (** multiactive mode: admit the message into the object's running
          activation set when its compatibility group permits, else
          enqueue it on the group's FIFO queue. As with every other
          table, the sender never tests receiver state — the admission
          control {e is} the dispatch entry. *)
  | No_method  (** pattern not understood by this class *)

and vft = {
  entries : entry array;  (** indexed by pattern id *)
  default : entry;  (** behaviour for ids beyond [entries] *)
  vft_kind : vft_kind;
}

and vft_kind =
  | Vft_dormant
  | Vft_init
  | Vft_active
  | Vft_waiting of Pattern.t list
  | Vft_fault  (** generic fault table of uninitialised remote chunks *)
  | Vft_forward of fwd
      (** forwarding mail address left behind by object migration *)
  | Vft_multiactive
      (** compatibility-group admission table: replaces the
          dormant/active pair for classes with a declared [ma_spec] *)

(** The forwarding state of a migrated-away object. [fwd_canon] is the
    object's mail address (immutable, Section 5.2 — the identity every
    sender holds); [fwd_to] is the best-known current physical address
    and is retargeted by migration updates so chains compress to one
    hop; [fwd_epoch] orders updates (one migration = one epoch). *)
and fwd = {
  fwd_canon : Value.addr;
  mutable fwd_to : Value.addr;
  mutable fwd_epoch : int;
}

and methd = ctx -> Message.t -> unit

and cls = {
  cls_id : int;
  cls_name : string;
  state_names : string array;
  cls_init : Value.t list -> Value.t array;
      (** constructor arguments -> initial state variable box *)
  methods : (Pattern.t * methd) list;
  mutable tbl_dormant : vft option;  (** built lazily, cached *)
  mutable tbl_init : vft option;
  waiting_cache : (Pattern.t list, vft) Hashtbl.t;
  mutable cls_ma : ma_spec option;
      (** compatibility declaration; [None] keeps the class on the
          paper's strictly serialized dormant/active tables *)
  mutable tbl_ma : vft option;  (** the admission table, built lazily *)
}

(** A class's compatibility declaration. Methods in the same group, or
    in groups marked compatible, may run concurrently on one object;
    every other pair strictly serializes (sequential-by-default, after
    Henrio & Rochas' multiactive objects). *)
and ma_spec = {
  ma_budget : int;  (** bound on concurrent activations per object *)
  ma_group_names : string array;
  ma_group_of : (Pattern.t * int) list;  (** every method -> its group *)
  ma_compat : bool array array;
      (** symmetric; [ma_compat.(g).(g)] is true only for declared
          groups — methods left out of the declaration get an implicit
          singleton group that is incompatible even with itself *)
}

(** Per-object activation manager, allocated lazily at first admission.
    [mar_running] counts live activations per group; admission requires
    compatibility with {e every} non-empty group and a free budget
    slot. Messages that fail admission park on their group's FIFO
    queue and are pumped back in when an activation completes. *)
and ma_run = {
  mar_running : int array;
  mutable mar_count : int;
  mar_queues : (int * Message.t) Queue.t array;
      (** messages stamped with their admission-arrival sequence, so
          the pump can default to oldest-head-first across groups
          (starvation freedom) while staying FIFO within each group *)
  mutable mar_queued : int;
  mutable mar_seq : int;  (** next arrival stamp *)
  mutable mar_pump_posted : bool;
  mutable mar_draining : bool;
      (** migration freeze in progress: admit nothing, let the running
          set empty out, then fire [mar_on_drained] *)
  mutable mar_on_drained : (unit -> unit) option;
  mutable mar_peak : int;  (** high-water mark of [mar_count] *)
  mutable mar_admitted : int;  (** total activations ever admitted *)
}

and obj = {
  mutable self : Value.addr;  (** mutable only for local-GC relocation *)
  mutable phys_slot : int;
      (** slot in the hosting node's object table. Equal to [self.slot]
          until the object migrates; after migration [self] stays the
          birth mail address while [phys_slot] tracks the current home. *)
  mutable cls : cls option;  (** [None] while an uninitialised chunk *)
  mutable state : Value.t array;
  mutable vftp : vft;
  mq : Message.t Queue.t;
  mutable in_sched_q : bool;
  mutable blocked : blocked option;
      (** a context parked on this object: its own blocked method
          (selective reception) or, for reply destinations, the waiting
          sender's context *)
  mutable initialized : bool;
  mutable pending_ctor_args : Value.t list;
      (** constructor arguments awaiting the lazy initialisation *)
  mutable exported : bool;
      (** its address has left this node (in a remote message, creation
          argument or reply destination); a [(node, pointer)] mail
          address pins such an object in place — Section 5.2 *)
  mutable gc_pinned : bool;
      (** a GC root: bootstrap objects and anything the embedding holds
          an address to outside the heap (test drivers). Never swept. *)
  mutable ma : ma_run option;
      (** activation manager; [None] until the first multiactive
          admission (and again after migration ships the object away) *)
}

and blocked = {
  bk : (resume, unit) Effect.Deep.continuation;
  owner : obj;  (** object whose method is suspended *)
  why : block_reason;  (** what the context is waiting for (diagnostics) *)
}

and resume =
  | R_go  (** plain resumption (preemption, chunk-stock refill) *)
  | R_reply of Value.t  (** a now-type reply value *)
  | R_msg of Message.t  (** an awaited message (selective reception) *)

and block_reason =
  | Wait_reply of obj  (** the reply-destination object *)
  | Wait_patterns of Pattern.t list
  | Wait_chunk of int  (** waiting for a chunk on this node *)
  | Preempted

and ctx = { rt : node_rt; self_obj : obj }

and sched_kind =
  | Hybrid  (** the paper's integrated stack + queue scheduling *)
  | Naive  (** always buffer + schedule through the queue (Section 6.3) *)

and placement =
  | Round_robin  (** cycle over all nodes, starting after this one *)
  | Neighbor_round_robin
      (** cycle over this node and its torus neighbours: a simple
          locality-preserving policy "based on local information" *)
  | Random_node
  | Self_node
  | Fixed_node of int
  | Custom_policy of (int -> int)
      (** maps the creating node's id to a target (e.g. load-aware
          placement built from the gossip service) *)

and rt_config = {
  sched_kind : sched_kind;
  max_stack_depth : int;
      (** stack-invocation depth beyond which sends are buffered; models
          the preemption of deep recursions *)
  quantum_instr : int;
      (** accumulated work (in instructions) after which a running method
          is preempted at its next safe point *)
  stock_size : int;  (** chunks pre-delivered per (requester, target) pair *)
  placement : placement;
  discard_unacceptable : bool;
      (** alternative selective-reception semantics (Section 4.2):
          discard rather than buffer non-awaited messages *)
  inline_sends : bool;
      (** Section 8.2: compile-time-known-class send inlining *)
  codec_check : bool;
      (** round-trip every inter-node message through the binary wire
          codec, verifying serialisability (testing aid) *)
  gossip_interval_ns : int;
      (** when > 0, every node broadcasts its load to its torus
          neighbours on this period (virtual ns) without application
          cooperation, so placement/migration policies see fresh load.
          0 (the default) keeps gossip strictly hand-driven. *)
  ma_cores : int;
      (** worker threads a node devotes to overlapped activations of one
          multiactive object: while [j] activations overlap, charged
          instructions scale by [1 / min j ma_cores]. Irrelevant (scale
          stays 1) unless some class declares compatibility. *)
}

(** Hooks installed by the object-migration subsystem ([lib/migrate]).
    [None] (the default) keeps every send/dispatch path bit-identical to
    the migration-free runtime; the hooks take over only the cases
    migration introduces. *)
and migration = {
  mig_send : node_rt -> Value.addr -> Message.t -> unit;
      (** takes over a remote send: location-cache resolution, per
          (sender node, object) FIFO sequencing, transmission *)
  mig_forward : node_rt -> obj -> Message.t -> unit;
      (** a local dispatch reached a forwarding stub *)
  mig_gate_local : node_rt -> obj -> Message.t -> bool;
      (** local delivery to a physically present object: returns [true]
          iff the message was captured by the FIFO reorder gate (earlier
          sequenced messages from this node are still in flight) *)
  mig_retire : node_rt -> obj -> unit;
      (** the object retired; drop migration-side state *)
}

(** Hooks installed by the distributed garbage collector ([lib/dgc]).
    [None] (the default) keeps messages manifest-free and every send
    path bit-identical to the GC-free runtime. *)
and gc = {
  gc_grant : node_rt -> Value.t list -> Value.addr option -> Message.gc_ref list;
      (** addresses in a payload are leaving this node: split reference
          weights (owner-side: mint them) and build the wire manifest *)
  gc_accept : node_rt -> Message.gc_ref list -> unit;
      (** a manifest arrived with a message this node takes custody of:
          credit the local stub/scion tables *)
  gc_conjure : node_rt -> Value.addr -> Message.gc_ref;
      (** remote creation conjured [addr] at a pre-reserved chunk: build
          the creator's counted claim. The owner's matching mint is
          applied by [gc_conjured] when the creation request itself is
          processed — the mint must ride the (FIFO) creation message,
          not a separate debit, or a sweep landing between the two
          frees the newborn under its creator's reference *)
  gc_conjured : node_rt -> int -> unit;
      (** the owner-side mint for a conjured chunk: credit [slot]'s
          scion with the weight [gc_conjure] claimed *)
}

and shared = {
  machine : Machine.Engine.t;
  classes : (int, cls) Hashtbl.t;  (** registry keyed by [cls_id] *)
  enqueue_all : vft;  (** the shared active-mode table *)
  fault_tbl : vft;  (** the generic fault table *)
  h_obj_msg : int;  (** AM handler ids *)
  h_create : int;
  h_chunk : int;
  config : rt_config;
  reply_cls : cls;
  ctrs : counters;  (** cached statistics cells (hot path) *)
  mutable migration : migration option;
      (** installed by [Migrate.attach]; [None] means no object ever
          moves and all migration branches are dead *)
  mutable gc : gc option;
      (** installed by [Dgc.attach]; [None] means no reference weights
          are ever tracked and exported objects are immortal *)
}

(** Statistics counters resolved once at boot, so hot paths increment a
    ref instead of hashing a string. The cells live in the machine's
    [Stats.t], keeping all reporting uniform. *)
and counters = {
  sent_local : origin_counters;  (** local sends: "send.local.*" *)
  recv_remote : origin_counters;  (** remote receipts: "recv.remote.*" *)
  c_send_remote : Simcore.Stats.cell;
  c_create_local : Simcore.Stats.cell;
  c_create_remote : Simcore.Stats.cell;
  c_create_remote_applied : Simcore.Stats.cell;
  c_chunk_refill : Simcore.Stats.cell;
  c_chunk_stall : Simcore.Stats.cell;
  c_slot_recycled : Simcore.Stats.cell;
  c_preempt : Simcore.Stats.cell;
  c_wait_blocked : Simcore.Stats.cell;
  c_wait_immediate : Simcore.Stats.cell;
  c_reply_immediate : Simcore.Stats.cell;
  c_reply_blocked : Simcore.Stats.cell;
  c_reply_no_dest : Simcore.Stats.cell;
  c_ma_admit : Simcore.Stats.cell;  (** activations admitted (immediately or pumped) *)
  c_ma_queued : Simcore.Stats.cell;  (** messages parked on a group queue *)
  c_ma_overlap : Simcore.Stats.cell;  (** admissions that joined a running set *)
  c_ma_conflict : Simcore.Stats.cell;
      (** incompatible overlaps — must stay 0; only the test-only
          forced-admission hook can make it move *)
}

and origin_counters = {
  o_dormant : Simcore.Stats.cell;
  o_active : Simcore.Stats.cell;
  o_fault : Simcore.Stats.cell;
  o_restore : Simcore.Stats.cell;
  o_discarded : Simcore.Stats.cell;
  o_naive_buffered : Simcore.Stats.cell;
  o_depth_limited : Simcore.Stats.cell;
  o_inlined : Simcore.Stats.cell;
}

and node_rt = {
  shared : shared;
  node : Machine.Node.t;
  objects : (int, obj) Hashtbl.t;
  mutable next_slot : int;  (** watermark of allocated/reserved slots *)
  free_slots : int Queue.t;
      (** slots reclaimed by the GC, preferred by {!Sched.alloc_slot}
          over bumping the watermark — reclamation feeds both local
          creation and the chunk-stock replenishment path *)
  mutable slots_recycled : int;  (** free-list pops (allocation reuse) *)
  stocks : int Queue.t array;  (** per target node: pre-delivered slots *)
  mutable stock_low_water : int;
      (** smallest stock depth ever observed for any target on this
          node; [stock_size] until the first take *)
  mutable chunk_waiters : (int * blocked) list;
      (** (target node, parked requester context) *)
  mutable preempt_pending : int;
      (** preemption resumes posted but not yet run; their captured
          continuations hold stack references no sweep can trace *)
  mutable rr_cursor : int;  (** round-robin placement cursor *)
  mutable depth : int;  (** current stack-invocation depth *)
  mutable leaf_depth : int;
      (** >0 while a [leaf]-optimised method runs (blocking forbidden) *)
  mutable work_since_yield : int;  (** instructions since last yield *)
  scratch : Buffer.t;
      (** per-node codec scratch: the send path encodes into this one
          reused buffer instead of allocating per message *)
  rng : Simcore.Rng.t;
  mutable ma_scale : int;
      (** instruction-charge divisor while inside an overlapped
          multiactive activation; 1 everywhere else, so the serialized
          runtime is bit-identical to the pre-multiactive build *)
}

type _ Effect.t += Block : block_reason -> resume Effect.t

exception Not_understood of { cls_name : string; pattern : Pattern.t }

(* --- small helpers shared by the behavioural modules --- *)

let machine rt = rt.shared.machine
let cost rt = Machine.Engine.cost rt.shared.machine
let stats rt = Machine.Engine.stats rt.shared.machine
let charge rt instructions =
  (* Overlapped multiactive activations model [ma_scale] worker threads
     sharing the node: wall-clock per instruction divides by the overlap
     degree (ceiling division, so cost never rounds to zero). *)
  let n =
    if rt.ma_scale > 1 then (instructions + rt.ma_scale - 1) / rt.ma_scale
    else instructions
  in
  Machine.Engine.charge rt.shared.machine rt.node n

let charge_work rt instructions =
  charge rt instructions;
  rt.work_since_yield <- rt.work_since_yield + instructions;
  (* Interrupt-mode deliveries are taken here — at user-computation and
     send boundaries — never inside scheduler bookkeeping. *)
  Machine.Engine.interrupt_point rt.shared.machine rt.node

let entry_at vft pattern =
  if pattern < Array.length vft.entries then vft.entries.(pattern)
  else vft.default

let obj_class obj =
  match obj.cls with
  | Some c -> c
  | None -> invalid_arg "Kernel.obj_class: uninitialised chunk"

let is_reply_dest shared obj =
  match obj.cls with Some c -> c == shared.reply_cls | None -> false

let make_origin_counters stats prefix =
  let cell suffix = Simcore.Stats.counter stats (prefix ^ suffix) in
  {
    o_dormant = cell "dormant";
    o_active = cell "active";
    o_fault = cell "fault";
    o_restore = cell "restore";
    o_discarded = cell "discarded";
    o_naive_buffered = cell "naive_buffered";
    o_depth_limited = cell "depth_limited";
    o_inlined = cell "inlined";
  }

let make_counters stats =
  let cell name = Simcore.Stats.counter stats name in
  {
    sent_local = make_origin_counters stats "send.local.";
    recv_remote = make_origin_counters stats "recv.remote.";
    c_send_remote = cell "send.remote";
    c_create_local = cell "create.local";
    c_create_remote = cell "create.remote";
    c_create_remote_applied = cell "create.remote.applied";
    c_chunk_refill = cell "chunk.refill";
    c_chunk_stall = cell "chunk.stall";
    c_slot_recycled = cell "slot.recycled";
    c_preempt = cell "preempt";
    c_wait_blocked = cell "wait.blocked";
    c_wait_immediate = cell "wait.immediate";
    c_reply_immediate = cell "reply.immediate";
    c_reply_blocked = cell "reply.blocked";
    c_reply_no_dest = cell "reply.no_dest";
    c_ma_admit = cell "ma.admit";
    c_ma_queued = cell "ma.queued";
    c_ma_overlap = cell "ma.overlap";
    c_ma_conflict = cell "ma.conflict";
  }

let ctrs rt = rt.shared.ctrs
let bump = Simcore.Stats.bump
