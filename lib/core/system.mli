(** Booting and running an ABCL system on the simulated multicomputer.

    A system ties together the machine (nodes + torus fabric + event
    engine), the per-node runtime states, the active-message handlers of
    Section 5.1, and the pre-delivered chunk stocks for remote creation. *)

type t

val default_rt_config : Kernel.rt_config
(** Hybrid scheduling, depth limit 2000, 50k-instruction preemption
    quantum, stock size 2, round-robin placement. *)

val naive_rt_config : Kernel.rt_config
(** The Section 6.3 baseline: every local message is buffered and
    scheduled through the queue. *)

val boot :
  ?machine_config:Machine.Engine.config ->
  ?rt_config:Kernel.rt_config ->
  nodes:int ->
  classes:Kernel.cls list ->
  unit ->
  t
(** Builds a machine with [nodes] processors and registers [classes] for
    remote creation (classes only ever created locally may be omitted). *)

val machine : t -> Machine.Engine.t
val node_count : t -> int
val rt : t -> int -> Kernel.node_rt
val stats : t -> Simcore.Stats.t
val config : t -> Kernel.rt_config

val create_root : t -> node:int -> Kernel.cls -> Value.t list -> Value.addr
(** Creates a bootstrap object before the simulation starts (charged to
    the owning node like any local creation). *)

val send_boot :
  t -> ?from:int -> Value.addr -> Pattern.t -> Value.t list -> unit
(** Schedules an initial message, injected when the simulation starts.
    [from] defaults to the target's node. *)

val run : ?max_slices:int -> t -> unit
(** Runs the machine to quiescence. *)

val run_parallel : ?max_slices:int -> t -> domains:int -> unit
(** Runs the machine to quiescence with nodes sharded across [domains]
    OCaml domains under the engine's conservative-lookahead scheme (see
    {!Machine.Engine.run_parallel} for the determinism contract and the
    feature restrictions). Rejects configurations with
    [gossip_interval_ns > 0]: auto-gossip synchronises all node clocks
    each round, which has no per-domain decomposition. *)

val elapsed : t -> Simcore.Time.t
val utilization : t -> float

val total_heap_words : t -> int
(** Sum of per-node heap accounting, for the paper's memory column. *)

val lookup_obj : t -> Value.addr -> Kernel.obj option
(** Test/debug access to an object's representation. *)

val pp_summary : Format.formatter -> t -> unit
