(** Construction of the multiple virtual function tables (Section 4.2).

    Each class gets: a {e dormant} table holding its method bodies, an
    {e init} table whose entries run the lazy state-variable
    initialisation before the body, and on demand one {e waiting} table
    per selective-reception pattern set (cached per class). Two tables
    are class-independent and shared: the {e active} table (all entries
    are queuing procedures) and the {e generic fault} table used by
    not-yet-initialised remote chunks. *)

val dormant : Kernel.cls -> Kernel.vft
val init : Kernel.cls -> Kernel.vft

val waiting : Kernel.cls -> Pattern.t list -> Kernel.vft
(** [waiting cls patterns]: [Restore] for the awaited patterns, [Enqueue]
    for everything else. The pattern list is normalised (sorted, deduped)
    before the cache lookup. *)

val make_enqueue_all : unit -> Kernel.vft
val make_fault : unit -> Kernel.vft

val kind_name : Kernel.vft_kind -> string
