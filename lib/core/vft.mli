(** Construction of the multiple virtual function tables (Section 4.2).

    Each class gets: a {e dormant} table holding its method bodies, an
    {e init} table whose entries run the lazy state-variable
    initialisation before the body, and on demand one {e waiting} table
    per selective-reception pattern set (cached per class). Two tables
    are class-independent and shared: the {e active} table (all entries
    are queuing procedures) and the {e generic fault} table used by
    not-yet-initialised remote chunks. *)

val dormant : Kernel.cls -> Kernel.vft
val init : Kernel.cls -> Kernel.vft

val waiting : Kernel.cls -> Pattern.t list -> Kernel.vft
(** [waiting cls patterns]: [Restore] for the awaited patterns, [Enqueue]
    for everything else. The pattern list is normalised (sorted, deduped)
    before the cache lookup. *)

val multiactive : Kernel.cls -> Kernel.vft
(** The admission table of a class with a compatibility declaration
    ([cls_ma]): every method entry is [Ma_admit], carrying the body and
    its compatibility-group id. Replaces the dormant/active pair — the
    table stays installed while activations run, so dispatch itself
    performs admission control and senders still never test receiver
    state. Built lazily, cached on the class. *)

val make_enqueue_all : unit -> Kernel.vft
val make_fault : unit -> Kernel.vft

val forward : Kernel.fwd -> Kernel.vft
(** The per-stub forwarding table left behind by object migration: every
    entry re-posts the message to the object's new home, so senders
    never test for "moved" (the paper's multiple-VFT trick applied to
    its Section 5.2 future work). *)

val forward_info : Kernel.vft -> Kernel.fwd option
(** The forwarding state iff the table is a migration stub. *)

val kind_name : Kernel.vft_kind -> string
