(** The API available to a method body while it executes.

    All five basic actions of Section 2.2 are here: past- and now-type
    sends, object creation, state variable access, selective message
    reception, and (modelled) ordinary computation via {!charge}. *)

type t = Kernel.ctx

val self : t -> Value.addr
val node_id : t -> int
val node_count : t -> int

val now : t -> Simcore.Time.t
(** Current virtual time of the executing node. *)

(** {2 State variables} *)

val get : t -> int -> Value.t
val set : t -> int -> Value.t -> unit

val get_named : t -> string -> Value.t
val set_named : t -> string -> Value.t -> unit

(** {2 Message passing} *)

val send : t -> Value.addr -> Pattern.t -> Value.t list -> unit
(** Past type: asynchronously send and do not wait. *)

val send_kw : t -> Value.addr -> string -> Value.t list -> unit
(** As {!send}, naming the pattern by keyword. *)

val send_now : t -> Value.addr -> Pattern.t -> Value.t list -> Value.t
(** Now type: send and wait for the reply. The current method blocks
    only if the reply has not already arrived when the receiver returns
    control — with stack-based scheduling a local request usually
    completes before the check. *)

val send_now_kw : t -> Value.addr -> string -> Value.t list -> Value.t

(** {3 Future-type message passing}

    ABCL's third transmission mode: send asynchronously like a past-type
    message, but keep a handle to the eventual reply. The handle is the
    same reply-destination object a now-type send uses; {!touch} claims
    the value, blocking only if it has not arrived yet. *)

type future

val send_future : t -> Value.addr -> Pattern.t -> Value.t list -> future

val touch : t -> future -> Value.t
(** Claims the reply (single use). Blocks until it arrives if needed. *)

val future_ready : t -> future -> bool
(** Non-blocking poll: has the reply arrived? *)

val future_addr : future -> Value.addr
(** The underlying reply destination, forwardable inside messages. *)

val future_of_addr : t -> Value.addr -> future
(** Reconstructs a future handle from a reply-destination address created
    on this node (the inverse of {!future_addr}). Raises
    [Invalid_argument] for a foreign or already-claimed destination. *)

val send_inlined : t -> Kernel.cls -> Value.addr -> Pattern.t -> Value.t list -> unit
(** Send to a receiver whose class is statically known (Section 8.2). *)

val send_leaf : t -> Kernel.cls -> Value.addr -> Pattern.t -> Value.t list -> unit
(** The fully optimised 8-instruction send of Section 6.1: receiver known
    local, method a non-blocking leaf, object not history-sensitive, no
    poll required. The caller asserts those properties. *)

val reply : t -> Message.t -> Value.t -> unit
(** Sends [value] to the reply destination of the given request message.
    A reply to a past-type message (no destination) is counted and
    dropped. *)

val wait_for : t -> Pattern.t list -> Message.t
(** Selective message reception. *)

val wait_for_kw : t -> string list -> Message.t

(** {2 Object creation} *)

val create_local : t -> Kernel.cls -> Value.t list -> Value.addr
val create_on : t -> target:int -> Kernel.cls -> Value.t list -> Value.addr
val create_remote : t -> Kernel.cls -> Value.t list -> Value.addr

(** {2 Computation model} *)

val charge : t -> int -> unit
(** Accounts [n] instructions of method-body computation on the node
    clock; also a preemption safe point. *)

val random : t -> int -> int
(** Deterministic per-node randomness. *)

val bump : t -> string -> unit
(** Increments an application-level statistics counter. *)

val retire : t -> unit
(** Drops this object from the node's object table once its current
    method completes its protocol role — the application-level analogue
    of reclaiming a dead object. Messages sent to a retired address are
    a programming error. *)

(** {2 Plumbing for service layers} *)

val node : t -> Machine.Node.t
val engine : t -> Machine.Engine.t
val rt : t -> Kernel.node_rt

