type stuck = {
  addr : Value.addr;
  cls_name : string;
  mode : string;
  waiting_for : string option;
  queued_messages : int;
}

type report = {
  blocked : stuck list;
  buffered : stuck list;
  chunk_waiters : int;
  stock_refills : int;
  stock_low_water : int;
  in_flight : int;
  packets_dropped : int;
  batches_sent : int;
  coalesce_buffered : int;
  crashes : int;
  checkpoint_bytes : int;
  log_replayed : int;
  recovery_ns : int;
  forwarding_stubs : (int * int) list;
  forwarded_hops : (int * int) list;
}

let reason_string = function
  | Kernel.Wait_reply rd ->
      Format.asprintf "a now-type reply (destination %a)" Value.pp_addr
        rd.Kernel.self
  | Kernel.Wait_patterns patterns ->
      Format.asprintf "messages [%s]"
        (String.concat "; " (List.map Pattern.name patterns))
  | Kernel.Wait_chunk node -> Printf.sprintf "a chunk on node %d" node
  | Kernel.Preempted -> "rescheduling after preemption"

let stuck_of_obj (obj : Kernel.obj) =
  (* A reply destination parks the *sender's* context; attribute the wait
     to the suspended object, not to the mailbox holding it. *)
  let subject =
    match obj.blocked with
    | Some b when b.Kernel.owner != obj -> b.Kernel.owner
    | _ -> obj
  in
  {
    addr = subject.Kernel.self;
    cls_name =
      (match subject.Kernel.cls with
      | Some c -> c.Kernel.cls_name
      | None -> "<chunk>");
    mode = Vft.kind_name subject.Kernel.vftp.Kernel.vft_kind;
    waiting_for = Option.map (fun b -> reason_string b.Kernel.why) obj.blocked;
    queued_messages = Queue.length subject.Kernel.mq;
  }

let by_addr a b =
  compare (a.addr.Value.node, a.addr.Value.slot) (b.addr.Value.node, b.addr.Value.slot)

let survey sys =
  let machine = System.machine sys in
  let stats = Machine.Engine.stats machine in
  let blocked = ref [] and buffered = ref [] and chunk_waiters = ref 0 in
  let stubs = ref [] and hops = ref [] in
  let low_water = ref max_int in
  for node = 0 to System.node_count sys - 1 do
    let rt = System.rt sys node in
    chunk_waiters := !chunk_waiters + List.length rt.Kernel.chunk_waiters;
    if rt.Kernel.stock_low_water < !low_water then
      low_water := rt.Kernel.stock_low_water;
    let node_stubs = ref 0 in
    Hashtbl.iter
      (fun _slot (obj : Kernel.obj) ->
        match obj.Kernel.vftp.Kernel.vft_kind with
        | Kernel.Vft_forward _ ->
            (* A forwarding stub is healthy residue of migration, not
               stuck work: its queue was carried to the new home. *)
            incr node_stubs
        | _ ->
            if Option.is_some obj.blocked then
              blocked := stuck_of_obj obj :: !blocked
            else if (not (Queue.is_empty obj.mq)) && not obj.in_sched_q then
              buffered := stuck_of_obj obj :: !buffered)
      rt.Kernel.objects;
    if !node_stubs > 0 then stubs := (node, !node_stubs) :: !stubs;
    let h =
      Simcore.Stats.get stats (Printf.sprintf "migrate.forward.node%d" node)
    in
    if h > 0 then hops := (node, h) :: !hops
  done;
  {
    blocked = List.sort by_addr !blocked;
    buffered = List.sort by_addr !buffered;
    chunk_waiters = !chunk_waiters;
    stock_refills = Simcore.Stats.get stats "chunk.refill";
    stock_low_water = (if !low_water = max_int then 0 else !low_water);
    in_flight = Machine.Engine.reliable_in_flight machine;
    packets_dropped = Machine.Engine.packets_dropped machine;
    batches_sent = Simcore.Stats.get stats "coalesce.batch";
    coalesce_buffered = Machine.Engine.coalesce_buffered machine;
    crashes = Simcore.Stats.get stats "recover.crashes";
    checkpoint_bytes = Simcore.Stats.get stats "recover.ckpt_bytes";
    log_replayed = Simcore.Stats.get stats "recover.replayed";
    recovery_ns = Simcore.Stats.get stats "recover.recovery_ns";
    forwarding_stubs = List.rev !stubs;
    forwarded_hops = List.rev !hops;
  }

let is_clean r =
  r.blocked = [] && r.buffered = [] && r.chunk_waiters = 0 && r.in_flight = 0
  && r.coalesce_buffered = 0

let pp_stuck ppf s =
  Format.fprintf ppf "%a %s [%s]%s%s" Value.pp_addr s.addr s.cls_name s.mode
    (match s.waiting_for with
    | Some w -> ", waiting for " ^ w
    | None -> "")
    (if s.queued_messages > 0 then
       Printf.sprintf ", %d buffered message(s)" s.queued_messages
     else "")

let pp_migration ppf r =
  if r.forwarding_stubs <> [] then
    Format.fprintf ppf "@,forwarding stubs: %s"
      (String.concat ", "
         (List.map
            (fun (n, c) -> Printf.sprintf "node %d: %d" n c)
            r.forwarding_stubs));
  if r.forwarded_hops <> [] then
    Format.fprintf ppf "@,forwarded hops: %s"
      (String.concat ", "
         (List.map
            (fun (n, c) -> Printf.sprintf "node %d: %d" n c)
            r.forwarded_hops));
  if r.batches_sent > 0 then
    Format.fprintf ppf "@,aggregated batches: %d" r.batches_sent;
  if r.crashes > 0 then
    Format.fprintf ppf
      "@,crash recovery: %d crash(es), %d checkpoint bytes, %d message(s) \
       replayed, %a recovering"
      r.crashes r.checkpoint_bytes r.log_replayed Simcore.Time.pp
      r.recovery_ns

let pp ppf r =
  if is_clean r then begin
    (if r.packets_dropped = 0 then
       Format.fprintf ppf "clean: no residual work"
     else
       Format.fprintf ppf
         "clean: no residual work (%d dropped packet(s), all repaired by \
          retransmission)"
         r.packets_dropped);
    Format.fprintf ppf "@[<v>%a@]" pp_migration r
  end
  else begin
    Format.fprintf ppf "@[<v>";
    if r.blocked <> [] then begin
      Format.fprintf ppf "suspended contexts:@,";
      List.iter (fun s -> Format.fprintf ppf "  %a@," pp_stuck s) r.blocked
    end;
    if r.buffered <> [] then begin
      Format.fprintf ppf "unconsumed messages:@,";
      List.iter (fun s -> Format.fprintf ppf "  %a@," pp_stuck s) r.buffered
    end;
    if r.chunk_waiters > 0 then
      Format.fprintf ppf
        "%d context(s) stalled on chunk stocks (%d refill(s), low water %d)@,"
        r.chunk_waiters r.stock_refills r.stock_low_water;
    if r.in_flight > 0 then
      Format.fprintf ppf
        "%d message(s) lost in flight (unacknowledged at quiescence)@,"
        r.in_flight;
    if r.coalesce_buffered > 0 then
      Format.fprintf ppf
        "%d message(s) still parked in aggregation buffers (no idle or \
         deadline flush reached them)@,"
        r.coalesce_buffered;
    pp_migration ppf r;
    Format.fprintf ppf "@]"
  end
