open Kernel
module Cost_model = Machine.Cost_model

let local rt cls args =
  let c = cost rt in
  charge_work rt c.Cost_model.local_create;
  Machine.Node.heap_alloc_words rt.node (8 + Array.length cls.state_names);
  let slot = Sched.alloc_slot rt in
  let obj =
    {
      self = { Value.node = Machine.Node.id rt.node; slot };
      phys_slot = slot;
      cls = Some cls;
      state = [||];
      vftp = Vft.init cls;
      mq = Queue.create ();
      in_sched_q = false;
      blocked = None;
      initialized = false;
      pending_ctor_args = args;
      exported = false;
      gc_pinned = false;
      ma = None;
    }
  in
  Sched.register_obj rt obj;
  bump (ctrs rt).c_create_local;
  obj.self

let rec take_chunk rt target =
  match Queue.take_opt rt.stocks.(target) with
  | Some slot ->
      let remaining = Queue.length rt.stocks.(target) in
      if remaining < rt.stock_low_water then rt.stock_low_water <- remaining;
      slot
  | None -> (
      rt.stock_low_water <- 0;
      (* The stock is empty: only now does remote creation block, to be
         resumed by the next replenishing chunk reply (Section 5.2).
         Under a fault plan a lost creation request or Chunk_reply is
         retransmitted by the machine's reliable-delivery layer, so the
         stock is replenished (and this context resumed) rather than
         wedged forever; the stall duration below is how degradation
         shows up in the fault benches. *)
      let t0 = Machine.Node.now rt.node in
      match Sched.block rt (Wait_chunk target) with
      | R_go ->
          Simcore.Stats.add (stats rt) "chunk.stall.wait_ns"
            (Machine.Node.now rt.node - t0);
          take_chunk rt target
      | R_reply _ | R_msg _ -> assert false)

let on rt ~target cls args =
  let my_id = Machine.Node.id rt.node in
  if target = my_id then local rt cls args
  else begin
    let c = cost rt in
    charge_work rt c.Cost_model.remote_create_request;
    let slot = take_chunk rt target in
    charge rt c.Cost_model.msg_setup_send;
    bump (ctrs rt).c_create_remote;
    Sched.mark_exports rt args None;
    let gc_refs =
      match rt.shared.gc with
      | Some g -> g.gc_grant rt args None
      | None -> []
    in
    Machine.Engine.send_am (machine rt) ~src:rt.node ~dst:target
      ~handler:rt.shared.h_create
      ~size_bytes:(Protocol.create_bytes args)
      (Protocol.P_create { slot; cls_id = cls.cls_id; args; gc_refs });
    let a = { Value.node = target; slot } in
    (* The creator now holds a remote address nobody minted weight for:
       the object was conjured at a pre-reserved chunk, not imported.
       Conjure a counted claim; the owner's matching mint is applied
       when the creation request is processed ([gc_conjured]), so the
       FIFO channel orders it before any decrement we later send. *)
    (match rt.shared.gc with
    | Some g -> g.gc_accept rt [ g.gc_conjure rt a ]
    | None -> ());
    a
  end

let pick_node rt =
  let n = Machine.Engine.node_count (machine rt) in
  let my_id = Machine.Node.id rt.node in
  match rt.shared.config.placement with
  | Round_robin ->
      let pick = rt.rr_cursor mod n in
      rt.rr_cursor <- rt.rr_cursor + 1;
      pick
  | Neighbor_round_robin ->
      let candidates =
        my_id
        :: Network.Topology.neighbors
             (Machine.Engine.topology (machine rt))
             my_id
      in
      let k = List.length candidates in
      let pick = List.nth candidates (rt.rr_cursor mod k) in
      rt.rr_cursor <- rt.rr_cursor + 1;
      pick
  | Random_node -> Simcore.Rng.int rt.rng n
  | Self_node -> my_id
  | Fixed_node k -> k mod n
  | Custom_policy f -> ((f my_id mod n) + n) mod n

let remote rt cls args = on rt ~target:(pick_node rt) cls args
