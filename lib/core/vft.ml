open Kernel

let build_method_table cls ~wrap_init =
  let entries = Array.make (Pattern.count ()) No_method in
  let fill (pattern, impl) =
    entries.(pattern) <- (if wrap_init then Invoke_init impl else Invoke impl)
  in
  List.iter fill cls.methods;
  entries

let dormant cls =
  match cls.tbl_dormant with
  | Some t -> t
  | None ->
      let t =
        {
          entries = build_method_table cls ~wrap_init:false;
          default = No_method;
          vft_kind = Vft_dormant;
        }
      in
      cls.tbl_dormant <- Some t;
      t

let init cls =
  match cls.tbl_init with
  | Some t -> t
  | None ->
      let t =
        {
          entries = build_method_table cls ~wrap_init:true;
          default = No_method;
          vft_kind = Vft_init;
        }
      in
      cls.tbl_init <- Some t;
      t

let waiting cls patterns =
  let patterns = List.sort_uniq Int.compare patterns in
  match Hashtbl.find_opt cls.waiting_cache patterns with
  | Some t -> t
  | None ->
      let entries = Array.make (Pattern.count ()) Enqueue in
      List.iter
        (fun p ->
          if p >= Array.length entries then
            invalid_arg "Vft.waiting: pattern interned after table build";
          entries.(p) <- Restore)
        patterns;
      let t = { entries; default = Enqueue; vft_kind = Vft_waiting patterns } in
      Hashtbl.add cls.waiting_cache patterns t;
      t

let multiactive cls =
  match cls.tbl_ma with
  | Some t -> t
  | None ->
      let spec =
        match cls.cls_ma with
        | Some s -> s
        | None ->
            invalid_arg
              (Printf.sprintf
                 "Vft.multiactive: class %s has no compatibility declaration"
                 cls.cls_name)
      in
      let entries = Array.make (Pattern.count ()) No_method in
      List.iter
        (fun (p, impl) ->
          let group =
            match List.assoc_opt p spec.ma_group_of with
            | Some g -> g
            | None ->
                (* Class_def.set_multiactive assigns every method a
                   group, so this is unreachable for validated specs. *)
                invalid_arg
                  (Printf.sprintf "Vft.multiactive: %s has no group"
                     (Pattern.name p))
          in
          entries.(p) <- Ma_admit { impl; group })
        cls.methods;
      let t = { entries; default = No_method; vft_kind = Vft_multiactive } in
      cls.tbl_ma <- Some t;
      t

let make_enqueue_all () =
  { entries = [||]; default = Enqueue; vft_kind = Vft_active }

let make_fault () = { entries = [||]; default = Enqueue; vft_kind = Vft_fault }

let forward fwd = { entries = [||]; default = Forward; vft_kind = Vft_forward fwd }

let forward_info vft =
  match vft.vft_kind with Vft_forward f -> Some f | _ -> None

let kind_name = function
  | Vft_dormant -> "dormant"
  | Vft_init -> "init"
  | Vft_active -> "active"
  | Vft_waiting _ -> "waiting"
  | Vft_fault -> "fault"
  | Vft_forward _ -> "forward"
  | Vft_multiactive -> "multiactive"
