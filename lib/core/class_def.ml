let next_id = ref 0

let define ~name ?(state = [||]) ?init ~methods () : Kernel.cls =
  let id = !next_id in
  incr next_id;
  let default_init _args = Array.map (fun _ -> Value.unit) state in
  let cls_init = Option.value init ~default:default_init in
  (* Reject duplicate patterns early: the VFT could only hold one. *)
  let seen = Hashtbl.create 8 in
  List.iter
    (fun (p, _) ->
      if Hashtbl.mem seen p then
        invalid_arg
          (Printf.sprintf "Class_def.define %s: duplicate method %s" name
             (Pattern.name p));
      Hashtbl.add seen p ())
    methods;
  {
    Kernel.cls_id = id;
    cls_name = name;
    state_names = state;
    cls_init;
    methods;
    tbl_dormant = None;
    tbl_init = None;
    waiting_cache = Hashtbl.create 4;
    cls_ma = None;
    tbl_ma = None;
  }

let meth keyword ~arity impl = (Pattern.intern keyword ~arity, impl)

let pattern_of (cls : Kernel.cls) keyword =
  match Pattern.lookup keyword with
  | Some p when List.mem_assoc p cls.Kernel.methods -> p
  | Some _ | None ->
      invalid_arg
        (Printf.sprintf "Class %s has no method %s" cls.Kernel.cls_name keyword)

(* Install a compatibility declaration on [cls]. [groups] names sets of
   the class's own method patterns; methods of one group may overlap
   each other, and groups listed in [compatible] may overlap across.
   Methods not mentioned fall into implicit singleton groups that are
   incompatible with everything (including themselves), keeping the
   sequential-by-default contract. Must run before the admission table
   is first built. *)
let set_multiactive (cls : Kernel.cls) ~budget ?(compatible = []) ~groups () =
  let fail fmt =
    Printf.ksprintf
      (fun s ->
        invalid_arg
          (Printf.sprintf "Class_def.set_multiactive %s: %s"
             cls.Kernel.cls_name s))
      fmt
  in
  if budget < 1 then fail "budget must be >= 1 (got %d)" budget;
  if cls.Kernel.tbl_ma <> None then
    fail "admission table already built; declare before first use";
  let seen_name = Hashtbl.create 8 and seen_pat = Hashtbl.create 8 in
  List.iter
    (fun (gname, pats) ->
      if pats = [] then fail "group %s is empty" gname;
      if Hashtbl.mem seen_name gname then fail "duplicate group %s" gname;
      Hashtbl.add seen_name gname ();
      List.iter
        (fun p ->
          if not (List.mem_assoc p cls.Kernel.methods) then
            fail "group %s lists %s, which is not a method of this class"
              gname (Pattern.name p);
          if Hashtbl.mem seen_pat p then
            fail "method %s appears in more than one group" (Pattern.name p);
          Hashtbl.add seen_pat p ())
        pats)
    groups;
  (* Implicit singleton groups for undeclared methods: serialized with
     everything, themselves included. *)
  let implicit =
    List.filter_map
      (fun (p, _) ->
        if Hashtbl.mem seen_pat p then None
        else Some (Pattern.name p, [ p ]))
      cls.Kernel.methods
  in
  List.iter
    (fun (gname, _) ->
      if Hashtbl.mem seen_name gname then
        fail "group name %s collides with an undeclared method's implicit \
              group"
          gname)
    implicit;
  let declared = List.length groups in
  let all = groups @ implicit in
  let names = Array.of_list (List.map fst all) in
  let index_of gname =
    let rec go i = function
      | [] -> fail "compatible pair names unknown group %s" gname
      | (g, _) :: _ when String.equal g gname -> i
      | _ :: rest -> go (i + 1) rest
    in
    go 0 all
  in
  let n = Array.length names in
  let compat = Array.make_matrix n n false in
  (* Same declared group => may overlap; implicit groups stay serial. *)
  for g = 0 to declared - 1 do
    compat.(g).(g) <- true
  done;
  List.iter
    (fun (a, b) ->
      let ga = index_of a and gb = index_of b in
      if ga >= declared || gb >= declared then
        fail "compatible pair (%s, %s) may only name declared groups" a b;
      compat.(ga).(gb) <- true;
      compat.(gb).(ga) <- true)
    compatible;
  let group_of =
    List.concat
      (List.mapi (fun g (_, pats) -> List.map (fun p -> (p, g)) pats) all)
  in
  cls.Kernel.cls_ma <-
    Some
      {
        Kernel.ma_budget = budget;
        ma_group_names = names;
        ma_group_of = group_of;
        ma_compat = compat;
      }
