let next_id = ref 0

let define ~name ?(state = [||]) ?init ~methods () : Kernel.cls =
  let id = !next_id in
  incr next_id;
  let default_init _args = Array.map (fun _ -> Value.unit) state in
  let cls_init = Option.value init ~default:default_init in
  (* Reject duplicate patterns early: the VFT could only hold one. *)
  let seen = Hashtbl.create 8 in
  List.iter
    (fun (p, _) ->
      if Hashtbl.mem seen p then
        invalid_arg
          (Printf.sprintf "Class_def.define %s: duplicate method %s" name
             (Pattern.name p));
      Hashtbl.add seen p ())
    methods;
  {
    Kernel.cls_id = id;
    cls_name = name;
    state_names = state;
    cls_init;
    methods;
    tbl_dormant = None;
    tbl_init = None;
    waiting_cache = Hashtbl.create 4;
  }

let meth keyword ~arity impl = (Pattern.intern keyword ~arity, impl)

let pattern_of (cls : Kernel.cls) keyword =
  match Pattern.lookup keyword with
  | Some p when List.mem_assoc p cls.Kernel.methods -> p
  | Some _ | None ->
      invalid_arg
        (Printf.sprintf "Class %s has no method %s" cls.Kernel.cls_name keyword)
