type addr = { node : int; slot : int }

type t =
  | Unit
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string
  | Addr of addr
  | List of t list
  | Tuple of t list

let unit = Unit
let bool b = Bool b
let int i = Int i
let float f = Float f
let str s = Str s
let addr a = Addr a
let list l = List l
let tuple l = Tuple l

let type_name = function
  | Unit -> "unit"
  | Bool _ -> "bool"
  | Int _ -> "int"
  | Float _ -> "float"
  | Str _ -> "string"
  | Addr _ -> "addr"
  | List _ -> "list"
  | Tuple _ -> "tuple"

let mismatch expected v =
  invalid_arg
    (Printf.sprintf "Value: expected %s, got %s" expected (type_name v))

let to_bool = function Bool b -> b | v -> mismatch "bool" v
let to_int = function Int i -> i | v -> mismatch "int" v
let to_float = function Float f -> f | v -> mismatch "float" v
let to_str = function Str s -> s | v -> mismatch "string" v
let to_addr = function Addr a -> a | v -> mismatch "addr" v
let to_list = function List l -> l | v -> mismatch "list" v
let to_tuple = function Tuple l -> l | v -> mismatch "tuple" v
let equal (a : t) (b : t) = a = b

let rec size_words = function
  | Unit | Bool _ | Int _ -> 1
  | Float _ -> 2
  | Str s -> 1 + ((String.length s + 3) / 4)
  | Addr _ -> 2
  | List l | Tuple l -> 1 + List.fold_left (fun acc v -> acc + size_words v) 0 l

let size_bytes v = 4 * size_words v
let pp_addr ppf a = Format.fprintf ppf "<%d:%d>" a.node a.slot

let rec pp ppf = function
  | Unit -> Format.pp_print_string ppf "()"
  | Bool b -> Format.pp_print_bool ppf b
  | Int i -> Format.pp_print_int ppf i
  | Float f -> Format.pp_print_float ppf f
  | Str s -> Format.fprintf ppf "%S" s
  | Addr a -> pp_addr ppf a
  | List l ->
      Format.fprintf ppf "[@[%a@]]"
        (Format.pp_print_list ~pp_sep:(fun ppf () -> Format.fprintf ppf ";@ ") pp)
        l
  | Tuple l ->
      Format.fprintf ppf "(@[%a@])"
        (Format.pp_print_list ~pp_sep:(fun ppf () -> Format.fprintf ppf ",@ ") pp)
        l
