(** The integrated stack-based + queue-based scheduler (Section 4).

    The fast path: a message sent to a {e dormant} local object invokes
    its method immediately on the OCaml stack (the paper's stack-based
    scheduling), temporarily suspending the sender. Messages to objects
    in other modes hit the queuing or restoring procedure selected by the
    receiver's current virtual function table — the sender never tests
    the receiver's mode explicitly.

    Virtual time is charged per the machine's cost model at exactly the
    points the paper charges instructions (Table 2). *)

open Kernel

val alloc_slot : node_rt -> int
(** Reserves an object slot on this node: pops the GC free list when a
    reclaimed slot is available, else bumps the watermark. *)

val recycle_slot : node_rt -> int -> unit
(** Returns a freed slot to the node's allocation pool. The caller (the
    GC) guarantees no reference to the slot survives anywhere. *)

val register_obj : node_rt -> obj -> unit

val lookup_or_embryo : node_rt -> int -> obj
(** Finds a local object by slot. For a reserved-but-unmaterialised chunk
    slot this creates the pre-initialised embryo carrying the generic
    fault table, so early messages are buffered (Figure 4). Raises
    [Invalid_argument] for a slot that was never allocated. *)

val send :
  node_rt ->
  target:Value.addr ->
  pattern:Pattern.t ->
  args:Value.t list ->
  ?reply:Value.addr ->
  unit ->
  unit
(** A past-type message send: locality check, then either local dispatch
    through the receiver's VFT or an inter-node active message. *)

val send_inlined :
  node_rt ->
  cls ->
  target:Value.addr ->
  pattern:Pattern.t ->
  args:Value.t list ->
  unit ->
  unit
(** Section 8.2 method inlining for a compile-time-known receiver class:
    if the receiver is local and its VFTP equals the class's dormant
    table, the body is entered directly, skipping the generic table
    lookup; otherwise falls back to {!send}. Enabled per-config. *)

val send_optimized :
  node_rt ->
  cls ->
  target:Value.addr ->
  pattern:Pattern.t ->
  args:Value.t list ->
  known_local:bool ->
  leaf:bool ->
  stateless:bool ->
  no_poll:bool ->
  unit ->
  unit
(** The compile-time optimisation ladder of Section 6.1: with all four
    conditions asserted the dormant fast path costs 8 instructions
    (lookup+call and return only). The flags are compiler-derived facts
    the caller asserts: [known_local] — receiver proven local (e.g. it
    follows a local creation); [leaf] — the method never sends messages
    and never blocks, so the VFTP need not be switched; [stateless] — the
    object is not history-sensitive, so the message-queue check can go;
    [no_poll] — a poll is not required here (periodic polling is
    guaranteed elsewhere). A [leaf] method that nevertheless blocks is a
    programming error and raises [Failure]. Falls back to
    {!send} whenever the receiver turns out non-local or non-dormant. *)

val local_deliver :
  ?origin:[ `Local | `Remote ] -> node_rt -> obj -> Message.t -> unit
(** Dispatches a message through the receiver's current VFT. [origin]
    only selects the statistics family ([send.local.*] vs
    [recv.remote.*]); behaviour and costs are identical, as on the real
    machine where the message handler performs the same scheduling. *)

val schedule_pending : node_rt -> obj -> unit
(** Enqueues the object into the node-global scheduling queue (idempotent
    while already queued). *)

val resume : node_rt -> blocked -> resume -> unit
(** Restores a saved context and continues its method on the current
    stack. *)

val wait_for : node_rt -> obj -> Pattern.t list -> Message.t
(** Selective message reception: returns a matching buffered message
    without blocking when one is already queued; otherwise switches the
    object to waiting mode and suspends the method. *)

val block : node_rt -> block_reason -> resume
(** Suspends the innermost running method ([perform Block]). Raises
    [Failure] inside a [leaf]-optimised method, where no handler exists. *)

val mark_exports : node_rt -> Value.t list -> Value.addr option -> unit
(** Flags every local object whose address occurs in the given values (or
    reply destination) as exported: it can no longer be moved. *)

val maybe_preempt : node_rt -> unit
(** Preemption safe point: yields the running method to the scheduling
    queue once it has exceeded its work quantum. *)

val rest_table : obj -> vft
(** The table a quiescent object should expose: the class's dormant table
    (or init table before lazy initialisation), or the admission table
    for a class with a compatibility declaration. *)

val mode_of : obj -> string
(** Human-readable mode derived from the current VFT, for tests. *)

(** {2 Multiactive objects}

    Support for classes with a compatibility declaration
    ({!Class_def.set_multiactive}): the per-object activation manager
    and its admission bookkeeping. *)

val ma_state : obj -> ma_run
(** The object's activation manager, allocated on first use. Raises
    [Invalid_argument] for a class without a compatibility
    declaration. *)

val schedule_ma_pump : node_rt -> obj -> unit
(** Posts the group-queue pump (idempotent while one is posted): parked
    messages re-enter admission as budget and compatibility allow. *)

val ma_unsafe_force_admit : bool ref
(** Test-only corruption hook: while set, admission ignores group
    compatibility (budget and drain checks still apply), manufacturing
    exactly the serialization violations the monitor probe and the
    "ma.conflict" counter exist to catch. Never set outside tests. *)
