(** Message patterns.

    A message is distinguished by its pattern — the combination of its
    keyword and argument count (Section 2.4). "At compile time, a unique
    number is assigned to each message pattern": {!intern} plays the role
    of the compiler's numbering, and the returned id indexes every
    virtual function table. *)

type t = int
(** A pattern id: a small dense integer. *)

val intern : string -> arity:int -> t
(** [intern keyword ~arity] returns the unique id for this pattern,
    assigning a fresh one on first use. Interning the same keyword with a
    different arity is an error (patterns differ by keyword {e and}
    argument types; we key on keyword and check the arity). *)

val lookup : string -> t option
(** The id of an already-interned keyword. *)

val name : t -> string
val arity : t -> int
val count : unit -> int
(** Number of patterns interned so far == size needed for a full VFT. *)

val pp : Format.formatter -> t -> unit

(** {2 Built-in patterns} *)

val reply : t
(** The distinguished pattern that carries now-type reply values to
    reply-destination objects. *)
