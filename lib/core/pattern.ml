type t = int

type info = { keyword : string; arity : int }

let by_name : (string, t) Hashtbl.t = Hashtbl.create 64
let infos : info array ref = ref (Array.make 0 { keyword = ""; arity = 0 })
let next = ref 0

let intern keyword ~arity =
  match Hashtbl.find_opt by_name keyword with
  | Some id ->
      let info = !infos.(id) in
      if info.arity <> arity then
        invalid_arg
          (Printf.sprintf
             "Pattern.intern: %S already interned with arity %d (got %d)"
             keyword info.arity arity);
      id
  | None ->
      let id = !next in
      incr next;
      if id = Array.length !infos then begin
        let infos' =
          Array.make (max 16 (2 * id)) { keyword = ""; arity = 0 }
        in
        Array.blit !infos 0 infos' 0 id;
        infos := infos'
      end;
      !infos.(id) <- { keyword; arity };
      Hashtbl.add by_name keyword id;
      id

let lookup keyword = Hashtbl.find_opt by_name keyword

let check id =
  if id < 0 || id >= !next then invalid_arg "Pattern: unknown id"

let name id =
  check id;
  !infos.(id).keyword

let arity id =
  check id;
  !infos.(id).arity

let count () = !next
let pp ppf id = Format.fprintf ppf "%s/%d" (name id) (arity id)
let reply = intern "__reply" ~arity:1
