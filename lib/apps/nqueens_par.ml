open Core

type result = {
  n : int;
  nodes : int;
  solutions : int;
  objects_created : int;
  messages : int;
  elapsed : Simcore.Time.t;
  utilization : float;
  heap_words : int;
  local_dormant_fraction : float;
  local_fraction : float;
}

(* State layout of a solver object. *)
let s_n = 0
let s_board = 1
let s_parent = 2
let s_pending = 3
let s_acc = 4

let p_expand = Pattern.intern "expand" ~arity:0
let p_done = Pattern.intern "done" ~arity:1

let send_ack ctx parent total =
  match parent with
  | Value.Addr p ->
      Ctx.send ctx p p_done [ Value.int total ];
      Ctx.retire ctx
  | _ ->
      (* The root keeps the grand total for the driver to read. *)
      Ctx.set ctx s_acc (Value.int total);
      Ctx.bump ctx "queens.root_done"

let expand_impl cls_ref ctx _msg =
  let n = Value.to_int (Ctx.get ctx s_n) in
  let packed = Value.to_int (Ctx.get ctx s_board) in
  let placed = Queens_board.packed_count packed in
  if placed = n then begin
    Ctx.charge ctx Queens_board.leaf_instr;
    send_ack ctx (Ctx.get ctx s_parent) 1
  end
  else begin
    let children = Queens_board.safe_cols_packed ~n ~packed in
    let k = List.length children in
    Ctx.charge ctx (Queens_board.expand_instr ~n ~placed ~children:k);
    if k = 0 then send_ack ctx (Ctx.get ctx s_parent) 0
    else begin
      Services.Termination.begin_wait ctx ~pending_slot:s_pending
        ~acc_slot:s_acc ~expected:k;
      let cls = Option.get !cls_ref in
      let self = Value.addr (Ctx.self ctx) in
      List.iter
        (fun col ->
          let child =
            Ctx.create_remote ctx cls
              [
                Value.int n;
                Value.int (Queens_board.pack_push ~packed ~col);
                self;
              ]
          in
          Ctx.send ctx child p_expand [])
        children
    end
  end

let done_impl ctx msg =
  let count = Value.to_int (Message.arg msg 0) in
  match
    Services.Termination.record_ack ctx ~pending_slot:s_pending ~acc_slot:s_acc
      ~count
  with
  | Some total -> send_ack ctx (Ctx.get ctx s_parent) total
  | None -> ()

let solver_cls () =
  let cls_ref = ref None in
  let cls =
    Class_def.define ~name:"qsolver"
      ~state:[| "n"; "board"; "parent"; "pending"; "acc" |]
      ~init:(fun args ->
        match args with
        | [ n; board; parent ] ->
            [| n; board; parent; Value.int 0; Value.int 0 |]
        | _ -> invalid_arg "qsolver: bad constructor arguments")
      ~methods:
        [ (p_expand, expand_impl cls_ref); (p_done, done_impl) ]
      ()
  in
  cls_ref := Some cls;
  cls

let message_count stats =
  let get = Simcore.Stats.get stats in
  get "send.local.dormant" + get "send.local.active" + get "send.local.fault"
  + get "send.local.restore" + get "send.local.inlined"
  + get "send.local.naive_buffered" + get "send.local.depth_limited"
  + get "send.remote"

let creation_count stats =
  let get = Simcore.Stats.get stats in
  get "create.local" + get "create.remote"

let run_sys ?machine_config ?rt_config ~nodes ~n () =
  let cls = solver_cls () in
  let sys = System.boot ?machine_config ?rt_config ~nodes ~classes:[ cls ] () in
  if n > Queens_board.max_packed_n then
    invalid_arg "Nqueens_par.run: n exceeds the packed board range";
  let root =
    System.create_root sys ~node:0 cls
      [ Value.int n; Value.int Queens_board.empty_packed; Value.unit ]
  in
  System.send_boot sys root p_expand [];
  System.run sys;
  let root_obj =
    match System.lookup_obj sys root with
    | Some o -> o
    | None -> failwith "Nqueens_par: root object disappeared"
  in
  let solutions = Value.to_int root_obj.Kernel.state.(s_acc) in
  let stats = System.stats sys in
  let get = Simcore.Stats.get stats in
  let local_dormant = get "send.local.dormant" + get "send.local.inlined" in
  let local_total =
    local_dormant + get "send.local.active" + get "send.local.fault"
    + get "send.local.restore" + get "send.local.naive_buffered"
    + get "send.local.depth_limited"
  in
  {
    n;
    nodes;
    solutions;
    (* The root itself plus every spawned solver; reply destinations are
       not created by this program. *)
    objects_created = creation_count stats;
    messages = message_count stats;
    elapsed = System.elapsed sys;
    utilization = System.utilization sys;
    heap_words = System.total_heap_words sys;
    local_dormant_fraction =
      (if local_total = 0 then 0.
       else float_of_int local_dormant /. float_of_int local_total);
    local_fraction =
      (let all = local_total + get "send.remote" in
       if all = 0 then 0. else float_of_int local_total /. float_of_int all);
  },
  sys

let run ?machine_config ?rt_config ~nodes ~n () =
  fst (run_sys ?machine_config ?rt_config ~nodes ~n ())
