(** A dynamically growing prime-sieve pipeline — the classic concurrent
    object workload: a generator streams candidates into a chain of
    filter objects, one per prime discovered; each filter forwards
    non-multiples; whatever survives the whole chain creates a new
    filter at the tail. Exercises long message chains, dynamic topology
    and placement (each new filter is placed by the configured policy). *)

type result = {
  limit : int;
  primes : int;  (** count of primes <= limit *)
  largest : int;
  filters_created : int;
  elapsed : Simcore.Time.t;
  utilization : float;
}

val run :
  ?machine_config:Machine.Engine.config ->
  ?rt_config:Core.Kernel.rt_config ->
  nodes:int ->
  limit:int ->
  unit ->
  result
