(** The paper's large-scale benchmark (Section 6.2): exhaustive N-queens
    search with one concurrent object per valid partial placement.

    Each solver object, on receiving [expand], tests every column of the
    next row, creates a child object per safe placement (placed by the
    configured policy) and sends it [expand]; acknowledgement messages
    carrying solution counts trace back the search tree for termination
    detection, combined with {!Services.Termination}. Finished solvers
    retire so memory tracks the search frontier. *)

type result = {
  n : int;
  nodes : int;  (** processors used *)
  solutions : int;
  objects_created : int;
  messages : int;
  elapsed : Simcore.Time.t;
  utilization : float;
  heap_words : int;
  local_dormant_fraction : float;
      (** fraction of intra-node messages that found a dormant receiver
          (the paper reports ~75% for these programs) *)
  local_fraction : float;
      (** fraction of all object messages that stayed intra-node *)
}

val solver_cls : unit -> Core.Kernel.cls
(** A fresh solver class (statistics and tables are per-class). *)

val run :
  ?machine_config:Machine.Engine.config ->
  ?rt_config:Core.Kernel.rt_config ->
  nodes:int ->
  n:int ->
  unit ->
  result
(** Boots a [nodes]-processor system, solves the [n]-queens problem and
    reports the paper's Table 4 columns. *)

val run_sys :
  ?machine_config:Machine.Engine.config ->
  ?rt_config:Core.Kernel.rt_config ->
  nodes:int ->
  n:int ->
  unit ->
  result * Core.System.t
(** As {!run}, but also returns the quiesced system so callers can
    inspect it further (diagnostics, fault statistics, raw stats). *)

val message_count : Simcore.Stats.t -> int
(** Total object-to-object message sends recorded in a run's stats. *)

val creation_count : Simcore.Stats.t -> int
