open Core

type t = {
  intra_dormant_ns : float;
  intra_active_ns : float;
  intra_create_ns : float;
  inter_latency_ns : float;
  now_roundtrip_remote_ns : float;
  inlined_send_ns : float;
  lean_send_ns : float;
}

let p_null = Pattern.intern "null" ~arity:0
let p_echo = Pattern.intern "echo" ~arity:1
let p_send_loop = Pattern.intern "send_loop" ~arity:2
let p_flood = Pattern.intern "flood" ~arity:2
let p_tick = Pattern.intern "tick" ~arity:0
let p_create_loop = Pattern.intern "create_loop" ~arity:2
let p_now_loop = Pattern.intern "now_loop" ~arity:2
let p_inline_loop = Pattern.intern "inline_loop" ~arity:2
let p_lean_loop = Pattern.intern "lean_loop" ~arity:2

let sink_cls () =
  Class_def.define ~name:"mb_sink"
    ~methods:
      [
        (p_null, fun _ctx _msg -> ());
        (p_echo, fun ctx msg -> Ctx.reply ctx msg (Message.arg msg 0));
      ]
    ()

let driver_cls sink_cls =
  let repeat k f =
    for _ = 1 to k do
      f ()
    done
  in
  Class_def.define ~name:"mb_driver"
    ~methods:
      [
        ( p_send_loop,
          fun ctx msg ->
            let k = Value.to_int (Message.arg msg 0) in
            let sink = Value.to_addr (Message.arg msg 1) in
            repeat k (fun () -> Ctx.send ctx sink p_null []) );
        ( p_flood,
          fun ctx msg ->
            let k = Value.to_int (Message.arg msg 0) in
            let self = Ctx.self ctx in
            (* The driver is active while its own method runs, so every
               self-send takes the full buffered path. *)
            repeat k (fun () -> Ctx.send ctx self p_tick []) );
        (p_tick, fun _ctx _msg -> ());
        ( p_create_loop,
          fun ctx msg ->
            let k = Value.to_int (Message.arg msg 0) in
            repeat k (fun () -> ignore (Ctx.create_local ctx sink_cls [])) );
        ( p_now_loop,
          fun ctx msg ->
            let k = Value.to_int (Message.arg msg 0) in
            let sink = Value.to_addr (Message.arg msg 1) in
            repeat k (fun () ->
                ignore (Ctx.send_now ctx sink p_echo [ Value.int 1 ])) );
        ( p_inline_loop,
          fun ctx msg ->
            let k = Value.to_int (Message.arg msg 0) in
            let sink = Value.to_addr (Message.arg msg 1) in
            repeat k (fun () -> Ctx.send_inlined ctx sink_cls sink p_null []) );
        ( p_lean_loop,
          fun ctx msg ->
            let k = Value.to_int (Message.arg msg 0) in
            let sink = Value.to_addr (Message.arg msg 1) in
            repeat k (fun () -> Ctx.send_leaf ctx sink_cls sink p_null []) );
      ]
    ()

(* Elapsed virtual time of one boot-send scenario. *)
let scenario ?machine_config ~nodes ~sink_node pattern k =
  let sink = sink_cls () in
  let driver = driver_cls sink in
  (* A large quantum so the measurement loops are not preempted. *)
  let rt_config =
    { System.default_rt_config with Kernel.quantum_instr = max_int }
  in
  let sys =
    System.boot ?machine_config ~rt_config ~nodes ~classes:[ sink; driver ] ()
  in
  let s = System.create_root sys ~node:sink_node sink [] in
  let d = System.create_root sys ~node:0 driver [] in
  System.send_boot sys d pattern [ Value.int k; Value.addr s ];
  System.run sys;
  System.elapsed sys

let per_op ?machine_config ~nodes ~sink_node pattern k =
  let t2 = scenario ?machine_config ~nodes ~sink_node pattern k in
  let t1 = scenario ?machine_config ~nodes ~sink_node pattern (k / 2) in
  float_of_int (t2 - t1) /. float_of_int (k - (k / 2))

let inter_latency ?machine_config () =
  (* Paper methodology: two dormant objects on different nodes bouncing a
     one-word past-type message; the steady-state period is the latency. *)
  let r = Ring.run ?machine_config ~nodes:2 ~laps:512 () in
  r.Ring.ns_per_hop

let measure ?machine_config () =
  let k = 1024 in
  let local pattern = per_op ?machine_config ~nodes:1 ~sink_node:0 pattern k in
  {
    intra_dormant_ns = local p_send_loop;
    intra_active_ns = local p_flood;
    intra_create_ns = local p_create_loop;
    inter_latency_ns = inter_latency ?machine_config ();
    now_roundtrip_remote_ns =
      per_op ?machine_config ~nodes:2 ~sink_node:1 p_now_loop (k / 4);
    inlined_send_ns = local p_inline_loop;
    lean_send_ns = local p_lean_loop;
  }

let intra_dormant_instructions cost =
  Machine.Cost_model.dormant_send_instructions cost

let pp ppf t =
  Format.fprintf ppf
    "@[<v>intra-node to dormant: %8.0f ns@,\
     intra-node to active:  %8.0f ns@,\
     intra-node creation:   %8.0f ns@,\
     inter-node latency:    %8.0f ns@,\
     now-type remote rtt:   %8.0f ns@,\
     inlined dormant send:  %8.0f ns@,\
     fully-optimised send:  %8.0f ns@]"
    t.intra_dormant_ns t.intra_active_ns t.intra_create_ns t.inter_latency_ns
    t.now_roundtrip_remote_ns t.inlined_send_ns t.lean_send_ns
