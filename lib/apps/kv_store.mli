(** A sharded key-value/session service tier — the open-loop traffic
    subsystem's application under test.

    The store is a set of {e shard} objects spread round-robin across
    the nodes; key [k] lives on shard [k mod shards]. Shards keep their
    table purely in [Value] state (an association list of
    [(key, value, version)] tuples), so they serialize through the
    ordinary codec and can migrate mid-run. One {e client} object per
    node fronts the store: the load generator injects operations at it,
    it scatters them to the owning shard(s), gathers replies, and
    timestamps completions into a latency histogram.

    Operations: [get]/[put]/[cas] on one key, plus a fan-out [mget]
    that scatters single-key reads at [fan] consecutive keys (distinct
    shards when [fan <= shards]) and completes when the last reply
    lands. Every [put] and winning [cas] bumps the key's version by
    exactly one, which makes end-to-end exactly-once checkable: at
    quiescence the versions summed across shards must equal the
    successful writes the clients observed ({!audit}). *)

type op = Get | Put | Cas | Mget

val op_code : op -> int
(** Wire encoding of an operation, for the injection message. *)

type stats = {
  mutable get_ok : int;
  mutable put_ok : int;
  mutable cas_ok : int;
  mutable cas_fail : int;  (** version mismatch: completed, not an error *)
  mutable mget_ok : int;
  mutable dup_resps : int;  (** replies for unknown/finished requests *)
  latency : Simcore.Histogram.t;  (** completion latency, ns *)
}

type t

val create :
  ?service_instr:int ->
  ?client_instr:int ->
  ?latency_bucket_ns:int ->
  ?keys_per_shard:int ->
  ?mget_fan:int ->
  ?multiactive:bool ->
  ?ma_budget:int ->
  shards:int ->
  unit ->
  t
(** A fresh tier instance (per run). [service_instr] (default 200) is
    the modelled per-operation work on a shard — it sets the capacity a
    rate sweep saturates; [client_instr] (default 30) the per-operation
    client work. [keys_per_shard] (default 16) fixes the keyspace at
    [shards * keys_per_shard]. [mget_fan] (default 3) is the multi-get
    scatter width.

    [multiactive] (default false) installs compatibility declarations:
    shard [get]s form one overlapping "read" group while [put]/[cas]
    stay strictly serialized (single-writer/multi-reader shards), and
    client request/response handling overlaps freely; [ma_budget]
    (default 4) bounds concurrent activations per object. The default
    keeps every object on the paper's serialized tables, bit-identical
    to the pre-multiactive build. *)

val classes : t -> Core.Kernel.cls list
(** The shard and client classes, for [System.boot ~classes]. *)

val spawn : t -> Core.System.t -> unit
(** Creates the shard objects (round-robin across nodes) and one client
    per node. Call after boot, before traffic starts. *)

val shards : t -> int
val keyspace : t -> int
val mget_fan : t -> int
val shard_addr : t -> int -> Core.Value.addr
val client_addr : t -> node:int -> Core.Value.addr

val stats : t -> stats
(** A merged snapshot of the per-node client records (counters summed,
    latency histograms folded). Bookkeeping is kept per node so client
    handlers on different domains never share mutable state under
    {!Core.System.run_parallel}; mutating the returned record has no
    effect. *)

val p_op : Core.Pattern.t
(** The injection pattern: [tr_op(op_code, key, t0_ns, req_id)] sent at
    a client object starts one request whose completion latency is
    measured from [t0_ns]. *)

val completed : t -> int
(** Requests fully completed (all replies gathered). *)

val pending : t -> int
(** Requests started but not yet completed — at quiescence these are
    timeouts. *)

val applied_versions : t -> Core.System.t -> int
(** Versions summed over every live shard record (scanning past
    forwarding stubs if a shard migrated). *)

val audit : t -> Core.System.t -> string list
(** Quiescence invariants, one line per violation: every started
    request completed, no duplicate replies, and versions summed across
    shards equal the successful writes observed by clients — a write
    applied twice (duplicated delivery) or never (loss) breaks the
    balance. *)
