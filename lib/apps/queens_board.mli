(** Board logic and work model shared by the sequential and parallel
    N-queens programs, so both sides of the speedup ratio charge the
    same per-placement computation (see DESIGN.md, Figure 5 entry).

    A partial placement is a list of column indices, most recent row
    first. *)

val safe : cols:int list -> col:int -> bool
(** Can a queen go in [col] on the next row? *)

val safe_cols : n:int -> cols:int list -> int list
(** All safe columns for the next row, ascending. *)

(** {2 Packed boards}

    For large runs the parallel program ships boards as a single integer
    (4 bits per column, placement count in the low nibble), keeping
    message payloads one word as on the real machine. Valid for
    [n <= 14]. *)

val max_packed_n : int

val empty_packed : int

val pack : int list -> int
(** Packs a most-recent-first placement list. *)

val unpack : int -> int list

val packed_count : int -> int

val pack_push : packed:int -> col:int -> int

val safe_packed : packed:int -> col:int -> bool

val safe_cols_packed : n:int -> packed:int -> int list

(** {2 Instruction-count work model}

    Derived from what the sequential C++ code does per step: testing one
    candidate scans the placed queens (column and two diagonals), and
    spawning/descending copies the board. *)

val candidate_instr : placed:int -> int
(** Cost of testing one candidate column against [placed] queens. *)

val child_copy_instr : placed:int -> int
(** Cost of materialising a child board of [placed + 1] queens. *)

val expand_base_instr : int
(** Fixed per-expansion bookkeeping. *)

val leaf_instr : int
(** Cost of recording one complete solution. *)

val seq_call_instr : int
(** Sequential version: function call/return per tree edge (the parallel
    version pays message passing instead). *)

val expand_instr : n:int -> placed:int -> children:int -> int
(** Total modelled cost of expanding one internal node (without the
    per-edge descent cost): base + all candidate tests + child copies. *)
