(** Sequential N-queens: the paper's baseline (Table 4, Figure 5).

    A plain depth-first search using the run-time stack, as the authors'
    C++ version does; its execution time is modelled with the same
    instruction charges as the parallel version's method bodies, so that
    speedups compare like against like. *)

type result = {
  n : int;
  solutions : int;
  nodes : int;  (** search-tree nodes below the root == valid placements *)
  instr : int;  (** total modelled instructions *)
}

val solve : n:int -> result

val modeled_time : Machine.Cost_model.t -> result -> Simcore.Time.t
