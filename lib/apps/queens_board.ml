let safe ~cols ~col =
  let rec check d = function
    | [] -> true
    | c :: rest -> c <> col && abs (c - col) <> d && check (d + 1) rest
  in
  check 1 cols

let safe_cols ~n ~cols =
  let rec collect col acc =
    if col < 0 then acc
    else collect (col - 1) (if safe ~cols ~col then col :: acc else acc)
  in
  collect (n - 1) []

let max_packed_n = 14
let empty_packed = 0
let packed_count packed = packed land 0xF

let pack_push ~packed ~col =
  let count = packed_count packed in
  if count >= max_packed_n || col < 0 || col > 0xF then
    invalid_arg "Queens_board.pack_push: out of packed range";
  (* Shift existing columns up one nibble; new column sits just above the
     count nibble (most recent first). *)
  let cols = packed lsr 4 in
  (((cols lsl 4) lor col) lsl 4) lor (count + 1)

let pack cols =
  List.fold_left
    (fun packed col -> pack_push ~packed ~col)
    empty_packed (List.rev cols)

let unpack packed =
  let count = packed_count packed in
  let rec collect i cols acc =
    if i = count then List.rev acc
    else collect (i + 1) (cols lsr 4) ((cols land 0xF) :: acc)
  in
  collect 0 (packed lsr 4) []

let safe_packed ~packed ~col =
  let count = packed_count packed in
  let rec check d cols =
    if d > count then true
    else
      let c = cols land 0xF in
      c <> col && abs (c - col) <> d && check (d + 1) (cols lsr 4)
  in
  check 1 (packed lsr 4)

let safe_cols_packed ~n ~packed =
  let rec collect col acc =
    if col < 0 then acc
    else
      collect (col - 1) (if safe_packed ~packed ~col then col :: acc else acc)
  in
  collect (n - 1) []

let candidate_instr ~placed = 4 + (10 * placed)
let child_copy_instr ~placed = 12 + (3 * placed)
let expand_base_instr = 12
let leaf_instr = 6
let seq_call_instr = 12

let expand_instr ~n ~placed ~children =
  expand_base_instr
  + (n * candidate_instr ~placed)
  + (children * child_copy_instr ~placed)
