open Core

type op = Get | Put | Cas | Mget

let op_code = function Get -> 0 | Put -> 1 | Cas -> 2 | Mget -> 3

type stats = {
  mutable get_ok : int;
  mutable put_ok : int;
  mutable cas_ok : int;
  mutable cas_fail : int;
  mutable mget_ok : int;
  mutable dup_resps : int;
  latency : Simcore.Histogram.t;
}

type pend = { p_t0 : int; p_kind : int; mutable p_need : int }

(* Request bookkeeping lives OCaml-side in the client closures — but a
   client runs on its own node, and under [System.run_parallel] nodes on
   different domains execute concurrently. So the bookkeeping is
   per-node (one record per client, indexed by the client's node), and
   readers fold the records with order-insensitive merges. *)
type client_state = {
  cs_stats : stats;
  cs_pendings : (int, pend) Hashtbl.t;
  cs_last_seen : (int, int) Hashtbl.t;
  mutable cs_started : int;
}

type t = {
  n_shards : int;
  keyspace : int;
  fan : int;
  service_instr : int;
  client_instr : int;
  latency_bucket_ns : int;
  mutable per_node : client_state array;
  mutable shard_addrs : Value.addr array;
  mutable client_addrs : Value.addr array;
  mutable shard_cls : Kernel.cls;
  mutable client_cls : Kernel.cls;
}

let fresh_stats ~bucket_width =
  {
    get_ok = 0;
    put_ok = 0;
    cas_ok = 0;
    cas_fail = 0;
    mget_ok = 0;
    dup_resps = 0;
    latency = Simcore.Histogram.create ~bucket_width ();
  }

let client_state_of t ctx = t.per_node.((Ctx.self ctx).Value.node)

let p_op = Pattern.intern "tr_op" ~arity:4
let p_get = Pattern.intern "kv_get" ~arity:3
let p_put = Pattern.intern "kv_put" ~arity:4
let p_cas = Pattern.intern "kv_cas" ~arity:5
let p_resp = Pattern.intern "kv_resp" ~arity:6

(* Shard table entries are (key, value, version) tuples in Value state,
   so the whole table serializes through the codec: a shard can migrate
   (or checkpoint) mid-run without special-casing. *)
let entry k v ver = Value.Tuple [ Value.int k; Value.int v; Value.int ver ]

let entry_parts = function
  | Value.Tuple [ Value.Int k; Value.Int v; Value.Int ver ] -> (k, v, ver)
  | _ -> invalid_arg "Kv_store: corrupt shard table entry"

let table ctx = Value.to_list (Ctx.get ctx 0)

let find_entry tbl key =
  List.find_map
    (fun e ->
      let k, v, ver = entry_parts e in
      if k = key then Some (v, ver) else None)
    tbl

let store_entry ctx key v ver =
  let rest =
    List.filter (fun e -> let k, _, _ = entry_parts e in k <> key) (table ctx)
  in
  Ctx.set ctx 0 (Value.List (entry key v ver :: rest))

let respond ctx ~client ~req_id ~kind ~key ~value ~version ~ok =
  Ctx.send ctx client p_resp
    [
      Value.int req_id;
      Value.int kind;
      Value.int key;
      Value.int value;
      Value.int version;
      Value.int (if ok then 1 else 0);
    ]

let shard_cls_def t =
  Class_def.define ~name:"kv_shard" ~state:[| "table" |]
    ~init:(fun _ -> [| Value.List [] |])
    ~methods:
      [
        ( p_get,
          fun ctx msg ->
            Ctx.charge ctx t.service_instr;
            let key = Value.to_int (Message.arg msg 0) in
            let client = Value.to_addr (Message.arg msg 1) in
            let req_id = Value.to_int (Message.arg msg 2) in
            let value, version, ok =
              match find_entry (table ctx) key with
              | Some (v, ver) -> (v, ver, true)
              | None -> (0, 0, false)
            in
            respond ctx ~client ~req_id ~kind:(op_code Get) ~key ~value
              ~version ~ok );
        ( p_put,
          fun ctx msg ->
            Ctx.charge ctx t.service_instr;
            let key = Value.to_int (Message.arg msg 0) in
            let value = Value.to_int (Message.arg msg 1) in
            let client = Value.to_addr (Message.arg msg 2) in
            let req_id = Value.to_int (Message.arg msg 3) in
            let version =
              match find_entry (table ctx) key with
              | Some (_, ver) -> ver + 1
              | None -> 1
            in
            store_entry ctx key value version;
            respond ctx ~client ~req_id ~kind:(op_code Put) ~key ~value
              ~version ~ok:true );
        ( p_cas,
          fun ctx msg ->
            Ctx.charge ctx t.service_instr;
            let key = Value.to_int (Message.arg msg 0) in
            let expect = Value.to_int (Message.arg msg 1) in
            let value = Value.to_int (Message.arg msg 2) in
            let client = Value.to_addr (Message.arg msg 3) in
            let req_id = Value.to_int (Message.arg msg 4) in
            let cur_v, cur_ver =
              match find_entry (table ctx) key with
              | Some (v, ver) -> (v, ver)
              | None -> (0, 0)
            in
            if cur_ver = expect then begin
              store_entry ctx key value (cur_ver + 1);
              respond ctx ~client ~req_id ~kind:(op_code Cas) ~key ~value
                ~version:(cur_ver + 1) ~ok:true
            end
            else
              respond ctx ~client ~req_id ~kind:(op_code Cas) ~key
                ~value:cur_v ~version:cur_ver ~ok:false );
      ]
    ()

let shard_of t key = t.shard_addrs.(key mod t.n_shards)

let client_cls_def t =
  Class_def.define ~name:"kv_client" ~state:[||]
    ~init:(fun _ -> [||])
    ~methods:
      [
        ( p_op,
          fun ctx msg ->
            Ctx.charge ctx t.client_instr;
            let kind = Value.to_int (Message.arg msg 0) in
            let key = Value.to_int (Message.arg msg 1) in
            let t0 = Value.to_int (Message.arg msg 2) in
            let req_id = Value.to_int (Message.arg msg 3) in
            let self = Value.Addr (Ctx.self ctx) in
            let cs = client_state_of t ctx in
            cs.cs_started <- cs.cs_started + 1;
            if kind = op_code Mget then begin
              Hashtbl.replace cs.cs_pendings req_id
                { p_t0 = t0; p_kind = kind; p_need = t.fan };
              for j = 0 to t.fan - 1 do
                let kj = (key + j) mod t.keyspace in
                Ctx.send ctx (shard_of t kj) p_get
                  [ Value.int kj; self; Value.int req_id ]
              done
            end
            else begin
              Hashtbl.replace cs.cs_pendings req_id
                { p_t0 = t0; p_kind = kind; p_need = 1 };
              if kind = op_code Get then
                Ctx.send ctx (shard_of t key) p_get
                  [ Value.int key; self; Value.int req_id ]
              else if kind = op_code Put then
                Ctx.send ctx (shard_of t key) p_put
                  [ Value.int key; Value.int (req_id land 0xffff); self;
                    Value.int req_id ]
              else
                let expect =
                  Option.value
                    (Hashtbl.find_opt cs.cs_last_seen key)
                    ~default:0
                in
                Ctx.send ctx (shard_of t key) p_cas
                  [ Value.int key; Value.int expect;
                    Value.int (req_id land 0xffff); self; Value.int req_id ]
            end );
        ( p_resp,
          fun ctx msg ->
            Ctx.charge ctx t.client_instr;
            let req_id = Value.to_int (Message.arg msg 0) in
            let key = Value.to_int (Message.arg msg 2) in
            let version = Value.to_int (Message.arg msg 4) in
            let ok = Value.to_int (Message.arg msg 5) = 1 in
            let cs = client_state_of t ctx in
            match Hashtbl.find_opt cs.cs_pendings req_id with
            | None -> cs.cs_stats.dup_resps <- cs.cs_stats.dup_resps + 1
            | Some p ->
                (* A failed CAS reports the current version, so remember
                   it either way: the next CAS on this key races from
                   fresh information. *)
                Hashtbl.replace cs.cs_last_seen key version;
                p.p_need <- p.p_need - 1;
                if p.p_need = 0 then begin
                  Hashtbl.remove cs.cs_pendings req_id;
                  Simcore.Histogram.observe cs.cs_stats.latency
                    (Ctx.now ctx - p.p_t0);
                  if p.p_kind = op_code Get then
                    cs.cs_stats.get_ok <- cs.cs_stats.get_ok + 1
                  else if p.p_kind = op_code Put then
                    cs.cs_stats.put_ok <- cs.cs_stats.put_ok + 1
                  else if p.p_kind = op_code Mget then
                    cs.cs_stats.mget_ok <- cs.cs_stats.mget_ok + 1
                  else if ok then cs.cs_stats.cas_ok <- cs.cs_stats.cas_ok + 1
                  else cs.cs_stats.cas_fail <- cs.cs_stats.cas_fail + 1
                end );
      ]
    ()

let create ?(service_instr = 200) ?(client_instr = 30)
    ?(latency_bucket_ns = 500) ?(keys_per_shard = 16) ?(mget_fan = 3)
    ?(multiactive = false) ?(ma_budget = 4) ~shards () =
  if shards < 1 then invalid_arg "Kv_store.create: shards must be >= 1";
  if mget_fan < 1 then invalid_arg "Kv_store.create: mget_fan must be >= 1";
  (* The class methods close over [t], so tie the knot through a
     placeholder (the placeholder class is never registered or used). *)
  let placeholder =
    Class_def.define ~name:"kv_placeholder" ~methods:[] ()
  in
  let t =
    {
      n_shards = shards;
      keyspace = shards * keys_per_shard;
      fan = mget_fan;
      service_instr;
      client_instr;
      latency_bucket_ns;
      per_node = [||];
      shard_addrs = [||];
      client_addrs = [||];
      shard_cls = placeholder;
      client_cls = placeholder;
    }
  in
  t.shard_cls <- shard_cls_def t;
  t.client_cls <- client_cls_def t;
  if multiactive then begin
    (* Single-writer / multi-reader shards: gets overlap each other
       (and mget fan-out is client-side gets), while put and cas fall
       into implicit singleton groups — serialized against everything,
       themselves included, so version arithmetic stays race-free. *)
    Multiactive.declare t.shard_cls ~budget:ma_budget
      ~groups:[ ("read", [ "kv_get" ]) ]
      ();
    (* Clients only mutate commutative bookkeeping (pending counters,
       order-insensitive sums), so request fan-out and response
       handling may overlap freely. *)
    Multiactive.declare t.client_cls ~budget:ma_budget
      ~groups:[ ("client", [ "tr_op"; "kv_resp" ]) ]
      ()
  end;
  t

let classes t = [ t.shard_cls; t.client_cls ]

let spawn t sys =
  let nodes = System.node_count sys in
  t.per_node <-
    Array.init nodes (fun _ ->
        {
          cs_stats = fresh_stats ~bucket_width:t.latency_bucket_ns;
          cs_pendings = Hashtbl.create 64;
          cs_last_seen = Hashtbl.create 64;
          cs_started = 0;
        });
  t.shard_addrs <-
    Array.init t.n_shards (fun i ->
        System.create_root sys ~node:(i mod nodes) t.shard_cls []);
  t.client_addrs <-
    Array.init nodes (fun node -> System.create_root sys ~node t.client_cls [])

let shards t = t.n_shards
let keyspace t = t.keyspace
let mget_fan t = t.fan
let shard_addr t i = t.shard_addrs.(i)
let client_addr t ~node = t.client_addrs.(node)

(* A merged snapshot: per-node counters summed, per-node latency
   histograms folded into one. Order-insensitive, so the result is the
   same whatever schedule (or domain count) produced the per-node
   records. *)
let stats t =
  let acc = fresh_stats ~bucket_width:t.latency_bucket_ns in
  Array.iter
    (fun cs ->
      let s = cs.cs_stats in
      acc.get_ok <- acc.get_ok + s.get_ok;
      acc.put_ok <- acc.put_ok + s.put_ok;
      acc.cas_ok <- acc.cas_ok + s.cas_ok;
      acc.cas_fail <- acc.cas_fail + s.cas_fail;
      acc.mget_ok <- acc.mget_ok + s.mget_ok;
      acc.dup_resps <- acc.dup_resps + s.dup_resps;
      Simcore.Histogram.merge_into ~into:acc.latency s.latency)
    t.per_node;
  acc

let started t =
  Array.fold_left (fun acc cs -> acc + cs.cs_started) 0 t.per_node

let completed t =
  let s = stats t in
  s.get_ok + s.put_ok + s.cas_ok + s.cas_fail + s.mget_ok

let pending t =
  Array.fold_left
    (fun acc cs -> acc + Hashtbl.length cs.cs_pendings)
    0 t.per_node

(* A shard may have migrated: the record at its canonical address is
   then a forwarding stub, and the live record (same [self], non-forward
   VFT) sits on some other node. *)
let live_state sys addr =
  let nodes = System.node_count sys in
  let rec scan node =
    if node >= nodes then None
    else
      let rt = System.rt sys node in
      let found =
        Hashtbl.fold
          (fun _ (o : Kernel.obj) acc ->
            match acc with
            | Some _ -> acc
            | None ->
                if
                  o.Kernel.self = addr
                  &&
                  match o.Kernel.vftp.Kernel.vft_kind with
                  | Kernel.Vft_forward _ -> false
                  | _ -> true
                then Some o.Kernel.state
                else None)
          rt.Kernel.objects None
      in
      match found with Some s -> Some s | None -> scan (node + 1)
  in
  scan 0

let applied_versions t sys =
  Array.fold_left
    (fun acc addr ->
      match live_state sys addr with
      | Some state ->
          List.fold_left
            (fun acc e ->
              let _, _, ver = entry_parts e in
              acc + ver)
            acc
            (Value.to_list state.(0))
      | None -> acc)
    0 t.shard_addrs

let audit t sys =
  let s = stats t in
  let out = ref [] in
  let add fmt = Printf.ksprintf (fun s -> out := s :: !out) fmt in
  if pending t > 0 then
    add "traffic: %d request(s) started but never completed" (pending t);
  if s.dup_resps > 0 then
    add "traffic: %d reply(ies) for unknown or finished requests" s.dup_resps;
  if started t <> completed t + pending t then
    add "traffic: started %d <> completed %d + pending %d" (started t)
      (completed t) (pending t);
  let applied = applied_versions t sys in
  let writes = s.put_ok + s.cas_ok in
  if applied <> writes then
    add
      "traffic: versions across shards %d <> successful writes %d (a write \
       was lost or applied twice)"
      applied writes;
  Array.iteri
    (fun i addr ->
      if live_state sys addr = None then add "traffic: shard %d has no live record" i)
    t.shard_addrs;
  List.rev !out
