(** Token ring: one object per node passing a hop-counting token around
    the torus. The steady-state time per hop is the end-to-end
    asynchronous inter-node message latency (Table 1's last row measured
    on a live application rather than a microbenchmark). *)

type result = {
  nodes : int;
  hops : int;
  elapsed : Simcore.Time.t;
  ns_per_hop : float;
}

val run :
  ?machine_config:Machine.Engine.config ->
  ?rt_config:Core.Kernel.rt_config ->
  ?attach:(Core.System.t -> unit) ->
  nodes:int ->
  laps:int ->
  unit ->
  result
(** [attach] runs on the booted system before any message is injected —
    the hook for optional subsystems (e.g. migration). *)
