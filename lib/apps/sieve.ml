open Core

type result = {
  limit : int;
  primes : int;
  largest : int;
  filters_created : int;
  elapsed : Simcore.Time.t;
  utilization : float;
}

let p_candidate = Pattern.intern "sv_candidate" ~arity:1
let p_start = Pattern.intern "sv_start" ~arity:1
let p_found = Pattern.intern "sv_found" ~arity:1

(* filter state: its prime, the next filter (Unit until one exists), and
   the collector to report new primes to. *)
let s_prime = 0
let s_next = 1
let s_collector = 2

let filter_cls () =
  let cls_ref = ref None in
  let candidate_impl ctx msg =
    let n = Value.to_int (Message.arg msg 0) in
    let prime = Value.to_int (Ctx.get ctx s_prime) in
    Ctx.charge ctx 6;
    if n mod prime <> 0 then
      match Ctx.get ctx s_next with
      | Value.Addr next -> Ctx.send ctx next p_candidate [ Value.int n ]
      | _ ->
          (* n survived every filter: it is prime; grow the chain. *)
          let collector = Ctx.get ctx s_collector in
          let next =
            Ctx.create_remote ctx (Option.get !cls_ref)
              [ Value.int n; Value.unit; collector ]
          in
          Ctx.set ctx s_next (Value.addr next);
          Ctx.send ctx (Value.to_addr collector) p_found [ Value.int n ]
  in
  let cls =
    Class_def.define ~name:"sv_filter"
      ~state:[| "prime"; "next"; "collector" |]
      ~init:(fun args ->
        match args with
        | [ prime; next; collector ] -> [| prime; next; collector |]
        | _ -> invalid_arg "sv_filter: bad constructor arguments")
      ~methods:[ (p_candidate, candidate_impl) ]
      ()
  in
  cls_ref := Some cls;
  cls

(* collector state: prime count, largest prime seen. *)
let collector_cls filter =
  Class_def.define ~name:"sv_collector" ~state:[| "count"; "largest" |]
    ~init:(fun _ -> [| Value.int 0; Value.int 0 |])
    ~methods:
      [
        ( p_start,
          fun ctx msg ->
            let limit = Value.to_int (Message.arg msg 0) in
            let first =
              Ctx.create_remote ctx filter
                [ Value.int 2; Value.unit; Value.addr (Ctx.self ctx) ]
            in
            Ctx.set ctx 0 (Value.int 1);
            Ctx.set ctx 1 (Value.int 2);
            for n = 3 to limit do
              Ctx.charge ctx 2;
              Ctx.send ctx first p_candidate [ Value.int n ]
            done );
        ( p_found,
          fun ctx msg ->
            let p = Value.to_int (Message.arg msg 0) in
            Ctx.set ctx 0 (Value.int (Value.to_int (Ctx.get ctx 0) + 1));
            Ctx.set ctx 1 (Value.int (max p (Value.to_int (Ctx.get ctx 1)))) );
      ]
    ()

let run ?machine_config ?rt_config ~nodes ~limit () =
  if limit < 2 then invalid_arg "Sieve.run: limit must be >= 2";
  let filter = filter_cls () in
  let collector = collector_cls filter in
  let sys =
    System.boot ?machine_config ?rt_config ~nodes
      ~classes:[ filter; collector ] ()
  in
  let c = System.create_root sys ~node:0 collector [] in
  System.send_boot sys c p_start [ Value.int limit ];
  System.run sys;
  let c_obj = Option.get (System.lookup_obj sys c) in
  let stats = System.stats sys in
  {
    limit;
    primes = Value.to_int c_obj.Kernel.state.(0);
    largest = Value.to_int c_obj.Kernel.state.(1);
    filters_created =
      Simcore.Stats.get stats "create.remote"
      + Simcore.Stats.get stats "create.local";
    elapsed = System.elapsed sys;
    utilization = System.utilization sys;
  }
