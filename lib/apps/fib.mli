(** Fork-join Fibonacci over concurrent objects.

    Exercises the blocking machinery the N-queens benchmark avoids: each
    internal node spawns two children, sends them past-type requests with
    itself as collector, and then {e selectively waits} for the two
    [result] messages (Section 2.2's waiting mode), so contexts are
    saved and restored across the whole tree. *)

type result = {
  n : int;
  value : int;  (** fib(n), with fib(0) = fib(1) = 1 *)
  objects_created : int;
  elapsed : Simcore.Time.t;
  blocked_waits : int;  (** selective receptions that actually blocked *)
}

val run :
  ?machine_config:Machine.Engine.config ->
  ?rt_config:Core.Kernel.rt_config ->
  nodes:int ->
  n:int ->
  unit ->
  result
