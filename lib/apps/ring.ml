open Core

type result = {
  nodes : int;
  hops : int;
  elapsed : Simcore.Time.t;
  ns_per_hop : float;
}

let p_token = Pattern.intern "token" ~arity:1
let p_link = Pattern.intern "link" ~arity:1

let station_cls () =
  Class_def.define ~name:"ring_station" ~state:[| "next" |]
    ~init:(fun _ -> [| Value.unit |])
    ~methods:
      [
        ( p_link,
          fun ctx msg -> Ctx.set ctx 0 (Message.arg msg 0) );
        ( p_token,
          fun ctx msg ->
            let hops = Value.to_int (Message.arg msg 0) in
            if hops > 0 then
              let next = Value.to_addr (Ctx.get ctx 0) in
              Ctx.send ctx next p_token [ Value.int (hops - 1) ]
            else Ctx.bump ctx "ring.finished" );
      ]
    ()

let run ?machine_config ?rt_config ?(attach = fun _ -> ()) ~nodes ~laps () =
  if nodes < 2 then invalid_arg "Ring.run: need at least two nodes";
  let cls = station_cls () in
  let sys = System.boot ?machine_config ?rt_config ~nodes ~classes:[ cls ] () in
  attach sys;
  let stations =
    Array.init nodes (fun i -> System.create_root sys ~node:i cls [])
  in
  Array.iteri
    (fun i station ->
      let next = stations.((i + 1) mod nodes) in
      System.send_boot sys station p_link [ Value.addr next ])
    stations;
  let hops = laps * nodes in
  System.send_boot sys stations.(0) p_token [ Value.int hops ];
  System.run sys;
  let elapsed = System.elapsed sys in
  {
    nodes;
    hops;
    elapsed;
    ns_per_hop = float_of_int elapsed /. float_of_int hops;
  }
