type result = { n : int; solutions : int; nodes : int; instr : int }

let solve ~n =
  if n < 1 then invalid_arg "Nqueens_seq.solve: n must be >= 1";
  let solutions = ref 0 and nodes = ref 0 and instr = ref 0 in
  (* [cols]: placement so far, most recent first. Each call expands one
     tree node, exactly like one [expand] method of the parallel
     version. *)
  let rec expand cols placed =
    if placed = n then begin
      incr solutions;
      instr := !instr + Queens_board.leaf_instr
    end
    else begin
      let children = Queens_board.safe_cols ~n ~cols in
      let k = List.length children in
      instr := !instr + Queens_board.expand_instr ~n ~placed ~children:k;
      List.iter
        (fun col ->
          incr nodes;
          instr := !instr + Queens_board.seq_call_instr;
          expand (col :: cols) (placed + 1))
        children
    end
  in
  expand [] 0;
  { n; solutions = !solutions; nodes = !nodes; instr = !instr }

let modeled_time cost r = Machine.Cost_model.time cost r.instr
