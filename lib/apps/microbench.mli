(** Microbenchmarks of the basic runtime operations, measured in virtual
    time exactly as the paper measures them (Section 6.1): repeat an
    operation k times, subtract a k/2 run to cancel fixed costs, divide.

    Used by [bench/main.exe] to regenerate Tables 1-3 and by the test
    suite to pin the cost model against the paper's headline numbers. *)

type t = {
  intra_dormant_ns : float;
      (** past-type message to a dormant local object (paper: 2.3 us) *)
  intra_active_ns : float;
      (** message to an active object, including rescheduling through the
          scheduling queue (paper: 9.6 us) *)
  intra_create_ns : float;  (** local object creation (paper: 2.1 us) *)
  inter_latency_ns : float;
      (** one-way inter-node message period between adjacent nodes,
          measured by repeated transmission (paper: 8.9 us) *)
  now_roundtrip_remote_ns : float;
      (** now-type send + reply across two nodes (paper Table 3: 17.8 us,
          ~450 cycles at 25 MHz) *)
  inlined_send_ns : float;
      (** Section 8.2 inlined send to a known-class local dormant object *)
  lean_send_ns : float;
      (** the fully optimised send with all four Section 6.1 conditions
          (paper: 8 instructions, "truly comparable with a virtual
          function call in C++") *)
}

val measure : ?machine_config:Machine.Engine.config -> unit -> t

val intra_dormant_instructions : Machine.Cost_model.t -> int
(** The Table 2 instruction total implied by the cost model. *)

val pp : Format.formatter -> t -> unit
