open Core

type result = {
  n : int;
  value : int;
  objects_created : int;
  elapsed : Simcore.Time.t;
  blocked_waits : int;
}

let p_compute = Pattern.intern "compute" ~arity:2
let p_result = Pattern.intern "result" ~arity:1
let p_collect = Pattern.intern "collect" ~arity:1

let fib_cls () =
  let cls_ref = ref None in
  let compute ctx msg =
    let n = Value.to_int (Message.arg msg 0) in
    let collector = Value.to_addr (Message.arg msg 1) in
    Ctx.charge ctx 20;
    if n < 2 then Ctx.send ctx collector p_result [ Value.int 1 ]
    else begin
      let cls = Option.get !cls_ref in
      let self = Value.addr (Ctx.self ctx) in
      let c1 = Ctx.create_remote ctx cls [] in
      let c2 = Ctx.create_remote ctx cls [] in
      Ctx.send ctx c1 p_compute [ Value.int (n - 1); self ];
      Ctx.send ctx c2 p_compute [ Value.int (n - 2); self ];
      let m1 = Ctx.wait_for ctx [ p_result ] in
      let m2 = Ctx.wait_for ctx [ p_result ] in
      let total =
        Value.to_int (Message.arg m1 0) + Value.to_int (Message.arg m2 0)
      in
      Ctx.send ctx collector p_result [ Value.int total ];
      Ctx.retire ctx
    end
  in
  let cls =
    Class_def.define ~name:"fib" ~methods:[ (p_compute, compute) ] ()
  in
  cls_ref := Some cls;
  cls

let collector_cls () =
  Class_def.define ~name:"fib_collector" ~state:[| "value" |]
    ~init:(fun _ -> [| Value.int (-1) |])
    ~methods:
      [
        ( p_result,
          fun ctx msg -> Ctx.set ctx 0 (Message.arg msg 0) );
        ( p_collect, fun _ctx _msg -> () );
      ]
    ()

let run ?machine_config ?rt_config ~nodes ~n () =
  let fib = fib_cls () and collector = collector_cls () in
  let sys =
    System.boot ?machine_config ?rt_config ~nodes ~classes:[ fib; collector ]
      ()
  in
  let sink = System.create_root sys ~node:0 collector [] in
  let root = System.create_root sys ~node:0 fib [] in
  System.send_boot sys root p_compute [ Value.int n; Value.addr sink ];
  System.run sys;
  let sink_obj = Option.get (System.lookup_obj sys sink) in
  let stats = System.stats sys in
  {
    n;
    value = Value.to_int sink_obj.Kernel.state.(0);
    objects_created = Nqueens_par.creation_count stats;
    elapsed = System.elapsed sys;
    blocked_waits = Simcore.Stats.get stats "wait.blocked";
  }
