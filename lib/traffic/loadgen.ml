module Engine = Machine.Engine

type process = Poisson | Fixed
type mix = { m_get : int; m_put : int; m_cas : int; m_mget : int }

let default_mix = { m_get = 60; m_put = 25; m_cas = 10; m_mget = 5 }

type key_dist =
  | Uniform
  | Zipf of float
      (** skewed key popularity with the given theta (> 0); rank 0 is
          the hottest key. Ranks map straight onto key ids, so the hot
          ranks spread across shards ([key mod shards]) while each
          shard still sees a skewed stream. *)

type config = {
  seed : int;
  process : process;
  rate_rps : int;
  requests : int;
  start_ns : int;
  mix : mix;
  key_dist : key_dist;
}

let default_config =
  {
    seed = 1;
    process = Poisson;
    rate_rps = 200_000;
    requests = 1_000;
    start_ns = 1_000;
    mix = default_mix;
    key_dist = Uniform;
  }

(* One arrival chain. Classic mode runs a single global chain
   ([g_node = -1], injection node drawn per arrival); sharded mode runs
   one chain per node, each owning a derived rng stream and injecting
   only at its own node's client — so under [System.run_parallel] every
   chain's draws, timers and posts stay inside one domain. *)
type gen = {
  g_node : int;
  g_rng : Simcore.Rng.t;
  g_share : int;  (** requests this chain will inject *)
  mutable g_count : int;
}

type t = {
  cfg : config;
  sys : Core.System.t;
  kv : Apps.Kv_store.t;
  zipf_cdf : float array option;
      (** cumulative popularity by rank, precomputed at launch;
          read-only after launch, so chains may share it *)
  gens : gen array;
}

(* Normalised cumulative Zipf weights: cdf.(r) = P(rank <= r). *)
let make_zipf_cdf ~n ~theta =
  if theta <= 0. then invalid_arg "Loadgen: Zipf theta must be > 0";
  let w = Array.init n (fun i -> 1. /. (float_of_int (i + 1) ** theta)) in
  let total = Array.fold_left ( +. ) 0. w in
  let acc = ref 0. in
  Array.map
    (fun x ->
      acc := !acc +. x;
      !acc /. total)
    w

(* Smallest rank whose cumulative weight covers [u]. *)
let zipf_rank cdf u =
  let n = Array.length cdf in
  let lo = ref 0 and hi = ref (n - 1) in
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    if cdf.(mid) < u then lo := mid + 1 else hi := mid
  done;
  !lo

let period_ns cfg = 1_000_000_000. /. float_of_int cfg.rate_rps

let draw_op cfg rng =
  let m = cfg.mix in
  let total = m.m_get + m.m_put + m.m_cas + m.m_mget in
  if total <= 0 then invalid_arg "Loadgen: operation mix sums to zero";
  let r = Simcore.Rng.int rng total in
  if r < m.m_get then Apps.Kv_store.Get
  else if r < m.m_get + m.m_put then Apps.Kv_store.Put
  else if r < m.m_get + m.m_put + m.m_cas then Apps.Kv_store.Cas
  else Apps.Kv_store.Mget

(* [decide] abstracts over the engine's global decision source (classic
   chain) and the per-node one (sharded chains). *)
let draw_key t rng ~decide =
  let keyspace = Apps.Kv_store.keyspace t.kv in
  match t.zipf_cdf with
  | None ->
      let base = Simcore.Rng.int rng keyspace in
      let shift = decide "traffic.key.shift" 4 in
      (base + shift) mod keyspace
  | Some cdf ->
      (* The rank comes from the generator's own seeded stream; the
         recorded decision point only perturbs it, so a captured
         schedule replays the exact same key sequence. *)
      let u = Simcore.Rng.float rng 1.0 in
      let rank = zipf_rank cdf u in
      let shift = decide "traffic.key.zipf" 4 in
      (rank + shift) mod keyspace

let inject t g ~node ~at ~req_id ~decide =
  let op = draw_op t.cfg g.g_rng in
  let key = draw_key t g.g_rng ~decide in
  g.g_count <- g.g_count + 1;
  Core.System.send_boot t.sys
    (Apps.Kv_store.client_addr t.kv ~node)
    Apps.Kv_store.p_op
    [
      Core.Value.int (Apps.Kv_store.op_code op);
      Core.Value.int key;
      Core.Value.int at;
      Core.Value.int req_id;
    ]

let next_gap cfg rng ~period ~decide =
  let base =
    match cfg.process with
    | Fixed -> period
    | Poisson ->
        (* Inverse-CDF exponential; 1 - u keeps the argument in (0, 1]. *)
        let u = Simcore.Rng.float rng 1.0 in
        -.period *. log (1. -. u)
  in
  let jitter_q = decide "traffic.arrival.jitter" 4 in
  let jitter = float_of_int jitter_q *. period /. 8. in
  Stdlib.max 1 (int_of_float (Float.round (base +. jitter)))

let make ~gens cfg sys kv =
  if cfg.rate_rps < 1 then invalid_arg "Loadgen.launch: rate_rps must be >= 1";
  if cfg.requests < 1 then invalid_arg "Loadgen.launch: requests must be >= 1";
  let zipf_cdf =
    match cfg.key_dist with
    | Uniform -> None
    | Zipf theta ->
        Some (make_zipf_cdf ~n:(Apps.Kv_store.keyspace kv) ~theta)
  in
  { cfg; sys; kv; zipf_cdf; gens }

let launch cfg sys kv =
  let g =
    {
      g_node = -1;
      g_rng = Simcore.Rng.create ~seed:cfg.seed;
      g_share = cfg.requests;
      g_count = 0;
    }
  in
  let t = make ~gens:[| g |] cfg sys kv in
  let machine = Core.System.machine sys in
  let nodes = Core.System.node_count sys in
  let decide = Engine.decide machine in
  let period = period_ns cfg in
  (* Arrival i+1 is armed from arrival i's timer, so the whole process
     is a single deterministic chain of draws — open-loop by
     construction (nothing here observes completions). *)
  let rec arm at =
    Engine.schedule_at machine ~time:at (fun () ->
        let node = Simcore.Rng.int g.g_rng nodes in
        inject t g ~node ~at ~req_id:g.g_count ~decide;
        if g.g_count < cfg.requests then arm (at + next_gap cfg g.g_rng ~period ~decide))
  in
  arm cfg.start_ns;
  t

let launch_sharded cfg sys kv =
  let nodes = Core.System.node_count sys in
  let machine = Core.System.machine sys in
  let base = Simcore.Rng.create ~seed:cfg.seed in
  let gens =
    Array.init nodes (fun node ->
        {
          g_node = node;
          (* [derive] does not advance [base], so every chain's stream
             is a pure function of (seed, node) — independent of the
             order the chains are built or run in. *)
          g_rng = Simcore.Rng.derive base ~index:node;
          g_share =
            (cfg.requests / nodes)
            + (if node < cfg.requests mod nodes then 1 else 0);
          g_count = 0;
        })
  in
  let t = make ~gens cfg sys kv in
  (* Each chain offers 1/nodes of the rate; superposed independent
     Poisson processes recover the configured aggregate rate. *)
  let period = period_ns cfg *. float_of_int nodes in
  Array.iter
    (fun g ->
      if g.g_share > 0 then begin
        let node = g.g_node in
        let decide tag n = Engine.decide_on machine ~node tag n in
        let rec arm at =
          (* [schedule_on] pins the timer to the chain's node, so under
             [run_parallel] the whole chain — draws, decision points,
             the local post behind [send_boot] — executes on that
             node's domain. *)
          Engine.schedule_on machine ~node ~time:at (fun () ->
              (* Globally unique and schedule-independent: chain [node]
                 owns the ids congruent to [node] mod [nodes]. *)
              let req_id = (g.g_count * nodes) + node in
              inject t g ~node ~at ~req_id ~decide;
              if g.g_count < g.g_share then
                arm (at + next_gap cfg g.g_rng ~period ~decide))
        in
        arm cfg.start_ns
      end)
    gens;
  t

let injected t = Array.fold_left (fun acc g -> acc + g.g_count) 0 t.gens
let sharded t = Array.length t.gens > 0 && t.gens.(0).g_node >= 0
let config t = t.cfg
let store t = t.kv

let audit t sys =
  let missing =
    if injected t <> t.cfg.requests then
      [
        Printf.sprintf "traffic: injected %d of %d offered requests"
          (injected t) t.cfg.requests;
      ]
    else []
  in
  missing @ Apps.Kv_store.audit t.kv sys
