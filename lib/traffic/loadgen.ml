module Engine = Machine.Engine

type process = Poisson | Fixed
type mix = { m_get : int; m_put : int; m_cas : int; m_mget : int }

let default_mix = { m_get = 60; m_put = 25; m_cas = 10; m_mget = 5 }

type key_dist =
  | Uniform
  | Zipf of float
      (** skewed key popularity with the given theta (> 0); rank 0 is
          the hottest key. Ranks map straight onto key ids, so the hot
          ranks spread across shards ([key mod shards]) while each
          shard still sees a skewed stream. *)

type config = {
  seed : int;
  process : process;
  rate_rps : int;
  requests : int;
  start_ns : int;
  mix : mix;
  key_dist : key_dist;
}

let default_config =
  {
    seed = 1;
    process = Poisson;
    rate_rps = 200_000;
    requests = 1_000;
    start_ns = 1_000;
    mix = default_mix;
    key_dist = Uniform;
  }

type t = {
  cfg : config;
  sys : Core.System.t;
  kv : Apps.Kv_store.t;
  rng : Simcore.Rng.t;
  zipf_cdf : float array option;
      (** cumulative popularity by rank, precomputed at launch *)
  mutable injected : int;
}

(* Normalised cumulative Zipf weights: cdf.(r) = P(rank <= r). *)
let make_zipf_cdf ~n ~theta =
  if theta <= 0. then invalid_arg "Loadgen: Zipf theta must be > 0";
  let w = Array.init n (fun i -> 1. /. (float_of_int (i + 1) ** theta)) in
  let total = Array.fold_left ( +. ) 0. w in
  let acc = ref 0. in
  Array.map
    (fun x ->
      acc := !acc +. x;
      !acc /. total)
    w

(* Smallest rank whose cumulative weight covers [u]. *)
let zipf_rank cdf u =
  let n = Array.length cdf in
  let lo = ref 0 and hi = ref (n - 1) in
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    if cdf.(mid) < u then lo := mid + 1 else hi := mid
  done;
  !lo

let period_ns cfg = 1_000_000_000. /. float_of_int cfg.rate_rps

let draw_op t =
  let m = t.cfg.mix in
  let total = m.m_get + m.m_put + m.m_cas + m.m_mget in
  if total <= 0 then invalid_arg "Loadgen: operation mix sums to zero";
  let r = Simcore.Rng.int t.rng total in
  if r < m.m_get then Apps.Kv_store.Get
  else if r < m.m_get + m.m_put then Apps.Kv_store.Put
  else if r < m.m_get + m.m_put + m.m_cas then Apps.Kv_store.Cas
  else Apps.Kv_store.Mget

let inject t ~at =
  let machine = Core.System.machine t.sys in
  let nodes = Core.System.node_count t.sys in
  let node = Simcore.Rng.int t.rng nodes in
  let op = draw_op t in
  let keyspace = Apps.Kv_store.keyspace t.kv in
  let key =
    match t.zipf_cdf with
    | None ->
        let base = Simcore.Rng.int t.rng keyspace in
        let shift = Engine.decide machine "traffic.key.shift" 4 in
        (base + shift) mod keyspace
    | Some cdf ->
        (* The rank comes from the generator's own seeded stream; the
           recorded decision point only perturbs it, so a captured
           schedule replays the exact same key sequence. *)
        let u = Simcore.Rng.float t.rng 1.0 in
        let rank = zipf_rank cdf u in
        let shift = Engine.decide machine "traffic.key.zipf" 4 in
        (rank + shift) mod keyspace
  in
  let req_id = t.injected in
  t.injected <- t.injected + 1;
  Core.System.send_boot t.sys
    (Apps.Kv_store.client_addr t.kv ~node)
    Apps.Kv_store.p_op
    [
      Core.Value.int (Apps.Kv_store.op_code op);
      Core.Value.int key;
      Core.Value.int at;
      Core.Value.int req_id;
    ]

let next_gap t =
  let machine = Core.System.machine t.sys in
  let period = period_ns t.cfg in
  let base =
    match t.cfg.process with
    | Fixed -> period
    | Poisson ->
        (* Inverse-CDF exponential; 1 - u keeps the argument in (0, 1]. *)
        let u = Simcore.Rng.float t.rng 1.0 in
        -.period *. log (1. -. u)
  in
  let jitter_q = Engine.decide machine "traffic.arrival.jitter" 4 in
  let jitter = float_of_int jitter_q *. period /. 8. in
  Stdlib.max 1 (int_of_float (Float.round (base +. jitter)))

let launch cfg sys kv =
  if cfg.rate_rps < 1 then invalid_arg "Loadgen.launch: rate_rps must be >= 1";
  if cfg.requests < 1 then
    invalid_arg "Loadgen.launch: requests must be >= 1";
  let zipf_cdf =
    match cfg.key_dist with
    | Uniform -> None
    | Zipf theta ->
        Some (make_zipf_cdf ~n:(Apps.Kv_store.keyspace kv) ~theta)
  in
  let t =
    {
      cfg;
      sys;
      kv;
      rng = Simcore.Rng.create ~seed:cfg.seed;
      zipf_cdf;
      injected = 0;
    }
  in
  let machine = Core.System.machine sys in
  (* Arrival i+1 is armed from arrival i's timer, so the whole process
     is a single deterministic chain of draws — open-loop by
     construction (nothing here observes completions). *)
  let rec arm at =
    Engine.schedule_at machine ~time:at (fun () ->
        inject t ~at;
        if t.injected < cfg.requests then arm (at + next_gap t))
  in
  arm cfg.start_ns;
  t

let injected t = t.injected
let config t = t.cfg
let store t = t.kv

let audit t sys =
  let missing =
    if t.injected <> t.cfg.requests then
      [
        Printf.sprintf "traffic: injected %d of %d offered requests"
          t.injected t.cfg.requests;
      ]
    else []
  in
  missing @ Apps.Kv_store.audit t.kv sys
