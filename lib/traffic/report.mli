(** Latency-percentile report for an open-loop traffic run.

    Summarizes a completed run (call after [System.run] has quiesced):
    completion counts by operation, p50/p99/p999 completion latency
    from the tier's histogram, goodput, and the error/timeout counters
    the gates check. {!json_fields} renders the report for a
    [BENCH_traffic.json] artifact. *)

type t = {
  r_rate_rps : int;  (** offered rate *)
  r_injected : int;
  r_completed : int;
  r_timeouts : int;  (** started but never completed at quiescence *)
  r_errors : int;  (** duplicate/orphan replies observed by clients *)
  r_get_ok : int;
  r_put_ok : int;
  r_cas_ok : int;
  r_cas_fail : int;  (** lost CAS races: completed, not errors *)
  r_mget_ok : int;
  r_p50_ns : float;
  r_p99_ns : float;
  r_p999_ns : float;
  r_mean_ns : float;
  r_goodput_rps : float;  (** completions per second of virtual time *)
  r_elapsed_ns : int;  (** machine makespan *)
}

val of_run : Loadgen.t -> Core.System.t -> t

val pp : Format.formatter -> t -> unit

val json_fields : t -> (string * Services.Bench_json.v) list
(** Flat fields (rate, counts, percentiles in integer ns, goodput) for
    {!Services.Bench_json.write}; percentile keys are [p50_ns] /
    [p99_ns] / [p999_ns]. *)
