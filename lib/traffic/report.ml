type t = {
  r_rate_rps : int;
  r_injected : int;
  r_completed : int;
  r_timeouts : int;
  r_errors : int;
  r_get_ok : int;
  r_put_ok : int;
  r_cas_ok : int;
  r_cas_fail : int;
  r_mget_ok : int;
  r_p50_ns : float;
  r_p99_ns : float;
  r_p999_ns : float;
  r_mean_ns : float;
  r_goodput_rps : float;
  r_elapsed_ns : int;
}

let of_run lg sys =
  let kv = Loadgen.store lg in
  let s = Apps.Kv_store.stats kv in
  let h = s.Apps.Kv_store.latency in
  let q p = Option.value (Simcore.Histogram.quantile h p) ~default:0. in
  let completed = Apps.Kv_store.completed kv in
  let elapsed = Core.System.elapsed sys in
  {
    r_rate_rps = (Loadgen.config lg).Loadgen.rate_rps;
    r_injected = Loadgen.injected lg;
    r_completed = completed;
    r_timeouts = Apps.Kv_store.pending kv;
    r_errors = s.Apps.Kv_store.dup_resps;
    r_get_ok = s.Apps.Kv_store.get_ok;
    r_put_ok = s.Apps.Kv_store.put_ok;
    r_cas_ok = s.Apps.Kv_store.cas_ok;
    r_cas_fail = s.Apps.Kv_store.cas_fail;
    r_mget_ok = s.Apps.Kv_store.mget_ok;
    r_p50_ns = (if Simcore.Histogram.count h = 0 then 0. else q 0.5);
    r_p99_ns = (if Simcore.Histogram.count h = 0 then 0. else q 0.99);
    r_p999_ns = (if Simcore.Histogram.count h = 0 then 0. else q 0.999);
    r_mean_ns = Option.value (Simcore.Histogram.mean h) ~default:0.;
    r_goodput_rps =
      (if elapsed = 0 then 0.
       else float_of_int completed *. 1e9 /. float_of_int elapsed);
    r_elapsed_ns = elapsed;
  }

let pp ppf r =
  Format.fprintf ppf
    "rate %7d req/s: %5d injected, %5d completed (%d get %d put %d cas +%d \
     lost-cas %d mget), %d timeout(s), %d error(s)@,\
    \  latency p50 %8.0f ns  p99 %8.0f ns  p999 %8.0f ns  mean %8.0f ns; \
     goodput %.0f req/s over %.2f ms"
    r.r_rate_rps r.r_injected r.r_completed r.r_get_ok r.r_put_ok r.r_cas_ok
    r.r_cas_fail r.r_mget_ok r.r_timeouts r.r_errors r.r_p50_ns r.r_p99_ns
    r.r_p999_ns r.r_mean_ns r.r_goodput_rps
    (Simcore.Time.to_ms r.r_elapsed_ns)

let json_fields r =
  let open Services.Bench_json in
  [
    ("rate_rps", Int r.r_rate_rps);
    ("injected", Int r.r_injected);
    ("completed", Int r.r_completed);
    ("timeouts", Int r.r_timeouts);
    ("errors", Int r.r_errors);
    ("get_ok", Int r.r_get_ok);
    ("put_ok", Int r.r_put_ok);
    ("cas_ok", Int r.r_cas_ok);
    ("cas_fail", Int r.r_cas_fail);
    ("mget_ok", Int r.r_mget_ok);
    ("p50_ns", Int (int_of_float r.r_p50_ns));
    ("p99_ns", Int (int_of_float r.r_p99_ns));
    ("p999_ns", Int (int_of_float r.r_p999_ns));
    ("mean_ns", Float r.r_mean_ns);
    ("goodput_rps", Float r.r_goodput_rps);
    ("elapsed_ns", Int r.r_elapsed_ns);
  ]
