(** Open-loop load generation against the sharded KV tier.

    A closed-loop client waits for each reply before sending again, so
    queueing collapse is structurally invisible: the offered rate sags
    exactly when the service degrades. This generator is {e open-loop}:
    arrival instants come from a seeded Poisson (or fixed-rate) process
    armed as engine timers, computed independently of completions, so
    when a shard falls behind its queue — and the measured tail — grows.

    Determinism and replay: the arrival process draws from its own
    seeded {!Simcore.Rng} (a pure function of [seed]), and every arrival
    additionally consults engine decision points —
    ["traffic.arrival.jitter"] (extra delay before the injection, in
    eighths of the nominal period) and ["traffic.key.shift"] /
    ["traffic.key.zipf"] (a key perturbation, for uniform and Zipfian
    draws respectively) — through {!Machine.Engine.decide}. Under the default
    decision source both return 0 (the unperturbed baseline); under
    [lib/check] the choices are recorded into the schedule's vector, so
    a recorded run replays bit-identically and the explorer can perturb
    arrival timing and key skew like any other schedule decision. *)

type process = Poisson | Fixed

type mix = { m_get : int; m_put : int; m_cas : int; m_mget : int }
(** Relative weights of the four operations. *)

val default_mix : mix
(** 60% get / 25% put / 10% cas / 5% fan-out mget. *)

type key_dist =
  | Uniform
  | Zipf of float
      (** Zipfian key popularity with parameter theta (> 0): rank [r]
          gets weight [1/(r+1)^theta], rank 0 is the hottest key. The
          rank is drawn from the generator's seeded stream and then
          perturbed through a ["traffic.key.zipf"] decision point, so
          recorded schedules replay bit-identically and the explorer
          can nudge the skew. *)

type config = {
  seed : int;
  process : process;
  rate_rps : int;  (** offered load, requests per second of virtual time *)
  requests : int;  (** total injections, after which the process stops *)
  start_ns : int;  (** first arrival instant *)
  mix : mix;
  key_dist : key_dist;  (** key popularity; [Uniform] is the baseline *)
}

val default_config : config
(** Poisson, 200k req/s, 1000 requests, seed 1, uniform keys. *)

type t

val launch : config -> Core.System.t -> Apps.Kv_store.t -> t
(** Arms the arrival process on the system's engine (first arrival at
    [start_ns]). Call after {!Apps.Kv_store.spawn} and before
    [System.run]; injections ride the run. *)

val launch_sharded : config -> Core.System.t -> Apps.Kv_store.t -> t
(** Like {!launch}, but one arrival chain per node, each offering
    [rate_rps / nodes] (superposed independent Poisson chains recover
    the aggregate rate) and injecting only at its own node's client.
    Chain [n] draws from [Rng.derive base ~index:n] — a pure function
    of [(seed, n)] — consults the {e per-node} decision source
    ({!Machine.Engine.decide_on}), and owns the request ids congruent
    to [n] modulo the node count ([requests] split evenly, remainder to
    low nodes). Every chain's timers, draws and posts stay on its own
    node, so this is the arrival mode for {!Core.System.run_parallel};
    it also runs — bit-identically across domain counts — under the
    sequential engine. *)

val injected : t -> int

val sharded : t -> bool
(** Whether this generator was built by {!launch_sharded}. *)

val config : t -> config
val store : t -> Apps.Kv_store.t

val audit : t -> Core.System.t -> string list
(** Quiescence invariants: the full offered load was injected, plus
    every {!Apps.Kv_store.audit} invariant (no lost or duplicated
    completion, write/version conservation). *)
