(** Sense-reversing barrier for the parallel engine's rounds: a short
    bounded spin, then a condition-variable block (so oversubscribed
    hosts — more domains than cores — do not burn a scheduler quantum
    per waiter per phase).

    All [parties] participants must call {!await} to release any of
    them; each passes its own stable index [me] in [[0, parties)]. The
    barrier is a full memory fence: writes made by any participant
    before its [await] are visible to every participant afterwards, so
    plain per-domain arrays exchanged strictly across barrier phases
    need no atomics of their own. A 1-party barrier is a no-op. *)

type t

val create : int -> t
(** [create parties] — raises [Invalid_argument] if [parties < 1]. *)

val await : t -> me:int -> unit
val parties : t -> int
