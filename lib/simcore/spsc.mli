(** Unbounded single-producer single-consumer FIFO mailbox.

    The parallel engine owns one per ordered domain pair: the source
    domain pushes boundary items during its execution window, the
    destination domain drains them at the next barrier. Exactly one
    domain may call {!push} and exactly one may call {!pop}/{!drain}
    over the queue's lifetime; the atomic links give the happens-before
    edge that publishes each element's payload. *)

type 'a t

val create : unit -> 'a t
val push : 'a t -> 'a -> unit

val pop : 'a t -> 'a option
(** Oldest element, if any (consumer side). *)

val drain : 'a t -> 'a list
(** Every element currently visible, oldest first (consumer side). *)

val is_empty : 'a t -> bool
(** Consumer-side emptiness probe. *)
