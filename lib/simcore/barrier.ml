(* Sense-reversing barrier with a bounded spin before blocking. Each
   participant flips its private sense per phase; the last arrival
   flips the shared sense, releasing the rest. The [Atomic] operations
   are sequentially consistent, so every write made before [await] is
   visible to every participant after it — the parallel engine leans on
   this to exchange plain (non-atomic) per-domain data across phases.
   (Blocking waiters get the same guarantee from the mutex.)

   Waiters spin only briefly and then block on a condition variable:
   with more domains than cores — a 2-core CI runner driving 8 domains —
   a pure spin barrier burns a scheduler quantum per waiter per phase
   and the run crawls; blocked waiters cost a wakeup instead. *)

(* Private senses live in a padded slot each so two participants never
   share a cache line. *)
let pad = 16
let spin_budget = 1024

type t = {
  parties : int;
  count : int Atomic.t;
  sense : bool Atomic.t;
  local : bool array;  (* slot [i * pad]: participant i's next sense *)
  mutex : Mutex.t;
  cond : Condition.t;
}

let create parties =
  if parties < 1 then invalid_arg "Barrier.create: parties must be >= 1";
  {
    parties;
    count = Atomic.make parties;
    sense = Atomic.make false;
    local = Array.make (parties * pad) true;
    mutex = Mutex.create ();
    cond = Condition.create ();
  }

let await t ~me =
  if t.parties > 1 then begin
    let mine = t.local.(me * pad) in
    t.local.(me * pad) <- not mine;
    if Atomic.fetch_and_add t.count (-1) = 1 then begin
      Atomic.set t.count t.parties;
      Atomic.set t.sense mine;
      (* Taking the mutex orders the broadcast after any waiter's
         decision to block: a waiter re-checks the sense under the
         mutex, so it either sees the flip or is already in
         [Condition.wait] when the broadcast lands. *)
      Mutex.lock t.mutex;
      Condition.broadcast t.cond;
      Mutex.unlock t.mutex
    end
    else begin
      let spins = ref 0 in
      while Atomic.get t.sense <> mine && !spins < spin_budget do
        Domain.cpu_relax ();
        incr spins
      done;
      if Atomic.get t.sense <> mine then begin
        Mutex.lock t.mutex;
        while Atomic.get t.sense <> mine do
          Condition.wait t.cond t.mutex
        done;
        Mutex.unlock t.mutex
      end
      (* A waiter stuck here across a whole next phase is impossible:
         it has not left this [await], so the next phase is missing a
         party and cannot release — at most one flip can be pending. *)
    end
  end

let parties t = t.parties
