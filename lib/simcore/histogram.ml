type t = {
  bucket_width : int option;
  buckets : (int, int ref) Hashtbl.t;
  mutable count : int;
  mutable sum : float;
  mutable min_v : int;
  mutable max_v : int;
}

let create ?bucket_width () =
  {
    bucket_width;
    buckets = Hashtbl.create 16;
    count = 0;
    sum = 0.;
    min_v = Stdlib.max_int;
    max_v = Stdlib.min_int;
  }

let observe t x =
  t.count <- t.count + 1;
  t.sum <- t.sum +. float_of_int x;
  if x < t.min_v then t.min_v <- x;
  if x > t.max_v then t.max_v <- x;
  match t.bucket_width with
  | None -> ()
  | Some w -> (
      let idx = if x >= 0 then x / w else ((x + 1) / w) - 1 in
      match Hashtbl.find_opt t.buckets idx with
      | Some r -> incr r
      | None -> Hashtbl.add t.buckets idx (ref 1))

let count t = t.count

let min t = if t.count = 0 then None else Some t.min_v
let max t = if t.count = 0 then None else Some t.max_v
let mean t = if t.count = 0 then None else Some (t.sum /. float_of_int t.count)

let quantile t q =
  if q < 0. || q > 1. then invalid_arg "Histogram.quantile: q outside [0, 1]";
  if t.count = 0 then None
  else
    match t.bucket_width with
    | None ->
        invalid_arg
          "Histogram.quantile: histogram was created without bucket_width"
    | Some w ->
        (* Each bucket's samples are modelled as sitting at evenly spaced
           midpoints inside the bucket; the q-th quantile interpolates to
           the rank [q * count] under that model, clamped into the
           observed [min, max] so extreme quantiles of small sample sets
           return real sample values. *)
        let rank = q *. float_of_int t.count in
        let sorted =
          Hashtbl.fold (fun idx r acc -> (idx, !r) :: acc) t.buckets []
          |> List.sort (fun (a, _) (b, _) -> Int.compare a b)
        in
        let rec go cum = function
          | [] -> float_of_int t.max_v
          | (idx, c) :: rest ->
              if float_of_int (cum + c) >= rank then
                let lo = float_of_int (idx * w) in
                let pos =
                  (rank -. float_of_int cum -. 0.5) /. float_of_int c
                in
                let pos = Float.max 0. (Float.min 1. pos) in
                lo +. (float_of_int w *. pos)
              else go (cum + c) rest
        in
        let v = go 0 sorted in
        let v = Float.max v (float_of_int t.min_v) in
        let v = Float.min v (float_of_int t.max_v) in
        Some v

let merge_into ~into src =
  if src.count > 0 then begin
    into.count <- into.count + src.count;
    into.sum <- into.sum +. src.sum;
    if src.min_v < into.min_v then into.min_v <- src.min_v;
    if src.max_v > into.max_v then into.max_v <- src.max_v;
    (match (into.bucket_width, src.bucket_width) with
    | Some a, Some b when a <> b ->
        invalid_arg "Histogram.merge_into: bucket widths differ"
    | _ -> ());
    Hashtbl.iter
      (fun idx r ->
        match Hashtbl.find_opt into.buckets idx with
        | Some dst -> dst := !dst + !r
        | None -> Hashtbl.add into.buckets idx (ref !r))
      src.buckets
  end

let buckets t =
  Hashtbl.fold (fun idx r acc -> (idx, !r) :: acc) t.buckets []
  |> List.sort (fun (a, _) (b, _) -> Int.compare a b)

let pp ppf t =
  match (min t, max t, mean t) with
  | Some mn, Some mx, Some mu ->
      Format.fprintf ppf "n=%d min=%d max=%d mean=%.2f" t.count mn mx mu
  | _ -> Format.fprintf ppf "(empty)"
