(** Identity of the simulation domain driving the calling OCaml domain.

    The parallel engine pins each spawned domain to a shard index before
    its worker loop starts; sharded services ({!Stats}) use the index to
    pick their private slot. Outside a parallel run everything executes
    on domain 0, the default. *)

val current : unit -> int
(** Shard index of the calling domain (0 unless {!set} was called). *)

val set : int -> unit
(** Pins the calling domain's shard index (domain-local storage). *)
