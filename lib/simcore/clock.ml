type t = { mutable now : Time.t; mutable busy : Time.t }

let create () = { now = Time.zero; busy = Time.zero }
let now c = c.now

let advance_by c d =
  assert (d >= 0);
  c.now <- c.now + d;
  c.busy <- c.busy + d

let advance_to c t = if t > c.now then c.now <- t
let busy_time c = c.busy
