(** A deterministic priority queue of timestamped events.

    Events with equal timestamps pop in insertion order (FIFO tie-break),
    which makes whole-machine simulations reproducible run to run. *)

type 'a t

val create : unit -> 'a t

val add : 'a t -> time:Time.t -> 'a -> unit
(** [add q ~time ev] schedules [ev] at [time]. O(log n). *)

val pop : 'a t -> (Time.t * 'a) option
(** Removes and returns the earliest event, or [None] if empty. *)

val peek_time : 'a t -> Time.t option
(** Timestamp of the earliest event without removing it. *)

val iter : (Time.t -> 'a -> unit) -> 'a t -> unit
(** Visits every queued event in unspecified (heap) order, without
    removing anything. For inspection passes only. *)

val size : 'a t -> int

val is_empty : 'a t -> bool

val clear : 'a t -> unit
