(** A deterministic priority queue of timestamped events.

    Events with equal timestamps pop in insertion order (FIFO tie-break),
    which makes whole-machine simulations reproducible run to run. *)

type 'a t

val create : unit -> 'a t

val add : 'a t -> time:Time.t -> 'a -> unit
(** [add q ~time ev] schedules [ev] at [time]. O(log n). *)

val pop : 'a t -> (Time.t * 'a) option
(** Removes and returns the earliest event, or [None] if empty. *)

val set_tie_break : 'a t -> ('a array -> int) option -> unit
(** [set_tie_break q (Some choose)] lets [choose] pick among
    same-timestamp events on [pop]: when two or more events share the
    minimal time, [choose candidates] receives their values ordered by
    insertion sequence and returns the index to pop. Returning [0] is
    the FIFO default; out-of-range picks fall back to 0. Callers can
    inspect the candidate values to rule out permutations that are not
    genuine concurrency (see {!Machine.Node.set_inbox_tie_break}).
    [None] (the initial state) restores plain FIFO. Used by the
    schedule explorer to perturb orderings the simulation treats as
    concurrent. *)

val peek_time : 'a t -> Time.t option
(** Timestamp of the earliest event without removing it. *)

val iter : (Time.t -> 'a -> unit) -> 'a t -> unit
(** Visits every queued event in unspecified (heap) order, without
    removing anything. For inspection passes only. *)

val size : 'a t -> int

val is_empty : 'a t -> bool

val clear : 'a t -> unit
