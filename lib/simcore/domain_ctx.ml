(* Which simulation domain (shard) the calling OCaml domain is driving.
   Index 0 is the coordinating domain; a sequential run never calls [set]
   and always reads 0. *)

let key = Domain.DLS.new_key (fun () -> 0)
let current () = Domain.DLS.get key
let set i = Domain.DLS.set key i
