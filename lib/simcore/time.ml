type t = int

let zero = 0
let of_ns ns = ns
let of_us us = int_of_float (Float.round (us *. 1_000.))
let to_us t = float_of_int t /. 1_000.
let to_ms t = float_of_int t /. 1_000_000.
let add = ( + )
let max = Stdlib.max
let compare = Int.compare

let pp ppf t =
  let f = float_of_int t in
  if t < 10_000 then Format.fprintf ppf "%dns" t
  else if t < 10_000_000 then Format.fprintf ppf "%.2fus" (f /. 1e3)
  else if t < 10_000_000_000 then Format.fprintf ppf "%.2fms" (f /. 1e6)
  else Format.fprintf ppf "%.3fs" (f /. 1e9)
