let flag = ref false
let set_enabled b = flag := b
let enabled () = !flag

let emit fmt =
  if !flag then Format.eprintf ("[trace] " ^^ fmt ^^ "@.")
  else Format.ifprintf Format.err_formatter fmt

let with_enabled b f =
  let saved = !flag in
  flag := b;
  Fun.protect ~finally:(fun () -> flag := saved) f
