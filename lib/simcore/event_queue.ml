(* Binary min-heap over (time, seq) keys. [seq] is a monotonically
   increasing insertion counter, so ties in [time] break FIFO. *)

type 'a entry = { time : Time.t; seq : int; value : 'a }

type 'a t = {
  mutable heap : 'a entry array; (* [0, len) is a valid heap *)
  mutable len : int;
  mutable next_seq : int;
}

let create () = { heap = [||]; len = 0; next_seq = 0 }

let less a b = a.time < b.time || (a.time = b.time && a.seq < b.seq)

let grow q =
  let cap = Array.length q.heap in
  let cap' = if cap = 0 then 16 else cap * 2 in
  (* The dummy cell is never read: sift functions only touch [0, len). *)
  let dummy = q.heap.(0) in
  let heap' = Array.make cap' dummy in
  Array.blit q.heap 0 heap' 0 q.len;
  q.heap <- heap'

let rec sift_up heap i =
  if i > 0 then begin
    let parent = (i - 1) / 2 in
    if less heap.(i) heap.(parent) then begin
      let tmp = heap.(i) in
      heap.(i) <- heap.(parent);
      heap.(parent) <- tmp;
      sift_up heap parent
    end
  end

let rec sift_down heap len i =
  let l = (2 * i) + 1 and r = (2 * i) + 2 in
  let smallest = if l < len && less heap.(l) heap.(i) then l else i in
  let smallest = if r < len && less heap.(r) heap.(smallest) then r else smallest in
  if smallest <> i then begin
    let tmp = heap.(i) in
    heap.(i) <- heap.(smallest);
    heap.(smallest) <- tmp;
    sift_down heap len smallest
  end

let add q ~time value =
  let entry = { time; seq = q.next_seq; value } in
  q.next_seq <- q.next_seq + 1;
  if q.len = 0 && Array.length q.heap = 0 then q.heap <- Array.make 16 entry;
  if q.len = Array.length q.heap then grow q;
  q.heap.(q.len) <- entry;
  q.len <- q.len + 1;
  sift_up q.heap (q.len - 1)

let pop q =
  if q.len = 0 then None
  else begin
    let top = q.heap.(0) in
    q.len <- q.len - 1;
    if q.len > 0 then begin
      q.heap.(0) <- q.heap.(q.len);
      sift_down q.heap q.len 0
    end;
    Some (top.time, top.value)
  end

let iter f q =
  for i = 0 to q.len - 1 do
    let e = q.heap.(i) in
    f e.time e.value
  done

let peek_time q = if q.len = 0 then None else Some q.heap.(0).time
let size q = q.len
let is_empty q = q.len = 0
let clear q = q.len <- 0
