(* Binary min-heap over (time, seq) keys. [seq] is a monotonically
   increasing insertion counter, so ties in [time] break FIFO.

   Slots are [option]s so a dequeued entry is dropped the moment it
   leaves the heap: the queue holds closures and whole messages, and
   retaining the popped entry at [heap.(len)] until it happened to be
   overwritten kept arbitrarily large object graphs alive. *)

type 'a entry = { time : Time.t; seq : int; value : 'a }

type 'a t = {
  mutable heap : 'a entry option array; (* [0, len) is a valid heap *)
  mutable len : int;
  mutable next_seq : int;
  mutable tie_break : ('a array -> int) option;
}

let create () = { heap = [||]; len = 0; next_seq = 0; tie_break = None }

let set_tie_break q choose = q.tie_break <- choose

let get heap i =
  match heap.(i) with Some e -> e | None -> assert false (* i < len *)

let less a b = a.time < b.time || (a.time = b.time && a.seq < b.seq)

let grow q =
  let cap = Array.length q.heap in
  let cap' = if cap = 0 then 16 else cap * 2 in
  let heap' = Array.make cap' None in
  Array.blit q.heap 0 heap' 0 q.len;
  q.heap <- heap'

let rec sift_up heap i =
  if i > 0 then begin
    let parent = (i - 1) / 2 in
    if less (get heap i) (get heap parent) then begin
      let tmp = heap.(i) in
      heap.(i) <- heap.(parent);
      heap.(parent) <- tmp;
      sift_up heap parent
    end
  end

let rec sift_down heap len i =
  let l = (2 * i) + 1 and r = (2 * i) + 2 in
  let smallest = if l < len && less (get heap l) (get heap i) then l else i in
  let smallest =
    if r < len && less (get heap r) (get heap smallest) then r else smallest
  in
  if smallest <> i then begin
    let tmp = heap.(i) in
    heap.(i) <- heap.(smallest);
    heap.(smallest) <- tmp;
    sift_down heap len smallest
  end

let add q ~time value =
  let entry = { time; seq = q.next_seq; value } in
  q.next_seq <- q.next_seq + 1;
  if q.len = Array.length q.heap then grow q;
  q.heap.(q.len) <- Some entry;
  q.len <- q.len + 1;
  sift_up q.heap (q.len - 1)

(* Remove the entry at heap index [i], nulling the vacated slot. *)
let remove_at q i =
  let e = get q.heap i in
  q.len <- q.len - 1;
  if i < q.len then begin
    q.heap.(i) <- q.heap.(q.len);
    q.heap.(q.len) <- None;
    sift_down q.heap q.len i;
    sift_up q.heap i
  end
  else q.heap.(i) <- None;
  e

(* All entries sharing the minimal timestamp form a connected subtree
   rooted at index 0 (an equal-time entry's ancestors can only carry the
   same minimal time), so a DFS that stops at later times finds them
   without scanning the whole heap. *)
let min_time_indices q tmin =
  let acc = ref [] in
  let rec visit i =
    if i < q.len && (get q.heap i).time = tmin then begin
      acc := i :: !acc;
      visit ((2 * i) + 1);
      visit ((2 * i) + 2)
    end
  in
  visit 0;
  !acc

let pop q =
  if q.len = 0 then None
  else
    let chosen =
      match q.tie_break with
      | None -> 0
      | Some choose -> (
          let tmin = (get q.heap 0).time in
          match min_time_indices q tmin with
          | [] | [ _ ] -> 0
          | candidates ->
              (* Deterministic candidate order: by insertion sequence, so
                 choice 0 is the FIFO default and a replayed choice k
                 lands on the same event regardless of heap layout. *)
              let by_seq =
                List.sort
                  (fun a b ->
                    Int.compare (get q.heap a).seq (get q.heap b).seq)
                  candidates
              in
              let values =
                Array.of_list
                  (List.map (fun i -> (get q.heap i).value) by_seq)
              in
              let n = Array.length values in
              let k = choose values in
              let k = if k < 0 || k >= n then 0 else k in
              List.nth by_seq k)
    in
    let e = remove_at q chosen in
    Some (e.time, e.value)

let iter f q =
  for i = 0 to q.len - 1 do
    let e = get q.heap i in
    f e.time e.value
  done

let peek_time q = if q.len = 0 then None else Some (get q.heap 0).time
let size q = q.len
let is_empty q = q.len = 0

let clear q =
  (* Drop the whole array: resetting [len] alone kept every queued entry
     reachable until the slots were overwritten. *)
  q.heap <- [||];
  q.len <- 0
