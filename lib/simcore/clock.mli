(** A per-node virtual clock. Monotonic: it only moves forward. *)

type t

val create : unit -> t

val now : t -> Time.t

val advance_by : t -> Time.t -> unit
(** [advance_by c d] moves the clock forward by [d] (must be >= 0). *)

val advance_to : t -> Time.t -> unit
(** [advance_to c t] sets the clock to [max (now c) t]. *)

val busy_time : t -> Time.t
(** Total time accumulated through {!advance_by} (i.e. time spent
    executing, as opposed to idling forward via {!advance_to}). *)
