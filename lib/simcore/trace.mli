(** Lightweight, optional event tracing.

    Disabled by default; when disabled the formatting arguments are not
    evaluated, so leaving trace calls in hot paths costs one branch. *)

val set_enabled : bool -> unit

val enabled : unit -> bool

val emit : ('a, Format.formatter, unit, unit) format4 -> 'a
(** Writes one trace line to stderr when tracing is enabled. *)

val with_enabled : bool -> (unit -> 'a) -> 'a
(** Runs the thunk with tracing temporarily toggled. *)
