(** Deterministic pseudo-random numbers (splitmix64).

    The simulator never uses the global [Random] state: every stochastic
    component owns an [Rng.t] seeded from the run configuration, so a run
    is a pure function of its seed. *)

type t

val create : seed:int -> t

val split : t -> t
(** Derives an independent stream, advancing the parent (e.g. carving
    streams off sequentially at boot). *)

val derive : t -> index:int -> t
(** [derive t ~index] is the [index]-th child stream of [t]'s current
    position, computed {e without} advancing [t]: deriving children in
    any order — or from different domains — yields identical streams.
    This is how components give each owner (one per node, shard,
    service) its own stream instead of sharing a default stream whose
    draw interleaving would depend on execution order. *)

val int : t -> int -> int
(** [int t bound] is uniform in [0, bound). [bound] must be positive. *)

val float : t -> float -> float
(** [float t bound] is uniform in [0, bound). *)

val bool : t -> bool

val state : t -> int64
(** The stream's current position. A splitmix64 stream is one 64-bit
    word of state, so checkpointing a stochastic component means saving
    this word; {!set_state} rewinds the stream to it and the subsequent
    draws replay exactly. *)

val set_state : t -> int64 -> unit
