(** Named counters collected during a simulation run.

    A [Stats.t] is attached to a machine; runtime layers bump counters
    by name. Counter creation is cached, so the hot path is one
    hashtable lookup amortised to a {!bump} on the cached {!cell}.

    Cells are sharded per simulation domain: {!bump} writes a private
    padded slot indexed by {!Domain_ctx.current}, and {!read} sums the
    slots. Bumping is therefore safe from any domain of a parallel run
    with no synchronisation, and the merged totals are independent of
    the domain count (sums commute) — counters never perturb the
    engine's bit-identical replay guarantee. Call {!shard} before
    spawning domains so every cell has a slot per domain. *)

type t
type cell

val create : unit -> t

val counter : t -> string -> cell
(** The counter cell registered under the given name (created at zero on
    first use). Callers may keep the cell for repeated increments. *)

val bump : cell -> unit
(** Adds 1 to the calling domain's slot. *)

val bump_n : cell -> int -> unit

val read : cell -> int
(** Sum over all domain slots. Only exact once domains have joined (or
    between barrier phases); mid-window cross-domain reads may miss
    in-flight increments. *)

val shard : t -> int -> unit
(** [shard t n] widens every cell (current and future) to [n] domain
    slots. Idempotent; never shrinks. Must be called before domains
    that will bump are spawned. *)

val incr : t -> string -> unit

val add : t -> string -> int -> unit

val get : t -> string -> int
(** Current value; 0 if the counter was never touched. *)

val names : t -> string list
(** All registered counter names, sorted. *)

val to_alist : t -> (string * int) list
(** Sorted (name, value) pairs. *)

val reset : t -> unit
(** Zeroes every counter (registrations are kept). *)

val pp : Format.formatter -> t -> unit
