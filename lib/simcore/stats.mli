(** Named counters and summaries collected during a simulation run.

    A [Stats.t] is attached to a machine; runtime layers bump counters by
    name. Counter creation is cached, so the hot path is one hashtable
    lookup amortised to a ref increment via {!counter}. *)

type t

val create : unit -> t

val counter : t -> string -> int ref
(** The counter cell registered under the given name (created at zero on
    first use). Callers may keep the ref for repeated increments. *)

val incr : t -> string -> unit

val add : t -> string -> int -> unit

val get : t -> string -> int
(** Current value; 0 if the counter was never touched. *)

val names : t -> string list
(** All registered counter names, sorted. *)

val to_alist : t -> (string * int) list
(** Sorted (name, value) pairs. *)

val reset : t -> unit
(** Zeroes every counter (registrations are kept). *)

val pp : Format.formatter -> t -> unit
