(** A simple online summary of a stream of integer samples
    (count / min / max / mean), with optional fixed-width buckets. *)

type t

val create : ?bucket_width:int -> unit -> t
(** [bucket_width] enables a bucketed frequency view (bucket [i] counts
    samples in [[i*w, (i+1)*w)]). Without it only the scalar summary is
    kept. *)

val observe : t -> int -> unit

val count : t -> int

val min : t -> int option
(** [None] when no sample was observed. [min], [max], and [mean] agree
    on this: the empty histogram has no summary, rather than a raise
    from two of them and a silent [0.] from the third. *)

val max : t -> int option

val mean : t -> float option

val quantile : t -> float -> float option
(** [quantile t q] estimates the [q]-th quantile ([0. <= q <= 1.]) by
    linear interpolation inside the bucket holding rank [q * count],
    treating a bucket's samples as evenly spaced midpoints, and clamps
    the estimate into the observed [[min, max]]. [None] when no sample
    was observed (matching {!min}/{!max}/{!mean}). Raises
    [Invalid_argument] if [q] is outside [[0, 1]] or the histogram was
    created without [bucket_width] (there is nothing to interpolate
    over). p50/p99/p999 are [quantile t 0.5] / [0.99] / [0.999]. *)

val merge_into : into:t -> t -> unit
(** Folds [src]'s samples into [into]: counts, sums, extrema and bucket
    frequencies all add, so merging per-domain histograms at quiescence
    yields the same summary for any domain count (sums commute). Raises
    [Invalid_argument] when both have buckets of different widths. *)

val buckets : t -> (int * int) list
(** Sorted (bucket_index, count) pairs; empty without [bucket_width]. *)

val pp : Format.formatter -> t -> unit
