(** A simple online summary of a stream of integer samples
    (count / min / max / mean), with optional fixed-width buckets. *)

type t

val create : ?bucket_width:int -> unit -> t
(** [bucket_width] enables a bucketed frequency view (bucket [i] counts
    samples in [[i*w, (i+1)*w)]). Without it only the scalar summary is
    kept. *)

val observe : t -> int -> unit

val count : t -> int

val min : t -> int option
(** [None] when no sample was observed. [min], [max], and [mean] agree
    on this: the empty histogram has no summary, rather than a raise
    from two of them and a silent [0.] from the third. *)

val max : t -> int option

val mean : t -> float option

val buckets : t -> (int * int) list
(** Sorted (bucket_index, count) pairs; empty without [bucket_width]. *)

val pp : Format.formatter -> t -> unit
