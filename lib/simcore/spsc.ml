(* Unbounded single-producer single-consumer queue: an atomically linked
   list with a dummy head (Michael-Scott reduced to one producer and one
   consumer, so neither end needs a retry loop). The producer appends to
   [tail]; the consumer advances [head]. The only shared location either
   side writes is a [next] pointer / the tail cursor, both via [Atomic],
   which gives the necessary happens-before edge for the payload. *)

type 'a node = { value : 'a option; next : 'a node option Atomic.t }

type 'a t = {
  mutable head : 'a node;  (* consumer-owned cursor (dummy node) *)
  tail : 'a node Atomic.t;  (* producer-owned cursor *)
}

let make_node value = { value; next = Atomic.make None }

let create () =
  let dummy = make_node None in
  { head = dummy; tail = Atomic.make dummy }

let push t v =
  let n = make_node (Some v) in
  let prev = Atomic.get t.tail in
  (* Order matters: link the node before publishing it via [next] so the
     consumer never observes a reachable node with a stale tail. *)
  Atomic.set t.tail n;
  Atomic.set prev.next (Some n)

let pop t =
  match Atomic.get t.head.next with
  | None -> None
  | Some n ->
      t.head <- n;
      n.value

let rec drain_into t acc =
  match pop t with None -> acc | Some v -> drain_into t (v :: acc)

let drain t =
  (* Newest-first accumulation, reversed once: FIFO order out. *)
  List.rev (drain_into t [])

let is_empty t = Atomic.get t.head.next = None
