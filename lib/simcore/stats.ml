type t = (string, int ref) Hashtbl.t

let create () = Hashtbl.create 64

let counter t name =
  match Hashtbl.find_opt t name with
  | Some r -> r
  | None ->
      let r = ref 0 in
      Hashtbl.add t name r;
      r

let incr t name = incr (counter t name)
let add t name n = counter t name := !(counter t name) + n
let get t name = match Hashtbl.find_opt t name with Some r -> !r | None -> 0

let to_alist t =
  Hashtbl.fold (fun name r acc -> (name, !r) :: acc) t []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

let names t = List.map fst (to_alist t)
let reset t = Hashtbl.iter (fun _ r -> r := 0) t

let pp ppf t =
  let pairs = to_alist t in
  Format.fprintf ppf "@[<v>";
  List.iter (fun (name, v) -> Format.fprintf ppf "%-36s %d@," name v) pairs;
  Format.fprintf ppf "@]"
