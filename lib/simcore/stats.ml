(* Counter cells are sharded per simulation domain: each domain bumps a
   private padded slot (no atomics, no contention, no false sharing) and
   readers sum the slots. Summation is order-insensitive, so the merged
   value at quiescence is identical for any domain count — part of the
   parallel engine's bit-identical replay guarantee. *)

(* 8 boxed-int words = 64 bytes: one cache line per domain slot. *)
let stride = 8

type cell = { mutable slots : int array }

type t = {
  tbl : (string, cell) Hashtbl.t;
  mutable shards : int;
  lock : Mutex.t;
}

let create () = { tbl = Hashtbl.create 64; shards = 1; lock = Mutex.create () }

let bump c =
  let i = Domain_ctx.current () * stride in
  c.slots.(i) <- c.slots.(i) + 1

let bump_n c n =
  let i = Domain_ctx.current () * stride in
  c.slots.(i) <- c.slots.(i) + n

let read c =
  let total = ref 0 in
  let n = Array.length c.slots / stride in
  for d = 0 to n - 1 do
    total := !total + c.slots.(d * stride)
  done;
  !total

(* The name table is the only structure touched by more than one domain
   (dynamic counter creation mid-run); every access goes through the
   lock. Cells themselves are lock-free. *)
let counter t name =
  Mutex.lock t.lock;
  let c =
    match Hashtbl.find_opt t.tbl name with
    | Some c -> c
    | None ->
        let c = { slots = Array.make (t.shards * stride) 0 } in
        Hashtbl.add t.tbl name c;
        c
  in
  Mutex.unlock t.lock;
  c

let shard t n =
  if n < 1 then invalid_arg "Stats.shard: shard count must be >= 1";
  Mutex.lock t.lock;
  if n > t.shards then begin
    t.shards <- n;
    Hashtbl.iter
      (fun _ c ->
        let bigger = Array.make (n * stride) 0 in
        Array.blit c.slots 0 bigger 0 (Array.length c.slots);
        c.slots <- bigger)
      t.tbl
  end;
  Mutex.unlock t.lock

let incr t name = bump (counter t name)
let add t name n = bump_n (counter t name) n

let get t name =
  Mutex.lock t.lock;
  let c = Hashtbl.find_opt t.tbl name in
  Mutex.unlock t.lock;
  match c with Some c -> read c | None -> 0

let to_alist t =
  Mutex.lock t.lock;
  let pairs = Hashtbl.fold (fun name c acc -> (name, read c) :: acc) t.tbl [] in
  Mutex.unlock t.lock;
  List.sort (fun (a, _) (b, _) -> String.compare a b) pairs

let names t = List.map fst (to_alist t)

let reset t =
  Mutex.lock t.lock;
  Hashtbl.iter (fun _ c -> Array.fill c.slots 0 (Array.length c.slots) 0) t.tbl;
  Mutex.unlock t.lock

let pp ppf t =
  let pairs = to_alist t in
  Format.fprintf ppf "@[<v>";
  List.iter (fun (name, v) -> Format.fprintf ppf "%-36s %d@," name v) pairs;
  Format.fprintf ppf "@]"
