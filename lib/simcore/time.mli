(** Virtual time, measured in integer nanoseconds.

    All simulator clocks and event timestamps use this representation.
    63-bit integers give ~292 years of simulated time, far beyond any
    experiment in this repository. *)

type t = int

val zero : t

val of_ns : int -> t

val of_us : float -> t
(** [of_us x] converts microseconds to nanoseconds, rounding to nearest. *)

val to_us : t -> float

val to_ms : t -> float

val add : t -> t -> t

val max : t -> t -> t

val compare : t -> t -> int

val pp : Format.formatter -> t -> unit
(** Prints with an adaptive unit (ns / us / ms / s). *)
