type t = { mutable state : int64 }

let golden_gamma = 0x9E3779B97F4A7C15L

let mix z =
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let next t =
  t.state <- Int64.add t.state golden_gamma;
  mix t.state

let create ~seed = { state = mix (Int64.of_int seed) }
let split t = { state = mix (next t) }

(* Pure derivation: child [index] of a stream, computed from the parent's
   current position WITHOUT advancing it. Distinct indices land the
   children in unrelated splitmix64 positions (double mix). Used to give
   every owner (node, shard, service) its own stream up front instead of
   interleaving draws on a shared default stream — interleaved draws
   would depend on execution order, which a parallel run does not fix. *)
let derive t ~index =
  if index < 0 then invalid_arg "Rng.derive: index must be >= 0";
  let salt = Int64.mul (Int64.of_int (index + 1)) golden_gamma in
  { state = mix (mix (Int64.logxor t.state salt)) }

(* Uniform in [0, bound) by rejection sampling over the 62-bit draw
   space ([0, max_int]): plain [r mod bound] over-weights small residues
   whenever bound does not divide 2^62 — imperceptibly for small bounds,
   but by a factor of up to 2 for bounds near max_int. Reject the
   final partial copy of [0, bound) and redraw; at most one extra draw
   in expectation, and none at all for power-of-two bounds. *)
let int t bound =
  assert (bound > 0);
  (* Values above [cut] belong to the incomplete last copy of the range. *)
  let rem = ((max_int mod bound) + 1) mod bound in
  let cut = max_int - rem in
  let rec draw () =
    let r = Int64.to_int (Int64.shift_right_logical (next t) 2) in
    if r <= cut then r mod bound else draw ()
  in
  draw ()

let float t bound =
  let r = Int64.to_float (Int64.shift_right_logical (next t) 11) in
  r /. 9007199254740992.0 *. bound

let bool t = Int64.logand (next t) 1L = 1L

let state t = t.state
let set_state t s = t.state <- s
