(** Distributed garbage collection for [(node, pointer)] mail addresses.

    The scheme is weighted reference counting with indirection (in the
    Bevan / Watson–Watson tradition), chosen because it needs {e no}
    synchronous round-trips on the mutator path — the property that
    matters on a stock multicomputer where every message is software
    overhead:

    - The {e owner} of an object (its canonical node) keeps a {e scion}:
      the net weight it has handed out for the object's address.
    - Every other node that holds the address keeps a {e stub} entry
      with part of that weight. Copying the address into an outgoing
      message, state box or constructor-argument list {e splits} the
      local weight — no communication. Dropping the last local use
      refunds the stub's weight to the owner in a {e batched decrement}
      message that rides the same reliable-delivery layer as everything
      else, so a lossy fabric cannot unbalance the counts.
    - When a weight of 1 cannot be split, the export becomes an
      {e indirection} entry backed by this node ([st_ind_out]); the
      importer either consolidates it against weight it already holds or
      records the backer ([st_ind_from]) and releases it on its own
      reclaim. Again no synchronous refill round-trip.
    - A node exporting an address it holds no weight for (an immigrant
      shipping its own address home-ward, a boot-time reference) mints
      owner weight {e asynchronously} with a [G_debit]: the manifest
      carries real weight immediately and the owner's scion catches up
      when the debit lands. A decrement can beat its debit, driving the
      scion transiently negative — negative is not zero, so reclaim
      still waits for balance.

    The invariant, at quiescence: {e scion(o) = sum of stub weights +
    pending decrements}, and every indirection out is matched by an
    indirection from or a pending indirection release ({!audit} checks
    both).

    Reclaim is driven by per-node sweeps ({!Services.Local_gc.sweep}
    with this module's hooks): an object is freed when its scion is zero
    and no live local object references it. A freed slot is quarantined
    for one sweep round and then pushed back into the node's allocation
    pool, where both local creation and the chunk-stock replenishment
    path ([Sched.alloc_slot]) draw from it — collection {e is} the stock
    refill path. An object that migrated away is recalled home hop by
    hop ([G_recall] / {!Migrate.evict}) and, once freed at home, its
    forwarding stubs are dismantled with epoch-guarded [G_unstub]s and
    its sequence/gate state scrubbed ({!Migrate.forget}) so the slot can
    be reused safely.

    Limitation (documented, by design): reference {e counting} cannot
    collect cross-node cycles of dead objects — a pair of objects on
    different nodes holding each other's addresses keeps both scions
    positive forever. Acyclic garbage, which dominates actor programs,
    is collected; cycle collection would need a complementary global
    trace. *)

module Engine = Machine.Engine
module Kernel = Core.Kernel
module Value = Core.Value
module Sched = Core.Sched
module Vft = Core.Vft
module Message = Core.Message
module Cost_model = Machine.Cost_model
module Local_gc = Services.Local_gc

type Machine.Am.payload +=
  | G_dec of {
      decs : (int * int) list;  (** (owner slot, weight) refunds *)
      ind_decs : ((int * int) * int) list;
          (** (canonical key, count) indirection releases for a backer *)
    }
  | G_debit of { slot : int; weight : int }
      (** mint owner weight for an export the sender held no weight for *)
  | G_recall of { canon : Value.addr; hop : int }
      (** owner asks the current host to push the object home *)
  | G_unstub of { canon : Value.addr; epoch : int }
      (** the object is freed: drop your forwarding stub (epoch-guarded) *)

type stub = {
  mutable st_weight : int;
  mutable st_ind_out : int;
      (** indirection entries this node backs for other holders *)
  st_ind_from : (int, int) Hashtbl.t;
      (** backer node -> indirections this node's claim rests on *)
  mutable st_marked : bool;  (** reached by the current sweep's trace *)
}

type batch = {
  mutable b_decs : (int * int) list;
  mutable b_inds : ((int * int) * int) list;
}

type dstate = {
  d_scion : (int, int ref) Hashtbl.t;  (** local slot -> net weight out *)
  d_stubs : (int * int, stub) Hashtbl.t;  (** canonical key -> claim *)
  d_out : (int, batch) Hashtbl.t;  (** destination -> pending decrements *)
  d_localref : (int, unit) Hashtbl.t;
      (** native slots some live local object referenced, per sweep *)
  mutable d_quarantine : int list;  (** slots freed one sweep ago *)
  mutable d_fresh : int list;  (** slots freed this sweep *)
}

type t = {
  sys : Core.System.t;
  machine : Engine.t;
  migrate : Migrate.t option;
  grant : int;
  interval_ns : int;
  h_dec : int;
  h_debit : int;
  h_recall : int;
  h_unstub : int;
  nodes : dstate array;
  c_sweeps : Simcore.Stats.cell;
  c_sweeps_skipped : Simcore.Stats.cell;
  c_reclaimed : Simcore.Stats.cell;
  c_reclaimed_node : Simcore.Stats.cell array;
  c_stubs_freed : Simcore.Stats.cell;
  c_stubs_freed_node : Simcore.Stats.cell array;
  c_restocked : Simcore.Stats.cell;
  c_restocked_node : Simcore.Stats.cell array;
  c_dec_msgs : Simcore.Stats.cell;
  c_dec_piggybacked : Simcore.Stats.cell;
  c_dec_entries : Simcore.Stats.cell;
  c_dec_entries_node : Simcore.Stats.cell array;
  c_grants : Simcore.Stats.cell;
  c_splits : Simcore.Stats.cell;
  c_indirections : Simcore.Stats.cell;
  c_debits : Simcore.Stats.cell;
  c_conjures : Simcore.Stats.cell;
  c_recalls : Simcore.Stats.cell;
  c_unstubs : Simcore.Stats.cell;
}

let key (a : Value.addr) = (a.Value.node, a.Value.slot)

let scion_cell d slot =
  match Hashtbl.find_opt d.d_scion slot with
  | Some c -> c
  | None ->
      let c = ref 0 in
      Hashtbl.add d.d_scion slot c;
      c

let stub_for d k =
  match Hashtbl.find_opt d.d_stubs k with
  | Some s -> s
  | None ->
      let s =
        {
          st_weight = 0;
          st_ind_out = 0;
          st_ind_from = Hashtbl.create 2;
          st_marked = false;
        }
      in
      Hashtbl.add d.d_stubs k s;
      s

let batch_for d dst =
  match Hashtbl.find_opt d.d_out dst with
  | Some b -> b
  | None ->
      let b = { b_decs = []; b_inds = [] } in
      Hashtbl.add d.d_out dst b;
      b

let out_dec d dst slot w =
  let b = batch_for d dst in
  b.b_decs <- (slot, w) :: b.b_decs

let out_ind d dst k c =
  let b = batch_for d dst in
  b.b_inds <- (k, c) :: b.b_inds

(* --- the export hook (Kernel.gc.gc_grant) ------------------------- *)

let collect_addrs values reply =
  let seen = Hashtbl.create 8 in
  let out = ref [] in
  let note (a : Value.addr) =
    let k = (a.Value.node, a.Value.slot) in
    if not (Hashtbl.mem seen k) then begin
      Hashtbl.add seen k ();
      out := a :: !out
    end
  in
  let rec walk (v : Value.t) =
    match v with
    | Value.Addr a -> note a
    | Value.List vs | Value.Tuple vs -> List.iter walk vs
    | Value.Unit | Value.Bool _ | Value.Int _ | Value.Float _ | Value.Str _ ->
        ()
  in
  List.iter walk values;
  Option.iter note reply;
  List.rev !out

(* One manifest entry per distinct address leaving this node's custody.
   The weight comes from wherever this node's claim lives: the scion if
   we are the owner, a split of the local stub otherwise, an indirection
   when the stub is too light to split, a debit when there is no claim
   at all. *)
let gc_grant t rt values reply =
  let my_id = Machine.Node.id rt.Kernel.node in
  let d = t.nodes.(my_id) in
  let c = Engine.cost t.machine in
  List.map
    (fun (a : Value.addr) ->
      Kernel.charge rt c.Cost_model.gc_dec_entry;
      if a.Value.node = my_id then begin
        let cell = scion_cell d a.Value.slot in
        cell := !cell + t.grant;
        Simcore.Stats.bump t.c_grants;
        { Message.gr_addr = a; gr_weight = t.grant; gr_backer = -1 }
      end
      else
        match Hashtbl.find_opt d.d_stubs (key a) with
        | Some st when st.st_weight >= 2 ->
            let half = st.st_weight / 2 in
            st.st_weight <- st.st_weight - half;
            Simcore.Stats.bump t.c_splits;
            { Message.gr_addr = a; gr_weight = half; gr_backer = -1 }
        | Some st ->
            st.st_ind_out <- st.st_ind_out + 1;
            Simcore.Stats.bump t.c_indirections;
            { Message.gr_addr = a; gr_weight = 0; gr_backer = my_id }
        | None ->
            (* No counted claim here — an immigrant exporting its own
               address, or a reference that predates attachment. Mint
               owner weight asynchronously; the entry carries real
               weight at once and the scion catches up when the debit
               lands (a decrement overtaking it merely drives the scion
               transiently negative, which blocks reclaim just as well). *)
            Simcore.Stats.bump t.c_debits;
            Engine.send_am t.machine ~src:rt.Kernel.node ~dst:a.Value.node
              ~handler:t.h_debit ~size_bytes:12
              (G_debit { slot = a.Value.slot; weight = t.grant });
            { Message.gr_addr = a; gr_weight = t.grant; gr_backer = -1 })
    (collect_addrs values reply)

(* --- the conjure pair (Kernel.gc.gc_conjure / gc_conjured) --------- *)

(* Remote creation: the creator claims [grant] weight for the address it
   conjured; the owner mints the matching scion credit while processing
   the creation request itself. Because mint and claim travel inside the
   (FIFO-ordered) creation message, no decrement for this incarnation
   can be applied before the mint — the asynchronous-debit variant left
   a window in which a sweep saw no scion entry and freed the newborn
   under its creator's live reference. *)
let gc_conjure t rt (a : Value.addr) =
  Kernel.charge rt (Engine.cost t.machine).Cost_model.gc_dec_entry;
  Simcore.Stats.bump t.c_conjures;
  { Message.gr_addr = a; gr_weight = t.grant; gr_backer = -1 }

let gc_conjured t rt slot =
  let d = t.nodes.(Machine.Node.id rt.Kernel.node) in
  let cell = scion_cell d slot in
  cell := !cell + t.grant

(* --- the import hook (Kernel.gc.gc_accept) ------------------------ *)

let gc_accept t rt refs =
  let my_id = Machine.Node.id rt.Kernel.node in
  let d = t.nodes.(my_id) in
  let c = Engine.cost t.machine in
  List.iter
    (fun { Message.gr_addr = a; gr_weight = w; gr_backer = b } ->
      Kernel.charge rt c.Cost_model.gc_dec_entry;
      if a.Value.node = my_id then begin
        (* The reference came home: local references carry no weight. *)
        let cell = scion_cell d a.Value.slot in
        cell := !cell - w;
        if w = 0 && b >= 0 && b <> my_id then out_ind d b (key a) 1
      end
      else begin
        let st = stub_for d (key a) in
        st.st_weight <- st.st_weight + w;
        if w = 0 && b >= 0 then
          if b = my_id then st.st_ind_out <- st.st_ind_out - 1
          else if st.st_weight > 0 then
            (* already hold real weight: release the indirection rather
               than track a redundant dependency *)
            out_ind d b (key a) 1
          else
            Hashtbl.replace st.st_ind_from b
              (1 + Option.value (Hashtbl.find_opt st.st_ind_from b) ~default:0)
      end)
    refs

(* --- decrement delivery ------------------------------------------- *)

let note_dec_entries t node n =
  Simcore.Stats.bump_n t.c_dec_entries n;
  Simcore.Stats.bump_n t.c_dec_entries_node.(node) n

(* Snapshot the pending table before sending: with aggregation live,
   send_am can flush a batch, which re-enters this module through the
   piggyback hook below — mutating [d_out] mid-[Hashtbl.iter] would be
   undefined. After the reset the hook just finds the table empty. *)
let flush t node rt d =
  let pending = Hashtbl.fold (fun dst b acc -> (dst, b) :: acc) d.d_out [] in
  Hashtbl.reset d.d_out;
  List.iter
    (fun (dst, b) ->
      if b.b_decs <> [] || b.b_inds <> [] then begin
        let n = List.length b.b_decs + List.length b.b_inds in
        Simcore.Stats.bump t.c_dec_msgs;
        note_dec_entries t node n;
        Engine.send_am t.machine ~src:rt.Kernel.node ~dst ~handler:t.h_dec
          ~size_bytes:(8 + (8 * n))
          (G_dec { decs = b.b_decs; ind_decs = b.b_inds })
      end)
    pending

(* Flush-time piggyback: a batch from [src] to [dst] is leaving anyway,
   so any decrements parked for that destination ride it — the refund
   traffic the paper worries about stops costing packets of its own. *)
let piggyback_riders t ~src ~dst =
  let d = t.nodes.(src) in
  match Hashtbl.find_opt d.d_out dst with
  | None -> []
  | Some b ->
      Hashtbl.remove d.d_out dst;
      if b.b_decs = [] && b.b_inds = [] then []
      else begin
        let n = List.length b.b_decs + List.length b.b_inds in
        Simcore.Stats.bump t.c_dec_msgs;
        Simcore.Stats.bump t.c_dec_piggybacked;
        note_dec_entries t src n;
        [
          {
            Machine.Am.handler = t.h_dec;
            src;
            size_bytes = 8 + (8 * n);
            payload = G_dec { decs = b.b_decs; ind_decs = b.b_inds };
          };
        ]
      end

let on_dec t node_id rt ~decs ~ind_decs =
  let d = t.nodes.(node_id) in
  let c = Engine.cost t.machine in
  List.iter
    (fun (slot, w) ->
      Kernel.charge rt c.Cost_model.gc_dec_entry;
      let cell = scion_cell d slot in
      cell := !cell - w)
    decs;
  List.iter
    (fun (k, cnt) ->
      Kernel.charge rt c.Cost_model.gc_dec_entry;
      match Hashtbl.find_opt d.d_stubs k with
      | Some st -> st.st_ind_out <- st.st_ind_out - cnt
      | None -> ())
    ind_decs

let on_debit t node_id ~slot ~weight =
  let d = t.nodes.(node_id) in
  let cell = scion_cell d slot in
  cell := !cell + weight

(* --- migrated-object reclamation ---------------------------------- *)

let on_recall t node_id rt ~canon ~hop =
  match t.migrate with
  | None -> ()
  | Some m -> (
      match Migrate.evict m ~node:node_id ~canon with
      | `Stub next ->
          if hop < 4 * Engine.node_count t.machine && next <> node_id then
            Engine.send_am t.machine ~src:rt.Kernel.node ~dst:next
              ~handler:t.h_recall ~size_bytes:16
              (G_recall { canon; hop = hop + 1 })
      | `Moved | `Busy | `Absent ->
          (* [`Busy] resolves itself: the owner re-issues the recall on
             its next sweep as long as the stub and drained scion are
             still there. *)
          ())

let on_unstub t node_id rt ~canon ~epoch =
  match t.migrate with
  | None -> ()
  | Some m -> (
      match Migrate.drop_stub m ~node:node_id ~canon ~epoch with
      | Some obj ->
          Simcore.Stats.bump t.c_unstubs;
          Machine.Node.heap_free_words rt.Kernel.node 8;
          let d = t.nodes.(node_id) in
          d.d_fresh <- obj.Kernel.phys_slot :: d.d_fresh
      | None -> ())

(* --- the sweep ----------------------------------------------------- *)

let sweep t ~node =
  let rt = Core.System.rt t.sys node in
  let d = t.nodes.(node) in
  (* Slots quarantined one full sweep ago go back to the allocator;
     local creation and chunk-stock replenishment both draw from this
     pool, making collection the stock refill path. The one-round
     quarantine lets straggler traffic naming the old tenant drain. *)
  List.iter
    (fun slot ->
      Sched.recycle_slot rt slot;
      Simcore.Stats.bump t.c_restocked;
      Simcore.Stats.bump t.c_restocked_node.(node))
    d.d_quarantine;
  d.d_quarantine <- [];
  Hashtbl.iter (fun _ st -> st.st_marked <- false) d.d_stubs;
  Hashtbl.reset d.d_localref;
  let hooks =
    {
      Local_gc.remote_live =
        (fun (o : Kernel.obj) ->
          o.Kernel.self.Value.node = node
          &&
          match Hashtbl.find_opt d.d_scion o.Kernel.self.Value.slot with
          | Some w -> !w <> 0
          | None -> false);
      on_remote_ref =
        (fun a ->
          match Hashtbl.find_opt d.d_stubs (key a) with
          | Some st -> st.st_marked <- true
          | None -> ());
      on_local_ref = (fun a -> Hashtbl.replace d.d_localref a.Value.slot ());
      extra_roots =
        (match t.migrate with
        | Some m -> fun () -> Migrate.parked_refs m ~node
        | None -> fun () -> []);
      on_free =
        (fun (obj : Kernel.obj) ->
          Simcore.Stats.bump t.c_reclaimed;
          Simcore.Stats.bump t.c_reclaimed_node.(node);
          Hashtbl.remove d.d_scion obj.Kernel.self.Value.slot;
          (match t.migrate with
          | Some m ->
              let canon = obj.Kernel.self in
              let epoch = Migrate.resident_epoch m ~canon in
              if epoch > 0 then
                List.iter
                  (fun host ->
                    if host <> node then
                      Engine.send_am t.machine ~src:rt.Kernel.node ~dst:host
                        ~handler:t.h_unstub ~size_bytes:16
                        (G_unstub { canon; epoch }))
                  (Migrate.history m ~canon);
              Migrate.forget m ~canon
          | None -> ());
          d.d_fresh <- obj.Kernel.phys_slot :: d.d_fresh);
      recycle = false;
    }
  in
  let outcome = Local_gc.sweep ~hooks t.sys ~node in
  (match outcome with
  | Local_gc.Skipped _ ->
      (* Nothing was traced, so the stub marks mean nothing: no stub
         reclaim or recall this round. *)
      Simcore.Stats.bump t.c_sweeps_skipped
  | Local_gc.Swept _ ->
      Simcore.Stats.bump t.c_sweeps;
      let c = Engine.cost t.machine in
      (* Unreferenced stubs refund their weight to the owner and release
         their backers, batched per destination. A stub someone still
         depends on (st_ind_out > 0) must outlive its dependents. *)
      let victims =
        Hashtbl.fold
          (fun k st acc ->
            if (not st.st_marked) && st.st_ind_out = 0 then (k, st) :: acc
            else acc)
          d.d_stubs []
      in
      List.iter
        (fun (((onode, oslot) as k), st) ->
          Hashtbl.remove d.d_stubs k;
          Simcore.Stats.bump t.c_stubs_freed;
          Simcore.Stats.bump t.c_stubs_freed_node.(node);
          if st.st_weight > 0 then begin
            Kernel.charge rt c.Cost_model.gc_dec_entry;
            out_dec d onode oslot st.st_weight
          end;
          Hashtbl.iter
            (fun b cnt ->
              Kernel.charge rt c.Cost_model.gc_dec_entry;
              out_ind d b k cnt)
            st.st_ind_from)
        victims;
      (* Drained scions whose record is already gone — disposed reply
         destinations, explicitly retired objects — release their slot. *)
      let drained =
        Hashtbl.fold
          (fun slot w acc ->
            if !w = 0 && not (Hashtbl.mem rt.Kernel.objects slot) then
              slot :: acc
            else acc)
          d.d_scion []
      in
      List.iter
        (fun slot ->
          Hashtbl.remove d.d_scion slot;
          d.d_fresh <- slot :: d.d_fresh)
        drained;
      (* Recall-home: a native forwarding stub whose scion drained and
         that no live local object points at fronts for an object nobody
         references — ask its host to push it home; a later sweep frees
         it here and dismantles the chain. *)
      (match t.migrate with
      | Some _ ->
          Hashtbl.iter
            (fun slot (obj : Kernel.obj) ->
              if
                obj.Kernel.self.Value.node = node
                && (not (Hashtbl.mem d.d_localref slot))
                && (match Hashtbl.find_opt d.d_scion slot with
                   | Some w -> !w = 0
                   | None -> true)
              then
                match Vft.forward_info obj.Kernel.vftp with
                | Some f ->
                    Simcore.Stats.bump t.c_recalls;
                    Engine.send_am t.machine ~src:rt.Kernel.node
                      ~dst:f.Kernel.fwd_to.Value.node ~handler:t.h_recall
                      ~size_bytes:16
                      (G_recall { canon = obj.Kernel.self; hop = 0 })
                | None -> ())
            rt.Kernel.objects
      | None -> ()));
  flush t node rt d;
  d.d_quarantine <- d.d_fresh;
  d.d_fresh <- [];
  outcome

let sweep_all t =
  for i = 0 to Engine.node_count t.machine - 1 do
    ignore (sweep t ~node:i)
  done

let work t =
  (Simcore.Stats.read t.c_reclaimed) + (Simcore.Stats.read t.c_stubs_freed) + (Simcore.Stats.read t.c_restocked) + (Simcore.Stats.read t.c_unstubs)
  + (Simcore.Stats.read t.c_recalls) + (Simcore.Stats.read t.c_dec_msgs)

(* Slots on their way back to the allocator. Settle must keep going
   while any exist even if no counter moved this round (the
   scion-cleanup phase frees slots without other observable work). *)
let pending_slots t =
  Array.fold_left
    (fun acc d -> acc + List.length d.d_fresh + List.length d.d_quarantine)
    0 t.nodes

let settle ?(max_rounds = 16) t =
  let rec loop i last =
    sweep_all t;
    Core.System.run t.sys;
    let w = work t + pending_slots t in
    if (w <> last || pending_slots t > 0) && i < max_rounds then loop (i + 1) w
  in
  loop 0 (-1)

(* --- periodic driver (same pacing discipline as lib/migrate) ------- *)

let app_progress t =
  let get = Simcore.Stats.get (Engine.stats t.machine) in
  get "send.remote" + get "send.local.dormant" + get "send.local.active"
  + get "send.local.inlined"
  + get "send.local.naive_buffered"
  + get "send.local.depth_limited"
  + get "send.local.restore" + get "send.local.fault" + get "create.local"
  + get "create.remote"

let max_quiet_rounds = 4

let arm_timers t =
  if t.interval_ns > 0 then begin
    let p = Engine.node_count t.machine in
    let rec tick last quiet () =
      (* Quiet means neither the application nor the collector itself
         made progress: re-arming then would sweep an unchanging heap
         forever. Collector work resets the counter because reclamation
         cascades (recall, unstub, restock) span several rounds after
         the application goes quiet. *)
      let progress = app_progress t + work t in
      let quiet = if progress = last then quiet + 1 else 0 in
      if quiet < max_quiet_rounds then begin
        let round = ref (Engine.now t.machine) in
        for i = 0 to p - 1 do
          round := max !round (Machine.Node.now (Engine.node t.machine i))
        done;
        for i = 0 to p - 1 do
          Simcore.Clock.advance_to
            (Machine.Node.clock (Engine.node t.machine i))
            !round;
          ignore (sweep t ~node:i)
        done;
        Engine.schedule_at t.machine ~time:(!round + t.interval_ns)
          (tick progress quiet)
      end
    in
    Engine.schedule_at t.machine ~time:t.interval_ns (tick 0 0)
  end

(* --- attachment ---------------------------------------------------- *)

let attach ?migrate ?(interval_ns = 0) ?(grant_weight = 64) sys =
  if grant_weight < 2 then
    invalid_arg "Dgc.attach: grant_weight must be >= 2";
  if grant_weight > 0xFF_FFFF then
    invalid_arg "Dgc.attach: grant_weight exceeds the codec's length field";
  let machine = Core.System.machine sys in
  let p = Engine.node_count machine in
  let stats = Engine.stats machine in
  let tref = ref None in
  let with_t f machine_ node am =
    ignore machine_;
    f (Option.get !tref) node am
  in
  let h_dec =
    Engine.register_handler machine Machine.Am.Service ~name:"dgc-dec"
      (with_t (fun t node am ->
           match am.Machine.Am.payload with
           | G_dec { decs; ind_decs } ->
               let id = Machine.Node.id node in
               on_dec t id (Core.System.rt t.sys id) ~decs ~ind_decs
           | _ -> assert false))
  in
  let h_debit =
    Engine.register_handler machine Machine.Am.Service ~name:"dgc-debit"
      (with_t (fun t node am ->
           match am.Machine.Am.payload with
           | G_debit { slot; weight } ->
               on_debit t (Machine.Node.id node) ~slot ~weight
           | _ -> assert false))
  in
  let h_recall =
    Engine.register_handler machine Machine.Am.Service ~name:"dgc-recall"
      (with_t (fun t node am ->
           match am.Machine.Am.payload with
           | G_recall { canon; hop } ->
               let id = Machine.Node.id node in
               on_recall t id (Core.System.rt t.sys id) ~canon ~hop
           | _ -> assert false))
  in
  let h_unstub =
    Engine.register_handler machine Machine.Am.Service ~name:"dgc-unstub"
      (with_t (fun t node am ->
           match am.Machine.Am.payload with
           | G_unstub { canon; epoch } ->
               let id = Machine.Node.id node in
               on_unstub t id (Core.System.rt t.sys id) ~canon ~epoch
           | _ -> assert false))
  in
  let ctr = Simcore.Stats.counter stats in
  let per_node fmt = Array.init p (fun i -> ctr (Printf.sprintf fmt i)) in
  let t =
    {
      sys;
      machine;
      migrate;
      grant = grant_weight;
      interval_ns;
      h_dec;
      h_debit;
      h_recall;
      h_unstub;
      nodes =
        Array.init p (fun _ ->
            {
              d_scion = Hashtbl.create 64;
              d_stubs = Hashtbl.create 64;
              d_out = Hashtbl.create 8;
              d_localref = Hashtbl.create 64;
              d_quarantine = [];
              d_fresh = [];
            });
      c_sweeps = ctr "dgc.sweeps";
      c_sweeps_skipped = ctr "dgc.sweeps_skipped";
      c_reclaimed = ctr "dgc.reclaimed";
      c_reclaimed_node = per_node "dgc.reclaimed.node%d";
      c_stubs_freed = ctr "dgc.stubs_freed";
      c_stubs_freed_node = per_node "dgc.stubs_freed.node%d";
      c_restocked = ctr "dgc.restocked";
      c_restocked_node = per_node "dgc.restocked.node%d";
      c_dec_msgs = ctr "dgc.dec.msgs";
      c_dec_piggybacked = ctr "dgc.dec.piggybacked";
      c_dec_entries = ctr "dgc.dec.entries";
      c_dec_entries_node = per_node "dgc.dec.entries.node%d";
      c_grants = ctr "dgc.grants";
      c_splits = ctr "dgc.splits";
      c_indirections = ctr "dgc.indirections";
      c_debits = ctr "dgc.debits";
      c_conjures = ctr "dgc.conjures";
      c_recalls = ctr "dgc.recalls";
      c_unstubs = ctr "dgc.unstubs";
    }
  in
  tref := Some t;
  Engine.set_piggyback_source machine
    (Some (fun ~src ~dst -> piggyback_riders t ~src ~dst));
  let shared = (Core.System.rt sys 0).Kernel.shared in
  shared.Kernel.gc <-
    Some
      {
        Kernel.gc_grant = (fun rt values reply -> gc_grant t rt values reply);
        gc_accept = (fun rt refs -> gc_accept t rt refs);
        gc_conjure = (fun rt a -> gc_conjure t rt a);
        gc_conjured = (fun rt slot -> gc_conjured t rt slot);
      };
  arm_timers t;
  t

let detach t =
  Engine.set_piggyback_source t.machine None;
  let shared = (Core.System.rt t.sys 0).Kernel.shared in
  shared.Kernel.gc <- None

(* --- introspection ------------------------------------------------- *)

let reclaimed t = (Simcore.Stats.read t.c_reclaimed)
let stubs_freed t = (Simcore.Stats.read t.c_stubs_freed)
let restocked t = (Simcore.Stats.read t.c_restocked)
let recalls t = (Simcore.Stats.read t.c_recalls)
let unstubs t = (Simcore.Stats.read t.c_unstubs)
let dec_entries t = (Simcore.Stats.read t.c_dec_entries)
let dec_piggybacked t = (Simcore.Stats.read t.c_dec_piggybacked)

let scion_weight t ~node ~slot =
  match Hashtbl.find_opt t.nodes.(node).d_scion slot with
  | Some w -> !w
  | None -> 0

let stub_weight t ~node ~canon =
  match Hashtbl.find_opt t.nodes.(node).d_stubs (key canon) with
  | Some st -> st.st_weight
  | None -> 0

let has_stub t ~node ~canon = Hashtbl.mem t.nodes.(node).d_stubs (key canon)

let resident_objects t ~node =
  Hashtbl.length (Core.System.rt t.sys node).Kernel.objects

let total_resident t =
  let p = Engine.node_count t.machine in
  let n = ref 0 in
  for i = 0 to p - 1 do
    n := !n + resident_objects t ~node:i
  done;
  !n

(* Conservation audit, valid at quiescence (no message in flight, so
   every manifest has been imported). For each canonical address:
   scion = sum of stub weights + pending batched decrements, and
   indirections out = indirections from + pending releases. *)
let audit t =
  let p = Engine.node_count t.machine in
  let claim = Hashtbl.create 64 in
  let ind_out = Hashtbl.create 16 in
  let ind_from = Hashtbl.create 16 in
  let addw tbl k v =
    Hashtbl.replace tbl k (v + Option.value (Hashtbl.find_opt tbl k) ~default:0)
  in
  Array.iter
    (fun d ->
      Hashtbl.iter
        (fun k (st : stub) ->
          addw claim k st.st_weight;
          addw ind_out k st.st_ind_out;
          Hashtbl.iter (fun _ c -> addw ind_from k c) st.st_ind_from)
        d.d_stubs;
      Hashtbl.iter
        (fun dst b ->
          List.iter (fun (slot, w) -> addw claim (dst, slot) w) b.b_decs;
          List.iter (fun (k, c) -> addw ind_from k c) b.b_inds)
        d.d_out)
    t.nodes;
  let problems = ref [] in
  for node = 0 to p - 1 do
    Hashtbl.iter
      (fun slot w ->
        let held = Option.value (Hashtbl.find_opt claim (node, slot)) ~default:0 in
        if !w <> held then
          problems :=
            Printf.sprintf "scion (%d,%d): owner %d vs held %d" node slot !w
              held
            :: !problems;
        Hashtbl.remove claim (node, slot))
      t.nodes.(node).d_scion
  done;
  (* claims with no scion entry must net to zero *)
  Hashtbl.iter
    (fun (n, s) held ->
      if held <> 0 then
        problems :=
          Printf.sprintf "scion (%d,%d): owner 0 vs held %d" n s held
          :: !problems)
    claim;
  Hashtbl.iter
    (fun (n, s) out ->
      let inc = Option.value (Hashtbl.find_opt ind_from (n, s)) ~default:0 in
      if out <> inc then
        problems :=
          Printf.sprintf "indirection (%d,%d): out %d vs from %d" n s out inc
          :: !problems;
      Hashtbl.remove ind_from (n, s))
    ind_out;
  Hashtbl.iter
    (fun (n, s) inc ->
      if inc <> 0 then
        problems :=
          Printf.sprintf "indirection (%d,%d): out 0 vs from %d" n s inc
          :: !problems)
    ind_from;
  List.rev !problems

(* Node-local structural audit for crash recovery. Unlike [audit] it
   needs no global quiescence: it checks only invariants that must hold
   on one node regardless of in-flight traffic, so the recovery manager
   can run it the moment a restarted node rejoins. Scion weights can
   dip negative only transiently in the middle of a debit exchange; a
   node that just restarted holds no half-applied debit, so negative
   reads are flagged here. *)
let recovery_audit t ~node =
  let d = t.nodes.(node) in
  let problems = ref [] in
  let say fmt = Printf.ksprintf (fun s -> problems := s :: !problems) fmt in
  Hashtbl.iter
    (fun (n, s) (st : stub) ->
      if st.st_weight < 0 then
        say "node %d stub (%d,%d): negative weight %d" node n s st.st_weight;
      if st.st_ind_out < 0 then
        say "node %d stub (%d,%d): negative indirections out %d" node n s
          st.st_ind_out;
      Hashtbl.iter
        (fun backer c ->
          if c <= 0 then
            say "node %d stub (%d,%d): empty indirection record from %d" node
              n s backer)
        st.st_ind_from)
    d.d_stubs;
  Hashtbl.iter
    (fun slot w ->
      if !w < 0 then say "node %d scion %d: negative weight %d" node slot !w)
    d.d_scion;
  List.rev !problems

(* --- test instrumentation ----------------------------------------- *)

module Testing = struct
  (* Deliberate corruption for tests that prove the audit notices;
     never called by the collector itself. *)
  let forge_stub_weight t ~node ~canon delta =
    match Hashtbl.find_opt t.nodes.(node).d_stubs (key canon) with
    | Some s -> s.st_weight <- s.st_weight + delta
    | None -> invalid_arg "Dgc.Testing.forge_stub_weight: no stub"
end
