(** Distributed garbage collection for [(node, pointer)] mail addresses.

    Weighted reference counting with indirection entries: the owner node
    keeps a {e scion} (net weight handed out) per exported object, every
    holder keeps a {e stub} with part of that weight, and copying an
    address splits weight locally — no communication on the mutator
    path. Weight refunds travel as batched decrement messages over the
    ordinary (reliable-delivery-capable) active-message fabric. When a
    scion drains, the object is freed by the next local sweep; if it had
    migrated it is first recalled home and its forwarding chain is
    dismantled. Freed slots are quarantined for one sweep round, then
    pushed back into the node's allocation pool — the same pool the
    chunk-stock replenishment path draws from, so collection {e is} the
    stock refill path.

    Attach at boot, before any address crosses a node boundary:
    references exported earlier carry no weight and are repaired lazily
    via debit messages, which weakens the accounting until they land.

    Limitation: reference counting cannot collect cross-node {e cycles}
    of garbage; acyclic structures (the common case for actor programs)
    are collected fully. See DESIGN.md. *)

type t

val attach :
  ?migrate:Migrate.t ->
  ?interval_ns:int ->
  ?grant_weight:int ->
  Core.System.t ->
  t
(** Installs the reference-tracking hooks ([Kernel.shared.gc]) and
    registers the four Service handlers (decrement, debit, recall,
    unstub). [migrate] enables reclamation of migrated objects and their
    forwarding stubs. With a positive [interval_ns] every node sweeps
    once per synchronized round on that period (paced on the busiest
    node's clock; rounds stop re-arming after the application and the
    collector both go quiet). [grant_weight] (default 64, minimum 2) is
    the weight minted per export — small values exercise the
    weight-split / indirection machinery, large values postpone it. *)

val detach : t -> unit
(** Removes the reference-tracking hooks: subsequent exports and imports
    are untracked, so no further scion can drain. For experiments that
    compare against unmanaged growth. *)

(** {2 Collection driving} *)

val sweep : t -> node:int -> Services.Local_gc.sweep_outcome
(** One collection round on the node: release quarantined slots to the
    allocator, run {!Services.Local_gc.sweep} with this collector's
    hooks (scion-exact remote liveness, migration gate roots), reclaim
    unreferenced stubs, recall drained migrated objects, flush batched
    decrements, and quarantine this round's freed slots. Call at engine
    level on a node not currently dispatching. *)

val sweep_all : t -> unit
(** {!sweep} on every node. *)

val settle : ?max_rounds:int -> t -> unit
(** Alternates {!sweep_all} with [System.run] until a full round makes
    no collector progress (or [max_rounds], default 16). Distributed
    reclamation cascades — decrement, stub release, recall, unstub,
    restock — so a single sweep is rarely enough to reach the fixpoint. *)

(** {2 Introspection} *)

val reclaimed : t -> int
(** Objects freed by sweeps ("dgc.reclaimed"). *)

val stubs_freed : t -> int
(** Remote-reference stub entries reclaimed ("dgc.stubs_freed"). *)

val restocked : t -> int
(** Freed slots returned to allocation pools ("dgc.restocked"). *)

val recalls : t -> int
(** Recall-home requests issued for drained migrated objects. *)

val unstubs : t -> int
(** Forwarding stubs dismantled after their object was freed. *)

val dec_entries : t -> int
(** Individual decrements carried by batched [G_dec] messages
    ("dgc.dec.entries"); compare with "dgc.dec.msgs" for the batching
    ratio. *)

val dec_piggybacked : t -> int
(** [G_dec] messages that travelled as riders on departing aggregation
    batches instead of as packets of their own (coalescing only). *)

val scion_weight : t -> node:int -> slot:int -> int
(** Net weight the owner believes is outstanding for its local [slot]
    (0 when never exported; transiently negative under a debit race). *)

val stub_weight : t -> node:int -> canon:Core.Value.addr -> int
(** Weight the node holds for the remote address (0 without a stub). *)

val has_stub : t -> node:int -> canon:Core.Value.addr -> bool

val resident_objects : t -> node:int -> int
(** Object-table population of the node (records of any kind). *)

val total_resident : t -> int

val audit : t -> string list
(** Conservation check, meaningful only at quiescence (empty networks,
    all manifests imported): for every canonical address, owner scion
    must equal the sum of holder weights plus pending batched
    decrements, and indirections out must match indirections from plus
    pending releases. Returns one description per violation; [[]] means
    the counts balance. *)

val recovery_audit : t -> node:int -> string list
(** Node-local structural audit, valid at {e any} instant (no global
    quiescence needed): every stub weight and indirection-out count on
    the node is non-negative, indirection-backer records are non-empty,
    and every scion weight is non-negative (a restarted node holds no
    half-applied debit, so the transient-negative excuse does not
    apply). The recovery manager runs this when a node rejoins after a
    crash; {!audit} still gives the global conservation verdict at
    quiescence. *)

(** Deliberate state corruption, exclusively for tests that prove the
    audit catches broken invariants. *)
module Testing : sig
  val forge_stub_weight :
    t -> node:int -> canon:Core.Value.addr -> int -> unit
  (** Adds the given delta to the node's stub weight for [canon],
      breaking weight conservation on purpose. Raises [Invalid_argument]
      if the node holds no stub for the address. *)
end
