open Ast

let binop_str = function
  | Add -> "+"
  | Sub -> "-"
  | Mul -> "*"
  | Div -> "/"
  | Mod -> "%"
  | Lt -> "<"
  | Le -> "<="
  | Gt -> ">"
  | Ge -> ">="
  | Eq -> "="
  | Ne -> "<>"
  | And -> "&&"
  | Or -> "||"

let comma_sep pp ppf items =
  Format.pp_print_list
    ~pp_sep:(fun ppf () -> Format.fprintf ppf ", ")
    pp ppf items

(* Everything compound is parenthesised, so precedence never matters on
   re-parse. *)
let rec pp_expr ppf = function
  | E_unit -> Format.pp_print_string ppf "unit"
  | E_int i -> if i < 0 then Format.fprintf ppf "(0 - %d)" (-i) else Format.pp_print_int ppf i
  | E_bool b -> Format.pp_print_bool ppf b
  | E_str s -> Format.fprintf ppf "%S" s
  | E_var x -> Format.pp_print_string ppf x
  | E_self -> Format.pp_print_string ppf "self"
  | E_node -> Format.pp_print_string ppf "node"
  | E_nodes -> Format.pp_print_string ppf "nodes"
  | E_binop (op, a, b) ->
      Format.fprintf ppf "(%a %s %a)" pp_expr a (binop_str op) pp_expr b
  | E_unop (Neg, a) -> Format.fprintf ppf "(- %a)" pp_expr a
  | E_unop (Not, a) -> Format.fprintf ppf "(not %a)" pp_expr a
  | E_list es -> Format.fprintf ppf "[%a]" (comma_sep pp_expr) es
  | E_prim (name, args) ->
      Format.fprintf ppf "%s(%a)" name (comma_sep pp_expr) args
  | E_new { cls; args; where } ->
      Format.fprintf ppf "(new %s(%a)%a)" cls (comma_sep pp_expr) args pp_where
        where
  | E_send_now { target; pattern; args } ->
      Format.fprintf ppf "(now (%a).%s(%a))" pp_expr target pattern
        (comma_sep pp_expr) args
  | E_send_future { target; pattern; args } ->
      Format.fprintf ppf "(future (%a).%s(%a))" pp_expr target pattern
        (comma_sep pp_expr) args
  | E_touch e -> Format.fprintf ppf "(touch (%a))" pp_expr e

and pp_where ppf = function
  | W_local -> Format.pp_print_string ppf " local"
  | W_remote -> Format.pp_print_string ppf " remote"
  | W_on e -> Format.fprintf ppf " on (%a)" pp_expr e

let rec pp_stmt ppf = function
  | S_let (x, e) -> Format.fprintf ppf "let %s = %a;" x pp_expr e
  | S_assign (x, e) -> Format.fprintf ppf "%s := %a;" x pp_expr e
  | S_send { target; pattern; args } ->
      Format.fprintf ppf "send (%a).%s(%a);" pp_expr target pattern
        (comma_sep pp_expr) args
  | S_reply e -> Format.fprintf ppf "reply %a;" pp_expr e
  | S_print e -> Format.fprintf ppf "print %a;" pp_expr e
  | S_charge e -> Format.fprintf ppf "charge %a;" pp_expr e
  | S_retire -> Format.pp_print_string ppf "retire;"
  | S_if (cond, then_, else_) ->
      Format.fprintf ppf "if %a %a" pp_expr cond pp_block then_;
      if else_ <> [] then Format.fprintf ppf " else %a" pp_block else_
  | S_while (cond, body) ->
      Format.fprintf ppf "while %a %a" pp_expr cond pp_block body
  | S_for { var; from_; to_; body } ->
      Format.fprintf ppf "for %s = %a to %a %a" var pp_expr from_ pp_expr to_
        pp_block body
  | S_wait arms ->
      Format.fprintf ppf "wait {@ %a@ }"
        (Format.pp_print_list ~pp_sep:Format.pp_print_space pp_arm)
        arms
  | S_expr e -> Format.fprintf ppf "%a;" pp_expr e

and pp_arm ppf arm =
  Format.fprintf ppf "%s(%a) %a" arm.w_pattern
    (comma_sep Format.pp_print_string)
    arm.w_params pp_block arm.w_body

and pp_block ppf block =
  Format.fprintf ppf "{@[<v 2>@ %a@]@ }"
    (Format.pp_print_list ~pp_sep:Format.pp_print_space pp_stmt)
    block

let pp_class ppf c =
  Format.fprintf ppf "@[<v>class %s" c.c_name;
  if c.c_params <> [] then
    Format.fprintf ppf "(%a)" (comma_sep Format.pp_print_string) c.c_params;
  List.iter
    (fun (name, init) -> Format.fprintf ppf "@,  state %s = %a" name pp_expr init)
    c.c_state;
  (match c.c_ma with
  | None -> ()
  | Some ma ->
      List.iter
        (fun (g, members) ->
          Format.fprintf ppf "@,  group %s = %a" g
            (comma_sep Format.pp_print_string)
            members)
        ma.ma_groups;
      List.iter
        (fun (a, b) -> Format.fprintf ppf "@,  compatible %s %s" a b)
        ma.ma_compatible;
      Format.fprintf ppf "@,  budget %d" ma.ma_budget);
  List.iter
    (fun m ->
      Format.fprintf ppf "@,  method %s(%a) %a" m.m_pattern
        (comma_sep Format.pp_print_string)
        m.m_params pp_block m.m_body)
    c.c_methods;
  Format.fprintf ppf "@,end@]"

let pp_boot ppf b =
  Format.fprintf ppf "boot %s(%a) on %d <- %s(%a)" b.b_class
    (comma_sep pp_expr) b.b_args b.b_node b.b_pattern (comma_sep pp_expr)
    b.b_msg_args

let pp_program ppf p =
  Format.fprintf ppf "@[<v>%a@,%a@]"
    (Format.pp_print_list ~pp_sep:Format.pp_print_cut pp_class)
    p.p_classes
    (Format.pp_print_list ~pp_sep:Format.pp_print_cut pp_boot)
    p.p_boots

let program_to_string p = Format.asprintf "%a@." pp_program p
