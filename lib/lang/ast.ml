(** Abstract syntax of the ABCL-like surface language.

    The concrete syntax (see [Parser]) is a small, conventional notation
    for the computation model of Section 2: classes of concurrent
    objects with encapsulated state, past- / now- / future-type message
    passing, object creation with placement, and selective message
    reception. A program is a set of class definitions plus boot
    directives. *)

type binop =
  | Add
  | Sub
  | Mul
  | Div
  | Mod
  | Lt
  | Le
  | Gt
  | Ge
  | Eq
  | Ne
  | And
  | Or

type unop = Neg | Not

(** Placement of a [new] expression. *)
type where =
  | W_local  (** on the creating node *)
  | W_remote  (** wherever the configured policy decides *)
  | W_on of expr  (** on an explicitly computed node *)

and expr =
  | E_unit
  | E_int of int
  | E_bool of bool
  | E_str of string
  | E_var of string
  | E_self  (** this object's mail address *)
  | E_node  (** the executing node's id *)
  | E_nodes  (** total number of nodes *)
  | E_binop of binop * expr * expr
  | E_unop of unop * expr
  | E_list of expr list
  | E_prim of string * expr list
      (** built-ins: hd, tl, cons, null, len, abs, min, max, random *)
  | E_new of { cls : string; args : expr list; where : where }
  | E_send_now of { target : expr; pattern : string; args : expr list }
  | E_send_future of { target : expr; pattern : string; args : expr list }
  | E_touch of expr

and stmt =
  | S_let of string * expr
  | S_assign of string * expr  (** state variable or let-bound variable *)
  | S_send of { target : expr; pattern : string; args : expr list }
  | S_reply of expr
  | S_print of expr
  | S_charge of expr  (** model [e] instructions of computation *)
  | S_retire  (** drop this object after the current method *)
  | S_if of expr * block * block
  | S_while of expr * block
  | S_for of { var : string; from_ : expr; to_ : expr; body : block }
      (** inclusive bounds; the loop variable stays bound (at its final
          value) for the rest of the enclosing block *)
  | S_wait of wait_arm list
      (** selective reception: waits for the first message matching any
          arm's pattern, binds its arguments, runs that arm's body *)
  | S_expr of expr

and wait_arm = { w_pattern : string; w_params : string list; w_body : block }
and block = stmt list

type method_def = {
  m_pattern : string;
  m_params : string list;
  m_body : block;
}

(** Multiactive compatibility declaration (clauses between the state
    variables and the methods): methods named by one [group] may
    overlap each other on a single object, [compatible] pairs of group
    names may overlap across groups, everything else serializes, and at
    most [budget] activations run concurrently per object. *)
type ma_decl = {
  ma_budget : int;  (** concurrent-activation bound; defaults to 2 *)
  ma_groups : (string * string list) list;
      (** [group <name> = <method>, ...] clauses, in source order *)
  ma_compatible : (string * string) list;
      (** [compatible <group> <group>] clauses *)
}

type class_def = {
  c_name : string;
  c_params : string list;  (** constructor parameters *)
  c_state : (string * expr) list;
      (** state variables; initialisers may use constructor parameters *)
  c_ma : ma_decl option;
  c_methods : method_def list;
}

(** [boot <class>(literals) on <node> <- <pattern>(literals)] *)
type boot_def = {
  b_class : string;
  b_args : expr list;  (** must be literals *)
  b_node : int;
  b_pattern : string;
  b_msg_args : expr list;  (** must be literals *)
}

type program = { p_classes : class_def list; p_boots : boot_def list }
