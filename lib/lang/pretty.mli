(** Pretty-printer for the surface language: emits canonical concrete
    syntax that {!Parser.parse_program} reads back to an equal AST. *)

val pp_expr : Format.formatter -> Ast.expr -> unit
val pp_stmt : Format.formatter -> Ast.stmt -> unit
val pp_class : Format.formatter -> Ast.class_def -> unit
val pp_program : Format.formatter -> Ast.program -> unit

val program_to_string : Ast.program -> string
