open Ast

exception Error of { line : int; message : string }

type state = { tokens : (Lexer.token * int) array; mutable pos : int }

let peek st = fst st.tokens.(st.pos)
let line st = snd st.tokens.(st.pos)
let advance st = st.pos <- st.pos + 1

let fail st message = raise (Error { line = line st; message })

let expect st token what =
  if peek st = token then advance st
  else
    fail st
      (Format.asprintf "expected %s, found %a" what Lexer.pp_token (peek st))

let ident st =
  match peek st with
  | Lexer.IDENT name ->
      advance st;
      name
  | other -> fail st (Format.asprintf "expected identifier, found %a" Lexer.pp_token other)

let int_lit st =
  match peek st with
  | Lexer.INT i ->
      advance st;
      i
  | other -> fail st (Format.asprintf "expected integer, found %a" Lexer.pp_token other)

let comma_sep st parse ~closing =
  if peek st = closing then []
  else
    let rec loop acc =
      let item = parse st in
      if peek st = Lexer.COMMA then begin
        advance st;
        loop (item :: acc)
      end
      else List.rev (item :: acc)
    in
    loop []

(* --- expressions --- *)

let binop_of = function
  | "+" -> Add
  | "-" -> Sub
  | "*" -> Mul
  | "/" -> Div
  | "%" -> Mod
  | "<" -> Lt
  | "<=" -> Le
  | ">" -> Gt
  | ">=" -> Ge
  | "=" -> Eq
  | "<>" -> Ne
  | "&&" -> And
  | "||" -> Or
  | op -> invalid_arg ("binop_of: " ^ op)

let rec expr st = or_expr st

and or_expr st =
  let lhs = and_expr st in
  match peek st with
  | Lexer.OP "||" ->
      advance st;
      E_binop (Or, lhs, or_expr st)
  | _ -> lhs

and and_expr st =
  let lhs = cmp_expr st in
  match peek st with
  | Lexer.OP "&&" ->
      advance st;
      E_binop (And, lhs, and_expr st)
  | _ -> lhs

and cmp_expr st =
  let lhs = add_expr st in
  match peek st with
  | Lexer.OP (("<" | "<=" | ">" | ">=" | "=" | "<>") as op) ->
      advance st;
      E_binop (binop_of op, lhs, add_expr st)
  | _ -> lhs

and add_expr st =
  let rec loop lhs =
    match peek st with
    | Lexer.OP (("+" | "-") as op) ->
        advance st;
        loop (E_binop (binop_of op, lhs, mul_expr st))
    | _ -> lhs
  in
  loop (mul_expr st)

and mul_expr st =
  let rec loop lhs =
    match peek st with
    | Lexer.OP (("*" | "/" | "%") as op) ->
        advance st;
        loop (E_binop (binop_of op, lhs, unary_expr st))
    | _ -> lhs
  in
  loop (unary_expr st)

and unary_expr st =
  match peek st with
  | Lexer.OP "-" ->
      advance st;
      E_unop (Neg, unary_expr st)
  | Lexer.KW "not" | Lexer.OP "!" ->
      advance st;
      E_unop (Not, unary_expr st)
  | _ -> primary st

and args st =
  expect st Lexer.LPAREN "(";
  let items = comma_sep st expr ~closing:Lexer.RPAREN in
  expect st Lexer.RPAREN ")";
  items

and message_suffix st target =
  expect st Lexer.DOT ".";
  let pattern = ident st in
  let arguments = args st in
  (target, pattern, arguments)

and primary st =
  match peek st with
  | Lexer.INT i ->
      advance st;
      E_int i
  | Lexer.STRING s ->
      advance st;
      E_str s
  | Lexer.KW "true" ->
      advance st;
      E_bool true
  | Lexer.KW "false" ->
      advance st;
      E_bool false
  | Lexer.KW "unit" ->
      advance st;
      E_unit
  | Lexer.KW "self" ->
      advance st;
      E_self
  | Lexer.KW "node" ->
      advance st;
      E_node
  | Lexer.KW "nodes" ->
      advance st;
      E_nodes
  | Lexer.LPAREN ->
      advance st;
      let e = expr st in
      expect st Lexer.RPAREN ")";
      e
  | Lexer.LBRACKET ->
      advance st;
      let items = comma_sep st expr ~closing:Lexer.RBRACKET in
      expect st Lexer.RBRACKET "]";
      E_list items
  | Lexer.KW "new" ->
      advance st;
      let cls = ident st in
      let arguments = args st in
      let where =
        match peek st with
        | Lexer.KW "on" ->
            advance st;
            W_on (primary st)
        | Lexer.KW "remote" ->
            advance st;
            W_remote
        | Lexer.KW "local" ->
            advance st;
            W_local
        | _ -> W_remote
      in
      E_new { cls; args = arguments; where }
  | Lexer.KW "now" ->
      advance st;
      let target = primary st in
      let target, pattern, arguments = message_suffix st target in
      E_send_now { target; pattern; args = arguments }
  | Lexer.KW "future" ->
      advance st;
      let target = primary st in
      let target, pattern, arguments = message_suffix st target in
      E_send_future { target; pattern; args = arguments }
  | Lexer.KW "touch" ->
      advance st;
      E_touch (primary st)
  | Lexer.IDENT name ->
      advance st;
      if peek st = Lexer.LPAREN then E_prim (name, args st) else E_var name
  | other ->
      fail st (Format.asprintf "expected expression, found %a" Lexer.pp_token other)

(* --- statements --- *)

let rec block st =
  expect st Lexer.LBRACE "{";
  let rec loop acc =
    if peek st = Lexer.RBRACE then begin
      advance st;
      List.rev acc
    end
    else loop (stmt st :: acc)
  in
  loop []

and stmt st =
  match peek st with
  | Lexer.KW "let" ->
      advance st;
      let name = ident st in
      expect st (Lexer.OP "=") "=";
      let e = expr st in
      expect st Lexer.SEMI ";";
      S_let (name, e)
  | Lexer.KW "send" ->
      advance st;
      let target = primary st in
      let target, pattern, arguments = message_suffix st target in
      expect st Lexer.SEMI ";";
      S_send { target; pattern; args = arguments }
  | Lexer.KW "reply" ->
      advance st;
      let e = expr st in
      expect st Lexer.SEMI ";";
      S_reply e
  | Lexer.KW "print" ->
      advance st;
      let e = expr st in
      expect st Lexer.SEMI ";";
      S_print e
  | Lexer.KW "charge" ->
      advance st;
      let e = expr st in
      expect st Lexer.SEMI ";";
      S_charge e
  | Lexer.KW "retire" ->
      advance st;
      expect st Lexer.SEMI ";";
      S_retire
  | Lexer.KW "if" ->
      advance st;
      let cond = expr st in
      let then_ = block st in
      let else_ =
        if peek st = Lexer.KW "else" then begin
          advance st;
          block st
        end
        else []
      in
      S_if (cond, then_, else_)
  | Lexer.KW "while" ->
      advance st;
      let cond = expr st in
      S_while (cond, block st)
  | Lexer.KW "for" ->
      advance st;
      let var = ident st in
      expect st (Lexer.OP "=") "=";
      let from_ = expr st in
      expect st (Lexer.KW "to") "to";
      let to_ = expr st in
      S_for { var; from_; to_; body = block st }
  | Lexer.KW "wait" ->
      advance st;
      expect st Lexer.LBRACE "{";
      let rec arms acc =
        if peek st = Lexer.RBRACE then begin
          advance st;
          List.rev acc
        end
        else begin
          let w_pattern = ident st in
          expect st Lexer.LPAREN "(";
          let w_params = comma_sep st ident ~closing:Lexer.RPAREN in
          expect st Lexer.RPAREN ")";
          let w_body = block st in
          arms ({ w_pattern; w_params; w_body } :: acc)
        end
      in
      let arms = arms [] in
      if arms = [] then fail st "wait requires at least one arm";
      S_wait arms
  | Lexer.IDENT name when fst st.tokens.(st.pos + 1) = Lexer.ASSIGN ->
      advance st;
      advance st;
      let e = expr st in
      expect st Lexer.SEMI ";";
      S_assign (name, e)
  | _ ->
      let e = expr st in
      expect st Lexer.SEMI ";";
      S_expr e

(* --- top level --- *)

let method_def st =
  expect st (Lexer.KW "method") "method";
  let m_pattern = ident st in
  expect st Lexer.LPAREN "(";
  let m_params = comma_sep st ident ~closing:Lexer.RPAREN in
  expect st Lexer.RPAREN ")";
  { m_pattern; m_params; m_body = block st }

let class_def st =
  expect st (Lexer.KW "class") "class";
  let c_name = ident st in
  let c_params =
    if peek st = Lexer.LPAREN then begin
      advance st;
      let params = comma_sep st ident ~closing:Lexer.RPAREN in
      expect st Lexer.RPAREN ")";
      params
    end
    else []
  in
  let rec states acc =
    if peek st = Lexer.KW "state" then begin
      advance st;
      let name = ident st in
      expect st (Lexer.OP "=") "=";
      let init = expr st in
      states ((name, init) :: acc)
    end
    else List.rev acc
  in
  let c_state = states [] in
  (* Multiactive clauses sit between the state variables and the
     methods: [group g = m, ...], [compatible g h], [budget n]. *)
  let rec ma_clauses groups compatible budget =
    match peek st with
    | Lexer.KW "group" ->
        advance st;
        let gname = ident st in
        expect st (Lexer.OP "=") "=";
        let rec members acc =
          let m = ident st in
          if peek st = Lexer.COMMA then begin
            advance st;
            members (m :: acc)
          end
          else List.rev (m :: acc)
        in
        ma_clauses ((gname, members []) :: groups) compatible budget
    | Lexer.KW "compatible" ->
        advance st;
        let a = ident st in
        let b = ident st in
        ma_clauses groups ((a, b) :: compatible) budget
    | Lexer.KW "budget" ->
        advance st;
        ma_clauses groups compatible (Some (int_lit st))
    | _ -> (List.rev groups, List.rev compatible, budget)
  in
  let groups, compatible, budget = ma_clauses [] [] None in
  let c_ma =
    match (groups, compatible, budget) with
    | [], [], None -> None
    | [], _, _ -> fail st "compatible/budget require at least one group"
    | _ ->
        Some
          {
            ma_budget = Option.value budget ~default:2;
            ma_groups = groups;
            ma_compatible = compatible;
          }
  in
  let rec methods acc =
    if peek st = Lexer.KW "method" then methods (method_def st :: acc)
    else List.rev acc
  in
  let c_methods = methods [] in
  expect st (Lexer.KW "end") "end";
  { c_name; c_params; c_state; c_ma; c_methods }

let boot_def st =
  expect st (Lexer.KW "boot") "boot";
  let b_class = ident st in
  let b_args = args st in
  expect st (Lexer.KW "on") "on";
  let b_node = int_lit st in
  expect st Lexer.ARROW "<-";
  let b_pattern = ident st in
  let b_msg_args = args st in
  { b_class; b_args; b_node; b_pattern; b_msg_args }

let parse_program src =
  let st = { tokens = Array.of_list (Lexer.tokenize src); pos = 0 } in
  let rec loop classes boots =
    match peek st with
    | Lexer.EOF ->
        { p_classes = List.rev classes; p_boots = List.rev boots }
    | Lexer.KW "class" -> loop (class_def st :: classes) boots
    | Lexer.KW "boot" -> loop classes (boot_def st :: boots)
    | other ->
        fail st
          (Format.asprintf "expected 'class' or 'boot', found %a"
             Lexer.pp_token other)
  in
  let program = loop [] [] in
  if program.p_boots = [] then
    raise (Error { line = 0; message = "program has no boot directive" });
  program

let parse_expr src =
  let st = { tokens = Array.of_list (Lexer.tokenize src); pos = 0 } in
  let e = expr st in
  expect st Lexer.EOF "end of input";
  e
