(** Hand-written lexer for the surface language. *)

type token =
  | INT of int
  | STRING of string
  | IDENT of string  (** lowercase identifiers and keywords are split by the parser *)
  | KW of string  (** reserved word *)
  | LPAREN
  | RPAREN
  | LBRACE
  | RBRACE
  | LBRACKET
  | RBRACKET
  | COMMA
  | SEMI
  | DOT
  | ASSIGN  (** := *)
  | ARROW  (** <- *)
  | OP of string  (** + - * / % < <= > >= = <> && || ! *)
  | EOF

exception Error of { line : int; message : string }

val tokenize : string -> (token * int) list
(** Token stream with line numbers. Comments run from [;;] or [#] to end
    of line. Raises {!Error} on malformed input. *)

val keywords : string list

val pp_token : Format.formatter -> token -> unit
