(** Recursive-descent parser for the surface language.

    Grammar sketch (see the examples under [examples/abcl/]):
    {v
    program  ::= (class | boot)* EOF
    class    ::= "class" name ["(" params ")"]
                   ("state" name "=" expr)* method* "end"
    method   ::= "method" name "(" params ")" block
    boot     ::= "boot" name "(" literals ")" "on" int
                   "<-" name "(" literals ")"
    block    ::= "{" stmt* "}"
    stmt     ::= "let" x "=" expr ";" | x ":=" expr ";"
               | "send" primary "." name "(" args ")" ";"
               | "reply" expr ";" | "print" expr ";" | "charge" expr ";"
               | "retire" ";" | "if" expr block ["else" block]
               | "while" expr block | "for" x "=" expr "to" expr block
               | "wait" "{" (name "(" params ")" block)+ "}"
               | expr ";"
    expr     ::= usual precedence over || && = <> < <= > >= + - * / %
    primary  ::= literal | x | x "(" args ")" | "(" expr ")" | "[" args "]"
               | "self" | "node" | "nodes"
               | "new" name "(" args ")" ["on" primary | "remote" | "local"]
               | "now" primary "." name "(" args ")"
               | "future" primary "." name "(" args ")" | "touch" primary
    v} *)

exception Error of { line : int; message : string }

val parse_program : string -> Ast.program
(** Raises {!Error} or {!Lexer.Error} on malformed input. *)

val parse_expr : string -> Ast.expr
(** Parses a single expression (for tests). *)
