type token =
  | INT of int
  | STRING of string
  | IDENT of string
  | KW of string
  | LPAREN
  | RPAREN
  | LBRACE
  | RBRACE
  | LBRACKET
  | RBRACKET
  | COMMA
  | SEMI
  | DOT
  | ASSIGN
  | ARROW
  | OP of string
  | EOF

exception Error of { line : int; message : string }

let keywords =
  [
    "class"; "state"; "method"; "end"; "let"; "send"; "now"; "future";
    "touch"; "reply"; "print"; "charge"; "retire"; "if"; "else"; "while";
    "for"; "to"; "do"; "wait"; "new"; "on"; "remote"; "local"; "self";
    "node"; "nodes"; "true"; "false"; "unit"; "boot"; "not"; "group";
    "compatible"; "budget";
  ]

let is_ident_start c = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_'

let is_ident_char c =
  is_ident_start c || (c >= '0' && c <= '9')

let is_digit c = c >= '0' && c <= '9'

let tokenize src =
  let n = String.length src in
  let tokens = ref [] in
  let line = ref 1 in
  let emit t = tokens := (t, !line) :: !tokens in
  let error message = raise (Error { line = !line; message }) in
  let rec scan i =
    if i >= n then emit EOF
    else
      let c = src.[i] in
      if c = '\n' then begin
        incr line;
        scan (i + 1)
      end
      else if c = ' ' || c = '\t' || c = '\r' then scan (i + 1)
      else if c = '#' || (c = ';' && i + 1 < n && src.[i + 1] = ';') then begin
        (* comment to end of line *)
        let rec skip j = if j < n && src.[j] <> '\n' then skip (j + 1) else j in
        scan (skip i)
      end
      else if is_digit c then begin
        let rec grab j = if j < n && is_digit src.[j] then grab (j + 1) else j in
        let j = grab i in
        emit (INT (int_of_string (String.sub src i (j - i))));
        scan j
      end
      else if is_ident_start c then begin
        let rec grab j = if j < n && is_ident_char src.[j] then grab (j + 1) else j in
        let j = grab i in
        let word = String.sub src i (j - i) in
        emit (if List.mem word keywords then KW word else IDENT word);
        scan j
      end
      else if c = '"' then begin
        let buf = Buffer.create 16 in
        let rec grab j =
          if j >= n then error "unterminated string"
          else if src.[j] = '"' then j + 1
          else if src.[j] = '\\' && j + 1 < n then begin
            (match src.[j + 1] with
            | 'n' -> Buffer.add_char buf '\n'
            | 't' -> Buffer.add_char buf '\t'
            | other -> Buffer.add_char buf other);
            grab (j + 2)
          end
          else begin
            Buffer.add_char buf src.[j];
            grab (j + 1)
          end
        in
        let j = grab (i + 1) in
        emit (STRING (Buffer.contents buf));
        scan j
      end
      else
        let two = if i + 1 < n then String.sub src i 2 else "" in
        match two with
        | ":=" ->
            emit ASSIGN;
            scan (i + 2)
        | "<-" ->
            emit ARROW;
            scan (i + 2)
        | "<=" | ">=" | "<>" | "&&" | "||" ->
            emit (OP two);
            scan (i + 2)
        | _ -> (
            match c with
            | '(' -> emit LPAREN; scan (i + 1)
            | ')' -> emit RPAREN; scan (i + 1)
            | '{' -> emit LBRACE; scan (i + 1)
            | '}' -> emit RBRACE; scan (i + 1)
            | '[' -> emit LBRACKET; scan (i + 1)
            | ']' -> emit RBRACKET; scan (i + 1)
            | ',' -> emit COMMA; scan (i + 1)
            | ';' -> emit SEMI; scan (i + 1)
            | '.' -> emit DOT; scan (i + 1)
            | '+' | '-' | '*' | '/' | '%' | '<' | '>' | '=' | '!' ->
                emit (OP (String.make 1 c));
                scan (i + 1)
            | _ -> error (Printf.sprintf "unexpected character %C" c))
  in
  scan 0;
  List.rev !tokens

let pp_token ppf = function
  | INT i -> Format.fprintf ppf "%d" i
  | STRING s -> Format.fprintf ppf "%S" s
  | IDENT s -> Format.fprintf ppf "ident %s" s
  | KW s -> Format.fprintf ppf "keyword %s" s
  | LPAREN -> Format.pp_print_string ppf "("
  | RPAREN -> Format.pp_print_string ppf ")"
  | LBRACE -> Format.pp_print_string ppf "{"
  | RBRACE -> Format.pp_print_string ppf "}"
  | LBRACKET -> Format.pp_print_string ppf "["
  | RBRACKET -> Format.pp_print_string ppf "]"
  | COMMA -> Format.pp_print_string ppf ","
  | SEMI -> Format.pp_print_string ppf ";"
  | DOT -> Format.pp_print_string ppf "."
  | ASSIGN -> Format.pp_print_string ppf ":="
  | ARROW -> Format.pp_print_string ppf "<-"
  | OP s -> Format.pp_print_string ppf s
  | EOF -> Format.pp_print_string ppf "<eof>"
