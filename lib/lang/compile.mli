(** Compiles a parsed program into runtime classes and boots it.

    Method bodies are interpreted against the [Core.Ctx] API — the same
    five basic actions the paper's compiler emits C code for. Every
    pattern is interned as ["keyword/arity"], so scripts cannot collide
    with host-defined patterns of different arity. Interpretation charges
    small instruction counts per evaluated node, so script computation
    advances virtual time like compiled method bodies would. *)

exception Script_error of string
(** Compile-time or runtime error in a script (unknown class, unbound
    variable, type mismatch, division by zero, ...). *)

type instance

val compile : Ast.program -> instance
(** Builds all classes. Raises {!Script_error} on duplicate class names,
    duplicate methods, or non-constant boot arguments. *)

val classes : instance -> Core.Kernel.cls list

val boot :
  ?machine_config:Machine.Engine.config ->
  ?rt_config:Core.Kernel.rt_config ->
  nodes:int ->
  instance ->
  Core.System.t
(** Boots a system with the program's classes, creates the boot objects
    and schedules the boot messages. *)

val output : instance -> string
(** Everything the program [print]ed so far. *)

val run_source :
  ?machine_config:Machine.Engine.config ->
  ?rt_config:Core.Kernel.rt_config ->
  ?nodes:int ->
  string ->
  string * Core.System.t
(** Parse, compile, boot and run to quiescence; returns the printed
    output and the final system (for statistics). [nodes] defaults to 4. *)
