open Ast
module Value = Core.Value
module Pattern = Core.Pattern
module Message = Core.Message
module Ctx = Core.Ctx
module Class_def = Core.Class_def
module System = Core.System

exception Script_error of string

let error fmt = Format.kasprintf (fun m -> raise (Script_error m)) fmt

type instance = {
  registry : (string, Core.Kernel.cls) Hashtbl.t;
  out : Buffer.t;
  program : Ast.program;
}

(* Patterns are namespaced by arity so scripts compose with host code. *)
let pat keyword ~arity =
  Pattern.intern (Printf.sprintf "%s/%d" keyword arity) ~arity

(* --- pure evaluation (state initialisers and boot arguments) --- *)

let rec eval_pure bindings (e : expr) : Value.t =
  match e with
  | E_unit -> Value.unit
  | E_int i -> Value.int i
  | E_bool b -> Value.bool b
  | E_str s -> Value.str s
  | E_var x -> (
      match List.assoc_opt x bindings with
      | Some v -> v
      | None -> error "unbound variable %s in a constant context" x)
  | E_list es -> Value.list (List.map (eval_pure bindings) es)
  | E_binop (op, a, b) ->
      eval_binop op (eval_pure bindings a) (fun () -> eval_pure bindings b)
  | E_unop (op, a) -> eval_unop op (eval_pure bindings a)
  | E_prim (name, args) -> eval_prim_pure name (List.map (eval_pure bindings) args)
  | E_self | E_node | E_nodes | E_new _ | E_send_now _ | E_send_future _
  | E_touch _ ->
      error "expression requires a running object (not allowed here)"

and eval_binop op a b_thunk =
  let int_op f =
    let b = b_thunk () in
    Value.int (f (Value.to_int a) (Value.to_int b))
  in
  let cmp_op f =
    let b = b_thunk () in
    Value.bool (f (Value.to_int a) (Value.to_int b))
  in
  match op with
  | Add -> int_op ( + )
  | Sub -> int_op ( - )
  | Mul -> int_op ( * )
  | Div ->
      let b = Value.to_int (b_thunk ()) in
      if b = 0 then error "division by zero";
      Value.int (Value.to_int a / b)
  | Mod ->
      let b = Value.to_int (b_thunk ()) in
      if b = 0 then error "modulo by zero";
      Value.int (Value.to_int a mod b)
  | Lt -> cmp_op ( < )
  | Le -> cmp_op ( <= )
  | Gt -> cmp_op ( > )
  | Ge -> cmp_op ( >= )
  | Eq -> Value.bool (Value.equal a (b_thunk ()))
  | Ne -> Value.bool (not (Value.equal a (b_thunk ())))
  | And -> if Value.to_bool a then b_thunk () else Value.bool false
  | Or -> if Value.to_bool a then Value.bool true else b_thunk ()

and eval_unop op a =
  match op with
  | Neg -> Value.int (-Value.to_int a)
  | Not -> Value.bool (not (Value.to_bool a))

and eval_prim_pure name args =
  match (name, args) with
  | "hd", [ v ] -> (
      match Value.to_list v with
      | x :: _ -> x
      | [] -> error "hd of empty list")
  | "tl", [ v ] -> (
      match Value.to_list v with
      | _ :: rest -> Value.list rest
      | [] -> error "tl of empty list")
  | "cons", [ x; v ] -> Value.list (x :: Value.to_list v)
  | "null", [ v ] -> Value.bool (Value.to_list v = [])
  | "len", [ v ] -> Value.int (List.length (Value.to_list v))
  | "nth", [ v; i ] -> (
      match List.nth_opt (Value.to_list v) (Value.to_int i) with
      | Some x -> x
      | None -> error "nth out of range")
  | "abs", [ v ] -> Value.int (abs (Value.to_int v))
  | "safe", [ board; col ] ->
      (* N-queens helper: may a queen go in [col] on the next row, given
         the placements so far (most recent first)? *)
      let cols = List.map Value.to_int (Value.to_list board) in
      let col = Value.to_int col in
      let rec check d = function
        | [] -> true
        | c :: rest -> c <> col && abs (c - col) <> d && check (d + 1) rest
      in
      Value.bool (check 1 cols)
  | "min", [ a; b ] -> Value.int (min (Value.to_int a) (Value.to_int b))
  | "max", [ a; b ] -> Value.int (max (Value.to_int a) (Value.to_int b))
  | name, args ->
      error "unknown primitive %s/%d" name (List.length args)

(* --- interpretation inside a method --- *)

type env = {
  inst : instance;
  ctx : Ctx.t;
  msg : Message.t;
  mutable vars : (string * Value.t ref) list;
  state_names : string array;
}

let lookup_class inst name =
  match Hashtbl.find_opt inst.registry name with
  | Some cls -> cls
  | None -> error "unknown class %s" name

let state_index env name =
  let rec find i =
    if i >= Array.length env.state_names then None
    else if String.equal env.state_names.(i) name then Some i
    else find (i + 1)
  in
  find 0

let rec eval env (e : expr) : Value.t =
  match e with
  | E_unit -> Value.unit
  | E_int i -> Value.int i
  | E_bool b -> Value.bool b
  | E_str s -> Value.str s
  | E_self -> Value.addr (Ctx.self env.ctx)
  | E_node -> Value.int (Ctx.node_id env.ctx)
  | E_nodes -> Value.int (Ctx.node_count env.ctx)
  | E_var x -> (
      match List.assoc_opt x env.vars with
      | Some r -> !r
      | None -> (
          match state_index env x with
          | Some i -> Ctx.get env.ctx i
          | None -> error "unbound variable %s" x))
  | E_list es -> Value.list (List.map (eval env) es)
  | E_binop (op, a, b) ->
      Ctx.charge env.ctx 2;
      eval_binop op (eval env a) (fun () -> eval env b)
  | E_unop (op, a) ->
      Ctx.charge env.ctx 1;
      eval_unop op (eval env a)
  | E_prim ("random", [ bound ]) ->
      Value.int (Ctx.random env.ctx (Value.to_int (eval env bound)))
  | E_prim (name, args) ->
      Ctx.charge env.ctx 2;
      eval_prim_pure name (List.map (eval env) args)
  | E_new { cls; args; where } -> (
      let cls = lookup_class env.inst cls in
      let args = List.map (eval env) args in
      match where with
      | W_local -> Value.addr (Ctx.create_local env.ctx cls args)
      | W_remote -> Value.addr (Ctx.create_remote env.ctx cls args)
      | W_on node_expr ->
          let target =
            ((Value.to_int (eval env node_expr) mod Ctx.node_count env.ctx)
            + Ctx.node_count env.ctx)
            mod Ctx.node_count env.ctx
          in
          Value.addr (Ctx.create_on env.ctx ~target cls args))
  | E_send_now { target; pattern; args } ->
      let target = Value.to_addr (eval env target) in
      let args = List.map (eval env) args in
      Ctx.send_now env.ctx target (pat pattern ~arity:(List.length args)) args
  | E_send_future { target; pattern; args } ->
      let target = Value.to_addr (eval env target) in
      let args = List.map (eval env) args in
      let f =
        Ctx.send_future env.ctx target
          (pat pattern ~arity:(List.length args))
          args
      in
      (* A future is represented in the script as its reply-destination
         address; touch recognises it. *)
      Value.addr (Ctx.future_addr f)
  | E_touch e -> (
      let addr = Value.to_addr (eval env e) in
      match Ctx.future_of_addr env.ctx addr with
      | f -> Ctx.touch env.ctx f
      | exception Invalid_argument m -> error "%s" m)

(* Futures in scripts: the address identifies the reply destination; we
   keep a side table per env so touch can find the handle. *)
and exec env (s : stmt) : unit =
  match s with
  | S_let (x, e) ->
      let v = eval env e in
      env.vars <- (x, ref v) :: env.vars
  | S_assign (x, e) -> (
      let v = eval env e in
      match List.assoc_opt x env.vars with
      | Some r -> r := v
      | None -> (
          match state_index env x with
          | Some i -> Ctx.set env.ctx i v
          | None -> error "assignment to unbound variable %s" x))
  | S_send { target; pattern; args } ->
      let target = Value.to_addr (eval env target) in
      let args = List.map (eval env) args in
      Ctx.send env.ctx target (pat pattern ~arity:(List.length args)) args
  | S_reply e -> Ctx.reply env.ctx env.msg (eval env e)
  | S_print e ->
      Buffer.add_string env.inst.out
        (Format.asprintf "%a@." Value.pp (eval env e))
  | S_charge e -> Ctx.charge env.ctx (Value.to_int (eval env e))
  | S_retire -> Ctx.retire env.ctx
  | S_if (cond, then_, else_) ->
      Ctx.charge env.ctx 2;
      exec_block env (if Value.to_bool (eval env cond) then then_ else else_)
  | S_while (cond, body) ->
      let rec loop () =
        Ctx.charge env.ctx 2;
        if Value.to_bool (eval env cond) then begin
          exec_block env body;
          loop ()
        end
      in
      loop ()
  | S_for { var; from_; to_; body } ->
      let lo = Value.to_int (eval env from_) in
      let hi = Value.to_int (eval env to_) in
      let cell = ref (Value.int lo) in
      env.vars <- (var, cell) :: env.vars;
      for i = lo to hi do
        Ctx.charge env.ctx 2;
        cell := Value.int i;
        exec_block env body
      done
  | S_wait arms ->
      let patterns =
        List.map (fun a -> pat a.w_pattern ~arity:(List.length a.w_params)) arms
      in
      let m = Ctx.wait_for env.ctx patterns in
      let arm =
        List.nth arms
          (let rec index i = function
             | [] -> error "wait: no arm matched"
             | p :: _ when p = m.Message.pattern -> i
             | _ :: rest -> index (i + 1) rest
           in
           index 0 patterns)
      in
      let saved = env.vars in
      List.iteri
        (fun i param ->
          env.vars <- (param, ref (Message.arg m i)) :: env.vars)
        arm.w_params;
      exec_block env arm.w_body;
      env.vars <- saved
  | S_expr e -> ignore (eval env e)

and exec_block env block =
  (* [let] bindings are scoped to their block. *)
  let saved = env.vars in
  List.iter (exec env) block;
  env.vars <- saved

(* --- class compilation --- *)

let compile_method inst state_names (m : method_def) =
  let arity = List.length m.m_params in
  let impl ctx msg =
    let env = { inst; ctx; msg; vars = []; state_names } in
    List.iteri
      (fun i param -> env.vars <- (param, ref (Message.arg msg i)) :: env.vars)
      m.m_params;
    exec_block env m.m_body
  in
  (pat m.m_pattern ~arity, impl)

let compile_class inst (c : class_def) =
  let state_names = Array.of_list (List.map fst c.c_state) in
  let inits = List.map snd c.c_state in
  let n_params = List.length c.c_params in
  let cls_init args =
    if List.length args <> n_params then
      error "class %s expects %d constructor argument(s), got %d" c.c_name
        n_params (List.length args);
    let bindings = List.combine c.c_params args in
    Array.of_list (List.map (eval_pure bindings) inits)
  in
  let seen = Hashtbl.create 8 in
  List.iter
    (fun m ->
      let key = (m.m_pattern, List.length m.m_params) in
      if Hashtbl.mem seen key then
        error "class %s: duplicate method %s" c.c_name m.m_pattern;
      Hashtbl.add seen key ())
    c.c_methods;
  let cls =
    Class_def.define ~name:c.c_name ~state:state_names ~init:cls_init
      ~methods:(List.map (compile_method inst state_names) c.c_methods)
      ()
  in
  (match c.c_ma with
  | None -> ()
  | Some ma ->
      (* Selective reception would displace the admission table at run
         time; reject the combination while compiling the script. *)
      let rec block_waits b = List.exists stmt_waits b
      and stmt_waits = function
        | S_wait _ -> true
        | S_if (_, t, e) -> block_waits t || block_waits e
        | S_while (_, b) -> block_waits b
        | S_for { body; _ } -> block_waits body
        | _ -> false
      in
      List.iter
        (fun m ->
          if block_waits m.m_body then
            error "class %s: method %s uses wait, which a multiactive class \
                   cannot"
              c.c_name m.m_pattern)
        c.c_methods;
      (* A group member names every arity of that method. *)
      let resolve gname name =
        let pats =
          List.filter_map
            (fun m ->
              if String.equal m.m_pattern name then
                Some (pat m.m_pattern ~arity:(List.length m.m_params))
              else None)
            c.c_methods
        in
        if pats = [] then
          error "class %s: group %s lists %s, which is not a method" c.c_name
            gname name;
        pats
      in
      let groups =
        List.map
          (fun (g, names) -> (g, List.concat_map (resolve g) names))
          ma.ma_groups
      in
      (try
         Class_def.set_multiactive cls ~budget:ma.ma_budget
           ~compatible:ma.ma_compatible ~groups ()
       with Invalid_argument m -> error "%s" m));
  cls

let compile (program : Ast.program) =
  let inst =
    { registry = Hashtbl.create 16; out = Buffer.create 256; program }
  in
  List.iter
    (fun c ->
      if Hashtbl.mem inst.registry c.c_name then
        error "duplicate class %s" c.c_name;
      Hashtbl.replace inst.registry c.c_name (compile_class inst c))
    program.p_classes;
  inst

let classes inst = Hashtbl.fold (fun _ c acc -> c :: acc) inst.registry []

let boot ?machine_config ?rt_config ~nodes inst =
  let sys =
    System.boot ?machine_config ?rt_config ~nodes ~classes:(classes inst) ()
  in
  List.iter
    (fun b ->
      let cls = lookup_class inst b.b_class in
      let ctor_args = List.map (eval_pure []) b.b_args in
      let node = ((b.b_node mod nodes) + nodes) mod nodes in
      let addr = System.create_root sys ~node cls ctor_args in
      let msg_args = List.map (eval_pure []) b.b_msg_args in
      System.send_boot sys addr
        (pat b.b_pattern ~arity:(List.length msg_args))
        msg_args)
    inst.program.p_boots;
  sys

let output inst = Buffer.contents inst.out

let run_source ?machine_config ?rt_config ?(nodes = 4) source =
  let program = Parser.parse_program source in
  let inst = compile program in
  let sys = boot ?machine_config ?rt_config ~nodes inst in
  System.run sys;
  (output inst, sys)
