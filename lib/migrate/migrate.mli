(** Runtime object migration with forwarding mail addresses (the
    paper's Section 5.2 future work).

    A mail address stays the object's immutable canonical identity; the
    physical record moves. Migration is a three-phase protocol over
    Category-4 Service active messages — freeze at a safe point,
    serialise state + pending frames through {!Core.Codec}, reinstall on
    the target — leaving behind a forwarding-stub VFT whose every entry
    re-posts toward the new home. Per-node location caches learn new
    addresses from piggybacked updates; at install the new home
    proactively retargets every older stub, so steady-state forwarding
    chains have length at most 1.

    Guarantees (with or without a fault plan underneath): every sent
    message is dispatched exactly once at the object's final home, and
    FIFO is preserved per sender-receiver pair — enforced by
    per-[(sender node, object)] sequence stamping with a reorder gate
    that travels with the object. *)

module Policy = Policy
(** Re-export: the library's main module hides its siblings, so this is
    the public path to the policy types. *)

type t

val attach :
  ?policy:Policy.t ->
  ?interval_ns:int ->
  ?load:Services.Load.t ->
  Core.System.t ->
  t
(** Installs the migration hooks on a booted system and registers the
    three Service handlers. With [policy] and a positive [interval_ns],
    every node runs the policy once per synchronized round on that
    period (paced on the busiest node's clock; rounds stop re-arming
    once the application stops making progress). [load] supplies
    gossip-observed neighbour loads to [Load_threshold] policies —
    attach a {!Services.Load.t} (ideally with auto-gossip, see
    [rt_config.gossip_interval_ns]) and pass it here. Without it,
    neighbour loads read as unknown and load-threshold never fires.

    Attaching changes scheduling of inter-node sends (they travel as
    sequenced [M_msg] Service messages); a system without an attached
    migration subsystem is bit-identical to the seed runtime. *)

val move : t -> canon:Core.Value.addr -> to_:int -> bool
(** Manually migrate the object with the given mail address to node
    [to_]. Locates the current host by following stubs, then freezes at
    a safe point. Returns [false] when the object is already there, is
    mid-method, has a suspended context, or cannot be found. Call at
    engine level (e.g. from {!Machine.Engine.schedule_at}), never from
    inside a running method of the object itself. *)

val locate : t -> Core.Value.addr -> int
(** Current host node of the object (its canonical node if unknown). *)

(** {2 Introspection} *)

val migrations : t -> int
(** Completed freezes ("migrate.out"). *)

val forwarded : t -> int
(** Messages re-posted by forwarding stubs ("migrate.forward"). *)

val colocated_sends : t -> int
(** Sends whose remote-looking target was physically local — the
    payoff of affinity migration. *)

val max_hop_seen : t -> int
(** Largest forwarding hop count observed on any delivered message. *)

val stub_count : t -> node:int -> int
(** Live forwarding stubs resident on the node. *)

val max_stub_chain : t -> int
(** Structural forwarding-chain length: from every live stub, hops to
    the node actually hosting its object. The install-time update
    broadcast keeps this at <= 1 once the machine quiesces. *)

val readvertise : t -> node:int -> int
(** Crash-recovery repair: re-sends the install-time location update
    ([M_update]) for every object resident on [node] that has migrated
    at least once, to each host in its migration history. Idempotent —
    updates are epoch-guarded, so hosts that already know the epoch
    ignore them — and repairs forwarding chains (or stale caches) that
    still point through a node that died holding the original
    broadcast. Counted under the ["migrate.readvertise"] stat; returns
    the number of updates sent. *)

val residual : t -> int * int
(** [(held, limbo)] messages still parked in reorder gates / limbo
    buffers. Both must be 0 at quiescence — anything else is a lost
    message (conservation check for tests). *)

(** {2 Distributed-GC integration}

    The collector (lib/dgc) reclaims objects whose remote-reference
    count drained. For an object that migrated, that means recalling the
    record home hop by hop, then dismantling the forwarding chain it
    left behind. These entry points give the collector exactly the
    handles it needs without exposing the subsystem's tables. *)

val evict :
  t -> node:int -> canon:Core.Value.addr -> [ `Moved | `Stub of int | `Absent | `Busy ]
(** One recall step on the given node: migrate the resident object one
    hop toward its canonical home. [`Stub next] — only a forwarding stub
    lives here, chase [next]; [`Moved] — the object is now home (or the
    freeze was issued); [`Busy] — present but not at a safe point, retry
    on a later sweep; [`Absent] — no trace here. *)

val history : t -> canon:Core.Value.addr -> int list
(** Previous hosts still holding forwarding stubs for the object, read
    at its current residence. *)

val resident_epoch : t -> canon:Core.Value.addr -> int
(** The object's current migration epoch (0 if it never moved). *)

val drop_stub :
  t -> node:int -> canon:Core.Value.addr -> epoch:int -> Core.Kernel.obj option
(** Removes the node's forwarding stub for [canon], but only while its
    epoch is at most [epoch] — a newer stub belongs to a later life of
    the object and survives. Returns the removed record so the caller
    can recycle its physical slot. *)

val forget : t -> canon:Core.Value.addr -> unit
(** Erases the address from every node's sequence, cache, gate, residency
    and limbo tables. Only sound at scion zero (no surviving reference
    can stamp another message); required before the slot is reused, or
    stale sequence counters would wedge the next tenant's reorder gate.
    Stands in for the reclaim protocol's forget broadcast. *)

val parked_refs : t -> node:int -> Core.Value.t list
(** GC roots parked inside the subsystem on this node: messages held in
    reorder gates or limbo buffers (plus the addresses of the objects
    they await), invisible to an object-table trace. *)

(** {2 Internals exposed for tests} *)

val policy_tick : t -> node:int -> int
(** Runs the attached policy once on the node; returns moves made. *)
