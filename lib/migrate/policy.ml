(** Pure decision logic of the migration policies. The driver in
    {!Migrate} builds a {!view} of one node per policy tick and applies
    the decisions it gets back; nothing here touches the runtime. *)

type candidate = {
  cand_canon : Core.Value.addr;  (** the object's (immutable) mail address *)
  cand_queued : int;  (** buffered frames waiting in its message queue *)
  cand_dominant_peer : int option;
      (** node that sent it the most sequenced messages, if any *)
  cand_dominant_count : int;
  cand_total_recv : int;
}

type view = {
  v_node : int;
  v_load : int;  (** this node's instantaneous load (runq + inbox) *)
  v_neighbors : (int * int option) list;
      (** torus neighbours with their last gossiped load ([None] =
          never heard — unknown, not zero) *)
  v_candidates : candidate list;  (** safe-point residents, movable now *)
}

type decision = { d_canon : Core.Value.addr; d_to : int }

type t =
  | Load_threshold of { factor : float; min_queue : int; max_moves : int }
      (** push work away when our load exceeds the least-loaded known
          neighbour by [factor]; only objects with at least [min_queue]
          buffered frames are worth the freight *)
  | Affinity_pull of { min_msgs : int; max_moves : int }
      (** co-locate an object with its dominant correspondent once that
          peer accounts for a strict majority of at least [min_msgs]
          received messages *)
  | Custom of (view -> decision list)

let take n xs =
  let rec go n = function
    | x :: rest when n > 0 -> x :: go (n - 1) rest
    | _ -> []
  in
  go n xs

let decide policy view =
  match policy with
  | Custom f -> f view
  | Load_threshold { factor; min_queue; max_moves } -> (
      let known =
        List.filter_map
          (fun (n, l) -> Option.map (fun l -> (l, n)) l)
          view.v_neighbors
      in
      match List.sort compare known with
      | [] -> []  (* no neighbour load known: stay put *)
      | (least_load, _) :: _ as sorted ->
          if float_of_int view.v_load > factor *. float_of_int least_load
          then
            (* Scatter round-robin over every neighbour light enough to
               justify the freight (least-loaded first). Sending the
               whole batch to the single least-loaded node just makes it
               the next hot spot and the work sloshes back and forth. *)
            let targets =
              List.filter_map
                (fun (l, n) ->
                  if float_of_int view.v_load > factor *. float_of_int l
                  then Some n
                  else None)
                sorted
            in
            let k = List.length targets in
            view.v_candidates
            |> List.filter (fun c -> c.cand_queued >= min_queue)
            |> List.sort (fun a b -> compare b.cand_queued a.cand_queued)
            |> take max_moves
            |> List.mapi (fun i c ->
                   { d_canon = c.cand_canon; d_to = List.nth targets (i mod k) })
          else [])
  | Affinity_pull { min_msgs; max_moves } ->
      view.v_candidates
      |> List.filter_map (fun c ->
             match c.cand_dominant_peer with
             | Some peer
               when peer < view.v_node
                    && c.cand_dominant_count >= min_msgs
                    && 2 * c.cand_dominant_count > c.cand_total_recv ->
                 (* [peer < v_node], not just [<>]: mutual (or circular)
                    affinity would otherwise have both correspondents
                    move toward each other in the same window and swap
                    places forever. Pulling only toward lower node ids
                    is the usual global-order symmetry breaker — any
                    pursuit chain terminates at its minimum node. *)
                 Some { d_canon = c.cand_canon; d_to = peer }
             | _ -> None)
      |> take max_moves
