(** Object migration over Category-4 Service active messages.

    The paper (Section 5.2) fixes an object's mail address as an
    immutable [(node, pointer)] pair and leaves relocation as future
    work. This subsystem supplies it without ever changing a mail
    address: the pair stays the object's {e canonical} identity for its
    whole life, and migration only moves the physical record, leaving a
    {e forwarding stub} behind — a one-entry VFT whose every dispatch
    re-posts the message toward the current home (the multiple-VFT
    trick again: senders never test for "moved").

    Protocol (three phases, all on Service AMs, riding the reliable
    layer when a fault plan is live):

    + {b freeze} — at a safe point (no live context: dormant/init, or
      active-with-queued-frames-only) the source serialises the state
      box, pending constructor arguments and buffered frames through
      {!Core.Codec}, swaps the record's VFT for a forwarding stub, and
      ships an [M_install].
    + {b install} — the target materialises the record under a locally
      allocated slot (or revives its old stub when the object returns),
      re-schedules carried frames, and answers every {e previous} host
      with an [M_update], so each old stub is retargeted to the final
      home — steady-state forwarding chains have length <= 1.
    + {b forward/teach} — a message reaching a stub is re-posted one
      hop and the {e original sender} is taught the new address with a
      piggybacked [M_update]; its per-node location cache then sends
      the next message directly (path compression).

    End-to-end FIFO per sender-receiver pair survives arbitrary
    migration interleavings by per-[(sender node, canonical address)]
    sequence stamping with a receiver-side reorder gate that travels
    with the object. Exactly-once follows from the per-hop reliable
    layer plus single-forwarding per stub visit. *)

module Policy = Policy
module Engine = Machine.Engine
module Kernel = Core.Kernel
module Value = Core.Value
module Sched = Core.Sched
module Vft = Core.Vft
module Codec = Core.Codec
module Message = Core.Message
module Cost_model = Machine.Cost_model

type Machine.Am.payload +=
  | M_msg of {
      canon : Value.addr;
      sender : int;  (** originating node (not the forwarding hop) *)
      seq : int;  (** per (sender, canon) sequence number *)
      hop : int;
      bytes : Bytes.t;  (** codec-encoded message *)
    }
  | M_install of {
      canon : Value.addr;
      cls_id : int;
      epoch : int;  (** migration count of this object, orders updates *)
      initialized : bool;
      state : Bytes.t;  (** codec-encoded state box (tuple) *)
      ctor : Bytes.t;  (** codec-encoded pending constructor args *)
      frames : Bytes.t list;  (** codec-encoded buffered frames, in order *)
      expected : (int * int) list;  (** reorder-gate positions per sender *)
      history : int list;  (** all previous hosts still holding stubs *)
      gc_refs : Message.gc_ref list;
          (** reference manifest for addresses in the state box and
              constructor arguments (empty without a distributed GC) *)
    }
  | M_update of { canon : Value.addr; phys : Value.addr; epoch : int }

type gate = {
  g_expected : (int, int) Hashtbl.t;  (** sender node -> next expected seq *)
  g_held : (int * int, Message.t) Hashtbl.t;  (** (sender, seq) -> held msg *)
}

type resident = {
  mutable r_epoch : int;
  mutable r_history : int list;  (** previous hosts, oldest first *)
  r_recv : (int, int) Hashtbl.t;  (** sender node -> sequenced receipts *)
  r_seen : (int, int) Hashtbl.t;
      (** receipts already consumed by earlier policy ticks — affinity
          judges each tick on the traffic since the previous one, so a
          correspondent that has since moved (or been co-located) stops
          reading as a remote attractor *)
}

type nstate = {
  ns_homes : (int * int, Kernel.obj) Hashtbl.t;
      (** canonical key -> local record of an immigrant (live or its
          left-behind stub); natives resolve through the object table *)
  ns_res : (int * int, resident) Hashtbl.t;  (** live objects hosted here *)
  ns_gates : (int * int, gate) Hashtbl.t;
  ns_limbo : (int * int, (int * int * int * Message.t) list ref) Hashtbl.t;
      (** messages that beat the install to a new home:
          (sender, seq, hop, msg), drained at install *)
  ns_seq_out : (int * int, int ref) Hashtbl.t;  (** canon -> next seq out *)
  ns_cache : (int * int, Value.addr * int) Hashtbl.t;
      (** location cache: canon -> best-known physical home + epoch *)
}

type t = {
  sys : Core.System.t;
  machine : Engine.t;
  h_msg : int;
  h_install : int;
  h_update : int;
  states : nstate array;
  policy : Policy.t option;
  interval_ns : int;
  load : Services.Load.t option;
  c_out : Simcore.Stats.cell;
  c_in : Simcore.Stats.cell;
  c_fwd : Simcore.Stats.cell;
  c_fwd_node : Simcore.Stats.cell array;
  c_update : Simcore.Stats.cell;
  c_held : Simcore.Stats.cell;
  c_limbo : Simcore.Stats.cell;
  c_dup : Simcore.Stats.cell;
  c_colocated : Simcore.Stats.cell;
  mutable hop_max : int;
}

let key (a : Value.addr) = (a.Value.node, a.Value.slot)

let rt_of t node = Core.System.rt t.sys (Machine.Node.id node)
let nstate_of t my_id = t.states.(my_id)

(* --- safe points ------------------------------------------------- *)

(* An object is movable iff no context can ever resume into its record:
   dormant/init quiescent objects trivially; an active-mode object only
   when its remaining work is entirely queued frames (in_sched_q). An
   active object NOT in the scheduling queue has a suspended context
   somewhere — selective reception, a now-type wait parked on a reply
   destination, a chunk stall, or a pending preemption resume — and
   moving the record would strand that continuation. *)
let safe_point shared (obj : Kernel.obj) =
  Option.is_some obj.Kernel.cls
  && (not (Kernel.is_reply_dest shared obj))
  && Option.is_none obj.Kernel.blocked
  &&
  match obj.Kernel.vftp.Kernel.vft_kind with
  | Kernel.Vft_dormant | Kernel.Vft_init -> true
  | Kernel.Vft_active -> obj.Kernel.in_sched_q
  | Kernel.Vft_multiactive -> (
      (* Movable once the running set is empty: group-queued messages
         and scheduling-queue frames are just data and travel with the
         object, but a live activation has stack frames here. *)
      match obj.Kernel.ma with
      | None -> true
      | Some m -> m.Kernel.mar_count = 0)
  | Kernel.Vft_waiting _ | Kernel.Vft_fault | Kernel.Vft_forward _ -> false

(* --- sequencing and the reorder gate ------------------------------ *)

let next_seq t my_id canon =
  let ns = nstate_of t my_id in
  let cell =
    match Hashtbl.find_opt ns.ns_seq_out (key canon) with
    | Some r -> r
    | None ->
        let r = ref 0 in
        Hashtbl.add ns.ns_seq_out (key canon) r;
        r
  in
  let s = !cell in
  incr cell;
  s

let gate_for ns canon =
  match Hashtbl.find_opt ns.ns_gates (key canon) with
  | Some g -> g
  | None ->
      let g = { g_expected = Hashtbl.create 4; g_held = Hashtbl.create 4 } in
      Hashtbl.add ns.ns_gates (key canon) g;
      g

let expected g sender =
  Option.value (Hashtbl.find_opt g.g_expected sender) ~default:0

(* Created lazily on the first sequenced receipt, so affinity statistics
   accumulate for objects that have never migrated too. *)
let note_recv ns canon sender =
  let r =
    match Hashtbl.find_opt ns.ns_res (key canon) with
    | Some r -> r
    | None ->
        let r = { r_epoch = 0; r_history = []; r_recv = Hashtbl.create 4;
                r_seen = Hashtbl.create 4 } in
        Hashtbl.add ns.ns_res (key canon) r;
        r
  in
  Hashtbl.replace r.r_recv sender
    (1 + Option.value (Hashtbl.find_opt r.r_recv sender) ~default:0)

(* Deliver [msg] if it is the next in the sender's sequence, else hold
   it. Releasing may run whole method cascades which re-enter this gate
   (a cascade can send to the same object), so the expected counter is
   advanced *before* delivery and re-read from the table around every
   release. *)
let gate_submit t rt (obj : Kernel.obj) ~sender ~seq msg =
  let my_id = Machine.Node.id rt.Kernel.node in
  let ns = nstate_of t my_id in
  let g = gate_for ns obj.Kernel.self in
  let deliver msg =
    note_recv ns obj.Kernel.self sender;
    Sched.local_deliver ~origin:`Remote rt obj msg
  in
  let exp = expected g sender in
  if seq < exp then Simcore.Stats.bump t.c_dup
  else if seq > exp then begin
    Hashtbl.replace g.g_held (sender, seq) msg;
    Simcore.Stats.bump t.c_held
  end
  else begin
    Hashtbl.replace g.g_expected sender (exp + 1);
    deliver msg;
    let rec release () =
      let exp = expected g sender in
      match Hashtbl.find_opt g.g_held (sender, exp) with
      | Some msg ->
          Hashtbl.remove g.g_held (sender, exp);
          Hashtbl.replace g.g_expected sender (exp + 1);
          deliver msg;
          release ()
      | None -> ()
    in
    release ()
  end

(* --- transmission ------------------------------------------------- *)

let send_m_msg t rt ~dst ~canon ~sender ~seq ~hop msg =
  let bytes = Codec.encode_message msg in
  Engine.send_am t.machine ~src:rt.Kernel.node ~dst ~handler:t.h_msg
    ~size_bytes:(Bytes.length bytes + 20)
    (M_msg { canon; sender; seq; hop; bytes })

let send_update t rt ~dst ~canon ~phys ~epoch =
  Engine.send_am t.machine ~src:rt.Kernel.node ~dst ~handler:t.h_update
    ~size_bytes:24
    (M_update { canon; phys; epoch })

(* Reference-manifest custody (distributed GC). A message's [gc_refs]
   carry weight for the addresses it contains while in flight; custody
   is taken (credited and stripped) exactly once when a node accepts the
   message — on gate submission, limbo parking or install — and a fresh
   manifest is minted whenever the message leaves custody again. A stub
   forward keeps the embedded manifest untouched: the message only
   passes through. *)
let grant_out rt (msg : Message.t) =
  match rt.Kernel.shared.Kernel.gc with
  | Some g ->
      msg.Message.gc_refs <-
        g.Kernel.gc_grant rt msg.Message.args msg.Message.reply
  | None -> ()

let accept_in rt (msg : Message.t) =
  match rt.Kernel.shared.Kernel.gc with
  | Some g when msg.Message.gc_refs <> [] ->
      g.Kernel.gc_accept rt msg.Message.gc_refs;
      msg.Message.gc_refs <- []
  | _ -> ()

let cache_learn ns canon phys epoch =
  match Hashtbl.find_opt ns.ns_cache (key canon) with
  | Some (_, e) when e >= epoch -> ()
  | _ -> Hashtbl.replace ns.ns_cache (key canon) (phys, epoch)

(* A message hit a forwarding stub: re-post one hop toward the stub's
   best-known home and teach the original sender the new address, so
   its next message travels directly (path compression). *)
let forward_via_stub t rt (f : Kernel.fwd) ~sender ~seq ~hop msg =
  let my_id = Machine.Node.id rt.Kernel.node in
  if hop > 4 * Engine.node_count t.machine then
    failwith "Migrate: forwarding loop detected";
  Kernel.charge rt (Engine.cost t.machine).Cost_model.migrate_forward;
  Simcore.Stats.bump t.c_fwd;
  Simcore.Stats.bump t.c_fwd_node.(my_id);
  t.hop_max <- max t.hop_max hop;
  cache_learn (nstate_of t my_id) f.Kernel.fwd_canon f.Kernel.fwd_to
    f.Kernel.fwd_epoch;
  send_m_msg t rt ~dst:f.Kernel.fwd_to.Value.node ~canon:f.Kernel.fwd_canon
    ~sender ~seq ~hop msg;
  if sender <> my_id then
    send_update t rt ~dst:sender ~canon:f.Kernel.fwd_canon
      ~phys:f.Kernel.fwd_to ~epoch:f.Kernel.fwd_epoch

(* --- the runtime hooks (Kernel.migration) ------------------------- *)

(* Remote send takeover: resolve the canonical address through the
   location cache (or detect that the object actually lives here),
   stamp the per-(node, object) sequence number, transmit. *)
let mig_send t rt (canon : Value.addr) msg =
  let my_id = Machine.Node.id rt.Kernel.node in
  let ns = nstate_of t my_id in
  let c = Engine.cost t.machine in
  let seq = next_seq t my_id canon in
  match Hashtbl.find_opt ns.ns_homes (key canon) with
  | Some obj -> (
      match Vft.forward_info obj.Kernel.vftp with
      | Some f ->
          Kernel.charge rt c.Cost_model.msg_setup_send;
          grant_out rt msg;
          forward_via_stub t rt f ~sender:my_id ~seq ~hop:1 msg
      | None ->
          (* Physically co-located despite the remote mail address: the
             whole point of affinity migration — no fabric traversal, so
             no NIC setup either; only the residency lookup is paid. *)
          Kernel.charge rt c.Cost_model.check_locality;
          Simcore.Stats.bump t.c_colocated;
          gate_submit t rt obj ~sender:my_id ~seq msg)
  | None ->
      Kernel.charge rt c.Cost_model.msg_setup_send;
      Kernel.bump (Kernel.ctrs rt).Kernel.c_send_remote;
      let dst =
        match Hashtbl.find_opt ns.ns_cache (key canon) with
        | Some (phys, _) when phys.Value.node <> my_id -> phys.Value.node
        | _ -> canon.Value.node
      in
      grant_out rt msg;
      send_m_msg t rt ~dst ~canon ~sender:my_id ~seq ~hop:0 msg

(* Local dispatch reached a stub (the object's canonical node after it
   emigrated): stamp and forward. *)
let mig_forward t rt (obj : Kernel.obj) msg =
  let my_id = Machine.Node.id rt.Kernel.node in
  match Vft.forward_info obj.Kernel.vftp with
  | Some f ->
      let seq = next_seq t my_id f.Kernel.fwd_canon in
      grant_out rt msg;
      forward_via_stub t rt f ~sender:my_id ~seq ~hop:1 msg
  | None -> assert false

(* Local delivery to a physically present object. Once this node has
   ever stamped messages for the object (it was remote at some point),
   local sends must keep using the same sequence space or they could
   overtake still-in-flight stamped messages; otherwise the ungated
   fast path is untouched. *)
let mig_gate_local t rt (obj : Kernel.obj) msg =
  let my_id = Machine.Node.id rt.Kernel.node in
  let ns = nstate_of t my_id in
  match Hashtbl.find_opt ns.ns_seq_out (key obj.Kernel.self) with
  | None -> false
  | Some cell ->
      let seq = !cell in
      incr cell;
      gate_submit t rt obj ~sender:my_id ~seq msg;
      true

let mig_retire t rt (obj : Kernel.obj) =
  let my_id = Machine.Node.id rt.Kernel.node in
  let ns = nstate_of t my_id in
  Hashtbl.remove ns.ns_res (key obj.Kernel.self);
  Hashtbl.remove ns.ns_gates (key obj.Kernel.self)

(* --- freeze (phase 1) --------------------------------------------- *)

let resident_meta ns canon =
  match Hashtbl.find_opt ns.ns_res (key canon) with
  | Some r -> r
  | None ->
      let r = { r_epoch = 0; r_history = []; r_recv = Hashtbl.create 4;
                r_seen = Hashtbl.create 4 } in
      Hashtbl.add ns.ns_res (key canon) r;
      r

let rec do_move t rt (obj : Kernel.obj) ~to_ =
  let my_id = Machine.Node.id rt.Kernel.node in
  let p = Engine.node_count t.machine in
  if to_ < 0 || to_ >= p || to_ = my_id then false
  else if not (safe_point rt.Kernel.shared obj) then begin
    (* A multiactive object busy only because activations are running
       starts draining: admission stops, and the freeze retries the
       instant the running set empties. Any other unsafe reason stays a
       plain refusal. *)
    (match (obj.Kernel.vftp.Kernel.vft_kind, obj.Kernel.ma) with
    | Kernel.Vft_multiactive, Some m
      when m.Kernel.mar_count > 0 && not m.Kernel.mar_draining ->
        m.Kernel.mar_draining <- true;
        m.Kernel.mar_on_drained <-
          Some
            (fun () ->
              m.Kernel.mar_draining <- false;
              let moved = do_move t rt obj ~to_ in
              (* If the retry was refused (e.g. the target vanished from
                 the valid range) the object stays home and parked
                 messages must flow again. *)
              if (not moved) && m.Kernel.mar_queued > 0 then
                Sched.schedule_ma_pump rt obj)
    | _ -> ());
    false
  end
  else begin
    let ns = nstate_of t my_id in
    let canon = obj.Kernel.self in
    let c = Engine.cost t.machine in
    let res = resident_meta ns canon in
    let epoch = res.r_epoch + 1 in
    let history =
      List.filter
        (fun n -> n <> to_)
        (List.sort_uniq compare (my_id :: res.r_history))
    in
    (* Serialise through the codec: proves the state is genuinely
       shippable and gives the install message its wire size. *)
    let state = Codec.value_to_bytes (Value.Tuple (Array.to_list obj.Kernel.state)) in
    let ctor = Codec.value_to_bytes (Value.Tuple obj.Kernel.pending_ctor_args) in
    (* Every address leaving in the state box, constructor arguments or
       buffered frames gets a fresh manifest: the records travel with
       their own weight, so a crash of this stub cannot strand counts. *)
    let gc_refs =
      match rt.Kernel.shared.Kernel.gc with
      | Some g ->
          g.Kernel.gc_grant rt
            (Array.to_list obj.Kernel.state @ obj.Kernel.pending_ctor_args)
            None
      | None -> []
    in
    (* A quiescent multiactive object may still hold admission-parked
       messages on its group queues; flatten them behind the buffered
       frames in arrival order (the stamps restore the cross-group
       interleaving) so they travel with the object and re-enter
       admission at the new home. *)
    (match obj.Kernel.ma with
    | Some m when m.Kernel.mar_queued > 0 ->
        let parked = ref [] in
        Array.iter
          (fun q ->
            Queue.iter (fun sm -> parked := sm :: !parked) q;
            Queue.clear q)
          m.Kernel.mar_queues;
        List.iter
          (fun (_, msg) -> Queue.push msg obj.Kernel.mq)
          (List.sort compare !parked);
        m.Kernel.mar_queued <- 0
    | _ -> ());
    let frames =
      Queue.fold
        (fun acc m ->
          grant_out rt m;
          Codec.encode_message m :: acc)
        [] obj.Kernel.mq
      |> List.rev
    in
    let words = Array.length obj.Kernel.state + Queue.length obj.Kernel.mq in
    Kernel.charge rt
      (c.Cost_model.migrate_freeze + (words * c.Cost_model.frame_store_per_word));
    let g_opt = Hashtbl.find_opt ns.ns_gates (key canon) in
    let expected =
      match g_opt with
      | Some g -> Hashtbl.fold (fun s e acc -> (s, e) :: acc) g.g_expected []
      | None -> []
    in
    let held =
      match g_opt with
      | Some g ->
          Hashtbl.fold (fun (s, q) m acc -> (s, q, m) :: acc) g.g_held []
          |> List.sort compare
      | None -> []
    in
    Hashtbl.remove ns.ns_gates (key canon);
    Hashtbl.remove ns.ns_res (key canon);
    (* The record stays in place as the forwarding stub; every closure
       or table still pointing at it now dispatches to [Forward]. *)
    let phys_hint = { Value.node = to_; slot = -1 } in
    let f =
      { Kernel.fwd_canon = canon; fwd_to = phys_hint; fwd_epoch = epoch }
    in
    obj.Kernel.vftp <- Vft.forward f;
    Queue.clear obj.Kernel.mq;
    obj.Kernel.state <- [||];
    obj.Kernel.pending_ctor_args <- [];
    obj.Kernel.ma <- None;
    obj.Kernel.exported <- true;
    cache_learn ns canon phys_hint epoch;
    Simcore.Stats.bump t.c_out;
    let size_bytes =
      Bytes.length state + Bytes.length ctor
      + List.fold_left (fun a b -> a + Bytes.length b) 0 frames
      + 32
    in
    Engine.send_am t.machine ~src:rt.Kernel.node ~dst:to_ ~handler:t.h_install
      ~size_bytes
      (M_install
         {
           canon;
           cls_id = (Kernel.obj_class obj).Kernel.cls_id;
           epoch;
           initialized = obj.Kernel.initialized;
           state;
           ctor;
           frames;
           expected;
           history;
           gc_refs;
         });
    (* Held (out-of-order) messages chase the install on the same FIFO
       channel, keeping their original stamps; the new gate re-holds
       them until their predecessors arrive. They were in this node's
       custody since the gate accepted them, so they leave with fresh
       manifests. *)
    List.iter
      (fun (sender, seq, m) ->
        grant_out rt m;
        send_m_msg t rt ~dst:to_ ~canon ~sender ~seq ~hop:1 m)
      held;
    true
  end

(* --- install (phase 2) -------------------------------------------- *)

let unpack_tuple bytes =
  match Codec.value_of_bytes bytes with
  | Value.Tuple vs -> vs
  | _ -> failwith "Migrate: malformed install payload"

let install t rt ~canon ~cls_id ~epoch ~initialized ~state ~ctor ~frames
    ~expected ~history ~gc_refs =
  let my_id = Machine.Node.id rt.Kernel.node in
  let ns = nstate_of t my_id in
  let c = Engine.cost t.machine in
  (match rt.Kernel.shared.Kernel.gc with
  | Some g when gc_refs <> [] -> g.Kernel.gc_accept rt gc_refs
  | _ -> ());
  let cls =
    match Hashtbl.find_opt rt.Kernel.shared.Kernel.classes cls_id with
    | Some cls -> cls
    | None -> failwith "Migrate: install of unregistered class"
  in
  let state = Array.of_list (unpack_tuple state) in
  Kernel.charge rt
    (c.Cost_model.migrate_install
    + (Array.length state * c.Cost_model.frame_store_per_word));
  Machine.Node.heap_alloc_words rt.Kernel.node (8 + Array.length state);
  (* Locate or materialise the physical record. Returning to a previous
     host (including the canonical node) revives the old stub record in
     place, so everything that still points at it sees the live object
     again. *)
  let obj =
    if canon.Value.node = my_id then Sched.lookup_or_embryo rt canon.Value.slot
    else
      match Hashtbl.find_opt ns.ns_homes (key canon) with
      | Some o -> o
      | None ->
          let slot = Sched.alloc_slot rt in
          let o =
            {
              Kernel.self = canon;
              phys_slot = slot;
              cls = None;
              state = [||];
              vftp = rt.Kernel.shared.Kernel.fault_tbl;
              mq = Queue.create ();
              in_sched_q = false;
              blocked = None;
              initialized = false;
              pending_ctor_args = [];
              exported = true;
              gc_pinned = false;
              ma = None;
            }
          in
          Hashtbl.replace rt.Kernel.objects slot o;
          Hashtbl.add ns.ns_homes (key canon) o;
          o
  in
  obj.Kernel.cls <- Some cls;
  obj.Kernel.state <- state;
  obj.Kernel.initialized <- initialized;
  obj.Kernel.pending_ctor_args <- unpack_tuple ctor;
  obj.Kernel.exported <- true;
  (* A fresh activation manager at the new home: a revived stub may
     carry pre-migration admission state that no longer applies. *)
  obj.Kernel.ma <- None;
  obj.Kernel.vftp <- Sched.rest_table obj;
  Queue.clear obj.Kernel.mq;
  List.iter
    (fun b ->
      let m = Codec.decode_message b in
      accept_in rt m;
      Queue.push m obj.Kernel.mq)
    frames;
  if not (Queue.is_empty obj.Kernel.mq) then Sched.schedule_pending rt obj;
  (* The reorder gate travels with the object. *)
  Hashtbl.remove ns.ns_gates (key canon);
  let g = gate_for ns canon in
  List.iter (fun (s, e) -> Hashtbl.replace g.g_expected s e) expected;
  let res =
    {
      r_epoch = epoch;
      r_history = history;
      r_recv = Hashtbl.create 4;
      r_seen = Hashtbl.create 4;
    }
  in
  Hashtbl.replace ns.ns_res (key canon) res;
  let phys = { Value.node = my_id; slot = obj.Kernel.phys_slot } in
  Hashtbl.replace ns.ns_cache (key canon) (phys, epoch);
  Simcore.Stats.bump t.c_in;
  (* Retarget every older stub at the new home in one shot, collapsing
     forwarding chains to a single hop at quiescence. *)
  List.iter
    (fun host ->
      if host <> my_id then send_update t rt ~dst:host ~canon ~phys ~epoch)
    history;
  (* Messages that arrived before we were ready. *)
  match Hashtbl.find_opt ns.ns_limbo (key canon) with
  | None -> ()
  | Some pending ->
      let msgs = List.rev !pending in
      Hashtbl.remove ns.ns_limbo (key canon);
      List.iter
        (fun (sender, seq, _hop, msg) -> gate_submit t rt obj ~sender ~seq msg)
        msgs

(* --- receive side ------------------------------------------------- *)

let on_m_msg t rt ~canon ~sender ~seq ~hop msg =
  let my_id = Machine.Node.id rt.Kernel.node in
  let ns = nstate_of t my_id in
  let record =
    if canon.Value.node = my_id then Some (Sched.lookup_or_embryo rt canon.Value.slot)
    else Hashtbl.find_opt ns.ns_homes (key canon)
  in
  match record with
  | Some obj -> (
      match Vft.forward_info obj.Kernel.vftp with
      | Some f -> forward_via_stub t rt f ~sender ~seq ~hop:(hop + 1) msg
      | None ->
          accept_in rt msg;
          gate_submit t rt obj ~sender ~seq msg)
  | None ->
      (* We were taught this home but the install is still in flight on
         another channel: park until it lands. Parking takes custody. *)
      accept_in rt msg;
      Simcore.Stats.bump t.c_limbo;
      let cell =
        match Hashtbl.find_opt ns.ns_limbo (key canon) with
        | Some r -> r
        | None ->
            let r = ref [] in
            Hashtbl.add ns.ns_limbo (key canon) r;
            r
      in
      cell := (sender, seq, hop, msg) :: !cell

let on_m_update t rt ~canon ~phys ~epoch =
  let my_id = Machine.Node.id rt.Kernel.node in
  let ns = nstate_of t my_id in
  Kernel.charge rt (Engine.cost t.machine).Cost_model.migrate_update;
  Simcore.Stats.bump t.c_update;
  cache_learn ns canon phys epoch;
  let record =
    if canon.Value.node = my_id then
      Hashtbl.find_opt rt.Kernel.objects canon.Value.slot
    else Hashtbl.find_opt ns.ns_homes (key canon)
  in
  match record with
  | Some obj -> (
      match Vft.forward_info obj.Kernel.vftp with
      | Some f when f.Kernel.fwd_epoch < epoch ->
          f.Kernel.fwd_to <- phys;
          f.Kernel.fwd_epoch <- epoch
      | _ -> ())
  | None -> ()

(* --- policy driver ------------------------------------------------ *)

let candidates t rt =
  let shared = rt.Kernel.shared in
  let my_id = Machine.Node.id rt.Kernel.node in
  let ns = nstate_of t my_id in
  Hashtbl.fold
    (fun _slot (obj : Kernel.obj) acc ->
      if safe_point shared obj && obj.Kernel.phys_slot >= 0 then begin
        (* Affinity is judged on the receipts since this node's previous
           tick (r_recv minus r_seen), then the window is consumed. A
           lifetime tally would keep pointing at a correspondent's old
           node long after it moved — paired objects would chase each
           other's stale locations and swap forever. *)
        let dom, total =
          match Hashtbl.find_opt ns.ns_res (key obj.Kernel.self) with
          | None -> (None, 0)
          | Some r ->
              let acc =
                Hashtbl.fold
                  (fun sender n (best, total) ->
                    let seen =
                      Option.value
                        (Hashtbl.find_opt r.r_seen sender)
                        ~default:0
                    in
                    let n = n - seen in
                    let best =
                      match best with
                      | Some (_, bn) when bn >= n -> best
                      | _ when n > 0 -> Some (sender, n)
                      | _ -> best
                    in
                    (best, total + n))
                  r.r_recv (None, 0)
              in
              Hashtbl.iter (fun s n -> Hashtbl.replace r.r_seen s n) r.r_recv;
              acc
        in
        {
          Policy.cand_canon = obj.Kernel.self;
          cand_queued = Queue.length obj.Kernel.mq;
          cand_dominant_peer = Option.map fst dom;
          cand_dominant_count =
            (match dom with Some (_, n) -> n | None -> 0);
          cand_total_recv = total;
        }
        :: acc
      end
      else acc)
    rt.Kernel.objects []

let view t ~node:my_id =
  let rt = Core.System.rt t.sys my_id in
  let node = rt.Kernel.node in
  let neighbors =
    Network.Topology.neighbors (Engine.topology t.machine) my_id
  in
  {
    Policy.v_node = my_id;
    v_load = Machine.Node.runq_size node + Machine.Node.inbox_size node;
    v_neighbors =
      List.map
        (fun nb ->
          ( nb,
            match t.load with
            | Some load -> Services.Load.known_load_opt load ~node:my_id ~about:nb
            | None -> None ))
        neighbors;
    v_candidates = candidates t rt;
  }

let find_local_record t rt canon =
  let my_id = Machine.Node.id rt.Kernel.node in
  if canon.Value.node = my_id then
    Hashtbl.find_opt rt.Kernel.objects canon.Value.slot
  else Hashtbl.find_opt (nstate_of t my_id).ns_homes (key canon)

let apply_decisions t rt decisions =
  List.fold_left
    (fun moved { Policy.d_canon; d_to } ->
      match find_local_record t rt d_canon with
      | Some obj when Option.is_none (Vft.forward_info obj.Kernel.vftp) ->
          if do_move t rt obj ~to_:d_to then moved + 1 else moved
      | _ -> moved)
    0 decisions

let policy_tick t ~node:my_id =
  match t.policy with
  | None -> 0
  | Some policy ->
      let rt = Core.System.rt t.sys my_id in
      Simcore.Clock.advance_to
        (Machine.Node.clock rt.Kernel.node)
        (Engine.now t.machine);
      apply_decisions t rt (Policy.decide policy (view t ~node:my_id))

(* Application progress, measured positively: object sends and
   creations the program itself performed. The subsystem's own Service
   traffic (M_msg / M_install / M_update, their reliable-layer acks)
   never bumps these counters, so it cannot keep its own timer alive —
   gating on [Engine.quiescent] or on reliable-layer in-flight counts
   would: each round's unacked install frames read as "busy" at the
   next round, which then moves an idle object again, forever. *)
let app_progress t =
  let get = Simcore.Stats.get (Engine.stats t.machine) in
  get "send.remote" + get "send.local.dormant" + get "send.local.active"
  + get "send.local.inlined"
  + get "send.local.naive_buffered"
  + get "send.local.depth_limited"
  + get "send.local.restore" + get "send.local.fault" + get "create.local"
  + get "create.remote"

(* Rounds whose progress delta is zero before the timer gives up. One
   quiet round is not enough: a retransmission gap can stall the
   application across a round with nothing new sent. Stopping early is
   harmless (a policy has nothing useful to do for a stalled or finished
   application); never stopping is a livelock. *)
let max_quiet_rounds = 4

(* One synchronized policy round per interval, paced on the busiest
   node's clock (a hybrid-scheduled cascade advances one clock by
   milliseconds within a single event; pacing on the event clock would
   run thousands of rounds per application slice). *)
let arm_policy_timers t =
  if t.interval_ns > 0 && Option.is_some t.policy then begin
    let p = Engine.node_count t.machine in
    let rec tick last_progress quiet () =
      let progress = app_progress t in
      let quiet = if progress = last_progress then quiet + 1 else 0 in
      if quiet < max_quiet_rounds then begin
        let round = ref (Engine.now t.machine) in
        for i = 0 to p - 1 do
          round := max !round (Machine.Node.now (Engine.node t.machine i))
        done;
        for i = 0 to p - 1 do
          Simcore.Clock.advance_to
            (Machine.Node.clock (Engine.node t.machine i))
            !round;
          ignore (policy_tick t ~node:i)
        done;
        Engine.schedule_at t.machine
          ~time:(!round + t.interval_ns)
          (tick progress quiet)
      end
    in
    Engine.schedule_at t.machine ~time:t.interval_ns (tick 0 0)
  end

(* --- attachment --------------------------------------------------- *)

let attach ?policy ?(interval_ns = 0) ?load sys =
  let machine = Core.System.machine sys in
  let p = Engine.node_count machine in
  let stats = Engine.stats machine in
  let tref = ref None in
  let with_t f machine_ node am =
    ignore machine_;
    f (Option.get !tref) node am
  in
  let h_msg =
    Engine.register_handler machine Machine.Am.Service ~name:"migrate-msg"
      (with_t (fun t node am ->
           match am.Machine.Am.payload with
           | M_msg { canon; sender; seq; hop; bytes } ->
               on_m_msg t (rt_of t node) ~canon ~sender ~seq ~hop
                 (Codec.decode_message bytes)
           | _ -> assert false))
  in
  let h_install =
    Engine.register_handler machine Machine.Am.Service ~name:"migrate-install"
      (with_t (fun t node am ->
           match am.Machine.Am.payload with
           | M_install
               {
                 canon;
                 cls_id;
                 epoch;
                 initialized;
                 state;
                 ctor;
                 frames;
                 expected;
                 history;
                 gc_refs;
               } ->
               install t (rt_of t node) ~canon ~cls_id ~epoch ~initialized
                 ~state ~ctor ~frames ~expected ~history ~gc_refs
           | _ -> assert false))
  in
  let h_update =
    Engine.register_handler machine Machine.Am.Service ~name:"migrate-update"
      (with_t (fun t node am ->
           match am.Machine.Am.payload with
           | M_update { canon; phys; epoch } ->
               on_m_update t (rt_of t node) ~canon ~phys ~epoch
           | _ -> assert false))
  in
  let t =
    {
      sys;
      machine;
      h_msg;
      h_install;
      h_update;
      states =
        Array.init p (fun _ ->
            {
              ns_homes = Hashtbl.create 32;
              ns_res = Hashtbl.create 32;
              ns_gates = Hashtbl.create 32;
              ns_limbo = Hashtbl.create 8;
              ns_seq_out = Hashtbl.create 32;
              ns_cache = Hashtbl.create 32;
            });
      policy;
      interval_ns;
      load;
      c_out = Simcore.Stats.counter stats "migrate.out";
      c_in = Simcore.Stats.counter stats "migrate.in";
      c_fwd = Simcore.Stats.counter stats "migrate.forward";
      c_fwd_node =
        Array.init p (fun i ->
            Simcore.Stats.counter stats (Printf.sprintf "migrate.forward.node%d" i));
      c_update = Simcore.Stats.counter stats "migrate.update";
      c_held = Simcore.Stats.counter stats "migrate.held";
      c_limbo = Simcore.Stats.counter stats "migrate.limbo";
      c_dup = Simcore.Stats.counter stats "migrate.dup_drop";
      c_colocated = Simcore.Stats.counter stats "migrate.colocated";
      hop_max = 0;
    }
  in
  tref := Some t;
  let shared = (Core.System.rt sys 0).Kernel.shared in
  shared.Kernel.migration <-
    Some
      {
        Kernel.mig_send = (fun rt canon msg -> mig_send t rt canon msg);
        mig_forward = (fun rt obj msg -> mig_forward t rt obj msg);
        mig_gate_local = (fun rt obj msg -> mig_gate_local t rt obj msg);
        mig_retire = (fun rt obj -> mig_retire t rt obj);
      };
  arm_policy_timers t;
  t

(* --- manual moves and introspection ------------------------------- *)

let locate t canon =
  let rec follow node guard =
    if guard > Engine.node_count t.machine + 2 then canon.Value.node
    else
      let rt = Core.System.rt t.sys node in
      match find_local_record t rt canon with
      | Some obj -> (
          match Vft.forward_info obj.Kernel.vftp with
          | Some f -> follow f.Kernel.fwd_to.Value.node (guard + 1)
          | None -> node)
      | None -> node
  in
  follow canon.Value.node 0

let move t ~canon ~to_ =
  let host = locate t canon in
  if host = to_ then false
  else
    let rt = Core.System.rt t.sys host in
    Simcore.Clock.advance_to
      (Machine.Node.clock rt.Kernel.node)
      (Engine.now t.machine);
    match find_local_record t rt canon with
    | Some obj when Option.is_none (Vft.forward_info obj.Kernel.vftp) ->
        do_move t rt obj ~to_
    | _ -> false

(* Crash-recovery repair: a restarted node re-teaches the cluster where
   its residents live. Any object that ever migrated here left
   forwarding stubs (or stale caches) on its previous hosts; those
   hosts may have missed the install-time M_update broadcast if it died
   with the crash. Re-sending the updates is idempotent — M_update
   installs are epoch-guarded, so a host that already knows this (or a
   newer) epoch ignores the re-advertisement — and it collapses any
   forwarding chain that still points through a dead hop at this
   object's history. Returns the number of updates sent. *)
let readvertise t ~node =
  let ns = nstate_of t node in
  let rt = Core.System.rt t.sys node in
  let sent = ref 0 in
  Hashtbl.iter
    (fun ((cnode, cslot) as k) (res : resident) ->
      if res.r_epoch > 0 then
        match Hashtbl.find_opt ns.ns_cache k with
        | Some (phys, epoch) when phys.Value.node = node ->
            let canon = { Value.node = cnode; slot = cslot } in
            List.iter
              (fun host ->
                if host <> node then begin
                  send_update t rt ~dst:host ~canon ~phys ~epoch;
                  incr sent
                end)
              res.r_history
        | Some _ | None -> ())
    ns.ns_res;
  Simcore.Stats.add (Engine.stats t.machine) "migrate.readvertise" !sent;
  !sent

let migrations t = (Simcore.Stats.read t.c_out)
let forwarded t = (Simcore.Stats.read t.c_fwd)
let colocated_sends t = (Simcore.Stats.read t.c_colocated)
let max_hop_seen t = t.hop_max

let stub_count t ~node =
  Hashtbl.fold
    (fun _ (obj : Kernel.obj) acc ->
      if Option.is_some (Vft.forward_info obj.Kernel.vftp) then acc + 1 else acc)
    (Core.System.rt t.sys node).Kernel.objects 0

(* Structural chain length at quiescence: from every live stub, how many
   hops to the node actually hosting the object? The proactive
   [M_update] broadcast at install keeps this at <= 1. *)
let max_stub_chain t =
  let p = Engine.node_count t.machine in
  let longest = ref 0 in
  for node = 0 to p - 1 do
    let rt = Core.System.rt t.sys node in
    Hashtbl.iter
      (fun _ (obj : Kernel.obj) ->
        match Vft.forward_info obj.Kernel.vftp with
        | None -> ()
        | Some f ->
            let rec chase node len =
              if len > p + 2 then len
              else
                let rt = Core.System.rt t.sys node in
                match find_local_record t rt f.Kernel.fwd_canon with
                | Some o -> (
                    match Vft.forward_info o.Kernel.vftp with
                    | Some f' -> chase f'.Kernel.fwd_to.Value.node (len + 1)
                    | None -> len)
                | None -> len
            in
            longest := max !longest (chase f.Kernel.fwd_to.Value.node 1))
      rt.Kernel.objects
  done;
  !longest

(* --- distributed-GC integration ----------------------------------- *)

let resident_info t canon =
  let host = locate t canon in
  Hashtbl.find_opt (nstate_of t host).ns_res (key canon)

let history t ~canon =
  match resident_info t canon with Some r -> r.r_history | None -> []

let resident_epoch t ~canon =
  match resident_info t canon with Some r -> r.r_epoch | None -> 0

(* One step of a recall: push the object on this node a hop toward its
   canonical home (or report where to chase next). *)
let evict t ~node:my_id ~canon =
  let rt = Core.System.rt t.sys my_id in
  match find_local_record t rt canon with
  | None -> `Absent
  | Some obj -> (
      match Vft.forward_info obj.Kernel.vftp with
      | Some f -> `Stub f.Kernel.fwd_to.Value.node
      | None ->
          if canon.Value.node = my_id then `Moved (* already home *)
          else if do_move t rt obj ~to_:canon.Value.node then `Moved
          else `Busy)

(* Epoch-guarded stub removal: a stub whose epoch exceeds the guard
   belongs to a *newer* life of the object (it migrated again after the
   reclaim decision was taken) and must stay. Returns the removed record
   so the caller can recycle its physical slot. *)
let drop_stub t ~node:my_id ~canon ~epoch =
  let rt = Core.System.rt t.sys my_id in
  match find_local_record t rt canon with
  | None -> None
  | Some obj -> (
      match Vft.forward_info obj.Kernel.vftp with
      | Some f when f.Kernel.fwd_epoch <= epoch ->
          Hashtbl.remove rt.Kernel.objects obj.Kernel.phys_slot;
          let ns = nstate_of t my_id in
          Hashtbl.remove ns.ns_homes (key canon);
          Hashtbl.remove ns.ns_cache (key canon);
          Some obj
      | _ -> None)

(* Scrub every trace of a reclaimed object from the subsystem's tables
   on all nodes, so a recycled slot starts with virgin sequence spaces
   (a stale [ns_seq_out] at some sender against a fresh gate would hold
   the new object's messages forever). Sound because the caller frees
   the object only at scion zero — no reference survives anywhere, so no
   node can ever stamp another message for this address. On a real
   machine this is a broadcast in the reclaim protocol; the simulator
   scrubs directly. *)
let forget t ~canon =
  let k = key canon in
  Array.iter
    (fun ns ->
      Hashtbl.remove ns.ns_seq_out k;
      Hashtbl.remove ns.ns_cache k;
      Hashtbl.remove ns.ns_gates k;
      Hashtbl.remove ns.ns_res k;
      Hashtbl.remove ns.ns_limbo k)
    t.states

(* Root values for a local GC trace: messages parked in reorder gates or
   limbo buffers live outside any object's queue, and the object a
   non-empty gate or limbo belongs to must survive until they drain. *)
let parked_refs t ~node:my_id =
  let ns = nstate_of t my_id in
  let acc = ref [] in
  let add_msg (m : Message.t) =
    acc := Value.List m.Message.args :: !acc;
    (match m.Message.reply with
    | Some a -> acc := Value.Addr a :: !acc
    | None -> ());
    List.iter
      (fun (r : Message.gc_ref) -> acc := Value.Addr r.Message.gr_addr :: !acc)
      m.Message.gc_refs
  in
  Hashtbl.iter
    (fun (n, s) g ->
      if Hashtbl.length g.g_held > 0 then
        acc := Value.Addr { Value.node = n; slot = s } :: !acc;
      Hashtbl.iter (fun _ m -> add_msg m) g.g_held)
    ns.ns_gates;
  Hashtbl.iter
    (fun (n, s) r ->
      acc := Value.Addr { Value.node = n; slot = s } :: !acc;
      List.iter (fun (_, _, _, m) -> add_msg m) !r)
    ns.ns_limbo;
  !acc

(* Conservation residue: anything still parked in a reorder gate or a
   limbo buffer at quiescence is a lost message. *)
let residual t =
  Array.fold_left
    (fun (held, limbo) ns ->
      let held =
        Hashtbl.fold (fun _ g acc -> acc + Hashtbl.length g.g_held) ns.ns_gates
          held
      in
      let limbo =
        Hashtbl.fold (fun _ r acc -> acc + List.length !r) ns.ns_limbo limbo
      in
      (held, limbo))
    (0, 0) t.states
