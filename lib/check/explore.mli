(** The schedule explorer: sweep recorded schedules across the workload
    catalog, shrink failures to minimal reproducers, replay reproducers
    bit-identically. *)

type outcome = {
  o_workload : string;
  o_seed : int option;  (** recording seed, if this run was recorded *)
  o_hash : int;  (** Timeline hash (0 when the run crashed) *)
  o_trace : int array;  (** choices consumed — the replay vector *)
  o_violations : (string * string) list;
  o_crash : string option;  (** exception text if the run raised *)
}

val failed : outcome -> bool

val run_recorded : Workloads.t -> seed:int -> outcome
val run_replay : Workloads.t -> int array -> outcome

val shrink : ?budget:int -> Workloads.t -> int array -> int array
(** Greedy minimization: zero out choice chunks (halving sizes) and trim
    trailing zeros, keeping candidates that still fail. [budget] caps
    replays (default 250). *)

val save : path:string -> outcome -> unit
(** Writes a reproducer file (workload name + vector, violations as
    comments). *)

val load : string -> string * int array
(** [(workload_name, vector)] from a reproducer file. *)

type failure = {
  f_outcome : outcome;
  f_minimized : int array;
  f_path : string option;
}

type summary = { runs : int; failures : failure list }

val sweep :
  ?out_dir:string ->
  ?log:(string -> unit) ->
  workloads:Workloads.t list ->
  schedules:int ->
  seed:int ->
  unit ->
  summary
(** Runs [schedules] recorded schedules (seeds [seed, seed+schedules))
    per workload; failures are shrunk and, with [out_dir], written to
    [explore-fail-<workload>-<seed>.txt]. *)

type replayed = {
  rp_outcome : outcome;
  rp_second_hash : int;
  rp_identical : bool;  (** two replays of the vector hashed identically *)
}

val replay : Workloads.t -> int array -> replayed
val replay_file : string -> replayed
