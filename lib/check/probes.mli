(** Standard invariant probes, one per subsystem.

    Each probe returns one detail line per violated instance (empty list
    = invariant holds), so tests can aim them at deliberately corrupted
    states without going through a monitor. *)

val sched : Core.System.t -> unit -> string list
(** No lost wakeup, at quiescence: no object with buffered messages but
    no scheduling entry, no stale in-scheduling-queue mark on an idle
    machine, no context still suspended. *)

val multiactive : Core.System.t -> unit -> string list
(** Multiactive admission sanity, at quiescence: no activation still
    running, no message stuck behind a group queue, no pump posted, no
    drain pending — and the ["ma.conflict"] counter is zero, i.e. no
    activation ever started while an incompatible one was running (the
    violation is caught even if the overlap finished long before
    quiescence). *)

val reliable : Machine.Engine.t -> unit -> string list
(** Exactly-once / FIFO structure, at quiescence: every channel fully
    acknowledged ([base = next_seq], nothing in flight or backlogged)
    and no frame stuck in a receive-side reorder buffer. Empty when the
    machine has no reliable layer. *)

val coalesce : Machine.Engine.t -> unit -> string list
(** Parked-buffer cleanliness, at quiescence. *)

val migrate_chains : nodes:int -> Migrate.t -> unit -> string list
(** Forwarding-chain acyclicity, at quiescence only: an install in
    flight back to a previous host makes its stale stub and the mover's
    fresh stub point at each other until the install lands, so mid-run
    chases can report transient pseudo-cycles on a healthy machine. *)

val migrate_residual : Migrate.t -> unit -> string list
(** Reorder gates and limbo buffers empty, at quiescence. *)

val dgc : Dgc.t -> unit -> string list
(** Weight conservation and stub/scion symmetry ({!Dgc.audit}), at
    quiescence. *)

val traffic : Core.System.t -> Traffic.Loadgen.t -> unit -> string list
(** Open-loop traffic audit ({!Traffic.Loadgen.audit}), at quiescence:
    full injection, no request started-but-never-completed, no
    duplicate replies, and versions summed across shards equal the
    successful writes clients observed. *)

val recovery : Recover.Manager.t -> unit -> string list
(** Crash-recovery structure ({!Recover.Manager.audit}), safe at any
    instant: one live incarnation per node, down nodes empty, journal
    cursors never behind the last checkpoint. *)

val recovery_quiescent : Recover.Manager.t -> unit -> string list
(** {!Recover.Manager.audit_quiescent}: the above plus no restart
    pending, no node down, and no acked-but-unlogged message on any
    channel. Quiescence only. *)

val register_recovery : Monitor.t -> Recover.Manager.t -> unit
(** Registers [recovery] as an [Always] probe and [recovery_quiescent]
    at quiescence. *)

val register_standard :
  Monitor.t -> Core.System.t -> ?migrate:Migrate.t -> ?dgc:Dgc.t -> unit -> unit
(** Registers the full standard set on a monitor — including the
    multiactive probe, which is vacuous on systems without multiactive
    objects (migration and DGC probes only when those subsystems are
    attached). *)
