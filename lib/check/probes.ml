(* Standard invariant probes, one per subsystem. Each returns a list of
   human-readable violation lines (empty = invariant holds). They are
   deliberately independent of the monitor so tests can aim them at
   hand-corrupted states directly. *)

open Core

(* No lost wakeup: at quiescence no object may hold buffered messages
   without either a scheduling-queue entry or a parked context that will
   consume them — and nothing may still claim a queue entry or hold a
   suspended context at all (every node is idle; nobody will run it). *)
let sched sys () =
  let out = ref [] in
  for node = 0 to System.node_count sys - 1 do
    let rt = System.rt sys node in
    Hashtbl.iter
      (fun slot (obj : Kernel.obj) ->
        let queued = Queue.length obj.Kernel.mq in
        let kind = obj.Kernel.vftp.Kernel.vft_kind in
        let tell fmt = Format.kasprintf (fun s -> out := s :: !out) fmt in
        if obj.Kernel.in_sched_q then
          tell "node %d slot %d (%s): marked in-sched-queue on an idle node"
            node slot (Vft.kind_name kind)
        else if Option.is_some obj.Kernel.blocked then
          tell "node %d slot %d (%s): context still suspended at quiescence"
            node slot (Vft.kind_name kind)
        else if queued > 0 then
          match kind with
          | Kernel.Vft_waiting _ ->
              (* Selective reception legitimately parks non-matching
                 messages — but only while a context waits, and that
                 case was caught above. *)
              tell
                "node %d slot %d: waiting-mode object with %d message(s) \
                 and no waiting context"
                node slot queued
          | Kernel.Vft_forward _ ->
              tell
                "node %d slot %d: forwarding stub retains %d message(s) \
                 (never re-posted)"
                node slot queued
          | Kernel.Vft_dormant | Kernel.Vft_init | Kernel.Vft_active
          | Kernel.Vft_fault | Kernel.Vft_multiactive ->
              tell
                "node %d slot %d (%s): %d buffered message(s) but no \
                 scheduling entry (lost wakeup)"
                node slot (Vft.kind_name kind) queued)
      rt.Kernel.objects
  done;
  !out

(* Multiactive admission sanity. At quiescence nothing may still be
   running or parked behind a compatibility group, no pump thunk may
   claim to be posted, and no drain may be pending. And at any time, no
   activation may ever have started while an incompatible one was
   running — the scheduler bumps "ma.conflict" at activation entry when
   it happens, so a nonzero counter is a serialization violation even
   if the overlap itself has long finished. *)
let multiactive sys () =
  let out = ref [] in
  let conflicts = Simcore.Stats.get (System.stats sys) "ma.conflict" in
  if conflicts > 0 then
    out :=
      Printf.sprintf
        "%d incompatible activation(s) overlapped (serialization violation)"
        conflicts
      :: !out;
  for node = 0 to System.node_count sys - 1 do
    let rt = System.rt sys node in
    Hashtbl.iter
      (fun slot (obj : Kernel.obj) ->
        match obj.Kernel.ma with
        | None -> ()
        | Some m ->
            let tell fmt = Format.kasprintf (fun s -> out := s :: !out) fmt in
            if m.Kernel.mar_count > 0 then
              tell
                "node %d slot %d: %d activation(s) still running at \
                 quiescence"
                node slot m.Kernel.mar_count;
            if m.Kernel.mar_queued > 0 then
              tell
                "node %d slot %d: %d message(s) stuck in group queues \
                 (lost pump)"
                node slot m.Kernel.mar_queued;
            if m.Kernel.mar_pump_posted then
              tell "node %d slot %d: pump still posted on an idle node" node
                slot;
            if m.Kernel.mar_draining then
              tell "node %d slot %d: drain-before-freeze never completed"
                node slot)
      rt.Kernel.objects
  done;
  !out

(* Per-channel FIFO / exactly-once, structurally: at quiescence nothing
   is in flight, no receive-side hole is waiting to be filled, and every
   channel's window is fully acknowledged. *)
let reliable machine () =
  match Machine.Engine.reliable machine with
  | None -> []
  | Some rel ->
      let out = ref [] in
      List.iter
        (fun (src, dst, next_seq, base, inflight, backlog) ->
          if base <> next_seq || inflight > 0 || backlog > 0 then
            out :=
              Printf.sprintf
                "channel %d->%d: base=%d next=%d inflight=%d backlog=%d at \
                 quiescence"
                src dst base next_seq inflight backlog
              :: !out)
        (Machine.Reliable.channel_states rel);
      let parked = Machine.Reliable.reorder_buffered rel in
      if parked > 0 then
        out :=
          Printf.sprintf
            "%d frame(s) stuck in reorder buffers (sequence hole never \
             filled)"
            parked
          :: !out;
      !out

(* Parked-buffer cleanliness: every open aggregation buffer must have
   been flushed by idle/deadline/credit before the machine stopped. *)
let coalesce machine () =
  let parked = Machine.Engine.coalesce_buffered machine in
  if parked > 0 then
    [ Printf.sprintf "%d frame(s) parked in aggregation buffers" parked ]
  else []

(* Forwarding chains must be acyclic at quiescence:
   [Migrate.max_stub_chain] chases each stub for at most [nodes + 2]
   hops, so any value above [nodes] means the chase never escaped — a
   cycle. Quiescence-only on purpose: while an install is in flight
   back to a previous host, that host's stale stub and the mover's
   fresh stub legitimately point at each other (messages ping-pong one
   extra hop until the install lands and overwrites the stale stub, and
   the epoch-guarded update broadcast then collapses the chain), so a
   mid-run chase can report a transient "cycle" on a perfectly healthy
   machine. The explorer found exactly that false alarm — see
   test/schedules/explore-fail-migrate-*.txt. *)
let migrate_chains ~nodes mig () =
  let chain = Migrate.max_stub_chain mig in
  if chain > nodes then
    [ Printf.sprintf "forwarding chain of length %d (> %d nodes): cycle" chain nodes ]
  else []

(* Reorder gates and limbo buffers must be empty at quiescence —
   anything still held is a lost message. *)
let migrate_residual mig () =
  let held, limbo = Migrate.residual mig in
  if held > 0 || limbo > 0 then
    [
      Printf.sprintf "%d message(s) held in reorder gates, %d in limbo"
        held limbo;
    ]
  else []

(* Weight conservation + stub/scion symmetry, straight from the
   collector's own audit. *)
let dgc g () = Dgc.audit g

(* Recovery-manager structural invariants, safe at any instant: exactly
   one live incarnation per node, down nodes hold no work, no journal
   cursor behind its checkpoint. *)
let traffic sys lg () = Traffic.Loadgen.audit lg sys

let recovery mgr () = Recover.Manager.audit mgr

(* The quiescence-only strengthening: no restart pending, nothing down,
   and every channel's acked cursor equals its journaled cursor (no
   acked-but-unlogged message). *)
let recovery_quiescent mgr () = Recover.Manager.audit_quiescent mgr

let register_recovery mon mgr =
  Monitor.register mon ~name:"recover" ~when_:Monitor.Always (recovery mgr);
  Monitor.register mon ~name:"recover.quiescent" ~when_:Monitor.At_quiescence
    (recovery_quiescent mgr)

(* Wire the standard set for a booted system. *)
let register_standard mon sys ?migrate:mig ?dgc:g () =
  let machine = System.machine sys in
  Monitor.register mon ~name:"sched" ~when_:Monitor.At_quiescence (sched sys);
  Monitor.register mon ~name:"multiactive" ~when_:Monitor.At_quiescence
    (multiactive sys);
  Monitor.register mon ~name:"reliable" ~when_:Monitor.At_quiescence
    (reliable machine);
  Monitor.register mon ~name:"coalesce" ~when_:Monitor.At_quiescence
    (coalesce machine);
  (match mig with
  | Some m ->
      Monitor.register mon ~name:"migrate.chains" ~when_:Monitor.At_quiescence
        (migrate_chains ~nodes:(System.node_count sys) m);
      Monitor.register mon ~name:"migrate.residual"
        ~when_:Monitor.At_quiescence (migrate_residual m)
  | None -> ());
  match g with
  | Some g ->
      Monitor.register mon ~name:"dgc" ~when_:Monitor.At_quiescence (dgc g)
  | None -> ()
