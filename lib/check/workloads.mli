(** The explorer's workload catalog: one small end-to-end program per
    subsystem stack. Each run wires every simulator decision point to
    the given schedule, runs the invariant monitor periodically and at
    quiescence, checks its own end-to-end answer (reported under the
    ["app"] probe name), and returns the Timeline hash. *)

type report = {
  r_hash : int;  (** {!Services.Timeline.hash} of the run *)
  r_violations : (string * string) list;  (** (probe, detail) *)
}

type t = { w_name : string; w_run : Schedule.t -> report }

val app : t
(** Fan-out/accumulate on 8 nodes: remote creation, cross-node sends,
    scheduler; perfect network. *)

val faults : t
(** The same program under a fault plan whose seed and jitter are drawn
    from the schedule. *)

val migrate_wl : t
(** An order-sensitive message stream into a cell that is forcibly
    migrated mid-stream (move count, targets, phases and an optional
    fault plan drawn from the schedule). *)

val dgc_wl : t
(** Reference churn with the collector's periodic sweep, aggregation on
    (decrements ride batches), sweep phase and optional faults drawn
    from the schedule. *)

val coalesce_wl : t
(** Raw-engine coalesced bursts over multiple channels: per-channel
    FIFO/exactly-once counters, optional faults drawn from the
    schedule. *)

val recover_wl : t
(** Raw-engine bursts with the crash-recovery manager attached: up to
    two nodes are killed mid-burst (victims, instants, down windows and
    drop rate drawn from the schedule), restored from checkpoint and
    replayed. Per-channel FIFO/exactly-once counters double-check the
    replay; the recovery audits run as monitor probes. *)

val traffic_wl : t
(** Open-loop traffic into the sharded KV tier: a seeded Poisson
    arrival process (its jitter and key-skew decision points recorded
    in the schedule like every other choice), shards forcibly migrated
    mid-run, optional faults drawn from the schedule. The traffic audit
    (full injection, no lost or duplicated completion, write/version
    conservation) runs as a quiescence probe. *)

val multiactive_wl : t
(** The traffic tier with multiactive compatibility annotations on the
    shards and clients (overlapping reads, serialized writes), driven
    read-heavy with Zipf-skewed keys so a hot shard builds a real
    admission backlog. The schedule draws the admission-deferral and
    pump-order decision points (["ma.admit.defer"], ["ma.pump.pick"])
    along with mid-run shard moves (drain-before-freeze) and optional
    faults; the multiactive probe checks no incompatible activations
    ever overlapped and no message is stuck behind a group queue. *)

val all : t list
val find : string -> t option
