(* A schedule is a choice sequence (Hypothesis-style): the value drawn
   at every decision point the simulator exposes, in the order the run
   consumed them. Record mode draws fresh values from a seeded RNG and
   logs them; replay mode feeds a stored vector back, so the same vector
   is the same run. Everything downstream (shrinking, regression files)
   manipulates plain int vectors. *)

type mode = Record of Simcore.Rng.t | Replay of int array

type t = {
  mode : mode;
  mutable trace : int list;  (** reversed *)
  mutable used : int;
}

let record ~seed = { mode = Record (Simcore.Rng.create ~seed); trace = []; used = 0 }
let replay vector = { mode = Replay vector; trace = []; used = 0 }

let choice t ~tag:_ n =
  if n <= 0 then invalid_arg "Schedule.choice: empty domain";
  let v =
    match t.mode with
    | Record rng -> Simcore.Rng.int rng n
    | Replay vec ->
        (* Past the end of the vector every choice is 0, the baseline —
           which is what makes truncation a valid shrink step. A stored
           value from a run whose domain differed is clamped into range. *)
        if t.used < Array.length vec then vec.(t.used) mod n else 0
  in
  t.trace <- v :: t.trace;
  t.used <- t.used + 1;
  v

let trace t = Array.of_list (List.rev t.trace)
let used t = t.used

(* Sharded schedules: one independent choice stream per node, for runs
   whose decision points are node-keyed (Engine.set_node_decision_source).
   A single global stream cannot drive a parallel run — the interleaving
   of draws across domains is racy — but per-node streams are consumed
   in each node's own deterministic order, so the vectors (and the run)
   are identical whatever the domain count. *)
type sharded = t array

let record_sharded ~seed ~nodes =
  let base = Simcore.Rng.create ~seed in
  (* [derive] leaves [base] untouched: stream [i] is a pure function of
     (seed, i), not of the order streams are created. *)
  Array.init nodes (fun i ->
      { mode = Record (Simcore.Rng.derive base ~index:i); trace = []; used = 0 })

let replay_sharded vectors = Array.map replay vectors

let node_source (sh : sharded) ~node tag n = choice sh.(node) ~tag n

let traces (sh : sharded) = Array.map trace sh
