(** Recorded choice sequences: one schedule = one replayable run.

    Every nondeterministic decision the simulator exposes (event-queue
    tie-breaks, inbox poll order, coalesce flush jitter, fault-plan and
    timer-phase draws) is routed through {!choice}. Recording draws the
    values from a seeded RNG and logs them; replaying feeds a stored
    vector back. Since the simulation is otherwise deterministic, the
    vector fully determines the run. *)

type t

val record : seed:int -> t
(** Fresh recording schedule: choices are uniform RNG draws. *)

val replay : int array -> t
(** Replaying schedule: choice [i] returns [vector.(i) mod n] (clamped
    into the live domain), and 0 — the unperturbed baseline — once the
    vector is exhausted. Replaying a full recorded trace reproduces the
    run bit-identically; a shrunk prefix is still a valid schedule. *)

val choice : t -> tag:string -> int -> int
(** [choice t ~tag n] draws the next value in [[0, n)]. [tag] names the
    decision point (diagnostics only — it does not affect the value).
    0 always means "the unperturbed default". *)

val trace : t -> int array
(** Choices consumed so far, in order — the replay vector. *)

val used : t -> int

(** {2 Sharded schedules}

    One independent choice stream per node, for runs whose decision
    points are node-keyed ({!Machine.Engine.set_node_decision_source}).
    A single global stream cannot drive a parallel run — the
    interleaving of draws across domains is racy — but each node
    consumes its own stream in its own deterministic order, so the
    recorded vectors (and a replay from them) are identical at every
    domain count. *)

type sharded = t array

val record_sharded : seed:int -> nodes:int -> sharded
(** Fresh per-node recording streams; stream [i] draws from
    [Rng.derive (Rng.create ~seed) ~index:i], a pure function of
    [(seed, i)]. *)

val replay_sharded : int array array -> sharded
(** Per-node replaying streams, with {!replay}'s clamping and
    past-the-end semantics on each. *)

val node_source : sharded -> node:int -> string -> int -> int
(** The hook shape {!Machine.Engine.set_node_decision_source} expects:
    [node_source sh] routes node [n]'s draws to stream [sh.(n)]. *)

val traces : sharded -> int array array
(** Per-node replay vectors consumed so far. *)
