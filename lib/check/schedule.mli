(** Recorded choice sequences: one schedule = one replayable run.

    Every nondeterministic decision the simulator exposes (event-queue
    tie-breaks, inbox poll order, coalesce flush jitter, fault-plan and
    timer-phase draws) is routed through {!choice}. Recording draws the
    values from a seeded RNG and logs them; replaying feeds a stored
    vector back. Since the simulation is otherwise deterministic, the
    vector fully determines the run. *)

type t

val record : seed:int -> t
(** Fresh recording schedule: choices are uniform RNG draws. *)

val replay : int array -> t
(** Replaying schedule: choice [i] returns [vector.(i) mod n] (clamped
    into the live domain), and 0 — the unperturbed baseline — once the
    vector is exhausted. Replaying a full recorded trace reproduces the
    run bit-identically; a shrunk prefix is still a valid schedule. *)

val choice : t -> tag:string -> int -> int
(** [choice t ~tag n] draws the next value in [[0, n)]. [tag] names the
    decision point (diagnostics only — it does not affect the value).
    0 always means "the unperturbed default". *)

val trace : t -> int array
(** Choices consumed so far, in order — the replay vector. *)

val used : t -> int
