(* The schedule explorer: sweep N recorded schedules per workload,
   greedily shrink any failing schedule vector to a minimal reproducer,
   and replay reproducers bit-identically (same vector -> same Timeline
   hash). Reproducer files are plain text so they can be committed as
   regression tests and uploaded as CI artifacts. *)

type outcome = {
  o_workload : string;
  o_seed : int option;  (** recording seed, if this run was recorded *)
  o_hash : int;
  o_trace : int array;
  o_violations : (string * string) list;
  o_crash : string option;
}

let failed o = o.o_violations <> [] || Option.is_some o.o_crash

let run_with w sched ~seed =
  match w.Workloads.w_run sched with
  | r ->
      {
        o_workload = w.Workloads.w_name;
        o_seed = seed;
        o_hash = r.Workloads.r_hash;
        o_trace = Schedule.trace sched;
        o_violations = r.Workloads.r_violations;
        o_crash = None;
      }
  | exception e ->
      (* A crash is a failure too — and a deterministic one: the same
         vector reaches the same raise point, so shrinking still works
         (the partial trace up to the crash is the replay vector). *)
      {
        o_workload = w.Workloads.w_name;
        o_seed = seed;
        o_hash = 0;
        o_trace = Schedule.trace sched;
        o_violations = [];
        o_crash = Some (Printexc.to_string e);
      }

let run_recorded w ~seed = run_with w (Schedule.record ~seed) ~seed:(Some seed)
let run_replay w vector = run_with w (Schedule.replay vector) ~seed:None

(* --- greedy shrinking ------------------------------------------------- *)

(* Replay past the end of the vector yields 0 everywhere, so a vector is
   canonical without trailing zeros. *)
let trim_zeros v =
  let n = ref (Array.length v) in
  while !n > 0 && v.(!n - 1) = 0 do
    decr n
  done;
  Array.sub v 0 !n

(* Zero out chunks (halving the chunk size down to single entries),
   keeping any candidate that still fails. 0 means "the unperturbed
   default", so shrinking moves toward the baseline schedule and the
   surviving nonzero entries are exactly the perturbations the bug
   needs. [budget] caps total replays. *)
let shrink ?(budget = 250) w vector =
  let budget = ref budget in
  let cur = ref (trim_zeros vector) in
  let attempt cand =
    if !budget > 0 && cand <> !cur then begin
      decr budget;
      if failed (run_replay w cand) then begin
        cur := trim_zeros cand;
        true
      end
      else false
    end
    else false
  in
  let size = ref (max 1 (Array.length !cur / 2)) in
  let progress = ref true in
  while !budget > 0 && (!size >= 1 && (!progress || !size > 1)) do
    progress := false;
    let n = Array.length !cur in
    let i = ref 0 in
    while !i < n && !budget > 0 do
      if !i < Array.length !cur then begin
        let cand = Array.copy !cur in
        let hi = min (Array.length cand) (!i + !size) in
        let changed = ref false in
        for j = !i to hi - 1 do
          if cand.(j) <> 0 then begin
            cand.(j) <- 0;
            changed := true
          end
        done;
        if !changed && attempt cand then progress := true
      end;
      i := !i + !size
    done;
    if !size = 1 then size := 0 else size := !size / 2;
    if !size = 0 && !progress && !budget > 0 then size := 1
  done;
  !cur

(* --- reproducer files ------------------------------------------------- *)

let save ~path o =
  let oc = open_out path in
  Printf.fprintf oc "# schedule-explorer reproducer (bench/main.exe explore --replay %s)\n"
    (Filename.basename path);
  Printf.fprintf oc "workload: %s\n" o.o_workload;
  (match o.o_seed with
  | Some s -> Printf.fprintf oc "# recorded with seed %d\n" s
  | None -> ());
  List.iter
    (fun (p, d) -> Printf.fprintf oc "# violation: %s: %s\n" p d)
    o.o_violations;
  (match o.o_crash with
  | Some e -> Printf.fprintf oc "# crash: %s\n" e
  | None -> ());
  Printf.fprintf oc "vector: %s\n"
    (String.concat " " (Array.to_list (Array.map string_of_int o.o_trace)));
  close_out oc

let load path =
  let ic = open_in path in
  let workload = ref None and vector = ref None in
  (try
     while true do
       let line = String.trim (input_line ic) in
       if String.length line > 0 && line.[0] <> '#' then
         match String.index_opt line ':' with
         | Some i ->
             let key = String.trim (String.sub line 0 i) in
             let rest =
               String.trim
                 (String.sub line (i + 1) (String.length line - i - 1))
             in
             if key = "workload" then workload := Some rest
             else if key = "vector" then
               vector :=
                 Some
                   (rest |> String.split_on_char ' '
                   |> List.filter (fun s -> s <> "")
                   |> List.map int_of_string |> Array.of_list)
         | None -> ()
     done
   with End_of_file -> close_in ic);
  match (!workload, !vector) with
  | Some w, Some v -> (w, v)
  | _ -> failwith (path ^ ": not a reproducer file (need workload: and vector:)")

(* --- driving ---------------------------------------------------------- *)

type failure = {
  f_outcome : outcome;  (** the original recorded failure *)
  f_minimized : int array;
  f_path : string option;
}

type summary = { runs : int; failures : failure list }

(* Sweep [schedules] recorded schedules per workload. Failing schedules
   are shrunk and written to [out_dir] (when given) as
   [explore-fail-<workload>-<seed>.txt]. *)
let sweep ?out_dir ?(log = ignore) ~workloads ~schedules ~seed () =
  let runs = ref 0 and failures = ref [] in
  List.iter
    (fun w ->
      for i = 0 to schedules - 1 do
        let s = seed + i in
        incr runs;
        let o = run_recorded w ~seed:s in
        if failed o then begin
          log
            (Printf.sprintf "%s seed %d FAILED (%d choices); shrinking..."
               w.Workloads.w_name s (Array.length o.o_trace));
          let min_v = shrink w o.o_trace in
          let path =
            match out_dir with
            | None -> None
            | Some dir ->
                let p =
                  Filename.concat dir
                    (Printf.sprintf "explore-fail-%s-%d.txt"
                       w.Workloads.w_name s)
                in
                save ~path:p { o with o_trace = min_v };
                Some p
          in
          log
            (Printf.sprintf "%s seed %d minimized to %d choice(s)%s"
               w.Workloads.w_name s (Array.length min_v)
               (match path with Some p -> " -> " ^ p | None -> ""));
          failures :=
            { f_outcome = o; f_minimized = min_v; f_path = path } :: !failures
        end
      done)
    workloads;
  { runs = !runs; failures = List.rev !failures }

type replayed = {
  rp_outcome : outcome;
  rp_second_hash : int;
  rp_identical : bool;  (** both replays produced the same hash *)
}

(* Replay a vector twice and check the runs are bit-identical (equal
   Timeline hashes) — the determinism guarantee behind reproducers. *)
let replay w vector =
  let a = run_replay w vector in
  let b = run_replay w vector in
  {
    rp_outcome = a;
    rp_second_hash = b.o_hash;
    rp_identical = a.o_hash = b.o_hash && a.o_crash = b.o_crash;
  }

let replay_file path =
  let name, vector = load path in
  match Workloads.find name with
  | None -> failwith (path ^ ": unknown workload " ^ name)
  | Some w -> replay w vector
