type when_ = At_quiescence | Always

type probe = { p_name : string; p_when : when_; p_fn : unit -> string list }
type violation = { v_probe : string; v_detail : string }

type t = {
  mutable probes : probe list;  (** registration order *)
  mutable violations : violation list;  (** reversed *)
  seen : (string * string, unit) Hashtbl.t;
      (** an Always probe re-fires every interval; report each distinct
          (probe, detail) once *)
  mutable checks : int;
}

let create () =
  { probes = []; violations = []; seen = Hashtbl.create 16; checks = 0 }

let register t ~name ~when_ fn =
  t.probes <- t.probes @ [ { p_name = name; p_when = when_; p_fn = fn } ]

let run_probe t p =
  List.iter
    (fun detail ->
      if not (Hashtbl.mem t.seen (p.p_name, detail)) then begin
        Hashtbl.add t.seen (p.p_name, detail) ();
        t.violations <- { v_probe = p.p_name; v_detail = detail } :: t.violations
      end)
    (p.p_fn ())

let check_always t =
  t.checks <- t.checks + 1;
  List.iter (fun p -> if p.p_when = Always then run_probe t p) t.probes

(* Quiescence is the strongest observation point: every probe holds. *)
let check_quiescent t =
  t.checks <- t.checks + 1;
  List.iter (run_probe t) t.probes

let violations t = List.rev t.violations
let checks t = t.checks

let attach_periodic t machine ~interval_ns =
  if interval_ns <= 0 then invalid_arg "Monitor.attach_periodic: interval";
  let rec arm time =
    Machine.Engine.schedule_at machine ~time (fun () ->
        check_always t;
        (* Stop re-arming once the machine quiesces, or Engine.run would
           never drain its event queue. *)
        if not (Machine.Engine.quiescent machine) then arm (time + interval_ns))
  in
  arm interval_ns

let pp_violation ppf v = Format.fprintf ppf "%s: %s" v.v_probe v.v_detail
