(** Global invariant monitor: subsystems register probes; the monitor
    runs them at configurable step intervals during a run and — all of
    them — at quiescence, accumulating violations instead of raising, so
    one run reports every broken invariant it can see. *)

type when_ =
  | At_quiescence
      (** meaningful only when the machine is quiet: conservation sums,
          emptiness-of-buffers, no-lost-wakeup *)
  | Always  (** structural: may be checked at any instant *)

type violation = { v_probe : string; v_detail : string }

type t

val create : unit -> t

val register : t -> name:string -> when_:when_ -> (unit -> string list) -> unit
(** Adds a probe. The function returns one human-readable detail line
    per violated instance (empty list = invariant holds). *)

val check_always : t -> unit
(** Runs the [Always] probes now. *)

val check_quiescent : t -> unit
(** Runs {e every} probe — call when {!Machine.Engine.quiescent} (e.g.
    after [System.run] returns). *)

val attach_periodic : t -> Machine.Engine.t -> interval_ns:int -> unit
(** Arms a re-arming engine timer that runs the [Always] probes every
    [interval_ns] of virtual time until the machine quiesces. *)

val violations : t -> violation list
(** Distinct violations observed, in first-seen order. *)

val checks : t -> int
(** Number of probe sweeps executed (for "the monitor actually ran"
    assertions). *)

val pp_violation : Format.formatter -> violation -> unit
