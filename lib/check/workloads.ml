(* The explorer's workload catalog: one small end-to-end program per
   subsystem stack (plain app, app under faults, migration stream, DGC
   churn, coalesced bursts). Each run wires every simulator decision
   point to the given schedule, runs the invariant monitor periodically
   and at quiescence, checks its own end-to-end answer, and reports the
   Timeline hash — the digest replays are compared against. *)

open Core
module Engine = Machine.Engine

type report = { r_hash : int; r_violations : (string * string) list }
type t = { w_name : string; w_run : Schedule.t -> report }

let monitor_interval_ns = 25_000

(* Route every engine decision point through the schedule. *)
let wire sched machine =
  Engine.set_tie_break machine
    (Some (fun n -> Schedule.choice sched ~tag:"event.tie" n));
  Array.iter
    (fun node ->
      Machine.Node.set_inbox_tie_break node
        (Some (fun n -> Schedule.choice sched ~tag:"inbox.tie" n)))
    (Engine.nodes machine);
  Engine.set_decision_source machine
    (Some (fun tag n -> Schedule.choice sched ~tag n))

let finish mon tl extra =
  Monitor.check_quiescent mon;
  let vs =
    List.map
      (fun v -> (v.Monitor.v_probe, v.Monitor.v_detail))
      (Monitor.violations mon)
  in
  let r = { r_hash = Services.Timeline.hash tl; r_violations = vs @ extra } in
  Services.Timeline.detach tl;
  r

(* A fault plan whose seed (and whether it exists at all) comes from the
   schedule, so shrinking toward zeros turns the faults off. *)
let drawn_faults sched ~tag =
  match Schedule.choice sched ~tag 4 with
  | 0 -> None
  | k ->
      let seed = 1 + Schedule.choice sched ~tag:(tag ^ ".seed") 1_000_000 in
      let drop = 0.04 *. float_of_int k in
      Some (Network.Faults.plan ~seed ~drop ~duplicate:0.05 ~jitter_ns:1_000 ())

(* --- fan-out / accumulate: creation, cross-node sends, scheduling ---- *)

let p_work = Pattern.intern "chk_work" ~arity:3
let p_add = Pattern.intern "chk_add" ~arity:1
let p_spawn = Pattern.intern "chk_spawn" ~arity:2

let acc_cls () =
  Class_def.define ~name:"chk_acc" ~state:[| "sum"; "n" |]
    ~init:(fun _ -> [| Value.int 0; Value.int 0 |])
    ~methods:
      [
        ( p_add,
          fun ctx msg ->
            let k = Value.to_int (Message.arg msg 0) in
            Ctx.set ctx 0 (Value.int (Value.to_int (Ctx.get ctx 0) + k));
            Ctx.set ctx 1 (Value.int (Value.to_int (Ctx.get ctx 1) + 1)) );
      ]
    ()

let worker_cls () =
  Class_def.define ~name:"chk_worker" ~state:[| "acc" |]
    ~init:(fun args -> Array.of_list args)
    ~methods:
      [
        ( p_work,
          fun ctx msg ->
            let k = Value.to_int (Message.arg msg 0) in
            let left = Value.to_int (Message.arg msg 1) in
            let acc =
              match Ctx.get ctx 0 with Value.Addr a -> a | _ -> assert false
            in
            Ctx.send ctx acc p_add [ Value.int k ];
            if left > 1 then
              Ctx.send ctx (Ctx.self ctx) p_work
                [ Value.int (k + 1); Value.int (left - 1); Message.arg msg 2 ]
        );
      ]
    ()

let root_cls ~acc_cls ~worker_cls () =
  Class_def.define ~name:"chk_root" ~state:[| "acc" |]
    ~methods:
      [
        ( p_spawn,
          fun ctx msg ->
            let workers = Value.to_int (Message.arg msg 0) in
            let rounds = Value.to_int (Message.arg msg 1) in
            let acc = Ctx.create_local ctx acc_cls [] in
            Ctx.set ctx 0 (Value.Addr acc);
            for w = 0 to workers - 1 do
              let target = (w + 1) mod Ctx.node_count ctx in
              let wk =
                Ctx.create_on ctx ~target worker_cls [ Value.Addr acc ]
              in
              Ctx.send ctx wk p_work
                [ Value.int (w * rounds); Value.int rounds; Value.int w ]
            done );
      ]
    ()

let run_fanout ~faults sched =
  let machine_config = { Engine.default_config with Engine.faults } in
  let acc = acc_cls () in
  let worker = worker_cls () in
  let root = root_cls ~acc_cls:acc ~worker_cls:worker () in
  let sys =
    System.boot ~machine_config ~nodes:8 ~classes:[ acc; worker; root ] ()
  in
  let machine = System.machine sys in
  wire sched machine;
  let tl = Services.Timeline.attach sys in
  let mon = Monitor.create () in
  Probes.register_standard mon sys ();
  Monitor.attach_periodic mon machine ~interval_ns:monitor_interval_ns;
  let workers = 6 and rounds = 10 in
  let r = System.create_root sys ~node:0 root [] in
  System.send_boot sys r p_spawn [ Value.int workers; Value.int rounds ];
  System.run sys;
  let n = workers * rounds in
  let app_violations =
    match System.lookup_obj sys r with
    | Some robj -> (
        match robj.Kernel.state.(0) with
        | Value.Addr acc_addr -> (
            match System.lookup_obj sys acc_addr with
            | Some aobj ->
                let sum = Value.to_int aobj.Kernel.state.(0) in
                let count = Value.to_int aobj.Kernel.state.(1) in
                let want_sum = n * (n - 1) / 2 in
                if sum <> want_sum || count <> n then
                  [
                    ( "app",
                      Printf.sprintf
                        "fanout: sum=%d count=%d, expected sum=%d count=%d"
                        sum count want_sum n );
                  ]
                else []
            | None -> [ ("app", "fanout: accumulator object not found") ])
        | _ -> [ ("app", "fanout: root holds no accumulator address") ])
    | None -> [ ("app", "fanout: root object not found") ]
  in
  finish mon tl app_violations

let app = { w_name = "app"; w_run = (fun sched -> run_fanout ~faults:None sched) }

let faults =
  {
    w_name = "faults";
    w_run =
      (fun sched ->
        let seed = 1 + Schedule.choice sched ~tag:"fault.seed" 1_000_000 in
        let jitter = 500 * (1 + Schedule.choice sched ~tag:"fault.jitter" 4) in
        let plan =
          Network.Faults.plan ~seed ~drop:0.08 ~duplicate:0.05
            ~jitter_ns:jitter ()
        in
        run_fanout ~faults:(Some plan) sched);
  }

(* --- migration: an order-sensitive stream across forced moves -------- *)

let p_madd = Pattern.intern "chk_madd" ~arity:1
let p_mreport = Pattern.intern "chk_mreport" ~arity:0
let p_mnext = Pattern.intern "chk_mnext" ~arity:0

let mcell_cls ~result () =
  Class_def.define ~name:"chk_mcell" ~state:[| "hash"; "sum" |]
    ~init:(fun _ -> [| Value.int 0; Value.int 0 |])
    ~methods:
      [
        ( p_madd,
          fun ctx msg ->
            let k = Value.to_int (Message.arg msg 0) in
            Ctx.set ctx 0 (Value.int ((31 * Value.to_int (Ctx.get ctx 0)) + k));
            Ctx.set ctx 1 (Value.int (Value.to_int (Ctx.get ctx 1) + k)) );
        ( p_mreport,
          fun ctx _ ->
            result :=
              Some
                (Value.to_int (Ctx.get ctx 0), Value.to_int (Ctx.get ctx 1)) );
      ]
    ()

let mdriver_cls () =
  Class_def.define ~name:"chk_mdriver" ~state:[| "target"; "i"; "count" |]
    ~init:(fun args ->
      match args with
      | [ target; count ] -> [| target; Value.int 1; count |]
      | _ -> invalid_arg "chk_mdriver")
    ~methods:
      [
        ( p_mnext,
          fun ctx _ ->
            let target =
              match Ctx.get ctx 0 with Value.Addr a -> a | _ -> assert false
            in
            let i = Value.to_int (Ctx.get ctx 1) in
            let count = Value.to_int (Ctx.get ctx 2) in
            if i <= count then begin
              Ctx.send ctx target p_madd [ Value.int i ];
              Ctx.set ctx 1 (Value.int (i + 1));
              Ctx.send ctx (Ctx.self ctx) p_mnext []
            end
            else Ctx.send ctx target p_mreport [] );
      ]
    ()

let migrate_wl =
  {
    w_name = "migrate";
    w_run =
      (fun sched ->
        let faults = drawn_faults sched ~tag:"mig.fault" in
        let machine_config = { Engine.default_config with Engine.faults } in
        let result = ref None in
        let cell = mcell_cls ~result () in
        let driver = mdriver_cls () in
        let sys =
          System.boot ~machine_config ~nodes:4 ~classes:[ cell; driver ] ()
        in
        let machine = System.machine sys in
        wire sched machine;
        let tl = Services.Timeline.attach sys in
        let mig = Migrate.attach sys in
        let mon = Monitor.create () in
        Probes.register_standard mon sys ~migrate:mig ();
        Monitor.attach_periodic mon machine ~interval_ns:monitor_interval_ns;
        let count = 36 in
        let cell_addr = System.create_root sys ~node:0 cell [] in
        let d =
          System.create_root sys ~node:1 driver
            [ Value.Addr cell_addr; Value.int count ]
        in
        (* Force moves while the stream is in flight; times and targets
           come from the schedule (0 everywhere = no moves at all). *)
        let moves = Schedule.choice sched ~tag:"mig.moves" 6 in
        for k = 0 to moves - 1 do
          let to_ = Schedule.choice sched ~tag:"mig.to" 4 in
          let phase = Schedule.choice sched ~tag:"mig.phase" 8 in
          Engine.schedule_at machine
            ~time:(10_000 + (k * 25_000) + (phase * 3_000))
            (fun () -> ignore (Migrate.move mig ~canon:cell_addr ~to_))
        done;
        System.send_boot sys d p_mnext [];
        System.run sys;
        let want_hash, want_sum =
          List.fold_left
            (fun (h, s) k -> ((31 * h) + k, s + k))
            (0, 0)
            (List.init count (fun i -> i + 1))
        in
        let app_violations =
          match !result with
          | Some (h, s) when h = want_hash && s = want_sum -> []
          | Some (h, s) ->
              [
                ( "app",
                  Printf.sprintf
                    "migrate stream: hash=%d sum=%d, expected hash=%d sum=%d \
                     (reorder or loss)"
                    h s want_hash want_sum );
              ]
          | None -> [ ("app", "migrate stream: report never arrived") ]
        in
        finish mon tl app_violations);
  }

(* --- DGC churn with aggregation riding -------------------------------- *)

let p_poke = Pattern.intern "chk_poke" ~arity:1
let p_churn = Pattern.intern "chk_churn" ~arity:2

let gcell_cls () =
  Class_def.define ~name:"chk_gcell" ~state:[| "v" |]
    ~init:(fun _ -> [| Value.int 0 |])
    ~methods:[ (p_poke, fun ctx msg -> Ctx.set ctx 0 (Message.arg msg 0)) ]
    ()

let churner_cls ~cell () =
  Class_def.define ~name:"chk_churner" ~state:[| "ref" |]
    ~init:(fun _ -> [| Value.unit |])
    ~methods:
      [
        ( p_churn,
          fun ctx msg ->
            let i = Value.to_int (Message.arg msg 0) in
            let n = Value.to_int (Message.arg msg 1) in
            if i < n then begin
              let p = Ctx.node_count ctx in
              let target = (Ctx.node_id ctx + 1 + (i mod (p - 1))) mod p in
              let a = Ctx.create_on ctx ~target cell [] in
              Ctx.send ctx a p_poke [ Value.int i ];
              (* keep only the newest reference: garbage every cycle *)
              Ctx.set ctx 0 (Value.Addr a);
              Ctx.send ctx (Ctx.self ctx) p_churn
                [ Value.int (i + 1); Value.int n ]
            end );
      ]
    ()

let dgc_wl =
  {
    w_name = "dgc";
    w_run =
      (fun sched ->
        let faults = drawn_faults sched ~tag:"dgc.fault" in
        let machine_config =
          {
            Engine.default_config with
            Engine.faults;
            coalesce = Some Machine.Coalesce.default_config;
          }
        in
        let cell = gcell_cls () in
        let churner = churner_cls ~cell () in
        let sys =
          System.boot ~machine_config ~nodes:4 ~classes:[ cell; churner ] ()
        in
        let machine = System.machine sys in
        wire sched machine;
        let tl = Services.Timeline.attach sys in
        let interval_ns =
          100_000 + (10_000 * Schedule.choice sched ~tag:"dgc.phase" 8)
        in
        let g = Dgc.attach ~interval_ns sys in
        let mon = Monitor.create () in
        Probes.register_standard mon sys ~dgc:g ();
        Monitor.attach_periodic mon machine ~interval_ns:monitor_interval_ns;
        for node = 0 to 3 do
          let c = System.create_root sys ~node churner [] in
          System.send_boot sys c p_churn [ Value.int 0; Value.int 24 ]
        done;
        System.run sys;
        Dgc.settle g;
        let extra =
          let report = Diagnostics.survey sys in
          if Diagnostics.is_clean report then []
          else
            [
              ( "app",
                Format.asprintf "dgc churn: unclean quiescence: %a"
                  Diagnostics.pp report );
            ]
        in
        finish mon tl extra);
  }

(* --- coalesced bursts: exactly-once FIFO per channel ------------------ *)

type Machine.Am.payload += Chk_seq of { k : int }

let coalesce_wl =
  {
    w_name = "coalesce";
    w_run =
      (fun sched ->
        let faults = drawn_faults sched ~tag:"co.fault" in
        let config =
          {
            Engine.default_config with
            Engine.faults;
            coalesce = Some Machine.Coalesce.default_config;
          }
        in
        let m = Engine.create ~config ~nodes:8 () in
        wire sched m;
        let tl = Services.Timeline.attach_machine m in
        let mon = Monitor.create () in
        Monitor.register mon ~name:"reliable" ~when_:Monitor.At_quiescence
          (Probes.reliable m);
        Monitor.register mon ~name:"coalesce" ~when_:Monitor.At_quiescence
          (Probes.coalesce m);
        Monitor.attach_periodic mon m ~interval_ns:monitor_interval_ns;
        let senders = 3 and dests = 2 and rounds = 3 and burst = 16 in
        let next = Hashtbl.create 16 in
        let bad = ref [] in
        let h =
          Engine.register_handler m Machine.Am.Service ~name:"chk-seq"
            (fun _ node am ->
              match am.Machine.Am.payload with
              | Chk_seq { k } ->
                  let ch = (am.Machine.Am.src, Machine.Node.id node) in
                  let expect =
                    Option.value (Hashtbl.find_opt next ch) ~default:0
                  in
                  if k <> expect then
                    bad :=
                      Printf.sprintf
                        "channel %d->%d: received %d, expected %d (FIFO \
                         broken)"
                        (fst ch) (snd ch) k expect
                      :: !bad;
                  Hashtbl.replace next ch (max (k + 1) expect)
              | _ -> ())
        in
        let sent = Hashtbl.create 16 in
        for r = 0 to rounds - 1 do
          Engine.schedule_at m ~time:(r * 40_000) (fun () ->
              for s = 0 to senders - 1 do
                let src = Engine.node m s in
                Engine.post m src (fun () ->
                    for d = 1 to dests do
                      let dst = (s + (d * 3)) mod 8 in
                      for _ = 1 to burst do
                        let ch = (s, dst) in
                        let k =
                          Option.value (Hashtbl.find_opt sent ch) ~default:0
                        in
                        Hashtbl.replace sent ch (k + 1);
                        Engine.send_am m ~src ~dst ~handler:h ~size_bytes:8
                          (Chk_seq { k })
                      done
                    done)
              done)
        done;
        Engine.run m;
        Hashtbl.iter
          (fun ch k ->
            let got = Option.value (Hashtbl.find_opt next ch) ~default:0 in
            if got <> k then
              bad :=
                Printf.sprintf "channel %d->%d: delivered %d of %d sent"
                  (fst ch) (snd ch) got k
                :: !bad)
          sent;
        let extra = List.map (fun d -> ("app", d)) (List.rev !bad) in
        finish mon tl extra);
  }

(* --- crash recovery: kill nodes mid-burst, restore, replay ------------ *)

let recover_wl =
  {
    w_name = "recover";
    w_run =
      (fun sched ->
        (* The recovery manager needs a live reliable layer, so a fault
           plan always exists here; its drop rate (possibly zero) is
           drawn on top. *)
        let seed = 1 + Schedule.choice sched ~tag:"rec.seed" 1_000_000 in
        let drop =
          0.02 *. float_of_int (Schedule.choice sched ~tag:"rec.drop" 3)
        in
        let plan =
          Network.Faults.plan ~seed ~drop ~duplicate:0.0 ~jitter_ns:500 ()
        in
        let config =
          { Engine.default_config with Engine.faults = Some plan }
        in
        let nodes = 8 in
        let m = Engine.create ~config ~nodes () in
        wire sched m;
        let tl = Services.Timeline.attach_machine m in
        (* Receive-side state lives in per-node tables so a checkpoint
           can snapshot exactly one node's slice and a crash can wipe
           exactly that slice. *)
        let next = Array.init nodes (fun _ -> Hashtbl.create 16) in
        let bad = ref [] in
        let h =
          Engine.register_handler m Machine.Am.Service ~name:"chk-rec-seq"
            (fun _ node am ->
              match am.Machine.Am.payload with
              | Chk_seq { k } ->
                  let me = Machine.Node.id node in
                  let src = am.Machine.Am.src in
                  let expect =
                    Option.value (Hashtbl.find_opt next.(me) src) ~default:0
                  in
                  if k <> expect then
                    bad :=
                      Printf.sprintf
                        "channel %d->%d: received %d, expected %d (FIFO or \
                         exactly-once broken)"
                        src me k expect
                      :: !bad;
                  Hashtbl.replace next.(me) src (max (k + 1) expect)
              | _ -> ())
        in
        let app =
          {
            Recover.Manager.a_snapshot =
              (fun node ->
                let slice =
                  Hashtbl.fold
                    (fun src k acc -> (src, k) :: acc)
                    next.(node) []
                in
                Some (Marshal.to_bytes (List.sort compare slice) []));
            a_restore =
              (fun node b ->
                Hashtbl.reset next.(node);
                List.iter
                  (fun (src, k) -> Hashtbl.replace next.(node) src k)
                  (Marshal.from_bytes b 0 : (int * int) list));
            a_reset = (fun node -> Hashtbl.reset next.(node));
          }
        in
        let crashes =
          let n = Schedule.choice sched ~tag:"rec.crashes" 3 in
          let first = Schedule.choice sched ~tag:"rec.victim" nodes in
          List.init n (fun k ->
              {
                (* Distinct victims: a node never crashes twice here. *)
                Recover.Manager.cs_node = (first + (3 * k)) mod nodes;
                cs_at =
                  25_000 + (k * 35_000)
                  + (2_000 * Schedule.choice sched ~tag:"rec.phase" 8);
                cs_down_ns =
                  20_000 + (5_000 * Schedule.choice sched ~tag:"rec.down" 5);
                cs_jitter_ns = 2_000;
              })
        in
        let mgr = Recover.Manager.attach m ~app ~crashes () in
        let mon = Monitor.create () in
        Monitor.register mon ~name:"reliable" ~when_:Monitor.At_quiescence
          (Probes.reliable m);
        Probes.register_recovery mon mgr;
        Monitor.attach_periodic mon m ~interval_ns:monitor_interval_ns;
        let senders = 3 and dests = 2 and rounds = 3 and burst = 12 in
        (* Sent counters tick at actual send time, so bursts wiped from a
           crashed sender's run queue never count as sent. *)
        let sent = Hashtbl.create 16 in
        for r = 0 to rounds - 1 do
          Engine.schedule_at m ~time:(10_000 + (r * 40_000)) (fun () ->
              for s = 0 to senders - 1 do
                let src = Engine.node m s in
                Engine.post m src (fun () ->
                    for d = 1 to dests do
                      let dst = (s + (d * 3)) mod nodes in
                      for _ = 1 to burst do
                        let ch = (s, dst) in
                        let k =
                          Option.value (Hashtbl.find_opt sent ch) ~default:0
                        in
                        Hashtbl.replace sent ch (k + 1);
                        Engine.send_am m ~src ~dst ~handler:h ~size_bytes:8
                          (Chk_seq { k })
                      done
                    done)
              done)
        done;
        Engine.run m;
        Hashtbl.iter
          (fun (s, dstn) k ->
            let got =
              Option.value (Hashtbl.find_opt next.(dstn) s) ~default:0
            in
            if got <> k then
              bad :=
                Printf.sprintf "channel %d->%d: delivered %d of %d sent" s
                  dstn got k
                :: !bad)
          sent;
        let extra = List.map (fun d -> ("app", d)) (List.rev !bad) in
        finish mon tl extra);
  }

(* --- the lifted envelope: faults + coalescing + crash recovery -------- *)

let hostile_wl =
  {
    w_name = "hostile";
    w_run =
      (fun sched ->
        (* The full lifted feature envelope in one run: a lossy,
           duplicating fabric under per-destination batching, with the
           recovery manager crashing nodes mid-burst. This is exactly
           the composition the parallel engine admits; the explorer
           perturbs its decision points sequentially and checks the
           same invariants (exactly-once FIFO per channel, quiescent
           recovery, drained reliable layer). *)
        let seed = 1 + Schedule.choice sched ~tag:"ho.seed" 1_000_000 in
        let drop =
          0.02 *. float_of_int (Schedule.choice sched ~tag:"ho.drop" 3)
        in
        let plan =
          Network.Faults.plan ~seed ~drop ~duplicate:0.02 ~jitter_ns:500 ()
        in
        let config =
          {
            Engine.default_config with
            Engine.faults = Some plan;
            coalesce =
              Some
                {
                  Machine.Coalesce.default_config with
                  Machine.Coalesce.max_delay_ns = 2_000;
                };
          }
        in
        let nodes = 8 in
        let m = Engine.create ~config ~nodes () in
        wire sched m;
        let tl = Services.Timeline.attach_machine m in
        let next = Array.init nodes (fun _ -> Hashtbl.create 16) in
        let bad = ref [] in
        let h =
          Engine.register_handler m Machine.Am.Service ~name:"chk-hostile-seq"
            (fun _ node am ->
              match am.Machine.Am.payload with
              | Chk_seq { k } ->
                  let me = Machine.Node.id node in
                  let src = am.Machine.Am.src in
                  let expect =
                    Option.value (Hashtbl.find_opt next.(me) src) ~default:0
                  in
                  if k <> expect then
                    bad :=
                      Printf.sprintf
                        "channel %d->%d: received %d, expected %d (FIFO or \
                         exactly-once broken)"
                        src me k expect
                      :: !bad;
                  Hashtbl.replace next.(me) src (max (k + 1) expect)
              | _ -> ())
        in
        let app =
          {
            Recover.Manager.a_snapshot =
              (fun node ->
                let slice =
                  Hashtbl.fold
                    (fun src k acc -> (src, k) :: acc)
                    next.(node) []
                in
                Some (Marshal.to_bytes (List.sort compare slice) []));
            a_restore =
              (fun node b ->
                Hashtbl.reset next.(node);
                List.iter
                  (fun (src, k) -> Hashtbl.replace next.(node) src k)
                  (Marshal.from_bytes b 0 : (int * int) list));
            a_reset = (fun node -> Hashtbl.reset next.(node));
          }
        in
        let crashes =
          let first = Schedule.choice sched ~tag:"ho.victim" nodes in
          List.init 2 (fun k ->
              {
                (* Distinct victims, like the recover workload. *)
                Recover.Manager.cs_node = (first + (4 * k)) mod nodes;
                cs_at =
                  30_000 + (k * 45_000)
                  + (2_000 * Schedule.choice sched ~tag:"ho.phase" 8);
                cs_down_ns = 25_000;
                cs_jitter_ns = 2_000;
              })
        in
        let mgr = Recover.Manager.attach m ~app ~crashes () in
        let mon = Monitor.create () in
        Monitor.register mon ~name:"reliable" ~when_:Monitor.At_quiescence
          (Probes.reliable m);
        Monitor.register mon ~name:"coalesce" ~when_:Monitor.At_quiescence
          (Probes.coalesce m);
        Probes.register_recovery mon mgr;
        Monitor.attach_periodic mon m ~interval_ns:monitor_interval_ns;
        let senders = 3 and dests = 2 and rounds = 3 and burst = 12 in
        let sent = Hashtbl.create 16 in
        for r = 0 to rounds - 1 do
          Engine.schedule_at m ~time:(10_000 + (r * 40_000)) (fun () ->
              for s = 0 to senders - 1 do
                let src = Engine.node m s in
                Engine.post m src (fun () ->
                    for d = 1 to dests do
                      let dst = (s + (d * 3)) mod nodes in
                      for _ = 1 to burst do
                        let ch = (s, dst) in
                        let k =
                          Option.value (Hashtbl.find_opt sent ch) ~default:0
                        in
                        Hashtbl.replace sent ch (k + 1);
                        Engine.send_am m ~src ~dst ~handler:h ~size_bytes:8
                          (Chk_seq { k })
                      done
                    done)
              done)
        done;
        Engine.run m;
        Hashtbl.iter
          (fun (s, dstn) k ->
            let got =
              Option.value (Hashtbl.find_opt next.(dstn) s) ~default:0
            in
            if got <> k then
              bad :=
                Printf.sprintf "channel %d->%d: delivered %d of %d sent" s
                  dstn got k
                :: !bad)
          sent;
        let extra = List.map (fun d -> ("app", d)) (List.rev !bad) in
        finish mon tl extra);
  }

(* --- open-loop traffic: sharded KV tier under faults + churn ---------- *)

let traffic_wl =
  {
    w_name = "traffic";
    w_run =
      (fun sched ->
        let faults = drawn_faults sched ~tag:"tr.fault" in
        let machine_config = { Engine.default_config with Engine.faults } in
        let nodes = 4 in
        let kv =
          Apps.Kv_store.create ~shards:4 ~keys_per_shard:4 ~mget_fan:2 ()
        in
        let sys =
          System.boot ~machine_config ~nodes
            ~classes:(Apps.Kv_store.classes kv)
            ()
        in
        let machine = System.machine sys in
        wire sched machine;
        let tl = Services.Timeline.attach sys in
        Apps.Kv_store.spawn kv sys;
        let mig = Migrate.attach sys in
        let mon = Monitor.create () in
        Probes.register_standard mon sys ~migrate:mig ();
        Monitor.attach_periodic mon machine ~interval_ns:monitor_interval_ns;
        let lg =
          Traffic.Loadgen.launch
            {
              Traffic.Loadgen.default_config with
              Traffic.Loadgen.seed =
                1 + Schedule.choice sched ~tag:"tr.seed" 1_000_000;
              rate_rps = 400_000;
              requests = 60;
            }
            sys kv
        in
        Monitor.register mon ~name:"traffic" ~when_:Monitor.At_quiescence
          (Probes.traffic sys lg);
        (* Force shard moves while requests are in flight; everything —
           whether any move happens at all — comes from the schedule, so
           shrinking toward zeros turns the churn off. *)
        let moves = Schedule.choice sched ~tag:"tr.moves" 4 in
        for k = 0 to moves - 1 do
          let shard = Schedule.choice sched ~tag:"tr.shard" 4 in
          let to_ = Schedule.choice sched ~tag:"tr.to" nodes in
          let phase = Schedule.choice sched ~tag:"tr.phase" 8 in
          Engine.schedule_at machine
            ~time:(15_000 + (k * 30_000) + (phase * 2_000))
            (fun () ->
              ignore
                (Migrate.move mig
                   ~canon:(Apps.Kv_store.shard_addr kv shard)
                   ~to_))
        done;
        System.run sys;
        finish mon tl []);
  }

(* --- multiactive: read-heavy skewed traffic into annotated shards ----- *)

let multiactive_wl =
  {
    w_name = "multiactive";
    w_run =
      (fun sched ->
        let faults = drawn_faults sched ~tag:"ma.fault" in
        let machine_config = { Engine.default_config with Engine.faults } in
        let nodes = 4 in
        let kv =
          Apps.Kv_store.create ~shards:4 ~keys_per_shard:4 ~mget_fan:2
            ~multiactive:true ~ma_budget:3 ()
        in
        let sys =
          System.boot ~machine_config ~nodes
            ~classes:(Apps.Kv_store.classes kv)
            ()
        in
        let machine = System.machine sys in
        wire sched machine;
        let tl = Services.Timeline.attach sys in
        Apps.Kv_store.spawn kv sys;
        let mig = Migrate.attach sys in
        let mon = Monitor.create () in
        Probes.register_standard mon sys ~migrate:mig ();
        Monitor.attach_periodic mon machine ~interval_ns:monitor_interval_ns;
        (* Read-heavy and Zipf-skewed, so one hot shard actually builds
           the overlapping read backlog the admission rules govern; the
           deferral ("ma.admit.defer") and pump-order ("ma.pump.pick")
           decision points are drawn from the schedule like every other
           choice. *)
        let lg =
          Traffic.Loadgen.launch
            {
              Traffic.Loadgen.default_config with
              Traffic.Loadgen.seed =
                1 + Schedule.choice sched ~tag:"ma.seed" 1_000_000;
              rate_rps = 400_000;
              requests = 60;
              mix =
                { Traffic.Loadgen.m_get = 90; m_put = 6; m_cas = 3; m_mget = 1 };
              key_dist = Traffic.Loadgen.Zipf 1.1;
            }
            sys kv
        in
        Monitor.register mon ~name:"traffic" ~when_:Monitor.At_quiescence
          (Probes.traffic sys lg);
        (* Shard moves mid-run exercise drain-before-freeze: the freeze
           must wait for the running activation set to empty and ship
           the group queues intact. *)
        let moves = Schedule.choice sched ~tag:"ma.moves" 4 in
        for k = 0 to moves - 1 do
          let shard = Schedule.choice sched ~tag:"ma.shard" 4 in
          let to_ = Schedule.choice sched ~tag:"ma.to" nodes in
          let phase = Schedule.choice sched ~tag:"ma.phase" 8 in
          Engine.schedule_at machine
            ~time:(15_000 + (k * 30_000) + (phase * 2_000))
            (fun () ->
              ignore
                (Migrate.move mig
                   ~canon:(Apps.Kv_store.shard_addr kv shard)
                   ~to_))
        done;
        System.run sys;
        finish mon tl []);
  }

let all =
  [
    app;
    faults;
    migrate_wl;
    dgc_wl;
    coalesce_wl;
    recover_wl;
    hostile_wl;
    traffic_wl;
    multiactive_wl;
  ]

let find name = List.find_opt (fun w -> w.w_name = name) all
