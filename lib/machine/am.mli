(** Active messages: a packet that carries the identifier of the handler
    that will run on delivery (the paper's "self-dispatching message
    handler", Section 5.1).

    [payload] is an extensible variant so upper layers (the ABCL runtime,
    services) can define their own message contents without this layer
    depending on them. *)

type payload = ..

type payload += Ping  (** built-in no-op payload, used by tests/benches *)

(** The paper's four handler categories (Section 5.1). *)
type category =
  | Object_message  (** normal message transmission between objects *)
  | Create_request  (** request for remote object creation *)
  | Chunk_reply  (** reply to a remote memory allocation request *)
  | Service  (** load balancing, GC, termination, ... *)

type t = {
  handler : int;  (** index into the machine's handler table *)
  src : int;  (** sending node *)
  size_bytes : int;  (** payload size on the wire *)
  payload : payload;
}

val category_name : category -> string
