(** Per-node state of the simulated multicomputer.

    A node owns a virtual clock, an inbox of delivered-but-unpolled active
    messages, the node-global scheduling queue of the paper (represented
    as thunks: "a pointer to the object and a continuation address"), and
    an opaque [local] slot where the language runtime stores its per-node
    structures (object table, chunk stocks, ...). *)

type local = ..
type local += No_local

type t

val create : id:int -> t

val id : t -> int

val clock : t -> Simcore.Clock.t

val now : t -> Simcore.Time.t

val charge_ns : t -> int -> unit
(** Advance the node clock by a duration in nanoseconds. *)

(** {2 Runtime-local state} *)

val local : t -> local
val set_local : t -> local -> unit

(** {2 Inbox (network side)} *)

val inbox_push : t -> arrival:Simcore.Time.t -> Am.t -> unit

val set_inbox_tie_break : t -> (int -> int) option -> unit
(** Installs a same-arrival-time tie-break on the inbox (see
    {!Simcore.Event_queue.set_tie_break}). Only messages from distinct
    sources landing at the same instant are genuinely concurrent —
    same-source runs (e.g. released together by the reliable layer's
    reorder buffer) keep their sequenced order — so [choose n] ranges
    over the distinct sources present and picks whose earliest message
    polls first. The schedule explorer perturbs poll order through this
    hook. *)

val inbox_pop_ready : t -> (Simcore.Time.t * Am.t) option
(** Pops the oldest message whose arrival time is <= the node clock. *)

val inbox_next_arrival : t -> Simcore.Time.t option

val inbox_size : t -> int

val inbox_iter : (Am.t -> unit) -> t -> unit
(** Visits every delivered-but-unpolled message, in unspecified order,
    without removing anything. For inspection passes (GC analysis). *)

(** {2 Scheduling queue} *)

val runq_push : t -> (unit -> unit) -> unit
val runq_pop : t -> (unit -> unit) option
val runq_size : t -> int

(** {2 Engine bookkeeping} *)

val is_idle : t -> bool
val set_idle : t -> bool -> unit

(** {2 Heap accounting (for memory reports)} *)

val heap_alloc_words : t -> int -> unit

val heap_free_words : t -> int -> unit
(** Returns words to the heap accounting (clamped at zero); the GC calls
    this when objects are reclaimed. *)

val heap_words : t -> int

(** {2 Interrupt masking} *)

val interrupts_masked : t -> bool
val set_interrupts_masked : t -> bool -> unit

(** {2 Engine wake bookkeeping} *)

val next_wake : t -> Simcore.Time.t
(** Earliest scheduled wake-up for this node ([max_int] when none). *)

val set_next_wake : t -> Simcore.Time.t -> unit

(** {2 Crash} *)

val crash_reset : t -> unit
(** Drops every piece of volatile state — inbox, scheduling queue, heap
    accounting, interrupt mask, wake bookkeeping — and marks the node
    idle. The clock is {e not} reset: it is the engine's virtual-time
    cursor, and the restarted incarnation resumes at (not before) the
    crash instant. The opaque [local] slot is left for the runtime's
    crash hook to wipe. *)
