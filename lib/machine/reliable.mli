(** Reliable-delivery protocol state, sitting between the Active-Message
    layer and a faulty fabric.

    Every ordered (src, dst) node pair is a {e channel}. The sender side
    stamps each outgoing AM with a per-channel sequence number, keeps it
    buffered until acknowledged, and retransmits on a timer with
    exponential backoff (capped). The receiver side discards duplicates,
    holds out-of-order frames in a reorder buffer, and releases messages
    in sequence order — re-establishing the exactly-once per-channel FIFO
    dispatch that the rest of the runtime (mode VFTs, chunk stocks,
    termination detection) silently depends on. Acknowledgements are
    cumulative and piggybacked on reverse-direction data frames; a
    delayed-ack timer covers one-way traffic.

    This module is a passive state machine: {!Engine} owns the event
    queue and the fabric, and drives it by calling these transitions in
    virtual-time order. All state is deterministic — no clocks, no
    randomness — so seeded runs replay exactly. *)

type config = {
  window : int;  (** max unacknowledged frames per channel *)
  ack_delay_ns : int;  (** delayed standalone-ack timeout *)
  rto_ns : int;
      (** retransmission timeout before any RTT sample, and the floor of
          the per-channel adaptive estimate (smoothed RTT plus four
          deviations, RFC 6298 shape; retransmitted frames never yield
          samples, per Karn's rule) *)
  backoff : int;  (** RTO multiplier applied per retransmission *)
  max_rto_ns : int;  (** RTO ceiling *)
  max_retries : int;
      (** consecutive retransmissions of one frame before the channel is
          declared broken (raises [Failure] — silently losing a message
          would violate every invariant above) *)
}

val default_config : config
(** window 64, 20 us delayed ack, 200 us initial/minimum RTO doubling to
    a 5 ms cap on consecutive losses, 64 retries (several seconds of a
    fully-partitioned channel). The adaptive estimator tracks each
    channel's real ack round trip — including injection-port queueing
    behind send bursts — so retransmissions mean actual loss. *)

type frame = {
  fr_seq : int;  (** data sequence number; [-1] on pure-ack frames *)
  fr_ack : int;  (** cumulative ack for the reverse channel *)
  fr_data : Am.t option;  (** [None] on pure-ack frames *)
}

val frame_bytes : int
(** Wire overhead of the protocol header (sequence + ack words). *)

type t

val create : ?config:config -> nodes:int -> unit -> t

val config : t -> config

(** {2 Stable-store journal}

    Crash recovery models the protocol's sequence registers and its
    unacknowledged-message buffer as {e journaled}: a recovery manager
    registers these hooks and mirrors every mutation into simulated
    stable storage the moment it happens (pessimistic logging — the
    write is on the send/deliver path, never deferred). The protocol
    itself never reads the journal; after a crash the manager charges
    the recovering node for reconstructing exactly this state. *)

type journal = {
  j_sent : src:int -> dst:int -> seq:int -> Am.t -> unit;
      (** a message was assigned sequence number [seq] and entered the
          channel's retransmission buffer (initial send or backlog
          release) *)
  j_queued : src:int -> dst:int -> Am.t -> unit;
      (** a message joined the channel backlog (window full) *)
  j_acked : src:int -> dst:int -> base:int -> unit;
      (** the send window advanced: everything below [base] is
          acknowledged and its log entries may be pruned *)
  j_released : src:int -> dst:int -> expected:int -> unit;
      (** the receive cursor advanced: everything below [expected] was
          released in order (and will be cumulatively acked) *)
}

val set_journal : t -> journal option -> unit

(** {2 Sender side} *)

val push :
  t -> src:int -> dst:int -> now:Simcore.Time.t -> Am.t -> [ `Send of frame | `Queued ]
(** Accepts a message for transmission. If the channel window has room
    the message is sequenced, buffered for retransmission and returned
    as a frame (with the current piggybacked ack — any pending standalone
    ack for the reverse channel is suppressed); otherwise it joins the
    channel backlog and is released by future acks. *)

val note_eta :
  t -> src:int -> dst:int -> seq:int -> eta:Simcore.Time.t -> unit
(** Refines a buffered frame's arrival estimate with the fabric's answer
    (which includes injection-port queueing behind a send burst). The
    retransmission deadline counts from this estimate, and RTT samples
    measure the ack turnaround beyond it, so source-side queueing is
    never mistaken for loss. Call after transmitting a data frame; a
    no-op if the frame was acked in the meantime. *)

val on_ack : t -> src:int -> dst:int -> ack:int -> now:Simcore.Time.t -> frame list
(** Processes a cumulative ack received by [src] for its channel towards
    [dst]: forgets acknowledged frames, resets the RTO (progress), and
    returns backlog messages that now fit the window, already sequenced
    and buffered — the caller must transmit them. *)

val timer_request : t -> src:int -> dst:int -> now:Simcore.Time.t -> Simcore.Time.t option
(** After {!push} or {!on_ack}, asks whether a retransmit-timer event
    must be scheduled for the channel. Returns the deadline at most once
    per armed period — while the returned event is pending, subsequent
    calls return [None]. *)

val on_timer :
  t ->
  src:int ->
  dst:int ->
  now:Simcore.Time.t ->
  [ `Idle | `Wait of Simcore.Time.t | `Retransmit of frame * Simcore.Time.t ]
(** Fires the channel's retransmit timer. [`Idle]: nothing unacked, stop.
    [`Wait t]: an ack moved the deadline; re-schedule at [t].
    [`Retransmit (f, t)]: resend [f] (the oldest unacked frame, carrying
    a fresh piggybacked ack) and re-schedule at [t]; the RTO has been
    backed off. Raises [Failure] after [max_retries] consecutive
    retransmissions of the same frame. *)

(** {2 Receiver side} *)

val on_data :
  t -> src:int -> dst:int -> seq:int -> Am.t -> [ `Deliver of Am.t list | `Duplicate | `Reordered ]
(** Accepts data frame [seq] on channel (src, dst). [`Deliver ams]: the
    frame was in order; dispatch [ams] (it plus any directly following
    frames released from the reorder buffer), in list order.
    [`Duplicate]: already delivered; discard (but re-ack — the previous
    ack may have been lost). [`Reordered]: buffered until the gap
    fills. *)

val ack_needed :
  t -> me:int -> peer:int -> now:Simcore.Time.t -> Simcore.Time.t option
(** Notes that channel (peer, me) owes an acknowledgement. Returns
    [Some t] if a standalone-ack timer should be scheduled at [t] (none
    was pending); reverse data before [t] will piggyback the ack and
    cancel it. *)

val on_ack_timer : t -> me:int -> peer:int -> frame option
(** Fires the delayed-ack timer: [Some frame] is the pure-ack frame to
    transmit, [None] if the ack was piggybacked in the meantime. *)

(** {2 Introspection} *)

val in_flight : t -> int
(** Messages accepted by {!push} and not yet acknowledged (buffered,
    backlogged or on the wire) across all channels. Zero at clean
    quiescence: every message the runtime sent was delivered and
    acknowledged despite the faults. *)

val reorder_buffered : t -> int
(** Frames parked in receive-side reorder buffers, waiting for an
    earlier sequence number, across all channels. Zero at clean
    quiescence — a stuck entry means a hole was never filled. *)

val channel_states : t -> (int * int * int * int * int * int) list
(** Per active tx channel, sorted: [(src, dst, next_seq, base, inflight,
    backlogged)]. At clean quiescence [base = next_seq] and the last two
    are 0 on every channel — the invariant-monitor view. *)

val take_piggyback : t -> me:int -> peer:int -> now:Simcore.Time.t -> int
(** Current cumulative ack [me] owes for traffic arriving from [peer],
    for stamping onto an outgoing data frame or batch that reaches the
    wire at [now]. Cancels (and counts as piggybacked) a pending
    standalone ack, but only when [now] is no later than that ack's
    deadline — a carrier stamped with a virtual-future time must not
    cancel the prompt standalone ack (optimistic per-node clocks). *)

val rx_expected : t -> src:int -> dst:int -> int
(** The receive cursor of channel (src, dst): the next in-order sequence
    number the receiver will release (0 for a never-used channel). The
    recovery audit compares this against the journal's released cursor —
    an acked-but-unjournaled message would be lost by a crash. *)

val node_retransmits : t -> int -> int
val node_dup_discards : t -> int -> int
val node_acks_sent : t -> int -> int

val node_acks_piggybacked : t -> int -> int
(** Pending standalone acks a node cancelled because outgoing data (a
    frame or a flushed batch) carried the cumulative ack instead. *)

val rto_histogram : t -> int -> Simcore.Histogram.t
(** Per sending node: the distribution of RTO values in force at each
    retransmission — the tail shows how deep the backoff had to go. *)
