type local = ..
type local += No_local

type t = {
  id : int;
  clock : Simcore.Clock.t;
  (* arrival-ordered: a message becomes visible once the clock passes its
     arrival timestamp *)
  inbox : Am.t Simcore.Event_queue.t;
  runq : (unit -> unit) Queue.t;
  mutable idle : bool;
  mutable local : local;
  mutable heap_words : int;
  mutable interrupts_masked : bool;
  mutable next_wake : Simcore.Time.t;  (** earliest scheduled Wake; max_int if none *)
}

let create ~id =
  {
    id;
    clock = Simcore.Clock.create ();
    inbox = Simcore.Event_queue.create ();
    runq = Queue.create ();
    idle = true;
    local = No_local;
    heap_words = 0;
    interrupts_masked = false;
    next_wake = max_int;
  }

let id t = t.id
let clock t = t.clock
let now t = Simcore.Clock.now t.clock
let charge_ns t ns = Simcore.Clock.advance_by t.clock ns
let local t = t.local
let set_local t l = t.local <- l
let inbox_push t ~arrival am = Simcore.Event_queue.add t.inbox ~time:arrival am
(* Same-time inbox entries from one source are not concurrent: the
   reliable layer releases a sequenced run in a single event, and its
   order is part of the per-channel FIFO contract. Only the earliest
   entry per source is a legal pick, so the chooser ranges over the
   distinct sources present. *)
let set_inbox_tie_break t choose =
  Simcore.Event_queue.set_tie_break t.inbox
    (Option.map
       (fun f ams ->
         let seen = Hashtbl.create 8 in
         let legal = ref [] in
         Array.iteri
           (fun i (am : Am.t) ->
             if not (Hashtbl.mem seen am.Am.src) then begin
               Hashtbl.add seen am.Am.src ();
               legal := i :: !legal
             end)
           ams;
         match List.rev !legal with
         | [] | [ _ ] -> 0
         | legal ->
             let legal = Array.of_list legal in
             let n = Array.length legal in
             let k = f n in
             legal.(if k < 0 || k >= n then 0 else k))
       choose)

let inbox_pop_ready t =
  match Simcore.Event_queue.peek_time t.inbox with
  | Some arrival when arrival <= now t -> Simcore.Event_queue.pop t.inbox
  | Some _ | None -> None

let inbox_next_arrival t = Simcore.Event_queue.peek_time t.inbox
let inbox_size t = Simcore.Event_queue.size t.inbox
let inbox_iter f t = Simcore.Event_queue.iter (fun _ am -> f am) t.inbox
let runq_push t thunk = Queue.push thunk t.runq
let runq_pop t = Queue.take_opt t.runq
let runq_size t = Queue.length t.runq
let is_idle t = t.idle
let set_idle t b = t.idle <- b
let heap_alloc_words t w = t.heap_words <- t.heap_words + w
let heap_free_words t w = t.heap_words <- max 0 (t.heap_words - w)
let heap_words t = t.heap_words
let interrupts_masked t = t.interrupts_masked
let set_interrupts_masked t b = t.interrupts_masked <- b
let next_wake t = t.next_wake
let set_next_wake t v = t.next_wake <- v

(* kill -9: volatile state is gone. The clock survives — it is the
   engine's virtual-time cursor for the node, not node memory — and the
   [local] slot is wiped by the runtime's own crash hook, which knows
   what lives there. *)
let crash_reset t =
  Simcore.Event_queue.clear t.inbox;
  Queue.clear t.runq;
  t.idle <- true;
  t.heap_words <- 0;
  t.interrupts_masked <- false;
  t.next_wake <- max_int
