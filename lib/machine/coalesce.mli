(** Per-destination aggregation of outgoing frames.

    Sits between the active-message layer and the fabric (or the
    reliable layer's framing, when a fault plan is live): each node
    keeps one open buffer per destination, appends outgoing frames to
    it, and flushes the buffer as a single multi-frame packet — one
    routing header, one hardware launch — when a threshold, idle,
    deadline, ack or credit trigger fires.

    The module is a passive state machine over abstract frames ['a]
    (bare {!Am.t} on a perfect network, {!Reliable.frame} under a fault
    plan): the engine owns all clocks, events and fabric calls and asks
    this module only for verdicts and bookkeeping. A frame offered to an
    empty buffer while the source injection port is idle bypasses
    aggregation entirely, keeping the single-message latency path
    bit-identical to the unbatched build. *)

type config = {
  max_batch_bytes : int;  (** flush when the buffer reaches this size *)
  max_batch_frames : int;  (** or this many frames *)
  max_delay_ns : int;  (** age bound for buffers on a busy node *)
  credits : int;
      (** per-channel flow control: max batches (or bypass singles)
          outstanding — flushed but not yet landed — per destination *)
}

val default_config : config
(** 512 B / 16 frames / 5 us / 4 credits. *)

type 'a t

val create : ?config:config -> nodes:int -> unit -> 'a t
val config : 'a t -> config

(** Why a buffer was flushed (recorded per flush for diagnostics). *)
type cause = Size | Idle | Deadline | Ack | Credit

val cause_name : cause -> string

type verdict =
  [ `Bypass  (** send alone now: empty buffer, idle port, credit held *)
  | `Opened  (** buffered into a fresh buffer: arm a deadline event *)
  | `Buffered  (** appended to an already-open buffer *)
  | `Threshold  (** appended and the size/frame threshold tripped: flush *)
  ]

val offer :
  'a t ->
  src:int ->
  dst:int ->
  now:Simcore.Time.t ->
  bytes:int ->
  port_free:bool ->
  'a ->
  verdict
(** Routes one outgoing frame. [bytes] is the frame's wire size inside
    a batch (payload plus per-frame batch header). On [`Bypass] the
    frame was {e not} stored (a credit was consumed and the single
    counted); every other verdict stored it. *)

val take :
  'a t -> src:int -> dst:int -> ('a list * int * Simcore.Time.t) option
(** Closes the open buffer: returns the frames in append order, their
    total wire bytes, and the newest append timestamp (the causality
    floor for the flush instant). Consumes one credit. [None] if the
    buffer is empty, or if no credit is available — the channel is then
    marked starved and {!credit_return} will answer [`Flush] when a
    credit comes back. *)

val note_batch : 'a t -> src:int -> frames:int -> riders:int -> cause:cause -> unit
(** Records a shipped batch: [frames] total frames on the wire (buffer
    contents plus piggybacked riders), [riders] of which were appended
    by the flush-time piggyback hook. *)

val deadline_check :
  'a t -> src:int -> dst:int -> now:Simcore.Time.t ->
  [ `Flush | `Rearm of Simcore.Time.t | `Idle ]
(** Resolves a fired deadline event: flush the buffer, re-arm for a
    buffer that was reopened since the event was scheduled, or stand
    down if nothing is buffered. *)

val credit_return : 'a t -> src:int -> dst:int -> [ `Flush | `Idle ]
(** A previously flushed batch landed. [`Flush] iff a flush was parked
    waiting for this credit. *)

val has_open : 'a t -> src:int -> dst:int -> bool

val open_dsts : 'a t -> src:int -> int list
(** Destinations with open buffers for [src] (for the scheduler-idle
    flush), compacting internal bookkeeping as a side effect. *)

val buffered : 'a t -> int
(** Total frames currently buffered across all channels (0 at
    quiescence: every buffer drains through idle or deadline flushes). *)

val reset_src : 'a t -> src:int -> unit
(** Crash handling: forgets everything buffered by [src] and refills its
    channel credits. Safe under a fault plan because frames are
    sequenced into the reliable layer before being buffered here — the
    retransmission path re-sends them; on a perfect network this would
    lose messages, so only the recovery manager (which requires a fault
    plan) calls it. *)

(** {2 Statistics} *)

type stats = {
  s_batches : int;  (** multi-frame packets shipped *)
  s_singles : int;  (** bypass sends *)
  s_frames : int;  (** frames shipped inside batches *)
  s_riders : int;  (** piggybacked control AMs appended at flush *)
  s_flush_size : int;
  s_flush_idle : int;
  s_flush_deadline : int;
  s_flush_ack : int;
  s_flush_credit : int;
  s_buffered : int;
  s_occupancy : Simcore.Histogram.t;  (** frames per batch *)
  s_node_batches : int array;
  s_node_singles : int array;
}

val stats : 'a t -> stats
