(** Instruction-count cost model of the ABCL/onAP1000 runtime.

    Every runtime operation is charged a number of (SPARC) instructions;
    virtual time advances by [instructions * ns_per_instr]. The default
    counts are taken from the paper (Table 2 and Section 6.1) and
    [ns_per_instr] is back-derived from its headline numbers: the 25
    instruction dormant fast path costs 2.3 us, i.e. 92 ns per
    instruction (25 MHz SPARC, effective CPI ~2.3). *)

type t = {
  ns_per_instr : int;
  (* --- intra-node dormant fast path (Table 2) --- *)
  check_locality : int;
  vft_lookup_call : int;
  switch_vft : int;
  check_message_queue : int;
  poll_remote : int;
  stack_adjust_return : int;
  (* --- buffered (active-mode) path --- *)
  frame_alloc : int;
  frame_store_per_word : int;
  mq_enqueue : int;
  mq_dequeue : int;
  sched_enqueue : int;
  sched_dequeue : int;
  context_save : int;  (** save locals + ip into a heap frame on blocking *)
  context_restore : int;
  (* --- object creation --- *)
  local_create : int;
  remote_create_request : int;  (** requester-side work beyond the AM send *)
  create_init_handler : int;  (** target-side class-specific initialisation *)
  chunk_refill : int;
  (* --- inter-node messaging --- *)
  msg_setup_send : int;  (** paper: ~20 instructions to set up and send *)
  msg_receive_handling : int;
      (** paper: ~50 instructions: polling, extraction, buffer management *)
  interrupt_overhead : int;  (** extra cost per message in interrupt mode *)
  reply_check : int;  (** sender checking its reply destination *)
  (* --- reliable delivery (only charged when a fault plan is live) --- *)
  reliable_frame : int;
      (** receiver-side sequence/ack bookkeeping per protocol frame *)
  reliable_ack : int;  (** building and sending a standalone ack frame *)
  reliable_retransmit : int;  (** timer-driven retransmission of a frame *)
  (* --- object migration (charged only when [lib/migrate] is attached) --- *)
  migrate_freeze : int;
      (** source-side safe-point freeze + serialisation setup; the
          per-word state copy is charged via [frame_store_per_word] *)
  migrate_install : int;  (** target-side unpack + VFT installation *)
  migrate_forward : int;  (** stub dispatch re-posting one message *)
  migrate_update : int;
      (** retargeting a stub / location-cache entry on a migration notice *)
  (* --- distributed GC (charged only when [lib/dgc] is attached) --- *)
  gc_sweep_obj : int;
      (** mark/sweep visit of one resident object (table scan + mode test) *)
  gc_reclaim : int;  (** freeing one object record and recycling its slot *)
  gc_dec_entry : int;
      (** appending one weight-decrement entry to a batched decrement
          message, or applying one at the owner *)
}

val default : t
(** The calibrated AP1000 model described above. *)

val time : t -> int -> Simcore.Time.t
(** [time c instructions] is the virtual duration of that many instructions. *)

val dormant_send_instructions : t -> int
(** Sum of the Table 2 rows for a null method: the paper reports 25. *)

val pp : Format.formatter -> t -> unit
